/**
 * @file
 * Multi-robot serving: a fleet of warehouse robots localizing against
 * one shared prior map through the LocalizerPool.
 *
 * The heavyweight assets — the trained BoW vocabulary and the prior
 * map — are built once and shared read-only by every robot's session;
 * the pool's workers interleave the fleet's frames while keeping each
 * robot's frame stream strictly in order. Each robot observes the
 * world from its own (time-shifted) position along the route, so the
 * sessions genuinely diverge.
 *
 * The fleet is mixed-criticality: robot 0 is a person-carrying
 * vehicle whose pose stream is SAFETY_CRITICAL (reserved queue and
 * worker capacity — it is never shed), while the mapping robots run
 * BEST_EFFORT with a frame deadline: under contention the pool drops
 * their oldest/stalest frames instead of delaying the vehicle, and
 * the per-session counters report exactly what was shed.
 */
#include <iostream>
#include <map>
#include <vector>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "runtime/localizer_pool.hpp"
#include "sim/dataset.hpp"

using namespace edx;

int
main()
{
    // --- Offline: one mapping run produces the shared assets.
    DatasetConfig dcfg;
    dcfg.scene = SceneType::IndoorKnown;
    dcfg.platform = Platform::Drone;
    dcfg.frame_count = 48;
    dcfg.seed = 7;
    Dataset dataset(dcfg);

    Vocabulary voc = buildVocabulary(dataset, /*frame_stride=*/6);
    MapBuildConfig mcfg;
    mcfg.frame_stride = 4;
    Map shared_map = buildPriorMap(dataset, voc, mcfg);
    std::cout << "shared map: " << shared_map.keyframeCount()
              << " keyframes, " << shared_map.pointCount() << " points\n";

    // --- Online: four robots traverse the route staggered in time.
    const int kRobots = 4;
    const int kFrames = 12;
    LocalizerConfig lcfg = configForScenario(SceneType::IndoorKnown);

    PoolConfig pcfg;
    pcfg.workers = 2;
    pcfg.reserved_workers = 1;    // one worker held for the vehicle
    pcfg.queue_capacity = 16;     // standard quota (unused here)
    pcfg.best_effort_capacity = 4; // mappers shed beyond this backlog
    LocalizerPool pool(pcfg);

    std::vector<int> offset(kRobots);
    for (int r = 0; r < kRobots; ++r) {
        offset[r] = r * 8; // staggered start along the trajectory
        SessionConfig session;
        if (r == 0) {
            session.qos = QosClass::SafetyCritical;
        } else {
            session.qos = QosClass::BestEffort;
            session.frame_deadline_ms = 500.0; // stale poses are useless
        }
        pool.createSession(lcfg, dataset.rig(), &voc, &shared_map,
                           dataset.truthAt(offset[r]), 0.0,
                           dataset.trajectory().velocityAt(0.0), session);
    }

    for (int i = 0; i < kFrames; ++i) {
        for (int r = 0; r < kRobots; ++r) {
            DatasetFrame f = dataset.frame(offset[r] + i);
            FrameInput in;
            in.frame_index = i;
            in.t = i / dcfg.fps;
            in.left = std::move(f.stereo.left);
            in.right = std::move(f.stereo.right);
            pool.submit(r, std::move(in));
        }
    }
    pool.drain();

    // --- Per-robot accuracy against its own ground truth.
    std::map<int, std::map<int, Pose>> est; // robot -> frame -> pose
    PoolResult pr;
    while (pool.poll(pr))
        if (pr.result.ok)
            est[pr.session_id][pr.result.frame_index] = pr.result.pose;

    PoolStats stats = pool.stats();
    for (int r = 0; r < kRobots; ++r) {
        std::vector<Pose> poses, truth;
        for (const auto &[i, pose] : est[r]) {
            poses.push_back(pose);
            truth.push_back(dataset.truthAt(offset[r] + i));
        }
        TrajectoryError e = computeTrajectoryError(poses, truth);
        const SessionPoolStats &s = stats.sessions[r];
        std::cout << "robot " << r << " (" << qosClassName(s.qos)
                  << "): " << poses.size() << "/" << kFrames
                  << " frames localized, rmse " << e.rmse_m << " m, "
                  << s.dropped() << " shed (" << s.dropped_oldest
                  << " oldest, " << s.dropped_deadline
                  << " deadline), mean queue wait "
                  << s.meanQueueWaitMs() << " ms\n";
    }
    return 0;
}
