/**
 * @file
 * Warehouse logistics robot - the deployment scenario from the paper's
 * introduction: a robot spends part of its route outdoors (GPS
 * available, VIO mode) and part inside a pre-mapped warehouse (no GPS,
 * registration mode), switching backend modes at the door.
 *
 * Demonstrates:
 *  - building the warehouse map offline (the "mapped a few days
 *    earlier" workflow of Sec. III),
 *  - two Localizer instances sharing one vocabulary,
 *  - mode switching driven by the operating scenario, with the pose
 *    handed over across the switch.
 */
#include <cstdio>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "sim/dataset.hpp"

using namespace edx;

namespace {

/** Runs @p frames frames of @p dataset through @p loc. */
TrajectoryError
runSegment(Localizer &loc, const Dataset &dataset, int frames,
           const char *label)
{
    std::vector<Pose> est, truth;
    for (int i = 0; i < frames; ++i) {
        DatasetFrame f = dataset.frame(i);
        FrameInput in;
        in.frame_index = i;
        in.t = f.t;
        in.left = std::move(f.stereo.left);
        in.right = std::move(f.stereo.right);
        in.imu = dataset.imuBetweenFrames(i);
        in.gps = dataset.gpsAtFrame(i);
        LocalizationResult r = loc.processFrame(in);
        est.push_back(r.pose);
        truth.push_back(f.truth);
    }
    TrajectoryError err = computeTrajectoryError(est, truth);
    std::printf("  %-28s %3d frames  RMSE %.3f m\n", label, err.frames,
                err.rmse_m);
    return err;
}

} // namespace

int
main()
{
    const int frames = 50;

    // --- Offline: map the warehouse (a mapping run a few days ago).
    std::printf("offline: mapping the warehouse...\n");
    DatasetConfig indoor_cfg;
    indoor_cfg.scene = SceneType::IndoorKnown;
    indoor_cfg.platform = Platform::Drone; // VGA cameras on the robot
    indoor_cfg.frame_count = frames;
    indoor_cfg.seed = 11;
    Dataset indoor(indoor_cfg);

    Vocabulary voc = buildVocabulary(indoor);
    Map warehouse_map = buildPriorMap(indoor, voc);
    std::printf("  warehouse map: %d points, %d keyframes\n\n",
                warehouse_map.pointCount(), warehouse_map.keyframeCount());

    // --- Leg 1: outdoor yard between warehouses -> VIO + GPS.
    std::printf("leg 1: outdoor yard (VIO + GPS)\n");
    DatasetConfig outdoor_cfg;
    outdoor_cfg.scene = SceneType::OutdoorUnknown;
    outdoor_cfg.platform = Platform::Drone;
    outdoor_cfg.frame_count = frames;
    outdoor_cfg.seed = 12;
    Dataset outdoor(outdoor_cfg);

    LocalizerConfig vio_cfg = configForScenario(SceneType::OutdoorUnknown);
    Localizer vio(vio_cfg, outdoor.rig(), nullptr, nullptr);
    vio.initialize(outdoor.truthAt(0), 0.0,
                   outdoor.trajectory().velocityAt(0.0));
    TrajectoryError outdoor_err =
        runSegment(vio, outdoor, frames, "outdoor (vio+gps)");

    // --- At the door: switch to registration against the prior map.
    // The robot re-enters the mapped warehouse; the registration
    // tracker relocalizes from the BoW database, so no handover pose
    // is strictly required - we initialize from the door pose estimate.
    std::printf("\nleg 2: inside the warehouse (registration)\n");
    LocalizerConfig reg_cfg = configForScenario(SceneType::IndoorKnown);
    Localizer reg(reg_cfg, indoor.rig(), &voc, &warehouse_map);
    reg.initialize(indoor.truthAt(0), 0.0,
                   indoor.trajectory().velocityAt(0.0));
    TrajectoryError indoor_err =
        runSegment(reg, indoor, frames, "indoor (registration)");

    std::printf("\nsummary\n");
    std::printf("  outdoor RMSE %.3f m, indoor RMSE %.3f m\n",
                outdoor_err.rmse_m, indoor_err.rmse_m);
    std::printf("  both legs stay localized with the mode that suits "
                "the scenario (Fig. 2).\n");
    return 0;
}
