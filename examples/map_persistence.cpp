/**
 * @file
 * Collaborative mapping + versioned map persistence.
 *
 * Two SLAM robots survey different halves of the same unknown site
 * while attached to a live MapService: each contributes its retired
 * keyframes, the service's background worker merges them (with
 * cross-session loop detection) and publishes copy-on-write map
 * epochs. The merged epoch is persisted in the versioned map format
 * (magic + version + sections), loaded back byte-identically, and a
 * third robot localizes against it in registration mode — the "Persist
 * Map (Optional)" path of Fig. 4, upgraded to a fleet.
 */
#include <cstdio>
#include <cstring>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "map/map_io.hpp"
#include "map/map_service.hpp"
#include "sim/dataset.hpp"

using namespace edx;

namespace {

/** Drives frames [first, last) of the site through one localizer. */
TrajectoryError
drive(Localizer &loc, const Dataset &dataset, int first, int last)
{
    std::vector<Pose> est, truth;
    for (int i = first; i < last; ++i) {
        DatasetFrame f = dataset.frame(i);
        FrameInput in;
        in.frame_index = i;
        in.t = f.t;
        in.left = std::move(f.stereo.left);
        in.right = std::move(f.stereo.right);
        in.imu = dataset.imuBetweenFrames(i);
        in.gps = dataset.gpsAtFrame(i);
        LocalizationResult r = loc.processFrame(in);
        est.push_back(r.pose);
        truth.push_back(f.truth);
    }
    return computeTrajectoryError(est, truth);
}

} // namespace

int
main()
{
    const char *map_path = "/tmp/edx_example_site.map";
    const int frames = 60;
    const int half = frames / 2;

    DatasetConfig dcfg;
    dcfg.scene = SceneType::IndoorUnknown;
    dcfg.platform = Platform::Drone;
    dcfg.frame_count = frames;
    Dataset site(dcfg);
    Vocabulary voc = buildVocabulary(site);

    // --- The shared-map service the surveyors write into.
    MapService service(&voc, site.rig());

    LocalizerConfig slam_cfg = configForScenario(SceneType::IndoorUnknown);
    slam_cfg.mapping.keyframe_interval = 3;
    slam_cfg.mapping.window_size = 4; // retire (= contribute) eagerly

    // --- Two robots survey one half of the site each, concurrently
    // contributing retired keyframes to the service.
    std::printf("surveying: two SLAM robots, one shared map\n");
    Localizer robot_a(slam_cfg, site.rig(), &voc, nullptr);
    robot_a.initialize(site.truthAt(0), 0.0,
                       site.trajectory().velocityAt(0.0));
    robot_a.attachMapService(&service);
    TrajectoryError err_a = drive(robot_a, site, 0, half);

    Localizer robot_b(slam_cfg, site.rig(), &voc, nullptr);
    const double t_half = site.frame(half).t;
    robot_b.initialize(site.truthAt(half), t_half,
                       site.trajectory().velocityAt(t_half));
    robot_b.attachMapService(&service);
    TrajectoryError err_b = drive(robot_b, site, half, frames);

    service.flush();
    auto epoch = service.currentEpoch();
    MapServiceStats sstats = service.stats();
    std::printf("  robot A RMSE %.3f m, robot B RMSE %.3f m\n",
                err_a.rmse_m, err_b.rmse_m);
    std::printf("  merged epoch %llu: %d sessions, %d keyframes, "
                "%d landmarks, %d cross-session loops\n",
                static_cast<unsigned long long>(epoch->epoch),
                epoch->sessions, epoch->map.keyframeCount(),
                epoch->map.pointCount(), epoch->cross_session_loops);
    std::printf("  service: %ld contributions, %ld merge passes, "
                "worst publish %.4f ms\n\n",
                sstats.contributions, sstats.merges,
                sstats.max_publish_ms);

    // --- Persist the merged map in the versioned format.
    if (!epoch->map.save(map_path)) {
        std::fprintf(stderr, "failed to save map to %s\n", map_path);
        return 1;
    }

    // --- Load it back and prove the round trip is byte-identical.
    MapLoadResult loaded = loadMap(map_path);
    if (!loaded) {
        std::fprintf(stderr, "failed to load %s: %s\n", map_path,
                     loaded.error.c_str());
        return 1;
    }
    const std::vector<uint8_t> original = saveMapToBuffer(epoch->map);
    const std::vector<uint8_t> resaved = saveMapToBuffer(*loaded.map);
    const bool identical =
        original.size() == resaved.size() &&
        std::memcmp(original.data(), resaved.data(), original.size()) == 0;
    std::printf("persisted %zu bytes (format v%u.%u) to %s\n"
                "  save -> load -> save byte-identical: %s\n\n",
                original.size(), loaded.version_major,
                loaded.version_minor, map_path,
                identical ? "yes" : "NO");
    if (!identical)
        return 1;

    // --- A later robot localizes against the merged survey.
    std::printf("registration against the merged fleet map\n");
    LocalizerConfig reg_cfg = configForScenario(SceneType::IndoorKnown);
    Localizer reg(reg_cfg, site.rig(), &voc, &*loaded.map);
    reg.initialize(site.truthAt(0), 0.0,
                   site.trajectory().velocityAt(0.0));
    TrajectoryError reg_err = drive(reg, site, 0, frames);
    std::printf("  registration RMSE %.3f m over the full site\n\n",
                reg_err.rmse_m);

    std::printf("two half-site surveys became one deployable map:\n"
                "  survey A (frames 0-%d)   RMSE %.3f m\n"
                "  survey B (frames %d-%d)  RMSE %.3f m\n"
                "  registration (full site) RMSE %.3f m\n",
                half - 1, err_a.rmse_m, half, frames - 1, err_b.rmse_m,
                reg_err.rmse_m);
    return 0;
}
