/**
 * @file
 * Map persistence - the "Persist Map (Optional)" path of Fig. 4: a SLAM
 * session maps an unknown environment, the map is saved to disk, and a
 * later session localizes against it in registration mode (the robot
 * "returns to a place visited before").
 */
#include <cstdio>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "sim/dataset.hpp"

using namespace edx;

namespace {

TrajectoryError
drive(Localizer &loc, const Dataset &dataset, int frames)
{
    std::vector<Pose> est, truth;
    for (int i = 0; i < frames; ++i) {
        DatasetFrame f = dataset.frame(i);
        FrameInput in;
        in.frame_index = i;
        in.t = f.t;
        in.left = std::move(f.stereo.left);
        in.right = std::move(f.stereo.right);
        in.imu = dataset.imuBetweenFrames(i);
        in.gps = dataset.gpsAtFrame(i);
        LocalizationResult r = loc.processFrame(in);
        est.push_back(r.pose);
        truth.push_back(f.truth);
    }
    return computeTrajectoryError(est, truth);
}

} // namespace

int
main()
{
    const char *map_path = "/tmp/edx_example_site.map";
    const int frames = 60;

    DatasetConfig dcfg;
    dcfg.scene = SceneType::IndoorUnknown;
    dcfg.platform = Platform::Drone;
    dcfg.frame_count = frames;
    Dataset site(dcfg);
    Vocabulary voc = buildVocabulary(site);

    // --- Session 1: SLAM maps the unknown site.
    std::printf("session 1: SLAM over the unknown site\n");
    LocalizerConfig slam_cfg = configForScenario(SceneType::IndoorUnknown);
    Localizer slam(slam_cfg, site.rig(), &voc, nullptr);
    slam.initialize(site.truthAt(0), 0.0,
                    site.trajectory().velocityAt(0.0));
    TrajectoryError slam_err = drive(slam, site, frames);
    std::printf("  SLAM RMSE %.3f m; built %d map points, %d keyframes\n",
                slam_err.rmse_m, slam.currentMap()->pointCount(),
                slam.currentMap()->keyframeCount());

    // --- Persist the map (Fig. 4 "Persist Map").
    if (!slam.currentMap()->save(map_path)) {
        std::fprintf(stderr, "failed to save map to %s\n", map_path);
        return 1;
    }
    std::printf("  map saved to %s\n\n", map_path);

    // --- Session 2 (later): load the map, localize by registration.
    std::printf("session 2: registration against the persisted map\n");
    auto loaded = Map::load(map_path);
    if (!loaded) {
        std::fprintf(stderr, "failed to load map from %s\n", map_path);
        return 1;
    }
    std::printf("  loaded %d points, %d keyframes\n",
                loaded->pointCount(), loaded->keyframeCount());

    LocalizerConfig reg_cfg = configForScenario(SceneType::IndoorKnown);
    Localizer reg(reg_cfg, site.rig(), &voc, &*loaded);
    reg.initialize(site.truthAt(0), 0.0,
                   site.trajectory().velocityAt(0.0));
    TrajectoryError reg_err = drive(reg, site, frames);
    std::printf("  registration RMSE %.3f m\n\n", reg_err.rmse_m);

    std::printf("the persisted SLAM map turned an unknown environment "
                "into a known one:\n"
                "  SLAM (session 1)        RMSE %.3f m\n"
                "  registration (session 2) RMSE %.3f m\n",
                slam_err.rmse_m, reg_err.rmse_m);
    return 0;
}
