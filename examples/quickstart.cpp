/**
 * @file
 * Quickstart: localize a drone over a synthetic indoor dataset with the
 * unified framework in its SLAM mode, and print per-frame poses plus
 * the final trajectory error.
 *
 * This is the smallest end-to-end use of the public API:
 *
 *   Dataset  ->  Localizer(processFrame)  ->  poses + timing
 */
#include <cstdio>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "sim/dataset.hpp"

using namespace edx;

int
main()
{
    // 1. A synthetic indoor scene (no GPS, no prior map -> SLAM mode).
    DatasetConfig dcfg;
    dcfg.scene = SceneType::IndoorUnknown;
    dcfg.platform = Platform::Drone;
    dcfg.frame_count = 60;
    dcfg.fps = 10.0;
    Dataset dataset(dcfg);

    // 2. Configure the localizer for the scenario (Fig. 2 dispatch).
    LocalizerConfig cfg = configForScenario(dcfg.scene);
    std::printf("scenario %s -> backend mode %s\n",
                sceneName(dcfg.scene).c_str(),
                modeName(cfg.mode).c_str());

    // SLAM needs a BoW vocabulary for loop closure; train one from the
    // dataset (offline step in a real deployment).
    Vocabulary voc = buildVocabulary(dataset);
    Localizer loc(cfg, dataset.rig(), &voc, /*prior_map=*/nullptr);
    loc.initialize(dataset.truthAt(0), 0.0,
                   dataset.trajectory().velocityAt(0.0));

    // 3. Feed frames; collect poses.
    std::vector<Pose> estimate, truth;
    for (int i = 0; i < dataset.frameCount(); ++i) {
        DatasetFrame f = dataset.frame(i);
        FrameInput in;
        in.frame_index = i;
        in.t = f.t;
        in.left = std::move(f.stereo.left);
        in.right = std::move(f.stereo.right);
        in.imu = dataset.imuBetweenFrames(i);
        in.gps = dataset.gpsAtFrame(i);

        LocalizationResult r = loc.processFrame(in);
        estimate.push_back(r.pose);
        truth.push_back(f.truth);

        if (i % 10 == 0) {
            std::printf(
                "frame %3d  pos (%6.2f %6.2f %5.2f) m  frontend %5.1f ms"
                "  backend %5.1f ms\n",
                i, r.pose.translation[0], r.pose.translation[1],
                r.pose.translation[2], r.frontendMs(), r.backendMs());
        }
    }

    // 4. Evaluate against ground truth.
    TrajectoryError err = computeTrajectoryError(estimate, truth);
    std::printf("\nRMSE %.3f m over %d frames (%.2f%% of path)\n",
                err.rmse_m, err.frames, err.relative_percent);
    std::printf("map: %d points, %d keyframes\n",
                loc.currentMap()->pointCount(),
                loc.currentMap()->keyframeCount());
    return 0;
}
