/**
 * @file
 * Drone survey - the EDX-DRONE use case (Sec. VII): a drone maps an
 * unknown indoor space with SLAM while the accelerator models report
 * what the frame latency, throughput, and energy would be on the Zynq
 * platform, including the runtime offload decisions of Sec. VI-B.
 *
 * Demonstrates the hardware-model half of the API: FrontendAccelerator,
 * BackendAccelerator, RuntimeScheduler, and EnergyModel driven by the
 * measured per-frame workloads.
 */
#include <cstdio>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "hw/backend_accel.hpp"
#include "hw/energy.hpp"
#include "hw/frontend_accel.hpp"
#include "sched/scheduler.hpp"
#include "sim/dataset.hpp"

using namespace edx;

int
main()
{
    // Drone over an unknown indoor space -> SLAM mode.
    DatasetConfig dcfg;
    dcfg.scene = SceneType::IndoorUnknown;
    dcfg.platform = Platform::Drone;
    dcfg.frame_count = 60;
    Dataset dataset(dcfg);

    LocalizerConfig cfg = configForScenario(dcfg.scene);
    Vocabulary voc = buildVocabulary(dataset);
    Localizer loc(cfg, dataset.rig(), &voc, nullptr);
    loc.initialize(dataset.truthAt(0), 0.0,
                   dataset.trajectory().velocityAt(0.0));

    // The EDX-DRONE accelerator models.
    AcceleratorConfig acfg = AcceleratorConfig::drone();
    FrontendAccelerator fe_accel(acfg);
    BackendAccelerator be_accel(acfg);
    EnergyModel energy(acfg);

    // Scheduler for the SLAM-mode kernel (marginalization), trained on
    // the first quarter of the flight (Sec. VII-A).
    std::vector<KernelSample> train;

    double base_ms_sum = 0.0, edx_ms_sum = 0.0;
    double base_j_sum = 0.0, edx_j_sum = 0.0;
    int offloads = 0;

    std::printf("frame |  sw ms | edx ms | marg. kernel | decision\n");
    std::printf("------+--------+--------+--------------+---------\n");
    for (int i = 0; i < dataset.frameCount(); ++i) {
        DatasetFrame f = dataset.frame(i);
        FrameInput in;
        in.frame_index = i;
        in.t = f.t;
        in.left = std::move(f.stereo.left);
        in.right = std::move(f.stereo.right);
        in.imu = dataset.imuBetweenFrames(i);
        in.gps = dataset.gpsAtFrame(i);
        LocalizationResult r = loc.processFrame(in);

        // Accelerated frame model.
        FrontendAccelTiming fe = fe_accel.model(r.telemetry.frontend_workload);
        double kernel_cpu = r.telemetry.mapping.marginalization_ms;
        double kernel_size = r.telemetry.mapping_workload.marginalized_landmarks;
        AccelKernelCost cost =
            be_accel.marginalization(static_cast<int>(kernel_size));

        bool offload = false;
        if (i < dataset.frameCount() / 4) {
            if (kernel_size > 0)
                train.push_back({kernel_size, kernel_cpu});
        } else if (train.size() >= 4 && kernel_size > 0) {
            KernelLatencyModel model = KernelLatencyModel::fit(
                BackendKernel::Marginalization, train);
            offload = RuntimeScheduler(model)
                          .decide(kernel_size, cost.totalMs())
                          .offload;
        }

        double base_total = r.totalMs();
        double edx_backend =
            offload ? r.backendMs() - kernel_cpu + cost.totalMs()
                    : r.backendMs();
        double edx_total = fe.latencyMs() + edx_backend;

        base_ms_sum += base_total;
        edx_ms_sum += edx_total;
        base_j_sum += energy.baseline(base_total).totalJ();
        edx_j_sum +=
            energy
                .accelerated(edx_backend,
                             fe.latencyMs() +
                                 (offload ? cost.compute_ms : 0.0),
                             edx_total)
                .totalJ();
        offloads += offload ? 1 : 0;

        if (i % 10 == 0 || offload) {
            std::printf("%5d | %6.1f | %6.1f | %9.2f ms | %s\n", i,
                        base_total, edx_total, kernel_cpu,
                        offload ? "OFFLOAD" : "cpu");
        }
    }

    const double n = dataset.frameCount();
    std::printf("\nEDX-DRONE summary over %.0f frames\n", n);
    std::printf("  mean frame latency: %.1f ms software -> %.1f ms "
                "accelerated (%.2fx)\n",
                base_ms_sum / n, edx_ms_sum / n,
                base_ms_sum / edx_ms_sum);
    std::printf("  energy/frame: %.2f J -> %.2f J (-%.0f%%)\n",
                base_j_sum / n, edx_j_sum / n,
                100.0 * (1.0 - edx_j_sum / base_j_sum));
    std::printf("  marginalizations offloaded: %d\n", offloads);
    return 0;
}
