/**
 * @file
 * Unit tests for the hardware models: frontend accelerator pipeline,
 * backend matrix-primitive substrate, stencil-buffer sizing, the FPGA
 * resource report, and the energy model.
 */
#include <gtest/gtest.h>

#include "hw/backend_accel.hpp"
#include "hw/config.hpp"
#include "hw/energy.hpp"
#include "hw/frontend_accel.hpp"
#include "hw/resources.hpp"
#include "hw/stencil.hpp"

namespace edx {
namespace {

FrontendWorkload
droneWorkload()
{
    FrontendWorkload w;
    w.image_pixels = 640L * 480L;
    w.left_features = 300;
    w.right_features = 290;
    w.stereo_candidates = 2400;        // row-banded MO evaluations
    w.stereo_candidates_allpairs = 2400; // hw MO streams this count
    w.stereo_matches = 180;
    w.temporal_tracks = 220;
    return w;
}

// --- Frontend accelerator -----------------------------------------------

TEST(FrontendAccel, LatencyIsPositiveAndDecomposed)
{
    FrontendAccelerator accel(AcceleratorConfig::drone());
    FrontendAccelTiming t = accel.model(droneWorkload());
    EXPECT_GT(t.fd_if_ms, 0.0);
    EXPECT_GT(t.fc_ms, 0.0);
    EXPECT_GT(t.mo_ms, 0.0);
    EXPECT_GT(t.dr_ms, 0.0);
    EXPECT_GT(t.tm_ms, 0.0);
    EXPECT_NEAR(t.latencyMs(), t.feBlock() + t.smBlock(), 1e-12);
}

TEST(FrontendAccel, MorePixelsCostMoreFeTime)
{
    FrontendAccelerator accel(AcceleratorConfig::car());
    FrontendWorkload small = droneWorkload();
    FrontendWorkload large = small;
    large.image_pixels = 1280L * 720L;
    EXPECT_GT(accel.model(large).fd_if_ms, accel.model(small).fd_if_ms);
}

TEST(FrontendAccel, PipeliningNeverHurtsThroughput)
{
    for (const auto &cfg :
         {AcceleratorConfig::car(), AcceleratorConfig::drone()}) {
        FrontendAccelerator accel(cfg);
        FrontendAccelTiming t = accel.model(droneWorkload());
        EXPECT_GE(t.pipelinedFps(), t.unpipelinedFps())
            << "pipelining lost throughput on " << cfg.name;
    }
}

TEST(FrontendAccel, TemporalMatchingIsHiddenFromCriticalPath)
{
    // Sec. V-B: TM latency is ~10x below SM, so it is excluded from the
    // modeled frame latency (runs concurrently with SM).
    FrontendAccelerator accel(AcceleratorConfig::drone());
    FrontendAccelTiming t = accel.model(droneWorkload());
    EXPECT_LT(t.tm_ms, t.smBlock())
        << "TM would surface on the critical path";
    // latencyMs excludes tm by construction.
    EXPECT_NEAR(t.latencyMs(), t.feBlock() + t.smBlock(), 1e-12);
}

TEST(FrontendAccel, ZeroWorkloadHasZeroLatency)
{
    FrontendAccelerator accel(AcceleratorConfig::drone());
    FrontendAccelTiming t = accel.model(FrontendWorkload{});
    EXPECT_NEAR(t.latencyMs(), 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(t.pipelinedFps(), 0.0);
}

TEST(FrontendAccel, HigherClockIsProportionallyFaster)
{
    AcceleratorConfig slow = AcceleratorConfig::drone();
    AcceleratorConfig fast = slow;
    fast.clock_mhz = 2.0 * slow.clock_mhz;
    FrontendAccelTiming ts =
        FrontendAccelerator(slow).model(droneWorkload());
    FrontendAccelTiming tf =
        FrontendAccelerator(fast).model(droneWorkload());
    EXPECT_NEAR(tf.latencyMs(), 0.5 * ts.latencyMs(),
                1e-9 * ts.latencyMs());
}

// --- Backend accelerator -------------------------------------------------

TEST(BackendAccel, MultiplyCyclesMatchBlockedFormula)
{
    AcceleratorConfig cfg = AcceleratorConfig::drone();
    BackendAccelerator accel(cfg);
    int b = cfg.matrix_block;
    // One block triple = one block-level step.
    EXPECT_GT(accel.multiplyCycles(b, b, b), 0.0);
    // Doubling one dimension doubles the block count.
    double c1 = accel.multiplyCycles(2 * b, b, b);
    double c0 = accel.multiplyCycles(b, b, b);
    EXPECT_NEAR(c1, 2.0 * c0, 1e-9);
}

TEST(BackendAccel, LargerArrayNeedsFewerCycles)
{
    AcceleratorConfig small = AcceleratorConfig::drone(); // B = 8
    AcceleratorConfig large = AcceleratorConfig::car();   // B = 16
    large.clock_mhz = small.clock_mhz;                    // isolate B
    BackendAccelerator a_small(small), a_large(large);
    EXPECT_LT(a_large.multiplyCycles(64, 64, 64),
              a_small.multiplyCycles(64, 64, 64));
    EXPECT_LT(a_large.decomposeCycles(96), a_small.decomposeCycles(96));
}

TEST(BackendAccel, PrimitiveCyclesGrowWithSize)
{
    BackendAccelerator accel(AcceleratorConfig::car());
    EXPECT_LT(accel.decomposeCycles(32), accel.decomposeCycles(128));
    EXPECT_LT(accel.transposeCycles(32, 32),
              accel.transposeCycles(128, 128));
    EXPECT_LT(accel.substituteCycles(32, 4),
              accel.substituteCycles(128, 4));
    EXPECT_LT(accel.inverseBlockStructuredCycles(30, 6),
              accel.inverseBlockStructuredCycles(300, 6));
}

TEST(BackendAccel, DmaTimeIsAffineInBytes)
{
    AcceleratorConfig cfg = AcceleratorConfig::car();
    BackendAccelerator accel(cfg);
    double fixed = accel.dmaMs(0.0);
    EXPECT_NEAR(fixed, cfg.dma_latency_us * 1e-3, 1e-12);
    double one_mb = accel.dmaMs(1 << 20);
    double two_mb = accel.dmaMs(2 << 20);
    EXPECT_NEAR(two_mb - one_mb, one_mb - fixed, 1e-9);
}

TEST(BackendAccel, DroneLinkIsSlowerThanCarLink)
{
    // PCIe 7.9 GB/s vs AXI 1.2 GB/s (Sec. VII-A).
    BackendAccelerator car(AcceleratorConfig::car());
    BackendAccelerator drone(AcceleratorConfig::drone());
    double bytes = 4.0 * (1 << 20);
    EXPECT_LT(car.dmaMs(bytes) - car.dmaMs(0),
              drone.dmaMs(bytes) - drone.dmaMs(0));
}

TEST(BackendAccel, ProjectionScalesLinearlyInPoints)
{
    BackendAccelerator accel(AcceleratorConfig::car());
    double c1 = accel.projection(1000).compute_ms;
    double c2 = accel.projection(2000).compute_ms;
    double c4 = accel.projection(4000).compute_ms;
    EXPECT_NEAR(c2 / c1, 2.0, 0.3);
    EXPECT_NEAR(c4 / c2, 2.0, 0.3);
}

TEST(BackendAccel, KalmanGainGrowsWithRowsAndDim)
{
    BackendAccelerator accel(AcceleratorConfig::car());
    EXPECT_LT(accel.kalmanGain(60, 120).compute_ms,
              accel.kalmanGain(180, 120).compute_ms);
    EXPECT_LT(accel.kalmanGain(60, 120).compute_ms,
              accel.kalmanGain(60, 195).compute_ms);
}

TEST(BackendAccel, SymmetryOptimizationSavesKalmanCycles)
{
    AcceleratorConfig cfg = AcceleratorConfig::car();
    BackendAccelerator with(cfg, /*exploit_symmetry=*/true);
    BackendAccelerator without(cfg, /*exploit_symmetry=*/false);
    AccelKernelCost a = with.kalmanGain(150, 195);
    AccelKernelCost b = without.kalmanGain(150, 195);
    EXPECT_LT(a.compute_ms, b.compute_ms)
        << "symmetric-S optimization saved nothing";
    // Shipping only the upper triangle of S also trims the transfer.
    EXPECT_LE(a.dma_ms, b.dma_ms);
}

TEST(BackendAccel, MarginalizationGrowsSuperlinearlyInLandmarks)
{
    BackendAccelerator accel(AcceleratorConfig::car());
    double c50 = accel.marginalization(50).compute_ms;
    double c100 = accel.marginalization(100).compute_ms;
    double c200 = accel.marginalization(200).compute_ms;
    EXPECT_GT(c100 / c50, 1.8);
    EXPECT_GT(c200 / c100, 1.8);
}

TEST(BackendAccel, SmallKernelsAreDmaBound)
{
    // The scheduler's reason to exist (Sec. VI-B): small matrices cost
    // more to ship than to compute.
    BackendAccelerator accel(AcceleratorConfig::car());
    AccelKernelCost tiny = accel.marginalization(4);
    EXPECT_GT(tiny.dma_ms, tiny.compute_ms);
}

// --- Stencil buffers ------------------------------------------------------

TEST(Stencil, SingleConsumerNeedsItsWindowLines)
{
    StencilConsumer c{"conv3x3", 3, 0.0};
    StencilPlan plan = planStencilBuffers(1920, 1080, {c});
    // 3-line stencil on a 1920-wide stream: >= 2 full lines buffered.
    EXPECT_GE(plan.shared_bytes, 2.0 * 1920);
    EXPECT_FALSE(plan.replication_wins);
}

TEST(Stencil, DistantConsumerMakesReplicationWin)
{
    // Two consumers: one immediate, one millions of cycles later (the
    // DR case of Sec. V-C). Sharing must buffer the whole gap;
    // replication only pays each consumer's own window.
    std::vector<StencilConsumer> consumers = {
        {"if", 5, 0.0},
        {"dr", 9, 3.0e6},
    };
    StencilPlan plan = planStencilBuffers(1280, 720, consumers);
    EXPECT_TRUE(plan.replication_wins);
    EXPECT_LT(plan.replicated_bytes, plan.shared_bytes);
    EXPECT_GT(plan.extra_dram_reads, 0.0);
    // The shared design must hold the full delay window.
    EXPECT_GE(plan.shared_bytes, 3.0e6);
}

TEST(Stencil, NearbyConsumersShareOneBuffer)
{
    // FD and IF consume pixels at production time (Fig. 13): replication
    // would only add DRAM traffic.
    std::vector<StencilConsumer> consumers = {
        {"fd", 4, 0.0},
        {"if", 3, 0.0},
    };
    StencilPlan plan = planStencilBuffers(1280, 720, consumers);
    EXPECT_FALSE(plan.replication_wins);
}

TEST(Stencil, FrontendPlanReproducesNineMegabyteObservation)
{
    // Sec. VII-D: without the replication optimization the SB grows by
    // ~9 MB on EDX-CAR; with it the SB footprint is sub-megabyte.
    StencilPlan plan = planStencilBuffers(
        1280, 720, frontendStencilConsumers(AcceleratorConfig::car()));
    EXPECT_TRUE(plan.replication_wins);
    EXPECT_GT(plan.shared_bytes, 3.0e6) << "shared SB should be MB-class";
    EXPECT_LT(plan.replicated_bytes, 1.0e6)
        << "optimized SB should be sub-MB";
}

TEST(Stencil, DroneStreamsAreSmallerThanCarStreams)
{
    StencilPlan car = planStencilBuffers(
        1280, 720, frontendStencilConsumers(AcceleratorConfig::car()));
    StencilPlan drone = planStencilBuffers(
        640, 480, frontendStencilConsumers(AcceleratorConfig::drone()));
    EXPECT_LT(drone.replicated_bytes, car.replicated_bytes);
}

// --- Resource model --------------------------------------------------------

TEST(Resources, SharingAtLeastHalvesEveryResourceClass)
{
    for (const auto &cfg :
         {AcceleratorConfig::car(), AcceleratorConfig::drone()}) {
        ResourceReport r = buildResourceReport(cfg);
        EXPECT_GT(r.unshared_total.lut, 2.0 * r.shared_total.lut * 0.9)
            << cfg.name;
        EXPECT_GT(r.unshared_total.ff, 2.0 * r.shared_total.ff * 0.9);
        EXPECT_GT(r.unshared_total.dsp, 2.0 * r.shared_total.dsp * 0.9);
        EXPECT_GT(r.unshared_total.bram_mb,
                  2.0 * r.shared_total.bram_mb * 0.9);
    }
}

TEST(Resources, SharedDesignFitsThePartUnsharedDoesNot)
{
    // Tbl. II: the shared design fits both boards; N.S. overflows.
    ResourceReport car = buildResourceReport(AcceleratorConfig::car());
    EXPECT_LE(car.shared_total.lut, car.part.lut);
    EXPECT_LE(car.shared_total.dsp, car.part.dsp);
    bool overflow = car.unshared_total.lut > car.part.lut ||
                    car.unshared_total.ff > car.part.ff ||
                    car.unshared_total.dsp > car.part.dsp ||
                    car.unshared_total.bram_mb > car.part.bram_mb;
    EXPECT_TRUE(overflow) << "N.S. design should overflow the Virtex-7";
}

TEST(Resources, FrontendDominatesResourceUse)
{
    // Sec. VII-B: the frontend uses the large majority of every class.
    ResourceReport r = buildResourceReport(AcceleratorConfig::car());
    EXPECT_GT(r.frontend_total.lut, 0.6 * r.shared_total.lut);
    EXPECT_GT(r.frontend_total.dsp, 0.6 * r.shared_total.dsp);
}

TEST(Resources, FeatureExtractionDominatesTheFrontend)
{
    // Sec. VII-B: FE consumes over two-thirds of frontend resources -
    // the rationale for time-sharing it across the stereo pair.
    ResourceReport r = buildResourceReport(AcceleratorConfig::car());
    EXPECT_GT(r.fe_block_total.lut, 0.55 * r.frontend_total.lut);
}

TEST(Resources, ItemsSumToTotals)
{
    ResourceReport r = buildResourceReport(AcceleratorConfig::drone());
    ResourceVector shared, unshared;
    for (const ResourceItem &item : r.items) {
        shared += item.cost * item.shared_instances;
        unshared += item.cost * item.unshared_instances;
    }
    EXPECT_NEAR(shared.lut, r.shared_total.lut, 1e-6);
    EXPECT_NEAR(unshared.lut, r.unshared_total.lut, 1e-6);
    EXPECT_NEAR(shared.bram_mb, r.shared_total.bram_mb, 1e-9);
}

// --- Energy model ----------------------------------------------------------

TEST(Energy, BaselineEnergyIsCpuOnly)
{
    EnergyModel model(AcceleratorConfig::car());
    FrameEnergy e = model.baseline(100.0);
    EXPECT_GT(e.cpu_j, 0.0);
    EXPECT_DOUBLE_EQ(e.fpga_j, 0.0);
    EXPECT_NEAR(e.totalJ(), 22.0 * 0.1, 1e-9); // 22 W for 100 ms
}

TEST(Energy, AccelerationSavesEnergyWhenCpuTimeCollapses)
{
    // The Fig. 19 mechanism: a 100 ms all-CPU frame vs 20 ms CPU +
    // 30 ms accelerator busy within a 50 ms frame.
    EnergyModel model(AcceleratorConfig::car());
    FrameEnergy base = model.baseline(100.0);
    FrameEnergy accel = model.accelerated(20.0, 30.0, 50.0);
    EXPECT_LT(accel.totalJ(), base.totalJ());
}

TEST(Energy, StaticPowerErodesDroneSavings)
{
    // Sec. VII-C: drone energy savings are lower because FPGA static
    // power stands out once dynamic power shrinks.
    EnergyModel car(AcceleratorConfig::car());
    EnergyModel drone(AcceleratorConfig::drone());
    // Same relative speedup on both platforms.
    double car_save = 1.0 - car.accelerated(20, 30, 50).totalJ() /
                                car.baseline(100).totalJ();
    double drone_save = 1.0 - drone.accelerated(20, 30, 50).totalJ() /
                                  drone.baseline(100).totalJ();
    EXPECT_GT(car_save, drone_save);
}

} // namespace
} // namespace edx
