/**
 * @file
 * Unit tests for the edx_image substrate.
 */
#include <gtest/gtest.h>

#include "image/draw.hpp"
#include "image/filter.hpp"
#include "image/image.hpp"
#include "image/pyramid.hpp"

namespace edx {
namespace {

TEST(Image, ConstructionAndAccess)
{
    ImageU8 img(10, 5, 7);
    EXPECT_EQ(img.width(), 10);
    EXPECT_EQ(img.height(), 5);
    EXPECT_EQ(img.pixelCount(), 50);
    EXPECT_EQ(img.at(3, 2), 7);
    img.at(3, 2) = 42;
    EXPECT_EQ(img.at(3, 2), 42);
}

TEST(Image, ClampedAccess)
{
    ImageU8 img(4, 4, 0);
    img.at(0, 0) = 10;
    img.at(3, 3) = 20;
    EXPECT_EQ(img.atClamped(-5, -5), 10);
    EXPECT_EQ(img.atClamped(100, 100), 20);
}

TEST(Image, ContainsWithBorder)
{
    ImageU8 img(10, 10);
    EXPECT_TRUE(img.containsWithBorder(5, 5, 3));
    EXPECT_FALSE(img.containsWithBorder(2, 5, 3));
    EXPECT_FALSE(img.containsWithBorder(5, 7.5, 3));
}

TEST(Image, BilinearInterpolation)
{
    ImageU8 img(2, 2);
    img.at(0, 0) = 0;
    img.at(1, 0) = 100;
    img.at(0, 1) = 100;
    img.at(1, 1) = 200;
    EXPECT_NEAR(img.sampleBilinear(0.5, 0.5), 100.0, 1e-9);
    EXPECT_NEAR(img.sampleBilinear(0.0, 0.0), 0.0, 1e-9);
    EXPECT_NEAR(img.sampleBilinear(0.5, 0.0), 50.0, 1e-9);
}

TEST(Image, FloatRoundTrip)
{
    ImageU8 img(3, 3);
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 3; ++x)
            img.at(x, y) = static_cast<uint8_t>(10 * (y * 3 + x));
    ImageU8 back = toU8(toFloat(img));
    EXPECT_DOUBLE_EQ(meanAbsDifference(img, back), 0.0);
}

TEST(Image, HalfScaleAveragesBlocks)
{
    ImageU8 img(4, 2);
    img.at(0, 0) = 10;
    img.at(1, 0) = 20;
    img.at(0, 1) = 30;
    img.at(1, 1) = 40;
    img.at(2, 0) = 100;
    img.at(3, 0) = 100;
    img.at(2, 1) = 100;
    img.at(3, 1) = 100;
    ImageU8 half = halfScale(img);
    ASSERT_EQ(half.width(), 2);
    ASSERT_EQ(half.height(), 1);
    EXPECT_EQ(half.at(0, 0), 25);
    EXPECT_EQ(half.at(1, 0), 100);
}

TEST(Filter, GaussianPreservesConstantImage)
{
    ImageU8 img(32, 32, 128);
    ImageU8 out = gaussianBlur(img);
    EXPECT_DOUBLE_EQ(meanAbsDifference(img, out), 0.0);
}

TEST(Filter, GaussianSmoothsImpulse)
{
    ImageU8 img(33, 33, 0);
    img.at(16, 16) = 255;
    ImageU8 out = gaussianBlur(img);
    EXPECT_LT(out.at(16, 16), 100);
    EXPECT_GT(out.at(16, 16), out.at(14, 16));
    EXPECT_GT(out.at(14, 16), out.at(12, 16));
}

TEST(Filter, BoxBlurAveragesUniformly)
{
    ImageU8 img(9, 9, 0);
    img.at(4, 4) = 90;
    ImageU8 out = boxBlur(img, 1);
    EXPECT_EQ(out.at(4, 4), 10);
    EXPECT_EQ(out.at(3, 3), 10);
    EXPECT_EQ(out.at(0, 0), 0);
}

TEST(Filter, ScharrDetectsHorizontalGradient)
{
    // Intensity ramp along x: gx should be positive and uniform, gy zero.
    ImageU8 img(16, 16);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            img.at(x, y) = static_cast<uint8_t>(x * 10);
    Gradients g = scharrGradients(img);
    EXPECT_NEAR(g.gx.at(8, 8), 10.0, 1e-4);
    EXPECT_NEAR(g.gy.at(8, 8), 0.0, 1e-4);
}

TEST(Pyramid, LevelsHalve)
{
    ImageU8 img(64, 48);
    Pyramid p(img, 3);
    ASSERT_EQ(p.levels(), 3);
    EXPECT_EQ(p.level(0).width(), 64);
    EXPECT_EQ(p.level(1).width(), 32);
    EXPECT_EQ(p.level(2).width(), 16);
    EXPECT_EQ(p.level(2).height(), 12);
}

TEST(Pyramid, StopsAtTinyImages)
{
    ImageU8 img(4, 4);
    Pyramid p(img, 8);
    EXPECT_LE(p.levels(), 3);
}

TEST(Draw, TexturedPatchHasContrast)
{
    ImageU8 img(64, 64, 100);
    drawTexturedPatch(img, 32, 32, 10, 12345, 150);
    int lo = 255, hi = 0;
    for (int y = 22; y <= 42; ++y)
        for (int x = 22; x <= 42; ++x) {
            lo = std::min<int>(lo, img.at(x, y));
            hi = std::max<int>(hi, img.at(x, y));
        }
    EXPECT_GT(hi - lo, 40); // strong internal contrast for FAST/ORB
}

TEST(Draw, PatchIsDeterministicInTextureId)
{
    ImageU8 a(64, 64, 100), b(64, 64, 100);
    drawTexturedPatch(a, 20, 20, 8, 777, 140);
    drawTexturedPatch(b, 20, 20, 8, 777, 140);
    EXPECT_DOUBLE_EQ(meanAbsDifference(a, b), 0.0);
}

TEST(Draw, BrightnessScaleClampsAndScales)
{
    ImageU8 img(4, 4, 100);
    scaleBrightness(img, 1.5);
    EXPECT_EQ(img.at(0, 0), 150);
    scaleBrightness(img, 10.0);
    EXPECT_EQ(img.at(0, 0), 255);
}

TEST(Draw, NoiseChangesPixelsButKeepsMean)
{
    Rng rng(5);
    ImageU8 img(128, 128, 100);
    addPixelNoise(img, 5.0, rng);
    double sum = 0.0;
    for (int y = 0; y < 128; ++y)
        for (int x = 0; x < 128; ++x)
            sum += img.at(x, y);
    EXPECT_NEAR(sum / (128.0 * 128.0), 100.0, 0.5);
}

} // namespace
} // namespace edx
