/**
 * @file
 * Adversarial-conditions coverage: the ScenarioSpec parser, the
 * DegradedDataset corruptions, the health state machine, the
 * dead-reckoning fallback, and the recovery/kidnap acceptance tests
 * that gate the robustness behaviour end to end.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/scenario_runner.hpp"
#include "sensors/dead_reckoning.hpp"
#include "sim/degradation.hpp"

using namespace edx;

namespace {

ScenarioSpec
specByName(const std::string &name)
{
    for (const ScenarioSpec &s : standardScenarioMatrix())
        if (s.name == name)
            return s;
    ADD_FAILURE() << "no such scenario in the standard matrix: " << name;
    return {};
}

double
posErr(const Pose &a, const Pose &b)
{
    return (a.translation - b.translation).norm();
}

bool
imagesEqual(const ImageU8 &a, const ImageU8 &b)
{
    return a.width() == b.width() && a.height() == b.height() &&
           std::equal(a.data(), a.data() + a.pixelCount(), b.data());
}

double
meanIntensity(const ImageU8 &img)
{
    double sum = 0.0;
    for (long k = 0; k < img.pixelCount(); ++k)
        sum += img.data()[k];
    return img.pixelCount() > 0 ? sum / img.pixelCount() : 0.0;
}

} // namespace

// --- ScenarioSpec parser ----------------------------------------------------

TEST(ScenarioSpecParser, ParsesMultiBlockText)
{
    const std::string text = R"(# comment
scenario: one
scene: outdoor-unknown
platform: car
frames: 50
fps: 5
seed: 9
mode: vio
mode: slam
wheel_odometry: on
event: motion_blur from=10 to=20 strength=3.5
event: gps_denied from=15
---
scenario: two
scene: indoor-known
event: teleport from=12 to=13 jump=7
)";
    std::vector<ScenarioSpec> specs = parseScenarioSpecs(text);
    ASSERT_EQ(specs.size(), 2u);

    const ScenarioSpec &a = specs[0];
    EXPECT_EQ(a.name, "one");
    EXPECT_EQ(a.scene, SceneType::OutdoorUnknown);
    EXPECT_EQ(a.platform, Platform::Car);
    EXPECT_EQ(a.frames, 50);
    EXPECT_DOUBLE_EQ(a.fps, 5.0);
    EXPECT_EQ(a.seed, 9u);
    ASSERT_EQ(a.modes.size(), 2u);
    EXPECT_EQ(a.modes[0], BackendMode::Vio);
    EXPECT_EQ(a.modes[1], BackendMode::Slam);
    EXPECT_TRUE(a.wheel_odometry);
    ASSERT_EQ(a.events.size(), 2u);
    EXPECT_EQ(a.events[0].kind, DegradationKind::MotionBlur);
    EXPECT_EQ(a.events[0].from, 10);
    EXPECT_EQ(a.events[0].to, 20);
    EXPECT_DOUBLE_EQ(a.events[0].strength, 3.5);
    EXPECT_EQ(a.events[1].kind, DegradationKind::GpsDenied);
    EXPECT_EQ(a.events[1].from, 15);

    const ScenarioSpec &b = specs[1];
    EXPECT_EQ(b.name, "two");
    ASSERT_EQ(b.events.size(), 1u);
    EXPECT_EQ(b.events[0].jump_frames, 7);
    EXPECT_EQ(b.totalTeleportJump(), 7);
    // No declared mode: the scene's preferred mode.
    ASSERT_EQ(b.effectiveModes().size(), 1u);
    EXPECT_EQ(b.effectiveModes()[0], preferredMode(SceneType::IndoorKnown));
}

TEST(ScenarioSpecParser, RejectsMalformedInputWithLineNumbers)
{
    EXPECT_THROW(parseScenarioSpecs("scene: indoor-unknown\n"),
                 std::invalid_argument); // missing scenario name
    EXPECT_THROW(parseScenarioSpecs("scenario: x\nscene: mars\n"),
                 std::invalid_argument);
    EXPECT_THROW(parseScenarioSpecs("scenario: x\nevent: sharknado\n"),
                 std::invalid_argument);
    EXPECT_THROW(
        parseScenarioSpecs("scenario: x\nevent: motion_blur from=9 to=3\n"),
        std::invalid_argument);
    EXPECT_THROW(parseScenarioSpecs("scenario: x\nfromage: brie\n"),
                 std::invalid_argument);
    try {
        parseScenarioSpecs("scenario: x\n\nbogus line\n");
        FAIL() << "expected a parse error";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
            << e.what();
    }
}

TEST(ScenarioSpecParser, StandardMatrixMeetsCoverageFloor)
{
    std::vector<ScenarioSpec> specs = standardScenarioMatrix();
    EXPECT_GE(specs.size(), 8u) << "the regression matrix must keep >= 8 "
                                   "distinct degradation scenarios";
    bool vio = false, slam = false, reg = false;
    for (const ScenarioSpec &s : specs)
        for (BackendMode m : s.effectiveModes()) {
            vio |= m == BackendMode::Vio;
            slam |= m == BackendMode::Slam;
            reg |= m == BackendMode::Registration;
        }
    EXPECT_TRUE(vio);
    EXPECT_TRUE(slam);
    EXPECT_TRUE(reg);
}

// --- DegradedDataset --------------------------------------------------------

TEST(DegradedDataset, CorruptionIsDeterministic)
{
    ScenarioSpec spec = specByName("low-light-slam");
    spec.frames = 40;
    DegradedDataset a(spec), b(spec);
    for (int i : {0, 20, 35}) {
        DatasetFrame fa = a.frame(i), fb = b.frame(i);
        EXPECT_TRUE(imagesEqual(fa.stereo.left, fb.stereo.left));
        EXPECT_TRUE(imagesEqual(fa.stereo.right, fb.stereo.right));
    }
}

TEST(DegradedDataset, LowLightDarkensOnlyTheEventWindow)
{
    ScenarioSpec spec = specByName("low-light-slam");
    spec.frames = 40;
    ASSERT_FALSE(spec.events.empty());
    spec.events[0].from = 10;
    spec.events[0].to = 20;
    DegradedDataset dd(spec);

    double clean = meanIntensity(dd.base().frame(5).stereo.left);
    double inside = meanIntensity(dd.frame(15).stereo.left);
    double outside = meanIntensity(dd.frame(25).stereo.left);
    EXPECT_LT(inside, 0.6 * clean);
    EXPECT_NEAR(outside, meanIntensity(dd.base().frame(25).stereo.left),
                1e-9);
}

TEST(DegradedDataset, GpsDeniedWindowInvalidatesFixes)
{
    ScenarioSpec spec = specByName("gps-denied-vio");
    spec.frames = 40;
    spec.events[0].from = 10;
    spec.events[0].to = 30;
    DegradedDataset dd(spec);
    EXPECT_TRUE(dd.gpsAtFrame(5).valid);
    EXPECT_FALSE(dd.gpsAtFrame(15).valid);
    EXPECT_FALSE(dd.gpsAtFrame(29).valid);
    EXPECT_TRUE(dd.gpsAtFrame(35).valid);
}

TEST(DegradedDataset, TeleportShiftsViewpointAndTruthTogether)
{
    ScenarioSpec spec = specByName("kidnap-registration");
    spec.frames = 60;
    spec.events[0].from = 30;
    spec.events[0].to = 31;
    spec.events[0].jump_frames = 12;
    DegradedDataset dd(spec);

    // Truth jumps at the teleport frame...
    double step_before = posErr(dd.truthAt(29), dd.truthAt(28));
    double step_at = posErr(dd.truthAt(30), dd.truthAt(29));
    EXPECT_GT(step_at, 3.0 * step_before);
    // ...to the base trajectory 12 frames ahead, and imagery follows.
    EXPECT_NEAR(posErr(dd.truthAt(30), dd.base().truthAt(42)), 0.0, 1e-12);
    EXPECT_TRUE(imagesEqual(dd.frame(30).stereo.left,
                            dd.base().frame(42).stereo.left));
    // The session clock stays continuous.
    EXPECT_NEAR(dd.frame(30).t, 30 * dd.framePeriod(), 1e-9);
}

TEST(DegradedDataset, ImuTimeJitterSurvivesToTheConsumer)
{
    ScenarioSpec spec = specByName("imu-dropout-jitter-vio");
    spec.frames = 90;
    DegradedDataset dd(spec);

    // Inside the jitter window the batch must contain at least one
    // non-increasing timestamp pair somewhere — that is the fault the
    // MSCKF dt guard is exercised against.
    bool non_monotonic = false;
    for (int i = 56; i < 85 && !non_monotonic; ++i) {
        std::vector<ImuSample> batch = dd.imuBetweenFrames(i);
        for (size_t k = 1; k < batch.size(); ++k)
            non_monotonic |= batch[k].t <= batch[k - 1].t;
    }
    EXPECT_TRUE(non_monotonic);

    // The dropout window delivers no samples at all.
    EXPECT_TRUE(dd.imuBetweenFrames(35).empty());
}

// --- IMU timestamp guards (satellite: non-monotonic integration) ------------

TEST(ImuSanitizer, DropsDuplicateAndRegressedStamps)
{
    std::vector<ImuSample> batch(5);
    batch[0].t = 1.00;
    batch[1].t = 1.01;
    batch[2].t = 1.01; // duplicate
    batch[3].t = 0.99; // regressed
    batch[4].t = 1.02;
    EXPECT_EQ(sanitizeImuBatch(batch), 2);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_DOUBLE_EQ(batch[0].t, 1.00);
    EXPECT_DOUBLE_EQ(batch[1].t, 1.01);
    EXPECT_DOUBLE_EQ(batch[2].t, 1.02);
}

// --- HealthMonitor ----------------------------------------------------------

TEST(HealthMonitor, WalksTheStateMachineWithDebounce)
{
    HealthConfig cfg;
    cfg.degrade_frames = 2;
    cfg.recover_frames = 3;
    HealthMonitor mon(cfg);

    HealthSignals good;
    good.features = 100;
    good.stereo_matches = 50;
    good.solve_ok = true;
    HealthSignals bad;
    bad.features = 2;
    bad.stereo_matches = 0;
    bad.solve_ok = false;

    EXPECT_EQ(mon.update(good), TrackingHealth::Nominal);
    // One bad frame degrades but must not flip into fallback.
    EXPECT_EQ(mon.update(bad), TrackingHealth::Degraded);
    EXPECT_EQ(mon.update(good), TrackingHealth::Nominal);
    // A sustained collapse reaches DEAD_RECKONING.
    EXPECT_EQ(mon.update(bad), TrackingHealth::Degraded);
    EXPECT_EQ(mon.update(bad), TrackingHealth::DeadReckoning);
    EXPECT_EQ(mon.update(bad), TrackingHealth::DeadReckoning);
    // Vision returns: RECOVERING debounces the way back.
    EXPECT_EQ(mon.update(good), TrackingHealth::Recovering);
    EXPECT_EQ(mon.update(good), TrackingHealth::Recovering);
    EXPECT_EQ(mon.update(bad), TrackingHealth::DeadReckoning);
    EXPECT_EQ(mon.update(good), TrackingHealth::Recovering);
    EXPECT_EQ(mon.update(good), TrackingHealth::Recovering);
    EXPECT_EQ(mon.update(good), TrackingHealth::Nominal);
    EXPECT_GT(mon.transitions(), 0);
    EXPECT_GT(mon.framesIn(TrackingHealth::DeadReckoning), 0);

    mon.reset();
    EXPECT_EQ(mon.state(), TrackingHealth::Nominal);
}

TEST(HealthMonitor, SoloInlierAndCovarianceSignalsClassifyBad)
{
    HealthConfig cfg;
    HealthMonitor mon(cfg);
    HealthSignals sig;
    sig.features = 100;
    sig.stereo_matches = 50;
    sig.solve_ok = true;
    sig.inliers = cfg.min_inliers - 1;
    mon.update(sig);
    EXPECT_FALSE(mon.lastFrameGood());

    sig.inliers = -1;
    sig.position_cov_trace = cfg.max_position_cov_trace + 1.0;
    mon.update(sig);
    EXPECT_FALSE(mon.lastFrameGood());

    sig.position_cov_trace = 0.01;
    mon.update(sig);
    EXPECT_TRUE(mon.lastFrameGood());
}

// --- DeadReckoner -----------------------------------------------------------

TEST(DeadReckoner, TracksTruthOverAShortImuHorizon)
{
    // Clean (noise-free) IMU from the reference trajectory: the
    // reckoner should stay decimeter-accurate over a one-second
    // outage, which is the horizon the fallback is designed for.
    DatasetConfig dcfg;
    dcfg.scene = SceneType::OutdoorUnknown;
    dcfg.frame_count = 40;
    dcfg.fps = 10.0;
    Dataset d(dcfg);
    const Trajectory &traj = d.trajectory();

    DeadReckoningConfig rcfg;
    rcfg.use_wheel_odometry = false;
    rcfg.velocity_damping = 0.0; // clean IMU: no leak needed
    DeadReckoner dr(rcfg);
    const double t0 = 1.0;
    dr.seed(traj.poseAt(t0), t0, traj.velocityAt(t0));

    const double rate = 200.0;
    std::vector<ImuSample> imu;
    for (int k = 1; k <= static_cast<int>(rate); ++k) {
        double t = t0 + k / rate;
        ImuSample s = traj.imuTruthAt(t);
        s.t = t;
        imu.push_back(s);
    }
    dr.propagate(imu, {}, t0 + 1.0);
    EXPECT_LT(posErr(dr.pose(), traj.poseAt(t0 + 1.0)), 0.15);
}

TEST(DeadReckoner, WheelOdometryPathIgnoresAccelerometer)
{
    DeadReckoningConfig rcfg;
    DeadReckoner dr(rcfg);
    Pose start = Pose::identity();
    dr.seed(start, 0.0, Vec3::zero());

    // Straight 1 m/s roll for one second: garbage accelerometer data
    // must not matter because position integrates from the wheels.
    std::vector<ImuSample> imu;
    std::vector<WheelOdometrySample> odo;
    for (int k = 1; k <= 50; ++k) {
        ImuSample s;
        s.t = k * 0.02;
        s.accel = Vec3{40.0, -25.0, 60.0}; // nonsense
        imu.push_back(s);
        WheelOdometrySample w;
        w.t = k * 0.02;
        w.v_forward = 1.0;
        w.valid = true;
        odo.push_back(w);
    }
    dr.propagate(imu, odo, 1.0);
    EXPECT_NEAR(dr.pose().translation[0], 1.0, 0.05);
    EXPECT_NEAR(dr.pose().translation[1], 0.0, 0.05);
    EXPECT_NEAR(dr.pose().translation[2], 0.0, 0.05);
}

// --- end-to-end acceptance: fallback engage + recovery ----------------------

TEST(ScenarioAcceptance, BlackoutEngagesFallbackAndRecovers)
{
    ScenarioSpec spec = specByName("blackout-recovery-registration");
    ScenarioCellResult cell =
        runScenarioCell(spec, BackendMode::Registration);

    // The near-blackout must actually drive the session into
    // dead-reckoning (the fallback engages)...
    EXPECT_GT(cell.dead_reckoned_frames, 0);
    EXPECT_GT(cell.health_frames[static_cast<int>(
                  TrackingHealth::DeadReckoning)],
              0);

    // ...the dead-reckoned stretch must stay usefully bounded (the
    // wheel-odometry track, not a frozen or exploding pose)...
    for (const ScenarioFrameRecord &rec : cell.frames)
        if (rec.dead_reckoned)
            EXPECT_LT(posErr(rec.pose, rec.truth), 2.5)
                << "frame " << rec.frame_index;

    // ...and when vision returns the session must re-converge: back to
    // NOMINAL with a bounded post-degradation tail.
    EXPECT_EQ(cell.frames.back().health, TrackingHealth::Nominal);
    ASSERT_LT(cell.tail_start, static_cast<int>(cell.frames.size()));
    EXPECT_LT(cell.tail_error.rmse_m, 1.0);
}

TEST(ScenarioAcceptance, FallbackOffPreservesLegacyRejects)
{
    // With the fallback disabled a frame-drop window simply fails the
    // frames (the pre-health contract): no dead-reckoned poses at all.
    ScenarioSpec spec = specByName("blackout-recovery-registration");
    ScenarioRunOptions opt;
    opt.enable_fallback = false;
    ScenarioCellResult cell =
        runScenarioCell(spec, BackendMode::Registration, opt);
    EXPECT_EQ(cell.dead_reckoned_frames, 0);
}

// --- end-to-end acceptance: kidnapped robot ---------------------------------

TEST(ScenarioAcceptance, KidnappedRobotRelocalizesOrReportsUnhealthy)
{
    ScenarioSpec spec = specByName("kidnap-registration");
    ScenarioCellResult cell =
        runScenarioCell(spec, BackendMode::Registration);

    int teleport = -1;
    for (const DegradationEvent &e : spec.events)
        if (e.kind == DegradationKind::Teleport)
            teleport = e.from;
    ASSERT_GT(teleport, 0);

    // The contract: after the teleport the session must either
    // re-localize (pose error back under the converged bound) within
    // a bounded number of frames, or keep reporting itself unhealthy.
    // What it must never do is claim a healthy, solved pose that is
    // far from the truth.
    const double converged_m = 1.0;
    const int reloc_budget = 25;

    int reconverged_at = -1;
    for (size_t i = teleport; i < cell.frames.size(); ++i) {
        const ScenarioFrameRecord &rec = cell.frames[i];
        const double err = posErr(rec.pose, rec.truth);
        if (reconverged_at < 0 && rec.ok && err < converged_m)
            reconverged_at = rec.frame_index;
        if (rec.ok && rec.health == TrackingHealth::Nominal)
            EXPECT_LT(err, converged_m)
                << "silently-wrong pose at frame " << rec.frame_index
                << ": claims nominal health with " << err << " m error";
    }
    ASSERT_GE(reconverged_at, 0)
        << "never relocalized after the teleport; final health = "
        << healthName(cell.frames.back().health);
    EXPECT_LE(reconverged_at - teleport, reloc_budget);

    // Once re-converged, the session must stay converged (no silent
    // re-divergence at the end of the run).
    EXPECT_LT(posErr(cell.frames.back().pose, cell.frames.back().truth),
              converged_m);
}
