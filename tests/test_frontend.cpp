/**
 * @file
 * Unit tests for the unified vision frontend: the FE / SM / TM block
 * products, their timing/workload instrumentation, and the
 * correspondence payload the backend consumes (Sec. IV-A / V).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "frontend/frontend.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace {

DatasetConfig
droneScene(int frames = 4)
{
    DatasetConfig cfg;
    cfg.scene = SceneType::IndoorUnknown;
    cfg.platform = Platform::Drone;
    cfg.frame_count = frames;
    cfg.fps = 10.0;
    cfg.seed = 21;
    return cfg;
}

TEST(Frontend, KeypointsAndDescriptorsAreAligned)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput out = fe.processFrame(f.stereo.left, f.stereo.right);
    ASSERT_GT(out.keypoints.size(), 20u);
    EXPECT_EQ(out.keypoints.size(), out.descriptors.size());
    for (const KeyPoint &kp : out.keypoints) {
        EXPECT_GE(kp.x, 0.0f);
        EXPECT_LT(kp.x, static_cast<float>(f.stereo.left.width()));
        EXPECT_GE(kp.y, 0.0f);
        EXPECT_LT(kp.y, static_cast<float>(f.stereo.left.height()));
    }
}

TEST(Frontend, FirstFrameHasNoTemporalMatches)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput out = fe.processFrame(f.stereo.left, f.stereo.right);
    EXPECT_TRUE(out.temporal.empty());
    EXPECT_EQ(out.workload.temporal_tracks, 0);
}

TEST(Frontend, SecondFrameTracksTemporally)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    EXPECT_GT(out.temporal.size(), 10u)
        << "optical flow lost nearly everything between frames";
    for (const TemporalMatch &m : out.temporal) {
        EXPECT_GE(m.prev_index, 0);
        EXPECT_GE(m.x, 0.0f);
        EXPECT_GE(m.y, 0.0f);
    }
}

TEST(Frontend, StereoMatchesHavePositiveBoundedDisparity)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput out = fe.processFrame(f.stereo.left, f.stereo.right);
    ASSERT_GT(out.stereo.size(), 10u);
    const StereoRig &rig = d.rig();
    for (const StereoMatch &m : out.stereo) {
        EXPECT_GE(m.left_index, 0);
        EXPECT_LT(m.left_index, static_cast<int>(out.keypoints.size()));
        EXPECT_GT(m.disparity, 0.0f);
        // Disparity must correspond to a physically sensible depth.
        auto depth = rig.depthFromDisparity(m.disparity);
        ASSERT_TRUE(depth.has_value());
        EXPECT_GT(*depth, 0.2);
        EXPECT_LT(*depth, 200.0);
    }
}

TEST(Frontend, StereoDepthsMatchSceneGeometry)
{
    // The indoor room has a known extent; most stereo depths must land
    // inside it (far outliers indicate disparity mismatches).
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput out = fe.processFrame(f.stereo.left, f.stereo.right);
    int plausible = 0;
    for (const StereoMatch &m : out.stereo) {
        auto depth = d.rig().depthFromDisparity(m.disparity);
        if (depth && *depth < 40.0)
            ++plausible;
    }
    EXPECT_GT(plausible, static_cast<int>(out.stereo.size()) * 7 / 10);
}

TEST(Frontend, TimingCoversEveryTask)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    EXPECT_GT(out.timing.fd_ms, 0.0);
    EXPECT_GT(out.timing.if_ms, 0.0);
    EXPECT_GT(out.timing.fc_ms, 0.0);
    EXPECT_GT(out.timing.mo_ms, 0.0);
    EXPECT_GT(out.timing.dr_ms, 0.0);
    EXPECT_GT(out.timing.tm_ms, 0.0);
    EXPECT_NEAR(out.timing.total(),
                out.timing.feBlock() + out.timing.smBlock() +
                    out.timing.tmBlock(),
                1e-9);
}

TEST(Frontend, WorkloadCountsAreConsistent)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    EXPECT_EQ(out.workload.left_features,
              static_cast<int>(out.keypoints.size()));
    EXPECT_GT(out.workload.right_features, 0);
    EXPECT_EQ(out.workload.stereo_matches,
              static_cast<int>(out.stereo.size()));
    EXPECT_EQ(out.workload.temporal_tracks,
              static_cast<int>(out.temporal.size()));
    EXPECT_EQ(out.workload.image_pixels,
              static_cast<long>(f1.stereo.left.width()) *
                  f1.stereo.left.height());
    EXPECT_GE(out.workload.stereo_candidates,
              out.workload.stereo_matches);
}

TEST(Frontend, ResetDropsTemporalState)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    fe.reset();
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    EXPECT_TRUE(out.temporal.empty());
}

TEST(Frontend, CorrespondencePayloadIsKilobyteClass)
{
    // Sec. V-A: the temporal + spatial correspondences shipped to the
    // backend are about 2-3 KB per frame.
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    size_t bytes = correspondencePayloadBytes(out.stereo, out.temporal);
    EXPECT_GT(bytes, 500u);
    EXPECT_LT(bytes, 32768u);
}

TEST(Frontend, StaticSceneTracksStayPut)
{
    // Rendering the same pose twice: optical flow displacement must be
    // sub-pixel on average (sensor noise only).
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput a = fe.processFrame(f.stereo.left, f.stereo.right);
    FrontendOutput b = fe.processFrame(f.stereo.left, f.stereo.right);
    ASSERT_GT(b.temporal.size(), 10u);
    double disp = 0.0;
    for (const TemporalMatch &m : b.temporal) {
        const KeyPoint &kp = a.keypoints[m.prev_index];
        disp += std::hypot(m.x - kp.x, m.y - kp.y);
    }
    disp /= static_cast<double>(b.temporal.size());
    EXPECT_LT(disp, 0.75) << "static scene drifted " << disp << " px";
}

TEST(Frontend, MovingCameraProducesCoherentFlow)
{
    // Between consecutive frames of a smooth trajectory, most temporal
    // matches move by less than a generous per-frame bound.
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    FrontendOutput a = fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput b = fe.processFrame(f1.stereo.left, f1.stereo.right);
    ASSERT_GT(b.temporal.size(), 10u);
    int coherent = 0;
    for (const TemporalMatch &m : b.temporal) {
        const KeyPoint &kp = a.keypoints[m.prev_index];
        if (std::hypot(m.x - kp.x, m.y - kp.y) < 40.0)
            ++coherent;
    }
    EXPECT_GT(coherent, static_cast<int>(b.temporal.size()) * 8 / 10);
}

} // namespace
} // namespace edx
