/**
 * @file
 * Unit tests for the unified vision frontend: the FE / SM / TM block
 * products, their timing/workload instrumentation, and the
 * correspondence payload the backend consumes (Sec. IV-A / V).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>

#include "frontend/frontend.hpp"
#include "sim/dataset.hpp"

// --- global allocation counter ------------------------------------------
// The zero-alloc acceptance test counts *every* heap allocation made
// while a steady-state frame is processed, not just workspace growth.
namespace {
std::atomic<long> g_alloc_count{0};
}

void *
operator new(std::size_t n)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace edx {
namespace {

DatasetConfig
droneScene(int frames = 4)
{
    DatasetConfig cfg;
    cfg.scene = SceneType::IndoorUnknown;
    cfg.platform = Platform::Drone;
    cfg.frame_count = frames;
    cfg.fps = 10.0;
    cfg.seed = 21;
    return cfg;
}

TEST(Frontend, KeypointsAndDescriptorsAreAligned)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput out = fe.processFrame(f.stereo.left, f.stereo.right);
    ASSERT_GT(out.keypoints.size(), 20u);
    EXPECT_EQ(out.keypoints.size(), out.descriptors.size());
    for (const KeyPoint &kp : out.keypoints) {
        EXPECT_GE(kp.x, 0.0f);
        EXPECT_LT(kp.x, static_cast<float>(f.stereo.left.width()));
        EXPECT_GE(kp.y, 0.0f);
        EXPECT_LT(kp.y, static_cast<float>(f.stereo.left.height()));
    }
}

TEST(Frontend, SplitStageCallsMatchMonolithicBitExact)
{
    // The staged runtime runs FE / SM / TM as separate sub-stage calls
    // with a job-owned handoff context; the products must be
    // bit-identical to the monolithic processFrame, frame after frame
    // (the temporal state advances identically).
    Dataset d(droneScene(4));
    VisionFrontend mono, split;
    for (int i = 0; i < d.frameCount(); ++i) {
        DatasetFrame f = d.frame(i);
        FrontendOutput a =
            mono.processFrame(f.stereo.left, f.stereo.right);

        FrontendOutput b;
        FrontendStageContext ctx;
        split.runFeStage(f.stereo.left, f.stereo.right, ctx, b);
        split.runSmStage(f.stereo.left, f.stereo.right, ctx, b);
        split.runTmStage(f.stereo.left, ctx, b);

        ASSERT_EQ(a.keypoints.size(), b.keypoints.size()) << i;
        for (size_t k = 0; k < a.keypoints.size(); ++k) {
            EXPECT_EQ(a.keypoints[k].x, b.keypoints[k].x);
            EXPECT_EQ(a.keypoints[k].y, b.keypoints[k].y);
        }
        ASSERT_EQ(a.descriptors.size(), b.descriptors.size());
        for (size_t k = 0; k < a.descriptors.size(); ++k)
            EXPECT_EQ(0, std::memcmp(&a.descriptors[k],
                                     &b.descriptors[k],
                                     sizeof(Descriptor)));
        ASSERT_EQ(a.stereo.size(), b.stereo.size());
        for (size_t k = 0; k < a.stereo.size(); ++k) {
            EXPECT_EQ(a.stereo[k].left_index, b.stereo[k].left_index);
            EXPECT_EQ(a.stereo[k].disparity, b.stereo[k].disparity);
        }
        ASSERT_EQ(a.temporal.size(), b.temporal.size()) << i;
        for (size_t k = 0; k < a.temporal.size(); ++k) {
            EXPECT_EQ(a.temporal[k].prev_index, b.temporal[k].prev_index);
            EXPECT_EQ(a.temporal[k].x, b.temporal[k].x);
            EXPECT_EQ(a.temporal[k].y, b.temporal[k].y);
        }
        EXPECT_EQ(a.workload.stereo_matches, b.workload.stereo_matches);
        EXPECT_EQ(a.workload.temporal_tracks,
                  b.workload.temporal_tracks);
    }
}

TEST(Frontend, FirstFrameHasNoTemporalMatches)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput out = fe.processFrame(f.stereo.left, f.stereo.right);
    EXPECT_TRUE(out.temporal.empty());
    EXPECT_EQ(out.workload.temporal_tracks, 0);
}

TEST(Frontend, SecondFrameTracksTemporally)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    EXPECT_GT(out.temporal.size(), 10u)
        << "optical flow lost nearly everything between frames";
    for (const TemporalMatch &m : out.temporal) {
        EXPECT_GE(m.prev_index, 0);
        EXPECT_GE(m.x, 0.0f);
        EXPECT_GE(m.y, 0.0f);
    }
}

TEST(Frontend, StereoMatchesHavePositiveBoundedDisparity)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput out = fe.processFrame(f.stereo.left, f.stereo.right);
    ASSERT_GT(out.stereo.size(), 10u);
    const StereoRig &rig = d.rig();
    for (const StereoMatch &m : out.stereo) {
        EXPECT_GE(m.left_index, 0);
        EXPECT_LT(m.left_index, static_cast<int>(out.keypoints.size()));
        EXPECT_GT(m.disparity, 0.0f);
        // Disparity must correspond to a physically sensible depth.
        auto depth = rig.depthFromDisparity(m.disparity);
        ASSERT_TRUE(depth.has_value());
        EXPECT_GT(*depth, 0.2);
        EXPECT_LT(*depth, 200.0);
    }
}

TEST(Frontend, StereoDepthsMatchSceneGeometry)
{
    // The indoor room has a known extent; most stereo depths must land
    // inside it (far outliers indicate disparity mismatches).
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput out = fe.processFrame(f.stereo.left, f.stereo.right);
    int plausible = 0;
    for (const StereoMatch &m : out.stereo) {
        auto depth = d.rig().depthFromDisparity(m.disparity);
        if (depth && *depth < 40.0)
            ++plausible;
    }
    EXPECT_GT(plausible, static_cast<int>(out.stereo.size()) * 7 / 10);
}

TEST(Frontend, TimingCoversEveryTask)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    EXPECT_GT(out.timing.fd_ms, 0.0);
    EXPECT_GT(out.timing.if_ms, 0.0);
    EXPECT_GT(out.timing.fc_ms, 0.0);
    EXPECT_GT(out.timing.mo_ms, 0.0);
    EXPECT_GT(out.timing.dr_ms, 0.0);
    EXPECT_GT(out.timing.tm_ms, 0.0);
    EXPECT_NEAR(out.timing.total(),
                out.timing.feBlock() + out.timing.smBlock() +
                    out.timing.tmBlock(),
                1e-9);
}

TEST(Frontend, WorkloadCountsAreConsistent)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    EXPECT_EQ(out.workload.left_features,
              static_cast<int>(out.keypoints.size()));
    EXPECT_GT(out.workload.right_features, 0);
    EXPECT_EQ(out.workload.stereo_matches,
              static_cast<int>(out.stereo.size()));
    EXPECT_EQ(out.workload.temporal_tracks,
              static_cast<int>(out.temporal.size()));
    EXPECT_EQ(out.workload.image_pixels,
              static_cast<long>(f1.stereo.left.width()) *
                  f1.stereo.left.height());
    EXPECT_GE(out.workload.stereo_candidates,
              out.workload.stereo_matches);
}

TEST(Frontend, ResetDropsTemporalState)
{
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    fe.reset();
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    EXPECT_TRUE(out.temporal.empty());
}

TEST(Frontend, CorrespondencePayloadIsKilobyteClass)
{
    // Sec. V-A: the temporal + spatial correspondences shipped to the
    // backend are about 2-3 KB per frame.
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput out = fe.processFrame(f1.stereo.left, f1.stereo.right);
    size_t bytes = correspondencePayloadBytes(out.stereo, out.temporal);
    EXPECT_GT(bytes, 500u);
    EXPECT_LT(bytes, 32768u);
}

TEST(Frontend, StaticSceneTracksStayPut)
{
    // Rendering the same pose twice: optical flow displacement must be
    // sub-pixel on average (sensor noise only).
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f = d.frame(0);
    FrontendOutput a = fe.processFrame(f.stereo.left, f.stereo.right);
    FrontendOutput b = fe.processFrame(f.stereo.left, f.stereo.right);
    ASSERT_GT(b.temporal.size(), 10u);
    double disp = 0.0;
    for (const TemporalMatch &m : b.temporal) {
        const KeyPoint &kp = a.keypoints[m.prev_index];
        disp += std::hypot(m.x - kp.x, m.y - kp.y);
    }
    disp /= static_cast<double>(b.temporal.size());
    EXPECT_LT(disp, 0.75) << "static scene drifted " << disp << " px";
}

TEST(Frontend, MovingCameraProducesCoherentFlow)
{
    // Between consecutive frames of a smooth trajectory, most temporal
    // matches move by less than a generous per-frame bound.
    Dataset d(droneScene());
    VisionFrontend fe;
    DatasetFrame f0 = d.frame(0);
    DatasetFrame f1 = d.frame(1);
    FrontendOutput a = fe.processFrame(f0.stereo.left, f0.stereo.right);
    FrontendOutput b = fe.processFrame(f1.stereo.left, f1.stereo.right);
    ASSERT_GT(b.temporal.size(), 10u);
    int coherent = 0;
    for (const TemporalMatch &m : b.temporal) {
        const KeyPoint &kp = a.keypoints[m.prev_index];
        if (std::hypot(m.x - kp.x, m.y - kp.y) < 40.0)
            ++coherent;
    }
    EXPECT_GT(coherent, static_cast<int>(b.temporal.size()) * 8 / 10);
}

// --- workspace / lanes / reference-path equivalence ---------------------

void
expectOutputsIdentical(const FrontendOutput &a, const FrontendOutput &b)
{
    ASSERT_EQ(a.keypoints.size(), b.keypoints.size());
    for (size_t i = 0; i < a.keypoints.size(); ++i) {
        EXPECT_EQ(a.keypoints[i].x, b.keypoints[i].x);
        EXPECT_EQ(a.keypoints[i].y, b.keypoints[i].y);
        EXPECT_EQ(a.keypoints[i].score, b.keypoints[i].score);
        EXPECT_EQ(a.keypoints[i].angle, b.keypoints[i].angle);
    }
    ASSERT_EQ(a.descriptors.size(), b.descriptors.size());
    for (size_t i = 0; i < a.descriptors.size(); ++i)
        EXPECT_EQ(a.descriptors[i], b.descriptors[i]);
    ASSERT_EQ(a.stereo.size(), b.stereo.size());
    for (size_t i = 0; i < a.stereo.size(); ++i) {
        EXPECT_EQ(a.stereo[i].left_index, b.stereo[i].left_index);
        EXPECT_EQ(a.stereo[i].disparity, b.stereo[i].disparity);
        EXPECT_EQ(a.stereo[i].hamming, b.stereo[i].hamming);
    }
    ASSERT_EQ(a.temporal.size(), b.temporal.size());
    for (size_t i = 0; i < a.temporal.size(); ++i) {
        EXPECT_EQ(a.temporal[i].prev_index, b.temporal[i].prev_index);
        EXPECT_EQ(a.temporal[i].x, b.temporal[i].x);
        EXPECT_EQ(a.temporal[i].y, b.temporal[i].y);
        EXPECT_EQ(a.temporal[i].residual, b.temporal[i].residual);
    }
}

TEST(Frontend, OptimizedPathMatchesReferencePath)
{
    // The whole optimized frontend (workspace kernels, banded stereo,
    // cached gradients) against the retained scalar reference path:
    // bit-exact products over a multi-frame sequence.
    Dataset d(droneScene());
    FrontendConfig ref_cfg;
    ref_cfg.use_reference = true;
    VisionFrontend opt, ref(ref_cfg);
    for (int i = 0; i < 3; ++i) {
        DatasetFrame f = d.frame(i);
        FrontendOutput a = opt.processFrame(f.stereo.left, f.stereo.right);
        FrontendOutput b = ref.processFrame(f.stereo.left, f.stereo.right);
        expectOutputsIdentical(a, b);
        EXPECT_EQ(a.workload.stereo_candidates_allpairs,
                  b.workload.stereo_candidates_allpairs);
        // The banded matcher must evaluate a strict subset of the
        // all-pairs sweep.
        EXPECT_LE(a.workload.stereo_candidates,
                  a.workload.stereo_candidates_allpairs);
    }
}

TEST(Frontend, LanesTwoIsBitExactWithLanesOne)
{
    Dataset d(droneScene());
    FrontendConfig two;
    two.lanes = 2;
    VisionFrontend seq, par(two);
    for (int i = 0; i < 3; ++i) {
        DatasetFrame f = d.frame(i);
        FrontendOutput a = seq.processFrame(f.stereo.left, f.stereo.right);
        FrontendOutput b = par.processFrame(f.stereo.left, f.stereo.right);
        expectOutputsIdentical(a, b);
        EXPECT_EQ(a.workload.stereo_candidates,
                  b.workload.stereo_candidates);
    }
}

TEST(Frontend, SteadyStateFramesAllocateNothing)
{
    // Warm the workspace over the sequence once, reset (which keeps
    // the buffers), then run the same frames again: not a single heap
    // allocation may occur anywhere in the frontend.
    Dataset d(droneScene());
    std::vector<DatasetFrame> frames;
    for (int i = 0; i < 4; ++i)
        frames.push_back(d.frame(i));

    VisionFrontend fe;
    FrontendOutput out;
    for (const DatasetFrame &f : frames)
        fe.processFrameInto(f.stereo.left, f.stereo.right, out);
    const size_t warm_events = fe.workspaceAllocationEvents();
    EXPECT_GT(fe.workspaceCapacityBytes(), 0u);

    fe.reset();
    for (const DatasetFrame &f : frames) {
        const long before = g_alloc_count.load();
        fe.processFrameInto(f.stereo.left, f.stereo.right, out);
        EXPECT_EQ(g_alloc_count.load() - before, 0)
            << "steady-state frame allocated";
    }
    EXPECT_EQ(fe.workspaceAllocationEvents(), warm_events);
}

TEST(Frontend, LanesTwoWorkspaceStaysAllocationFree)
{
    // The strict global-counter assert only holds for lanes == 1 (the
    // lane handshake itself is allocation-free but runs concurrently
    // with gtest bookkeeping); for lanes == 2 the workspace event
    // counter must still go quiet once warm.
    Dataset d(droneScene());
    std::vector<DatasetFrame> frames;
    for (int i = 0; i < 4; ++i)
        frames.push_back(d.frame(i));

    FrontendConfig cfg;
    cfg.lanes = 2;
    VisionFrontend fe(cfg);
    FrontendOutput out;
    for (const DatasetFrame &f : frames)
        fe.processFrameInto(f.stereo.left, f.stereo.right, out);
    const size_t warm_events = fe.workspaceAllocationEvents();
    fe.reset();
    for (const DatasetFrame &f : frames)
        fe.processFrameInto(f.stereo.left, f.stereo.right, out);
    EXPECT_EQ(fe.workspaceAllocationEvents(), warm_events);
}

} // namespace
} // namespace edx
