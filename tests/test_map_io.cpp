/**
 * @file
 * Format-evolution tests for the versioned map serialization
 * (map/map_io.hpp): byte-stable round trips, a checked-in v1 golden
 * fixture that every future writer must keep loadable, forward
 * tolerance for unknown sections, and corrupt-input diagnostics — a
 * truncated or hostile file must fail with an error string, never with
 * UB (the ASan+UBSan CI job runs this suite).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "backend/map.hpp"
#include "map/map_io.hpp"

namespace edx {
namespace {

/**
 * The golden map: every format feature exercised with fixed,
 * platform-independent values (plain IEEE arithmetic, no RNG, no
 * trigonometry) so the serialized bytes are reproducible anywhere.
 * Changing this builder invalidates tests/data/map_v1_golden.map —
 * regenerate it by running this suite with EDX_WRITE_GOLDEN=1 and
 * commit both together.
 */
Map
buildGoldenMap()
{
    Map m;
    for (int i = 0; i < 12; ++i) {
        MapPoint p;
        p.position = Vec3{0.25 * i, 1.0 - 0.125 * i, 0.5 + 0.0625 * i};
        for (int w = 0; w < 4; ++w)
            p.descriptor.bits[w] =
                0x0123456789abcdefULL * (i + 1) + static_cast<uint64_t>(w);
        p.observations = 1 + i % 3;
        m.addPoint(p);
    }
    for (int k = 0; k < 3; ++k) {
        Keyframe kf;
        // Unit quaternions whose components are exactly representable
        // (all-half rotations), so the fixture bytes are reproducible.
        const double w = (k == 0) ? 1.0 : 0.5;
        const double z = (k == 0) ? 0.0 : (k == 1 ? 0.5 : -0.5);
        const double x = (k == 0) ? 0.0 : 0.5;
        const double y = (k == 0) ? 0.0 : (k == 1 ? -0.5 : 0.5);
        kf.pose = Pose(Quat(w, x, y, z), Vec3{2.0 * k, -1.5 * k, 0.25});
        for (int f = 0; f < 5; ++f) {
            KeyPoint kp;
            kp.x = 64.0f + 10.0f * f + k;
            kp.y = 48.0f + 6.0f * f;
            kp.score = 0.5f + 0.0625f * f;
            kp.angle = 0.25f * f;
            kf.keypoints.push_back(kp);
            Descriptor d;
            for (int ww = 0; ww < 4; ++ww)
                d.bits[ww] = 0xfedcba9876543210ULL ^
                             (static_cast<uint64_t>(k * 5 + f) << ww);
            kf.descriptors.push_back(d);
            // Mix of real landmark references and -1 "no landmark".
            kf.map_point_ids.push_back(f % 2 == 0 ? (k * 4 + f) % 12 : -1);
        }
        kf.bow[3 * k] = 0.5;
        kf.bow[3 * k + 1] = 0.25;
        m.addKeyframe(std::move(kf));
    }
    m.buildTileIndex(2.0);
    return m;
}

std::string
goldenPath()
{
    return std::string(EDX_TEST_DATA_DIR) + "/map_v1_golden.map";
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

/** Semantic equality via the canonical serialization. */
void
expectMapsIdentical(const Map &a, const Map &b)
{
    const auto ba = saveMapToBuffer(a);
    const auto bb = saveMapToBuffer(b);
    ASSERT_EQ(ba.size(), bb.size());
    EXPECT_EQ(0, std::memcmp(ba.data(), bb.data(), ba.size()));
}

TEST(MapIo, SaveLoadSaveIsByteIdentical)
{
    const Map m = buildGoldenMap();
    const std::vector<uint8_t> first = saveMapToBuffer(m);
    MapLoadResult r = loadMapFromBuffer(first.data(), first.size());
    ASSERT_TRUE(r) << r.error;
    EXPECT_EQ(r.version_major, kMapFormatMajor);
    EXPECT_EQ(r.version_minor, kMapFormatMinor);
    EXPECT_EQ(r.skipped_sections, 0);
    const std::vector<uint8_t> second = saveMapToBuffer(*r.map);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(0, std::memcmp(first.data(), second.data(), first.size()));
}

TEST(MapIo, RoundTripPreservesEveryField)
{
    const Map m = buildGoldenMap();
    const auto buf = saveMapToBuffer(m);
    MapLoadResult r = loadMapFromBuffer(buf.data(), buf.size());
    ASSERT_TRUE(r) << r.error;
    ASSERT_EQ(r.map->pointCount(), m.pointCount());
    ASSERT_EQ(r.map->keyframeCount(), m.keyframeCount());
    EXPECT_EQ(r.map->points()[3].observations, m.points()[3].observations);
    EXPECT_EQ(r.map->points()[7].descriptor.bits,
              m.points()[7].descriptor.bits);
    const Keyframe &kf = r.map->keyframes()[1];
    const Keyframe &ref = m.keyframes()[1];
    EXPECT_EQ(kf.id, ref.id);
    EXPECT_EQ(kf.map_point_ids, ref.map_point_ids);
    EXPECT_EQ(kf.bow.size(), ref.bow.size());
    EXPECT_EQ(kf.keypoints[2].x, ref.keypoints[2].x);
    EXPECT_EQ(kf.pose.rotation.w(), ref.pose.rotation.w());
    EXPECT_EQ(kf.pose.translation[1], ref.pose.translation[1]);
    // The tile index travels as parameters and is rebuilt on load.
    EXPECT_EQ(r.map->tileSize(), m.tileSize());
    EXPECT_EQ(r.map->tiles().size(), m.tiles().size());
}

TEST(MapIo, FileRoundTripThroughMapApi)
{
    const std::string path = "/tmp/edx_test_map_io_roundtrip.map";
    const Map m = buildGoldenMap();
    ASSERT_TRUE(m.save(path));
    auto loaded = Map::load(path);
    ASSERT_TRUE(loaded.has_value());
    expectMapsIdentical(m, *loaded);
    std::remove(path.c_str());
}

/**
 * The checked-in v1 fixture must load under every future reader and
 * decode to exactly the golden map. This is the contract that lets a
 * deployment upgrade the binary without re-surveying its sites.
 */
TEST(MapIo, GoldenV1FixtureLoads)
{
    const std::string path = goldenPath();
    if (std::getenv("EDX_WRITE_GOLDEN") != nullptr) {
        ASSERT_TRUE(buildGoldenMap().save(path));
        GTEST_LOG_(INFO) << "golden fixture rewritten: " << path;
    }
    const std::vector<uint8_t> bytes = readFile(path);
    ASSERT_FALSE(bytes.empty());
    MapLoadResult r = loadMapFromBuffer(bytes.data(), bytes.size());
    ASSERT_TRUE(r) << r.error;
    EXPECT_EQ(r.version_major, 1);
    expectMapsIdentical(*r.map, buildGoldenMap());

    // And the current writer still emits the v1 bytes verbatim: the
    // fixture doubles as a canary for accidental format drift. A
    // deliberate format change bumps the version and regenerates it.
    const auto rewritten = saveMapToBuffer(buildGoldenMap());
    ASSERT_EQ(rewritten.size(), bytes.size());
    EXPECT_EQ(0,
              std::memcmp(rewritten.data(), bytes.data(), bytes.size()));
}

TEST(MapIo, UnknownSectionIsSkippedNotFatal)
{
    auto buf = saveMapToBuffer(buildGoldenMap());
    // Bump the header's section count (u32 at offset 8) and append an
    // unknown section — what a newer minor version's writer would emit.
    uint32_t count;
    std::memcpy(&count, buf.data() + 8, 4);
    ++count;
    std::memcpy(buf.data() + 8, &count, 4);
    const uint32_t id = 999;
    const uint64_t size = 12;
    const uint8_t payload[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    buf.insert(buf.end(), reinterpret_cast<const uint8_t *>(&id),
               reinterpret_cast<const uint8_t *>(&id) + 4);
    buf.insert(buf.end(), reinterpret_cast<const uint8_t *>(&size),
               reinterpret_cast<const uint8_t *>(&size) + 8);
    buf.insert(buf.end(), payload, payload + 12);

    MapLoadResult r = loadMapFromBuffer(buf.data(), buf.size());
    ASSERT_TRUE(r) << r.error;
    EXPECT_EQ(r.skipped_sections, 1);
    expectMapsIdentical(*r.map, buildGoldenMap());
}

TEST(MapIo, NewerMinorVersionLoads)
{
    auto buf = saveMapToBuffer(buildGoldenMap());
    const uint16_t minor = kMapFormatMinor + 1;
    std::memcpy(buf.data() + 6, &minor, 2); // u32 magic | u16 major | u16 minor
    MapLoadResult r = loadMapFromBuffer(buf.data(), buf.size());
    ASSERT_TRUE(r) << r.error;
    EXPECT_EQ(r.version_minor, kMapFormatMinor + 1);
}

TEST(MapIo, NewerMajorVersionRefusesWithDiagnostic)
{
    auto buf = saveMapToBuffer(buildGoldenMap());
    const uint16_t major = kMapFormatMajor + 1;
    std::memcpy(buf.data() + 4, &major, 2);
    MapLoadResult r = loadMapFromBuffer(buf.data(), buf.size());
    ASSERT_FALSE(r);
    EXPECT_NE(r.error.find("major version"), std::string::npos)
        << r.error;
}

TEST(MapIo, WrongMagicRefuses)
{
    auto buf = saveMapToBuffer(buildGoldenMap());
    buf[0] ^= 0xff;
    MapLoadResult r = loadMapFromBuffer(buf.data(), buf.size());
    ASSERT_FALSE(r);
    EXPECT_NE(r.error.find("magic"), std::string::npos) << r.error;
}

TEST(MapIo, EveryTruncationFailsCleanly)
{
    // Chop the buffer at every prefix length: each must produce an
    // error string (never a crash, never a silent partial map). This
    // is the test the sanitizer job leans on.
    const auto full = saveMapToBuffer(buildGoldenMap());
    for (size_t len = 0; len < full.size(); ++len) {
        MapLoadResult r = loadMapFromBuffer(full.data(), len);
        EXPECT_FALSE(r) << "truncated to " << len << " of "
                        << full.size() << " bytes loaded anyway";
        EXPECT_FALSE(r.error.empty());
    }
}

TEST(MapIo, CorruptCountCannotForceHugeAllocation)
{
    auto buf = saveMapToBuffer(buildGoldenMap());
    // The landmark section is first: header (12) + section header
    // (4 + 8) puts its count at offset 24. Claim 2^48 landmarks.
    const uint64_t absurd = 1ULL << 48;
    std::memcpy(buf.data() + 24, &absurd, 8);
    MapLoadResult r = loadMapFromBuffer(buf.data(), buf.size());
    ASSERT_FALSE(r);
    EXPECT_NE(r.error.find("count exceeds"), std::string::npos)
        << r.error;
}

TEST(MapIo, NonUnitRotationRefuses)
{
    Map m = buildGoldenMap();
    m.keyframes()[1].pose.rotation = Quat(2.0, 0.0, 0.0, 0.0);
    const auto buf = saveMapToBuffer(m);
    MapLoadResult r = loadMapFromBuffer(buf.data(), buf.size());
    ASSERT_FALSE(r);
    EXPECT_NE(r.error.find("non-unit rotation"), std::string::npos)
        << r.error;
}

TEST(MapIo, CorruptLandmarkReferenceRefuses)
{
    Map m = buildGoldenMap();
    m.keyframes()[0].map_point_ids[0] = 10'000; // out of range on disk
    const auto buf = saveMapToBuffer(m);
    MapLoadResult r = loadMapFromBuffer(buf.data(), buf.size());
    ASSERT_FALSE(r);
    EXPECT_NE(r.error.find("landmark id"), std::string::npos) << r.error;
}

TEST(MapIo, MissingFileReportsPath)
{
    MapLoadResult r = loadMap("/tmp/edx_no_such_map_file.map");
    ASSERT_FALSE(r);
    EXPECT_NE(r.error.find("edx_no_such_map_file"), std::string::npos);
}

} // namespace
} // namespace edx
