/**
 * @file
 * Unit tests for the core library glue: scenario dispatch (Fig. 2),
 * trajectory error metrics, and the offline vocabulary / prior-map
 * builders used by the registration scenarios.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace {

// --- Scenario dispatch (Fig. 2) -----------------------------------------

TEST(Scenario, PreferredModesMatchFigureTwo)
{
    EXPECT_EQ(preferredMode(SceneType::IndoorUnknown), BackendMode::Slam);
    EXPECT_EQ(preferredMode(SceneType::IndoorKnown),
              BackendMode::Registration);
    EXPECT_EQ(preferredMode(SceneType::OutdoorUnknown), BackendMode::Vio);
    EXPECT_EQ(preferredMode(SceneType::OutdoorKnown), BackendMode::Vio);
}

TEST(Scenario, ConfigForScenarioEnablesGpsOnlyOutdoors)
{
    for (SceneType s : {SceneType::IndoorUnknown, SceneType::IndoorKnown})
        EXPECT_FALSE(configForScenario(s).use_gps) << sceneName(s);
    for (SceneType s :
         {SceneType::OutdoorUnknown, SceneType::OutdoorKnown})
        EXPECT_TRUE(configForScenario(s).use_gps) << sceneName(s);
}

TEST(Scenario, ConfigModeFollowsPreferredMode)
{
    for (SceneType s :
         {SceneType::IndoorUnknown, SceneType::IndoorKnown,
          SceneType::OutdoorUnknown, SceneType::OutdoorKnown})
        EXPECT_EQ(configForScenario(s).mode, preferredMode(s))
            << sceneName(s);
}

TEST(Scenario, TraitsAreConsistentWithNames)
{
    EXPECT_TRUE(scenarioTraits(SceneType::IndoorKnown).map_available);
    EXPECT_FALSE(scenarioTraits(SceneType::IndoorUnknown).map_available);
    EXPECT_TRUE(scenarioTraits(SceneType::OutdoorKnown).gps_available);
    EXPECT_FALSE(scenarioTraits(SceneType::IndoorKnown).gps_available);
}

// --- Trajectory error metrics ---------------------------------------------

std::vector<Pose>
straightLine(int n, double step)
{
    std::vector<Pose> out;
    for (int i = 0; i < n; ++i)
        out.emplace_back(Quat::identity(), Vec3{i * step, 0.0, 0.0});
    return out;
}

TEST(Evaluation, IdenticalTrajectoriesHaveZeroError)
{
    auto t = straightLine(50, 0.2);
    TrajectoryError e = computeTrajectoryError(t, t);
    EXPECT_NEAR(e.rmse_m, 0.0, 1e-12);
    EXPECT_NEAR(e.max_m, 0.0, 1e-12);
    EXPECT_NEAR(e.mean_rot_deg, 0.0, 1e-9);
    EXPECT_EQ(e.frames, 50);
}

TEST(Evaluation, ConstantOffsetGivesThatRmse)
{
    auto truth = straightLine(40, 0.25);
    std::vector<Pose> est;
    for (const Pose &p : truth)
        est.emplace_back(p.rotation, p.translation + Vec3{0.0, 0.3, 0.4});
    TrajectoryError e = computeTrajectoryError(est, truth);
    EXPECT_NEAR(e.rmse_m, 0.5, 1e-12);
    EXPECT_NEAR(e.max_m, 0.5, 1e-12);
}

TEST(Evaluation, RelativeErrorIsNormalizedByPathLength)
{
    // 40 frames x 0.25 m = ~9.75 m path; 0.5 m RMSE ~= 5.1%.
    auto truth = straightLine(40, 0.25);
    std::vector<Pose> est;
    for (const Pose &p : truth)
        est.emplace_back(p.rotation, p.translation + Vec3{0.5, 0.0, 0.0});
    TrajectoryError e = computeTrajectoryError(est, truth);
    EXPECT_GT(e.relative_percent, 3.0);
    EXPECT_LT(e.relative_percent, 8.0);
}

TEST(Evaluation, RotationErrorIsReported)
{
    auto truth = straightLine(20, 0.3);
    std::vector<Pose> est;
    for (const Pose &p : truth)
        est.emplace_back(
            p.rotation * Quat::fromAxisAngle(Vec3{0, 0, 1}, 0.1),
            p.translation);
    TrajectoryError e = computeTrajectoryError(est, truth);
    EXPECT_NEAR(e.mean_rot_deg, 0.1 * 180.0 / M_PI, 1e-6);
}

TEST(Evaluation, EmptyTrajectoriesAreSafe)
{
    TrajectoryError e = computeTrajectoryError({}, {});
    EXPECT_EQ(e.frames, 0);
    EXPECT_DOUBLE_EQ(e.rmse_m, 0.0);
}

// --- Offline builders -------------------------------------------------------

DatasetConfig
tinyDataset(SceneType scene)
{
    DatasetConfig cfg;
    cfg.scene = scene;
    cfg.platform = Platform::Drone;
    cfg.frame_count = 16;
    cfg.fps = 10.0;
    cfg.seed = 77;
    return cfg;
}

TEST(Evaluation, VocabularyBuilderTrainsFromDataset)
{
    Dataset d(tinyDataset(SceneType::IndoorKnown));
    Vocabulary voc = buildVocabulary(d, /*frame_stride=*/4);
    EXPECT_TRUE(voc.trained());
    EXPECT_GT(voc.wordCount(), 16);
}

TEST(Evaluation, PriorMapCoversTheTrajectory)
{
    Dataset d(tinyDataset(SceneType::IndoorKnown));
    Vocabulary voc = buildVocabulary(d, 4);
    MapBuildConfig mcfg;
    mcfg.frame_stride = 4;
    Map map = buildPriorMap(d, voc, mcfg);
    EXPECT_GE(map.keyframeCount(), 3);
    EXPECT_GT(map.pointCount(), 50);

    // Map points sit inside the (indoor) world bounds.
    double half = d.world().landmarks().empty()
                      ? 12.0
                      : 30.0; // generous envelope
    for (const MapPoint &p : map.points()) {
        EXPECT_LT(std::abs(p.position[0]), half);
        EXPECT_LT(std::abs(p.position[1]), half);
    }
}

TEST(Evaluation, MapNoiseParameterDegradesMapQuality)
{
    Dataset d(tinyDataset(SceneType::IndoorKnown));
    Vocabulary voc = buildVocabulary(d, 4);

    MapBuildConfig clean_cfg;
    clean_cfg.frame_stride = 4;
    clean_cfg.point_noise_m = 0.0;
    clean_cfg.pose_noise_m = 0.0;
    MapBuildConfig noisy_cfg = clean_cfg;
    noisy_cfg.point_noise_m = 0.5;

    Map clean = buildPriorMap(d, voc, clean_cfg);
    Map noisy = buildPriorMap(d, voc, noisy_cfg);
    ASSERT_EQ(clean.pointCount(), noisy.pointCount());

    // The noisy map's points are visibly displaced from the clean ones.
    double total_disp = 0.0;
    for (int i = 0; i < clean.pointCount(); ++i)
        total_disp += (clean.points()[i].position -
                       noisy.points()[i].position)
                          .norm();
    EXPECT_GT(total_disp / clean.pointCount(), 0.2);
}

// --- Localizer odds and ends -------------------------------------------------

TEST(Localizer, BackendMsMatchesActiveMode)
{
    Dataset d(tinyDataset(SceneType::OutdoorUnknown));
    LocalizerConfig cfg = configForScenario(SceneType::OutdoorUnknown);
    Localizer loc(cfg, d.rig(), nullptr, nullptr);
    loc.initialize(d.truthAt(0), 0.0, d.trajectory().velocityAt(0.0));

    DatasetFrame f = d.frame(1);
    FrameInput in;
    in.frame_index = 1;
    in.t = f.t;
    in.left = std::move(f.stereo.left);
    in.right = std::move(f.stereo.right);
    in.imu = d.imuBetweenFrames(1);
    in.gps = d.gpsAtFrame(1);
    LocalizationResult r = loc.processFrame(in);
    EXPECT_EQ(r.mode, BackendMode::Vio);
    // In VIO mode the backend time equals the MSCKF + fusion time.
    EXPECT_NEAR(r.backendMs(), r.telemetry.msckf.total() + r.telemetry.fusion_ms, 1e-9);
    EXPECT_NEAR(r.totalMs(), r.frontendMs() + r.backendMs(), 1e-12);
}

TEST(Localizer, ProcessBeforeInitializeIsRejected)
{
    Dataset d(tinyDataset(SceneType::OutdoorUnknown));
    LocalizerConfig cfg = configForScenario(SceneType::OutdoorUnknown);
    Localizer loc(cfg, d.rig(), nullptr, nullptr);

    DatasetFrame f = d.frame(0);
    FrameInput in;
    in.left = std::move(f.stereo.left);
    in.right = std::move(f.stereo.right);
    LocalizationResult r = loc.processFrame(in);
    EXPECT_FALSE(r.ok);
}

} // namespace
} // namespace edx
