/**
 * @file
 * Tests of the model-driven stage placement (runtime/placement.hpp):
 * cut-list rendering, exact minimax planning over synthetic node
 * profiles, the balance tie-break that buys the backend-internal split,
 * and the telemetry-profile fits.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/placement.hpp"

namespace edx {
namespace {

NodeProfile
profileOf(std::array<double, kPipelineNodes> ms)
{
    NodeProfile p;
    p.node_ms = ms;
    return p;
}

TEST(Placement, DescribeCutsRendersTopology)
{
    EXPECT_EQ(describeCuts({}), "FE+SM+TM+SOLVE+FIN");
    EXPECT_EQ(describeCuts({2}), "FE+SM+TM | SOLVE+FIN");
    EXPECT_EQ(describeCuts({0, 2, 3}), "FE | SM+TM | SOLVE | FIN");
    EXPECT_EQ(describeCuts({0, 1, 2, 3}), "FE | SM | TM | SOLVE | FIN");
}

TEST(Placement, PeriodIsMaxSegmentSum)
{
    NodeProfile p = profileOf({10, 2, 8, 30, 5});
    EXPECT_DOUBLE_EQ(PlacementPlanner::periodFor(p, {}), 55.0);
    EXPECT_DOUBLE_EQ(PlacementPlanner::periodFor(p, {2}), 35.0);
    EXPECT_DOUBLE_EQ(PlacementPlanner::periodFor(p, {0, 2}), 35.0);
    EXPECT_DOUBLE_EQ(PlacementPlanner::periodFor(p, {2, 3}), 30.0);
    EXPECT_DOUBLE_EQ(PlacementPlanner::periodFor(p, {0, 1, 2, 3}), 30.0);
}

TEST(Placement, PlanMinimizesMaxStageTime)
{
    // Backend-solver dominated (the dense-keyframing SLAM shape): the
    // optimal topology must cut the backend internally.
    NodeProfile p = profileOf({10, 2, 8, 30, 5});
    StagePlan plan = PlacementPlanner::plan(p);
    EXPECT_DOUBLE_EQ(plan.period_ms, 30.0);
    // The solver is the floor; the plan must isolate it.
    bool cuts_before_solve = false, cuts_after_solve = false;
    for (int c : plan.cuts) {
        if (c == 2)
            cuts_before_solve = true;
        if (c == 3)
            cuts_after_solve = true;
    }
    EXPECT_TRUE(cuts_before_solve);
    EXPECT_TRUE(cuts_after_solve);
}

TEST(Placement, FrontendBoundWorkloadCutsTheFrontend)
{
    // FE dominates: splitting the backend alone cannot help; the plan
    // must place a cut right after FE.
    NodeProfile p = profileOf({40, 5, 10, 12, 1});
    StagePlan plan = PlacementPlanner::plan(p);
    EXPECT_DOUBLE_EQ(plan.period_ms, 40.0);
    ASSERT_FALSE(plan.cuts.empty());
    EXPECT_EQ(plan.cuts.front(), 0);
}

TEST(Placement, EqualPeriodPrefersBalancedThenFewerStages)
{
    // FE bounds the period either way; the backend-internal extra cut
    // reduces the *second* largest stage, so it must win the tie —
    // while a cut that buys nothing (isolating a ~0 stage) must not
    // add a stage.
    NodeProfile p = profileOf({34, 0.5, 21, 28, 3});
    StagePlan plan = PlacementPlanner::plan(p);
    EXPECT_DOUBLE_EQ(plan.period_ms, 34.0);
    EXPECT_EQ(plan.cuts, (std::vector<int>{0, 2, 3}));

    // With a negligible finish node the same shape folds it back in.
    NodeProfile q = profileOf({34, 0.5, 21, 28, 0.1});
    StagePlan plan_q = PlacementPlanner::plan(q);
    EXPECT_EQ(plan_q.cuts, (std::vector<int>{0, 2}));
}

TEST(Placement, MaxStagesBoundIsHonored)
{
    NodeProfile p = profileOf({10, 10, 10, 10, 10});
    StagePlan five = PlacementPlanner::plan(p, 5);
    EXPECT_EQ(five.stages(), 5);
    EXPECT_DOUBLE_EQ(five.period_ms, 10.0);
    StagePlan two = PlacementPlanner::plan(p, 2);
    EXPECT_LE(two.stages(), 2);
    EXPECT_DOUBLE_EQ(two.period_ms, 30.0); // best 2-way split: 30|20
    StagePlan one = PlacementPlanner::plan(p, 1);
    EXPECT_EQ(one.stages(), 1);
    EXPECT_DOUBLE_EQ(one.period_ms, 50.0);
}

FrameTelemetry
syntheticTelemetry(double scale)
{
    FrameTelemetry t;
    t.frontend.fd_ms = 4.0 * scale;
    t.frontend.if_ms = 1.0 * scale;
    t.frontend.fc_ms = 2.0 * scale;
    t.frontend.mo_ms = 0.5 * scale;
    t.frontend.dr_ms = 0.5 * scale;
    t.frontend.tm_ms = 3.0 * scale;
    t.frontend_workload.image_pixels = 640 * 480;
    t.frontend_workload.stereo_candidates = 900;
    t.frontend_workload.stereo_matches =
        static_cast<int>(100 * scale);
    t.frontend_workload.temporal_tracks = 150;
    t.tracking.pose_opt_ms = 2.0 * scale;
    t.mapping.solver_ms = 10.0 * scale;
    t.mapping.others_ms = 1.0 * scale;
    t.mapping.marginalization_ms = 0.5 * scale;
    t.mapping.loop_ms = 0.5 * scale;
    return t;
}

TEST(Placement, TelemetryProfileRecoversNodeMeans)
{
    std::vector<FrameTelemetry> frames;
    for (int i = 0; i < 12; ++i)
        frames.push_back(syntheticTelemetry(1.0 + 0.05 * (i % 3)));

    NodeProfile p = PlacementPlanner::profileFromTelemetry(
        frames, BackendMode::Slam);
    // Near-constant drivers fall back to per-node means; the profile
    // must land inside the generated scale band [1.0, 1.1].
    EXPECT_NEAR(p.node_ms[0], 7.0 * 1.05, 0.4);  // FE
    EXPECT_NEAR(p.node_ms[1], 1.0 * 1.05, 0.1);  // SM
    EXPECT_NEAR(p.node_ms[2], 3.0 * 1.05, 0.2);  // TM
    EXPECT_NEAR(p.node_ms[3], 13.0 * 1.05, 0.7); // tracking+solver+others
    EXPECT_NEAR(p.node_ms[4], 1.0 * 1.05, 0.1);  // marg+loop
    EXPECT_NEAR(p.totalMs(), 25.0 * 1.05, 1.5);
}

TEST(Placement, PipeNodeMsSplitsBackendPerMode)
{
    FrameTelemetry t = syntheticTelemetry(1.0);
    t.msckf.kalman_gain_ms = 2.5;
    t.fusion_ms = 0.25;

    // SLAM: solve = tracking + solver + others; finish = marg + loop.
    EXPECT_DOUBLE_EQ(pipeNodeMs(t, BackendMode::Slam, 3), 13.0);
    EXPECT_DOUBLE_EQ(pipeNodeMs(t, BackendMode::Slam, 4), 1.0);
    // VIO: solve = MSCKF, finish = fusion.
    EXPECT_DOUBLE_EQ(pipeNodeMs(t, BackendMode::Vio, 3), 2.5);
    EXPECT_DOUBLE_EQ(pipeNodeMs(t, BackendMode::Vio, 4), 0.25);
    // Registration: everything solves, nothing finishes.
    EXPECT_DOUBLE_EQ(pipeNodeMs(t, BackendMode::Registration, 3), 2.0);
    EXPECT_DOUBLE_EQ(pipeNodeMs(t, BackendMode::Registration, 4), 0.0);
    // Frontend nodes are mode-independent.
    EXPECT_DOUBLE_EQ(pipeNodeMs(t, BackendMode::Slam, 0), 7.0);
    EXPECT_DOUBLE_EQ(pipeNodeMs(t, BackendMode::Slam, 1), 1.0);
    EXPECT_DOUBLE_EQ(pipeNodeMs(t, BackendMode::Slam, 2), 3.0);
}

TEST(Placement, EmptyProfileYieldsSequentialPlan)
{
    NodeProfile p = PlacementPlanner::profileFromTelemetry(
        {}, BackendMode::Slam);
    EXPECT_DOUBLE_EQ(p.totalMs(), 0.0);
    StagePlan plan = PlacementPlanner::plan(p);
    EXPECT_TRUE(plan.cuts.empty());
}

TEST(Placement, DegenerateTelemetryNeverYieldsFreeStages)
{
    // Telemetry with plausible workload drivers but all-zero recorded
    // latencies (a profiling stream whose timing hooks never fired)
    // used to fit every sub-stage at exactly 0 ms — free stages that
    // zero the predicted period and make any cut look harmless. Fits
    // are now floored at a small positive epsilon: the plan must
    // degrade to the sequential topology with a finite positive
    // predicted fps, not burn stage workers on nothing.
    std::vector<FrameTelemetry> frames;
    for (int i = 0; i < 8; ++i) {
        FrameTelemetry t;
        t.frontend_workload.image_pixels = 640 * 480;
        t.frontend_workload.stereo_candidates = 500 + 10 * i;
        t.frontend_workload.stereo_matches = 80 + i;
        t.frontend_workload.temporal_tracks = 100 + i;
        frames.push_back(t);
    }
    NodeProfile p = PlacementPlanner::profileFromTelemetry(
        frames, BackendMode::Slam);
    for (double v : p.node_ms)
        EXPECT_GT(v, 0.0);
    StagePlan plan = PlacementPlanner::plan(p);
    EXPECT_TRUE(plan.cuts.empty());
    EXPECT_GT(plan.period_ms, 0.0);
    EXPECT_GT(plan.fps(), 0.0);
    EXPECT_TRUE(std::isfinite(plan.fps()));

    // Partially degenerate: one real sub-stage among zero-measured
    // ones must not buy cuts that only isolate free stages.
    for (FrameTelemetry &t : frames)
        t.frontend.fd_ms = 12.0;
    NodeProfile q = PlacementPlanner::profileFromTelemetry(
        frames, BackendMode::Slam);
    StagePlan plan_q = PlacementPlanner::plan(q);
    EXPECT_TRUE(plan_q.cuts.empty());
    EXPECT_NEAR(plan_q.period_ms, 12.0, 0.1);
}

} // namespace
} // namespace edx
