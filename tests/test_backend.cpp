/**
 * @file
 * Unit tests for the backend blocks: BoW vocabulary, the map store and
 * place recognition, pose-only optimization, GPS fusion, feature-track
 * management, and the MSCKF filter.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "backend/feature_tracks.hpp"
#include "backend/fusion.hpp"
#include "backend/map.hpp"
#include "backend/msckf.hpp"
#include "backend/pose_opt.hpp"
#include "backend/vocabulary.hpp"
#include "math/rng.hpp"
#include "sim/dataset.hpp"
#include "sim/trajectory.hpp"

// --- global allocation counter ------------------------------------------
// The backend zero-alloc acceptance test counts *every* heap allocation
// made while a steady-state MSCKF frame is processed, not just
// workspace growth (same contract as the frontend's test).
namespace {
std::atomic<long> g_alloc_count{0};
}

void *
operator new(std::size_t n)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace edx {
namespace {

/** A random 256-bit descriptor. */
Descriptor
randomDescriptor(Rng &rng)
{
    Descriptor d;
    for (auto &word : d.bits)
        word = (static_cast<uint64_t>(rng.uniformInt(0, 1 << 30)) << 34) ^
               (static_cast<uint64_t>(rng.uniformInt(0, 1 << 30)) << 4) ^
               static_cast<uint64_t>(rng.uniformInt(0, 15));
    return d;
}

/** Flips @p n random bits of a descriptor (a "noisy re-observation"). */
Descriptor
perturbDescriptor(const Descriptor &d, int n, Rng &rng)
{
    Descriptor out = d;
    for (int i = 0; i < n; ++i) {
        int bit = rng.uniformInt(0, 255);
        out.bits[bit / 64] ^= (1ULL << (bit % 64));
    }
    return out;
}

std::vector<Descriptor>
randomCorpus(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Descriptor> corpus;
    corpus.reserve(n);
    for (int i = 0; i < n; ++i)
        corpus.push_back(randomDescriptor(rng));
    return corpus;
}

// --- Vocabulary -------------------------------------------------------

TEST(Vocabulary, TrainingProducesWords)
{
    Vocabulary voc = Vocabulary::train(randomCorpus(600, 3));
    EXPECT_TRUE(voc.trained());
    EXPECT_GT(voc.wordCount(), 8);
}

TEST(Vocabulary, UntrainedVocabularyIsInert)
{
    Vocabulary voc;
    EXPECT_FALSE(voc.trained());
    EXPECT_EQ(voc.wordId(Descriptor{}), -1);
    EXPECT_TRUE(voc.transform({Descriptor{}}).empty());
}

TEST(Vocabulary, TransformIsL1Normalized)
{
    Vocabulary voc = Vocabulary::train(randomCorpus(500, 5));
    std::vector<Descriptor> frame = randomCorpus(80, 99);
    BowVector bow = voc.transform(frame);
    ASSERT_FALSE(bow.empty());
    double sum = 0.0;
    for (const auto &[word, weight] : bow) {
        EXPECT_GE(word, 0);
        EXPECT_GT(weight, 0.0);
        sum += weight;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Vocabulary, SelfSimilarityIsOne)
{
    Vocabulary voc = Vocabulary::train(randomCorpus(500, 7));
    BowVector bow = voc.transform(randomCorpus(60, 101));
    EXPECT_NEAR(Vocabulary::similarity(bow, bow), 1.0, 1e-12);
}

TEST(Vocabulary, SimilarFramesScoreHigherThanRandomFrames)
{
    Rng rng(11);
    std::vector<Descriptor> corpus = randomCorpus(800, 13);
    Vocabulary voc = Vocabulary::train(corpus);

    // Frame A and a noisy re-observation of it (few bit flips per
    // descriptor) versus an unrelated frame.
    std::vector<Descriptor> frame_a(corpus.begin(), corpus.begin() + 70);
    std::vector<Descriptor> frame_a_noisy;
    for (const Descriptor &d : frame_a)
        frame_a_noisy.push_back(perturbDescriptor(d, 6, rng));
    std::vector<Descriptor> unrelated = randomCorpus(70, 747);

    BowVector a = voc.transform(frame_a);
    BowVector a2 = voc.transform(frame_a_noisy);
    BowVector b = voc.transform(unrelated);
    EXPECT_GT(Vocabulary::similarity(a, a2),
              Vocabulary::similarity(a, b));
}

TEST(Vocabulary, WordIdIsStable)
{
    Vocabulary voc = Vocabulary::train(randomCorpus(400, 17));
    Rng rng(19);
    for (int i = 0; i < 50; ++i) {
        Descriptor d = randomDescriptor(rng);
        int w1 = voc.wordId(d);
        int w2 = voc.wordId(d);
        EXPECT_EQ(w1, w2);
        EXPECT_GE(w1, 0);
        EXPECT_LT(w1, voc.wordCount());
    }
}

// --- Map + place recognition ------------------------------------------

Keyframe
makeKeyframe(const Vocabulary &voc, const std::vector<Descriptor> &descs,
             const Pose &pose)
{
    Keyframe kf;
    kf.pose = pose;
    kf.descriptors = descs;
    kf.keypoints.resize(descs.size());
    kf.map_point_ids.assign(descs.size(), -1);
    kf.bow = voc.transform(descs);
    return kf;
}

TEST(Map, QueryPlaceFindsTheMatchingKeyframe)
{
    Rng rng(23);
    Vocabulary voc = Vocabulary::train(randomCorpus(700, 29));
    Map map;

    std::vector<std::vector<Descriptor>> frames;
    for (int i = 0; i < 6; ++i)
        frames.push_back(randomCorpus(60, 1000 + i));
    for (int i = 0; i < 6; ++i)
        map.addKeyframe(makeKeyframe(voc, frames[i], Pose::identity()));

    // Query with a noisy version of frame 4.
    std::vector<Descriptor> noisy;
    for (const Descriptor &d : frames[4])
        noisy.push_back(perturbDescriptor(d, 5, rng));
    auto match = map.queryPlace(voc.transform(noisy));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->keyframe_id, 4);
    EXPECT_GT(match->score, 0.0);
}

TEST(Map, QueryPlaceHonorsMaxIdFilter)
{
    Vocabulary voc = Vocabulary::train(randomCorpus(500, 31));
    Map map;
    std::vector<Descriptor> frame = randomCorpus(50, 2000);
    for (int i = 0; i < 4; ++i)
        map.addKeyframe(makeKeyframe(voc, frame, Pose::identity()));

    auto filtered = map.queryPlace(voc.transform(frame), /*max_id=*/1);
    ASSERT_TRUE(filtered.has_value());
    EXPECT_LE(filtered->keyframe_id, 1);
}

TEST(Map, SaveLoadRoundTripPreservesEverything)
{
    Rng rng(37);
    Vocabulary voc = Vocabulary::train(randomCorpus(400, 41));
    Map map;
    for (int i = 0; i < 30; ++i) {
        MapPoint p;
        p.position = Vec3{rng.uniform(-5, 5), rng.uniform(-5, 5),
                          rng.uniform(0, 3)};
        p.descriptor = randomDescriptor(rng);
        p.observations = i % 4;
        map.addPoint(p);
    }
    auto descs = randomCorpus(40, 43);
    Pose kf_pose(Quat::fromYawPitchRoll(0.3, 0.1, -0.2),
                 Vec3{1.0, 2.0, 0.5});
    map.addKeyframe(makeKeyframe(voc, descs, kf_pose));

    const std::string path = "/tmp/edx_test_backend_map.bin";
    ASSERT_TRUE(map.save(path));
    auto loaded = Map::load(path);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->pointCount(), map.pointCount());
    ASSERT_EQ(loaded->keyframeCount(), map.keyframeCount());
    for (int i = 0; i < map.pointCount(); ++i) {
        const MapPoint &a = map.points()[i];
        const MapPoint &b = loaded->points()[i];
        EXPECT_NEAR((a.position - b.position).norm(), 0.0, 1e-15);
        EXPECT_TRUE(a.descriptor == b.descriptor);
        EXPECT_EQ(a.observations, b.observations);
    }
    const Keyframe &ka = map.keyframes()[0];
    const Keyframe &kb = loaded->keyframes()[0];
    EXPECT_EQ(ka.descriptors.size(), kb.descriptors.size());
    EXPECT_NEAR(ka.pose.distanceTo(kb.pose).translational, 0.0, 1e-15);
    EXPECT_EQ(ka.bow.size(), kb.bow.size());
}

TEST(Map, LoadRejectsMissingFile)
{
    EXPECT_FALSE(Map::load("/tmp/edx_no_such_map.bin").has_value());
}

// --- Pose-only optimization -------------------------------------------

struct PoseOptCase
{
    double pixel_noise;
    double max_translation_error;
    int min_inliers; //!< within 4 px at the optimum
};

class PoseOptRecovers : public ::testing::TestWithParam<PoseOptCase>
{};

TEST_P(PoseOptRecovers, FromPerturbedInitialGuess)
{
    const PoseOptCase param = GetParam();
    CameraIntrinsics cam;
    cam.fx = cam.fy = 400.0;
    cam.cx = 320.0;
    cam.cy = 240.0;

    Rng rng(53);
    Pose truth(Quat::fromYawPitchRoll(0.4, -0.1, 0.05),
               Vec3{2.0, -1.0, 0.7});

    std::vector<PoseObservation> obs;
    for (int i = 0; i < 120; ++i) {
        // World point in front of the camera.
        Vec3 p_cam{rng.uniform(-2, 2), rng.uniform(-1.5, 1.5),
                   rng.uniform(2, 12)};
        Vec3 p_world = truth.rotation.rotate(p_cam) + truth.translation;
        auto px = cam.project(p_cam);
        ASSERT_TRUE(px.has_value());
        PoseObservation o;
        o.point_world = p_world;
        o.pixel = *px + Vec2{rng.gaussian(0, param.pixel_noise),
                             rng.gaussian(0, param.pixel_noise)};
        obs.push_back(o);
    }

    Pose initial(truth.rotation * Quat::fromAxisAngle(Vec3{0, 0, 1}, 0.06),
                 truth.translation + Vec3{0.25, -0.2, 0.1});
    PoseOptResult res = optimizePose(initial, obs, cam, Pose::identity(),
                                     PoseOptConfig{});
    ASSERT_TRUE(res.converged);
    EXPECT_LT(res.pose.distanceTo(truth).translational,
              param.max_translation_error);
    EXPECT_GT(res.inliers, param.min_inliers);
}

INSTANTIATE_TEST_SUITE_P(
    NoiseSweep, PoseOptRecovers,
    ::testing::Values(PoseOptCase{0.0, 1e-4, 115},
                      PoseOptCase{0.5, 0.02, 110},
                      PoseOptCase{1.5, 0.06, 90},
                      PoseOptCase{3.0, 0.15, 55}));

TEST(PoseOpt, OutliersAreDownWeightedByHuber)
{
    CameraIntrinsics cam;
    Rng rng(59);
    Pose truth(Quat::identity(), Vec3{0.5, 0.2, 0.0});

    std::vector<PoseObservation> obs;
    for (int i = 0; i < 100; ++i) {
        Vec3 p_cam{rng.uniform(-2, 2), rng.uniform(-1.5, 1.5),
                   rng.uniform(2, 10)};
        Vec3 p_world = truth.rotation.rotate(p_cam) + truth.translation;
        auto px = cam.project(p_cam);
        ASSERT_TRUE(px.has_value());
        PoseObservation o;
        o.point_world = p_world;
        o.pixel = *px;
        if (i % 10 == 0) // 10% gross outliers
            o.pixel += Vec2{rng.uniform(40, 80), rng.uniform(40, 80)};
        obs.push_back(o);
    }
    PoseOptResult res = optimizePose(Pose::identity(), obs, cam,
                                     Pose::identity(), PoseOptConfig{});
    ASSERT_TRUE(res.converged);
    EXPECT_LT(res.pose.distanceTo(truth).translational, 0.05);
}

TEST(PoseOpt, TooFewObservationsDoNotConverge)
{
    CameraIntrinsics cam;
    std::vector<PoseObservation> obs(2);
    obs[0].point_world = Vec3{0, 0, 5};
    obs[0].pixel = Vec2{320, 240};
    obs[1].point_world = Vec3{1, 0, 5};
    obs[1].pixel = Vec2{400, 240};
    PoseOptResult res = optimizePose(Pose::identity(), obs, cam,
                                     Pose::identity(), PoseOptConfig{});
    EXPECT_FALSE(res.converged);
}

// --- GPS fusion ---------------------------------------------------------

TEST(Fusion, EstimatesConstantDrift)
{
    GpsFusion fusion;
    Vec3 true_drift{1.5, -0.8, 0.2};
    Rng rng(61);
    Vec3 vio_pos = Vec3::zero();
    for (int i = 0; i < 200; ++i) {
        vio_pos += Vec3{0.05, 0.02, 0.0};
        GpsSample gps;
        gps.valid = true;
        gps.t = i * 0.1;
        gps.sigma = 0.4;
        gps.position = vio_pos + true_drift +
                       Vec3{rng.gaussian(0, 0.2), rng.gaussian(0, 0.2),
                            rng.gaussian(0, 0.2)};
        fusion.fuse(vio_pos, gps, 0.1);
    }
    EXPECT_GT(fusion.updatesApplied(), 150);
    EXPECT_LT((fusion.drift() - true_drift).norm(), 0.15);
}

TEST(Fusion, CorrectAppliesDriftToPosition)
{
    GpsFusion fusion;
    GpsSample gps;
    gps.valid = true;
    gps.sigma = 0.1;
    gps.position = Vec3{10.0, 0.0, 0.0};
    // Repeated updates pull the drift toward gps - vio = {10,0,0} - 0.
    for (int i = 0; i < 60; ++i)
        fusion.fuse(Vec3::zero(), gps, 0.1);
    Pose vio(Quat::identity(), Vec3::zero());
    Pose corrected = fusion.correct(vio);
    EXPECT_NEAR(corrected.translation[0], 10.0, 0.5);
}

TEST(Fusion, InvalidFixesAreIgnored)
{
    GpsFusion fusion;
    GpsSample invalid; // valid defaults to false
    for (int i = 0; i < 50; ++i)
        fusion.fuse(Vec3::zero(), invalid, 0.1);
    EXPECT_EQ(fusion.updatesApplied(), 0);
    EXPECT_NEAR(fusion.drift().norm(), 0.0, 1e-12);
}

TEST(Fusion, InnovationGateRejectsMultipathGlitches)
{
    FusionConfig cfg;
    cfg.gate_sigma = 4.0;
    GpsFusion fusion(cfg);
    Rng rng(67);

    // Converge on a small drift first.
    for (int i = 0; i < 100; ++i) {
        GpsSample gps;
        gps.valid = true;
        gps.sigma = 0.3;
        gps.position = Vec3{0.5, 0.0, 0.0} +
                       Vec3{rng.gaussian(0, 0.1), rng.gaussian(0, 0.1),
                            rng.gaussian(0, 0.1)};
        fusion.fuse(Vec3::zero(), gps, 0.1);
    }
    Vec3 drift_before = fusion.drift();
    int rejected_before = fusion.updatesRejected();

    // A 40 m multipath glitch must be gated out.
    GpsSample glitch;
    glitch.valid = true;
    glitch.sigma = 0.3;
    glitch.position = Vec3{40.0, 0.0, 0.0};
    fusion.fuse(Vec3::zero(), glitch, 0.1);
    EXPECT_EQ(fusion.updatesRejected(), rejected_before + 1);
    EXPECT_LT((fusion.drift() - drift_before).norm(), 0.05);
}

// --- Feature-track management ------------------------------------------

/** Builds a minimal frontend output with given keypoints/links. */
FrontendOutput
frameWith(const std::vector<Vec2> &kps,
          const std::vector<std::pair<int, Vec2>> &temporal,
          const std::vector<std::pair<int, float>> &stereo)
{
    FrontendOutput f;
    for (const Vec2 &p : kps) {
        KeyPoint kp;
        kp.x = static_cast<float>(p[0]);
        kp.y = static_cast<float>(p[1]);
        f.keypoints.push_back(kp);
        f.descriptors.emplace_back();
    }
    for (const auto &[prev_index, pos] : temporal) {
        TemporalMatch m;
        m.prev_index = prev_index;
        m.x = static_cast<float>(pos[0]);
        m.y = static_cast<float>(pos[1]);
        f.temporal.push_back(m);
    }
    for (const auto &[left_index, disparity] : stereo) {
        StereoMatch m;
        m.left_index = left_index;
        m.disparity = disparity;
        f.stereo.push_back(m);
    }
    return f;
}

TEST(FeatureTracks, ContinuedTrackSpansFrames)
{
    FeatureTrackManager mgr;

    // Frame 0: one key point at (100, 100) with stereo depth.
    auto f0 = frameWith({Vec2{100, 100}}, {}, {{0, 8.0f}});
    auto finished = mgr.ingest(f0, 0);
    EXPECT_TRUE(finished.empty());
    ASSERT_EQ(mgr.liveTracks().size(), 1u);

    // Frame 1: LK tracked it to (102, 101); a detector key point sits
    // within the continuation radius.
    auto f1 = frameWith({Vec2{102.5, 101.0}}, {{0, Vec2{102, 101}}},
                        {{0, 7.5f}});
    finished = mgr.ingest(f1, 1);
    EXPECT_TRUE(finished.empty());
    ASSERT_EQ(mgr.liveTracks().size(), 1u);
    EXPECT_EQ(mgr.liveTracks()[0].observations.size(), 2u);
    EXPECT_EQ(mgr.liveTracks()[0].observations[1].clone_id, 1);

    // Frame 2: the track is not matched -> it finishes.
    auto f2 = frameWith({Vec2{400, 200}}, {}, {});
    finished = mgr.ingest(f2, 2);
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].observations.size(), 2u);
}

TEST(FeatureTracks, DisparityIsRecordedPerObservation)
{
    FeatureTrackManager mgr;
    auto f0 = frameWith({Vec2{50, 60}}, {}, {{0, 12.0f}});
    mgr.ingest(f0, 0);
    ASSERT_EQ(mgr.liveTracks().size(), 1u);
    EXPECT_NEAR(mgr.liveTracks()[0].observations[0].disparity, 12.0, 1e-6);

    auto f1 = frameWith({Vec2{51, 60}}, {{0, Vec2{51, 60}}}, {});
    mgr.ingest(f1, 1);
    ASSERT_EQ(mgr.liveTracks().size(), 1u);
    EXPECT_LT(mgr.liveTracks()[0].observations[1].disparity, 0.0);
}

TEST(FeatureTracks, DropObservationsBeforeSlidesWindow)
{
    FeatureTrackManager mgr;
    auto f0 = frameWith({Vec2{10, 10}}, {}, {{0, 9.0f}});
    mgr.ingest(f0, 0);
    for (int i = 1; i < 5; ++i) {
        auto f = frameWith({Vec2{10.f + i, 10}},
                           {{0, Vec2{10.0 + i, 10}}}, {{0, 9.0f}});
        mgr.ingest(f, i);
    }
    ASSERT_EQ(mgr.liveTracks().size(), 1u);
    ASSERT_EQ(mgr.liveTracks()[0].observations.size(), 5u);
    mgr.dropObservationsBefore(3);
    EXPECT_EQ(mgr.liveTracks()[0].observations.size(), 2u);
    EXPECT_GE(mgr.liveTracks()[0].observations.front().clone_id, 3);
}

TEST(FeatureTracks, ResetDropsEverything)
{
    FeatureTrackManager mgr;
    mgr.ingest(frameWith({Vec2{10, 10}}, {}, {}), 0);
    mgr.reset();
    EXPECT_TRUE(mgr.liveTracks().empty());
}

// --- MSCKF --------------------------------------------------------------

/** Clean IMU batch sampled from the analytic trajectory. */
std::vector<ImuSample>
cleanImuBatch(const Trajectory &traj, double t0, double t1, double rate)
{
    std::vector<ImuSample> out;
    for (double t = t0; t < t1 - 1e-12; t += 1.0 / rate)
        out.push_back(traj.imuTruthAt(t + 0.5 / rate));
    return out;
}

TEST(Msckf, StationaryPropagationStaysPut)
{
    StereoRig rig = platformRig(Platform::Drone);
    Msckf filter(rig);
    Pose start(Quat::identity(), Vec3{1.0, 2.0, 1.5});
    filter.initialize(start, 0.0);

    // Standstill: zero gyro, specific force cancels gravity.
    std::vector<ImuSample> batch;
    for (int i = 0; i < 100; ++i) {
        ImuSample s;
        s.t = (i + 1) * 0.005;
        s.gyro = Vec3::zero();
        s.accel = -gravityWorld(); // body frame == world frame
        batch.push_back(s);
    }
    filter.propagate(batch);
    Pose end = filter.pose();
    EXPECT_LT(end.distanceTo(start).translational, 1e-6);
    EXPECT_LT(end.distanceTo(start).rotational, 1e-9);
    EXPECT_LT(filter.velocity().norm(), 1e-6);
}

TEST(Msckf, PropagationFollowsAnalyticTrajectory)
{
    Trajectory traj = Trajectory::drone(8.0, 40.0);
    StereoRig rig = platformRig(Platform::Drone);
    Msckf filter(rig);
    filter.initialize(traj.poseAt(0.0), 0.0, traj.velocityAt(0.0));

    const double rate = 200.0;
    const double horizon = 1.5;
    filter.propagate(cleanImuBatch(traj, 0.0, horizon, rate));
    Pose end = filter.pose();
    Pose truth = traj.poseAt(horizon);
    // Pure dead-reckoning on clean IMU over 1.5 s: centimeter class.
    EXPECT_LT(end.distanceTo(truth).translational, 0.05)
        << "dead-reckoned " << end.translation << " vs "
        << truth.translation;
    EXPECT_LT(end.distanceTo(truth).rotational, 0.02);
}

TEST(Msckf, CloneWindowIsBounded)
{
    MsckfConfig cfg;
    cfg.max_clones = 5;
    StereoRig rig = platformRig(Platform::Drone);
    Msckf filter(rig, cfg);
    filter.initialize(Pose::identity(), 0.0);

    for (int i = 0; i < 12; ++i) {
        long oldest = filter.update({}, i);
        EXPECT_LE(filter.cloneCount(), cfg.max_clones);
        if (i >= cfg.max_clones) {
            EXPECT_GT(oldest, 0);
        }
    }
    // Covariance stays consistent with the state dimension.
    EXPECT_EQ(filter.covariance().rows(), 15 + 6 * filter.cloneCount());
}

TEST(Msckf, CovarianceStaysSymmetricPositive)
{
    Trajectory traj = Trajectory::drone(8.0, 40.0);
    StereoRig rig = platformRig(Platform::Drone);
    Msckf filter(rig);
    filter.initialize(traj.poseAt(0.0), 0.0, traj.velocityAt(0.0));

    for (int frame = 1; frame <= 8; ++frame) {
        filter.propagate(
            cleanImuBatch(traj, (frame - 1) * 0.1, frame * 0.1, 200.0));
        filter.update({}, frame);
        const MatX &p = filter.covariance();
        for (int i = 0; i < p.rows(); ++i) {
            EXPECT_GT(p(i, i), 0.0) << "diag " << i << " frame " << frame;
            for (int j = 0; j < i; ++j)
                ASSERT_NEAR(p(i, j), p(j, i),
                            1e-9 * std::max(1.0, std::abs(p(i, i))));
        }
    }
}

/**
 * Synthesizes perfect stereo feature tracks of world landmarks along the
 * trajectory and verifies the MSCKF update uses them to bound drift
 * relative to IMU-only dead reckoning over a longer horizon.
 */
TEST(Msckf, VisualUpdatesReduceDriftVersusImuOnly)
{
    Trajectory traj = Trajectory::drone(8.0, 40.0);
    StereoRig rig = platformRig(Platform::Drone);

    // Landmarks around the loop.
    Rng rng(71);
    std::vector<Vec3> landmarks;
    for (int i = 0; i < 240; ++i) {
        double ang = rng.uniform(0, 2 * M_PI);
        double r = rng.uniform(10.0, 16.0);
        landmarks.push_back(
            Vec3{r * std::cos(ang), r * std::sin(ang), rng.uniform(0, 4)});
    }

    auto observe = [&](const Pose &world_from_body, const Vec3 &lm,
                       Vec2 &px, double &disp) {
        Pose camera_from_world =
            (world_from_body * rig.body_from_camera).inverse();
        Vec3 p_cam = camera_from_world.rotation.rotate(lm) +
                     camera_from_world.translation;
        auto proj = rig.cam.project(p_cam);
        if (!proj || !rig.cam.inImage(*proj, 8.0))
            return false;
        px = *proj;
        disp = rig.disparityFromDepth(p_cam[2]);
        return true;
    };

    const double fps = 10.0, rate = 200.0;
    const int frames = 60;

    auto run = [&](bool with_updates) {
        Msckf filter(rig);
        filter.initialize(traj.poseAt(0.0), 0.0, traj.velocityAt(0.0));
        // Live tracks keyed by landmark index.
        std::unordered_map<int, FeatureTrack> live;
        long next_id = 1;
        double final_err = 0.0;
        for (int f = 1; f <= frames; ++f) {
            double t0 = (f - 1) / fps, t1 = f / fps;
            filter.propagate(cleanImuBatch(traj, t0, t1, rate));

            std::vector<FeatureTrack> finished;
            if (with_updates) {
                Pose truth = traj.poseAt(t1);
                for (int li = 0; li < static_cast<int>(landmarks.size());
                     ++li) {
                    Vec2 px;
                    double disp;
                    bool vis = observe(truth, landmarks[li], px, disp);
                    auto it = live.find(li);
                    if (vis) {
                        if (it == live.end()) {
                            FeatureTrack tr;
                            tr.id = next_id++;
                            live.emplace(li, std::move(tr));
                            it = live.find(li);
                        }
                        TrackObservation ob;
                        ob.clone_id = f;
                        ob.pixel = px;
                        ob.disparity = disp;
                        it->second.observations.push_back(ob);
                    } else if (it != live.end()) {
                        finished.push_back(std::move(it->second));
                        live.erase(it);
                    }
                }
            }
            long oldest = filter.update(finished, f);
            if (with_updates) {
                for (auto &[li, tr] : live) {
                    auto &obs = tr.observations;
                    obs.erase(std::remove_if(
                                  obs.begin(), obs.end(),
                                  [&](const TrackObservation &o) {
                                      return o.clone_id < oldest;
                                  }),
                              obs.end());
                }
            }
            final_err = filter.pose()
                            .distanceTo(traj.poseAt(t1))
                            .translational;
        }
        return final_err;
    };

    double err_imu_only = run(false);
    double err_msckf = run(true);
    // Visual updates must not blow up, and after 6 s they beat pure
    // integration (which accumulates quadratic error).
    EXPECT_LT(err_msckf, 1.0);
    EXPECT_LT(err_msckf, err_imu_only + 0.05);
}

TEST(Msckf, TimingAndWorkloadArePopulatedOnUpdate)
{
    StereoRig rig = platformRig(Platform::Drone);
    Msckf filter(rig);
    filter.initialize(Pose::identity(), 0.0);
    filter.update({}, 0);
    EXPECT_GE(filter.lastTiming().total(), 0.0);
    EXPECT_EQ(filter.lastWorkload().state_dim, 15 + 6);
}

// --- Backend workspace contract ----------------------------------------

/**
 * Synthetic stereo VIO scene + per-frame track bookkeeping shared by
 * the workspace/equivalence tests (the same world as the drift test
 * above, factored for reuse).
 */
struct SyntheticVioRun
{
    Trajectory traj = Trajectory::drone(8.0, 40.0);
    StereoRig rig = platformRig(Platform::Drone);
    std::vector<Vec3> landmarks;
    std::unordered_map<int, FeatureTrack> live;
    long next_id = 1;
    double fps = 10.0, imu_rate = 200.0;

    SyntheticVioRun()
    {
        Rng rng(71);
        for (int i = 0; i < 240; ++i) {
            double ang = rng.uniform(0, 2 * M_PI);
            double r = rng.uniform(10.0, 16.0);
            landmarks.push_back(Vec3{r * std::cos(ang),
                                     r * std::sin(ang),
                                     rng.uniform(0, 4)});
        }
    }

    bool
    observe(const Pose &world_from_body, const Vec3 &lm, Vec2 &px,
            double &disp) const
    {
        Pose camera_from_world =
            (world_from_body * rig.body_from_camera).inverse();
        Vec3 p_cam = camera_from_world.rotation.rotate(lm) +
                     camera_from_world.translation;
        auto proj = rig.cam.project(p_cam);
        if (!proj || !rig.cam.inImage(*proj, 8.0))
            return false;
        px = *proj;
        disp = rig.disparityFromDepth(p_cam[2]);
        return true;
    }

    /** Builds the finished tracks of frame @p f (allocates freely). */
    std::vector<FeatureTrack>
    frameTracks(int f)
    {
        std::vector<FeatureTrack> finished;
        Pose truth = traj.poseAt(f / fps);
        for (int li = 0; li < static_cast<int>(landmarks.size()); ++li) {
            Vec2 px;
            double disp;
            bool vis = observe(truth, landmarks[li], px, disp);
            auto it = live.find(li);
            if (vis) {
                if (it == live.end()) {
                    FeatureTrack tr;
                    tr.id = next_id++;
                    live.emplace(li, std::move(tr));
                    it = live.find(li);
                }
                TrackObservation ob;
                ob.clone_id = f;
                ob.pixel = px;
                ob.disparity = disp;
                it->second.observations.push_back(ob);
            } else if (it != live.end()) {
                finished.push_back(std::move(it->second));
                live.erase(it);
            }
        }
        return finished;
    }

    void
    pruneBefore(long oldest)
    {
        for (auto &[li, tr] : live) {
            auto &obs = tr.observations;
            obs.erase(std::remove_if(obs.begin(), obs.end(),
                                     [&](const TrackObservation &o) {
                                         return o.clone_id < oldest;
                                     }),
                      obs.end());
        }
    }
};

TEST(Msckf, SteadyStateBackendFramesAreZeroAlloc)
{
    SyntheticVioRun run;
    MsckfConfig cfg; // default window (30 clones)
    Msckf filter(run.rig, cfg);
    filter.initialize(run.traj.poseAt(0.0), 0.0,
                      run.traj.velocityAt(0.0));

    // Warm past the point where the clone window is full and the track
    // load has cycled (window fills at frame 30).
    const int warm_frames = 48, measured_frames = 12;
    long measured_allocs = 0;
    long warm_events = -1;
    for (int f = 1; f <= warm_frames + measured_frames; ++f) {
        std::vector<FeatureTrack> finished = run.frameTracks(f);
        std::vector<ImuSample> imu =
            cleanImuBatch(run.traj, (f - 1) / run.fps, f / run.fps,
                          run.imu_rate);
        long oldest;
        if (f <= warm_frames) {
            filter.propagate(imu);
            oldest = filter.update(finished, f);
        } else {
            const long before = g_alloc_count.load();
            filter.propagate(imu);
            oldest = filter.update(finished, f);
            measured_allocs += g_alloc_count.load() - before;
        }
        if (f == warm_frames)
            warm_events = filter.allocationEvents();
        run.pruneBefore(oldest);
    }
    EXPECT_GT(filter.lastWorkload().state_dim, 15); // updates ran
    EXPECT_EQ(measured_allocs, 0)
        << "steady-state backend frames must not touch the heap";
    EXPECT_EQ(filter.allocationEvents(), warm_events)
        << "workspace grew after warm-up";
    EXPECT_GT(filter.workspaceCapacityBytes(), 0u);
}

TEST(Msckf, CovarianceIsExactlySymmetricAfterUpdates)
{
    SyntheticVioRun run;
    Msckf filter(run.rig);
    filter.initialize(run.traj.poseAt(0.0), 0.0,
                      run.traj.velocityAt(0.0));
    for (int f = 1; f <= 40; ++f) {
        filter.propagate(cleanImuBatch(run.traj, (f - 1) / run.fps,
                                       f / run.fps, run.imu_rate));
        long oldest = filter.update(run.frameTracks(f), f);
        run.pruneBefore(oldest);
        const MatX &p = filter.covariance();
        double asym = 0.0;
        for (int i = 0; i < p.rows(); ++i)
            for (int j = 0; j < i; ++j)
                asym = std::max(asym, std::abs(p(i, j) - p(j, i)));
        // Triangle-mirrored kernels leave the covariance *exactly*
        // symmetric — no drift into solveSpd's LU fallback.
        EXPECT_EQ(asym, 0.0) << "frame " << f;
    }
}

TEST(Msckf, OptimizedPathTracksReferencePath)
{
    // The optimized kernels reassociate floating point, so the two
    // paths are not bit-identical; over a 30-frame run the filters
    // must stay numerically glued and equally accurate.
    auto runFilter = [&](bool use_reference) {
        SyntheticVioRun run;
        MsckfConfig cfg;
        cfg.use_reference = use_reference;
        Msckf filter(run.rig, cfg);
        filter.initialize(run.traj.poseAt(0.0), 0.0,
                          run.traj.velocityAt(0.0));
        std::vector<Pose> poses;
        for (int f = 1; f <= 30; ++f) {
            filter.propagate(cleanImuBatch(run.traj, (f - 1) / run.fps,
                                           f / run.fps, run.imu_rate));
            long oldest = filter.update(run.frameTracks(f), f);
            run.pruneBefore(oldest);
            poses.push_back(filter.pose());
        }
        return poses;
    };
    std::vector<Pose> opt = runFilter(false);
    std::vector<Pose> ref = runFilter(true);
    ASSERT_EQ(opt.size(), ref.size());
    for (size_t i = 0; i < opt.size(); ++i) {
        Pose::Delta e = opt[i].distanceTo(ref[i]);
        EXPECT_LT(e.translational, 1e-4) << "frame " << i;
        EXPECT_LT(e.rotational, 1e-4) << "frame " << i;
    }
}

TEST(Msckf, Float32CovarianceTracksFloat64Path)
{
    // The mixed-precision covariance update (float32_covariance_update)
    // has no bit-exact twin — its contract is this pose-divergence
    // bound against the f64 path over the same 30-frame run as the
    // reference-vs-optimized test. Observed divergence on this run is
    // ~3e-9 m / ~1e-10 rad (the f64-accumulated correction keeps the
    // f32 rounding confined to the gain); the asserted bound leaves
    // two-plus orders of headroom while staying far below the
    // 1e-4-scale tolerance the f64 twin test runs under.
    auto runFilter = [&](bool f32) {
        SyntheticVioRun run;
        MsckfConfig cfg;
        cfg.float32_covariance_update = f32;
        Msckf filter(run.rig, cfg);
        filter.initialize(run.traj.poseAt(0.0), 0.0,
                          run.traj.velocityAt(0.0));
        std::vector<Pose> poses;
        for (int f = 1; f <= 30; ++f) {
            filter.propagate(cleanImuBatch(run.traj, (f - 1) / run.fps,
                                           f / run.fps, run.imu_rate));
            long oldest = filter.update(run.frameTracks(f), f);
            run.pruneBefore(oldest);
            poses.push_back(filter.pose());
            // The f32 downdate mirrors its term like the f64 kernel:
            // exact symmetry must survive the mixed-precision path.
            const MatX &p = filter.covariance();
            for (int i = 0; i < p.rows(); ++i)
                for (int j = 0; j < i; ++j)
                    EXPECT_EQ(p(i, j), p(j, i)) << "frame " << f;
        }
        return poses;
    };
    std::vector<Pose> f32 = runFilter(true);
    std::vector<Pose> f64 = runFilter(false);
    ASSERT_EQ(f32.size(), f64.size());
    for (size_t i = 0; i < f32.size(); ++i) {
        Pose::Delta e = f32[i].distanceTo(f64[i]);
        EXPECT_LT(e.translational, 1e-6) << "frame " << i;
        EXPECT_LT(e.rotational, 1e-6) << "frame " << i;
    }
}

} // namespace
} // namespace edx
