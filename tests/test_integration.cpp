/**
 * @file
 * End-to-end integration tests: the full localizer running each backend
 * mode on synthetic datasets with known ground truth. These are the
 * tests that protect the headline claims - each mode localizes with
 * bounded error in its preferred scenario.
 */
#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace {

/** Runs the localizer over a dataset; returns estimate + truth. */
struct RunOutput
{
    std::vector<Pose> estimate;
    std::vector<Pose> truth;
    std::vector<LocalizationResult> results;
};

RunOutput
runLocalizer(Localizer &loc, const Dataset &dataset, int frames)
{
    RunOutput out;
    loc.initialize(dataset.truthAt(0), 0.0,
                   dataset.trajectory().velocityAt(0.0));
    for (int i = 0; i < frames; ++i) {
        DatasetFrame f = dataset.frame(i);
        FrameInput in;
        in.frame_index = i;
        in.t = f.t;
        in.left = std::move(f.stereo.left);
        in.right = std::move(f.stereo.right);
        in.imu = dataset.imuBetweenFrames(i);
        in.gps = dataset.gpsAtFrame(i);
        LocalizationResult r = loc.processFrame(in);
        out.estimate.push_back(r.pose);
        out.truth.push_back(f.truth);
        out.results.push_back(r);
    }
    return out;
}

DatasetConfig
droneConfig(SceneType scene, int frames, uint64_t seed = 42)
{
    DatasetConfig cfg;
    cfg.scene = scene;
    cfg.platform = Platform::Drone;
    cfg.frame_count = frames;
    cfg.fps = 10.0;
    cfg.seed = seed;
    return cfg;
}

TEST(Integration, VioTracksOutdoorTrajectory)
{
    Dataset dataset(droneConfig(SceneType::OutdoorUnknown, 50));
    LocalizerConfig cfg = configForScenario(SceneType::OutdoorUnknown);
    Localizer loc(cfg, dataset.rig(), nullptr, nullptr);
    RunOutput out = runLocalizer(loc, dataset, 50);
    TrajectoryError err =
        computeTrajectoryError(out.estimate, out.truth);
    // 5 seconds of flight with GPS: sub-meter error expected.
    EXPECT_LT(err.rmse_m, 1.0) << "VIO+GPS rmse " << err.rmse_m;
    EXPECT_GT(err.frames, 0);
}

TEST(Integration, VioWithoutGpsDriftsMoreThanWithGps)
{
    Dataset dataset(droneConfig(SceneType::OutdoorUnknown, 50));

    LocalizerConfig with_gps = configForScenario(SceneType::OutdoorUnknown);
    LocalizerConfig no_gps = with_gps;
    no_gps.use_gps = false;
    Localizer loc_gps(with_gps, dataset.rig(), nullptr, nullptr);
    Localizer loc_nogps(no_gps, dataset.rig(), nullptr, nullptr);
    RunOutput r_gps = runLocalizer(loc_gps, dataset, 50);
    RunOutput r_nogps = runLocalizer(loc_nogps, dataset, 50);
    TrajectoryError e_gps =
        computeTrajectoryError(r_gps.estimate, r_gps.truth);
    TrajectoryError e_nogps =
        computeTrajectoryError(r_nogps.estimate, r_nogps.truth);
    // GPS fusion must not be worse; usually strictly better over time.
    EXPECT_LE(e_gps.rmse_m, e_nogps.rmse_m * 1.2 + 0.05);
}

TEST(Integration, SlamLocalizesIndoor)
{
    Dataset dataset(droneConfig(SceneType::IndoorUnknown, 50));
    LocalizerConfig cfg = configForScenario(SceneType::IndoorUnknown);
    ASSERT_EQ(cfg.mode, BackendMode::Slam);

    Vocabulary voc = buildVocabulary(dataset, 12);
    ASSERT_TRUE(voc.trained());
    Localizer loc(cfg, dataset.rig(), &voc, nullptr);
    RunOutput out = runLocalizer(loc, dataset, 50);
    TrajectoryError err =
        computeTrajectoryError(out.estimate, out.truth);
    EXPECT_LT(err.rmse_m, 1.0) << "SLAM rmse " << err.rmse_m;
    EXPECT_GT(loc.currentMap()->pointCount(), 50);
}

TEST(Integration, RegistrationLocalizesInKnownMap)
{
    Dataset dataset(droneConfig(SceneType::IndoorKnown, 40));
    Vocabulary voc = buildVocabulary(dataset, 12);
    Map map = buildPriorMap(dataset, voc);
    ASSERT_GT(map.pointCount(), 100);

    LocalizerConfig cfg = configForScenario(SceneType::IndoorKnown);
    ASSERT_EQ(cfg.mode, BackendMode::Registration);
    Localizer loc(cfg, dataset.rig(), &voc, &map);
    RunOutput out = runLocalizer(loc, dataset, 40);
    TrajectoryError err =
        computeTrajectoryError(out.estimate, out.truth);
    EXPECT_LT(err.rmse_m, 0.5) << "registration rmse " << err.rmse_m;

    int ok_frames = 0;
    for (const auto &r : out.results)
        if (r.ok)
            ++ok_frames;
    EXPECT_GT(ok_frames, 30);
}

TEST(Integration, TimingInstrumentationIsPopulated)
{
    Dataset dataset(droneConfig(SceneType::IndoorKnown, 12));
    Vocabulary voc = buildVocabulary(dataset, 6);
    Map map = buildPriorMap(dataset, voc);
    LocalizerConfig cfg = configForScenario(SceneType::IndoorKnown);
    Localizer loc(cfg, dataset.rig(), &voc, &map);
    RunOutput out = runLocalizer(loc, dataset, 12);
    for (const auto &r : out.results) {
        EXPECT_GT(r.frontendMs(), 0.0);
        EXPECT_GE(r.backendMs(), 0.0);
        EXPECT_GT(r.telemetry.frontend_workload.left_features, 0);
    }
}

TEST(Integration, MapPersistenceRoundTrip)
{
    Dataset dataset(droneConfig(SceneType::IndoorKnown, 20));
    Vocabulary voc = buildVocabulary(dataset, 10);
    Map map = buildPriorMap(dataset, voc);
    const std::string path = "/tmp/edx_test_map.bin";
    ASSERT_TRUE(map.save(path));
    auto loaded = Map::load(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->pointCount(), map.pointCount());
    EXPECT_EQ(loaded->keyframeCount(), map.keyframeCount());

    // The loaded map must work for localization just like the original.
    LocalizerConfig cfg = configForScenario(SceneType::IndoorKnown);
    Localizer loc(cfg, dataset.rig(), &voc, &*loaded);
    RunOutput out = runLocalizer(loc, dataset, 20);
    TrajectoryError err =
        computeTrajectoryError(out.estimate, out.truth);
    EXPECT_LT(err.rmse_m, 0.5);
}

} // namespace
} // namespace edx
