/**
 * @file
 * Golden-output equivalence tests: every optimized frontend kernel
 * against its retained scalar reference implementation.
 *
 * The optimized kernels (fixed-point separable Gaussian, candidate-list
 * FAST NMS, raw-pointer ORB sampling, row-banded stereo MO, fast-path
 * SAD refinement, gradient-cached LK) are required to be *bit-exact* with
 * the references — not merely close — so every comparison here is exact
 * equality. Any fast-path arithmetic drift fails loudly.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "features/fast.hpp"
#include "features/optical_flow.hpp"
#include "features/orb.hpp"
#include "features/stereo.hpp"
#include "image/draw.hpp"
#include "image/filter.hpp"
#include "image/pyramid.hpp"
#include "math/rng.hpp"
#include "math/cpu_features.hpp"

namespace edx {
namespace {

/**
 * Runs @p fn once per SIMD tier available at runtime (SSE2 always;
 * AVX2 when the host and build support it), restoring the startup tier
 * afterwards. The golden sweeps below run under every tier so each
 * per-tier kernel faces the same exactness contract — on an SSE2-only
 * host the loop degenerates to the baseline tier. Tier forcing from
 * the outside works too: under EDX_SIMD_LEVEL=sse2 the detected tier
 * is still the host's, so this loop intentionally uses the *startup*
 * tier as its ceiling to honor the override.
 */
template <typename Fn>
void
forEachSimdTier(Fn &&fn)
{
    const SimdTier startup = activeSimdTier();
    for (int t = 0; t <= static_cast<int>(startup); ++t) {
        const SimdTier tier = static_cast<SimdTier>(t);
        setSimdTier(tier);
        testing::ScopedTrace trace(__FILE__, __LINE__,
                                   simdTierName(tier));
        fn();
    }
    setSimdTier(startup);
}

ImageU8
noisyImage(int w, int h, uint64_t seed, int patches = 12)
{
    ImageU8 img(w, h);
    Rng rng(seed);
    fillNoisyBackground(img, 110, 14, rng);
    uint32_t tex = 7000;
    for (int i = 0; i < patches; ++i)
        drawTexturedPatch(img, rng.uniform(4, w - 4),
                          rng.uniform(4, h - 4), 9, tex++, 170);
    return img;
}

void
expectImagesIdentical(const ImageU8 &a, const ImageU8 &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             static_cast<size_t>(a.pixelCount())));
}

void
expectKeypointsIdentical(const std::vector<KeyPoint> &a,
                         const std::vector<KeyPoint> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].x, b[i].x) << "kp " << i;
        EXPECT_EQ(a[i].y, b[i].y) << "kp " << i;
        EXPECT_EQ(a[i].score, b[i].score) << "kp " << i;
        EXPECT_EQ(a[i].angle, b[i].angle) << "kp " << i;
    }
}

TEST(GaussianGolden, MatchesReferenceOnNoise)
{
    forEachSimdTier([&] {
        for (auto [w, h] : {std::pair{320, 240}, {33, 17}, {641, 13}}) {
            ImageU8 img = noisyImage(w, h, 100 + w);
            expectImagesIdentical(gaussianBlur(img),
                                  gaussianBlurReference(img));
        }
    });
}

TEST(GaussianGolden, MatchesReferenceOnTinyImages)
{
    forEachSimdTier([&] {
        // Narrower than the 7-tap kernel: the border loops own every pixel.
        for (auto [w, h] : {std::pair{1, 1}, {2, 9}, {6, 6}, {7, 3}}) {
            ImageU8 img = noisyImage(w, h, 300 + w * 10 + h);
            expectImagesIdentical(gaussianBlur(img),
                                  gaussianBlurReference(img));
        }
    });
}

TEST(GaussianGolden, PreservesConstantImage)
{
    forEachSimdTier([&] {
        // The fixed-point weights sum to exactly 2^16.
        ImageU8 img(64, 48, 137);
        ImageU8 out = gaussianBlur(img);
        EXPECT_DOUBLE_EQ(meanAbsDifference(img, out), 0.0);
    });
}

TEST(GaussianGolden, IntoReusesBuffersAcrossCalls)
{
    forEachSimdTier([&] {
        ImageU8 img = noisyImage(160, 120, 9);
        BlurScratch scratch;
        ImageU8 out;
        EXPECT_TRUE(gaussianBlurInto(img, scratch, out));  // first: grows
        ImageU8 first = out;
        EXPECT_FALSE(gaussianBlurInto(img, scratch, out)); // steady: reuses
        expectImagesIdentical(first, out);
    });
}

TEST(BoxBlurGolden, SlidingWindowMatchesReference)
{
    ImageU8 img = noisyImage(97, 61, 11);
    for (int r : {0, 1, 3, 8})
        expectImagesIdentical(boxBlur(img, r),
                              boxBlurReference(img, r));
}

TEST(BoxBlurGolden, RadiusLargerThanImage)
{
    ImageU8 img = noisyImage(5, 4, 12);
    expectImagesIdentical(boxBlur(img, 6), boxBlurReference(img, 6));
}

TEST(ScharrGolden, MatchesReference)
{
    for (auto [w, h] : {std::pair{320, 240}, {3, 3}, {2, 5}, {40, 1}}) {
        ImageU8 img = noisyImage(w, h, 500 + w + h);
        Gradients fast = scharrGradients(img);
        Gradients ref = scharrGradientsReference(img);
        ASSERT_EQ(fast.gx.width(), ref.gx.width());
        ASSERT_EQ(fast.gx.height(), ref.gx.height());
        for (int y = 0; y < img.height(); ++y)
            for (int x = 0; x < img.width(); ++x) {
                EXPECT_EQ(fast.gx.at(x, y), ref.gx.at(x, y))
                    << "gx at " << x << "," << y;
                EXPECT_EQ(fast.gy.at(x, y), ref.gy.at(x, y))
                    << "gy at " << x << "," << y;
            }
    }
}

TEST(CentralDiffGolden, MatchesReference)
{
    for (auto [w, h] : {std::pair{320, 240}, {3, 3}, {1, 7}}) {
        ImageU8 img = noisyImage(w, h, 700 + w + h);
        Gradients fast = centralDiffGradients(img);
        Gradients ref = centralDiffGradientsReference(img);
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x) {
                EXPECT_EQ(fast.gx.at(x, y), ref.gx.at(x, y));
                EXPECT_EQ(fast.gy.at(x, y), ref.gy.at(x, y));
            }
    }
}

TEST(FastGolden, CornersAndScoresMatchReference)
{
    forEachSimdTier([&] {
        ImageU8 img = noisyImage(320, 240, 21, 30);
        FastConfig cfg;
        cfg.threshold = 16;
        expectKeypointsIdentical(detectFast(img, cfg),
                                 detectFastReference(img, cfg));
    });
}

TEST(FastGolden, MatchesReferenceWithoutNms)
{
    forEachSimdTier([&] {
        ImageU8 img = noisyImage(160, 120, 22, 15);
        FastConfig cfg;
        cfg.threshold = 14;
        cfg.nonmax_suppression = false;
        cfg.max_features = 100000;
        expectKeypointsIdentical(detectFast(img, cfg),
                                 detectFastReference(img, cfg));
    });
}

TEST(FastGolden, MatchesReferenceThroughGridSelection)
{
    forEachSimdTier([&] {
        ImageU8 img = noisyImage(320, 240, 23, 60);
        FastConfig cfg;
        cfg.threshold = 10;
        cfg.max_features = 60; // force the grid-bucketed cap
        expectKeypointsIdentical(detectFast(img, cfg),
                                 detectFastReference(img, cfg));
    });
}

TEST(FastGolden, ScratchReuseIsCleanAcrossImages)
{
    forEachSimdTier([&] {
        // The sparse score map must be left all-zero between calls, even
        // when the image shape changes in between.
        FastScratch scratch;
        std::vector<KeyPoint> out;
        FastConfig cfg;
        cfg.threshold = 14;
        ImageU8 a = noisyImage(320, 240, 24, 25);
        ImageU8 b = noisyImage(200, 150, 25, 25);
        detectFastInto(a, cfg, scratch, out);
        detectFastInto(b, cfg, scratch, out);
        expectKeypointsIdentical(out, detectFastReference(b, cfg));
        detectFastInto(a, cfg, scratch, out);
        expectKeypointsIdentical(out, detectFastReference(a, cfg));
    });
}

TEST(OrbGolden, DescriptorsAndAnglesMatchReference)
{
    ImageU8 img = noisyImage(320, 240, 31, 40);
    ImageU8 blurred = gaussianBlur(img);
    FastConfig fcfg;
    fcfg.threshold = 14;
    std::vector<KeyPoint> kps = detectFast(img, fcfg);
    ASSERT_GT(kps.size(), 20u);

    // Stress both sampling paths: interior fast path and the clamped
    // slow path inside the [patch, fast-border) ring.
    kps.push_back({17.0f, 17.0f, 1.0f, 0.0f});
    kps.push_back({static_cast<float>(img.width() - 17),
                   static_cast<float>(img.height() - 17), 1.0f, 0.0f});
    kps.push_back({20.5f, 100.2f, 1.0f, 0.0f});
    kps.push_back({5.0f, 5.0f, 1.0f, 0.0f}); // border: zero descriptor

    std::vector<KeyPoint> kps_ref = kps;
    std::vector<Descriptor> fast = computeOrbDescriptors(blurred, kps);
    std::vector<Descriptor> ref =
        computeOrbDescriptorsReference(blurred, kps_ref);
    ASSERT_EQ(fast.size(), ref.size());
    for (size_t i = 0; i < fast.size(); ++i)
        EXPECT_EQ(fast[i], ref[i]) << "descriptor " << i;
    expectKeypointsIdentical(kps, kps_ref); // written-back angles
}

TEST(OrbGolden, OrientationMatchesReferenceNearBorders)
{
    ImageU8 img = noisyImage(64, 64, 32, 6);
    for (auto [x, y] : {std::pair{32.0f, 32.0f}, {16.0f, 16.0f},
                        {8.0f, 40.0f}, {60.0f, 60.0f}})
        EXPECT_EQ(orbOrientation(img, x, y),
                  orbOrientationReference(img, x, y))
            << "at " << x << "," << y;
}

TEST(StereoGolden, BandedMatcherIsBitExactWithAllPairs)
{
    // Random keypoints with random descriptors, including duplicated
    // descriptors so best/second-best ties exercise the
    // order-independent selection.
    Rng rng(77);
    const int h = 240;
    std::vector<KeyPoint> lk, rk;
    std::vector<Descriptor> ld, rd;
    auto randDesc = [&] {
        Descriptor d;
        for (auto &wbits : d.bits)
            wbits = (static_cast<uint64_t>(rng.nextU32()) << 32) |
                    rng.nextU32();
        return d;
    };
    for (int i = 0; i < 300; ++i) {
        lk.push_back({static_cast<float>(rng.uniform(0, 320)),
                      static_cast<float>(rng.uniform(0, h)), 1, 0});
        ld.push_back(randDesc());
    }
    for (int i = 0; i < 300; ++i) {
        rk.push_back({static_cast<float>(rng.uniform(0, 320)),
                      static_cast<float>(rng.uniform(0, h)), 1, 0});
        // Every third right descriptor clones a left one; clones of
        // clones create exact Hamming ties within a row band.
        rd.push_back(i % 3 == 0 ? ld[i] : randDesc());
    }
    // A cluster of same-row duplicates: guaranteed ties in one band.
    for (int i = 0; i < 8; ++i) {
        rk.push_back({100.0f - i, 50.25f, 1, 0});
        rd.push_back(ld[0]);
    }
    lk.push_back({130.0f, 50.0f, 1, 0});
    ld.push_back(ld[0]);

    StereoConfig cfg;
    cfg.max_hamming = 256; // let everything through to stress selection
    auto ref = stereoMatchInitial(lk, ld, rk, rd, cfg);

    StereoRowIndex rows;
    rows.build(rk, h);
    std::vector<StereoMatch> banded;
    long evaluated =
        stereoMatchBandedInto(lk, ld, rk, rd, cfg, rows, banded);

    ASSERT_EQ(banded.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(banded[i].left_index, ref[i].left_index);
        EXPECT_EQ(banded[i].disparity, ref[i].disparity);
        EXPECT_EQ(banded[i].hamming, ref[i].hamming);
    }
    // The band covers a small slice of the rows, so the evaluated
    // count must sit far below the all-pairs sweep.
    EXPECT_GT(evaluated, 0);
    EXPECT_LT(evaluated,
              static_cast<long>(lk.size()) *
                  static_cast<long>(rk.size()) / 10);
}

TEST(StereoGolden, RefineMatchesReferenceIncludingBorders)
{
    // Rectified pair with patches at a known disparity, some close to
    // the image border so the clamped slow path runs too.
    ImageU8 left(320, 120), right(320, 120);
    Rng rl(81), rr(82);
    fillNoisyBackground(left, 100, 5, rl);
    fillNoisyBackground(right, 100, 5, rr);
    uint32_t tex = 900;
    std::vector<KeyPoint> lk;
    for (auto [x, y] : {std::pair{40.0, 8.0}, {60.0, 60.0},
                        {300.0, 100.0}, {150.0, 114.0}, {31.0, 30.0}}) {
        drawTexturedPatch(left, x, y, 9, tex, 170);
        drawTexturedPatch(right, x - 22.0, y, 9, tex, 170);
        ++tex;
        lk.push_back({static_cast<float>(x), static_cast<float>(y), 1, 0});
    }
    std::vector<StereoMatch> seed;
    for (int i = 0; i < static_cast<int>(lk.size()); ++i)
        seed.push_back({i, 21.0f, 10}); // off by 1: the sweep must move

    std::vector<StereoMatch> fast = seed, ref = seed;
    StereoConfig cfg;
    stereoRefineDisparity(left, right, lk, fast, cfg);
    stereoRefineDisparityReference(left, right, lk, ref, cfg);
    for (size_t i = 0; i < seed.size(); ++i)
        EXPECT_EQ(fast[i].disparity, ref[i].disparity) << "match " << i;
}

TEST(LkGolden, TracksMatchReference)
{
    std::vector<std::pair<double, double>> pts;
    Rng rng(91);
    for (int i = 0; i < 12; ++i)
        pts.push_back({rng.uniformInt(40, 270), rng.uniformInt(40, 200)});
    ImageU8 prev(320, 240), next(320, 240);
    Rng rp(92);
    fillNoisyBackground(prev, 100, 6, rp);
    uint32_t tex = 5000;
    for (auto [x, y] : pts)
        drawTexturedPatch(prev, x, y, 8, tex++, 160);
    Rng rn(93);
    fillNoisyBackground(next, 100, 6, rn);
    tex = 5000;
    for (auto [x, y] : pts)
        drawTexturedPatch(next, x + 5, y - 2, 8, tex++, 160);

    std::vector<KeyPoint> kps;
    for (auto [x, y] : pts)
        kps.push_back({static_cast<float>(x), static_cast<float>(y), 1, 0});

    Pyramid pp(prev, 3), np(next, 3);
    auto fast = trackLucasKanade(pp, np, kps);
    auto ref = trackLucasKanadeReference(pp, np, kps);
    ASSERT_GT(fast.size(), 6u);
    ASSERT_EQ(fast.size(), ref.size());
    for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(fast[i].prev_index, ref[i].prev_index);
        EXPECT_EQ(fast[i].x, ref[i].x);
        EXPECT_EQ(fast[i].y, ref[i].y);
        EXPECT_EQ(fast[i].residual, ref[i].residual);
    }
}

TEST(LkGolden, ScharrVariantMatchesReference)
{
    ImageU8 prev = noisyImage(160, 120, 94, 8);
    ImageU8 next = noisyImage(160, 120, 94, 8);
    std::vector<KeyPoint> kps = detectFast(prev);
    Pyramid pp(prev, 3), np(next, 3);
    FlowConfig cfg;
    cfg.scharr_gradients = true;
    auto fast = trackLucasKanade(pp, np, kps, cfg);
    auto ref = trackLucasKanadeReference(pp, np, kps, cfg);
    ASSERT_EQ(fast.size(), ref.size());
    for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(fast[i].x, ref[i].x);
        EXPECT_EQ(fast[i].y, ref[i].y);
    }
}

TEST(PyramidGolden, RebuildMatchesFreshConstruction)
{
    ImageU8 a = noisyImage(128, 96, 41);
    ImageU8 b = noisyImage(64, 48, 42);
    Pyramid reused;
    reused.rebuild(a, 3);
    reused.rebuild(b, 3); // shrink: reuse buffers
    Pyramid fresh(b, 3);
    ASSERT_EQ(reused.levels(), fresh.levels());
    for (int l = 0; l < fresh.levels(); ++l)
        expectImagesIdentical(reused.level(l), fresh.level(l));
}

} // namespace
} // namespace edx
