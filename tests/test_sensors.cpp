/**
 * @file
 * Unit tests for the sensor models: pinhole camera + stereo rig
 * geometry, IMU corruption, and the GPS availability/noise model.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "sensors/camera.hpp"
#include "sensors/gps.hpp"
#include "sensors/imu.hpp"

namespace edx {
namespace {

CameraIntrinsics
vgaCamera()
{
    CameraIntrinsics cam;
    cam.fx = 420.0;
    cam.fy = 418.0;
    cam.cx = 319.5;
    cam.cy = 239.5;
    cam.width = 640;
    cam.height = 480;
    return cam;
}

TEST(Camera, ProjectBackProjectRoundTrip)
{
    CameraIntrinsics cam = vgaCamera();
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        Vec3 p{rng.uniform(-3, 3), rng.uniform(-2, 2), rng.uniform(0.5, 20)};
        auto px = cam.project(p);
        ASSERT_TRUE(px.has_value());
        Vec3 back = cam.backProject(*px, p[2]);
        EXPECT_NEAR(back[0], p[0], 1e-9);
        EXPECT_NEAR(back[1], p[1], 1e-9);
        EXPECT_NEAR(back[2], p[2], 1e-9);
    }
}

TEST(Camera, ProjectRejectsPointsBehindCamera)
{
    CameraIntrinsics cam = vgaCamera();
    EXPECT_FALSE(cam.project(Vec3{0.0, 0.0, -1.0}).has_value());
    EXPECT_FALSE(cam.project(Vec3{1.0, 1.0, 0.0}).has_value());
    EXPECT_TRUE(cam.project(Vec3{0.0, 0.0, 1.0}).has_value());
}

TEST(Camera, PrincipalPointProjectsToCenter)
{
    CameraIntrinsics cam = vgaCamera();
    auto px = cam.project(Vec3{0.0, 0.0, 5.0});
    ASSERT_TRUE(px.has_value());
    EXPECT_NEAR((*px)[0], cam.cx, 1e-12);
    EXPECT_NEAR((*px)[1], cam.cy, 1e-12);
}

TEST(Camera, InImageRespectsBorder)
{
    CameraIntrinsics cam = vgaCamera();
    EXPECT_TRUE(cam.inImage(Vec2{10.0, 10.0}));
    EXPECT_FALSE(cam.inImage(Vec2{10.0, 10.0}, 16.0));
    EXPECT_FALSE(cam.inImage(Vec2{-1.0, 5.0}));
    EXPECT_FALSE(cam.inImage(Vec2{640.5, 5.0}));
}

TEST(Camera, ProjectionJacobianMatchesNumericDifference)
{
    CameraIntrinsics cam = vgaCamera();
    Rng rng(13);
    const double eps = 1e-6;
    for (int trial = 0; trial < 50; ++trial) {
        Vec3 p{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(1, 15)};
        auto j = cam.projectJacobian(p);
        auto base = cam.project(p);
        ASSERT_TRUE(base.has_value());
        for (int c = 0; c < 3; ++c) {
            Vec3 dp = p;
            dp[c] += eps;
            auto bumped = cam.project(dp);
            ASSERT_TRUE(bumped.has_value());
            double num_u = ((*bumped)[0] - (*base)[0]) / eps;
            double num_v = ((*bumped)[1] - (*base)[1]) / eps;
            EXPECT_NEAR(j(0, c), num_u, 1e-3) << "du/dp" << c;
            EXPECT_NEAR(j(1, c), num_v, 1e-3) << "dv/dp" << c;
        }
    }
}

TEST(StereoRig, DisparityDepthRoundTrip)
{
    StereoRig rig;
    rig.cam = vgaCamera();
    rig.baseline = 0.12;
    for (double depth : {0.4, 1.0, 3.0, 10.0, 42.0}) {
        double disp = rig.disparityFromDepth(depth);
        auto back = rig.depthFromDisparity(disp);
        ASSERT_TRUE(back.has_value());
        EXPECT_NEAR(*back, depth, 1e-9);
    }
}

TEST(StereoRig, NonPositiveDisparityHasNoDepth)
{
    StereoRig rig;
    rig.cam = vgaCamera();
    EXPECT_FALSE(rig.depthFromDisparity(0.0).has_value());
    EXPECT_FALSE(rig.depthFromDisparity(-2.0).has_value());
}

TEST(StereoRig, TriangulationInvertsStereoProjection)
{
    StereoRig rig;
    rig.cam = vgaCamera();
    rig.baseline = 0.2;
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        Vec3 p{rng.uniform(-2, 2), rng.uniform(-1.5, 1.5),
               rng.uniform(0.8, 25)};
        auto left = rig.cam.project(p);
        auto right = rig.projectRight(p);
        ASSERT_TRUE(left && right);
        double disparity = (*left)[0] - (*right)[0];
        EXPECT_GT(disparity, 0.0); // right camera at +x: positive disparity
        auto rec = rig.triangulate(*left, disparity);
        ASSERT_TRUE(rec.has_value());
        EXPECT_NEAR((*rec - p).norm(), 0.0, 1e-6);
    }
}

TEST(StereoRig, RectifiedPairHasEqualRows)
{
    StereoRig rig;
    rig.cam = vgaCamera();
    rig.baseline = 0.12;
    Vec3 p{0.7, -0.4, 6.0};
    auto left = rig.cam.project(p);
    auto right = rig.projectRight(p);
    ASSERT_TRUE(left && right);
    EXPECT_NEAR((*left)[1], (*right)[1], 1e-12);
}

TEST(Imu, ZeroNoiseModelPassesSamplesThrough)
{
    ImuNoiseModel quiet;
    quiet.gyro_noise = 0.0;
    quiet.gyro_bias_walk = 0.0;
    quiet.accel_noise = 0.0;
    quiet.accel_bias_walk = 0.0;
    ImuCorruptor corr(quiet, 200.0, 5);

    ImuSample clean;
    clean.t = 1.25;
    clean.gyro = Vec3{0.1, -0.2, 0.05};
    clean.accel = Vec3{0.0, 0.0, 9.81};
    ImuSample out = corr.corrupt(clean);
    EXPECT_DOUBLE_EQ(out.t, clean.t);
    EXPECT_NEAR((out.gyro - clean.gyro).norm(), 0.0, 1e-15);
    EXPECT_NEAR((out.accel - clean.accel).norm(), 0.0, 1e-15);
}

TEST(Imu, NoiseStatisticsMatchConfiguredDensity)
{
    ImuNoiseModel model;
    model.gyro_noise = 2e-3;
    model.gyro_bias_walk = 0.0; // isolate white noise
    model.accel_noise = 3e-2;
    model.accel_bias_walk = 0.0;
    const double rate = 200.0;
    ImuCorruptor corr(model, rate, 23);

    ImuSample clean; // zeros
    const int n = 20000;
    double gyro_sq = 0.0, accel_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        ImuSample s = corr.corrupt(clean);
        gyro_sq += s.gyro[0] * s.gyro[0];
        accel_sq += s.accel[1] * s.accel[1];
    }
    // Discrete sigma = density * sqrt(rate).
    double gyro_sigma = std::sqrt(gyro_sq / n);
    double accel_sigma = std::sqrt(accel_sq / n);
    EXPECT_NEAR(gyro_sigma, model.gyro_noise * std::sqrt(rate), 0.1e-3 * 3);
    EXPECT_NEAR(accel_sigma, model.accel_noise * std::sqrt(rate), 1.5e-2);
}

TEST(Imu, BiasRandomWalkAccumulates)
{
    ImuNoiseModel model;
    model.gyro_noise = 0.0;
    model.accel_noise = 0.0;
    model.gyro_bias_walk = 1e-3;
    model.accel_bias_walk = 1e-2;
    ImuCorruptor corr(model, 100.0, 31);
    ImuSample clean;
    for (int i = 0; i < 5000; ++i)
        corr.corrupt(clean);
    // A random walk over 5000 steps is nonzero with overwhelming
    // probability; exact magnitude is stochastic, sign-free check only.
    EXPECT_GT(corr.gyroBias().norm(), 0.0);
    EXPECT_GT(corr.accelBias().norm(), 0.0);
}

TEST(Imu, GravityPointsDownInWorldFrame)
{
    Vec3 g = gravityWorld();
    EXPECT_LT(g[2], 0.0);
    EXPECT_NEAR(g.norm(), 9.81, 0.02);
}

TEST(Gps, UnavailableSignalNeverProducesFixes)
{
    GpsCorruptor gps(GpsNoiseModel{}, /*signal_available=*/false, 3);
    for (int i = 0; i < 100; ++i) {
        GpsSample s = gps.sample(i * 0.1, Vec3{1.0, 2.0, 3.0});
        EXPECT_FALSE(s.valid);
    }
}

TEST(Gps, AvailableSignalNoiseIsBounded)
{
    GpsNoiseModel model;
    model.sigma = 0.5;
    model.sigma_vertical = 1.0;
    model.multipath_prob = 0.0;
    model.outage_prob = 0.0;
    GpsCorruptor gps(model, true, 7);

    Vec3 truth{10.0, -4.0, 1.5};
    double sq_h = 0.0;
    int n = 4000;
    for (int i = 0; i < n; ++i) {
        GpsSample s = gps.sample(i * 0.1, truth);
        ASSERT_TRUE(s.valid);
        Vec3 e = s.position - truth;
        sq_h += 0.5 * (e[0] * e[0] + e[1] * e[1]);
    }
    double sigma_h = std::sqrt(sq_h / n);
    EXPECT_NEAR(sigma_h, model.sigma, 0.08);
}

TEST(Gps, OutageProbabilityDropsFixes)
{
    GpsNoiseModel model;
    model.outage_prob = 0.3;
    model.multipath_prob = 0.0;
    GpsCorruptor gps(model, true, 19);
    int invalid = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i)
        if (!gps.sample(i * 0.1, Vec3::zero()).valid)
            ++invalid;
    double rate = static_cast<double>(invalid) / n;
    EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(Gps, MultipathGlitchesAreLargeAndRare)
{
    GpsNoiseModel model;
    model.sigma = 0.1;
    model.sigma_vertical = 0.1;
    model.multipath_prob = 0.1;
    model.multipath_bias = 8.0;
    model.outage_prob = 0.0;
    GpsCorruptor gps(model, true, 29);

    int glitches = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        GpsSample s = gps.sample(i * 0.1, Vec3::zero());
        ASSERT_TRUE(s.valid);
        if (s.position.norm() > 3.0)
            ++glitches;
    }
    double rate = static_cast<double>(glitches) / n;
    EXPECT_NEAR(rate, 0.1, 0.04);
}

} // namespace
} // namespace edx
