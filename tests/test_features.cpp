/**
 * @file
 * Unit tests for the edx_features substrate: FAST, ORB, matching, stereo
 * and Lucas-Kanade, validated on synthetic renderings where ground truth
 * is known exactly.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "features/fast.hpp"
#include "features/matcher.hpp"
#include "features/optical_flow.hpp"
#include "features/orb.hpp"
#include "features/stereo.hpp"
#include "image/draw.hpp"
#include "image/filter.hpp"
#include "math/rng.hpp"

namespace edx {
namespace {

/** Renders a field of textured patches at given centers. */
ImageU8
patchField(int w, int h, const std::vector<std::pair<double, double>> &pts,
           uint64_t seed, int patch_half = 8)
{
    ImageU8 img(w, h);
    Rng rng(seed);
    fillNoisyBackground(img, 100, 6, rng);
    uint32_t tex = 1000;
    for (auto [x, y] : pts)
        drawTexturedPatch(img, x, y, patch_half, tex++, 160);
    return img;
}

TEST(Fast, DetectsCornersOnIsolatedSquares)
{
    // Isolated bright squares expose L-junctions, which FAST-9 fires on
    // (unlike checkerboard X-junctions, where no 9-pixel arc exists).
    ImageU8 img(128, 128, 40);
    for (int sy = 0; sy < 3; ++sy)
        for (int sx = 0; sx < 3; ++sx)
            for (int y = 0; y < 12; ++y)
                for (int x = 0; x < 12; ++x)
                    img.at(24 + sx * 32 + x, 24 + sy * 32 + y) = 220;
    FastConfig cfg;
    cfg.threshold = 30;
    auto kps = detectFast(img, cfg);
    EXPECT_GT(kps.size(), 10u); // ~4 corners per square
}

TEST(Fast, FlatImageHasNoCorners)
{
    ImageU8 img(64, 64, 128);
    auto kps = detectFast(img);
    EXPECT_TRUE(kps.empty());
}

TEST(Fast, PureNoiseYieldsFewCorners)
{
    Rng rng(3);
    ImageU8 img(64, 64);
    fillNoisyBackground(img, 128, 4, rng);
    FastConfig cfg;
    cfg.threshold = 25;
    auto kps = detectFast(img, cfg);
    EXPECT_LT(kps.size(), 10u);
}

TEST(Fast, RespectsBorder)
{
    auto img = patchField(96, 96, {{10, 10}, {48, 48}}, 7);
    FastConfig cfg;
    cfg.border = 16;
    auto kps = detectFast(img, cfg);
    for (const KeyPoint &kp : kps) {
        EXPECT_GE(kp.x, 16.0f);
        EXPECT_LT(kp.x, 80.0f);
        EXPECT_GE(kp.y, 16.0f);
        EXPECT_LT(kp.y, 80.0f);
    }
}

TEST(Fast, MaxFeaturesCap)
{
    // A dense field of textured patches produces many corners; the
    // grid-bucketed cap must hold.
    std::vector<std::pair<double, double>> pts;
    Rng rng(99);
    for (int i = 0; i < 60; ++i)
        pts.push_back({rng.uniform(24, 232), rng.uniform(24, 232)});
    ImageU8 img = patchField(256, 256, pts, 98);
    FastConfig cfg;
    cfg.threshold = 18;
    cfg.max_features = 100;
    auto kps = detectFast(img, cfg);
    EXPECT_LE(kps.size(), 110u); // per-cell rounding slack
    EXPECT_GT(kps.size(), 40u);
}

TEST(Fast, NonMaxSuppressionThins)
{
    std::vector<std::pair<double, double>> pts;
    Rng rng(101);
    for (int i = 0; i < 20; ++i)
        pts.push_back({rng.uniform(24, 104), rng.uniform(24, 104)});
    ImageU8 img = patchField(128, 128, pts, 102);
    FastConfig with, without;
    with.threshold = without.threshold = 18;
    with.nonmax_suppression = true;
    without.nonmax_suppression = false;
    with.max_features = without.max_features = 100000;
    auto n_with = detectFast(img, with).size();
    auto n_without = detectFast(img, without).size();
    EXPECT_GT(n_with, 0u);
    EXPECT_LT(n_with, n_without);
}

TEST(Orb, DescriptorInvariantUnderReplication)
{
    auto img = patchField(128, 128, {{64, 64}}, 11);
    std::vector<KeyPoint> kps{{64, 64, 1, 0}};
    auto d1 = computeOrbDescriptors(img, kps);
    auto d2 = computeOrbDescriptors(img, kps);
    EXPECT_EQ(d1[0], d2[0]);
}

TEST(Orb, SamePatchMatchesAcrossImages)
{
    // The same texture drawn in two different images at different
    // locations must produce nearby descriptors; different textures must
    // be far in Hamming space.
    ImageU8 a(128, 128), b(128, 128);
    Rng ra(21), rb(22);
    fillNoisyBackground(a, 100, 4, ra);
    fillNoisyBackground(b, 100, 4, rb);
    drawTexturedPatch(a, 40, 40, 10, 5001, 160);
    drawTexturedPatch(b, 80, 70, 10, 5001, 160);
    drawTexturedPatch(b, 40, 40, 10, 9999, 160);

    std::vector<KeyPoint> ka{{40, 40, 1, 0}};
    std::vector<KeyPoint> kb_same{{80, 70, 1, 0}};
    std::vector<KeyPoint> kb_diff{{40, 40, 1, 0}};
    auto da = computeOrbDescriptors(a, ka);
    auto db_same = computeOrbDescriptors(b, kb_same);
    auto db_diff = computeOrbDescriptors(b, kb_diff);

    int d_same = hammingDistance(da[0], db_same[0]);
    int d_diff = hammingDistance(da[0], db_diff[0]);
    EXPECT_LT(d_same, 60);
    EXPECT_GT(d_diff, 80);
    EXPECT_LT(d_same, d_diff);
}

TEST(Orb, BorderPointsGetZeroDescriptor)
{
    auto img = patchField(64, 64, {}, 31);
    std::vector<KeyPoint> kps{{2, 2, 1, 0}};
    auto d = computeOrbDescriptors(img, kps);
    EXPECT_EQ(d[0], Descriptor{});
}

TEST(Orb, OrientationFollowsGradientDirection)
{
    // A patch brighter on the right has centroid to the right: angle ~ 0.
    ImageU8 img(64, 64, 50);
    for (int y = 0; y < 64; ++y)
        for (int x = 32; x < 64; ++x)
            img.at(x, y) = 200;
    float ang = orbOrientation(img, 32, 32);
    EXPECT_NEAR(ang, 0.0f, 0.2f);
}

TEST(Matcher, ExactMatchesFound)
{
    Rng rng(41);
    std::vector<Descriptor> train(10);
    for (auto &d : train)
        for (auto &w : d.bits)
            w = (static_cast<uint64_t>(rng.nextU32()) << 32) | rng.nextU32();
    std::vector<Descriptor> query{train[3], train[7]};
    auto matches = matchDescriptors(query, train);
    ASSERT_EQ(matches.size(), 2u);
    EXPECT_EQ(matches[0].train_index, 3);
    EXPECT_EQ(matches[1].train_index, 7);
    EXPECT_EQ(matches[0].hamming, 0);
}

TEST(Matcher, MaxHammingGate)
{
    std::vector<Descriptor> train(1);
    std::vector<Descriptor> query(1);
    query[0].bits = {~0ull, ~0ull, ~0ull, ~0ull}; // distance 256
    MatchConfig cfg;
    cfg.max_hamming = 100;
    EXPECT_TRUE(matchDescriptors(query, train, cfg).empty());
}

TEST(Matcher, WindowedMatchRespectsRadius)
{
    std::vector<Descriptor> train(2);
    train[1].bits[0] = 0xFF; // slightly different
    std::vector<KeyPoint> train_kps{{0, 0, 1, 0}, {100, 100, 1, 0}};
    std::vector<Descriptor> query{train[1]};
    std::vector<KeyPoint> query_kps{{99, 99, 1, 0}};
    MatchConfig cfg;
    cfg.ratio = 1.0;
    // Window contains only the correct far point.
    auto m = matchDescriptorsWindowed(query, query_kps, train, train_kps,
                                      5.0, cfg);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0].train_index, 1);
}

class StereoFixture : public ::testing::Test
{
  protected:
    /**
     * Builds a rectified synthetic stereo pair: patches at known
     * disparities. Returns detected keypoints/descriptors for both.
     */
    void
    build(double disparity)
    {
        disparity_ = disparity;
        std::vector<std::pair<double, double>> lpts, rpts;
        Rng rng(55);
        for (int i = 0; i < 12; ++i) {
            double x = rng.uniform(180, 440);
            double y = rng.uniform(60, 180);
            lpts.push_back({x, y});
            rpts.push_back({x - disparity, y});
        }
        left_ = ImageU8(640, 240);
        right_ = ImageU8(640, 240);
        Rng rl(60), rr(61);
        fillNoisyBackground(left_, 100, 5, rl);
        fillNoisyBackground(right_, 100, 5, rr);
        uint32_t tex = 400;
        for (size_t i = 0; i < lpts.size(); ++i, ++tex) {
            drawTexturedPatch(left_, lpts[i].first, lpts[i].second, 9, tex,
                              170);
            drawTexturedPatch(right_, rpts[i].first, rpts[i].second, 9,
                              tex, 170);
        }
        FastConfig fc;
        fc.threshold = 18;
        lk_ = detectFast(left_, fc);
        rk_ = detectFast(right_, fc);
        ld_ = computeOrbDescriptors(left_, lk_);
        rd_ = computeOrbDescriptors(right_, rk_);
    }

    double disparity_ = 0.0;
    ImageU8 left_, right_;
    std::vector<KeyPoint> lk_, rk_;
    std::vector<Descriptor> ld_, rd_;
};

TEST_F(StereoFixture, RecoverIntegerDisparity)
{
    build(24.0);
    ASSERT_GT(lk_.size(), 4u);
    auto matches = stereoMatch(left_, right_, lk_, ld_, rk_, rd_);
    ASSERT_GT(matches.size(), 3u);
    for (const StereoMatch &m : matches)
        EXPECT_NEAR(m.disparity, 24.0, 1.5);
}

TEST_F(StereoFixture, SubPixelRefinementIsAccurate)
{
    build(20.0);
    auto initial = stereoMatchInitial(lk_, ld_, rk_, rd_, StereoConfig{});
    ASSERT_GT(initial.size(), 3u);
    auto refined = initial;
    stereoRefineDisparity(left_, right_, lk_, refined, StereoConfig{});
    // SAD refinement on independently noisy images must land within a
    // pixel of the true disparity on average and not diverge per match.
    double err_r = 0;
    for (size_t i = 0; i < refined.size(); ++i) {
        EXPECT_NEAR(refined[i].disparity, 20.0, 1.5);
        err_r += std::abs(refined[i].disparity - 20.0);
    }
    EXPECT_LT(err_r / refined.size(), 1.0);
}

TEST_F(StereoFixture, RejectsWhenDisparityOutOfRange)
{
    build(24.0);
    StereoConfig cfg;
    cfg.max_disparity = 10.0; // true disparity 24 is out of range
    auto matches =
        stereoMatchInitial(lk_, ld_, rk_, rd_, cfg);
    EXPECT_TRUE(matches.empty());
}

TEST(Flow, TracksPureTranslation)
{
    // Shift a textured scene by a known offset and track.
    // Patch centers and the shift are integral because the renderer
    // rasterizes patch centers to the pixel grid.
    std::vector<std::pair<double, double>> pts;
    Rng rng(71);
    for (int i = 0; i < 10; ++i)
        pts.push_back({rng.uniformInt(50, 200), rng.uniformInt(50, 200)});
    std::vector<std::pair<double, double>> pts2;
    const double dx = 7.0, dy = -3.0;
    for (auto [x, y] : pts)
        pts2.push_back({x + dx, y + dy});
    ImageU8 prev = patchField(256, 256, pts, 80);
    ImageU8 next = patchField(256, 256, pts2, 80);

    std::vector<KeyPoint> kps;
    for (auto [x, y] : pts)
        kps.push_back({static_cast<float>(x), static_cast<float>(y), 1, 0});

    Pyramid pp(prev, 3), np(next, 3);
    auto tracks = trackLucasKanade(pp, np, kps);
    ASSERT_GT(tracks.size(), 6u);
    for (const TemporalMatch &t : tracks) {
        EXPECT_NEAR(t.x - kps[t.prev_index].x, dx, 0.6);
        EXPECT_NEAR(t.y - kps[t.prev_index].y, dy, 0.6);
    }
}

TEST(Flow, LargeMotionNeedsPyramid)
{
    // Large patches keep texture visible at coarse pyramid levels.
    std::vector<std::pair<double, double>> pts{{100, 100}, {160, 180}};
    ImageU8 prev = patchField(256, 256, pts, 90, 20);
    const double dx = 22.0;
    std::vector<std::pair<double, double>> pts2{{100 + dx, 100},
                                                {160 + dx, 180}};
    ImageU8 next = patchField(256, 256, pts2, 90, 20);
    std::vector<KeyPoint> kps{{100, 100, 1, 0}, {160, 120, 1, 0}};

    FlowConfig single;
    single.pyramid_levels = 1;
    FlowConfig multi;
    multi.pyramid_levels = 4;

    Pyramid pp(prev, 4), np(next, 4);
    auto t1 = trackLucasKanade(pp, np, kps, single);
    auto t4 = trackLucasKanade(pp, np, kps, multi);

    // Pyramid tracking must recover the large motion for at least one
    // point; single level generally fails or diverges.
    int good4 = 0;
    for (const TemporalMatch &t : t4)
        if (std::abs(t.x - kps[t.prev_index].x - dx) < 1.0)
            ++good4;
    EXPECT_GE(good4, 1);
    int good1 = 0;
    for (const TemporalMatch &t : t1)
        if (std::abs(t.x - kps[t.prev_index].x - dx) < 1.0)
            ++good1;
    EXPECT_LE(good1, good4);
}

TEST(Flow, RejectsTextureless)
{
    ImageU8 prev(128, 128, 100), next(128, 128, 100);
    std::vector<KeyPoint> kps{{64, 64, 1, 0}};
    Pyramid pp(prev, 3), np(next, 3);
    auto tracks = trackLucasKanade(pp, np, kps);
    EXPECT_TRUE(tracks.empty());
}

TEST(Keypoint, HammingDistanceBasics)
{
    Descriptor a, b;
    EXPECT_EQ(hammingDistance(a, b), 0);
    b.bits[0] = 0b1011;
    EXPECT_EQ(hammingDistance(a, b), 3);
    b.bits[3] = ~0ull;
    EXPECT_EQ(hammingDistance(a, b), 67);
}

TEST(Keypoint, PayloadSizeMatchesPaperScale)
{
    // Sec. V-A: temporal+spatial correspondences are ~2-3 KB per frame.
    std::vector<StereoMatch> s(120);
    std::vector<TemporalMatch> t(110);
    size_t bytes = correspondencePayloadBytes(s, t);
    EXPECT_GT(bytes, 1000u);
    EXPECT_LT(bytes, 6000u);
}

} // namespace
} // namespace edx
