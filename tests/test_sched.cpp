/**
 * @file
 * Unit tests for the runtime offload scheduler: regression-model
 * fitting, the offload decision rule, and the oracle comparison of
 * Sec. VII-F.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "sched/scheduler.hpp"

namespace edx {
namespace {

/** Synthesizes (size, cpu_ms) samples from a polynomial + noise. */
std::vector<KernelSample>
synthesize(const std::vector<double> &coeffs, int n, double noise,
           uint64_t seed, double size_lo = 20.0, double size_hi = 4000.0)
{
    Rng rng(seed);
    std::vector<KernelSample> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i) {
        KernelSample s;
        s.size = rng.uniform(size_lo, size_hi);
        double y = 0.0, xp = 1.0;
        for (double c : coeffs) {
            y += c * xp;
            xp *= s.size;
        }
        s.cpu_ms = y + rng.gaussian(0, noise);
        out.push_back(s);
    }
    return out;
}

TEST(Scheduler, KernelModelDegreesMatchThePaper)
{
    // Sec. VI-B: linear for projection, quadratic for the others.
    EXPECT_EQ(kernelModelDegree(BackendKernel::Projection), 1);
    EXPECT_EQ(kernelModelDegree(BackendKernel::KalmanGain), 2);
    EXPECT_EQ(kernelModelDegree(BackendKernel::Marginalization), 2);
}

TEST(Scheduler, KernelNamesAreDistinct)
{
    EXPECT_NE(kernelName(BackendKernel::Projection),
              kernelName(BackendKernel::KalmanGain));
    EXPECT_NE(kernelName(BackendKernel::KalmanGain),
              kernelName(BackendKernel::Marginalization));
}

TEST(Scheduler, LinearFitRecoversCoefficients)
{
    auto train = synthesize({0.5, 2e-3}, 200, 0.0, 3);
    KernelLatencyModel model =
        KernelLatencyModel::fit(BackendKernel::Projection, train);
    EXPECT_NEAR(model.polynomial().coefficients()[0], 0.5, 1e-6);
    EXPECT_NEAR(model.polynomial().coefficients()[1], 2e-3, 1e-9);
    EXPECT_NEAR(model.r2(train), 1.0, 1e-9);
}

TEST(Scheduler, QuadraticFitRecoversCoefficients)
{
    auto train = synthesize({0.1, 1e-3, 5e-6}, 300, 0.0, 5, 10, 500);
    KernelLatencyModel model =
        KernelLatencyModel::fit(BackendKernel::KalmanGain, train);
    ASSERT_EQ(model.polynomial().degree(), 2);
    EXPECT_NEAR(model.predict(200.0), 0.1 + 0.2 + 5e-6 * 4e4, 1e-6);
    EXPECT_NEAR(model.r2(train), 1.0, 1e-9);
}

class SchedulerNoiseSweep : public ::testing::TestWithParam<double>
{};

TEST_P(SchedulerNoiseSweep, R2DegradesGracefullyWithNoise)
{
    const double noise = GetParam();
    auto train = synthesize({0.2, 3e-3}, 400, noise, 7);
    KernelLatencyModel model =
        KernelLatencyModel::fit(BackendKernel::Projection, train);
    auto eval = synthesize({0.2, 3e-3}, 400, noise, 11);
    double r2 = model.r2(eval);
    if (noise == 0.0) {
        EXPECT_NEAR(r2, 1.0, 1e-9);
    } else {
        // Even under noise the model explains most of the variance
        // (signal spans ~12 ms across sizes, noise is small).
        EXPECT_GT(r2, 0.7) << "noise " << noise;
        EXPECT_LE(r2, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Noise, SchedulerNoiseSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 1.0));

TEST(Scheduler, DecisionCrossesOverAtPredictedEquality)
{
    // cpu(size) = 1e-3 * size; accel fixed at 2 ms -> crossover at 2000.
    KernelLatencyModel model = KernelLatencyModel::fit(
        BackendKernel::Projection, synthesize({0.0, 1e-3}, 100, 0.0, 13));
    RuntimeScheduler sched(model);
    EXPECT_FALSE(sched.decide(1000.0, 2.0).offload);
    EXPECT_TRUE(sched.decide(3000.0, 2.0).offload);
}

TEST(Scheduler, DecisionRecordsBothPredictions)
{
    KernelLatencyModel model = KernelLatencyModel::fit(
        BackendKernel::Projection, synthesize({0.0, 1e-3}, 100, 0.0, 17));
    RuntimeScheduler sched(model);
    OffloadDecision d = sched.decide(1500.0, 0.9);
    EXPECT_NEAR(d.predicted_cpu_ms, 1.5, 1e-6);
    EXPECT_NEAR(d.accel_ms, 0.9, 1e-12);
    EXPECT_TRUE(d.offload);
}

TEST(Scheduler, OracleUsesActualTime)
{
    EXPECT_TRUE(oracleOffload(5.0, 2.0));
    EXPECT_FALSE(oracleOffload(1.0, 2.0));
}

TEST(Scheduler, EvaluationTotalsAreOrdered)
{
    // Train on 25% of the data, evaluate on 75% (the paper's split).
    auto all = synthesize({0.3, 0.0, 2e-6}, 800, 0.05, 19, 50, 3000);
    std::vector<KernelSample> train(all.begin(), all.begin() + 200);
    std::vector<KernelSample> eval(all.begin() + 200, all.end());

    KernelLatencyModel model =
        KernelLatencyModel::fit(BackendKernel::Marginalization, train);
    RuntimeScheduler sched(model);

    // Accelerator: fixed 1.2 ms (cheap for big kernels, dear for small).
    std::vector<double> accel(eval.size(), 1.2);
    SchedulerStats stats = evaluateScheduler(sched, eval, accel);

    ASSERT_EQ(stats.frames, static_cast<int>(eval.size()));
    // The oracle is optimal per-frame, so its total is the lower bound.
    EXPECT_LE(stats.oracle_total_ms, stats.scheduled_total_ms + 1e-9);
    EXPECT_LE(stats.oracle_total_ms, stats.always_offload_ms + 1e-9);
    EXPECT_LE(stats.oracle_total_ms, stats.never_offload_ms + 1e-9);
    // With an accurate model the scheduler is within a whisker of the
    // oracle (Sec. VII-F reports < 0.001% difference).
    EXPECT_LT(stats.scheduled_total_ms,
              stats.oracle_total_ms * 1.01 + 1e-9);
    EXPECT_GT(stats.oracleAgreement(), 0.95);
}

TEST(Scheduler, MixedSizesOffloadOnlyTheLargeFrames)
{
    // Bimodal workload: small frames (cpu < accel) and large frames
    // (cpu > accel). The offload fraction must land between 0 and 1 -
    // the "76.4% of SLAM frames" phenomenology of Sec. VII-F.
    auto small = synthesize({0.0, 1e-3}, 300, 0.0, 23, 100, 800);
    auto large = synthesize({0.0, 1e-3}, 700, 0.0, 29, 2500, 6000);
    std::vector<KernelSample> all = small;
    all.insert(all.end(), large.begin(), large.end());

    KernelLatencyModel model =
        KernelLatencyModel::fit(BackendKernel::Projection, all);
    RuntimeScheduler sched(model);
    std::vector<double> accel(all.size(), 2.0);
    SchedulerStats stats = evaluateScheduler(sched, all, accel);

    EXPECT_GT(stats.offloadFraction(), 0.5);
    EXPECT_LT(stats.offloadFraction(), 0.95);
    // Always offloading pays DMA on small frames: strictly worse.
    EXPECT_GT(stats.always_offload_ms, stats.scheduled_total_ms);
    // Never offloading wastes the accelerator on large frames.
    EXPECT_GT(stats.never_offload_ms, stats.scheduled_total_ms);
}

// --- Online windowed refit --------------------------------------------------

TEST(Scheduler, ObserveWithoutEnableIsANoop)
{
    std::vector<KernelSample> train =
        synthesize({0.3, 0.002}, 64, 0.0, 11);
    KernelLatencyModel m =
        KernelLatencyModel::fit(BackendKernel::Projection, train);
    const double before = m.predict(1000.0);
    m.observe(1000.0, 99.0);
    m.observe(2000.0, 199.0);
    EXPECT_EQ(m.observedSamples(), 0);
    EXPECT_DOUBLE_EQ(m.predict(1000.0), before);
}

TEST(Scheduler, OnlineRefitConvergesToANewRegime)
{
    // Fit offline on one latency regime, then stream samples from a
    // different one: the refit model must converge to the new regime.
    std::vector<KernelSample> old_regime =
        synthesize({0.5, 0.001}, 64, 0.0, 21);
    KernelLatencyModel m =
        KernelLatencyModel::fit(BackendKernel::Projection, old_regime);
    m.enableOnlineRefit(/*window=*/32.0);

    std::vector<KernelSample> new_regime =
        synthesize({1.0, 0.004}, 200, 0.0, 22);
    for (const KernelSample &s : new_regime)
        m.observe(s.size, s.cpu_ms);

    EXPECT_EQ(m.observedSamples(), 200);
    for (double x : {100.0, 1000.0, 3000.0})
        EXPECT_NEAR(m.predict(x), 1.0 + 0.004 * x,
                    1e-3 * (1.0 + 0.004 * x));
}

TEST(Scheduler, OnlineRefitShrinksErrorOnDriftingWorkload)
{
    // The ROADMAP scenario: the offline 25% fit goes stale as the
    // workload drifts (the quadratic coefficient creeps up, e.g. a
    // growing map); the incremental windowed refit must track it.
    const int kFrames = 400;
    Rng rng(7);
    std::vector<KernelSample> stream;
    stream.reserve(kFrames);
    for (int i = 0; i < kFrames; ++i) {
        double drift =
            1.0 + 3.0 * static_cast<double>(i) / kFrames; // 1x -> 4x
        KernelSample s;
        s.size = rng.uniform(50.0, 600.0);
        s.cpu_ms = 0.2 + drift * (2e-4 * s.size + 3e-6 * s.size * s.size);
        stream.push_back(s);
    }

    const int train_n = kFrames / 4; // the offline 25% fit
    std::vector<KernelSample> train(stream.begin(),
                                    stream.begin() + train_n);
    KernelLatencyModel offline =
        KernelLatencyModel::fit(BackendKernel::Marginalization, train);
    KernelLatencyModel online = offline;
    online.enableOnlineRefit(/*window=*/48.0);

    double offline_err = 0.0, online_err = 0.0;
    int evaluated = 0;
    for (int i = train_n; i < kFrames; ++i) {
        const KernelSample &s = stream[i];
        // Predict-then-observe: the online model only sees the sample
        // after its prediction is scored.
        offline_err += std::abs(offline.predict(s.size) - s.cpu_ms);
        online_err += std::abs(online.predict(s.size) - s.cpu_ms);
        online.observe(s.size, s.cpu_ms);
        ++evaluated;
    }
    offline_err /= evaluated;
    online_err /= evaluated;

    EXPECT_GT(offline_err, 0.0);
    // The refit must cut the stale-model error by well over half.
    EXPECT_LT(online_err, 0.5 * offline_err)
        << "offline MAE " << offline_err << ", online MAE "
        << online_err;
}

TEST(Scheduler, RuntimeSchedulerObserveRefitsDecisions)
{
    std::vector<KernelSample> cheap =
        synthesize({0.1, 0.0002}, 32, 0.0, 31);
    RuntimeScheduler sched(
        KernelLatencyModel::fit(BackendKernel::Projection, cheap));
    // Under the stale model a size-4000 kernel looks cheap: no offload.
    EXPECT_FALSE(sched.decide(4000.0, 2.0).offload);

    sched.enableOnlineRefit(16.0);
    for (int i = 0; i < 64; ++i) {
        double size = 500.0 + 60.0 * i;
        sched.observe(size, 0.1 + 0.002 * size); // 10x steeper reality
    }
    // The refit model now predicts ~8 ms at size 4000: offload.
    EXPECT_TRUE(sched.decide(4000.0, 2.0).offload);
}

TEST(Scheduler, EmptyEvaluationIsSafe)
{
    KernelLatencyModel model = KernelLatencyModel::fit(
        BackendKernel::Projection, synthesize({0.0, 1e-3}, 50, 0.0, 31));
    RuntimeScheduler sched(model);
    SchedulerStats stats = evaluateScheduler(sched, {}, {});
    EXPECT_EQ(stats.frames, 0);
    EXPECT_DOUBLE_EQ(stats.offloadFraction(), 0.0);
    EXPECT_DOUBLE_EQ(stats.oracleAgreement(), 0.0);
}

} // namespace
} // namespace edx
