/**
 * @file
 * Tests of the staged runtime layer: StageTimer accumulation, bounded
 * queue backpressure, pipelined-vs-sequential pose equivalence (the
 * pipeline must change *when* stages run, never *what* they compute),
 * per-stage scheduler decisions, and multi-session serving through the
 * LocalizerPool.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <thread>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "math/blas.hpp"
#include "math/rng.hpp"
#include "runtime/frame_queue.hpp"
#include "runtime/localizer_pool.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/placement.hpp"
#include "runtime/replan.hpp"
#include "runtime/solve_hub.hpp"
#include "runtime/telemetry.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace {

// --- StageTimer -------------------------------------------------------------

TEST(StageTimer, AccumulatesIntoSink)
{
    double sink = 0.0;
    {
        StageTimer t(sink);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(sink, 0.0);

    // Several scoped timers accumulate into the same sink.
    double before = sink;
    {
        StageTimer t(sink);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(sink, before);
}

TEST(StageTimer, StopIsIdempotent)
{
    double sink = 0.0;
    StageTimer t(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    t.stop();
    double v = sink;
    EXPECT_GT(v, 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    t.stop(); // disarmed: must not accumulate again
    EXPECT_EQ(sink, v);
}

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueue, PreservesFifoOrderAcrossThreads)
{
    BoundedQueue<int> q(3);
    const int kItems = 200;
    std::thread producer([&] {
        for (int i = 0; i < kItems; ++i)
            ASSERT_TRUE(q.push(i));
        q.close();
    });
    int expected = 0;
    while (auto v = q.pop()) {
        EXPECT_EQ(*v, expected);
        ++expected;
    }
    producer.join();
    EXPECT_EQ(expected, kItems);
}

TEST(BoundedQueue, BackpressureBoundsDepth)
{
    BoundedQueue<int> q(2);
    std::thread producer([&] {
        for (int i = 0; i < 50; ++i)
            q.push(i);
        q.close();
    });
    int count = 0;
    while (auto v = q.pop()) {
        // Consumer is slower than the producer; without the bound the
        // queue would grow toward 50.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++count;
    }
    producer.join();
    EXPECT_EQ(count, 50);
    EXPECT_LE(q.highWater(), 2u);
}

TEST(BoundedQueue, CloseUnblocksProducerAndConsumer)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(7));
    std::thread blocked([&] {
        // Queue is full: this push blocks until close(), then fails.
        EXPECT_FALSE(q.push(8));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
    blocked.join();
    // Items already queued still drain after close.
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
    EXPECT_FALSE(q.pop().has_value());
}

// --- Pipeline equivalence ---------------------------------------------------

struct TestRun
{
    DatasetConfig dcfg;
    LocalizerConfig lcfg;
    Vocabulary voc;
    Map prior_map;
    bool has_prior = false;
};

TestRun
makeRun(SceneType scene, int frames)
{
    TestRun r;
    r.dcfg.scene = scene;
    r.dcfg.platform = Platform::Drone;
    r.dcfg.frame_count = frames;
    r.dcfg.seed = 99;
    r.lcfg = configForScenario(scene);

    Dataset d(r.dcfg);
    if (r.lcfg.mode != BackendMode::Vio) {
        r.voc = buildVocabulary(d, /*frame_stride=*/4);
        if (r.lcfg.mode == BackendMode::Registration) {
            MapBuildConfig mcfg;
            mcfg.frame_stride = 4;
            r.prior_map = buildPriorMap(d, r.voc, mcfg);
            r.has_prior = true;
        }
    }
    return r;
}

std::unique_ptr<Localizer>
makeLocalizer(const TestRun &r, const Dataset &d)
{
    auto loc = std::make_unique<Localizer>(
        r.lcfg, d.rig(),
        r.lcfg.mode != BackendMode::Vio ? &r.voc : nullptr,
        r.has_prior ? &r.prior_map : nullptr);
    loc->initialize(d.truthAt(0), 0.0, d.trajectory().velocityAt(0.0));
    return loc;
}

FrameInput
inputFor(const Dataset &d, int i)
{
    DatasetFrame f = d.frame(i);
    FrameInput in;
    in.frame_index = i;
    in.t = f.t;
    in.left = std::move(f.stereo.left);
    in.right = std::move(f.stereo.right);
    in.imu = d.imuBetweenFrames(i);
    in.gps = d.gpsAtFrame(i);
    return in;
}

void
expectPosesIdentical(const LocalizationResult &a,
                     const LocalizationResult &b, int i)
{
    EXPECT_EQ(a.ok, b.ok) << "frame " << i;
    for (int k = 0; k < 3; ++k)
        EXPECT_EQ(a.pose.translation[k], b.pose.translation[k])
            << "frame " << i << " t[" << k << "]";
    EXPECT_EQ(a.pose.rotation.w(), b.pose.rotation.w()) << "frame " << i;
    EXPECT_EQ(a.pose.rotation.x(), b.pose.rotation.x()) << "frame " << i;
    EXPECT_EQ(a.pose.rotation.y(), b.pose.rotation.y()) << "frame " << i;
    EXPECT_EQ(a.pose.rotation.z(), b.pose.rotation.z()) << "frame " << i;
}

void
checkEquivalence(SceneType scene, int frames)
{
    TestRun r = makeRun(scene, frames);
    Dataset d(r.dcfg);

    // Reference: strictly sequential processFrame calls.
    auto seq_loc = makeLocalizer(r, d);
    std::vector<LocalizationResult> seq;
    for (int i = 0; i < frames; ++i)
        seq.push_back(seq_loc->processFrame(inputFor(d, i)));

    // Pipelined: same frames through the 2-stage runtime.
    auto pipe_loc = makeLocalizer(r, d);
    PipelineConfig pcfg;
    pcfg.stages = 2;
    pcfg.queue_capacity = 3;
    std::vector<LocalizationResult> piped(frames);
    {
        FramePipeline pipeline(*pipe_loc, pcfg);
        for (int i = 0; i < frames; ++i)
            ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
        pipeline.flush();
        LocalizationResult res;
        while (pipeline.poll(res)) {
            ASSERT_GE(res.frame_index, 0);
            ASSERT_LT(res.frame_index, frames);
            piped[res.frame_index] = std::move(res);
        }
    }

    for (int i = 0; i < frames; ++i)
        expectPosesIdentical(seq[i], piped[i], i);
}

TEST(FramePipeline, SlamPosesMatchSequentialBitExact)
{
    checkEquivalence(SceneType::IndoorUnknown, 14);
}

// --- N-stage topologies -----------------------------------------------------

/**
 * Every cut topology must reproduce the sequential pose stream
 * bit-exactly: the cuts change where sub-stages execute, never what
 * they compute.
 */
void
checkCutEquivalence(SceneType scene, int frames,
                    const std::vector<std::vector<int>> &cut_lists,
                    const std::function<void(LocalizerConfig &)> &tune =
                        nullptr)
{
    TestRun r = makeRun(scene, frames);
    if (tune)
        tune(r.lcfg);
    Dataset d(r.dcfg);

    auto seq_loc = makeLocalizer(r, d);
    std::vector<LocalizationResult> seq;
    for (int i = 0; i < frames; ++i)
        seq.push_back(seq_loc->processFrame(inputFor(d, i)));

    for (const std::vector<int> &cuts : cut_lists) {
        auto loc = makeLocalizer(r, d);
        PipelineConfig pcfg;
        pcfg.cuts = cuts;
        pcfg.stages = static_cast<int>(cuts.size()) + 1;
        pcfg.queue_capacity = 3;
        std::vector<LocalizationResult> piped(frames);
        {
            FramePipeline pipeline(*loc, pcfg);
            EXPECT_EQ(pipeline.cuts(), cuts);
            for (int i = 0; i < frames; ++i)
                ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
            pipeline.flush();
            LocalizationResult res;
            while (pipeline.poll(res))
                piped[res.frame_index] = std::move(res);
        }
        for (int i = 0; i < frames; ++i) {
            SCOPED_TRACE("cuts " + describeCuts(cuts));
            expectPosesIdentical(seq[i], piped[i], i);
            EXPECT_EQ(piped[i].telemetry.pipeline_stages,
                      static_cast<int>(cuts.size()) + 1);
        }
    }
}

TEST(FramePipeline, SlamNStagePosesMatchSequentialBitExact)
{
    // Dense keyframing with a small window so marginalization and the
    // solve|finish handoff are exercised within the short run.
    checkCutEquivalence(
        SceneType::IndoorUnknown, 12,
        {{0}, {2, 3}, {0, 2, 3}, {0, 1, 2, 3}},
        [](LocalizerConfig &lc) {
            lc.mapping.keyframe_interval = 1;
            lc.mapping.window_size = 4;
        });
}

TEST(FramePipeline, VioNStagePosesMatchSequentialBitExact)
{
    // OutdoorUnknown provides GPS, so the solve|finish boundary splits
    // MSCKF from the fusion block.
    checkCutEquivalence(SceneType::OutdoorUnknown, 12,
                        {{3}, {1, 3}, {0, 1, 2, 3}});
}

TEST(FramePipeline, RegistrationNStagePosesMatchSequentialBitExact)
{
    checkCutEquivalence(SceneType::IndoorKnown, 10,
                        {{0, 2}, {0, 1, 2, 3}});
}

// --- Mid-run cut swaps (self-repipelining) ----------------------------------

/** One scheduled swapCuts() call, issued just before submitting @c at. */
struct SwapPoint
{
    int at = 0;
    std::vector<int> cuts;
    int stages = 0; //!< 0: derive as cuts.size() + 1
};

/**
 * Drives one pipeline through a schedule of swapCuts() calls issued
 * between submissions — old-epoch frames still in flight — and checks
 * the pose stream stays bit-identical to the sequential reference: an
 * epoch swap changes where sub-stages run from that frame on, never
 * what any frame computes.
 */
void
checkSwapEquivalence(SceneType scene, int frames, PipelineConfig pcfg,
                     const std::vector<SwapPoint> &swaps,
                     const std::function<void(LocalizerConfig &)> &tune =
                         nullptr)
{
    TestRun r = makeRun(scene, frames);
    if (tune)
        tune(r.lcfg);
    Dataset d(r.dcfg);

    auto seq_loc = makeLocalizer(r, d);
    std::vector<LocalizationResult> seq;
    for (int i = 0; i < frames; ++i)
        seq.push_back(seq_loc->processFrame(inputFor(d, i)));

    auto loc = makeLocalizer(r, d);
    pcfg.queue_capacity = 3;
    std::vector<LocalizationResult> piped(frames);
    long applied = 0;
    {
        FramePipeline pipeline(*loc, pcfg);
        size_t next = 0;
        for (int i = 0; i < frames; ++i) {
            if (next < swaps.size() && swaps[next].at == i) {
                ASSERT_TRUE(pipeline.swapCuts(swaps[next].cuts,
                                              swaps[next].stages))
                    << "swap before frame " << i;
                ++next;
            }
            ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
        }
        pipeline.flush();
        LocalizationResult res;
        while (pipeline.poll(res))
            piped[res.frame_index] = std::move(res);
        applied = pipeline.stats().cut_swaps;
        EXPECT_EQ(pipeline.cuts(), swaps.back().cuts);
    }
    EXPECT_EQ(applied, static_cast<long>(swaps.size()));
    for (int i = 0; i < frames; ++i) {
        SCOPED_TRACE("swap schedule, frame " + std::to_string(i));
        expectPosesIdentical(seq[i], piped[i], i);
    }
}

TEST(FramePipeline, MidRunCutSwapsKeepSlamPosesBitExact)
{
    // Staged -> deeper -> sequential (stages = 1) -> max depth -> back:
    // both directions of the inline <-> staged transition plus two
    // staged -> staged swaps, each with old-epoch frames in flight.
    PipelineConfig pcfg;
    pcfg.cuts = {2};
    checkSwapEquivalence(
        SceneType::IndoorUnknown, 16, pcfg,
        {{4, {0, 2, 3}}, {8, {}, 1}, {11, {0, 1, 2, 3}}, {14, {3}}},
        [](LocalizerConfig &lc) {
            lc.mapping.keyframe_interval = 1;
            lc.mapping.window_size = 4;
        });
}

TEST(FramePipeline, MidRunCutSwapsKeepVioPosesBitExact)
{
    // Starts sequential: the first swap brings the staged runtime up
    // mid-stream. OutdoorUnknown provides GPS, so the solve|finish
    // boundary splits MSCKF from the fusion block across the swaps.
    PipelineConfig pcfg;
    pcfg.stages = 1;
    checkSwapEquivalence(SceneType::OutdoorUnknown, 14, pcfg,
                         {{3, {1, 3}}, {7, {}, 1}, {10, {0, 1, 2, 3}}});
}

TEST(FramePipeline, MidRunCutSwapsKeepRegistrationPosesBitExact)
{
    PipelineConfig pcfg;
    pcfg.cuts = {0, 2};
    checkSwapEquivalence(SceneType::IndoorKnown, 12, pcfg,
                         {{4, {0, 1, 2, 3}}, {8, {2}}});
}

TEST(FramePipeline, SwapCutsRejectsNoopAndInvalidTopologies)
{
    TestRun r = makeRun(SceneType::OutdoorUnknown, 2);
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);
    PipelineConfig pcfg;
    pcfg.stages = 2;
    FramePipeline pipeline(*loc, pcfg);
    EXPECT_FALSE(pipeline.swapCuts({2})); // already the active cuts
    EXPECT_THROW(pipeline.swapCuts({4}), std::invalid_argument);
    EXPECT_THROW(pipeline.swapCuts({2, 1}), std::invalid_argument);
    EXPECT_THROW(pipeline.swapCuts({1}, 3), std::invalid_argument);
    EXPECT_TRUE(pipeline.swapCuts({1}));
    EXPECT_EQ(pipeline.cuts(), std::vector<int>{1});
    pipeline.close();
    EXPECT_FALSE(pipeline.swapCuts({3})); // closed
}

TEST(FramePipeline, ReplannerAutoSwapKeepsPosesBitExact)
{
    const int frames = 20;
    TestRun r = makeRun(SceneType::IndoorUnknown, frames);
    r.lcfg.mapping.keyframe_interval = 1;
    r.lcfg.mapping.window_size = 4;
    Dataset d(r.dcfg);

    auto seq_loc = makeLocalizer(r, d);
    std::vector<LocalizationResult> seq;
    for (int i = 0; i < frames; ++i)
        seq.push_back(seq_loc->processFrame(inputFor(d, i)));

    ReplanConfig rcfg; // tick fast enough to adapt within the run
    rcfg.window = 12;
    rcfg.tick_frames = 4;
    rcfg.min_mode_frames = 3;
    SessionReplanner replanner(rcfg);

    // A deliberately lopsided start (FE alone | everything else) on a
    // backend-heavy workload: the replanner must find better.
    auto loc = makeLocalizer(r, d);
    PipelineConfig pcfg;
    pcfg.cuts = {0};
    pcfg.replanner = &replanner;
    pcfg.queue_capacity = 3;
    std::vector<LocalizationResult> piped(frames);
    long swaps = 0;
    {
        FramePipeline pipeline(*loc, pcfg);
        for (int i = 0; i < frames; ++i)
            ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
        pipeline.flush();
        LocalizationResult res;
        while (pipeline.poll(res))
            piped[res.frame_index] = std::move(res);
        swaps = pipeline.stats().cut_swaps;
    }

    ReplanStats rs = replanner.stats();
    EXPECT_EQ(rs.observed, frames);
    EXPECT_GE(rs.ticks, 1);
    EXPECT_GE(rs.proposals, 1);
    // Every proposal was applied (none lost to the try-lock path)...
    EXPECT_EQ(swaps, rs.proposals);
    // ...and adaptation never changed what any frame computed.
    for (int i = 0; i < frames; ++i)
        expectPosesIdentical(seq[i], piped[i], i);
}

TEST(FramePipeline, PlannerChosenTopologyMatchesSequentialBitExact)
{
    const int frames = 12;
    TestRun r = makeRun(SceneType::IndoorUnknown, frames);
    r.lcfg.mapping.keyframe_interval = 1;
    r.lcfg.mapping.window_size = 4;
    Dataset d(r.dcfg);

    // Profile a sequential run, plan, then run the planned topology.
    auto seq_loc = makeLocalizer(r, d);
    std::vector<LocalizationResult> seq;
    std::vector<FrameTelemetry> tel;
    for (int i = 0; i < frames; ++i) {
        seq.push_back(seq_loc->processFrame(inputFor(d, i)));
        tel.push_back(seq.back().telemetry);
    }
    StagePlan plan = PlacementPlanner::plan(
        PlacementPlanner::profileFromTelemetry(tel, BackendMode::Slam));
    ASSERT_LE(plan.period_ms, plan.sequential_ms);

    auto loc = makeLocalizer(r, d);
    PipelineConfig pcfg;
    pcfg.cuts = plan.cuts;
    pcfg.stages = plan.stages();
    std::vector<LocalizationResult> piped(frames);
    {
        FramePipeline pipeline(*loc, pcfg);
        for (int i = 0; i < frames; ++i)
            ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
        pipeline.flush();
        LocalizationResult res;
        while (pipeline.poll(res))
            piped[res.frame_index] = std::move(res);
    }
    for (int i = 0; i < frames; ++i)
        expectPosesIdentical(seq[i], piped[i], i);
}

TEST(FramePipeline, InvalidStageConfigsAreRejected)
{
    TestRun r = makeRun(SceneType::OutdoorUnknown, 2);
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);

    auto expectRejected = [&](PipelineConfig pcfg) {
        EXPECT_THROW(FramePipeline(*loc, pcfg), std::invalid_argument);
    };

    // stages > 2 used to be silently clamped to 2; now it must name
    // its cut points.
    expectRejected(PipelineConfig{.stages = 3});
    expectRejected(PipelineConfig{.stages = -1});
    // Out-of-range, unsorted, and duplicate cuts.
    expectRejected(PipelineConfig{.cuts = {4}});
    expectRejected(PipelineConfig{.cuts = {-1}});
    expectRejected(PipelineConfig{.cuts = {2, 1}});
    expectRejected(PipelineConfig{.cuts = {1, 1}});
    // An explicit stage count inconsistent with the cut list is an
    // error in both directions, never an override.
    expectRejected(PipelineConfig{.stages = 4, .cuts = {2}});
    expectRejected(PipelineConfig{.stages = 2, .cuts = {0, 1, 2}});

    // Valid shapes still construct (and derive stages from the cuts).
    FramePipeline dflt(*loc, PipelineConfig{});
    EXPECT_EQ(dflt.cuts(), std::vector<int>{2}); // classic 2-stage
    EXPECT_EQ(dflt.config().stages, 2);
    dflt.close();
    FramePipeline ok(*loc, PipelineConfig{.stages = 2});
    EXPECT_EQ(ok.cuts(), std::vector<int>{2});
    ok.close();
    FramePipeline ok2(*loc, PipelineConfig{.cuts = {0, 2, 3}});
    EXPECT_EQ(ok2.config().stages, 4);
    ok2.close();
}

TEST(FramePipeline, VioPosesMatchSequentialBitExact)
{
    checkEquivalence(SceneType::OutdoorUnknown, 16);
}

TEST(FramePipeline, RegistrationPosesMatchSequentialBitExact)
{
    checkEquivalence(SceneType::IndoorKnown, 12);
}

TEST(FramePipeline, ResultsArriveInSubmissionOrder)
{
    TestRun r = makeRun(SceneType::OutdoorUnknown, 10);
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);
    FramePipeline pipeline(*loc, PipelineConfig{.stages = 2});
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
    LocalizationResult res;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(pipeline.awaitResult(res));
        EXPECT_EQ(res.frame_index, i);
    }
}

TEST(FramePipeline, RejectedFramesMatchSequentialPath)
{
    TestRun r = makeRun(SceneType::OutdoorUnknown, 8);
    Dataset d(r.dcfg);

    auto seq_loc = makeLocalizer(r, d);
    auto pipe_loc = makeLocalizer(r, d);

    std::vector<LocalizationResult> seq;
    std::vector<LocalizationResult> piped(8);
    {
        FramePipeline pipeline(*pipe_loc, PipelineConfig{.stages = 2});
        for (int i = 0; i < 8; ++i) {
            FrameInput in = inputFor(d, i);
            if (i == 3) { // dropped camera packet mid-run
                in.left = ImageU8();
                in.right = ImageU8();
            }
            FrameInput in2 = in; // copy for the sequential reference
            seq.push_back(seq_loc->processFrame(in2));
            ASSERT_TRUE(pipeline.submit(std::move(in)));
        }
        pipeline.flush();
        LocalizationResult res;
        while (pipeline.poll(res))
            piped[res.frame_index] = std::move(res);
    }
    EXPECT_FALSE(seq[3].ok);
    EXPECT_FALSE(piped[3].ok);
    for (int i = 0; i < 8; ++i)
        expectPosesIdentical(seq[i], piped[i], i);
}

TEST(FramePipeline, BoundedInputQueueGivesBackpressure)
{
    TestRun r = makeRun(SceneType::OutdoorUnknown, 12);
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);
    PipelineConfig pcfg;
    pcfg.stages = 2;
    pcfg.queue_capacity = 2;
    FramePipeline pipeline(*loc, pcfg);
    for (int i = 0; i < 12; ++i)
        ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
    pipeline.flush();
    EXPECT_LE(pipeline.stats().input_high_water, 2u);
    EXPECT_EQ(pipeline.stats().frames, 12);
}

TEST(FramePipeline, SubmitAfterCloseFails)
{
    TestRun r = makeRun(SceneType::OutdoorUnknown, 2);
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);
    FramePipeline pipeline(*loc, PipelineConfig{.stages = 2});
    ASSERT_TRUE(pipeline.submit(inputFor(d, 0)));
    pipeline.close();
    EXPECT_FALSE(pipeline.submit(inputFor(d, 1)));
    EXPECT_EQ(pipeline.stats().frames, 1);
}

// --- Per-stage scheduler decisions ------------------------------------------

TEST(FramePipeline, StampsPerStageOffloadDecisions)
{
    TestRun r = makeRun(SceneType::OutdoorUnknown, 6);
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);

    // A trivial linear model: predicted CPU ms == kernel size.
    std::vector<KernelSample> train;
    for (int i = 1; i <= 8; ++i)
        train.push_back({8.0 * i, 8.0 * i});
    RuntimeScheduler sched(
        KernelLatencyModel::fit(BackendKernel::KalmanGain, train));

    PipelineConfig pcfg;
    pcfg.stages = 2;
    pcfg.scheduler = &sched;
    pcfg.accel_ms = 1.0;

    std::vector<LocalizationResult> results(6);
    {
        FramePipeline pipeline(*loc, pcfg);
        for (int i = 0; i < 6; ++i)
            ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
        pipeline.flush();
        LocalizationResult res;
        while (pipeline.poll(res))
            results[res.frame_index] = std::move(res);
    }
    for (const LocalizationResult &res : results) {
        ASSERT_TRUE(res.telemetry.has_offload_decision);
        double size = stageSizeDriver(
            BackendKernel::KalmanGain, res.telemetry.frontend_workload);
        OffloadDecision expect = sched.decide(size, 1.0);
        EXPECT_EQ(res.telemetry.backend_offload.offload, expect.offload);
        EXPECT_EQ(res.telemetry.backend_offload.predicted_cpu_ms,
                  expect.predicted_cpu_ms);
    }
}

// --- Localizer mode switching -----------------------------------------------

TEST(Localizer, RequestModeSwitchValidatesTarget)
{
    TestRun r = makeRun(SceneType::OutdoorUnknown, 2); // VIO, no map
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);
    EXPECT_FALSE(loc->requestModeSwitch(BackendMode::Vio)); // no-op
    // Registration needs a prior map; this session has none.
    EXPECT_FALSE(loc->requestModeSwitch(BackendMode::Registration));
}

/**
 * VIO -> dense-keyframing SLAM mid-run, once through sequential
 * processFrame calls and once through a 4-stage pipeline. The deferred
 * switch is consumed at a solve boundary, so the pipelined request is
 * issued at a drained point to pin it to the same frame as the
 * reference — then both streams must match bit-exactly, including the
 * per-frame mode stamps.
 */
TEST(Localizer, ModeSwitchThroughPipelineMatchesSequential)
{
    const int frames = 14, switch_at = 7;
    TestRun r = makeRun(SceneType::IndoorUnknown, frames); // builds voc
    r.lcfg.mapping.keyframe_interval = 1;
    r.lcfg.mapping.window_size = 4;
    Dataset d(r.dcfg);

    LocalizerConfig vio = r.lcfg;
    vio.mode = BackendMode::Vio;
    vio.use_gps = false;
    auto make = [&] {
        auto loc =
            std::make_unique<Localizer>(vio, d.rig(), &r.voc, nullptr);
        loc->initialize(d.truthAt(0), 0.0,
                        d.trajectory().velocityAt(0.0));
        return loc;
    };

    auto seq_loc = make();
    std::vector<LocalizationResult> seq;
    for (int i = 0; i < frames; ++i) {
        if (i == switch_at)
            ASSERT_TRUE(seq_loc->requestModeSwitch(BackendMode::Slam,
                                                   &r.lcfg.mapping));
        seq.push_back(seq_loc->processFrame(inputFor(d, i)));
    }
    for (int i = 0; i < frames; ++i)
        ASSERT_EQ(seq[i].mode, i < switch_at ? BackendMode::Vio
                                             : BackendMode::Slam)
            << "frame " << i;

    auto pipe_loc = make();
    PipelineConfig pcfg;
    pcfg.cuts = {0, 2, 3};
    pcfg.queue_capacity = 3;
    std::vector<LocalizationResult> piped(frames);
    {
        FramePipeline pipeline(*pipe_loc, pcfg);
        for (int i = 0; i < switch_at; ++i)
            ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
        pipeline.flush();
        ASSERT_TRUE(pipe_loc->requestModeSwitch(BackendMode::Slam,
                                                &r.lcfg.mapping));
        for (int i = switch_at; i < frames; ++i)
            ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
        pipeline.flush();
        LocalizationResult res;
        while (pipeline.poll(res))
            piped[res.frame_index] = std::move(res);
    }
    for (int i = 0; i < frames; ++i) {
        expectPosesIdentical(seq[i], piped[i], i);
        EXPECT_EQ(piped[i].mode, seq[i].mode) << "frame " << i;
    }
}

// --- LocalizerPool ----------------------------------------------------------

TEST(LocalizerPool, ServesConcurrentSessionsInOrder)
{
    const int kSessions = 4;
    const int kFrames = 8;
    TestRun r = makeRun(SceneType::OutdoorUnknown, kFrames);
    Dataset d(r.dcfg);

    // Reference poses from one sequential session.
    auto ref = makeLocalizer(r, d);
    std::vector<LocalizationResult> expected;
    for (int i = 0; i < kFrames; ++i)
        expected.push_back(ref->processFrame(inputFor(d, i)));

    PoolConfig pcfg;
    pcfg.workers = 3;
    pcfg.queue_capacity = 6; // exercise submit-side backpressure too
    LocalizerPool pool(pcfg);
    for (int sid = 0; sid < kSessions; ++sid)
        pool.addSession(makeLocalizer(r, d));
    ASSERT_EQ(pool.sessionCount(), kSessions);

    for (int i = 0; i < kFrames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    pool.drain();

    std::vector<std::vector<LocalizationResult>> per(kSessions);
    PoolResult pr;
    while (pool.poll(pr))
        per[pr.session_id].push_back(std::move(pr.result));

    for (int sid = 0; sid < kSessions; ++sid) {
        ASSERT_EQ(per[sid].size(), static_cast<size_t>(kFrames))
            << "session " << sid;
        for (int i = 0; i < kFrames; ++i) {
            // Results of one session arrive in submission order...
            EXPECT_EQ(per[sid][i].frame_index, i);
            // ...and every session reproduces the sequential poses
            // exactly: sessions are fully isolated from one another.
            expectPosesIdentical(expected[i], per[sid][i], i);
        }
    }
}

TEST(LocalizerPool, SharesPriorMapAcrossRegistrationSessions)
{
    const int kSessions = 4;
    const int kFrames = 6;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    LocalizerPool pool(PoolConfig{.workers = 2, .queue_capacity = 8});
    for (int sid = 0; sid < kSessions; ++sid) {
        int id = pool.createSession(r.lcfg, d.rig(), &r.voc, &r.prior_map,
                                    d.truthAt(0), 0.0,
                                    d.trajectory().velocityAt(0.0));
        EXPECT_EQ(id, sid);
    }
    // All sessions localize against the *same* map object.
    for (int sid = 0; sid < kSessions; ++sid)
        EXPECT_EQ(pool.session(sid).currentMap(), &r.prior_map);

    for (int i = 0; i < kFrames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    pool.drain();

    int results = 0, ok = 0;
    PoolResult pr;
    while (pool.poll(pr)) {
        ++results;
        if (pr.result.ok)
            ++ok;
    }
    EXPECT_EQ(results, kSessions * kFrames);
    EXPECT_GT(ok, 0);
}

TEST(LocalizerPool, UnknownSessionIdsThrow)
{
    // submit() used to silently return false while session() had an
    // assert-only bounds check (UB in Release builds); both now follow
    // the throw-on-invalid policy.
    LocalizerPool pool;
    EXPECT_THROW(pool.submit(0, FrameInput{}), std::out_of_range);
    EXPECT_THROW(pool.submit(-1, FrameInput{}), std::out_of_range);
    EXPECT_THROW(pool.session(0), std::out_of_range);
    EXPECT_THROW(pool.session(-1), std::out_of_range);
}

// --- SolveHub: cross-session batched backend solves -------------------

/**
 * Pool with batch_solves on: every session must still reproduce the
 * plain sequential poses bit-exactly — batching changes where the
 * kernels execute, never what they compute.
 */
void
checkBatchedPoolEquivalence(SceneType scene, int frames,
                            BatchKernel expected_kernel,
                            const std::function<void(LocalizerConfig &)>
                                &tune = nullptr)
{
    TestRun r = makeRun(scene, frames);
    if (tune)
        tune(r.lcfg);
    Dataset d(r.dcfg);

    auto ref = makeLocalizer(r, d);
    std::vector<LocalizationResult> expected;
    for (int i = 0; i < frames; ++i)
        expected.push_back(ref->processFrame(inputFor(d, i)));

    const int kSessions = 4;
    PoolConfig pcfg;
    pcfg.workers = 3;
    pcfg.queue_capacity = 8;
    pcfg.batch_solves = true;
    LocalizerPool pool(pcfg);
    for (int sid = 0; sid < kSessions; ++sid)
        pool.addSession(makeLocalizer(r, d));

    for (int i = 0; i < frames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    pool.drain();

    std::vector<std::vector<LocalizationResult>> per(kSessions);
    PoolResult pr;
    while (pool.poll(pr))
        per[pr.session_id].push_back(std::move(pr.result));
    for (int sid = 0; sid < kSessions; ++sid) {
        ASSERT_EQ(per[sid].size(), static_cast<size_t>(frames));
        for (int i = 0; i < frames; ++i)
            expectPosesIdentical(expected[i], per[sid][i], i);
    }

    // The mode's kernel went through the hub (grouping itself is
    // opportunistic and timing-dependent — bit-identity must hold
    // either way).
    SolveHubStats stats = pool.solveStats();
    EXPECT_GT(stats.requests[static_cast<int>(expected_kernel)], 0)
        << "expected kernel was never routed through the hub";
}

TEST(SolveHub, BatchedRegistrationPoolMatchesSequentialBitExact)
{
    checkBatchedPoolEquivalence(SceneType::IndoorKnown, 10,
                                BatchKernel::Projection);
}

TEST(SolveHub, BatchedVioPoolMatchesSequentialBitExact)
{
    checkBatchedPoolEquivalence(SceneType::OutdoorUnknown, 12,
                                BatchKernel::SpdSolve);
}

TEST(SolveHub, BatchedSlamPoolMatchesSequentialBitExact)
{
    // Dense keyframing + a small window so marginalization (the LU
    // kernel) actually fires within the short run.
    checkBatchedPoolEquivalence(
        SceneType::IndoorUnknown, 12, BatchKernel::LuSolve,
        [](LocalizerConfig &lc) {
            lc.mapping.keyframe_interval = 1;
            lc.mapping.window_size = 4;
        });
}

TEST(SolveHub, RendezvousGroupsConcurrentRequestsDeterministically)
{
    // N participants all enter their backend stage before any submits:
    // the rendezvous must serve all N in ONE batch, each request
    // bit-identical to the direct kernel.
    const int kThreads = 4, n = 40;
    SolveHub hub;

    std::vector<MatX> a(kThreads), b(kThreads), x(kThreads);
    std::vector<MatX> expected(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        Rng rng(100 + t);
        MatX g(n, n);
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j)
                g(i, j) = rng.gaussian();
        a[t] = gram(g);
        for (int i = 0; i < n; ++i)
            a[t](i, i) += n;
        b[t] = MatX(n, 3);
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < 3; ++j)
                b[t](i, j) = rng.gaussian();
        // Direct flow (what Msckf does without a hub).
        Cholesky chol(a[t]);
        ASSERT_TRUE(chol.ok());
        expected[t] = chol.solve(b[t]);
    }

    std::barrier sync(kThreads);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            SolveHub::StageGuard guard(&hub);
            sync.arrive_and_wait(); // all stages registered
            if (!hub.solveSpd(a[t], b[t], x[t]))
                failures.fetch_add(1);
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(failures.load(), 0);
    for (int t = 0; t < kThreads; ++t) {
        ASSERT_EQ(x[t].rows(), n);
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < 3; ++j)
                EXPECT_EQ(x[t](i, j), expected[t](i, j))
                    << "thread " << t;
    }
    SolveHubStats stats = hub.stats();
    const int k = static_cast<int>(BatchKernel::SpdSolve);
    EXPECT_EQ(stats.requests[k], kThreads);
    EXPECT_EQ(stats.batches[k], 1);
    EXPECT_EQ(stats.max_batch[k], kThreads);
}

TEST(SolveHub, SafetyRequestNeverWaitsOnBestEffortStages)
{
    // Two best-effort stages register and then never submit; a
    // safety-class stage submits one request. The priority rendezvous
    // must release it as a safety-led batch instead of waiting for the
    // full (and here, never-completing) best-effort wave — with the
    // result bit-identical to the direct kernel.
    const int n = 24;
    SolveHub hub;

    Rng rng(7);
    MatX g(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            g(i, j) = rng.gaussian();
    MatX a = gram(g);
    for (int i = 0; i < n; ++i)
        a(i, i) += n;
    MatX b(n, 3);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < 3; ++j)
            b(i, j) = rng.gaussian();
    Cholesky chol(a);
    ASSERT_TRUE(chol.ok());
    MatX expected = chol.solve(b);

    std::atomic<bool> release{false};
    std::barrier sync(3);
    auto bystander = [&] {
        SolveHub::StageGuard guard(&hub, /*safety=*/false);
        sync.arrive_and_wait(); // registered, now stall
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    std::thread be1(bystander), be2(bystander);
    sync.arrive_and_wait(); // both best-effort stages are inside

    MatX x;
    {
        SolveHub::StageGuard guard(&hub, /*safety=*/true);
        ASSERT_TRUE(hub.solveSpd(a, b, x)); // must not deadlock
    }
    release.store(true);
    be1.join();
    be2.join();

    ASSERT_EQ(x.rows(), n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_EQ(x(i, j), expected(i, j));
    SolveHubStats stats = hub.stats();
    EXPECT_EQ(stats.safety_requests, 1);
    EXPECT_EQ(stats.safety_batches, 1);
}

// --- Gang window ------------------------------------------------------------

TEST(LocalizerPool, GangWindowKeepsPosesBitIdenticalAndAlignsBatches)
{
    const int kSessions = 4;
    const int kFrames = 8;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    auto ref = makeLocalizer(r, d);
    std::vector<LocalizationResult> expected;
    for (int i = 0; i < kFrames; ++i)
        expected.push_back(ref->processFrame(inputFor(d, i)));

    PoolConfig pcfg;
    pcfg.workers = kSessions; // alignment width = min(workers, sessions)
    pcfg.queue_capacity = 16;
    pcfg.gang_window = true; // implies batch_solves
    LocalizerPool pool(pcfg);
    for (int sid = 0; sid < kSessions; ++sid)
        pool.addSession(makeLocalizer(r, d));

    // Atomic lockstep arrival: admitting every session's frames in one
    // batch keeps submission from racing worker dispatch, so wave
    // widths are deterministic (streamed per-frame submit() would let
    // an early worker stage a lone first arrival into a narrow wave).
    std::vector<std::pair<int, FrameInput>> batch;
    for (int i = 0; i < kFrames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            batch.emplace_back(sid, inputFor(d, i));
    ASSERT_EQ(pool.submitBatch(std::move(batch)), kFrames * kSessions);
    pool.drain();

    std::vector<std::vector<LocalizationResult>> per(kSessions);
    PoolResult pr;
    while (pool.poll(pr))
        per[pr.session_id].push_back(std::move(pr.result));
    for (int sid = 0; sid < kSessions; ++sid) {
        ASSERT_EQ(per[sid].size(), static_cast<size_t>(kFrames));
        for (int i = 0; i < kFrames; ++i)
            expectPosesIdentical(expected[i], per[sid][i], i);
    }

    // The gang window aligns the sessions' backend stages, so the hub
    // must observe batches near the session count — the acceptance
    // target, not just opportunistic grouping.
    SolveHubStats stats = pool.solveStats();
    const int k = static_cast<int>(BatchKernel::Projection);
    ASSERT_GT(stats.requests[k], 0);
    EXPECT_GE(stats.meanBatch(BatchKernel::Projection),
              0.8 * kSessions);
    EXPECT_EQ(stats.max_batch[k], kSessions);
}

/**
 * Pool stress with *different* modes under the gang window: VIO + SLAM
 * + registration sessions rendezvous at the same windows (each mode
 * batching its own kernel class), every per-session pose stream stays
 * bit-identical to its solo run, and the rendezvous never deadlocks
 * (SLAM frames submit zero or one hub request depending on
 * marginalization, registration one or two — the window must absorb
 * all of it).
 */
TEST(LocalizerPool, MixedModeGangStressMatchesSoloRuns)
{
    const int kFrames = 10;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    // Per-session configurations over the shared dataset/assets.
    std::vector<LocalizerConfig> cfgs;
    {
        LocalizerConfig vio;
        vio.mode = BackendMode::Vio;
        vio.use_gps = false;
        LocalizerConfig slam;
        slam.mode = BackendMode::Slam;
        slam.mapping.keyframe_interval = 1;
        slam.mapping.window_size = 4;
        LocalizerConfig reg = r.lcfg;
        ASSERT_EQ(reg.mode, BackendMode::Registration);
        cfgs = {vio, slam, reg, vio};
    }
    const int kSessions = static_cast<int>(cfgs.size());

    auto makeFor = [&](const LocalizerConfig &cfg) {
        auto loc = std::make_unique<Localizer>(
            cfg, d.rig(),
            cfg.mode != BackendMode::Vio ? &r.voc : nullptr,
            cfg.mode == BackendMode::Registration ? &r.prior_map
                                                  : nullptr);
        loc->initialize(d.truthAt(0), 0.0,
                        d.trajectory().velocityAt(0.0));
        return loc;
    };

    // Solo references.
    std::vector<std::vector<LocalizationResult>> expected(kSessions);
    for (int sid = 0; sid < kSessions; ++sid) {
        auto solo = makeFor(cfgs[sid]);
        for (int i = 0; i < kFrames; ++i)
            expected[sid].push_back(solo->processFrame(inputFor(d, i)));
    }

    PoolConfig pcfg;
    pcfg.workers = kSessions;
    pcfg.queue_capacity = 12;
    pcfg.gang_window = true;
    LocalizerPool pool(pcfg);
    for (int sid = 0; sid < kSessions; ++sid)
        pool.addSession(makeFor(cfgs[sid]));

    for (int i = 0; i < kFrames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    pool.drain(); // completing at all proves no rendezvous deadlock

    std::vector<std::vector<LocalizationResult>> per(kSessions);
    PoolResult pr;
    while (pool.poll(pr))
        per[pr.session_id].push_back(std::move(pr.result));
    for (int sid = 0; sid < kSessions; ++sid) {
        ASSERT_EQ(per[sid].size(), static_cast<size_t>(kFrames))
            << "session " << sid;
        for (int i = 0; i < kFrames; ++i) {
            SCOPED_TRACE("session " + std::to_string(sid));
            expectPosesIdentical(expected[sid][i], per[sid][i], i);
        }
    }

    // Every mode's kernel class went through the hub.
    SolveHubStats stats = pool.solveStats();
    EXPECT_GT(stats.requests[static_cast<int>(BatchKernel::Projection)],
              0);
    EXPECT_GT(stats.requests[static_cast<int>(BatchKernel::SpdSolve)],
              0);
    EXPECT_GT(stats.requests[static_cast<int>(BatchKernel::LuSolve)], 0);
}

// --- Scheduler online refit through the pipeline ---------------------------

TEST(FramePipeline, OnlineRefitConsumesTelemetryStream)
{
    TestRun r = makeRun(SceneType::OutdoorUnknown, 8);
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);

    std::vector<KernelSample> train;
    for (int i = 1; i <= 8; ++i)
        train.push_back({8.0 * i, 0.02 * i});
    RuntimeScheduler sched(
        KernelLatencyModel::fit(BackendKernel::KalmanGain, train));
    sched.enableOnlineRefit(/*window=*/32.0);

    PipelineConfig pcfg;
    pcfg.cuts = {2, 3};
    pcfg.stages = 3;
    pcfg.scheduler = &sched;
    pcfg.accel_ms = 1.0;
    pcfg.refit = &sched;
    {
        FramePipeline pipeline(*loc, pcfg);
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
        pipeline.flush();
    }
    // Frames whose Kalman-gain solve actually ran fed measured samples
    // back (frames where the kernel never executed are skipped — a
    // 0 ms sample would poison the windowed fit).
    EXPECT_GT(sched.model().observedSamples(), 0);
    EXPECT_LE(sched.model().observedSamples(), 8);
}

TEST(SolveHub, BatchedProjectionMatchesDirectKernel)
{
    // Two sessions sharing one map: the stacked product must hand each
    // session exactly the pixels of the direct per-session kernel.
    Map map;
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        MapPoint mp;
        mp.position =
            Vec3{rng.uniform(-20, 20), rng.uniform(-20, 20),
                 rng.uniform(1, 30)};
        map.addPoint(mp);
    }
    const int m = map.pointCount();

    auto randomC = [&](uint64_t seed) {
        Rng r2(seed);
        MatX c(3, 4);
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 4; ++j)
                c(i, j) = r2.gaussian();
        return c;
    };
    std::vector<MatX> cs = {randomC(1), randomC(2)};

    // Direct kernel (the hubless Tracker path).
    MatX x_rows(m, 4);
    for (int i = 0; i < m; ++i) {
        x_rows(i, 0) = map.points()[i].position[0];
        x_rows(i, 1) = map.points()[i].position[1];
        x_rows(i, 2) = map.points()[i].position[2];
        x_rows(i, 3) = 1.0;
    }
    std::vector<MatX> expected(2);
    multiplyTransposedInto(x_rows, cs[0], expected[0]);
    multiplyTransposedInto(x_rows, cs[1], expected[1]);

    SolveHub hub;
    std::vector<MatX> f(2);
    std::barrier sync(2);
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&, t] {
            SolveHub::StageGuard guard(&hub);
            sync.arrive_and_wait();
            hub.project(&map, /*static_map=*/true, cs[t], f[t]);
        });
    }
    for (auto &th : threads)
        th.join();

    for (int t = 0; t < 2; ++t) {
        ASSERT_EQ(f[t].rows(), m);
        for (int i = 0; i < m; ++i)
            for (int j = 0; j < 3; ++j)
                EXPECT_EQ(f[t](i, j), expected[t](i, j))
                    << "session " << t << " point " << i;
    }
    const int k = static_cast<int>(BatchKernel::Projection);
    EXPECT_EQ(hub.stats().max_batch[k], 2);

    // Second round against the now-warm static-map cache (and the
    // singleton-group path): still bit-identical.
    MatX f2;
    {
        SolveHub::StageGuard guard(&hub);
        hub.project(&map, /*static_map=*/true, cs[0], f2);
    }
    for (int i = 0; i < m; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_EQ(f2(i, j), expected[0](i, j)) << "cached point " << i;
}

// --- Pool / pipeline lifecycle edges ----------------------------------------

TEST(LocalizerPool, QueueCapacityZeroClampsToOne)
{
    const int kFrames = 3;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);
    PoolConfig pcfg;
    pcfg.workers = 1;
    pcfg.queue_capacity = 0; // must clamp, not divide-by-zero / livelock
    LocalizerPool pool(pcfg);
    int sid = pool.addSession(makeLocalizer(r, d));
    for (int i = 0; i < kFrames; ++i)
        ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    pool.drain();
    int results = 0;
    PoolResult pr;
    while (pool.poll(pr))
        ++results;
    EXPECT_EQ(results, kFrames);
}

TEST(LocalizerPool, ShutdownWithQueuedWorkCompletesEverything)
{
    const int kFrames = 6;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);
    PoolConfig pcfg;
    pcfg.workers = 1;
    pcfg.queue_capacity = kFrames;
    LocalizerPool pool(pcfg);
    int sid = pool.addSession(makeLocalizer(r, d));
    for (int i = 0; i < kFrames; ++i)
        ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    // No drain(): shutdown itself must drain the queued frames, not
    // abandon them.
    pool.shutdown();
    int results = 0;
    PoolResult pr;
    while (pool.poll(pr))
        ++results;
    EXPECT_EQ(results, kFrames);
    // Unknown ids still throw after shutdown; valid ids are rejected.
    EXPECT_THROW(pool.submit(99, inputFor(d, 0)), std::out_of_range);
    EXPECT_FALSE(pool.submit(sid, inputFor(d, 0)));
}

TEST(LocalizerPool, DrainWaitsForParkedSubmitter)
{
    // A producer parked in submit() on the class quota used to be
    // invisible to drain()/shutdown() (it had not yet incremented the
    // submitted counter), so a racing shutdown dropped its frame after
    // the wake-up stopping check. In-flight submitters are now
    // tracked: every submit() entered before shutdown() began must
    // succeed and yield a result.
    const int kFrames = 4;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);
    PoolConfig pcfg;
    pcfg.workers = 1;
    pcfg.queue_capacity = 1; // park the producer while a frame runs
    LocalizerPool pool(pcfg);
    int sid = pool.addSession(makeLocalizer(r, d));

    // Inputs pre-built: the submit stream must be tight so the drain
    // inside shutdown() cannot legitimately complete between two
    // widely-spaced submissions.
    std::vector<FrameInput> inputs;
    for (int i = 0; i < kFrames; ++i)
        inputs.push_back(inputFor(d, i));

    std::atomic<int> accepted{0};
    std::thread producer([&] {
        for (FrameInput &in : inputs)
            if (pool.submit(sid, std::move(in)))
                accepted.fetch_add(1);
    });
    // Shut down once the producer is demonstrably mid-stream: with a
    // quota of 1 and multi-millisecond frames, the later submits are
    // parked on the quota and must still be honored.
    while (pool.stats().submitted < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    pool.shutdown();
    producer.join();

    EXPECT_EQ(accepted.load(), kFrames);
    int results = 0;
    PoolResult pr;
    while (pool.poll(pr))
        ++results;
    EXPECT_EQ(results, kFrames);
}

TEST(LocalizerPool, AwaitResultSurvivesProducerGaps)
{
    // The old predicate returned false ("all drained") whenever
    // completed == submitted held transiently between two producer
    // submissions; with gaps in the producer stream a consumer loop
    // exited after the first frame. The predicate is now
    // shutdown-aware: the loop must collect every frame.
    const int kFrames = 5;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);
    LocalizerPool pool(PoolConfig{.workers = 1, .queue_capacity = 4});
    int sid = pool.addSession(makeLocalizer(r, d));

    std::thread producer([&] {
        for (int i = 0; i < kFrames; ++i) {
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
            // Idle gap: the pool fully drains between submissions.
            std::this_thread::sleep_for(std::chrono::milliseconds(15));
        }
        pool.shutdown();
    });

    int collected = 0;
    PoolResult pr;
    while (pool.awaitResult(pr)) {
        EXPECT_EQ(pr.result.frame_index, collected);
        ++collected;
    }
    producer.join();
    EXPECT_EQ(collected, kFrames);
}

TEST(FramePipeline, AwaitResultSurvivesProducerGaps)
{
    const int kFrames = 5;
    TestRun r = makeRun(SceneType::OutdoorUnknown, kFrames);
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);
    FramePipeline pipeline(*loc, PipelineConfig{.stages = 2});

    std::thread producer([&] {
        for (int i = 0; i < kFrames; ++i) {
            ASSERT_TRUE(pipeline.submit(inputFor(d, i)));
            std::this_thread::sleep_for(std::chrono::milliseconds(15));
        }
        pipeline.close();
    });

    int collected = 0;
    LocalizationResult res;
    while (pipeline.awaitResult(res)) {
        EXPECT_EQ(res.frame_index, collected);
        ++collected;
    }
    producer.join();
    EXPECT_EQ(collected, kFrames);
}

TEST(FramePipeline, ConcurrentCloseIsSafe)
{
    // close() used to drop its lock between the closed check and
    // flush(), so two concurrent closers could both flush and race
    // in_q_.close()/join() — double-join is UB. Closers are now
    // serialized end-to-end; every caller returns only after the
    // workers are joined.
    const int kFrames = 6;
    TestRun r = makeRun(SceneType::OutdoorUnknown, kFrames);
    Dataset d(r.dcfg);
    auto loc = makeLocalizer(r, d);
    FramePipeline pipeline(*loc, PipelineConfig{.stages = 2});
    for (int i = 0; i < kFrames; ++i)
        ASSERT_TRUE(pipeline.submit(inputFor(d, i)));

    std::vector<std::thread> closers;
    for (int t = 0; t < 3; ++t)
        closers.emplace_back([&] { pipeline.close(); });
    for (auto &t : closers)
        t.join();

    // Defined submit-after-close behavior: rejected, no side effects.
    EXPECT_FALSE(pipeline.submit(inputFor(d, 0)));
    EXPECT_EQ(pipeline.stats().frames, kFrames);
}

// --- QoS admission control --------------------------------------------------

/**
 * Oversubscribed mixed-class pool: one safety-critical session and a
 * fleet of best-effort sessions submit faster than the workers can
 * serve. The pool must degrade selectively — the safety-critical
 * stream completes in full and bit-identical to an unloaded run, the
 * best-effort sessions shed frames via drop-oldest, and every
 * non-dropped best-effort pose is bit-identical to replaying exactly
 * the admitted subset through a solo localizer (a dropped frame
 * behaves like one that was never captured).
 */
void
checkQosShedding(bool gang)
{
    const int kFrames = 10;
    const int kBestEffort = 3;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    auto ref = makeLocalizer(r, d);
    std::vector<LocalizationResult> expected;
    for (int i = 0; i < kFrames; ++i)
        expected.push_back(ref->processFrame(inputFor(d, i)));

    PoolConfig pcfg;
    pcfg.workers = 2;
    pcfg.reserved_workers = 1; // one worker held back for the vehicle
    pcfg.queue_capacity = 16;
    pcfg.best_effort_capacity = 2; // tiny: forces drop-oldest shedding
    pcfg.gang_window = gang;
    if (gang)
        pcfg.gang_timeout_ms = 20.0; // waves must not wait on laggards
    LocalizerPool pool(pcfg);

    const int sc = pool.addSession(
        makeLocalizer(r, d), SessionConfig{QosClass::SafetyCritical});
    std::vector<int> be;
    for (int k = 0; k < kBestEffort; ++k)
        be.push_back(pool.addSession(
            makeLocalizer(r, d), SessionConfig{QosClass::BestEffort}));

    for (int i = 0; i < kFrames; ++i) {
        ASSERT_TRUE(pool.submit(sc, inputFor(d, i)));
        for (int sid : be)
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    }
    pool.drain();

    std::vector<std::vector<LocalizationResult>> per(1 + kBestEffort);
    PoolResult pr;
    while (pool.poll(pr))
        per[pr.session_id].push_back(std::move(pr.result));

    // Safety-critical: complete, in order, bit-identical.
    ASSERT_EQ(per[sc].size(), static_cast<size_t>(kFrames));
    for (int i = 0; i < kFrames; ++i) {
        SCOPED_TRACE(gang ? "gang on" : "gang off");
        EXPECT_EQ(per[sc][i].frame_index, i);
        expectPosesIdentical(expected[i], per[sc][i], i);
    }

    // Best-effort: the non-dropped subset is bit-identical to a solo
    // run over exactly that subset.
    for (int sid : be) {
        auto solo = makeLocalizer(r, d);
        int prev = -1;
        for (const LocalizationResult &res : per[sid]) {
            SCOPED_TRACE("session " + std::to_string(sid) +
                         (gang ? " gang on" : " gang off"));
            EXPECT_GT(res.frame_index, prev); // order preserved
            prev = res.frame_index;
            LocalizationResult cmp =
                solo->processFrame(inputFor(d, res.frame_index));
            expectPosesIdentical(cmp, res, res.frame_index);
        }
    }

    PoolStats st = pool.stats();
    EXPECT_EQ(st.sessions[sc].qos, QosClass::SafetyCritical);
    EXPECT_EQ(st.sessions[sc].completed, kFrames);
    EXPECT_EQ(st.sessions[sc].dropped(), 0);
    long be_dropped = 0, be_completed = 0;
    for (int sid : be) {
        const SessionPoolStats &s = st.sessions[sid];
        EXPECT_EQ(s.qos, QosClass::BestEffort);
        EXPECT_EQ(s.completed + s.dropped(), s.submitted);
        EXPECT_EQ(s.completed,
                  static_cast<long>(per[sid].size()));
        be_dropped += s.dropped();
        be_completed += s.completed;
    }
    // The pool was offered 4x its serving rate into a 2-deep
    // best-effort quota: shedding must have happened.
    EXPECT_GT(be_dropped, 0);
    EXPECT_EQ(st.dropped, be_dropped);
    EXPECT_EQ(st.completed, kFrames + be_completed);
    EXPECT_EQ(st.submitted, st.completed + st.dropped);
}

TEST(LocalizerPool, OversubscribedPoolShedsOnlyBestEffort)
{
    checkQosShedding(/*gang=*/false);
}

TEST(LocalizerPool, OversubscribedPoolShedsOnlyBestEffortGangWindow)
{
    checkQosShedding(/*gang=*/true);
}

TEST(LocalizerPool, BestEffortDeadlineDropsStaleFrames)
{
    const int kFrames = 4;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    PoolConfig pcfg;
    pcfg.workers = 1;
    pcfg.queue_capacity = 2 * kFrames;
    LocalizerPool pool(pcfg);
    const int sc = pool.addSession(
        makeLocalizer(r, d), SessionConfig{QosClass::SafetyCritical});
    SessionConfig be_cfg;
    be_cfg.qos = QosClass::BestEffort;
    be_cfg.frame_deadline_ms = 0.01; // far below one frame's latency
    const int be = pool.addSession(makeLocalizer(r, d), be_cfg);

    // The single worker starts on the safety-critical backlog, so by
    // the time any best-effort frame reaches dispatch it has aged past
    // its deadline — all of them must be shed, none processed.
    for (int i = 0; i < kFrames; ++i)
        ASSERT_TRUE(pool.submit(sc, inputFor(d, i)));
    for (int i = 0; i < kFrames; ++i)
        ASSERT_TRUE(pool.submit(be, inputFor(d, i)));
    pool.drain();

    PoolStats st = pool.stats();
    EXPECT_EQ(st.sessions[sc].completed, kFrames);
    EXPECT_EQ(st.sessions[be].completed, 0);
    EXPECT_EQ(st.sessions[be].dropped_deadline, kFrames);
    int results = 0;
    PoolResult pr;
    while (pool.poll(pr)) {
        EXPECT_EQ(pr.session_id, sc);
        EXPECT_EQ(pr.qos, QosClass::SafetyCritical);
        ++results;
    }
    EXPECT_EQ(results, kFrames);
}

TEST(LocalizerPool, GangWindowSingleWorkerCompletes)
{
    // One worker, several gang sessions: waves can only ever be one
    // backend wide, and the window must keep cycling instead of
    // waiting for a concurrency that cannot exist.
    const int kSessions = 2;
    const int kFrames = 4;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    auto ref = makeLocalizer(r, d);
    std::vector<LocalizationResult> expected;
    for (int i = 0; i < kFrames; ++i)
        expected.push_back(ref->processFrame(inputFor(d, i)));

    PoolConfig pcfg;
    pcfg.workers = 1;
    pcfg.queue_capacity = 8;
    pcfg.gang_window = true;
    LocalizerPool pool(pcfg);
    for (int sid = 0; sid < kSessions; ++sid)
        pool.addSession(makeLocalizer(r, d));
    for (int i = 0; i < kFrames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    pool.drain(); // completing at all proves the window cannot stall

    std::vector<std::vector<LocalizationResult>> per(kSessions);
    PoolResult pr;
    while (pool.poll(pr))
        per[pr.session_id].push_back(std::move(pr.result));
    for (int sid = 0; sid < kSessions; ++sid) {
        ASSERT_EQ(per[sid].size(), static_cast<size_t>(kFrames));
        for (int i = 0; i < kFrames; ++i)
            expectPosesIdentical(expected[i], per[sid][i], i);
    }
}

TEST(LocalizerPool, GangTimeoutReleasesNarrowerWavesBitIdentical)
{
    // A tiny wave timeout forces the window to release narrower
    // pre-announced waves whenever frontends lag behind the first
    // parked frame. Narrowing changes only *when* backends run: the
    // pose streams must stay bit-identical and the pool must drain.
    const int kSessions = 4;
    const int kFrames = 6;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    auto ref = makeLocalizer(r, d);
    std::vector<LocalizationResult> expected;
    for (int i = 0; i < kFrames; ++i)
        expected.push_back(ref->processFrame(inputFor(d, i)));

    PoolConfig pcfg;
    pcfg.workers = kSessions;
    pcfg.queue_capacity = 16;
    pcfg.gang_window = true;
    pcfg.gang_timeout_ms = 1.0; // well below one frontend's latency
    LocalizerPool pool(pcfg);
    for (int sid = 0; sid < kSessions; ++sid)
        pool.addSession(makeLocalizer(r, d));
    for (int i = 0; i < kFrames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    pool.drain();

    std::vector<std::vector<LocalizationResult>> per(kSessions);
    PoolResult pr;
    while (pool.poll(pr))
        per[pr.session_id].push_back(std::move(pr.result));
    for (int sid = 0; sid < kSessions; ++sid) {
        ASSERT_EQ(per[sid].size(), static_cast<size_t>(kFrames));
        for (int i = 0; i < kFrames; ++i)
            expectPosesIdentical(expected[i], per[sid][i], i);
    }

    // Every released wave was pre-announced to the hub, whatever its
    // width (dynamic gang width).
    SolveHubStats stats = pool.solveStats();
    EXPECT_GT(stats.waves_announced, 0);
    EXPECT_GE(stats.min_wave, 1);
    EXPECT_LE(stats.max_wave, kSessions);
    EXPECT_EQ(stats.entries_announced >= stats.waves_announced, true);
}

/**
 * Fault injection under the gang window: one session's sensors
 * collapse mid-run (featureless frames + GPS outage). The faulty
 * session must neither stall its gang wave (the pool drains all
 * frames of all sessions) nor poison its neighbours (every healthy
 * session stays bit-identical to the solo run), and the pool's
 * serving counters must expose the victim's degraded health.
 */
TEST(LocalizerPool, FaultySessionDoesNotStallOrPoisonTheGang)
{
    const int kSessions = 3;
    const int kFrames = 10;
    const int kFaulty = 1;
    const int kFaultFrom = 3, kFaultTo = 7;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    ImageU8 blank(d.rig().cam.width, d.rig().cam.height, 128);
    auto faultyInput = [&](int i) {
        FrameInput in = inputFor(d, i);
        if (i >= kFaultFrom && i < kFaultTo) {
            in.left = blank;
            in.right = blank;
            in.gps = GpsSample{}; // valid = false
        }
        return in;
    };

    // Solo references: the clean stream and the faulty stream.
    auto clean_ref = makeLocalizer(r, d);
    auto faulty_ref = makeLocalizer(r, d);
    std::vector<LocalizationResult> clean_expected, faulty_expected;
    for (int i = 0; i < kFrames; ++i) {
        clean_expected.push_back(clean_ref->processFrame(inputFor(d, i)));
        faulty_expected.push_back(faulty_ref->processFrame(faultyInput(i)));
    }

    PoolConfig pcfg;
    pcfg.workers = kSessions;
    pcfg.queue_capacity = 16;
    pcfg.gang_window = true;
    pcfg.gang_timeout_ms = 50.0; // a stalled wave must time out, not hang
    LocalizerPool pool(pcfg);
    for (int sid = 0; sid < kSessions; ++sid)
        pool.addSession(makeLocalizer(r, d));

    for (int i = 0; i < kFrames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            ASSERT_TRUE(pool.submit(
                sid, sid == kFaulty ? faultyInput(i) : inputFor(d, i)));
    pool.drain();

    std::vector<std::vector<LocalizationResult>> per(kSessions);
    PoolResult pr;
    while (pool.poll(pr))
        per[pr.session_id].push_back(std::move(pr.result));

    for (int sid = 0; sid < kSessions; ++sid) {
        // No stall: every session completed every frame.
        ASSERT_EQ(per[sid].size(), static_cast<size_t>(kFrames))
            << "session " << sid;
        const auto &expected =
            sid == kFaulty ? faulty_expected : clean_expected;
        for (int i = 0; i < kFrames; ++i)
            expectPosesIdentical(expected[i], per[sid][i], i);
    }

    // The victim's collapse is visible in the pool's serving counters;
    // the healthy sessions report clean streams.
    PoolStats stats = pool.stats();
    ASSERT_EQ(stats.sessions.size(), static_cast<size_t>(kSessions));
    long victim_unhealthy = 0;
    for (int h = 1; h < kTrackingHealthStates; ++h)
        victim_unhealthy += stats.sessions[kFaulty].health_frames[h];
    EXPECT_GT(victim_unhealthy, 0);
    for (int sid = 0; sid < kSessions; ++sid) {
        if (sid == kFaulty)
            continue;
        EXPECT_EQ(stats.sessions[sid].health_frames[static_cast<int>(
                      TrackingHealth::Nominal)],
                  static_cast<long>(kFrames))
            << "session " << sid;
        EXPECT_EQ(stats.sessions[sid].dead_reckoned_frames, 0);
    }
}

// --- Elastic worker scaling + pool re-planning ------------------------------

TEST(LocalizerPool, ElasticPoolGrowsUnderLoadAndShrinksWhenIdle)
{
    const int kSessions = 3, kFrames = 6;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    PoolConfig pcfg;
    pcfg.workers = 1; // starting width only
    pcfg.elastic_workers = true;
    pcfg.max_workers = 3;
    pcfg.grow_wait_ms = 0.5;   // any real backlog triggers growth
    pcfg.shrink_idle_ms = 25.0; // retire fast once the burst is done
    pcfg.queue_capacity = 8;
    LocalizerPool pool(pcfg);
    for (int sid = 0; sid < kSessions; ++sid)
        pool.addSession(makeLocalizer(r, d));

    // Burst: three streams over one worker force queue waits past the
    // growth threshold.
    for (int i = 0; i < kFrames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    pool.drain();

    PoolStats busy = pool.stats();
    EXPECT_EQ(busy.completed, static_cast<long>(kSessions) * kFrames);
    EXPECT_GT(busy.workers_grown, 0);
    EXPECT_LE(busy.workers, 3);

    // Sustained idle: the pool must fall back to the minimum width
    // (one worker here — no reservation).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (pool.stats().workers > 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    PoolStats idle = pool.stats();
    EXPECT_EQ(idle.workers, 1);
    EXPECT_GT(idle.workers_retired, 0);

    // ...and still serves new work afterwards.
    ASSERT_TRUE(pool.submit(0, inputFor(d, 0)));
    pool.drain();
    EXPECT_EQ(pool.stats().completed, busy.completed + 1);
}

TEST(LocalizerPool, GangWindowWithReplanAndSafetySessionStaysBitExact)
{
    // Online re-planning and a safety-class member must not disturb
    // the gang rendezvous: every pose stays bit-identical to the solo
    // run, the adaptation counters move, and the safety session's hub
    // requests are tracked by the priority rendezvous.
    const int kSessions = 4, kFrames = 8;
    TestRun r = makeRun(SceneType::IndoorKnown, kFrames);
    Dataset d(r.dcfg);

    auto ref = makeLocalizer(r, d);
    std::vector<LocalizationResult> expected;
    for (int i = 0; i < kFrames; ++i)
        expected.push_back(ref->processFrame(inputFor(d, i)));

    PoolConfig pcfg;
    pcfg.workers = kSessions;
    pcfg.queue_capacity = 8;
    pcfg.gang_window = true;
    pcfg.gang_timeout_ms = 50.0;
    pcfg.replan = true;
    pcfg.replan_cfg.window = 8;
    pcfg.replan_cfg.tick_frames = 2;
    pcfg.replan_cfg.min_mode_frames = 2;
    LocalizerPool pool(pcfg);
    SessionConfig safety_cfg;
    safety_cfg.qos = QosClass::SafetyCritical;
    pool.addSession(makeLocalizer(r, d), safety_cfg);
    for (int sid = 1; sid < kSessions; ++sid)
        pool.addSession(makeLocalizer(r, d));

    for (int i = 0; i < kFrames; ++i)
        for (int sid = 0; sid < kSessions; ++sid)
            ASSERT_TRUE(pool.submit(sid, inputFor(d, i)));
    pool.drain();

    std::vector<std::vector<LocalizationResult>> per(kSessions);
    PoolResult pr;
    while (pool.poll(pr))
        per[pr.session_id].push_back(std::move(pr.result));
    for (int sid = 0; sid < kSessions; ++sid) {
        ASSERT_EQ(per[sid].size(), static_cast<size_t>(kFrames))
            << "session " << sid;
        for (int i = 0; i < kFrames; ++i)
            expectPosesIdentical(expected[i], per[sid][i], i);
    }

    PoolStats ps = pool.stats();
    EXPECT_GE(ps.replans, 1);
    // Every tick resolves to exactly one of applied / held.
    EXPECT_EQ(ps.swaps_applied + ps.swaps_rejected, ps.replans);
    ASSERT_EQ(ps.sessions.size(), static_cast<size_t>(kSessions));
    for (int sid = 0; sid < kSessions; ++sid)
        EXPECT_FALSE(ps.sessions[sid].plan_cuts.empty())
            << "session " << sid;
    SolveHubStats hs = pool.solveStats();
    EXPECT_GT(hs.safety_requests, 0);
}

} // namespace
} // namespace edx
