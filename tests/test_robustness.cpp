/**
 * @file
 * Failure-injection tests: the localizer and its blocks must degrade
 * gracefully under sensor dropouts, featureless input, corrupt files,
 * and out-of-order data - the conditions commercial deployments hit
 * (Sec. II-III of the paper motivate several of these).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "backend/msckf.hpp"
#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace {

DatasetConfig
droneScene(SceneType scene, int frames)
{
    DatasetConfig cfg;
    cfg.scene = scene;
    cfg.platform = Platform::Drone;
    cfg.frame_count = frames;
    cfg.fps = 10.0;
    cfg.seed = 99;
    return cfg;
}

FrameInput
inputFor(const Dataset &d, DatasetFrame f, int i)
{
    FrameInput in;
    in.frame_index = i;
    in.t = f.t;
    in.left = std::move(f.stereo.left);
    in.right = std::move(f.stereo.right);
    in.imu = d.imuBetweenFrames(i);
    in.gps = d.gpsAtFrame(i);
    return in;
}

TEST(Robustness, FeaturelessFramesDoNotCrashVio)
{
    Dataset d(droneScene(SceneType::OutdoorUnknown, 10));
    LocalizerConfig cfg = configForScenario(SceneType::OutdoorUnknown);
    Localizer loc(cfg, d.rig(), nullptr, nullptr);
    loc.initialize(d.truthAt(0), 0.0, d.trajectory().velocityAt(0.0));

    // Uniform gray stereo pair: zero corners, zero matches.
    ImageU8 blank(d.rig().cam.width, d.rig().cam.height, 128);
    for (int i = 0; i < 6; ++i) {
        DatasetFrame f = d.frame(i);
        FrameInput in = inputFor(d, f, i);
        in.left = blank;
        in.right = blank;
        LocalizationResult r = loc.processFrame(in);
        // IMU + GPS keep the filter alive; the frame must not crash
        // and must still produce a pose.
        EXPECT_EQ(r.telemetry.frontend_workload.left_features, 0);
        EXPECT_TRUE(std::isfinite(r.pose.translation[0]));
    }
}

TEST(Robustness, VioSurvivesTotalGpsOutage)
{
    Dataset d(droneScene(SceneType::OutdoorUnknown, 30));
    LocalizerConfig cfg = configForScenario(SceneType::OutdoorUnknown);
    Localizer loc(cfg, d.rig(), nullptr, nullptr);
    loc.initialize(d.truthAt(0), 0.0, d.trajectory().velocityAt(0.0));

    GpsSample no_fix; // valid = false
    double worst = 0.0;
    for (int i = 0; i < d.frameCount(); ++i) {
        DatasetFrame f = d.frame(i);
        FrameInput in = inputFor(d, f, i);
        in.gps = no_fix; // outage for the entire run
        LocalizationResult r = loc.processFrame(in);
        worst = std::max(
            worst, r.pose.distanceTo(f.truth).translational);
    }
    // Pure VIO drifts but stays bounded over 3 s of flight.
    EXPECT_LT(worst, 3.0) << "VIO diverged during GPS outage";
}

TEST(Robustness, EmptyImuBatchesAreTolerated)
{
    Dataset d(droneScene(SceneType::OutdoorUnknown, 12));
    LocalizerConfig cfg = configForScenario(SceneType::OutdoorUnknown);
    Localizer loc(cfg, d.rig(), nullptr, nullptr);
    loc.initialize(d.truthAt(0), 0.0, d.trajectory().velocityAt(0.0));

    for (int i = 0; i < d.frameCount(); ++i) {
        DatasetFrame f = d.frame(i);
        FrameInput in = inputFor(d, f, i);
        if (i % 3 == 1)
            in.imu.clear(); // dropped IMU packet
        LocalizationResult r = loc.processFrame(in);
        EXPECT_TRUE(std::isfinite(r.pose.translation.norm()));
    }
}

TEST(Robustness, OutOfOrderImuSamplesAreIgnored)
{
    StereoRig rig = platformRig(Platform::Drone);
    Msckf filter(rig);
    filter.initialize(Pose::identity(), 1.0);

    std::vector<ImuSample> batch;
    ImuSample s;
    s.accel = -gravityWorld();
    s.t = 0.5; // BEFORE the initialization time
    batch.push_back(s);
    s.t = 1.005;
    batch.push_back(s);
    s.t = 1.002; // goes backwards
    batch.push_back(s);
    s.t = 1.010;
    batch.push_back(s);
    filter.propagate(batch);
    Pose p = filter.pose();
    EXPECT_TRUE(std::isfinite(p.translation.norm()));
    EXPECT_LT(p.translation.norm(), 0.01);
}

TEST(Robustness, DuplicateImuTimestampsDoNotPoisonTheFilter)
{
    // A duplicate stamp means dt = 0 for the second sample; an
    // unguarded propagation divides by it (bias-walk discretization,
    // midpoint rules) and the covariance goes NaN. The filter must
    // shrug the sample off instead.
    StereoRig rig = platformRig(Platform::Drone);
    Msckf filter(rig);
    filter.initialize(Pose::identity(), 0.0);

    std::vector<ImuSample> batch;
    ImuSample s;
    s.accel = -gravityWorld();
    for (int k = 1; k <= 10; ++k) {
        s.t = k * 0.005;
        batch.push_back(s);
        batch.push_back(s); // every stamp duplicated ...
        s.t += 1e-15;       // ... and once more a near-duplicate
        batch.push_back(s); //     (subnormal dt must also be skipped)
    }
    filter.propagate(batch);
    EXPECT_TRUE(std::isfinite(filter.pose().translation.norm()));
    EXPECT_TRUE(std::isfinite(filter.velocity().norm()));
    const MatX &cov = filter.covariance();
    for (int i = 0; i < cov.rows(); ++i)
        ASSERT_TRUE(std::isfinite(cov(i, i))) << "cov diag " << i;
    EXPECT_LT(filter.pose().translation.norm(), 0.01);
}

TEST(Robustness, DatasetImuBatchesAreStrictlyMonotonic)
{
    // Integration batches handed out by the dataset must be strictly
    // increasing in time — the contract sanitizeImuBatch() enforces
    // regardless of what the underlying stream contains.
    Dataset d(droneScene(SceneType::OutdoorUnknown, 20));
    for (int i = 1; i < d.frameCount(); ++i) {
        std::vector<ImuSample> batch = d.imuBetweenFrames(i);
        for (size_t k = 1; k < batch.size(); ++k)
            ASSERT_GT(batch[k].t, batch[k - 1].t)
                << "frame " << i << " sample " << k;
    }
}

TEST(Robustness, HugeImuGapReanchorsClock)
{
    StereoRig rig = platformRig(Platform::Drone);
    Msckf filter(rig);
    filter.initialize(Pose::identity(), 0.0);

    std::vector<ImuSample> batch;
    ImuSample s;
    s.accel = -gravityWorld();
    s.t = 10.0; // 10 s gap (sensor hiccup)
    batch.push_back(s);
    s.t = 10.005;
    batch.push_back(s);
    filter.propagate(batch);
    // The gap must not be integrated as one huge step.
    EXPECT_LT(filter.pose().translation.norm(), 0.01);
    EXPECT_LT(filter.velocity().norm(), 0.01);
}

TEST(Robustness, TruncatedMapFileIsRejected)
{
    Dataset d(droneScene(SceneType::IndoorKnown, 10));
    Vocabulary voc = buildVocabulary(d, 5);
    Map map = buildPriorMap(d, voc);
    const std::string path = "/tmp/edx_truncated.map";
    ASSERT_TRUE(map.save(path));

    // Truncate the file to half its size.
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size() / 2));
    out.close();

    EXPECT_FALSE(Map::load(path).has_value())
        << "truncated map must fail to load";
}

TEST(Robustness, GarbageMapFileIsRejected)
{
    const std::string path = "/tmp/edx_garbage.map";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 4096; ++i)
        out.put(static_cast<char>(i * 37));
    out.close();
    EXPECT_FALSE(Map::load(path).has_value());
}

TEST(Robustness, RegistrationRecoversAfterBlankout)
{
    // The tracker loses the frame during a blackout (e.g., lights off),
    // then relocalizes from the BoW database when imagery returns.
    Dataset d(droneScene(SceneType::IndoorKnown, 20));
    Vocabulary voc = buildVocabulary(d, 5);
    Map map = buildPriorMap(d, voc);
    LocalizerConfig cfg = configForScenario(SceneType::IndoorKnown);
    Localizer loc(cfg, d.rig(), &voc, &map);
    loc.initialize(d.truthAt(0), 0.0, d.trajectory().velocityAt(0.0));

    ImageU8 blank(d.rig().cam.width, d.rig().cam.height, 0);
    int ok_after = 0;
    for (int i = 0; i < d.frameCount(); ++i) {
        DatasetFrame f = d.frame(i);
        FrameInput in = inputFor(d, f, i);
        if (i >= 5 && i < 9) { // 4-frame blackout
            in.left = blank;
            in.right = blank;
        }
        LocalizationResult r = loc.processFrame(in);
        if (i >= 12 && r.ok)
            ++ok_after;
    }
    EXPECT_GT(ok_after, 4) << "tracker never recovered after blackout";
}

TEST(Robustness, SlamToleratesMissingVocabulary)
{
    // Without a vocabulary there is no loop closure, but mapping and
    // localization must still work (drift simply grows).
    Dataset d(droneScene(SceneType::IndoorUnknown, 16));
    LocalizerConfig cfg = configForScenario(SceneType::IndoorUnknown);
    Localizer loc(cfg, d.rig(), /*vocabulary=*/nullptr, nullptr);
    loc.initialize(d.truthAt(0), 0.0, d.trajectory().velocityAt(0.0));
    for (int i = 0; i < d.frameCount(); ++i) {
        DatasetFrame f = d.frame(i);
        LocalizationResult r = loc.processFrame(inputFor(d, f, i));
        EXPECT_TRUE(std::isfinite(r.pose.translation.norm()));
    }
    EXPECT_GT(loc.currentMap()->pointCount(), 50);
}

} // namespace
} // namespace edx
