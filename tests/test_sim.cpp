/**
 * @file
 * Unit tests for the simulation substrate: worlds, trajectories, the
 * stereo renderer, and the full dataset generator that replaces the
 * paper's KITTI/EuRoC/in-house logs.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "sim/dataset.hpp"
#include "sim/renderer.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"

namespace edx {
namespace {

TEST(World, IndoorGenerationIsDeterministic)
{
    WorldConfig cfg;
    cfg.seed = 99;
    World a = World::generateIndoor(cfg);
    World b = World::generateIndoor(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.landmarks()[i].texture_id, b.landmarks()[i].texture_id);
        EXPECT_NEAR(
            (a.landmarks()[i].position - b.landmarks()[i].position).norm(),
            0.0, 1e-15);
    }
}

TEST(World, DifferentSeedsGiveDifferentWorlds)
{
    WorldConfig a_cfg, b_cfg;
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    World a = World::generateIndoor(a_cfg);
    World b = World::generateIndoor(b_cfg);
    ASSERT_EQ(a.size(), b.size());
    bool any_differs = false;
    for (size_t i = 0; i < a.size() && !any_differs; ++i)
        any_differs =
            (a.landmarks()[i].position - b.landmarks()[i].position).norm() >
            1e-9;
    EXPECT_TRUE(any_differs);
}

TEST(World, IndoorLandmarksStayInsideRoom)
{
    WorldConfig cfg;
    cfg.room_half_extent = 10.0;
    World w = World::generateIndoor(cfg);
    ASSERT_EQ(w.size(), static_cast<size_t>(cfg.landmark_count));
    for (const Landmark &l : w.landmarks()) {
        EXPECT_LE(std::abs(l.position[0]), cfg.room_half_extent + 1e-9);
        EXPECT_LE(std::abs(l.position[1]), cfg.room_half_extent + 1e-9);
        EXPECT_GE(l.position[2], 0.0);
        EXPECT_GE(l.brightness, 0);
        EXPECT_LE(l.brightness, 255);
    }
}

TEST(World, OutdoorLandmarksSurroundTheLoop)
{
    WorldConfig cfg;
    cfg.loop_radius = 40.0;
    World w = World::generateOutdoor(cfg);
    int near_loop = 0;
    for (const Landmark &l : w.landmarks()) {
        double r = std::hypot(l.position[0], l.position[1]);
        if (r > 0.3 * cfg.loop_radius && r < 3.0 * cfg.loop_radius)
            ++near_loop;
    }
    // The bulk of the landmark mass lives in the annulus around the loop.
    EXPECT_GT(near_loop, static_cast<int>(w.size()) / 2);
}

TEST(Trajectory, PositionIsSmoothAndPeriodic)
{
    Trajectory traj = Trajectory::car(30.0, 60.0);
    Vec3 start = traj.positionAt(0.0);
    Vec3 lap = traj.positionAt(60.0);
    EXPECT_NEAR((start - lap).norm(), 0.0, 1e-6);

    // No teleporting: adjacent samples are close.
    for (double t = 0.0; t < 60.0; t += 0.05) {
        Vec3 a = traj.positionAt(t);
        Vec3 b = traj.positionAt(t + 0.05);
        EXPECT_LT((a - b).norm(), 1.0);
    }
}

TEST(Trajectory, VelocityMatchesFiniteDifference)
{
    Trajectory traj = Trajectory::drone(8.0, 40.0);
    const double h = 1e-5;
    for (double t = 0.3; t < 39.0; t += 2.7) {
        Vec3 num = (traj.positionAt(t + h) - traj.positionAt(t - h)) /
                   (2.0 * h);
        Vec3 v = traj.velocityAt(t);
        EXPECT_NEAR((num - v).norm(), 0.0, 1e-3)
            << "velocity mismatch at t=" << t;
    }
}

TEST(Trajectory, ImuTruthIntegratesBackToTrajectory)
{
    // Strapdown-integrate the analytic IMU truth and verify the result
    // tracks the analytic pose. This is the property the MSCKF relies on.
    Trajectory traj = Trajectory::drone(8.0, 40.0);
    const double dt = 1e-3;

    Pose pose = traj.poseAt(0.0);
    Vec3 v = traj.velocityAt(0.0);
    Quat q = pose.rotation;
    Vec3 p = pose.translation;
    const Vec3 g = gravityWorld();

    for (double t = 0.0; t < 2.0; t += dt) {
        ImuSample s = traj.imuTruthAt(t + 0.5 * dt); // midpoint
        Vec3 a_world = q.rotate(s.accel) + g;
        q = (q * Quat::exp(s.gyro * dt)).normalized();
        p += v * dt + a_world * (0.5 * dt * dt);
        v += a_world * dt;
    }
    Pose truth = traj.poseAt(2.0);
    EXPECT_LT((p - truth.translation).norm(), 0.02)
        << "integrated position drifted";
    EXPECT_LT(q.angularDistance(truth.rotation), 0.01)
        << "integrated orientation drifted";
}

TEST(Trajectory, BodyXAxisAlignsWithVelocity)
{
    Trajectory traj = Trajectory::car(30.0, 60.0);
    for (double t = 1.0; t < 50.0; t += 7.3) {
        Pose pose = traj.poseAt(t);
        Vec3 fwd = pose.rotation.rotate(Vec3{1.0, 0.0, 0.0});
        Vec3 v = traj.velocityAt(t).normalized();
        EXPECT_GT(fwd.dot(v), 0.95) << "heading not along velocity at " << t;
    }
}

TEST(Renderer, LandmarkInViewProducesTexture)
{
    // A world with a single landmark straight ahead must yield brighter
    // or darker pixels than the background near its projection.
    WorldConfig wcfg;
    wcfg.landmark_count = 1;
    World world = World::generateIndoor(wcfg);

    StereoRig rig = platformRig(Platform::Drone);
    StereoRenderer renderer(rig, RenderConfig{}, /*seed=*/3);

    // Place the body so the landmark is ~4m in front along +x.
    const Landmark &lm = world.landmarks()[0];
    Pose pose(Quat::identity(), lm.position - Vec3{4.0, 0.0, 0.0});
    StereoFrame f = renderer.render(world, pose, 0);
    ASSERT_EQ(f.left.width(), rig.cam.width);
    ASSERT_EQ(f.left.height(), rig.cam.height);

    // Contrast check: the frame is not a constant image.
    int mn = 255, mx = 0;
    for (int y = 0; y < f.left.height(); ++y) {
        for (int x = 0; x < f.left.width(); ++x) {
            int v = f.left.at(x, y);
            mn = std::min(mn, v);
            mx = std::max(mx, v);
        }
    }
    EXPECT_GT(mx - mn, 30) << "rendered frame has no texture contrast";
}

TEST(Renderer, RenderingIsDeterministic)
{
    WorldConfig wcfg;
    World world = World::generateIndoor(wcfg);
    StereoRig rig = platformRig(Platform::Drone);
    StereoRenderer renderer(rig, RenderConfig{}, /*seed=*/4);
    Pose pose(Quat::identity(), Vec3{0.0, 0.0, 1.2});
    StereoFrame a = renderer.render(world, pose, 7);
    StereoFrame b = renderer.render(world, pose, 7);
    for (int y = 0; y < a.left.height(); y += 13)
        for (int x = 0; x < a.left.width(); x += 13)
            ASSERT_EQ(a.left.at(x, y), b.left.at(x, y));
}

DatasetConfig
smallDrone(SceneType scene)
{
    DatasetConfig cfg;
    cfg.scene = scene;
    cfg.platform = Platform::Drone;
    cfg.frame_count = 20;
    cfg.fps = 10.0;
    cfg.seed = 5;
    return cfg;
}

TEST(Dataset, FramesAreDeterministicAcrossInstances)
{
    Dataset a(smallDrone(SceneType::IndoorUnknown));
    Dataset b(smallDrone(SceneType::IndoorUnknown));
    DatasetFrame fa = a.frame(3);
    DatasetFrame fb = b.frame(3);
    ASSERT_EQ(fa.stereo.left.width(), fb.stereo.left.width());
    for (int y = 0; y < fa.stereo.left.height(); y += 7)
        for (int x = 0; x < fa.stereo.left.width(); x += 7)
            ASSERT_EQ(fa.stereo.left.at(x, y), fb.stereo.left.at(x, y));
    EXPECT_NEAR((fa.truth.translation - fb.truth.translation).norm(), 0.0,
                1e-15);
}

TEST(Dataset, TruthMatchesTrajectory)
{
    Dataset d(smallDrone(SceneType::IndoorUnknown));
    for (int i = 0; i < d.frameCount(); i += 3) {
        Pose truth = d.truthAt(i);
        Pose traj = d.trajectory().poseAt(i / d.config().fps);
        EXPECT_NEAR((truth.translation - traj.translation).norm(), 0.0,
                    1e-12);
    }
}

TEST(Dataset, ImuBatchesCoverInterFrameIntervals)
{
    Dataset d(smallDrone(SceneType::IndoorUnknown));
    double period = d.framePeriod();
    for (int i = 1; i < d.frameCount(); ++i) {
        auto batch = d.imuBetweenFrames(i);
        ASSERT_FALSE(batch.empty()) << "no IMU between frames at " << i;
        double t0 = (i - 1) * period;
        double t1 = i * period;
        for (const ImuSample &s : batch) {
            EXPECT_GT(s.t, t0 - 1e-9);
            EXPECT_LE(s.t, t1 + 1e-9);
        }
        // Roughly imu_rate / fps samples per interval.
        double expected = d.config().imu_rate_hz / d.config().fps;
        EXPECT_NEAR(static_cast<double>(batch.size()), expected,
                    expected * 0.5);
    }
    EXPECT_TRUE(d.imuBetweenFrames(0).empty());
}

TEST(Dataset, IndoorScenesHaveNoGps)
{
    Dataset d(smallDrone(SceneType::IndoorUnknown));
    for (int i = 0; i < d.frameCount(); ++i)
        EXPECT_FALSE(d.gpsAtFrame(i).valid);
}

TEST(Dataset, OutdoorScenesProvideGpsFixes)
{
    Dataset d(smallDrone(SceneType::OutdoorUnknown));
    int valid = 0;
    for (int i = 0; i < d.frameCount(); ++i)
        if (d.gpsAtFrame(i).valid)
            ++valid;
    EXPECT_GT(valid, d.frameCount() / 2);
}

TEST(Dataset, GpsFixesAreNearTruth)
{
    Dataset d(smallDrone(SceneType::OutdoorUnknown));
    for (int i = 0; i < d.frameCount(); ++i) {
        GpsSample s = d.gpsAtFrame(i);
        if (!s.valid)
            continue;
        // A fix is at most multipath-glitch distance from the truth at
        // its own timestamp.
        Pose truth = d.trajectory().poseAt(s.t);
        EXPECT_LT((s.position - truth.translation).norm(), 15.0);
    }
}

TEST(Dataset, PlatformRigsMatchPaperResolutions)
{
    StereoRig car = platformRig(Platform::Car);
    StereoRig drone = platformRig(Platform::Drone);
    EXPECT_EQ(car.cam.width, 1280);
    EXPECT_EQ(car.cam.height, 720);
    EXPECT_EQ(drone.cam.width, 640);
    EXPECT_EQ(drone.cam.height, 480);
    EXPECT_GT(car.baseline, 0.0);
    EXPECT_GT(drone.baseline, 0.0);
}

TEST(Dataset, SceneTraitsDriveSensorAvailability)
{
    for (SceneType scene :
         {SceneType::IndoorUnknown, SceneType::IndoorKnown,
          SceneType::OutdoorUnknown, SceneType::OutdoorKnown}) {
        Dataset d(smallDrone(scene));
        ScenarioTraits traits = d.traits();
        bool any_gps = false;
        for (int i = 0; i < d.frameCount(); ++i)
            any_gps = any_gps || d.gpsAtFrame(i).valid;
        EXPECT_EQ(any_gps, traits.gps_available)
            << "scene " << sceneName(scene);
    }
}

} // namespace
} // namespace edx
