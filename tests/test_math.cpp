/**
 * @file
 * Unit tests for the edx_math substrate: fixed/dynamic linear algebra,
 * decompositions, quaternions, statistics, and regression.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/blas.hpp"
#include "math/decomp.hpp"
#include "math/mat.hpp"
#include "math/matx.hpp"
#include "math/quat.hpp"
#include "math/regression.hpp"
#include "math/rng.hpp"
#include "math/cpu_features.hpp"
#include "math/se3.hpp"
#include "math/stats.hpp"
#include "math/vec.hpp"

namespace edx {
namespace {

/**
 * Runs @p fn once per SIMD tier available at runtime (SSE2 always;
 * AVX2 when the host and build support it), restoring the startup tier
 * afterwards. The golden sweeps below run under every tier so each
 * per-tier kernel faces the same exactness contract — on an SSE2-only
 * host the loop degenerates to the baseline tier. Tier forcing from
 * the outside works too: under EDX_SIMD_LEVEL=sse2 the detected tier
 * is still the host's, so this loop intentionally uses the *startup*
 * tier as its ceiling to honor the override.
 */
template <typename Fn>
void
forEachSimdTier(Fn &&fn)
{
    const SimdTier startup = activeSimdTier();
    for (int t = 0; t <= static_cast<int>(startup); ++t) {
        const SimdTier tier = static_cast<SimdTier>(t);
        setSimdTier(tier);
        testing::ScopedTrace trace(__FILE__, __LINE__,
                                   simdTierName(tier));
        fn();
    }
    setSimdTier(startup);
}

TEST(Vec, BasicArithmetic)
{
    Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_DOUBLE_EQ((a + b)[0], 5.0);
    EXPECT_DOUBLE_EQ((a - b)[2], -3.0);
    EXPECT_DOUBLE_EQ((a * 2.0)[1], 4.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
    EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
}

TEST(Vec, CrossProductIsPerpendicular)
{
    Vec3 a{1, 2, 3}, b{-2, 0.5, 4};
    Vec3 c = cross(a, b);
    EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
    EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec, CrossMatchesSkew)
{
    Vec3 a{0.3, -1.2, 2.0}, b{5, 6, 7};
    Vec3 c1 = cross(a, b);
    Vec3 c2 = skew(a) * b;
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(c1[i], c2[i], 1e-12);
}

TEST(Vec, NormalizedHasUnitNorm)
{
    EXPECT_NEAR((Vec3{10, -3, 2}).normalized().norm(), 1.0, 1e-12);
}

TEST(Vec, UnitAndConstant)
{
    EXPECT_DOUBLE_EQ(Vec4::unit(2)[2], 1.0);
    EXPECT_DOUBLE_EQ(Vec4::unit(2)[0], 0.0);
    EXPECT_DOUBLE_EQ(Vec3::constant(7.0)[1], 7.0);
}

TEST(Mat, IdentityMultiplication)
{
    Mat3 m{1, 2, 3, 4, 5, 6, 7, 8, 10};
    Mat3 r = m * Mat3::identity();
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(r(i, j), m(i, j));
}

TEST(Mat, Inverse3x3)
{
    Mat3 m{2, 0, 1, 0, 3, -1, 1, 1, 4};
    Mat3 mi = inverse(m);
    Mat3 p = m * mi;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(p(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(Mat, Inverse2x2)
{
    Mat2 m{3, 1, 2, 5};
    Mat2 p = m * inverse(m);
    EXPECT_NEAR(p(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(p(0, 1), 0.0, 1e-12);
    EXPECT_NEAR(p(1, 1), 1.0, 1e-12);
}

TEST(Mat, TransposeRoundTrip)
{
    Mat34 m{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    Mat<4, 3> t = m.transpose();
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_DOUBLE_EQ(t(j, i), m(i, j));
}

TEST(Mat, OuterProduct)
{
    Vec3 a{1, 2, 3};
    Vec2 b{4, 5};
    Mat<3, 2> m = outer(a, b);
    EXPECT_DOUBLE_EQ(m(2, 1), 15.0);
    EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
}

TEST(Mat, DeterminantOfSingularIsZero)
{
    Mat3 m{1, 2, 3, 2, 4, 6, 1, 1, 1};
    EXPECT_NEAR(det(m), 0.0, 1e-12);
}

TEST(MatX, MultiplicationMatchesFixed)
{
    Mat3 a{1, 2, 3, 4, 5, 6, 7, 8, 9};
    Mat3 b{2, 0, 1, 1, 3, 2, 0, 1, 1};
    Mat3 cf = a * b;
    MatX ax(a), bx(b);
    MatX cx = ax * bx;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(cx(i, j), cf(i, j), 1e-12);
}

TEST(MatX, BlockRoundTrip)
{
    MatX m(5, 7);
    MatX b(2, 3);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 3; ++j)
            b(i, j) = i * 10 + j + 1;
    m.setBlock(2, 3, b);
    MatX g = m.block(2, 3, 2, 3);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(g(i, j), b(i, j));
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatX, GramMatchesExplicit)
{
    Rng rng(7);
    MatX a(6, 4);
    for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 4; ++j)
            a(i, j) = rng.gaussian();
    MatX g1 = gram(a);
    MatX g2 = a.transpose() * a;
    EXPECT_NEAR((g1 - g2).maxAbs(), 0.0, 1e-12);
}

TEST(MatX, MultiplyTransposedMatchesExplicit)
{
    Rng rng(8);
    MatX a(3, 5), b(4, 5);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 5; ++j)
            a(i, j) = rng.gaussian();
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 5; ++j)
            b(i, j) = rng.gaussian();
    MatX r1 = multiplyTransposed(a, b);
    MatX r2 = a * b.transpose();
    EXPECT_NEAR((r1 - r2).maxAbs(), 0.0, 1e-12);
}

TEST(MatX, ConservativeResizePreservesContent)
{
    MatX m(2, 2);
    m(0, 0) = 1;
    m(1, 1) = 2;
    m.conservativeResize(3, 3);
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(2, 2), 0.0);
    m.conservativeResize(1, 1);
    EXPECT_EQ(m.rows(), 1);
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(MatX, MakeSymmetric)
{
    MatX m(2, 2);
    m(0, 1) = 2.0;
    m(1, 0) = 4.0;
    m.makeSymmetric();
    EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

class SpdFixture : public ::testing::TestWithParam<int>
{
  protected:
    /** Builds a random SPD matrix of the parameterized size. */
    MatX
    randomSpd(int n, uint64_t seed)
    {
        Rng rng(seed);
        MatX a(n, n);
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j)
                a(i, j) = rng.gaussian();
        MatX s = gram(a);
        for (int i = 0; i < n; ++i)
            s(i, i) += n; // diagonally dominate for conditioning
        return s;
    }
};

TEST_P(SpdFixture, CholeskyReconstructs)
{
    const int n = GetParam();
    MatX s = randomSpd(n, 100 + n);
    Cholesky chol(s);
    ASSERT_TRUE(chol.ok());
    MatX l = chol.matrixL();
    MatX rec = multiplyTransposed(l, l);
    EXPECT_NEAR((rec - s).maxAbs(), 0.0, 1e-9 * n);
}

TEST_P(SpdFixture, CholeskySolveResidualIsSmall)
{
    const int n = GetParam();
    MatX s = randomSpd(n, 200 + n);
    Rng rng(300 + n);
    VecX b(n);
    for (int i = 0; i < n; ++i)
        b[i] = rng.gaussian();
    Cholesky chol(s);
    ASSERT_TRUE(chol.ok());
    VecX x = chol.solve(b);
    VecX r = s * x - b;
    EXPECT_LT(r.maxAbs(), 1e-8);
}

TEST_P(SpdFixture, LuSolveMatchesCholesky)
{
    const int n = GetParam();
    MatX s = randomSpd(n, 400 + n);
    Rng rng(500 + n);
    VecX b(n);
    for (int i = 0; i < n; ++i)
        b[i] = rng.gaussian();
    Cholesky chol(s);
    PartialPivLU lu(s);
    ASSERT_TRUE(chol.ok());
    ASSERT_TRUE(lu.ok());
    VecX x1 = chol.solve(b);
    VecX x2 = lu.solve(b);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdFixture,
                         ::testing::Values(1, 2, 3, 6, 10, 25, 60));

TEST(Decomp, CholeskyRejectsIndefinite)
{
    MatX m = MatX::identity(3);
    m(2, 2) = -1.0;
    Cholesky chol(m);
    EXPECT_FALSE(chol.ok());
}

TEST(Decomp, LuInverse)
{
    Rng rng(11);
    MatX a(8, 8);
    for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j)
            a(i, j) = rng.gaussian();
    for (int i = 0; i < 8; ++i)
        a(i, i) += 8.0;
    PartialPivLU lu(a);
    ASSERT_TRUE(lu.ok());
    MatX p = a * lu.inverse();
    EXPECT_NEAR((p - MatX::identity(8)).maxAbs(), 0.0, 1e-9);
}

TEST(Decomp, LuDeterminantMatchesFixed)
{
    Mat3 m{2, 0, 1, 0, 3, -1, 1, 1, 4};
    PartialPivLU lu{MatX(m)};
    EXPECT_NEAR(lu.determinant(), det(m), 1e-10);
}

TEST(Decomp, LuDetectsSingular)
{
    MatX m(3, 3);
    m(0, 0) = 1.0;
    m(1, 0) = 2.0; // rank 1
    PartialPivLU lu(m);
    EXPECT_FALSE(lu.ok());
}

TEST(Decomp, QrReconstructsLeastSquares)
{
    // Overdetermined system with known solution in the least-squares
    // sense: fit y = 2 + 3x exactly.
    MatX a(5, 2);
    VecX b(5);
    for (int i = 0; i < 5; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = i;
        b[i] = 2.0 + 3.0 * i;
    }
    HouseholderQR qr(a);
    VecX x = qr.solve(b);
    EXPECT_NEAR(x[0], 2.0, 1e-10);
    EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(Decomp, QrRPreservesNorms)
{
    // ||A e_j|| should match ||R e_j|| since Q is orthogonal.
    Rng rng(21);
    MatX a(10, 4);
    for (int i = 0; i < 10; ++i)
        for (int j = 0; j < 4; ++j)
            a(i, j) = rng.gaussian();
    HouseholderQR qr(a);
    const MatX &r = qr.matrixR();
    for (int j = 0; j < 4; ++j) {
        double na = 0.0, nr = 0.0;
        for (int i = 0; i < 10; ++i)
            na += a(i, j) * a(i, j);
        for (int i = 0; i < 4; ++i)
            nr += r(i, j) * r(i, j);
        EXPECT_NEAR(std::sqrt(na), std::sqrt(nr), 1e-9);
    }
}

TEST(Decomp, QrQtbPreservesNorm)
{
    Rng rng(22);
    MatX a(12, 5);
    for (int i = 0; i < 12; ++i)
        for (int j = 0; j < 5; ++j)
            a(i, j) = rng.gaussian();
    VecX b(12);
    for (int i = 0; i < 12; ++i)
        b[i] = rng.gaussian();
    HouseholderQR qr(a);
    EXPECT_NEAR(qr.qtb(b).norm(), b.norm(), 1e-9);
}

TEST(Decomp, QrRankDetection)
{
    MatX a(6, 3);
    Rng rng(23);
    for (int i = 0; i < 6; ++i) {
        a(i, 0) = rng.gaussian();
        a(i, 1) = 2.0 * a(i, 0); // dependent column
        a(i, 2) = rng.gaussian();
    }
    HouseholderQR qr(a);
    EXPECT_EQ(qr.rank(1e-8), 2);
}

TEST(Decomp, TriangularSolvers)
{
    MatX l(3, 3);
    l(0, 0) = 2;
    l(1, 0) = 1;
    l(1, 1) = 3;
    l(2, 0) = -1;
    l(2, 1) = 2;
    l(2, 2) = 4;
    VecX b{std::vector<double>{2, 5, 9}};
    VecX x = forwardSubstitute(l, b);
    VecX r = l * x - b;
    EXPECT_LT(r.maxAbs(), 1e-12);

    MatX u = l.transpose();
    VecX y = backwardSubstitute(u, b);
    VecX r2 = u * y - b;
    EXPECT_LT(r2.maxAbs(), 1e-12);
}

TEST(Decomp, SolveSpdFallsBackToLu)
{
    // Symmetric indefinite: Cholesky fails, LU succeeds.
    MatX m(2, 2);
    m(0, 0) = 0.0;
    m(0, 1) = 1.0;
    m(1, 0) = 1.0;
    m(1, 1) = 0.0;
    VecX b{std::vector<double>{3, 4}};
    auto x = solveSpd(m, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 4.0, 1e-12);
    EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Decomp, BlockDiagonalInverseMatchesDense)
{
    // Build [A B; B^T D] with diagonal A (8) and dense SPD D (6x6),
    // mirroring the marginalization Amm structure of Sec. VI-A.
    Rng rng(31);
    const int dn = 8, pn = 6, n = dn + pn;
    MatX m(n, n);
    for (int i = 0; i < dn; ++i)
        m(i, i) = 1.0 + rng.uniform();
    MatX b(dn, pn);
    for (int i = 0; i < dn; ++i)
        for (int j = 0; j < pn; ++j)
            b(i, j) = 0.1 * rng.gaussian();
    for (int i = 0; i < dn; ++i)
        for (int j = 0; j < pn; ++j) {
            m(i, dn + j) = b(i, j);
            m(dn + j, i) = b(i, j);
        }
    MatX d(pn, pn);
    for (int i = 0; i < pn; ++i)
        for (int j = 0; j < pn; ++j)
            d(i, j) = rng.gaussian();
    MatX dd = gram(d);
    for (int i = 0; i < pn; ++i)
        dd(i, i) += pn;
    m.setBlock(dn, dn, dd);

    auto inv = invertBlockDiagonalSymmetric(m, dn);
    ASSERT_TRUE(inv.has_value());
    MatX p = m * *inv;
    EXPECT_NEAR((p - MatX::identity(n)).maxAbs(), 0.0, 1e-8);

    PartialPivLU lu(m);
    ASSERT_TRUE(lu.ok());
    EXPECT_NEAR((*inv - lu.inverse()).maxAbs(), 0.0, 1e-8);
}

// --- Blocked/SIMD kernels vs retained references -----------------------
//
// The backend equivalence contract (mirroring the frontend kernels):
// gemm/gemv and the LU trailing update are *bit-exact* with their
// scalar references; dot-product kernels and the blocked
// factorizations are bounded. The sweeps below cover the
// MSCKF-realistic grid: state dims d in {15..200} and stacked rows up
// to several multiples of d.

MatX
randomMat(int r, int c, uint64_t seed)
{
    Rng rng(seed);
    MatX m(r, c);
    for (int i = 0; i < r; ++i)
        for (int j = 0; j < c; ++j)
            m(i, j) = rng.gaussian();
    return m;
}

TEST(Blas, GemmMatchesReferenceBitExact)
{
    forEachSimdTier([&] {
        // Sizes straddle the k-panel (64) and exercise all unroll tails.
        const int sizes[][3] = {{1, 1, 1},   {2, 3, 4},   {5, 7, 3},
                                {15, 15, 15}, {33, 64, 17}, {65, 130, 9},
                                {90, 200, 90}, {128, 64, 128}};
        for (const auto &s : sizes) {
            MatX a = randomMat(s[0], s[1], 1000 + s[0] + s[1]);
            MatX b = randomMat(s[1], s[2], 2000 + s[1] + s[2]);
            MatX c_opt, c_ref;
            gemmInto(a, b, c_opt);
            gemmReference(a, b, c_ref);
            for (int i = 0; i < c_opt.rows(); ++i)
                for (int j = 0; j < c_opt.cols(); ++j)
                    EXPECT_EQ(c_opt(i, j), c_ref(i, j))
                        << s[0] << "x" << s[1] << "x" << s[2] << " @ (" << i
                        << "," << j << ")";
        }
    });
}

TEST(Blas, GemmZeroDimensionsAreSafe)
{
    MatX a(0, 5), b(5, 3), c;
    gemmInto(a, b, c);
    EXPECT_EQ(c.rows(), 0);
    EXPECT_EQ(c.cols(), 3);

    MatX a2(4, 0), b2(0, 3);
    gemmInto(a2, b2, c);
    EXPECT_EQ(c.rows(), 4);
    EXPECT_EQ(c.cols(), 3);
    EXPECT_DOUBLE_EQ(c.maxAbs(), 0.0);

    MatX a3(3, 4), b3(4, 0);
    gemmInto(a3, b3, c);
    EXPECT_EQ(c.cols(), 0);
}

TEST(Blas, MultiplyTransposedMatchesReference)
{
    forEachSimdTier([&] {
        for (int m : {1, 2, 7, 30, 121}) {
            for (int k : {1, 3, 16, 95}) {
                MatX a = randomMat(m, k, 31 * m + k);
                MatX b = randomMat(m + 2, k, 57 * m + k);
                MatX opt, ref;
                multiplyTransposedInto(a, b, opt);
                multiplyTransposedReference(a, b, ref);
                EXPECT_NEAR((opt - ref).maxAbs(), 0.0, 1e-12 * k)
                    << m << "x" << k;
            }
        }
    });
}

TEST(Blas, SymmetricSandwichMatchesReferenceAndIsExactlySymmetric)
{
    forEachSimdTier([&] {
        for (int d : {15, 33, 75, 141, 200}) {
            const int rows = d / 2 + 2;
            MatX h = randomMat(rows, d, 400 + d);
            MatX p0 = randomMat(d, d, 500 + d);
            MatX p = gram(p0); // symmetric
            MatX hp_o, s_o, hp_r, s_r;
            symmetricSandwichInto(h, p, hp_o, s_o);
            symmetricSandwichReference(h, p, hp_r, s_r);
            const double scale = s_r.maxAbs();
            EXPECT_NEAR((hp_o - hp_r).maxAbs() / scale, 0.0, 1e-13) << d;
            EXPECT_NEAR((s_o - s_r).maxAbs() / scale, 0.0, 1e-13) << d;
            for (int i = 0; i < rows; ++i)
                for (int j = 0; j < i; ++j)
                    EXPECT_EQ(s_o(i, j), s_o(j, i)) << "asymmetric at " << i
                                                    << "," << j;
        }
    });
}

TEST(Blas, SymmetricDowndateMatchesReferenceAndIsExactlySymmetric)
{
    forEachSimdTier([&] {
        for (int d : {15, 45, 99, 200}) {
            const int rows = 2 * d / 3 + 1;
            MatX a = randomMat(rows, d, 600 + d);
            MatX b = randomMat(rows, d, 700 + d);
            // Make a^T b numerically symmetric enough for the contract by
            // using b = a scaled (the covariance-downdate shape); exact
            // symmetry of the optimized output must hold regardless.
            MatX c_o = MatX::identity(d) * 3.0;
            MatX c_r = c_o;
            symmetricDowndateInto(a, a, c_o);
            symmetricDowndateReference(a, a, c_r);
            const double scale = std::max(1.0, c_r.maxAbs());
            EXPECT_NEAR((c_o - c_r).maxAbs() / scale, 0.0, 1e-12) << d;
            for (int i = 0; i < d; ++i)
                for (int j = 0; j < i; ++j)
                    EXPECT_EQ(c_o(i, j), c_o(j, i));
            // Mixed A/B still matches the reference numerically.
            MatX c2_o = MatX::identity(d) * 3.0, c2_r = c2_o;
            symmetricDowndateInto(a, b, c2_o);
            symmetricDowndateReference(a, b, c2_r);
            for (int i = 0; i < d; ++i)
                for (int j = 0; j <= i; ++j)
                    EXPECT_NEAR(c2_o(i, j), c2_r(i, j),
                                1e-12 * std::max(1.0, c2_r.maxAbs()));
        }
    });
}

TEST(Blas, SyrkMatchesMultiplyTransposed)
{
    forEachSimdTier([&] {
        MatX a = randomMat(37, 80, 808);
        MatX s, ref;
        syrkInto(a, s);
        multiplyTransposedReference(a, a, ref);
        EXPECT_NEAR((s - ref).maxAbs(), 0.0, 1e-11);
    });
}

TEST(MatX, ResizeReusesCapacityAndZeroFills)
{
    MatX m(10, 10);
    m(3, 4) = 7.0;
    m.resize(4, 6);
    EXPECT_EQ(m.rows(), 4);
    EXPECT_EQ(m.cols(), 6);
    EXPECT_DOUBLE_EQ(m.maxAbs(), 0.0);
    EXPECT_GE(m.capacityBytes(), 100 * sizeof(double));
}

TEST(MatX, ConservativeResizeWiderAndNarrower)
{
    MatX m(3, 2);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 2; ++j)
            m(i, j) = 10.0 * i + j + 1;
    m.conservativeResize(4, 5); // wider + taller
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 2; ++j)
            EXPECT_DOUBLE_EQ(m(i, j), 10.0 * i + j + 1);
    for (int j = 2; j < 5; ++j)
        EXPECT_DOUBLE_EQ(m(1, j), 0.0);
    for (int j = 0; j < 5; ++j)
        EXPECT_DOUBLE_EQ(m(3, j), 0.0);

    m.conservativeResize(2, 1); // narrower + shorter
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 11.0);

    // Narrower but taller: stale storage must read as zero.
    MatX w(2, 6);
    for (int j = 0; j < 6; ++j)
        w(1, j) = 5.0 + j;
    w.conservativeResize(4, 3);
    EXPECT_DOUBLE_EQ(w(1, 0), 5.0);
    EXPECT_DOUBLE_EQ(w(1, 2), 7.0);
    for (int i = 2; i < 4; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(w(i, j), 0.0);
}

TEST(MatX, RemoveRowsAndColsDropsBand)
{
    const int n = 7, at = 2, cut = 3;
    MatX m = randomMat(n, n, 99);
    MatX expect(n - cut, n - cut);
    auto keep = [&](int i) { return i < at ? i : i + cut; };
    for (int i = 0; i < n - cut; ++i)
        for (int j = 0; j < n - cut; ++j)
            expect(i, j) = m(keep(i), keep(j));
    m.removeRowsAndCols(at, cut);
    ASSERT_EQ(m.rows(), n - cut);
    EXPECT_NEAR((m - expect).maxAbs(), 0.0, 0.0);
}

TEST(Decomp, BlockedCholeskyMatchesReferenceSweep)
{
    forEachSimdTier([&] {
        for (int d : {1, 2, 15, 31, 32, 33, 64, 100, 161, 200}) {
            Rng rng(3000 + d);
            MatX a = randomMat(d, d, 3000 + d);
            MatX s = gram(a);
            for (int i = 0; i < d; ++i)
                s(i, i) += d;
            Cholesky blocked(s);
            CholeskyReference ref(s);
            ASSERT_TRUE(blocked.ok()) << d;
            ASSERT_TRUE(ref.ok()) << d;
            const double scale = ref.matrixL().maxAbs();
            EXPECT_NEAR(
                (blocked.matrixL() - ref.matrixL()).maxAbs() / scale, 0.0,
                1e-12)
                << d;

            VecX b(d);
            for (int i = 0; i < d; ++i)
                b[i] = rng.gaussian();
            VecX xb = blocked.solve(b);
            VecX xr = ref.solve(b);
            for (int i = 0; i < d; ++i)
                EXPECT_NEAR(xb[i], xr[i], 1e-9) << d;
        }
    });
}

TEST(Decomp, BlockedCholeskyRejectsIndefiniteLikeReference)
{
    MatX m = MatX::identity(40);
    m(33, 33) = -1.0;
    EXPECT_FALSE(Cholesky(m).ok());
    EXPECT_FALSE(CholeskyReference(m).ok());
}

TEST(Decomp, CholeskyPsdRoundoffFallsBackToLu)
{
    // Positive semi-definite up to round-off: the trailing Cholesky
    // pivot comes out negative, Cholesky must reject, and solveSpd
    // must still solve via the LU fallback.
    const double eps = 1e-13;
    MatX m(2, 2);
    m(0, 0) = 1.0;
    m(0, 1) = 1.0;
    m(1, 0) = 1.0;
    m(1, 1) = 1.0 - eps; // Schur pivot is -eps
    EXPECT_FALSE(Cholesky(m).ok());
    VecX b{std::vector<double>{1.0, 2.0}};
    auto x = solveSpd(m, b);
    ASSERT_TRUE(x.has_value());
    // Analytic solution: x2 = -1/eps, x1 = 1 - x2.
    EXPECT_NEAR((*x)[1], -1.0 / eps, 1e-3 / eps);
    EXPECT_NEAR((*x)[0], 1.0 + 1.0 / eps, 1e-3 / eps);
}

TEST(Decomp, ZeroSizeMatricesAreSafe)
{
    MatX empty(0, 0);
    Cholesky chol(empty);
    EXPECT_TRUE(chol.ok());
    EXPECT_EQ(chol.solve(VecX(0)).size(), 0);

    PartialPivLU lu(empty);
    EXPECT_TRUE(lu.ok());
    EXPECT_EQ(lu.solve(MatX(0, 0)).rows(), 0);

    HouseholderQR qr(empty);
    EXPECT_EQ(qr.rank(), 0);
    EXPECT_EQ(qr.qtb(VecX(0)).size(), 0);
    MatX r_out;
    qr.extractRInto(r_out);
    EXPECT_EQ(r_out.rows(), 0);

    // Zero columns with nonzero rows (no track survives the gates).
    MatX tall(5, 0);
    HouseholderQR qr2(tall);
    VecX b(5, 1.0);
    EXPECT_EQ(qr2.qtb(b).size(), 5);
    EXPECT_EQ(qr2.solve(b).size(), 0);
}

TEST(Decomp, BlockedQrMatchesReferenceSweep)
{
    forEachSimdTier([&] {
        // MSCKF-realistic grid: d in {15..200}, rows in {2..6m} per the
        // stacked-Jacobian shapes (nullspace blocks are 2m-3 x d tall).
        const int shapes[][2] = {{2, 1},    {3, 3},    {15, 15},  {45, 15},
                                 {40, 33},  {120, 60}, {200, 100}, {260, 65},
                                 {400, 200}};
        for (const auto &sh : shapes) {
            const int rows = sh[0], cols = sh[1];
            MatX a = randomMat(rows, cols, 5000 + rows + cols);
            HouseholderQR blocked(a);
            HouseholderQRReference ref(a);
            const double scale = std::max(1.0, ref.matrixR().maxAbs());
            EXPECT_NEAR(
                (blocked.matrixR() - ref.matrixR()).maxAbs() / scale, 0.0,
                1e-11)
                << rows << "x" << cols;

            Rng rng(6000 + rows);
            VecX b(rows);
            for (int i = 0; i < rows; ++i)
                b[i] = rng.gaussian();
            VecX qtb_b = blocked.qtb(b);
            VecX qtb_r = ref.qtb(b);
            EXPECT_NEAR(qtb_b.norm(), b.norm(), 1e-9)
                << rows << "x" << cols; // orthogonality
            for (int i = 0; i < cols; ++i)
                EXPECT_NEAR(qtb_b[i], qtb_r[i], 1e-9 * scale)
                    << rows << "x" << cols << " row " << i;

            VecX xb = blocked.solve(b);
            VecX xr = ref.solve(b);
            for (int i = 0; i < cols; ++i)
                EXPECT_NEAR(xb[i], xr[i], 1e-7) << rows << "x" << cols;
        }
    });
}

TEST(Decomp, BlockedQrRankDeficient)
{
    // Two dependent column pairs across panel boundaries.
    const int rows = 80, cols = 40;
    MatX a = randomMat(rows, cols, 7777);
    for (int i = 0; i < rows; ++i) {
        a(i, 7) = 2.0 * a(i, 3);
        a(i, 36) = -1.5 * a(i, 20);
    }
    HouseholderQR qr(a);
    HouseholderQRReference ref(a);
    EXPECT_EQ(qr.rank(1e-8), cols - 2);
    EXPECT_EQ(ref.rank(1e-8), cols - 2);

    // The zero-component convention of the solver must hold on the
    // deficient system (no NaNs/Infs).
    VecX b(rows, 1.0);
    VecX x = qr.solve(b);
    for (int i = 0; i < cols; ++i)
        EXPECT_TRUE(std::isfinite(x[i]));
}

TEST(Decomp, QtbInPlaceMatrixMatchesColumnwiseApplication)
{
    forEachSimdTier([&] {
        MatX a = randomMat(60, 24, 888);
        HouseholderQR qr(a);
        MatX b = randomMat(60, 9, 889);
        MatX out = qr.qtb(b);
        // Column-by-column through the vector path must agree.
        for (int c = 0; c < b.cols(); ++c) {
            VecX col(b.rows());
            for (int r = 0; r < b.rows(); ++r)
                col[r] = b(r, c);
            VecX ref = qr.qtb(col);
            for (int r = 0; r < b.rows(); ++r)
                EXPECT_EQ(out(r, c), ref[r]) << "col " << c << " row " << r;
        }
    });
}

TEST(Decomp, ExtractRMatchesMatrixR)
{
    MatX a = randomMat(50, 20, 4321);
    HouseholderQR qr(a);
    MatX r_out;
    qr.extractRInto(r_out);
    EXPECT_NEAR((r_out - qr.matrixR()).maxAbs(), 0.0, 0.0);
}

TEST(Decomp, SolveUpperIntoMatchesSolve)
{
    MatX a = randomMat(30, 12, 11);
    HouseholderQR qr(a);
    Rng rng(12);
    VecX b(30);
    for (int i = 0; i < 30; ++i)
        b[i] = rng.gaussian();
    VecX y = qr.qtb(b);
    VecX x1;
    qr.solveUpperInto(y, x1);
    VecX x2 = qr.solve(b);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(x1[i], x2[i]);
}

TEST(Decomp, ComputeReusesAcrossShapes)
{
    // One solver object across growing/shrinking problems (the
    // workspace usage pattern of the backend).
    Cholesky chol;
    PartialPivLU lu;
    HouseholderQR qr;
    for (int n : {20, 50, 8, 64, 30}) {
        MatX a = randomMat(n, n, 900 + n);
        MatX s = gram(a);
        for (int i = 0; i < n; ++i)
            s(i, i) += n;
        ASSERT_TRUE(chol.compute(s));
        MatX rec = multiplyTransposed(chol.matrixL(), chol.matrixL());
        EXPECT_NEAR((rec - s).maxAbs(), 0.0, 1e-8 * n);

        ASSERT_TRUE(lu.compute(s));
        VecX b(n, 1.0);
        VecX x = lu.solve(b);
        EXPECT_LT((s * x - b).maxAbs(), 1e-7);

        MatX t = randomMat(2 * n, n, 950 + n);
        qr.compute(t);
        VecX b2(2 * n, 0.5);
        EXPECT_NEAR(qr.qtb(b2).norm(), b2.norm(), 1e-9);
    }
}

TEST(Decomp, SubstituteIntoMatchesVectorSolvers)
{
    forEachSimdTier([&] {
        const int n = 40, nc = 7;
        MatX a = randomMat(n, n, 77);
        MatX l(n, n), u(n, n);
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j) {
                if (j <= i)
                    l(i, j) = a(i, j) + (i == j ? n : 0.0);
                if (j >= i)
                    u(i, j) = a(i, j) + (i == j ? n : 0.0);
            }
        MatX b = randomMat(n, nc, 78);
        MatX xf, xb;
        forwardSubstituteInto(l, b, xf);
        backwardSubstituteInto(u, b, xb);
        for (int c = 0; c < nc; ++c) {
            VecX col(n);
            for (int r = 0; r < n; ++r)
                col[r] = b(r, c);
            VecX xfc = forwardSubstitute(l, col);
            VecX xbc = backwardSubstitute(u, col);
            for (int r = 0; r < n; ++r) {
                EXPECT_EQ(xf(r, c), xfc[r]) << "fwd " << r << "," << c;
                EXPECT_EQ(xb(r, c), xbc[r]) << "bwd " << r << "," << c;
            }
        }
    });
}

TEST(Quat, IdentityRotatesNothing)
{
    Vec3 v{1, 2, 3};
    Vec3 r = Quat::identity().rotate(v);
    for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(r[i], v[i]);
}

TEST(Quat, AxisAngleKnownRotation)
{
    // 90 degrees about z maps x to y.
    Quat q = Quat::fromAxisAngle(Vec3{0, 0, 1}, M_PI / 2);
    Vec3 r = q.rotate(Vec3{1, 0, 0});
    EXPECT_NEAR(r[0], 0.0, 1e-12);
    EXPECT_NEAR(r[1], 1.0, 1e-12);
    EXPECT_NEAR(r[2], 0.0, 1e-12);
}

TEST(Quat, RotationMatrixAgrees)
{
    Quat q = Quat::fromYawPitchRoll(0.3, -0.2, 0.7);
    Vec3 v{0.5, -1.5, 2.0};
    Vec3 r1 = q.rotate(v);
    Vec3 r2 = q.toRotationMatrix() * v;
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(r1[i], r2[i], 1e-12);
}

TEST(Quat, MatrixRoundTrip)
{
    Quat q = Quat::fromYawPitchRoll(1.1, 0.4, -0.9);
    Quat q2 = Quat::fromRotationMatrix(q.toRotationMatrix());
    EXPECT_NEAR(q.angularDistance(q2), 0.0, 1e-10);
}

TEST(Quat, ExpLogRoundTrip)
{
    Vec3 phi{0.2, -0.5, 0.9};
    Vec3 back = Quat::exp(phi).log();
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(back[i], phi[i], 1e-10);
}

TEST(Quat, ExpLogSmallAngle)
{
    Vec3 phi{1e-14, -2e-14, 1e-14};
    Vec3 back = Quat::exp(phi).log();
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(back[i], phi[i], 1e-15);
}

TEST(Quat, CompositionMatchesMatrixProduct)
{
    Quat a = Quat::fromYawPitchRoll(0.1, 0.2, 0.3);
    Quat b = Quat::fromYawPitchRoll(-0.4, 0.5, -0.6);
    Mat3 m1 = (a * b).toRotationMatrix();
    Mat3 m2 = a.toRotationMatrix() * b.toRotationMatrix();
    EXPECT_NEAR((MatX(m1) - MatX(m2)).maxAbs(), 0.0, 1e-12);
}

TEST(Quat, IntegrationMatchesAxisAngle)
{
    Vec3 omega{0.0, 0.0, 0.5}; // rad/s about z
    Quat q = Quat::identity().integrated(omega, 2.0);
    Quat expect = Quat::fromAxisAngle(Vec3{0, 0, 1}, 1.0);
    EXPECT_NEAR(q.angularDistance(expect), 0.0, 1e-12);
}

TEST(Quat, RightJacobianSmallAngleLimit)
{
    Mat3 j = so3RightJacobian(Vec3{1e-12, 0, 0});
    EXPECT_NEAR((MatX(j) - MatX(Mat3::identity())).maxAbs(), 0.0, 1e-9);
}

TEST(Quat, RightJacobianFiniteDifference)
{
    // exp(phi + dphi) ~ exp(phi) * exp(J_r(phi) dphi)
    Vec3 phi{0.3, -0.2, 0.5};
    Vec3 dphi{1e-6, 2e-6, -1e-6};
    Quat lhs = Quat::exp(phi + dphi);
    Quat rhs = Quat::exp(phi) * Quat::exp(so3RightJacobian(phi) * dphi);
    EXPECT_NEAR(lhs.angularDistance(rhs), 0.0, 1e-10);
}

TEST(Pose, ApplyAndInverse)
{
    Pose p(Quat::fromYawPitchRoll(0.5, 0.1, -0.3), Vec3{1, 2, 3});
    Vec3 x{4, 5, 6};
    Vec3 y = p.apply(x);
    Vec3 back = p.inverse().apply(y);
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(back[i], x[i], 1e-12);
}

TEST(Pose, CompositionIsAssociativeOnPoints)
{
    Pose a(Quat::fromYawPitchRoll(0.2, 0, 0), Vec3{1, 0, 0});
    Pose b(Quat::fromYawPitchRoll(0, 0.3, 0), Vec3{0, 2, 0});
    Vec3 x{1, 1, 1};
    Vec3 y1 = (a * b).apply(x);
    Vec3 y2 = a.apply(b.apply(x));
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Stats, MeanStdDev)
{
    std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
    EXPECT_DOUBLE_EQ(rsdPercent(xs), 40.0);
}

TEST(Stats, Percentiles)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, RmseAndR2)
{
    std::vector<double> obs{1, 2, 3, 4};
    std::vector<double> exact = obs;
    EXPECT_DOUBLE_EQ(rmse(obs, exact), 0.0);
    EXPECT_DOUBLE_EQ(rSquared(obs, exact), 1.0);
    std::vector<double> worst{2.5, 2.5, 2.5, 2.5}; // predicting the mean
    EXPECT_NEAR(rSquared(obs, worst), 0.0, 1e-12);
}

TEST(Stats, SummaryConsistent)
{
    std::vector<double> xs{10, 20, 30};
    Summary s = summarize(xs);
    EXPECT_DOUBLE_EQ(s.mean, 20.0);
    EXPECT_DOUBLE_EQ(s.min, 10.0);
    EXPECT_DOUBLE_EQ(s.max, 30.0);
    EXPECT_EQ(s.count, 3);
}

TEST(Stats, EmptyInputsAreSafe)
{
    std::vector<double> e;
    EXPECT_DOUBLE_EQ(mean(e), 0.0);
    EXPECT_DOUBLE_EQ(stddev(e), 0.0);
    EXPECT_DOUBLE_EQ(percentile(e, 50), 0.0);
    EXPECT_DOUBLE_EQ(minValue(e), 0.0);
    EXPECT_DOUBLE_EQ(maxValue(e), 0.0);
}

TEST(Regression, ExactLinearFit)
{
    std::vector<double> xs{0, 1, 2, 3, 4};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(1.5 + 2.5 * x);
    PolynomialModel m = PolynomialModel::fit(xs, ys, 1);
    EXPECT_NEAR(m.coefficients()[0], 1.5, 1e-10);
    EXPECT_NEAR(m.coefficients()[1], 2.5, 1e-10);
    EXPECT_NEAR(m.r2(xs, ys), 1.0, 1e-12);
}

TEST(Regression, ExactQuadraticFit)
{
    std::vector<double> xs{-2, -1, 0, 1, 2, 3};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2.0 - x + 0.5 * x * x);
    PolynomialModel m = PolynomialModel::fit(xs, ys, 2);
    EXPECT_NEAR(m.predict(5.0), 2.0 - 5.0 + 0.5 * 25.0, 1e-9);
    EXPECT_NEAR(m.r2(xs, ys), 1.0, 1e-12);
}

TEST(Regression, NoisyFitHasHighR2)
{
    Rng rng(77);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        double x = rng.uniform(0, 100);
        xs.push_back(x);
        ys.push_back(3.0 + 0.2 * x + rng.gaussian(0, 0.5));
    }
    PolynomialModel m = PolynomialModel::fit(xs, ys, 1);
    EXPECT_GT(m.r2(xs, ys), 0.98);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, UniformRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(2);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i)
        xs.push_back(rng.gaussian());
    EXPECT_NEAR(mean(xs), 0.0, 0.02);
    EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(3);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(1, 6);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 6);
        hit_lo |= (v == 1);
        hit_hi |= (v == 6);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

} // namespace
} // namespace edx
