/**
 * @file
 * Tests for the live shared-map service (map/map_service.hpp) and the
 * Map-level machinery it leans on (eviction under a budget, the
 * spatial tile index):
 *
 *  - merge determinism: the published epoch is a pure function of the
 *    contribution set, asserted by byte-identical serialized maps
 *    across shuffled arrival interleavings and pass boundaries;
 *  - cross-session loop detection on overlapping trajectories;
 *  - eviction invariants (budget respected, id == index restored,
 *    landmark references remapped, determinism);
 *  - concurrent contribute/publish/read (the TSan CI job runs this);
 *  - solve-path neutrality: an attached SLAM session's pose stream is
 *    bit-identical to a detached one (contribution is read-only);
 *  - pool integration: counters flow through PoolStats and the
 *    epoch-acquire latency stays bounded while merges are in flight —
 *    the never-block contract frame-rate solves rely on.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "map/map_io.hpp"
#include "map/map_service.hpp"
#include "runtime/localizer_pool.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace {

DatasetConfig
scene(SceneType type, int frames, uint64_t seed = 31)
{
    DatasetConfig cfg;
    cfg.scene = type;
    cfg.platform = Platform::Drone;
    cfg.frame_count = frames;
    cfg.fps = 10.0;
    cfg.seed = seed;
    return cfg;
}

/** Dataset + vocabulary + prior map, built once for the whole suite. */
class MapServiceFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        dataset_ = new Dataset(scene(SceneType::IndoorKnown, 24));
        voc_ = new Vocabulary(buildVocabulary(*dataset_, 6));
        map_ = new Map(buildPriorMap(*dataset_, *voc_));
    }

    static void
    TearDownTestSuite()
    {
        delete map_;
        delete voc_;
        delete dataset_;
        map_ = nullptr;
        voc_ = nullptr;
        dataset_ = nullptr;
    }

    /**
     * Rebuilds a slice [first, last) of the prior map's keyframes as a
     * session contribution: keyframe ids and landmark references stay
     * in the contributor's own (= the prior map's) id space, exactly
     * what a live session hands the service.
     */
    static MapContribution
    sliceContribution(int first, int last)
    {
        MapContribution c;
        std::vector<bool> taken(map_->points().size(), false);
        for (int k = first; k < last && k < map_->keyframeCount(); ++k) {
            const Keyframe &kf = map_->keyframes()[k];
            c.keyframes.push_back(kf);
            for (int lm : kf.map_point_ids) {
                if (lm < 0 || taken[lm])
                    continue;
                taken[lm] = true;
                c.points.emplace_back(lm, map_->points()[lm]);
            }
        }
        return c;
    }

    static Dataset *dataset_;
    static Vocabulary *voc_;
    static Map *map_;
};

Dataset *MapServiceFixture::dataset_ = nullptr;
Vocabulary *MapServiceFixture::voc_ = nullptr;
Map *MapServiceFixture::map_ = nullptr;

std::vector<uint8_t>
epochBytes(const MapService &svc)
{
    auto epoch = svc.currentEpoch();
    return saveMapToBuffer(epoch->map);
}

// --- merge determinism ----------------------------------------------------

TEST_F(MapServiceFixture, MergeIsArrivalOrderIndependent)
{
    const int half = map_->keyframeCount() / 2;
    ASSERT_GE(half, 2);

    // Service 1: session A fully, then session B, one batch each.
    MapService s1(voc_, dataset_->rig());
    const int a1 = s1.registerSession();
    const int b1 = s1.registerSession();
    s1.contribute(a1, sliceContribution(0, half));
    s1.contribute(b1, sliceContribution(half, map_->keyframeCount()));
    s1.flush();

    // Service 2: same contribution *set*, interleaved in small batches
    // with B arriving first — different arrival order AND different
    // merge-pass boundaries.
    MapService s2(voc_, dataset_->rig());
    const int a2 = s2.registerSession();
    const int b2 = s2.registerSession();
    s2.contribute(b2, sliceContribution(half, half + 1));
    s2.contribute(a2, sliceContribution(0, 1));
    s2.flush();
    s2.contribute(b2, sliceContribution(half + 1, map_->keyframeCount()));
    s2.flush();
    s2.contribute(a2, sliceContribution(1, half));
    s2.flush();

    const auto bytes1 = epochBytes(s1);
    const auto bytes2 = epochBytes(s2);
    ASSERT_EQ(bytes1.size(), bytes2.size());
    EXPECT_EQ(0,
              std::memcmp(bytes1.data(), bytes2.data(), bytes1.size()));

    auto e1 = s1.currentEpoch();
    EXPECT_EQ(e1->sessions, 2);
    EXPECT_EQ(e1->map.keyframeCount(), map_->keyframeCount());
}

TEST_F(MapServiceFixture, SeedMergesBeforeEveryContributor)
{
    MapService svc(voc_, dataset_->rig());
    svc.seed(*map_);
    svc.flush();
    auto seeded = svc.currentEpoch();
    ASSERT_GE(seeded->epoch, 1u);
    // The merge re-keys landmarks in reference order and recounts
    // observations, so the seed round-trips semantically (not byte-
    // wise): same keyframes at the same poses, every referenced
    // landmark carried over.
    ASSERT_EQ(seeded->map.keyframeCount(), map_->keyframeCount());
    for (int k = 0; k < map_->keyframeCount(); ++k)
        EXPECT_LT(seeded->map.keyframes()[k]
                      .pose.distanceTo(map_->keyframes()[k].pose)
                      .translational,
                  1e-12);
    EXPECT_GT(seeded->map.pointCount(), 0);
    EXPECT_LE(seeded->map.pointCount(), map_->pointCount());

    const int a = svc.registerSession();
    svc.contribute(a, sliceContribution(0, 2));
    svc.flush();
    auto merged = svc.currentEpoch();
    // Seed keyframes come first in the merged database.
    EXPECT_EQ(merged->map.keyframeCount(), map_->keyframeCount() + 2);
    EXPECT_EQ(merged->map.keyframes()[0].id, 0);
    EXPECT_GE(merged->map.pointCount(), seeded->map.pointCount());
}

TEST_F(MapServiceFixture, OverlappingSessionsCloseCrossSessionLoops)
{
    // Two sessions contributing the *same* trajectory slice: session
    // 2's keyframes revisit session 1's places exactly, so the BoW
    // query must fire and the alignment solve must converge.
    MapService svc(voc_, dataset_->rig());
    const int a = svc.registerSession();
    const int b = svc.registerSession();
    svc.contribute(a, sliceContribution(0, 4));
    svc.contribute(b, sliceContribution(0, 4));
    svc.flush();

    auto epoch = svc.currentEpoch();
    EXPECT_GT(epoch->cross_session_loops, 0)
        << "identical revisits produced no cross-session alignment";
    // The alignment of identical geometry is (numerically) identity:
    // the re-localized keyframes land on their originals.
    const Keyframe &orig = epoch->map.keyframes()[0];
    const Keyframe &revisit = epoch->map.keyframes()[4];
    EXPECT_LT(orig.pose.distanceTo(revisit.pose).translational, 0.2);
}

// --- eviction + tiling ----------------------------------------------------

TEST_F(MapServiceFixture, EvictionRespectsBudgetAndRemapsReferences)
{
    Map m = *map_;
    MapBudget budget;
    budget.max_keyframes = std::max(1, m.keyframeCount() / 2);
    budget.max_points = std::max(1, m.pointCount() / 2);
    const int kf_before = m.keyframeCount();
    const int pt_before = m.pointCount();

    MapEvictionResult ev = m.evictToBudget(budget);
    EXPECT_EQ(m.keyframeCount(), budget.max_keyframes);
    EXPECT_EQ(m.pointCount(), budget.max_points);
    EXPECT_EQ(ev.keyframes_evicted, kf_before - budget.max_keyframes);
    EXPECT_EQ(ev.points_evicted, pt_before - budget.max_points);
    ASSERT_EQ(static_cast<int>(ev.keyframe_remap.size()), kf_before);
    ASSERT_EQ(static_cast<int>(ev.point_remap.size()), pt_before);

    // id == index restored; every landmark reference valid or -1.
    for (int i = 0; i < m.keyframeCount(); ++i) {
        EXPECT_EQ(m.keyframes()[i].id, i);
        for (int lm : m.keyframes()[i].map_point_ids) {
            EXPECT_GE(lm, -1);
            EXPECT_LT(lm, m.pointCount());
        }
    }
    // Oldest keyframes went first, so survivors are the newest block.
    for (int old = 0; old < kf_before; ++old) {
        if (old < ev.keyframes_evicted)
            EXPECT_EQ(ev.keyframe_remap[old], -1);
        else
            EXPECT_EQ(ev.keyframe_remap[old],
                      old - ev.keyframes_evicted);
    }

    // Determinism: the same eviction on a fresh copy gives the same map.
    Map again = *map_;
    again.evictToBudget(budget);
    const auto b1 = saveMapToBuffer(m);
    const auto b2 = saveMapToBuffer(again);
    ASSERT_EQ(b1.size(), b2.size());
    EXPECT_EQ(0, std::memcmp(b1.data(), b2.data(), b1.size()));
}

TEST_F(MapServiceFixture, WithinBudgetMapIsUntouched)
{
    Map m = *map_;
    MapBudget roomy;
    roomy.max_keyframes = m.keyframeCount() + 10;
    roomy.max_points = m.pointCount() + 10;
    MapEvictionResult ev = m.evictToBudget(roomy);
    EXPECT_EQ(ev.points_evicted, 0);
    EXPECT_EQ(ev.keyframes_evicted, 0);
    EXPECT_TRUE(ev.point_remap.empty());
    EXPECT_TRUE(ev.keyframe_remap.empty());
}

TEST_F(MapServiceFixture, TileIndexPartitionsEveryLandmark)
{
    Map m = *map_;
    m.buildTileIndex(5.0);
    EXPECT_EQ(m.tileSize(), 5.0);
    int indexed = 0;
    for (const auto &[key, tile] : m.tiles()) {
        for (int pid : tile.points) {
            ASSERT_GE(pid, 0);
            ASSERT_LT(pid, m.pointCount());
            EXPECT_EQ(Map::tileKeyOf(m.points()[pid].position, 5.0), key);
        }
        indexed += static_cast<int>(tile.points.size());
    }
    EXPECT_EQ(indexed, m.pointCount()); // a partition: no loss, no dupes
    int kf_indexed = 0;
    for (const auto &[key, tile] : m.tiles())
        kf_indexed += static_cast<int>(tile.keyframes.size());
    EXPECT_EQ(kf_indexed, m.keyframeCount());

    m.buildTileIndex(0.0);
    EXPECT_TRUE(m.tiles().empty());
}

// --- concurrency ----------------------------------------------------------

TEST(MapServiceConcurrency, ParallelContributorsAndReaders)
{
    // No vocabulary: merges skip loop detection, keeping the pass cheap
    // so the test exercises the inbox/publish machinery densely.
    StereoRig rig;
    MapServiceConfig cfg;
    cfg.tile_size_m = 10.0;
    MapService svc(nullptr, rig, cfg);

    constexpr int kThreads = 4;
    constexpr int kBatches = 24;
    std::vector<int> keys;
    for (int t = 0; t < kThreads; ++t)
        keys.push_back(svc.registerSession());

    std::atomic<bool> done{false};
    std::atomic<long> reads{0};
    std::thread reader([&] {
        uint64_t last_epoch = 0;
        while (!done.load(std::memory_order_relaxed)) {
            auto e = svc.currentEpoch();
            ASSERT_GE(e->epoch, last_epoch) << "epoch went backwards";
            last_epoch = e->epoch;
            // The epoch is immutable: reading it is always safe.
            if (e->map.keyframeCount() > 0)
                (void)e->map.keyframes().front().pose.translation[0];
            reads.fetch_add(1, std::memory_order_relaxed);
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (int b = 0; b < kBatches; ++b) {
                MapContribution c;
                Keyframe kf;
                kf.id = b;
                kf.pose = Pose(Quat::identity(),
                               Vec3{1.0 * t, 1.0 * b, 0.0});
                kf.map_point_ids = {b};
                kf.keypoints.resize(1);
                kf.descriptors.resize(1);
                c.keyframes.push_back(std::move(kf));
                MapPoint p;
                p.position = Vec3{1.0 * t, 1.0 * b, 1.0};
                c.points.emplace_back(b, p);
                svc.contribute(keys[t], std::move(c));
            }
        });
    }
    for (auto &w : writers)
        w.join();
    svc.flush();
    done.store(true);
    reader.join();

    auto final_epoch = svc.currentEpoch();
    EXPECT_EQ(final_epoch->map.keyframeCount(), kThreads * kBatches);
    EXPECT_EQ(final_epoch->map.pointCount(), kThreads * kBatches);
    EXPECT_EQ(final_epoch->sessions, kThreads);
    EXPECT_GT(reads.load(), 0);

    MapServiceStats st = svc.stats();
    EXPECT_EQ(st.contributions, kThreads * kBatches);
    EXPECT_EQ(st.keyframes_ingested, kThreads * kBatches);
    EXPECT_GE(st.epochs_published, 1u);
    EXPECT_EQ(st.sessions, kThreads);
}

TEST(MapServiceConcurrency, BudgetBoundsTheMergedMapUnderLoad)
{
    StereoRig rig;
    MapServiceConfig cfg;
    cfg.budget.max_keyframes = 16;
    cfg.budget.max_points = 32;
    MapService svc(nullptr, rig, cfg);
    const int key = svc.registerSession();
    for (int b = 0; b < 64; ++b) {
        MapContribution c;
        Keyframe kf;
        kf.id = b;
        kf.pose = Pose(Quat::identity(), Vec3{0.5 * b, 0.0, 0.0});
        kf.map_point_ids = {b, -1};
        kf.keypoints.resize(2);
        kf.descriptors.resize(2);
        c.keyframes.push_back(std::move(kf));
        MapPoint p;
        p.position = Vec3{0.5 * b, 1.0, 0.0};
        c.points.emplace_back(b, p);
        svc.contribute(key, std::move(c));
    }
    svc.flush();
    auto e = svc.currentEpoch();
    EXPECT_LE(e->map.keyframeCount(), 16);
    EXPECT_LE(e->map.pointCount(), 32);
    for (int i = 0; i < e->map.keyframeCount(); ++i)
        EXPECT_EQ(e->map.keyframes()[i].id, i);
}

// --- solve-path neutrality ------------------------------------------------

TEST_F(MapServiceFixture, AttachedSlamPoseStreamIsBitIdentical)
{
    Dataset d(scene(SceneType::IndoorUnknown, 36, 7));
    LocalizerConfig cfg = configForScenario(SceneType::IndoorUnknown);
    cfg.mapping.keyframe_interval = 3;
    cfg.mapping.window_size = 4; // retire keyframes well within the run

    auto run = [&](MapService *svc) {
        Localizer loc(cfg, d.rig(), voc_, nullptr);
        loc.initialize(d.truthAt(0), 0.0,
                       d.trajectory().velocityAt(0.0));
        if (svc)
            loc.attachMapService(svc);
        std::vector<Pose> poses;
        for (int i = 0; i < d.frameCount(); ++i) {
            DatasetFrame f = d.frame(i);
            FrameInput in;
            in.frame_index = i;
            in.t = f.t;
            in.left = std::move(f.stereo.left);
            in.right = std::move(f.stereo.right);
            in.imu = d.imuBetweenFrames(i);
            in.gps = d.gpsAtFrame(i);
            poses.push_back(loc.processFrame(in).pose);
        }
        if (svc) {
            EXPECT_GT(loc.mapContributions(), 0)
                << "window never retired a keyframe; weak test setup";
        }
        return poses;
    };

    const std::vector<Pose> baseline = run(nullptr);
    MapService svc(voc_, d.rig());
    const std::vector<Pose> attached = run(&svc);

    ASSERT_EQ(baseline.size(), attached.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(0, std::memcmp(&baseline[i], &attached[i],
                                 sizeof(Pose)))
            << "pose diverged at frame " << i
            << " — contribution must be read-only on the solve path";
    }
    svc.flush();
    EXPECT_GT(svc.currentEpoch()->map.keyframeCount(), 0);
}

// --- pool integration -----------------------------------------------------

TEST_F(MapServiceFixture, PoolSharesTheMapAndNeverBlocksOnMerges)
{
    const int frames = 36;
    Dataset unknown(scene(SceneType::IndoorUnknown, frames, 11));

    MapServiceConfig scfg;
    scfg.tile_size_m = 20.0;
    MapService svc(voc_, dataset_->rig(), scfg);
    svc.seed(*map_);
    svc.flush();

    PoolConfig pcfg;
    pcfg.workers = 2;
    pcfg.map_service = &svc;
    LocalizerPool pool(pcfg);

    // Session 0: a SLAM surveyor contributing retired keyframes.
    LocalizerConfig slam_cfg = configForScenario(SceneType::IndoorUnknown);
    slam_cfg.mapping.keyframe_interval = 3;
    slam_cfg.mapping.window_size = 4;
    const int surveyor = pool.createSession(
        slam_cfg, unknown.rig(), voc_, nullptr, unknown.truthAt(0), 0.0,
        unknown.trajectory().velocityAt(0.0));

    // Session 1: a registration robot reading published epochs.
    LocalizerConfig reg_cfg = configForScenario(SceneType::IndoorKnown);
    const int reader = pool.createSession(
        reg_cfg, dataset_->rig(), voc_, map_, dataset_->truthAt(0), 0.0,
        dataset_->trajectory().velocityAt(0.0));

    // Session 2: a quarantined surveyor that opted out of sharing.
    SessionConfig solo;
    solo.share_map = false;
    const int detached = pool.createSession(
        slam_cfg, unknown.rig(), voc_, nullptr, unknown.truthAt(0), 0.0,
        unknown.trajectory().velocityAt(0.0), solo);

    auto inputFor = [](const Dataset &d, int i) {
        DatasetFrame f = d.frame(i);
        FrameInput in;
        in.frame_index = i;
        in.t = f.t;
        in.left = std::move(f.stereo.left);
        in.right = std::move(f.stereo.right);
        in.imu = d.imuBetweenFrames(i);
        in.gps = d.gpsAtFrame(i);
        return in;
    };
    for (int i = 0; i < frames; ++i) {
        ASSERT_TRUE(pool.submit(surveyor, inputFor(unknown, i)));
        if (i < dataset_->config().frame_count)
            ASSERT_TRUE(pool.submit(reader, inputFor(*dataset_, i)));
        ASSERT_TRUE(pool.submit(detached, inputFor(unknown, i)));
    }
    pool.drain();

    PoolStats st = pool.stats();
    ASSERT_TRUE(st.map_service_attached);
    EXPECT_GT(st.sessions[surveyor].map_contributions, 0);
    EXPECT_EQ(st.sessions[detached].map_contributions, 0);
    EXPECT_GE(st.sessions[reader].map_epoch, 1u)
        << "the registration session never adopted a published epoch";
    EXPECT_GE(st.map_service.epochs_published, 1u);
    EXPECT_GT(st.map_service.keyframes_ingested, 0);

    // The never-block contract: while the worker merged contributions
    // in the background, no solve thread's epoch acquire exceeded a
    // frame-rate-compatible bound (the acquire is a shared_ptr copy
    // under a swap-only mutex; 25 ms is orders of magnitude of slack
    // for CI noise, yet far below a merge pass over a real map).
    for (const auto &ss : st.sessions)
        EXPECT_LT(ss.epoch_acquire_max_ms, 25.0);
    EXPECT_GT(st.map_service.merges, 0);

    pool.shutdown();
}

} // namespace
} // namespace edx
