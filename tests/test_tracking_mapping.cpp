/**
 * @file
 * Unit tests for the tracking and mapping blocks at the module level:
 * the Tracker against prior maps (registration) and the Mapper's
 * keyframe/BA/marginalization machinery (SLAM), below the full
 * Localizer integration level.
 */
#include <gtest/gtest.h>

#include "backend/mapping.hpp"
#include "backend/tracking.hpp"
#include "core/evaluation.hpp"
#include "frontend/frontend.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace {

DatasetConfig
scene(SceneType type, int frames, uint64_t seed = 31)
{
    DatasetConfig cfg;
    cfg.scene = type;
    cfg.platform = Platform::Drone;
    cfg.frame_count = frames;
    cfg.fps = 10.0;
    cfg.seed = seed;
    return cfg;
}

/** Shared fixture: dataset + vocabulary + prior map, built once. */
class TrackerFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        dataset_ = new Dataset(scene(SceneType::IndoorKnown, 24));
        voc_ = new Vocabulary(buildVocabulary(*dataset_, 6));
        map_ = new Map(buildPriorMap(*dataset_, *voc_));
    }

    static void
    TearDownTestSuite()
    {
        delete map_;
        delete voc_;
        delete dataset_;
        map_ = nullptr;
        voc_ = nullptr;
        dataset_ = nullptr;
    }

    FrontendOutput
    frontendFor(int frame)
    {
        VisionFrontend fe;
        DatasetFrame f = dataset_->frame(frame);
        return fe.processFrame(f.stereo.left, f.stereo.right);
    }

    static Dataset *dataset_;
    static Vocabulary *voc_;
    static Map *map_;
};

Dataset *TrackerFixture::dataset_ = nullptr;
Vocabulary *TrackerFixture::voc_ = nullptr;
Map *TrackerFixture::map_ = nullptr;

TEST_F(TrackerFixture, TracksWithPosePrediction)
{
    Tracker tracker(map_, voc_, dataset_->rig().cam,
                    dataset_->rig().body_from_camera);
    FrontendOutput fe = frontendFor(5);
    TrackingResult r = tracker.track(fe, dataset_->truthAt(5));
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.inliers, 20);
    EXPECT_FALSE(r.relocalized);
    EXPECT_LT(r.pose.distanceTo(dataset_->truthAt(5)).translational,
              0.3);
}

TEST_F(TrackerFixture, RelocalizesWithoutPrediction)
{
    Tracker tracker(map_, voc_, dataset_->rig().cam,
                    dataset_->rig().body_from_camera);
    FrontendOutput fe = frontendFor(6);
    TrackingResult r = tracker.track(fe, std::nullopt);
    ASSERT_TRUE(r.ok) << "BoW relocalization failed";
    EXPECT_TRUE(r.relocalized);
    EXPECT_LT(r.pose.distanceTo(dataset_->truthAt(6)).translational,
              1.0);
}

TEST_F(TrackerFixture, BadPredictionFailsGracefully)
{
    Tracker tracker(map_, voc_, dataset_->rig().cam,
                    dataset_->rig().body_from_camera);
    FrontendOutput fe = frontendFor(5);
    // A prediction far outside the room: projection finds nothing.
    Pose far_away(Quat::identity(), Vec3{500.0, 500.0, 0.0});
    TrackingResult r = tracker.track(fe, far_away);
    EXPECT_FALSE(r.ok);
}

TEST_F(TrackerFixture, WorkloadRecordsProjectionSize)
{
    Tracker tracker(map_, voc_, dataset_->rig().cam,
                    dataset_->rig().body_from_camera);
    FrontendOutput fe = frontendFor(5);
    TrackingResult r = tracker.track(fe, dataset_->truthAt(5));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.workload.map_points_projected, map_->pointCount());
    EXPECT_GT(r.workload.pose_opt_points, 0);
    EXPECT_GT(r.timing.projection_ms, 0.0);
}

TEST_F(TrackerFixture, EmptyMapNeverLocalizes)
{
    Map empty;
    Tracker tracker(&empty, voc_, dataset_->rig().cam,
                    dataset_->rig().body_from_camera);
    FrontendOutput fe = frontendFor(3);
    TrackingResult r = tracker.track(fe, dataset_->truthAt(3));
    EXPECT_FALSE(r.ok);
}

// --- Mapper ---------------------------------------------------------------

TEST(Mapper, InsertsKeyframesOnCadenceAndGrowsMap)
{
    Dataset d(scene(SceneType::IndoorUnknown, 16));
    Vocabulary voc = buildVocabulary(d, 5);
    MappingConfig mcfg;
    mcfg.keyframe_interval = 4;
    Mapper mapper(d.rig(), &voc, mcfg);

    VisionFrontend fe;
    int keyframes = 0;
    for (int i = 0; i < d.frameCount(); ++i) {
        DatasetFrame f = d.frame(i);
        FrontendOutput out =
            fe.processFrame(f.stereo.left, f.stereo.right);
        MappingResult r = mapper.processFrame(out, d.truthAt(i));
        keyframes += r.keyframe_added ? 1 : 0;
    }
    EXPECT_EQ(keyframes, mapper.keyframesInserted());
    EXPECT_NEAR(keyframes, d.frameCount() / mcfg.keyframe_interval, 1);
    EXPECT_GT(mapper.map().pointCount(), 100);
    EXPECT_EQ(mapper.map().keyframeCount(), keyframes);
}

TEST(Mapper, BundleAdjustmentKeepsTruthInitializedPosesAccurate)
{
    Dataset d(scene(SceneType::IndoorUnknown, 20));
    Vocabulary voc = buildVocabulary(d, 5);
    MappingConfig mcfg;
    mcfg.keyframe_interval = 2;
    mcfg.window_size = 6;
    Mapper mapper(d.rig(), &voc, mcfg);

    VisionFrontend fe;
    for (int i = 0; i < d.frameCount(); ++i) {
        DatasetFrame f = d.frame(i);
        FrontendOutput out =
            fe.processFrame(f.stereo.left, f.stereo.right);
        mapper.processFrame(out, d.truthAt(i));
    }
    // BA over truth-initialized poses must not push keyframes away from
    // the truth (it refines landmarks against consistent observations).
    double worst = 0.0;
    for (const Keyframe &kf : mapper.map().keyframes()) {
        double err = kf.pose
                         .distanceTo(d.trajectory().poseAt(
                             kf.id * mcfg.keyframe_interval /
                             d.config().fps))
                         .translational;
        worst = std::max(worst, err);
    }
    EXPECT_LT(worst, 0.5) << "BA corrupted keyframe poses";
}

TEST(Mapper, MarginalizationStartsWhenWindowFills)
{
    Dataset d(scene(SceneType::IndoorUnknown, 24));
    Vocabulary voc = buildVocabulary(d, 6);
    MappingConfig mcfg;
    mcfg.keyframe_interval = 2;
    mcfg.window_size = 4;
    Mapper mapper(d.rig(), &voc, mcfg);

    VisionFrontend fe;
    bool any_marginalization = false;
    int frames_until_first = -1;
    for (int i = 0; i < d.frameCount(); ++i) {
        DatasetFrame f = d.frame(i);
        FrontendOutput out =
            fe.processFrame(f.stereo.left, f.stereo.right);
        MappingResult r = mapper.processFrame(out, d.truthAt(i));
        if (r.workload.marginalized_landmarks > 0) {
            any_marginalization = true;
            if (frames_until_first < 0)
                frames_until_first = i;
            EXPECT_GT(r.timing.marginalization_ms, 0.0);
        }
    }
    ASSERT_TRUE(any_marginalization);
    // Window of 4 keyframes at interval 2: first marginalization once
    // the 5th keyframe arrives (frame ~8), certainly not before the
    // window can fill.
    EXPECT_GE(frames_until_first, 2 * (mcfg.window_size - 1));
}

TEST(Mapper, TimingSplitsSolverAndMarginalization)
{
    Dataset d(scene(SceneType::IndoorUnknown, 20));
    Vocabulary voc = buildVocabulary(d, 6);
    MappingConfig mcfg;
    mcfg.keyframe_interval = 2;
    mcfg.window_size = 4;
    Mapper mapper(d.rig(), &voc, mcfg);

    VisionFrontend fe;
    double solver = 0.0, marg = 0.0;
    for (int i = 0; i < d.frameCount(); ++i) {
        DatasetFrame f = d.frame(i);
        FrontendOutput out =
            fe.processFrame(f.stereo.left, f.stereo.right);
        MappingResult r = mapper.processFrame(out, d.truthAt(i));
        solver += r.timing.solver_ms;
        marg += r.timing.marginalization_ms;
        EXPECT_GE(r.timing.total(), 0.0);
    }
    EXPECT_GT(solver, 0.0);
    EXPECT_GT(marg, 0.0);
}

} // namespace
} // namespace edx
