/**
 * @file
 * Fig. 3 (a-d): localization error vs frame rate for Registration, VIO,
 * and SLAM across the four operating scenarios.
 *
 * Paper shape to reproduce:
 *  - indoor unknown:  SLAM best (0.19 m vs VIO 0.27 m); Reg. N/A
 *  - indoor known:    Registration best (0.15 m), VIO worst (drift)
 *  - outdoor unknown: VIO+GPS best (0.10 m), SLAM far worse
 *  - outdoor known:   VIO+GPS best; Registration degraded by map drift
 */
#include <iostream>

#include "common/runner.hpp"
#include "common/table.hpp"

using namespace edx;
using namespace edx::bench;

int
main()
{
    banner("Fig. 3", "error vs frame rate per scenario and algorithm");

    const int frames = benchFrames(150);
    const std::vector<double> rates = {5.0, 10.0};
    const std::vector<SceneType> scenes = {
        SceneType::IndoorUnknown, SceneType::IndoorKnown,
        SceneType::OutdoorUnknown, SceneType::OutdoorKnown};
    const std::vector<BackendMode> modes = {
        BackendMode::Registration, BackendMode::Vio, BackendMode::Slam};

    for (SceneType scene : scenes) {
        std::cout << "Scenario: " << sceneName(scene) << "\n";
        Table t({"algorithm", "dataset FPS", "RMSE (m)", "rel. err (%)",
                 "sw FPS"});
        // Track the best algorithm at the paper's 10 FPS point.
        double best_err = 1e18;
        BackendMode best_mode = BackendMode::Slam;
        for (BackendMode mode : modes) {
            if (!modeApplies(mode, scene))
                continue;
            for (double fps : rates) {
                RunConfig cfg;
                cfg.scene = scene;
                cfg.frames = frames;
                cfg.fps = fps;
                cfg.force_mode = mode;
                ModeRun run = runLocalization(cfg);
                t.addRow({modeName(mode), fmt(fps, 1),
                          fmt(run.error.rmse_m, 3),
                          fmt(run.error.relative_percent, 2),
                          fmt(run.softwareFps(), 1)});
                if (fps == rates.back() && run.error.rmse_m < best_err) {
                    best_err = run.error.rmse_m;
                    best_mode = mode;
                }
            }
        }
        t.print();

        const char *paper_best =
            scene == SceneType::IndoorUnknown ? "slam"
            : scene == SceneType::IndoorKnown ? "registration"
                                              : "vio";
        note("best algorithm here: " + modeName(best_mode) +
             " (paper: " + paper_best + ")");
        std::cout << "\n";
    }

    note("Fig. 2 claim: each scenario prefers a different algorithm; no "
         "single algorithm wins everywhere.");
    return 0;
}
