/**
 * @file
 * Fig. 19: energy per frame, software baseline vs EUDOXUS.
 *
 * Paper shape to reproduce: car 1.9 J -> 0.5 J (-73.7%); drone 0.8 J ->
 * 0.4 J (-47.4%). Drone savings are smaller because FPGA static power
 * stands out once the dynamic energy shrinks.
 */
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

EnergyPair
platformEnergy(Platform platform, const AcceleratorConfig &acfg)
{
    const int frames =
        benchFrames(platform == Platform::Car ? 60 : 150);
    const std::vector<std::pair<SceneType, BackendMode>> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration},
        {SceneType::OutdoorUnknown, BackendMode::Vio},
        {SceneType::IndoorUnknown, BackendMode::Slam},
    };
    EnergyPair total;
    for (const auto &[scene, mode] : cases) {
        RunConfig cfg;
        cfg.scene = scene;
        cfg.platform = platform;
        cfg.frames = frames;
        cfg.force_mode = mode;
        SystemRun sys = modelSystem(runLocalization(cfg), acfg);
        EnergyPair e = meanFrameEnergy(sys, acfg);
        total.baseline_j += e.baseline_j / cases.size();
        total.eudoxus_j += e.eudoxus_j / cases.size();
    }
    return total;
}

} // namespace

int
main()
{
    banner("Fig. 19", "energy per frame, baseline vs EUDOXUS");

    Table t({"platform", "baseline J/frame", "EUDOXUS J/frame",
             "reduction"});
    {
        EnergyPair e =
            platformEnergy(Platform::Car, AcceleratorConfig::car());
        t.addRow({"EDX-CAR", fmt(e.baseline_j, 2), fmt(e.eudoxus_j, 2),
                  vsPaper(100.0 * (1.0 - e.eudoxus_j / e.baseline_j),
                          "73.7%", 1) +
                      " %"});
    }
    {
        EnergyPair e =
            platformEnergy(Platform::Drone, AcceleratorConfig::drone());
        t.addRow({"EDX-DRONE", fmt(e.baseline_j, 2), fmt(e.eudoxus_j, 2),
                  vsPaper(100.0 * (1.0 - e.eudoxus_j / e.baseline_j),
                          "47.4%", 1) +
                      " %"});
    }
    t.print();

    note("Paper claims: 47-74% energy reduction; drone saves less "
         "because FPGA static power dominates after acceleration.");
    return 0;
}
