/**
 * @file
 * Figs. 6-8: latency breakdown inside each backend mode.
 *
 * Paper shape to reproduce: a single kernel dominates each mode -
 * Projection in registration, Kalman gain (with covariance/QR close
 * behind) in VIO, and the Solver + Marginalization pair in SLAM - and
 * those same kernels drive the variation (Sec. IV-B).
 */
#include <iostream>

#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/cpu_features.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
printBreakdown(const std::string &title,
               const std::vector<std::string> &names,
               const std::vector<std::vector<double>> &series,
               const std::string &paper_note)
{
    std::cout << title << "\n";
    Table t({"stage", "mean ms", "share %", "RSD %"});
    double total = 0.0;
    for (const auto &s : series)
        total += mean(s);
    for (size_t i = 0; i < names.size(); ++i) {
        double m = mean(series[i]);
        t.addRow({names[i], fmt(m, 3),
                  fmt(total > 0 ? 100.0 * m / total : 0.0, 1),
                  fmt(rsdPercent(series[i]), 1)});
    }
    t.print();
    note(paper_note);
}

/**
 * Re-runs @p cfg with the retained reference kernels and prints the
 * before/after software-backend row (the overhaul's tracked speedup,
 * like fig20 does for the frontend).
 */
void
printBeforeAfter(const RunConfig &cfg, const ModeRun &opt_run)
{
    RunConfig ref_cfg = cfg;
    auto base_tune = cfg.tune;
    ref_cfg.tune = [base_tune](LocalizerConfig &lc) {
        if (base_tune)
            base_tune(lc);
        lc.msckf.use_reference = true;
        lc.mapping.use_reference = true;
        lc.tracking.use_reference = true;
    };
    ModeRun ref_run = runLocalization(ref_cfg);
    const double ref_ms = mean(ref_run.backendMs());
    const double opt_ms = mean(opt_run.backendMs());
    // Per-tier "after" number (when the startup tier is AVX2): the
    // optimized kernels once more with the dispatch forced to SSE2.
    double sse2_ms = -1.0;
    if (activeSimdTier() == SimdTier::kAvx2) {
        setSimdTier(SimdTier::kSse2);
        ModeRun sse2_run = runLocalization(cfg);
        setSimdTier(SimdTier::kAvx2);
        sse2_ms = mean(sse2_run.backendMs());
    }
    std::cout << "  software backend before/after the overhaul: "
              << fmt(ref_ms, 2);
    if (sse2_ms >= 0.0)
        std::cout << " -> " << fmt(sse2_ms, 2) << " (sse2 tier)";
    std::cout << " -> " << fmt(opt_ms, 2) << " ms ("
              << fmt(opt_ms > 0 ? ref_ms / opt_ms : 0.0, 2) << "x)\n\n";
}

} // namespace

int
main()
{
    banner("Figs. 6-8", "per-kernel latency breakdown in each backend");
    note("SIMD tier: " + simdTierSummary());

    const int frames = benchFrames(180);

    { // Fig. 6: registration backend.
        RunConfig cfg;
        cfg.scene = SceneType::IndoorKnown;
        cfg.frames = frames;
        cfg.force_mode = BackendMode::Registration;
        ModeRun run = runLocalization(cfg);
        std::vector<std::vector<double>> s(4);
        for (const FrameRecord &f : run.frames) {
            s[0].push_back(f.res.telemetry.tracking.update_ms);
            s[1].push_back(f.res.telemetry.tracking.projection_ms);
            s[2].push_back(f.res.telemetry.tracking.match_ms);
            s[3].push_back(f.res.telemetry.tracking.pose_opt_ms);
        }
        printBreakdown("Fig. 6 - registration backend",
                       {"Update", "Projection", "Match", "PoseOpt"}, s,
                       "Paper: Projection is the biggest contributor "
                       "and drives the variation.");
        printBeforeAfter(cfg, run);
    }

    { // Fig. 7: VIO backend.
        RunConfig cfg;
        cfg.scene = SceneType::OutdoorUnknown;
        cfg.frames = frames;
        ModeRun run = runLocalization(cfg);
        std::vector<std::vector<double>> s(6);
        for (const FrameRecord &f : run.frames) {
            s[0].push_back(f.res.telemetry.msckf.imu_ms);
            s[1].push_back(f.res.telemetry.msckf.cov_ms);
            s[2].push_back(f.res.telemetry.msckf.jacobian_ms);
            s[3].push_back(f.res.telemetry.msckf.qr_ms);
            s[4].push_back(f.res.telemetry.msckf.kalman_gain_ms);
            s[5].push_back(f.res.telemetry.msckf.update_ms + f.res.telemetry.fusion_ms);
        }
        printBreakdown(
            "Fig. 7 - VIO backend",
            {"IMU Proc.", "Cov.", "Jacobian", "QR", "Kalman Gain",
             "Update+Fusion"},
            s,
            "Paper: Kalman gain is the biggest contributor (~33% of "
            "VIO backend) and drives the variation.");
        printBeforeAfter(cfg, run);
    }

    { // Fig. 8: SLAM backend.
        RunConfig cfg;
        cfg.scene = SceneType::IndoorUnknown;
        cfg.frames = frames;
        ModeRun run = runLocalization(cfg);
        std::vector<std::vector<double>> s(3);
        for (const FrameRecord &f : run.frames) {
            s[0].push_back(f.res.telemetry.mapping.solver_ms +
                           f.res.telemetry.tracking.total());
            s[1].push_back(f.res.telemetry.mapping.marginalization_ms);
            // Fig. 8's "Others" bucket = association/triangulation +
            // loop detection (loop_ms is tracked apart for the stage
            // placement planner, not as a new paper category).
            s[2].push_back(f.res.telemetry.mapping.others_ms +
                           f.res.telemetry.mapping.loop_ms);
        }
        printBreakdown("Fig. 8 - SLAM backend",
                       {"Solver(+tracking)", "Marginalization", "Others"},
                       s,
                       "Paper: the Solver dominates the mean; "
                       "Marginalization dominates the variation.");
        printBeforeAfter(cfg, run);
    }
    return 0;
}
