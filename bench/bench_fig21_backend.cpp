/**
 * @file
 * Fig. 21 (a-b): backend latency and latency variation per mode,
 * software baseline vs the accelerated backend (kernel offloading under
 * the runtime scheduler).
 *
 * Paper shape to reproduce (EDX-CAR): registration backend -49.4%
 * (projection kernel itself -95.3%), VIO backend -16.3% (Kalman gain
 * 2.0x), SLAM backend -30.2% (marginalization 2.4x); SD drops in every
 * mode (e.g., 9.6 -> 4.0 ms registration, 21.4 -> 10.9 ms SLAM).
 *
 * Since the backend linear-algebra overhaul the software baseline is
 * reported before and after (retained reference kernels vs the
 * blocked/SIMD workspace path), like fig20 does for the frontend, so
 * the accelerator speedup is measured against an honestly optimized
 * software backend. A dense-keyframing SLAM row tracks the
 * backend-bound showcase the ROADMAP calls out.
 */
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/cpu_features.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

struct Case
{
    std::string name;
    SceneType scene;
    BackendMode mode;
    std::function<void(LocalizerConfig &)> tune;
};

void
useReferenceBackend(LocalizerConfig &lc)
{
    lc.msckf.use_reference = true;
    lc.mapping.use_reference = true;
    lc.tracking.use_reference = true;
}

void
platformReport(Platform platform, const AcceleratorConfig &acfg)
{
    const int frames =
        benchFrames(platform == Platform::Car ? 60 : 150);
    const std::vector<Case> cases = {
        {"registration", SceneType::IndoorKnown,
         BackendMode::Registration, nullptr},
        {"vio", SceneType::OutdoorUnknown, BackendMode::Vio, nullptr},
        {"slam", SceneType::IndoorUnknown, BackendMode::Slam, nullptr},
        {"slam (dense KF)", SceneType::IndoorUnknown, BackendMode::Slam,
         [](LocalizerConfig &lc) {
             lc.mapping.keyframe_interval = 1;
             lc.mapping.window_size = 16;
         }},
    };

    std::cout << acfg.name << "\n";
    Table t({"mode", "sw BE ref", "sw BE sse2", "sw BE opt", "sw x",
             "edx BE ms", "BE cut %", "kernel x", "ref SD", "opt SD",
             "edx SD"});
    for (const Case &c : cases) {
        RunConfig cfg;
        cfg.scene = c.scene;
        cfg.platform = platform;
        cfg.frames = frames;
        cfg.force_mode = c.mode;
        cfg.tune = c.tune;
        SystemRun sys = modelSystem(runLocalization(cfg), acfg);

        RunConfig ref_cfg = cfg;
        ref_cfg.tune = [&](LocalizerConfig &lc) {
            if (c.tune)
                c.tune(lc);
            useReferenceBackend(lc);
        };
        ModeRun ref_run = runLocalization(ref_cfg);

        // One more optimized run on the SSE2 tier (when AVX2 is the
        // startup tier): the per-tier software baseline column.
        double sse2_ms = -1.0;
        if (activeSimdTier() == SimdTier::kAvx2) {
            setSimdTier(SimdTier::kSse2);
            ModeRun sse2_run = runLocalization(cfg);
            setSimdTier(SimdTier::kAvx2);
            sse2_ms = mean(sse2_run.backendMs());
        }

        std::vector<double> opt = sys.baseBackends();
        std::vector<double> acc = sys.accBackends();
        std::vector<double> ref = ref_run.backendMs();

        // Kernel-only speedup over the offloaded frames.
        double k_cpu = 0.0, k_acc = 0.0;
        for (const SystemFrame &f : sys.frames) {
            if (f.offloaded) {
                k_cpu += f.kernel_cpu_ms;
                k_acc += f.kernel_accel_ms;
            }
        }
        t.addRow({c.name, fmt(mean(ref), 2),
                  sse2_ms < 0.0 ? "-" : fmt(sse2_ms, 2), fmt(mean(opt), 2),
                  fmt(mean(ref) / mean(opt), 2) + "x", fmt(mean(acc), 2),
                  fmt(100.0 * (1.0 - mean(acc) / mean(opt)), 1),
                  k_acc > 0 ? fmt(k_cpu / k_acc, 1) + "x" : "-",
                  fmt(stddev(ref), 2), fmt(stddev(opt), 2),
                  fmt(stddev(acc), 2)});
    }
    t.print();
    note("sw BE ref/sse2/opt = software backend before the overhaul, "
         "and after it on the SSE2 and startup SIMD tiers (1 core); "
         "edx = accelerated path modeled over the optimized run.");
    std::cout << "\n";
}

} // namespace

int
main()
{
    banner("Fig. 21", "backend latency + variation, baseline vs EUDOXUS");
    note("SIMD tier: " + simdTierSummary());
    platformReport(Platform::Car, AcceleratorConfig::car());
    platformReport(Platform::Drone, AcceleratorConfig::drone());
    note("Paper claims (car): backend latency cut 16-49% per mode; "
         "kernels accelerate 2.0-2.4x (projection ~20x); SD drops in "
         "every mode. The dense-keyframing SLAM row is the ROADMAP's "
         "backend-bound showcase: the software overhaul alone must "
         "deliver >= 2x there (acceptance-tracked).");
    return 0;
}
