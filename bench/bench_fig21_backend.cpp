/**
 * @file
 * Fig. 21 (a-b): backend latency and latency variation per mode,
 * software baseline vs the accelerated backend (kernel offloading under
 * the runtime scheduler).
 *
 * Paper shape to reproduce (EDX-CAR): registration backend -49.4%
 * (projection kernel itself -95.3%), VIO backend -16.3% (Kalman gain
 * 2.0x), SLAM backend -30.2% (marginalization 2.4x); SD drops in every
 * mode (e.g., 9.6 -> 4.0 ms registration, 21.4 -> 10.9 ms SLAM).
 */
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
platformReport(Platform platform, const AcceleratorConfig &acfg)
{
    const int frames =
        benchFrames(platform == Platform::Car ? 60 : 150);
    const std::vector<std::pair<SceneType, BackendMode>> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration},
        {SceneType::OutdoorUnknown, BackendMode::Vio},
        {SceneType::IndoorUnknown, BackendMode::Slam},
    };

    std::cout << acfg.name << "\n";
    Table t({"mode", "base BE ms", "edx BE ms", "BE cut %", "kernel x",
             "base SD", "edx SD"});
    for (const auto &[scene, mode] : cases) {
        RunConfig cfg;
        cfg.scene = scene;
        cfg.platform = platform;
        cfg.frames = frames;
        cfg.force_mode = mode;
        SystemRun sys = modelSystem(runLocalization(cfg), acfg);

        std::vector<double> base = sys.baseBackends();
        std::vector<double> acc = sys.accBackends();

        // Kernel-only speedup over the offloaded frames.
        double k_cpu = 0.0, k_acc = 0.0;
        for (const SystemFrame &f : sys.frames) {
            if (f.offloaded) {
                k_cpu += f.kernel_cpu_ms;
                k_acc += f.kernel_accel_ms;
            }
        }
        t.addRow({modeName(mode), fmt(mean(base), 2), fmt(mean(acc), 2),
                  fmt(100.0 * (1.0 - mean(acc) / mean(base)), 1),
                  k_acc > 0 ? fmt(k_cpu / k_acc, 1) + "x" : "-",
                  fmt(stddev(base), 2), fmt(stddev(acc), 2)});
    }
    t.print();
}

} // namespace

int
main()
{
    banner("Fig. 21", "backend latency + variation, baseline vs EUDOXUS");
    platformReport(Platform::Car, AcceleratorConfig::car());
    platformReport(Platform::Drone, AcceleratorConfig::drone());
    note("Paper claims (car): backend latency cut 16-49% per mode; "
         "kernels accelerate 2.0-2.4x (projection ~20x); SD drops in "
         "every mode.");
    return 0;
}
