/**
 * @file
 * Fig. 17 (a-b): end-to-end frame latency and latency standard
 * deviation, software baseline vs EDX-CAR / EDX-DRONE, per mode and
 * overall.
 *
 * Paper shape to reproduce: ~2x overall speedup on both platforms
 * (2.5/2.1/2.0x per mode on the car; 2.0/1.9/1.8x on the drone) and a
 * large SD reduction (58.4% car, 42.7% drone).
 */
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

struct CaseDef
{
    SceneType scene;
    BackendMode mode;
};

void
platformReport(Platform platform, const AcceleratorConfig &acfg,
               const std::string &paper_speedup,
               const std::string &paper_sd)
{
    const int frames =
        benchFrames(platform == Platform::Car ? 60 : 150);
    const std::vector<CaseDef> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration},
        {SceneType::OutdoorUnknown, BackendMode::Vio},
        {SceneType::IndoorUnknown, BackendMode::Slam},
    };

    std::cout << acfg.name << " (" << frames << " frames per mode)\n";
    Table t({"mode", "base ms", "edx ms", "speedup", "base SD",
             "edx SD", "SD cut %"});

    std::vector<double> all_base, all_acc;
    for (const CaseDef &c : cases) {
        RunConfig cfg;
        cfg.scene = c.scene;
        cfg.platform = platform;
        cfg.frames = frames;
        cfg.force_mode = c.mode;
        ModeRun run = runLocalization(cfg);
        SystemRun sys = modelSystem(run, acfg);

        std::vector<double> base = sys.baseTotals();
        std::vector<double> acc = sys.accTotals();
        all_base.insert(all_base.end(), base.begin(), base.end());
        all_acc.insert(all_acc.end(), acc.begin(), acc.end());

        double sd_cut =
            100.0 * (1.0 - stddev(acc) / stddev(base));
        t.addRow({modeName(c.mode), fmt(mean(base), 1),
                  fmt(mean(acc), 1),
                  fmt(mean(base) / mean(acc), 2) + "x",
                  fmt(stddev(base), 1), fmt(stddev(acc), 1),
                  fmt(sd_cut, 1)});
    }
    double overall = mean(all_base) / mean(all_acc);
    double sd_cut = 100.0 * (1.0 - stddev(all_acc) / stddev(all_base));
    t.addRow({"overall", fmt(mean(all_base), 1), fmt(mean(all_acc), 1),
              vsPaper(overall, paper_speedup) + "x", fmt(stddev(all_base), 1),
              fmt(stddev(all_acc), 1), vsPaper(sd_cut, paper_sd, 1)});
    t.print();
}

} // namespace

int
main()
{
    banner("Fig. 17", "overall latency + variation, baseline vs EUDOXUS");
    platformReport(Platform::Car, AcceleratorConfig::car(), "2.1x",
                   "58.4%");
    platformReport(Platform::Drone, AcceleratorConfig::drone(), "1.9x",
                   "42.7%");
    note("Paper claims: ~2x end-to-end speedup and 43-58% SD reduction "
         "on both platforms.");
    return 0;
}
