/**
 * @file
 * Tbl. II: FPGA resource consumption of EDX-CAR and EDX-DRONE, shared
 * vs the hypothetical non-shared ("N.S.") design.
 *
 * Paper shape to reproduce: without sharing the frontend and the
 * backend building blocks, every resource class more than doubles and
 * overflows the target parts; the frontend (and within it feature
 * extraction) dominates consumption.
 */
#include <iostream>

#include "common/table.hpp"
#include "hw/resources.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
report(const AcceleratorConfig &cfg)
{
    ResourceReport r = buildResourceReport(cfg);
    std::cout << cfg.name << " on " << r.part.name << "\n";

    Table t({"resource", "shared", "util %", "N.S.", "N.S./shared"});
    auto row = [&](const char *name, double shared, double unshared,
                   double cap) {
        t.addRow({name, fmt(shared, 0), fmt(100.0 * shared / cap, 1),
                  fmt(unshared, 0), fmt(unshared / shared, 2) + "x"});
    };
    row("LUT", r.shared_total.lut, r.unshared_total.lut, r.part.lut);
    row("Flip-Flop", r.shared_total.ff, r.unshared_total.ff, r.part.ff);
    row("DSP", r.shared_total.dsp, r.unshared_total.dsp, r.part.dsp);
    t.addRow({"BRAM (MB)", fmt(r.shared_total.bram_mb, 2),
              fmt(100.0 * r.shared_total.bram_mb / r.part.bram_mb, 1),
              fmt(r.unshared_total.bram_mb, 2),
              fmt(r.unshared_total.bram_mb / r.shared_total.bram_mb, 2) +
                  "x"});
    t.print();

    note("frontend share of used LUTs: " +
         fmt(100.0 * r.frontend_total.lut / r.shared_total.lut, 1) +
         "% (paper: 83.2% on EDX-CAR)");
    note("feature extraction share of frontend LUTs: " +
         fmt(100.0 * r.fe_block_total.lut / r.frontend_total.lut, 1) +
         "% (paper: over two-thirds)");

    std::cout << "\n  per-unit inventory\n";
    Table u({"unit", "LUT", "FF", "DSP", "BRAM MB", "shared x",
             "N.S. x"});
    for (const ResourceItem &item : r.items) {
        u.addRow({item.name, fmt(item.cost.lut, 0), fmt(item.cost.ff, 0),
                  fmt(item.cost.dsp, 0), fmt(item.cost.bram_mb, 3),
                  fmt(item.shared_instances, 0),
                  fmt(item.unshared_instances, 0)});
    }
    u.print();
}

} // namespace

int
main()
{
    banner("Tbl. II", "FPGA resource consumption, shared vs N.S.");
    report(AcceleratorConfig::car());
    report(AcceleratorConfig::drone());
    note("Paper claim: resource consumption of all types would more "
         "than double without sharing, exceeding both FPGAs.");
    return 0;
}
