/**
 * @file
 * Sec. VII-F: effectiveness of the runtime scheduler.
 *
 * Paper shape to reproduce: regression R^2 of 0.83 / 0.82 / 0.98
 * (registration / VIO / SLAM); the runtime scheduler matches the oracle
 * to within a hair; nearly all registration/VIO frames offload while
 * only 76.4% of SLAM frames do; always offloading SLAM costs +8.3%
 * latency.
 */
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"

using namespace edx;
using namespace edx::bench;

int
main()
{
    banner("Sec. VII-F", "runtime scheduler vs oracle");

    const int frames = benchFrames(240);
    struct Case
    {
        SceneType scene;
        BackendMode mode;
        const char *paper_r2;
    };
    const std::vector<Case> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration, "0.83"},
        {SceneType::OutdoorUnknown, BackendMode::Vio, "0.82"},
        {SceneType::IndoorUnknown, BackendMode::Slam, "0.98"},
    };

    Table t({"mode", "R^2", "offload %", "oracle agree %",
             "sched BE ms", "oracle BE ms", "always BE ms",
             "never BE ms"});
    for (const Case &c : cases) {
        RunConfig cfg;
        cfg.scene = c.scene;
        cfg.frames = frames;
        cfg.force_mode = c.mode;
        ModeRun run = runLocalization(cfg);
        SystemRun sys = modelSystem(run, AcceleratorConfig::car());

        // Evaluate scheduling policies over the evaluation frames.
        double sched_ms = 0.0, oracle_ms = 0.0, always_ms = 0.0,
               never_ms = 0.0;
        int n = 0, agree = 0, offloaded = 0;
        for (const SystemFrame &f : sys.frames) {
            if (f.is_train)
                continue;
            ++n;
            double cpu = f.base_backend_ms;
            double off = f.kernel_size > 0
                             ? cpu - f.kernel_cpu_ms + f.kernel_accel_ms
                             : cpu;
            sched_ms += f.offloaded ? off : cpu;
            oracle_ms += f.oracle_offload ? off : cpu;
            always_ms += off;
            never_ms += cpu;
            agree += (f.offloaded == f.oracle_offload) ? 1 : 0;
            offloaded += f.offloaded ? 1 : 0;
        }
        t.addRow({modeName(c.mode), vsPaper(sys.scheduler_r2, c.paper_r2),
                  fmt(100.0 * offloaded / n, 1),
                  fmt(100.0 * agree / n, 1), fmt(sched_ms / n, 2),
                  fmt(oracle_ms / n, 2), fmt(always_ms / n, 2),
                  fmt(never_ms / n, 2)});

        if (c.mode == BackendMode::Slam && sched_ms > 0.0) {
            note("always-offload penalty in SLAM: " +
                 vsPaper(100.0 * (always_ms / sched_ms - 1.0), "+8.3%",
                         1) +
                 " %");
        }
    }
    t.print();

    note("Paper claims: scheduler within <0.001% of the oracle; "
         "registration/VIO offload nearly always, SLAM 76.4%.");
    return 0;
}
