#include "common/accel_model.hpp"

#include <algorithm>

namespace edx {
namespace bench {
namespace {

BackendKernel
modeKernel(BackendMode mode)
{
    switch (mode) {
      case BackendMode::Registration:
        return BackendKernel::Projection;
      case BackendMode::Vio:
        return BackendKernel::KalmanGain;
      case BackendMode::Slam:
        return BackendKernel::Marginalization;
    }
    return BackendKernel::Projection;
}

} // namespace

KernelRecord
kernelRecord(const LocalizationResult &res)
{
    KernelRecord k;
    switch (res.mode) {
      case BackendMode::Registration:
        k.size = res.telemetry.tracking_workload.map_points_projected;
        k.cpu_ms = res.telemetry.tracking.projection_ms;
        break;
      case BackendMode::Vio:
        k.size = res.telemetry.msckf_workload.stacked_rows;
        k.cpu_ms = res.telemetry.msckf.kalman_gain_ms;
        k.state_dim = res.telemetry.msckf_workload.state_dim;
        break;
      case BackendMode::Slam:
        k.size = res.telemetry.mapping_workload.marginalized_landmarks;
        k.cpu_ms = res.telemetry.mapping.marginalization_ms;
        break;
    }
    return k;
}

AccelKernelCost
kernelAccelCost(BackendMode mode, const KernelRecord &k,
                const BackendAccelerator &accel)
{
    switch (mode) {
      case BackendMode::Registration:
        return accel.projection(static_cast<int>(k.size));
      case BackendMode::Vio:
        return accel.kalmanGain(static_cast<int>(k.size),
                                std::max(k.state_dim, 1));
      case BackendMode::Slam:
        return accel.marginalization(static_cast<int>(k.size));
    }
    return {};
}

std::vector<double>
SystemRun::baseTotals() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const SystemFrame &f : frames)
        out.push_back(f.baseTotalMs());
    return out;
}

std::vector<double>
SystemRun::accTotals() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const SystemFrame &f : frames)
        out.push_back(f.accTotalMs());
    return out;
}

std::vector<double>
SystemRun::baseBackends() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const SystemFrame &f : frames)
        out.push_back(f.base_backend_ms);
    return out;
}

std::vector<double>
SystemRun::accBackends() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const SystemFrame &f : frames)
        out.push_back(f.acc_backend_ms);
    return out;
}

double
SystemRun::offloadFraction() const
{
    int n = 0, off = 0;
    for (const SystemFrame &f : frames) {
        if (f.is_train)
            continue;
        ++n;
        off += f.offloaded ? 1 : 0;
    }
    return n ? static_cast<double>(off) / n : 0.0;
}

SystemRun
modelSystem(const ModeRun &run, const AcceleratorConfig &cfg)
{
    SystemRun out;
    out.mode = run.mode;
    FrontendAccelerator fe_accel(cfg);
    BackendAccelerator be_accel(cfg);

    // 1. Offline scheduler training on 25% of the frames (Sec. VII-A),
    //    interleaved so training covers the whole operating range, and
    //    restricted to frames that actually invoked the kernel
    //    (size > 0).
    const int n = static_cast<int>(run.frames.size());
    auto isTrainFrame = [](int i) { return i % 4 == 0; };
    out.train_frames = (n + 3) / 4;
    std::vector<KernelSample> train, eval;
    for (int i = 0; i < n; ++i) {
        KernelRecord k = kernelRecord(run.frames[i].res);
        if (k.size <= 0.0)
            continue;
        KernelSample s{k.size, k.cpu_ms};
        (isTrainFrame(i) ? train : eval).push_back(s);
    }
    BackendKernel kernel = modeKernel(run.mode);
    KernelLatencyModel model;
    if (train.size() >= 4)
        model = KernelLatencyModel::fit(kernel, train);
    RuntimeScheduler sched(model);
    out.scheduler_r2 = eval.empty() ? 0.0 : model.r2(eval);

    // 2. Per-frame system model.
    out.frames.reserve(n);
    for (int i = 0; i < n; ++i) {
        const LocalizationResult &res = run.frames[i].res;
        SystemFrame f;
        f.base_frontend_ms = res.frontendMs();
        f.base_backend_ms = res.backendMs();

        f.fe = fe_accel.model(res.telemetry.frontend_workload);
        f.acc_frontend_ms = f.fe.latencyMs();

        KernelRecord k = kernelRecord(res);
        f.is_train = isTrainFrame(i);
        f.kernel_size = k.size;
        f.kernel_cpu_ms = k.cpu_ms;
        if (k.size > 0.0) {
            AccelKernelCost cost = kernelAccelCost(run.mode, k, be_accel);
            f.kernel_accel_ms = cost.totalMs();
            f.kernel_accel_compute_ms = cost.compute_ms;
            OffloadDecision d = sched.decide(k.size, f.kernel_accel_ms);
            f.offloaded = d.offload;
            f.oracle_offload = oracleOffload(k.cpu_ms, f.kernel_accel_ms);
        }
        f.acc_backend_ms =
            f.offloaded
                ? f.base_backend_ms - f.kernel_cpu_ms + f.kernel_accel_ms
                : f.base_backend_ms;
        out.frames.push_back(f);
    }
    return out;
}

EnergyPair
meanFrameEnergy(const SystemRun &run, const AcceleratorConfig &cfg)
{
    EnergyModel energy(cfg);
    EnergyPair out;
    if (run.frames.empty())
        return out;
    for (const SystemFrame &f : run.frames) {
        out.baseline_j += energy.baseline(f.baseTotalMs()).totalJ();
        out.eudoxus_j += energy
                             .accelerated(f.accCpuMs(), f.accBusyMs(),
                                          f.accTotalMs())
                             .totalJ();
    }
    out.baseline_j /= static_cast<double>(run.frames.size());
    out.eudoxus_j /= static_cast<double>(run.frames.size());
    return out;
}

} // namespace bench
} // namespace edx
