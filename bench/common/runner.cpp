#include "common/runner.hpp"

#include <cstdlib>

namespace edx {
namespace bench {

std::vector<double>
ModeRun::frontendMs() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const FrameRecord &f : frames)
        out.push_back(f.res.frontendMs());
    return out;
}

std::vector<double>
ModeRun::backendMs() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const FrameRecord &f : frames)
        out.push_back(f.res.backendMs());
    return out;
}

std::vector<double>
ModeRun::totalMs() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const FrameRecord &f : frames)
        out.push_back(f.res.totalMs());
    return out;
}

double
ModeRun::softwareFps() const
{
    if (frames.empty())
        return 0.0;
    double sum = 0.0;
    for (const FrameRecord &f : frames)
        sum += f.res.totalMs();
    return 1000.0 * static_cast<double>(frames.size()) / sum;
}

int
benchFrames(int dflt)
{
    const char *env = std::getenv("EDX_BENCH_FRAMES");
    if (!env)
        return dflt;
    int v = std::atoi(env);
    return v > 0 ? v : dflt;
}

bool
modeApplies(BackendMode mode, SceneType scene)
{
    // Registration needs a pre-constructed map (Fig. 2 / Fig. 3 note).
    if (mode == BackendMode::Registration)
        return scenarioTraits(scene).map_available;
    return true;
}

ModeRun
runLocalization(const RunConfig &cfg)
{
    DatasetConfig dcfg;
    dcfg.scene = cfg.scene;
    dcfg.platform = cfg.platform;
    dcfg.frame_count = cfg.frames;
    dcfg.fps = cfg.fps;
    dcfg.seed = cfg.seed;
    Dataset dataset(dcfg);

    LocalizerConfig lcfg = configForScenario(cfg.scene);
    if (cfg.force_mode)
        lcfg.mode = *cfg.force_mode;
    if (lcfg.mode != BackendMode::Vio)
        lcfg.use_gps = false;
    if (cfg.force_gps_off)
        lcfg.use_gps = false;

    // Offline products: vocabulary for SLAM/registration, prior map for
    // registration. Outdoor prior maps carry the mapping-run drift that
    // degrades registration outdoors (Fig. 3d).
    Vocabulary voc;
    Map prior_map;
    const Map *prior = nullptr;
    if (lcfg.mode != BackendMode::Vio) {
        voc = buildVocabulary(dataset, /*frame_stride=*/10);
        if (lcfg.mode == BackendMode::Registration) {
            MapBuildConfig mcfg;
            mcfg.seed = cfg.seed + 1;
            if (!scenarioTraits(cfg.scene).indoor) {
                mcfg.point_noise_m = 0.35; // outdoor mapping drift
                mcfg.pose_noise_m = 0.25;
            }
            prior_map = buildPriorMap(dataset, voc, mcfg);
            prior = &prior_map;
        }
    }

    Localizer loc(lcfg, dataset.rig(),
                  lcfg.mode != BackendMode::Vio ? &voc : nullptr, prior);
    loc.initialize(dataset.truthAt(0), 0.0,
                   dataset.trajectory().velocityAt(0.0));

    ModeRun run;
    run.scene = cfg.scene;
    run.mode = lcfg.mode;
    run.platform = cfg.platform;
    run.frames.reserve(cfg.frames);

    std::vector<Pose> estimate, truth;
    for (int i = 0; i < cfg.frames; ++i) {
        DatasetFrame f = dataset.frame(i);
        FrameInput in;
        in.frame_index = i;
        in.t = f.t;
        in.left = &f.stereo.left;
        in.right = &f.stereo.right;
        in.imu = dataset.imuBetweenFrames(i);
        in.gps = dataset.gpsAtFrame(i);

        FrameRecord rec;
        rec.res = loc.processFrame(in);
        rec.truth = f.truth;
        estimate.push_back(rec.res.pose);
        truth.push_back(f.truth);
        run.frames.push_back(std::move(rec));
    }
    run.error = computeTrajectoryError(estimate, truth);
    return run;
}

} // namespace bench
} // namespace edx
