#include "common/runner.hpp"

#include <cstdlib>

namespace edx {
namespace bench {

std::vector<double>
ModeRun::frontendMs() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const FrameRecord &f : frames)
        out.push_back(f.res.frontendMs());
    return out;
}

std::vector<double>
ModeRun::backendMs() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const FrameRecord &f : frames)
        out.push_back(f.res.backendMs());
    return out;
}

std::vector<double>
ModeRun::totalMs() const
{
    std::vector<double> out;
    out.reserve(frames.size());
    for (const FrameRecord &f : frames)
        out.push_back(f.res.totalMs());
    return out;
}

double
ModeRun::softwareFps() const
{
    if (frames.empty())
        return 0.0;
    double sum = 0.0;
    for (const FrameRecord &f : frames)
        sum += f.res.totalMs();
    return 1000.0 * static_cast<double>(frames.size()) / sum;
}

int
benchFrames(int dflt)
{
    const char *env = std::getenv("EDX_BENCH_FRAMES");
    if (!env)
        return dflt;
    int v = std::atoi(env);
    return v > 0 ? v : dflt;
}

bool
modeApplies(BackendMode mode, SceneType scene)
{
    // Registration needs a pre-constructed map (Fig. 2 / Fig. 3 note).
    if (mode == BackendMode::Registration)
        return scenarioTraits(scene).map_available;
    return true;
}

SessionAssets
buildAssets(const RunConfig &cfg)
{
    DatasetConfig dcfg;
    dcfg.scene = cfg.scene;
    dcfg.platform = cfg.platform;
    dcfg.frame_count = cfg.frames;
    dcfg.fps = cfg.fps;
    dcfg.seed = cfg.seed;

    SessionAssets a;
    a.dataset = std::make_unique<Dataset>(dcfg);

    a.lcfg = configForScenario(cfg.scene);
    if (cfg.force_mode)
        a.lcfg.mode = *cfg.force_mode;
    if (a.lcfg.mode != BackendMode::Vio)
        a.lcfg.use_gps = false;
    if (cfg.force_gps_off)
        a.lcfg.use_gps = false;
    if (cfg.tune)
        cfg.tune(a.lcfg);

    // Offline products: vocabulary for SLAM/registration, prior map for
    // registration. Outdoor prior maps carry the mapping-run drift that
    // degrades registration outdoors (Fig. 3d).
    if (a.lcfg.mode != BackendMode::Vio) {
        a.voc = std::make_unique<Vocabulary>(
            buildVocabulary(*a.dataset, /*frame_stride=*/10));
        if (a.lcfg.mode == BackendMode::Registration) {
            MapBuildConfig mcfg;
            mcfg.seed = cfg.seed + 1;
            if (!scenarioTraits(cfg.scene).indoor) {
                mcfg.point_noise_m = 0.35; // outdoor mapping drift
                mcfg.pose_noise_m = 0.25;
            }
            a.prior_map = std::make_unique<Map>(
                buildPriorMap(*a.dataset, *a.voc, mcfg));
        }
    }
    return a;
}

std::unique_ptr<Localizer>
SessionAssets::makeSession() const
{
    auto loc = std::make_unique<Localizer>(lcfg, dataset->rig(), vocPtr(),
                                           priorPtr());
    loc->initialize(dataset->truthAt(0), 0.0,
                    dataset->trajectory().velocityAt(0.0));
    return loc;
}

FrameInput
frameInput(const Dataset &d, int i)
{
    DatasetFrame f = d.frame(i);
    FrameInput in;
    in.frame_index = i;
    in.t = f.t;
    in.left = std::move(f.stereo.left);
    in.right = std::move(f.stereo.right);
    in.imu = d.imuBetweenFrames(i);
    in.gps = d.gpsAtFrame(i);
    return in;
}

ModeRun
runLocalization(const RunConfig &cfg)
{
    SessionAssets assets = buildAssets(cfg);
    const Dataset &dataset = *assets.dataset;
    std::unique_ptr<Localizer> loc = assets.makeSession();

    ModeRun run;
    run.scene = cfg.scene;
    run.mode = assets.lcfg.mode;
    run.platform = cfg.platform;
    run.frames.reserve(cfg.frames);

    std::vector<Pose> estimate, truth;
    for (int i = 0; i < cfg.frames; ++i) {
        FrameRecord rec;
        rec.res = loc->processFrame(frameInput(dataset, i));
        rec.truth = dataset.truthAt(i);
        estimate.push_back(rec.res.pose);
        truth.push_back(rec.truth);
        run.frames.push_back(std::move(rec));
    }
    run.error = computeTrajectoryError(estimate, truth);
    return run;
}

PipelinedRun
runPipelined(const RunConfig &cfg, const PipelineConfig &pcfg)
{
    SessionAssets assets = buildAssets(cfg);
    const Dataset &dataset = *assets.dataset;
    std::unique_ptr<Localizer> loc = assets.makeSession();

    PipelinedRun out;
    out.run.scene = cfg.scene;
    out.run.mode = assets.lcfg.mode;
    out.run.platform = cfg.platform;
    out.run.frames.reserve(cfg.frames);

    // Pre-render every frame so dataset rendering cost stays out of the
    // measured pipeline span (the camera delivers frames for free).
    std::vector<FrameInput> inputs;
    inputs.reserve(cfg.frames);
    for (int i = 0; i < cfg.frames; ++i)
        inputs.push_back(frameInput(dataset, i));

    std::vector<LocalizationResult> results(cfg.frames);
    {
        FramePipeline pipeline(*loc, pcfg);
        for (auto &in : inputs)
            pipeline.submit(std::move(in));
        pipeline.flush();
        LocalizationResult res;
        while (pipeline.poll(res))
            results[res.frame_index] = std::move(res);
        out.stats = pipeline.stats();
    }

    std::vector<Pose> estimate, truth;
    for (int i = 0; i < cfg.frames; ++i) {
        FrameRecord rec;
        rec.res = std::move(results[i]);
        rec.truth = dataset.truthAt(i);
        estimate.push_back(rec.res.pose);
        truth.push_back(rec.truth);
        out.run.frames.push_back(std::move(rec));
    }
    out.run.error = computeTrajectoryError(estimate, truth);
    return out;
}

} // namespace bench
} // namespace edx
