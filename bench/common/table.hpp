/**
 * @file
 * Minimal fixed-width table printer for the bench binaries, plus the
 * "paper vs measured" row helper every experiment uses to report its
 * reproduction status.
 */
#pragma once

#include <string>
#include <vector>

namespace edx {
namespace bench {

/** A fixed-width console table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Adds one row (cells are printed as-is). */
    void addRow(std::vector<std::string> cells);

    /** Prints the table with a separator under the header. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with @p decimals digits. */
std::string fmt(double v, int decimals = 2);

/** Formats "measured (paper: reference)". */
std::string vsPaper(double measured, const std::string &paper_note,
                    int decimals = 2);

/** Prints a bench banner with the experiment id and description. */
void banner(const std::string &experiment, const std::string &what);

/** Prints a short note line (indented). */
void note(const std::string &text);

} // namespace bench
} // namespace edx
