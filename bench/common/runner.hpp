/**
 * @file
 * Shared bench harness: runs the localizer over synthetic datasets and
 * collects the per-frame records every table/figure bench consumes.
 *
 * All benches measure the *software* baseline by wall clock (the
 * LocalizationResult timing fields are real measurements) and derive
 * accelerated numbers from the hw models (see accel_model.hpp), exactly
 * the substitution documented in DESIGN.md Sec. 2.
 */
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace bench {

/** One localized frame with its ground truth. */
struct FrameRecord
{
    LocalizationResult res;
    Pose truth;
};

/** A full localization run in one backend mode. */
struct ModeRun
{
    SceneType scene = SceneType::IndoorUnknown;
    BackendMode mode = BackendMode::Slam;
    Platform platform = Platform::Drone;
    std::vector<FrameRecord> frames;
    TrajectoryError error;

    std::vector<double> frontendMs() const;
    std::vector<double> backendMs() const;
    std::vector<double> totalMs() const;

    /** Mean achieved software frame rate, frames/s. */
    double softwareFps() const;
};

/** Run parameters. */
struct RunConfig
{
    SceneType scene = SceneType::IndoorUnknown;
    Platform platform = Platform::Drone;
    int frames = 240;
    double fps = 10.0;
    uint64_t seed = 42;

    /**
     * Force a backend mode other than the scenario's preferred one
     * (Fig. 3 runs every applicable algorithm in every scenario).
     */
    std::optional<BackendMode> force_mode;

    /** Disable GPS fusion even when the scenario provides GPS. */
    bool force_gps_off = false;
};

/**
 * Runs the localizer per @p cfg. Builds the vocabulary and - for the
 * registration mode - the prior map on the fly. Registration map
 * quality follows the scenario (outdoor maps carry more drift noise;
 * see core/evaluation.hpp).
 */
ModeRun runLocalization(const RunConfig &cfg);

/**
 * Frame-count helper: returns @p dflt unless the EDX_BENCH_FRAMES
 * environment variable overrides it (used to shorten CI runs or extend
 * characterization runs toward the paper's 1800 frames).
 */
int benchFrames(int dflt);

/** True when a backend mode applies in a scenario (Fig. 2). */
bool modeApplies(BackendMode mode, SceneType scene);

} // namespace bench
} // namespace edx
