/**
 * @file
 * Shared bench harness: runs the localizer over synthetic datasets and
 * collects the per-frame records every table/figure bench consumes.
 *
 * All benches measure the *software* baseline by wall clock (the
 * LocalizationResult timing fields are real measurements) and derive
 * accelerated numbers from the hw models (see accel_model.hpp), exactly
 * the substitution documented in DESIGN.md Sec. 2.
 */
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/localizer.hpp"
#include "runtime/pipeline.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace bench {

/** One localized frame with its ground truth. */
struct FrameRecord
{
    LocalizationResult res;
    Pose truth;
};

/** A full localization run in one backend mode. */
struct ModeRun
{
    SceneType scene = SceneType::IndoorUnknown;
    BackendMode mode = BackendMode::Slam;
    Platform platform = Platform::Drone;
    std::vector<FrameRecord> frames;
    TrajectoryError error;

    std::vector<double> frontendMs() const;
    std::vector<double> backendMs() const;
    std::vector<double> totalMs() const;

    /** Mean achieved software frame rate, frames/s. */
    double softwareFps() const;
};

/** Run parameters. */
struct RunConfig
{
    SceneType scene = SceneType::IndoorUnknown;
    Platform platform = Platform::Drone;
    int frames = 240;
    double fps = 10.0;
    uint64_t seed = 42;

    /**
     * Force a backend mode other than the scenario's preferred one
     * (Fig. 3 runs every applicable algorithm in every scenario).
     */
    std::optional<BackendMode> force_mode;

    /** Disable GPS fusion even when the scenario provides GPS. */
    bool force_gps_off = false;

    /**
     * Optional hook over the derived LocalizerConfig (e.g. denser
     * keyframing for backend-heavy pipeline workloads).
     */
    std::function<void(LocalizerConfig &)> tune;
};

/**
 * Runs the localizer per @p cfg. Builds the vocabulary and - for the
 * registration mode - the prior map on the fly. Registration map
 * quality follows the scenario (outdoor maps carry more drift noise;
 * see core/evaluation.hpp).
 */
ModeRun runLocalization(const RunConfig &cfg);

/**
 * The offline products of one scenario run: the dataset plus the
 * assets every localization session of that scenario shares read-only
 * (trained vocabulary, prior map). Multi-session benches build these
 * once and serve N sessions over them.
 */
struct SessionAssets
{
    std::unique_ptr<Dataset> dataset;
    LocalizerConfig lcfg;
    // Heap-held so sessions' borrowed pointers stay valid even if the
    // SessionAssets object itself is moved around.
    std::unique_ptr<Vocabulary> voc;
    std::unique_ptr<Map> prior_map;

    const Vocabulary *vocPtr() const
    {
        return lcfg.mode != BackendMode::Vio ? voc.get() : nullptr;
    }
    const Map *priorPtr() const { return prior_map.get(); }

    /** A fresh initialized session over the shared assets. */
    std::unique_ptr<Localizer> makeSession() const;
};

/** Builds the dataset + shared assets for @p cfg. */
SessionAssets buildAssets(const RunConfig &cfg);

/** Owned-image input packet for frame @p i of @p d. */
FrameInput frameInput(const Dataset &d, int i);

/** One run through the staged runtime (runtime/pipeline.hpp). */
struct PipelinedRun
{
    ModeRun run;         //!< per-frame records, in submission order
    PipelineStats stats; //!< measured stage/wall accounting
};

/**
 * Runs the localizer through a FramePipeline with the given topology
 * (pcfg.stages = 1 sequential, 2 overlapped frontend/backend).
 */
PipelinedRun runPipelined(const RunConfig &cfg,
                          const PipelineConfig &pcfg);

/**
 * Frame-count helper: returns @p dflt unless the EDX_BENCH_FRAMES
 * environment variable overrides it (used to shorten CI runs or extend
 * characterization runs toward the paper's 1800 frames).
 */
int benchFrames(int dflt);

/** True when a backend mode applies in a scenario (Fig. 2). */
bool modeApplies(BackendMode mode, SceneType scene);

} // namespace bench
} // namespace edx
