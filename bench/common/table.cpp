#include "common/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace edx {
namespace bench {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        std::cout << "  ";
        for (size_t c = 0; c < cells.size(); ++c) {
            std::cout << cells[c]
                      << std::string(width[c] - cells[c].size() + 2, ' ');
        }
        std::cout << "\n";
    };

    print_row(headers_);
    size_t total = 2;
    for (size_t w : width)
        total += w + 2;
    std::cout << "  " << std::string(total - 2, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
    std::cout << "\n";
}

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
vsPaper(double measured, const std::string &paper_note, int decimals)
{
    std::ostringstream os;
    os << fmt(measured, decimals) << " (paper: " << paper_note << ")";
    return os.str();
}

void
banner(const std::string &experiment, const std::string &what)
{
    std::cout << "==================================================="
                 "=============================\n"
              << experiment << " - " << what << "\n"
              << "==================================================="
                 "=============================\n\n";
}

void
note(const std::string &text)
{
    std::cout << "  " << text << "\n";
}

} // namespace bench
} // namespace edx
