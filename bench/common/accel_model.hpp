/**
 * @file
 * The EUDOXUS system model: maps a measured software run onto the
 * accelerated system of the paper.
 *
 * Per frame:
 *  - the frontend runs entirely on the accelerator (Sec. V), with its
 *    latency derived from the frame's measured workload;
 *  - the backend runs on the host except its variation-dominating
 *    kernel (Projection / Kalman gain / Marginalization), which the
 *    runtime scheduler (Sec. VI-B) offloads when the regression-
 *    predicted CPU time exceeds the modeled accelerator+DMA time.
 *
 * The scheduler is trained on the first 25% of the frames and applied
 * to all of them (the paper evaluates on the remaining 75%; benches
 * report both splits where relevant).
 */
#pragma once

#include <vector>

#include "common/runner.hpp"
#include "hw/backend_accel.hpp"
#include "hw/config.hpp"
#include "hw/energy.hpp"
#include "hw/frontend_accel.hpp"
#include "sched/scheduler.hpp"

namespace edx {
namespace bench {

/** One frame pushed through the EUDOXUS system model. */
struct SystemFrame
{
    // Measured software baseline.
    double base_frontend_ms = 0.0;
    double base_backend_ms = 0.0;

    // Accelerated system.
    FrontendAccelTiming fe;        //!< frontend accelerator timing
    double acc_frontend_ms = 0.0;  //!< = fe.latencyMs()
    double acc_backend_ms = 0.0;   //!< backend with kernel offloading
    bool offloaded = false;
    bool oracle_offload = false;
    bool is_train = false;         //!< used to fit the scheduler model
    double kernel_size = 0.0;      //!< scheduler size driver
    double kernel_cpu_ms = 0.0;    //!< measured kernel CPU time
    double kernel_accel_ms = 0.0;  //!< modeled accel time (incl. DMA)
    double kernel_accel_compute_ms = 0.0;

    double baseTotalMs() const
    {
        return base_frontend_ms + base_backend_ms;
    }
    double accTotalMs() const
    {
        return acc_frontend_ms + acc_backend_ms;
    }
    /** Host compute in the accelerated system (backend remainder). */
    double accCpuMs() const { return acc_backend_ms; }
    /** Accelerator busy time (frontend + offloaded kernel compute). */
    double accBusyMs() const
    {
        return acc_frontend_ms +
               (offloaded ? kernel_accel_compute_ms : 0.0);
    }
};

/** A full run through the system model. */
struct SystemRun
{
    BackendMode mode = BackendMode::Slam;
    std::vector<SystemFrame> frames;
    double scheduler_r2 = 0.0; //!< regression fit quality (Sec. VII-F)
    int train_frames = 0;      //!< number of frames used for fitting

    std::vector<double> baseTotals() const;
    std::vector<double> accTotals() const;
    std::vector<double> baseBackends() const;
    std::vector<double> accBackends() const;

    /** Offload fraction over the evaluation (post-training) frames. */
    double offloadFraction() const;
};

/** The scheduler size driver + kernel time of one frame (per mode). */
struct KernelRecord
{
    double size = 0.0;
    double cpu_ms = 0.0;
    int state_dim = 0; //!< VIO only: covariance dimension
};

/** Extracts the mode's accelerated kernel record from a frame. */
KernelRecord kernelRecord(const LocalizationResult &res);

/** Modeled accelerator cost of the mode kernel for a record. */
AccelKernelCost kernelAccelCost(BackendMode mode, const KernelRecord &k,
                                const BackendAccelerator &accel);

/** Pushes a measured run through the EUDOXUS system model. */
SystemRun modelSystem(const ModeRun &run, const AcceleratorConfig &cfg);

/** Per-frame energy of the baseline and the accelerated system, J. */
struct EnergyPair
{
    double baseline_j = 0.0;
    double eudoxus_j = 0.0;
};

/** Mean per-frame energy over a modeled run (Fig. 19). */
EnergyPair meanFrameEnergy(const SystemRun &run,
                           const AcceleratorConfig &cfg);

} // namespace bench
} // namespace edx
