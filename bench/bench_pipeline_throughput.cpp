/**
 * @file
 * Throughput of the staged software runtime (runtime/pipeline.hpp):
 * sequential vs. 2-stage pipelined execution of the same localizer,
 * plus multi-session serving through the LocalizerPool.
 *
 * This is the software analogue of Fig. 18: overlapping frontend(N+1)
 * with backend(N) lifts steady-state throughput toward
 * 1 / max(frontend, backend) instead of 1 / (frontend + backend).
 * Measured wall-clock FPS depends on available cores (on a single
 * hardware thread the two stages time-share); the steady-state figures
 * derived from the recorded stage latencies give the core-independent
 * overlap bound, exactly how the paper derives its pipelined FPS.
 */
#include <iostream>
#include <thread>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "hw/backend_accel.hpp"
#include "math/stats.hpp"
#include "runtime/localizer_pool.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

struct Case
{
    std::string name;
    SceneType scene;
    BackendMode mode;
    std::function<void(LocalizerConfig &)> tune;
};

struct ModeReport
{
    std::string name;
    double seq_fps = 0.0;        //!< measured, stages = 1
    double piped_fps = 0.0;      //!< measured, stages = 2
    double seq_model_fps = 0.0;  //!< 1000 / mean(fe + be)
    double pipe_model_fps = 0.0; //!< 1000 / mean(max(fe, be))
};

ModeReport
runMode(const Case &c, int frames)
{
    RunConfig cfg;
    cfg.scene = c.scene;
    cfg.platform = Platform::Drone;
    cfg.frames = frames;
    cfg.force_mode = c.mode;
    cfg.tune = c.tune;

    PipelineConfig seq;
    seq.stages = 1;
    PipelinedRun s = runPipelined(cfg, seq);

    PipelineConfig piped;
    piped.stages = 2;
    PipelinedRun p = runPipelined(cfg, piped);

    ModeReport r;
    r.name = c.name;
    r.seq_fps = s.stats.fps();
    r.piped_fps = p.stats.fps();

    double sum_seq = 0.0, sum_max = 0.0;
    for (const FrameRecord &f : p.run.frames) {
        double fe = f.res.telemetry.frontend_stage_ms;
        double be = f.res.telemetry.backend_stage_ms;
        sum_seq += fe + be;
        sum_max += std::max(fe, be);
    }
    const double n = static_cast<double>(p.run.frames.size());
    r.seq_model_fps = sum_seq > 0.0 ? 1000.0 * n / sum_seq : 0.0;
    r.pipe_model_fps = sum_max > 0.0 ? 1000.0 * n / sum_max : 0.0;
    return r;
}

void
poolReport(int frames)
{
    // N independent robots over one shared vocabulary + prior map.
    RunConfig cfg;
    cfg.scene = SceneType::IndoorKnown;
    cfg.platform = Platform::Drone;
    cfg.frames = frames;
    cfg.force_mode = BackendMode::Registration;
    SessionAssets assets = buildAssets(cfg);

    const int kSessions = 4;
    const unsigned cores = std::thread::hardware_concurrency();

    for (int workers : {1, 2, 4}) {
        PoolConfig pcfg;
        pcfg.workers = workers;
        pcfg.queue_capacity = 16;
        LocalizerPool pool(pcfg);
        for (int sid = 0; sid < kSessions; ++sid)
            pool.addSession(assets.makeSession());

        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < frames; ++i)
            for (int sid = 0; sid < kSessions; ++sid)
                pool.submit(sid, frameInput(*assets.dataset, i));
        pool.drain();
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        long total = static_cast<long>(frames) * kSessions;
        std::cout << "  " << kSessions << " sessions, " << workers
                  << " worker(s): " << fmt(1000.0 * total / ms, 1)
                  << " frames/s aggregate (" << total << " frames in "
                  << fmt(ms, 0) << " ms)\n";
    }
    std::cout << "  (hardware threads available: " << cores << ")\n";

    // --- batched backend solves (SolveHub) ---------------------------
    // Same workload with batch_solves on: concurrent sessions' backend
    // kernels rendezvous into blocked executions. Poses stay
    // bit-identical (test-enforced); the observed batch sizes feed the
    // backend accelerator model realistic DMA amortization.
    {
        PoolConfig pcfg;
        pcfg.workers = 4;
        pcfg.queue_capacity = 16;
        pcfg.batch_solves = true;
        LocalizerPool pool(pcfg);
        for (int sid = 0; sid < kSessions; ++sid)
            pool.addSession(assets.makeSession());
        for (int i = 0; i < frames; ++i)
            for (int sid = 0; sid < kSessions; ++sid)
                pool.submit(sid, frameInput(*assets.dataset, i));
        pool.drain();
        SolveHubStats stats = pool.solveStats();

        std::cout << "\n  batched backend solves (4 sessions, "
                     "4 workers, shared prior map):\n";
        const char *names[3] = {"projection", "kalman-gain",
                                "marginalization"};
        for (int k = 0; k < 3; ++k) {
            if (stats.requests[k] == 0)
                continue;
            std::cout << "    " << names[k] << ": "
                      << stats.requests[k] << " requests in "
                      << stats.batches[k] << " batches (mean "
                      << fmt(stats.meanBatch(static_cast<BatchKernel>(k)),
                             2)
                      << ", max " << stats.max_batch[k] << ")\n";
        }

        // Accelerator-model amortization at the observed batch size:
        // the shared homogeneous point matrix X streams over the DMA
        // link once per batch instead of once per session.
        const int kProj = static_cast<int>(BatchKernel::Projection);
        const double n = std::max(
            1.0, stats.meanBatch(BatchKernel::Projection));
        const int m = assets.prior_map->pointCount();
        BackendAccelerator accel(AcceleratorConfig::car());
        AccelKernelCost per = accel.projection(m);
        const double x_bytes = 4.0 * 8.0 * m;
        const double rest_bytes = 12 * 8.0 + 2.0 * 8.0 * m;
        const double batched_dma =
            accel.dmaMs(x_bytes + n * rest_bytes) / n;
        std::cout << "    accel model (EDX-CAR, M=" << m
                  << "): projection DMA " << fmt(per.dma_ms, 3)
                  << " ms/session solo vs "
                  << fmt(batched_dma, 3)
                  << " ms/session at the observed mean batch of "
                  << fmt(n, 2) << " (X streamed once per batch)\n";
        if (stats.requests[kProj] == 0)
            std::cout << "    (no projection requests recorded)\n";
    }
}

} // namespace

int
main()
{
    banner("pipeline", "staged-runtime throughput: sequential vs "
                       "pipelined, single- and multi-session");

    const int frames = benchFrames(40);
    // Default configurations plus a backend-heavy SLAM deployment
    // (per-frame keyframing, the production mapping cadence): the
    // default synthetic workload is frontend-bound (Fig. 5), so the
    // balanced case is where pipelining pays.
    const std::vector<Case> cases = {
        {"registration", SceneType::IndoorKnown,
         BackendMode::Registration, nullptr},
        {"vio", SceneType::OutdoorUnknown, BackendMode::Vio, nullptr},
        {"slam", SceneType::IndoorUnknown, BackendMode::Slam, nullptr},
        {"slam (dense keyframing)", SceneType::IndoorUnknown,
         BackendMode::Slam,
         [](LocalizerConfig &lcfg) {
             lcfg.mapping.keyframe_interval = 1;
             lcfg.mapping.window_size = 16;
         }},
    };

    Table t({"mode", "seq fps", "piped fps", "seq fps (model)",
             "piped fps (model)", "overlap speedup"});
    double best_speedup = 0.0;
    for (const Case &c : cases) {
        ModeReport r = runMode(c, frames);
        double speedup =
            r.seq_model_fps > 0.0 ? r.pipe_model_fps / r.seq_model_fps : 0.0;
        best_speedup = std::max(best_speedup, speedup);
        t.addRow({r.name, fmt(r.seq_fps, 1), fmt(r.piped_fps, 1),
                  fmt(r.seq_model_fps, 1), fmt(r.pipe_model_fps, 1),
                  fmt(speedup, 2) + "x"});
    }
    t.print();
    note("overlap speedup = steady-state pipelined / sequential fps "
         "from the recorded stage latencies (core-count independent); "
         "measured fps additionally reflects " +
         std::to_string(std::thread::hardware_concurrency()) +
         " available hardware thread(s)");
    std::cout << "best overlap speedup: " << fmt(best_speedup, 2)
              << "x (2-stage pipeline)\n\n";

    std::cout << "LocalizerPool multi-session serving "
                 "(registration, shared vocabulary + map):\n";
    poolReport(std::max(frames / 4, 8));
    return 0;
}
