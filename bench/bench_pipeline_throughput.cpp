/**
 * @file
 * Throughput of the staged software runtime (runtime/pipeline.hpp):
 * sequential vs. fixed 2-stage vs. planner-placed N-stage execution of
 * the same localizer, plus multi-session serving through the
 * LocalizerPool with and without the gang window.
 *
 * This is the software analogue of Fig. 18 generalized to N stages:
 * overlapping the sub-stages (FE | SM | TM | solve | finish) lifts
 * steady-state throughput toward 1 / max(stage) instead of 1 / sum.
 * Measured wall-clock FPS depends on available cores (on few hardware
 * threads the stages time-share and their measured spans inflate); the
 * steady-state figures derived from the *uncontended* sequential run's
 * sub-stage latencies give the core-independent bound, exactly how the
 * paper derives its pipelined FPS. Both are reported.
 *
 * Doubles as the CI perf smoke: when EDX_PIPELINE_MS_CEILING is set,
 * the planned-topology steady-state period of the dense-keyframing
 * SLAM car scene must stay below it or the bench exits non-zero.
 * EDX_QOS_FPS_FLOOR gates the safety-critical session's throughput
 * retention under overload (elastic auto-sized pool, no hand-tuned
 * worker count), and EDX_ADAPT_FPS_FLOOR gates the self-repipelining
 * leg: a mid-run VIO -> dense-keyframing SLAM shift must recover the
 * given fraction of the fresh statically planned fps via online
 * re-plan + epoch cut swaps alone. EDX_MAP_PUBLISH_MS_CEILING gates
 * the live shared-map leg: SLAM surveyors and registration readers
 * share one MapService, and the reader-visible epoch-swap latency
 * must stay a pointer copy while merges run in the background.
 */
#include <cstdlib>
#include <iostream>
#include <thread>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "hw/backend_accel.hpp"
#include "math/cpu_features.hpp"
#include "math/stats.hpp"
#include "runtime/localizer_pool.hpp"
#include "runtime/placement.hpp"
#include "runtime/replan.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

struct Case
{
    std::string name;
    SceneType scene;
    Platform platform;
    BackendMode mode;
    std::function<void(LocalizerConfig &)> tune;
};

/**
 * Steady-state period of topology @p cuts over a telemetry stream.
 * The warmup frames (map bootstrap, cold caches — a backend-light
 * regime no deployment runs in) are skipped: the pipelined-throughput
 * claim is about the steady state, where the placement matters.
 */
double
modelPeriodMs(const std::vector<FrameTelemetry> &frames, BackendMode mode,
              const std::vector<int> &cuts)
{
    if (frames.empty())
        return 0.0;
    const size_t warmup =
        std::min(frames.size() - 1, std::max<size_t>(4, frames.size() / 5));
    double sum = 0.0;
    for (size_t i = warmup; i < frames.size(); ++i) {
        NodeProfile f;
        for (int n = 0; n < kPipelineNodes; ++n)
            f.node_ms[n] = pipeNodeMs(frames[i], mode, n);
        sum += PlacementPlanner::periodFor(f, cuts);
    }
    return sum / static_cast<double>(frames.size() - warmup);
}

struct ModeReport
{
    std::string name;
    StagePlan plan;
    double seq_ms = 0.0;     //!< model, no overlap
    double fixed2_ms = 0.0;  //!< model, cuts = {2}
    double planned_ms = 0.0; //!< model, planner cuts
    double seq_fps = 0.0;    //!< measured, stages = 1
    double fixed2_fps = 0.0; //!< measured, stages = 2
    double planned_fps = 0.0; //!< measured, planner topology
    PipelineStats planned_stats;
};

ModeReport
runMode(const Case &c, int frames)
{
    RunConfig cfg;
    cfg.scene = c.scene;
    cfg.platform = c.platform;
    cfg.frames = frames;
    cfg.force_mode = c.mode;
    cfg.tune = c.tune;

    PipelineConfig seq;
    seq.stages = 1;
    PipelinedRun s = runPipelined(cfg, seq);

    std::vector<FrameTelemetry> tel;
    tel.reserve(s.run.frames.size());
    for (const FrameRecord &f : s.run.frames)
        tel.push_back(f.res.telemetry);

    ModeReport r;
    r.name = c.name;
    // Plan from the steady-state window too (same warmup rule as
    // modelPeriodMs): the bootstrap frames would bias the fits toward
    // a backend-light regime.
    const size_t warmup =
        std::min(tel.size() - 1, std::max<size_t>(4, tel.size() / 5));
    std::vector<FrameTelemetry> steady(tel.begin() + warmup, tel.end());
    r.plan =
        PlacementPlanner::plan(PlacementPlanner::profileFromTelemetry(
            steady, c.mode));

    // Sequential: period = sum of all sub-stages (no cuts -> one
    // segment). Fixed 2-stage: the classic frontend|backend split.
    r.seq_ms = modelPeriodMs(tel, c.mode, {});
    r.fixed2_ms = modelPeriodMs(tel, c.mode, {2});
    r.planned_ms = modelPeriodMs(tel, c.mode, r.plan.cuts);
    r.seq_fps = s.stats.fps();

    PipelineConfig fixed2;
    fixed2.stages = 2;
    r.fixed2_fps = runPipelined(cfg, fixed2).stats.fps();

    PipelineConfig planned;
    planned.cuts = r.plan.cuts;
    planned.stages = static_cast<int>(r.plan.cuts.size()) + 1;
    PipelinedRun p = runPipelined(cfg, planned);
    r.planned_fps = p.stats.fps();
    r.planned_stats = p.stats;
    return r;
}

void
printPlannedBusy(const ModeReport &r)
{
    const PipelineStats &st = r.planned_stats;
    if (st.frames == 0)
        return;
    std::cout << "    " << r.name << " [" << r.plan.describe()
              << "] per-stage busy ms/frame:";
    for (int s = 0; s < st.stages; ++s)
        std::cout << " "
                  << fmt(st.stage_busy_ms[s] / st.frames, 1);
    std::cout << "  (planner predicted:";
    for (double ms : r.plan.stage_ms)
        std::cout << " " << fmt(ms, 1);
    std::cout << ")\n";
}

double
poolReport(int frames)
{
    // N independent robots over one shared vocabulary + prior map.
    RunConfig cfg;
    cfg.scene = SceneType::IndoorKnown;
    cfg.platform = Platform::Drone;
    cfg.frames = frames;
    cfg.force_mode = BackendMode::Registration;
    SessionAssets assets = buildAssets(cfg);

    const int kSessions = 4;
    const unsigned cores = std::thread::hardware_concurrency();

    for (int workers : {1, 2, 4}) {
        PoolConfig pcfg;
        pcfg.workers = workers;
        pcfg.queue_capacity = 16;
        LocalizerPool pool(pcfg);
        for (int sid = 0; sid < kSessions; ++sid)
            pool.addSession(assets.makeSession());

        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < frames; ++i)
            for (int sid = 0; sid < kSessions; ++sid)
                pool.submit(sid, frameInput(*assets.dataset, i));
        pool.drain();
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        long total = static_cast<long>(frames) * kSessions;
        std::cout << "  " << kSessions << " sessions, " << workers
                  << " worker(s): " << fmt(1000.0 * total / ms, 1)
                  << " frames/s aggregate (" << total << " frames in "
                  << fmt(ms, 0) << " ms)\n";
    }
    std::cout << "  (hardware threads available: " << cores << ")\n";

    // --- batched backend solves: opportunistic vs gang-aligned -------
    // batch_solves alone groups whoever happens to rendezvous; the
    // gang window additionally aligns the sessions' backend stages so
    // the hub observes batch sizes near the session count.
    double gang_mean_batch = 0.0;
    for (bool gang : {false, true}) {
        PoolConfig pcfg;
        pcfg.workers = kSessions; // alignment width = min(W, sessions)
        pcfg.queue_capacity = 16;
        pcfg.batch_solves = true;
        pcfg.gang_window = gang;
        LocalizerPool pool(pcfg);
        for (int sid = 0; sid < kSessions; ++sid)
            pool.addSession(assets.makeSession());
        for (int i = 0; i < frames; ++i)
            for (int sid = 0; sid < kSessions; ++sid)
                pool.submit(sid, frameInput(*assets.dataset, i));
        pool.drain();
        SolveHubStats stats = pool.solveStats();

        std::cout << "\n  batched backend solves ("
                  << (gang ? "gang window" : "opportunistic") << ", "
                  << kSessions << " sessions, " << kSessions
                  << " workers, shared prior map):\n";
        const char *names[3] = {"projection", "kalman-gain",
                                "marginalization"};
        for (int k = 0; k < 3; ++k) {
            if (stats.requests[k] == 0)
                continue;
            std::cout << "    " << names[k] << ": "
                      << stats.requests[k] << " requests in "
                      << stats.batches[k] << " batches (mean "
                      << fmt(stats.meanBatch(static_cast<BatchKernel>(k)),
                             2)
                      << ", max " << stats.max_batch[k]
                      << ")  size histogram:";
            for (int n = 1; n <= SolveHubStats::kHistMax; ++n) {
                if (stats.batch_hist[k][n] == 0)
                    continue;
                std::cout << " " << n
                          << (n == SolveHubStats::kHistMax ? "+" : "")
                          << "x" << stats.batch_hist[k][n];
            }
            std::cout << "\n";
        }
        if (gang) {
            gang_mean_batch = stats.meanBatch(BatchKernel::Projection);
            std::cout << "    gang mean batch "
                      << fmt(gang_mean_batch, 2) << " = "
                      << fmt(gang_mean_batch / kSessions, 2) << "x of "
                      << kSessions << " sessions (target >= 0.8x)\n";

            // Accelerator-model amortization at the observed batch
            // size: the shared homogeneous point matrix X streams over
            // the DMA link once per batch instead of once per session.
            const double n = std::max(1.0, gang_mean_batch);
            const int m = assets.prior_map->pointCount();
            BackendAccelerator accel(AcceleratorConfig::car());
            AccelKernelCost per = accel.projection(m);
            const double x_bytes = 4.0 * 8.0 * m;
            const double rest_bytes = 12 * 8.0 + 2.0 * 8.0 * m;
            const double batched_dma =
                accel.dmaMs(x_bytes + n * rest_bytes) / n;
            std::cout << "    accel model (EDX-CAR, M=" << m
                      << "): projection DMA " << fmt(per.dma_ms, 3)
                      << " ms/session solo vs " << fmt(batched_dma, 3)
                      << " ms/session at the observed mean batch of "
                      << fmt(n, 2) << " (X streamed once per batch)\n";
        }
    }
    return gang_mean_batch;
}

// --- QoS admission control under overload ------------------------------

struct QosRun
{
    double sc_fps = 0.0; //!< safety-critical session throughput
    PoolStats stats;
};

/**
 * Serves one safety-critical session (plus @p best_effort best-effort
 * sessions when contended) through an oversubscribed pool and measures
 * the safety-critical session's completion rate. Inputs are pre-built
 * so producer-side dataset rendering never skews the wall clock.
 */
QosRun
runQosPool(const SessionAssets &assets, int frames, int best_effort,
           bool gang)
{
    PoolConfig pcfg;
    // Auto-sized: the pool starts minimal and elastic scaling grows it
    // from observed queue waits — no hand-tuned worker count. The
    // reservation stays a QoS *policy* choice, and it only isolates
    // the safety-critical stream when a second hardware thread exists
    // to run it; on a single-core host extra workers just time-share
    // the core under the safety frames.
    const bool multi_core = std::thread::hardware_concurrency() >= 2;
    pcfg.workers = 1;
    pcfg.elastic_workers = true;
    pcfg.grow_wait_ms = 1.0; // oversubscription shows as queue wait
    pcfg.reserved_workers = multi_core ? 1 : 0;
    pcfg.replan = true; // per-session advisory re-planning counters
    pcfg.replan_cfg.window = 16; // short runs: tick within a few frames
    pcfg.replan_cfg.tick_frames = 4;
    pcfg.replan_cfg.min_mode_frames = 4;
    pcfg.queue_capacity = 16;
    pcfg.best_effort_capacity = 2; // shallow: sheds instead of queueing
    pcfg.gang_window = gang;
    if (gang)
        pcfg.gang_timeout_ms = 10.0; // waves never wait on laggards long
    LocalizerPool pool(pcfg);

    SessionConfig sc_cfg;
    sc_cfg.qos = QosClass::SafetyCritical;
    const int sc = pool.addSession(assets.makeSession(), sc_cfg);
    std::vector<int> be;
    for (int k = 0; k < best_effort; ++k) {
        SessionConfig be_cfg;
        be_cfg.qos = QosClass::BestEffort;
        if (k == 0)
            be_cfg.frame_deadline_ms = 50.0; // one robot sheds stale too
        be.push_back(pool.addSession(assets.makeSession(), be_cfg));
    }

    std::vector<std::vector<FrameInput>> inputs(1 + best_effort);
    for (int s = 0; s < 1 + best_effort; ++s)
        for (int i = 0; i < frames; ++i)
            inputs[s].push_back(frameInput(*assets.dataset, i));

    // Consumer timestamps the safety-critical completions while the
    // producer below keeps the pool oversubscribed.
    std::chrono::steady_clock::time_point t_last;
    int sc_done = 0;
    std::thread consumer([&] {
        PoolResult pr;
        while (pool.awaitResult(pr)) {
            if (pr.session_id == sc) {
                ++sc_done;
                t_last = std::chrono::steady_clock::now();
            }
        }
    });

    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < frames; ++i) {
        pool.submit(sc, std::move(inputs[0][i]));
        for (int k = 0; k < best_effort; ++k)
            pool.submit(be[k], std::move(inputs[1 + k][i]));
    }
    pool.drain();
    pool.shutdown(); // ends the consumer's awaitResult loop
    consumer.join();

    QosRun r;
    const double ms =
        std::chrono::duration<double, std::milli>(t_last - t0).count();
    r.sc_fps = ms > 0.0 && sc_done == frames
                   ? 1000.0 * frames / ms
                   : 0.0;
    r.stats = pool.stats();
    return r;
}

/** @return the worst contended/uncontended safety-critical fps ratio. */
double
qosReport(const SessionAssets &assets, int frames)
{
    const int kBestEffort = 3;
    const bool multi_core = std::thread::hardware_concurrency() >= 2;
    double worst_ratio = 1.0;
    for (bool gang : {false, true}) {
        QosRun solo = runQosPool(assets, frames, 0, gang);
        QosRun load = runQosPool(assets, frames, kBestEffort, gang);
        const double ratio =
            solo.sc_fps > 0.0 ? load.sc_fps / solo.sc_fps : 0.0;
        worst_ratio = std::min(worst_ratio, ratio);

        std::cout << "\n  QoS overload (" << (1 + kBestEffort)
                  << " sessions, elastic workers ended at "
                  << load.stats.workers << " (" << load.stats.workers_grown
                  << " grown, " << load.stats.workers_retired
                  << " retired), " << (multi_core ? 1 : 0)
                  << " reserved, "
                  << (gang ? "gang window 10 ms" : "gang off")
                  << "): safety-critical " << fmt(load.sc_fps, 1)
                  << " fps vs " << fmt(solo.sc_fps, 1)
                  << " uncontended = " << fmt(ratio, 2)
                  << "x (target >= 0.9x)\n";
        std::cout << "    adaptation: " << load.stats.replans
                  << " replan tick(s), " << load.stats.swaps_applied
                  << " plan update(s), " << load.stats.swaps_rejected
                  << " held by hysteresis\n";
        std::cout << "    session        class             sub  done "
                     "drop(old) drop(ddl)  wait mean/max ms\n";
        for (size_t s = 0; s < load.stats.sessions.size(); ++s) {
            const SessionPoolStats &st = load.stats.sessions[s];
            const std::string cls = qosClassName(st.qos);
            const size_t pad = cls.size() < 18 ? 18 - cls.size() : 1;
            std::cout << "    " << s << "              " << cls
                      << std::string(pad, ' ')
                      << st.submitted << "    " << st.completed
                      << "      " << st.dropped_oldest << "       "
                      << st.dropped_deadline << "       "
                      << fmt(st.meanQueueWaitMs(), 1) << " / "
                      << fmt(st.queue_wait_max_ms, 1) << "\n";
        }
    }
    return worst_ratio;
}

// --- live shared-map service: multi-session collaborative mapping -----

struct SharedMapReport
{
    double agg_fps = 0.0;           //!< pool aggregate, all sessions
    double worst_acquire_ms = 0.0;  //!< worst per-session epoch acquire
    long contributions = 0;         //!< batches pushed by the surveyors
    uint64_t reader_epoch = 0;      //!< epoch the readers ended on
    MapServiceStats svc;
};

/**
 * A mixed fleet over one live shared map: SLAM surveyors contribute
 * retired keyframes to a MapService while registration robots adopt
 * the published copy-on-write epochs at their solve boundaries. The
 * quantity under test is the reader-visible cost of sharing: the epoch
 * swap (svc max_publish_ms) and the per-solve epoch acquire, both of
 * which the service bounds to a pointer copy no matter how heavy the
 * background merge is.
 */
SharedMapReport
sharedMapReport(int frames)
{
    RunConfig reg_cfg;
    reg_cfg.scene = SceneType::IndoorKnown;
    reg_cfg.platform = Platform::Drone;
    reg_cfg.frames = frames;
    reg_cfg.force_mode = BackendMode::Registration;
    SessionAssets reg = buildAssets(reg_cfg);

    RunConfig slam_cfg;
    slam_cfg.scene = SceneType::IndoorUnknown;
    slam_cfg.platform = Platform::Drone;
    slam_cfg.frames = frames;
    slam_cfg.force_mode = BackendMode::Slam;
    slam_cfg.tune = [](LocalizerConfig &l) {
        l.mapping.keyframe_interval = 3;
        l.mapping.window_size = 4; // retire (= contribute) eagerly
    };
    SessionAssets slam = buildAssets(slam_cfg);

    MapService svc(reg.voc.get(), reg.dataset->rig());
    svc.seed(*reg.prior_map);
    svc.flush();

    PoolConfig pcfg;
    pcfg.workers = 4;
    pcfg.queue_capacity = 16;
    pcfg.map_service = &svc;
    LocalizerPool pool(pcfg);
    const int kSurveyors = 2, kReaders = 2;
    std::vector<int> sids;
    for (int k = 0; k < kSurveyors; ++k)
        sids.push_back(pool.addSession(slam.makeSession()));
    for (int k = 0; k < kReaders; ++k)
        sids.push_back(pool.addSession(reg.makeSession()));

    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < frames; ++i) {
        for (int k = 0; k < kSurveyors; ++k)
            pool.submit(sids[k], frameInput(*slam.dataset, i));
        for (int k = 0; k < kReaders; ++k)
            pool.submit(sids[kSurveyors + k],
                        frameInput(*reg.dataset, i));
    }
    pool.drain();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    SharedMapReport r;
    const long total = static_cast<long>(frames) * (kSurveyors + kReaders);
    r.agg_fps = ms > 0.0 ? 1000.0 * total / ms : 0.0;
    PoolStats st = pool.stats();
    r.svc = st.map_service;
    for (const SessionPoolStats &ss : st.sessions) {
        r.worst_acquire_ms =
            std::max(r.worst_acquire_ms, ss.epoch_acquire_max_ms);
        r.contributions += ss.map_contributions;
    }
    for (int k = 0; k < kReaders; ++k)
        r.reader_epoch = std::max(
            r.reader_epoch, st.sessions[sids[kSurveyors + k]].map_epoch);
    return r;
}

// --- self-repipelining under a mid-run workload shift ------------------

struct AdaptReport
{
    double adaptive_fps = 0.0; //!< recovered post-shift fps, measured
    double static_fps = 0.0;   //!< fresh statically planned run, measured
    double ratio = 0.0;        //!< adaptive / static
    long swaps = 0;            //!< epochs swapped in mid-run
    std::vector<int> final_cuts;
    ReplanStats replan;
};

/**
 * Mid-run workload shift: one session starts as VIO on the classic
 * frontend|backend split (the right placement for the frontend-bound
 * VIO workload) and switches to dense-keyframing SLAM mid-run via
 * Localizer::requestModeSwitch() — no restart, frames keep flowing.
 * With a SessionReplanner armed the pipeline refits its per-node
 * profile from live telemetry and swaps the cut list between frames,
 * so post-shift throughput recovers toward what a fresh, statically
 * planned pipeline achieves on the new workload.
 *
 * The recovered fps is measured over the second half of the post-shift
 * window: the first half holds the re-plan transient (the window must
 * fill with SLAM frames before a tick can refit), which is the price
 * of adaptation, not its steady state.
 */
AdaptReport
adaptReport(int frames)
{
    const int phase1 = std::max(frames / 2, 16);
    const int phase2 = std::max(frames, 32);
    const int total = phase1 + phase2;

    RunConfig cfg;
    cfg.scene = SceneType::IndoorUnknown;
    cfg.platform = Platform::Car;
    cfg.frames = total;
    cfg.force_mode = BackendMode::Slam; // assets: vocabulary for SLAM
    cfg.tune = [](LocalizerConfig &l) {
        l.mapping.keyframe_interval = 1; // dense keyframing post-shift
    };
    SessionAssets assets = buildAssets(cfg);

    // The adaptive session boots in VIO over the same assets (the
    // vocabulary only matters once the switch lands).
    LocalizerConfig vio_cfg = assets.lcfg;
    vio_cfg.mode = BackendMode::Vio;
    vio_cfg.use_gps = false;
    Localizer loc(vio_cfg, assets.dataset->rig(), assets.voc.get(),
                  nullptr);
    loc.initialize(assets.dataset->truthAt(0), 0.0,
                   assets.dataset->trajectory().velocityAt(0.0));

    ReplanConfig rcfg; // bench cadence: adapt within ~a dozen frames
    rcfg.window = 24;
    rcfg.tick_frames = 8;
    rcfg.min_mode_frames = 6;
    SessionReplanner replanner(rcfg);

    PipelineConfig pcfg;
    pcfg.cuts = {2}; // classic split, planned for the VIO phase
    pcfg.replanner = &replanner;

    std::vector<FrameInput> inputs;
    inputs.reserve(total);
    for (int i = 0; i < total; ++i)
        inputs.push_back(frameInput(*assets.dataset, i));

    std::vector<std::chrono::steady_clock::time_point> done(total);
    AdaptReport r;
    {
        FramePipeline pipe(loc, pcfg);
        std::thread consumer([&] {
            LocalizationResult res;
            while (pipe.awaitResult(res))
                done[res.frame_index] = std::chrono::steady_clock::now();
        });
        for (int i = 0; i < total; ++i) {
            if (i == phase1)
                loc.requestModeSwitch(BackendMode::Slam,
                                      &assets.lcfg.mapping);
            pipe.submit(std::move(inputs[i]));
        }
        pipe.close();
        consumer.join();
        r.swaps = pipe.stats().cut_swaps;
        r.final_cuts = pipe.cuts();
    }
    r.replan = replanner.stats();

    const int recovered_from = phase1 + phase2 / 2;
    const int recovered = total - recovered_from;
    const double recovered_ms =
        std::chrono::duration<double, std::milli>(
            done[total - 1] - done[recovered_from - 1])
            .count();
    r.adaptive_fps =
        recovered_ms > 0.0 ? 1000.0 * recovered / recovered_ms : 0.0;

    // The yardstick: a fresh session statically planned for the
    // post-shift workload (sequential run -> steady-state telemetry ->
    // planner cuts -> measured planned run), exactly the offline flow
    // the adaptive path has to match online.
    RunConfig scfg = cfg;
    scfg.frames = phase2;
    PipelineConfig seq;
    seq.stages = 1;
    PipelinedRun s = runPipelined(scfg, seq);
    std::vector<FrameTelemetry> tel;
    tel.reserve(s.run.frames.size());
    for (const FrameRecord &f : s.run.frames)
        tel.push_back(f.res.telemetry);
    const size_t warmup =
        std::min(tel.size() - 1, std::max<size_t>(4, tel.size() / 5));
    std::vector<FrameTelemetry> steady(tel.begin() + warmup, tel.end());
    StagePlan plan = PlacementPlanner::plan(
        PlacementPlanner::profileFromTelemetry(steady, BackendMode::Slam));
    PipelineConfig planned;
    planned.cuts = plan.cuts;
    planned.stages = static_cast<int>(plan.cuts.size()) + 1;
    r.static_fps = runPipelined(scfg, planned).stats.fps();
    r.ratio = r.static_fps > 0.0 ? r.adaptive_fps / r.static_fps : 0.0;
    return r;
}

} // namespace

int
main()
{
    banner("pipeline",
           "staged-runtime throughput: sequential vs fixed 2-stage vs "
           "planner-placed N-stage, single- and multi-session");
    note("SIMD tier: " + simdTierSummary());

    const int frames = benchFrames(40);
    // Default configurations plus backend-heavy dense-keyframing SLAM
    // deployments (per-frame keyframing at the default BA window, the
    // production mapping cadence) on both platform geometries: the
    // default synthetic workload is frontend-bound (Fig. 5), so the
    // balanced cases are where placement pays.
    auto dense = [](LocalizerConfig &lcfg) {
        lcfg.mapping.keyframe_interval = 1;
    };
    const std::vector<Case> cases = {
        {"registration", SceneType::IndoorKnown, Platform::Drone,
         BackendMode::Registration, nullptr},
        {"vio", SceneType::OutdoorUnknown, Platform::Drone,
         BackendMode::Vio, nullptr},
        {"slam", SceneType::IndoorUnknown, Platform::Drone,
         BackendMode::Slam, nullptr},
        {"slam dense-KF (drone)", SceneType::IndoorUnknown,
         Platform::Drone, BackendMode::Slam, dense},
        {"slam dense-KF (car)", SceneType::IndoorUnknown, Platform::Car,
         BackendMode::Slam, dense},
    };

    Table t({"mode", "planned cuts", "seq fps", "2-stage fps",
             "planned fps", "speedup vs 2-stage"});
    std::vector<ModeReport> reports;
    double car_dense_period = 0.0, car_dense_speedup = 0.0;
    for (const Case &c : cases) {
        ModeReport r = runMode(c, frames);
        double seq_fps = r.seq_ms > 0 ? 1000.0 / r.seq_ms : 0.0;
        double two_fps = r.fixed2_ms > 0 ? 1000.0 / r.fixed2_ms : 0.0;
        double plan_fps = r.planned_ms > 0 ? 1000.0 / r.planned_ms : 0.0;
        double speedup =
            r.planned_ms > 0 ? r.fixed2_ms / r.planned_ms : 0.0;
        if (c.name == "slam dense-KF (car)") {
            car_dense_period = r.planned_ms;
            car_dense_speedup = speedup;
        }
        t.addRow({r.name, r.plan.describe(), fmt(seq_fps, 1),
                  fmt(two_fps, 1), fmt(plan_fps, 1),
                  fmt(speedup, 2) + "x"});
        reports.push_back(std::move(r));
    }
    t.print();
    note("model fps from the uncontended sequential run's sub-stage "
         "latencies (core-count independent, the paper's derivation); "
         "measured wall fps additionally reflects " +
         std::to_string(std::thread::hardware_concurrency()) +
         " available hardware thread(s)");

    std::cout << "  measured wall fps (seq / 2-stage / planned):\n";
    for (const ModeReport &r : reports)
        std::cout << "    " << r.name << ": " << fmt(r.seq_fps, 1)
                  << " / " << fmt(r.fixed2_fps, 1) << " / "
                  << fmt(r.planned_fps, 1) << "\n";

    std::cout << "  per-stage busy (measured wall, inflated when stages "
                 "time-share cores):\n";
    for (const ModeReport &r : reports)
        printPlannedBusy(r);

    std::cout << "\n  dense-keyframing car scene: planned topology "
              << (car_dense_speedup > 0 ? fmt(car_dense_speedup, 2)
                                        : std::string("?"))
              << "x over the fixed frontend|backend split (target "
                 ">= 1.5x)\n\n";

    std::cout << "LocalizerPool multi-session serving "
                 "(registration, shared vocabulary + map):\n";
    double gang_mean = poolReport(std::max(frames / 4, 8));

    // --- QoS admission control under overload ------------------------
    std::cout << "\nLocalizerPool QoS under overload (oversubscribed "
                 "mixed-class pool, registration):\n";
    RunConfig qos_cfg;
    qos_cfg.scene = SceneType::IndoorKnown;
    qos_cfg.platform = Platform::Drone;
    qos_cfg.frames = std::max(frames / 4, 8);
    qos_cfg.force_mode = BackendMode::Registration;
    SessionAssets qos_assets = buildAssets(qos_cfg);
    double qos_ratio = qosReport(qos_assets, qos_cfg.frames);

    // --- live shared-map service: collaborative mapping --------------
    std::cout << "\nLive shared-map service (2 SLAM surveyors + 2 "
                 "registration readers, one MapService):\n";
    SharedMapReport shared = sharedMapReport(std::max(frames / 2, 16));
    std::cout << "  aggregate " << fmt(shared.agg_fps, 1)
              << " frames/s; " << shared.contributions
              << " contribution batch(es), "
              << shared.svc.keyframes_ingested << " keyframes merged in "
              << shared.svc.merges << " pass(es), "
              << static_cast<unsigned long long>(shared.svc.epochs_published)
              << " epoch(s) published (readers ended on epoch "
              << static_cast<unsigned long long>(shared.reader_epoch)
              << ")\n";
    std::cout << "  reader-visible costs: worst epoch swap "
              << fmt(shared.svc.max_publish_ms, 3)
              << " ms, worst epoch acquire "
              << fmt(shared.worst_acquire_ms, 3)
              << " ms (background merge worst "
              << fmt(shared.svc.max_merge_ms, 1) << " ms)\n";

    // --- self-repipelining: mid-run workload shift -------------------
    std::cout << "\nSelf-repipelining under a mid-run workload shift "
                 "(VIO -> dense-keyframing SLAM, car):\n";
    AdaptReport adapt = adaptReport(frames);
    std::cout << "  recovered post-shift fps " << fmt(adapt.adaptive_fps, 1)
              << " vs " << fmt(adapt.static_fps, 1)
              << " statically planned fresh = " << fmt(adapt.ratio, 2)
              << "x (target >= 0.9x)\n";
    std::cout << "  " << adapt.swaps << " mid-run cut swap(s), final ["
              << describeCuts(adapt.final_cuts) << "]; replanner: "
              << adapt.replan.observed << " frames observed, "
              << adapt.replan.ticks << " tick(s), "
              << adapt.replan.proposals << " proposal(s), "
              << adapt.replan.held << " held\n";

    // --- CI perf smoke ---------------------------------------------------
    if (const char *ceiling = std::getenv("EDX_PIPELINE_MS_CEILING")) {
        const double limit = std::atof(ceiling);
        bool ok = true;
        if (limit > 0.0 && car_dense_period > limit) {
            std::cerr << "PERF REGRESSION: planned pipeline period "
                      << car_dense_period
                      << " ms (dense-KF car) exceeds ceiling " << limit
                      << " ms\n";
            ok = false;
        }
        if (car_dense_speedup < 1.2) {
            std::cerr << "PERF REGRESSION: planned topology speedup "
                      << car_dense_speedup
                      << "x over the fixed 2-stage split fell below "
                         "1.2x\n";
            ok = false;
        }
        if (gang_mean < 2.0) {
            std::cerr << "PERF REGRESSION: gang-window mean batch "
                      << gang_mean << " fell below 2.0 (4 sessions)\n";
            ok = false;
        }
        if (!ok)
            return 1;
        std::cout << "\nperf smoke: planned period "
                  << fmt(car_dense_period, 1) << " ms <= " << limit
                  << " ms ceiling, speedup "
                  << fmt(car_dense_speedup, 2) << "x, gang mean batch "
                  << fmt(gang_mean, 2) << "\n";
    }

    // --- CI QoS smoke: the safety-critical session must hold its
    // uncontended throughput under overload. The env value is the
    // minimum acceptable contended/uncontended fps ratio (the
    // acceptance target is 0.9; CI gates a little below it so only
    // real admission-control regressions fail, never runner noise).
    if (const char *floor = std::getenv("EDX_QOS_FPS_FLOOR")) {
        const double limit = std::atof(floor);
        if (qos_ratio < limit) {
            std::cerr << "PERF REGRESSION: safety-critical session held "
                      << qos_ratio
                      << "x of its uncontended fps under overload, "
                         "below the "
                      << limit << "x floor\n";
            return 1;
        }
        std::cout << "qos smoke: safety-critical held "
                  << fmt(qos_ratio, 2) << "x >= " << limit
                  << "x of uncontended fps under overload\n";
    }

    // --- CI shared-map smoke: merges must actually happen, and the
    // reader-visible publish cost must stay a pointer swap. The env
    // value is the max acceptable epoch-swap latency in ms — orders of
    // magnitude above a healthy swap, far below a merge pass, so only
    // a merge leaking onto the publish path can trip it.
    if (const char *ceiling = std::getenv("EDX_MAP_PUBLISH_MS_CEILING")) {
        const double limit = std::atof(ceiling);
        bool ok = true;
        if (shared.svc.epochs_published < 1 || shared.contributions < 1) {
            std::cerr << "PERF REGRESSION: the shared-map leg published "
                      << shared.svc.epochs_published << " epoch(s) from "
                      << shared.contributions
                      << " contribution(s); collaborative mapping never "
                         "engaged\n";
            ok = false;
        }
        if (limit > 0.0 && shared.svc.max_publish_ms > limit) {
            std::cerr << "PERF REGRESSION: worst epoch swap "
                      << shared.svc.max_publish_ms
                      << " ms exceeds the " << limit
                      << " ms ceiling — merge work is leaking into the "
                         "reader-visible publish path\n";
            ok = false;
        }
        if (!ok)
            return 1;
        std::cout << "shared-map smoke: "
                  << static_cast<unsigned long long>(
                         shared.svc.epochs_published)
                  << " epoch(s) published, worst swap "
                  << fmt(shared.svc.max_publish_ms, 3) << " ms <= "
                  << limit << " ms ceiling\n";
    }

    // --- CI adaptation smoke: after the mid-run VIO -> dense SLAM
    // shift the self-repipelined session must recover the given
    // fraction of the fresh statically planned throughput (the
    // acceptance target is 0.9; CI gates a little below it so only
    // real adaptation regressions fail, never runner noise).
    if (const char *floor = std::getenv("EDX_ADAPT_FPS_FLOOR")) {
        const double limit = std::atof(floor);
        if (adapt.swaps < 1) {
            std::cerr << "PERF REGRESSION: the replanner never swapped "
                         "the topology after the workload shift\n";
            return 1;
        }
        if (adapt.ratio < limit) {
            std::cerr << "PERF REGRESSION: post-shift fps recovered to "
                      << adapt.ratio
                      << "x of the statically planned optimum, below "
                         "the "
                      << limit << "x floor\n";
            return 1;
        }
        std::cout << "adaptation smoke: post-shift recovered "
                  << fmt(adapt.ratio, 2) << "x >= " << limit
                  << "x of the statically planned fps after "
                  << adapt.swaps << " mid-run swap(s)\n";
    }
    return 0;
}
