/**
 * @file
 * Ablation: the stencil-buffer replication optimization of Sec. V-C /
 * Fig. 14.
 *
 * Paper observation (Sec. VII-D): with the optimization the stencil
 * buffers total ~0.4 MB on EDX-CAR; without it they would grow by about
 * 9 MB (a pixel must stay buffered for >3 million cycles between the
 * FD/IF consumption and the DR re-read), far exceeding the FPGA BRAM.
 */
#include <iostream>

#include "common/table.hpp"
#include "hw/resources.hpp"
#include "hw/stencil.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
report(const AcceleratorConfig &cfg)
{
    // Two raw streams pass through the stencil pipeline (left + right
    // time-shared through FE, each re-read by DR).
    StencilPlan per_stream = planStencilBuffers(
        cfg.image_width, cfg.image_height, frontendStencilConsumers(cfg));
    const double streams = 2.0;

    double optimized_mb = streams * per_stream.replicated_bytes / 1e6;
    double shared_mb = streams * per_stream.shared_bytes / 1e6;

    std::cout << cfg.name << " (" << cfg.image_width << "x"
              << cfg.image_height << ")\n";
    Table t({"design", "total SB MB", "extra DRAM reads/frame"});
    t.addRow({"replicated SBs (EUDOXUS)", fmt(optimized_mb, 3),
              fmt(streams * per_stream.extra_dram_reads / 1e6, 2) +
                  " Mpx"});
    t.addRow({"single shared SB", fmt(shared_mb, 2), "0"});
    t.print();

    note("SB growth without the optimization: +" +
         fmt(shared_mb - optimized_mb, 2) + " MB (paper: ~9 MB on "
         "EDX-CAR against a " +
         fmt(buildResourceReport(cfg).part.bram_mb, 1) +
         " MB BRAM budget)");
    note("replication wins: " +
         std::string(per_stream.replication_wins ? "yes" : "no"));
    std::cout << "\n";
}

} // namespace

int
main()
{
    banner("Ablation", "stencil-buffer replication (Sec. V-C, Fig. 14)");
    report(AcceleratorConfig::car());
    report(AcceleratorConfig::drone());
    note("Trade-off: each replicated pixel is read twice from DRAM, "
         "buying an order-of-magnitude smaller on-chip buffer.");
    return 0;
}
