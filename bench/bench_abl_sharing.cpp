/**
 * @file
 * Ablation: hardware sharing (Sec. V-B / VI-A).
 *
 * Quantifies the two sharing decisions separately:
 *  1. time-sharing the feature-extraction hardware between the left and
 *     right camera streams (resource cost vs throughput impact), and
 *  2. sharing the five backend matrix blocks across the three modes
 *     (the N.S. comparison of Tbl. II).
 */
#include <iostream>

#include "common/table.hpp"
#include "hw/config.hpp"
#include "hw/frontend_accel.hpp"
#include "hw/resources.hpp"

using namespace edx;
using namespace edx::bench;

int
main()
{
    banner("Ablation", "FE time-sharing and backend block sharing");

    AcceleratorConfig cfg = AcceleratorConfig::car();
    FrontendAccelerator accel(cfg);

    // A representative 720p workload.
    FrontendWorkload w;
    w.image_pixels = 1280L * 720L;
    w.left_features = 420;
    w.right_features = 410;
    w.stereo_candidates = 20000;
    w.stereo_candidates_allpairs = 20000; // hw MO streams this count
    w.stereo_matches = 260;
    w.temporal_tracks = 300;
    FrontendAccelTiming t = accel.model(w);

    std::cout << "1. FE time-sharing across the stereo pair ("
              << cfg.name << ")\n";
    Table fe({"design", "FE ms", "SM ms", "pipelined FPS",
              "FE LUT cost"});
    ResourceReport r = buildResourceReport(cfg);
    // With a second FE instance, FE latency halves (both images in
    // parallel) but FE resources double. Throughput is SM-bound either
    // way, so the extra instance buys nothing.
    double shared_fps = t.pipelinedFps();
    double dup_fe_ms = t.feBlock() / 2.0;
    double dup_bottleneck =
        dup_fe_ms > t.smBlock() ? dup_fe_ms : t.smBlock();
    fe.addRow({"time-shared FE (EUDOXUS)", fmt(t.feBlock(), 1),
               fmt(t.smBlock(), 1), fmt(shared_fps, 1),
               fmt(r.fe_block_total.lut, 0)});
    fe.addRow({"duplicated FE", fmt(dup_fe_ms, 1), fmt(t.smBlock(), 1),
               fmt(1000.0 / dup_bottleneck, 1),
               fmt(2.0 * r.fe_block_total.lut, 0)});
    fe.print();
    note("FE is faster than SM, so duplicating FE doubles its LUTs "
         "without raising the SM-bound throughput (Sec. V-B).");

    std::cout << "\n2. Backend matrix-block sharing across modes\n";
    Table be({"platform", "shared LUT", "N.S. LUT", "ratio",
              "N.S. fits part?"});
    for (const auto &c :
         {AcceleratorConfig::car(), AcceleratorConfig::drone()}) {
        ResourceReport rep = buildResourceReport(c);
        bool fits = rep.unshared_total.lut <= rep.part.lut &&
                    rep.unshared_total.ff <= rep.part.ff &&
                    rep.unshared_total.dsp <= rep.part.dsp &&
                    rep.unshared_total.bram_mb <= rep.part.bram_mb;
        be.addRow({c.name, fmt(rep.shared_total.lut, 0),
                   fmt(rep.unshared_total.lut, 0),
                   fmt(rep.unshared_total.lut / rep.shared_total.lut,
                       2) +
                       "x",
                   fits ? "yes" : "no"});
    }
    be.print();
    note("Paper claim: stacking per-algorithm accelerators (N.S.) "
         "overruns both FPGAs; the unified substrate fits.");
    return 0;
}
