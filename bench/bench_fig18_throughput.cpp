/**
 * @file
 * Fig. 18: system throughput (FPS) of the baseline and EUDOXUS with and
 * without frontend/backend pipelining, on both platforms — extended
 * with the placement planner's N-stage software topology.
 *
 * Paper shape to reproduce: car 8.6 -> 17.2 FPS (no pipelining) ->
 * 31.9 FPS (pipelined); drone 7.0 -> 22.4 FPS. Pipelining the frontend
 * with the backend overlaps their latencies, so steady-state throughput
 * is set by the slower of the two stages. The planner generalizes the
 * fixed split: it chooses the cut points per platform by minimizing the
 * max predicted stage time over the hw/ accelerator latency models (and
 * the software profile for the software rows), so the reported splits
 * differ between EDX-CAR and EDX-DRONE when the workload balance does.
 */
#include <algorithm>
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"
#include "runtime/placement.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
platformReport(Platform platform, const AcceleratorConfig &acfg,
               const std::string &paper)
{
    const int frames =
        benchFrames(platform == Platform::Car ? 60 : 150);
    const std::vector<std::pair<SceneType, BackendMode>> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration},
        {SceneType::OutdoorUnknown, BackendMode::Vio},
        {SceneType::IndoorUnknown, BackendMode::Slam},
    };

    double base_ms = 0.0, sw_piped_ms = 0.0, sw_planned_ms = 0.0;
    double acc_ms = 0.0, piped_ms = 0.0;
    long n = 0;
    std::cout << acfg.name << "\n";
    for (const auto &[scene, mode] : cases) {
        RunConfig cfg;
        cfg.scene = scene;
        cfg.platform = platform;
        cfg.frames = frames;
        cfg.force_mode = mode;
        // The sequential baseline, the planner profiles, and the
        // accelerator-model inputs all come from one uncontended
        // stages=1 run; the pipelined rows are derived from its
        // recorded sub-stage latencies (the paper's own derivation —
        // steady-state interval = the slower stage).
        PipelineConfig seq_cfg;
        seq_cfg.stages = 1;
        PipelinedRun seq = runPipelined(cfg, seq_cfg);
        SystemRun sys = modelSystem(seq.run, acfg);

        std::vector<FrameTelemetry> tel;
        tel.reserve(seq.run.frames.size());
        for (const FrameRecord &f : seq.run.frames)
            tel.push_back(f.res.telemetry);

        // Software placement (KernelLatencyModel fits over the
        // profile) and accelerated placement (hw/ latency models at
        // this platform's config).
        StagePlan sw_plan = PlacementPlanner::plan(
            PlacementPlanner::profileFromTelemetry(tel, mode));
        StagePlan acc_plan = PlacementPlanner::plan(
            PlacementPlanner::profileAccelerated(tel, mode, acfg));
        std::cout << "  planner (" << modeName(mode)
                  << "): software " << sw_plan.describe() << " @ "
                  << fmt(sw_plan.period_ms, 1) << " ms; accelerated "
                  << acc_plan.describe() << " @ "
                  << fmt(acc_plan.period_ms, 2) << " ms\n";

        for (const FrameTelemetry &t : tel) {
            NodeProfile f;
            for (int node = 0; node < kPipelineNodes; ++node)
                f.node_ms[node] = pipeNodeMs(t, mode, node);
            // Software pipelining: frame interval set by the slowest
            // stage of the topology.
            sw_piped_ms += PlacementPlanner::periodFor(f, {2});
            sw_planned_ms +=
                PlacementPlanner::periodFor(f, sw_plan.cuts);
        }
        for (const SystemFrame &f : sys.frames) {
            base_ms += f.baseTotalMs();
            acc_ms += f.accTotalMs();
            // Frontend/backend pipelining: frame interval set by the
            // slower stage.
            piped_ms += std::max(f.acc_frontend_ms, f.acc_backend_ms);
            ++n;
        }
    }
    base_ms /= n;
    sw_piped_ms /= n;
    sw_planned_ms /= n;
    acc_ms /= n;
    piped_ms /= n;

    Table t({"configuration", "mean frame interval ms", "FPS"});
    t.addRow({"baseline (software, sequential)", fmt(base_ms, 1),
              fmt(1000.0 / base_ms, 1)});
    t.addRow({"baseline (software, pipelined 2-stage)",
              fmt(sw_piped_ms, 1), fmt(1000.0 / sw_piped_ms, 1)});
    t.addRow({"baseline (software, planner N-stage)",
              fmt(sw_planned_ms, 1), fmt(1000.0 / sw_planned_ms, 1)});
    t.addRow({"EUDOXUS w/o pipelining", fmt(acc_ms, 1),
              fmt(1000.0 / acc_ms, 1)});
    t.addRow({"EUDOXUS w/ pipelining", fmt(piped_ms, 1),
              fmt(1000.0 / piped_ms, 1)});
    t.print();
    note("paper: " + paper);
    std::cout << "\n";
}

} // namespace

int
main()
{
    banner("Fig. 18",
           "throughput with and without frontend/backend pipelining");
    platformReport(Platform::Car, AcceleratorConfig::car(),
                   "8.6 -> 17.2 -> 31.9 FPS");
    platformReport(Platform::Drone, AcceleratorConfig::drone(),
                   "7.0 -> 22.4 FPS (pipelined)");
    note("Paper claim: pipelining the frontend with the backend nearly "
         "doubles the accelerated throughput.");
    return 0;
}
