/**
 * @file
 * Fig. 18: system throughput (FPS) of the baseline and EUDOXUS with and
 * without frontend/backend pipelining, on both platforms.
 *
 * Paper shape to reproduce: car 8.6 -> 17.2 FPS (no pipelining) ->
 * 31.9 FPS (pipelined); drone 7.0 -> 22.4 FPS. Pipelining the frontend
 * with the backend overlaps their latencies, so steady-state throughput
 * is set by the slower of the two stages.
 */
#include <algorithm>
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
platformReport(Platform platform, const AcceleratorConfig &acfg,
               const std::string &paper)
{
    const int frames =
        benchFrames(platform == Platform::Car ? 60 : 150);
    const std::vector<std::pair<SceneType, BackendMode>> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration},
        {SceneType::OutdoorUnknown, BackendMode::Vio},
        {SceneType::IndoorUnknown, BackendMode::Slam},
    };

    double base_ms = 0.0, sw_piped_ms = 0.0, acc_ms = 0.0, piped_ms = 0.0;
    long n = 0;
    for (const auto &[scene, mode] : cases) {
        RunConfig cfg;
        cfg.scene = scene;
        cfg.platform = platform;
        cfg.frames = frames;
        cfg.force_mode = mode;
        // The sequential baseline and the accelerator-model inputs come
        // from an uncontended stages=1 run; the software-pipelined row
        // comes from real overlapped stages=2 execution of the same
        // workload through the staged runtime.
        PipelineConfig seq_cfg;
        seq_cfg.stages = 1;
        SystemRun sys = modelSystem(runPipelined(cfg, seq_cfg).run, acfg);

        PipelineConfig piped_cfg;
        piped_cfg.stages = 2;
        PipelinedRun piped_run = runPipelined(cfg, piped_cfg);
        for (const FrameRecord &f : piped_run.run.frames) {
            // Software pipelining: frame interval set by the slower of
            // the measured frontend/backend stage spans.
            sw_piped_ms += std::max(f.res.telemetry.frontend_stage_ms,
                                    f.res.telemetry.backend_stage_ms);
        }
        for (const SystemFrame &f : sys.frames) {
            base_ms += f.baseTotalMs();
            acc_ms += f.accTotalMs();
            // Frontend/backend pipelining: frame interval set by the
            // slower stage.
            piped_ms += std::max(f.acc_frontend_ms, f.acc_backend_ms);
            ++n;
        }
    }
    base_ms /= n;
    sw_piped_ms /= n;
    acc_ms /= n;
    piped_ms /= n;

    std::cout << acfg.name << "\n";
    Table t({"configuration", "mean frame interval ms", "FPS"});
    t.addRow({"baseline (software, sequential)", fmt(base_ms, 1),
              fmt(1000.0 / base_ms, 1)});
    t.addRow({"baseline (software, pipelined)", fmt(sw_piped_ms, 1),
              fmt(1000.0 / sw_piped_ms, 1)});
    t.addRow({"EUDOXUS w/o pipelining", fmt(acc_ms, 1),
              fmt(1000.0 / acc_ms, 1)});
    t.addRow({"EUDOXUS w/ pipelining", fmt(piped_ms, 1),
              fmt(1000.0 / piped_ms, 1)});
    t.print();
    note("paper: " + paper);
    std::cout << "\n";
}

} // namespace

int
main()
{
    banner("Fig. 18",
           "throughput with and without frontend/backend pipelining");
    platformReport(Platform::Car, AcceleratorConfig::car(),
                   "8.6 -> 17.2 -> 31.9 FPS");
    platformReport(Platform::Drone, AcceleratorConfig::drone(),
                   "7.0 -> 22.4 FPS (pipelined)");
    note("Paper claim: pipelining the frontend with the backend nearly "
         "doubles the accelerated throughput.");
    return 0;
}
