/**
 * @file
 * google-benchmark micro-benchmarks of the software kernels the
 * accelerator targets: the frontend vision tasks on a real rendered
 * frame, and the matrix primitives of Tbl. I at MSCKF/marginalization
 * sizes.
 *
 * These are the CPU-side costs that the Fig. 16 regression models
 * predict and that the Sec. VI scheduler trades against the modeled
 * accelerator time.
 */
#include <benchmark/benchmark.h>

#include "features/fast.hpp"
#include "features/optical_flow.hpp"
#include "features/orb.hpp"
#include "features/stereo.hpp"
#include "image/filter.hpp"
#include "image/pyramid.hpp"
#include "math/decomp.hpp"
#include "math/matx.hpp"
#include "math/rng.hpp"
#include "sim/dataset.hpp"

namespace edx {
namespace {

/** Shared fixture: one rendered stereo frame per platform. */
const Dataset &
dataset(Platform p)
{
    static Dataset drone = [] {
        DatasetConfig cfg;
        cfg.platform = Platform::Drone;
        cfg.frame_count = 4;
        return Dataset(cfg);
    }();
    static Dataset car = [] {
        DatasetConfig cfg;
        cfg.platform = Platform::Car;
        cfg.frame_count = 4;
        return Dataset(cfg);
    }();
    return p == Platform::Car ? car : drone;
}

void
BM_FastDetect(benchmark::State &state)
{
    Platform p = state.range(0) ? Platform::Car : Platform::Drone;
    DatasetFrame f = dataset(p).frame(1);
    for (auto _ : state) {
        auto kps = detectFast(f.stereo.left);
        benchmark::DoNotOptimize(kps);
    }
}
BENCHMARK(BM_FastDetect)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void
BM_OrbDescriptors(benchmark::State &state)
{
    Platform p = state.range(0) ? Platform::Car : Platform::Drone;
    DatasetFrame f = dataset(p).frame(1);
    auto kps = detectFast(f.stereo.left);
    ImageU8 blurred = gaussianBlur(f.stereo.left);
    for (auto _ : state) {
        auto kps_copy = kps;
        auto descs = computeOrbDescriptors(blurred, kps_copy);
        benchmark::DoNotOptimize(descs);
    }
}
BENCHMARK(BM_OrbDescriptors)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

void
BM_StereoMatch(benchmark::State &state)
{
    Platform p = state.range(0) ? Platform::Car : Platform::Drone;
    DatasetFrame f = dataset(p).frame(1);
    auto lk = detectFast(f.stereo.left);
    auto rk = detectFast(f.stereo.right);
    ImageU8 lb = gaussianBlur(f.stereo.left);
    ImageU8 rb = gaussianBlur(f.stereo.right);
    auto ld = computeOrbDescriptors(lb, lk);
    auto rd = computeOrbDescriptors(rb, rk);
    for (auto _ : state) {
        auto matches =
            stereoMatch(f.stereo.left, f.stereo.right, lk, ld, rk, rd);
        benchmark::DoNotOptimize(matches);
    }
}
BENCHMARK(BM_StereoMatch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void
BM_LucasKanade(benchmark::State &state)
{
    Platform p = state.range(0) ? Platform::Car : Platform::Drone;
    DatasetFrame f0 = dataset(p).frame(1);
    DatasetFrame f1 = dataset(p).frame(2);
    auto kps = detectFast(f0.stereo.left);
    Pyramid prev(f0.stereo.left, 3);
    Pyramid next(f1.stereo.left, 3);
    for (auto _ : state) {
        auto tracks = trackLucasKanade(prev, next, kps);
        benchmark::DoNotOptimize(tracks);
    }
}
BENCHMARK(BM_LucasKanade)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

MatX
randomMatrix(int rows, int cols, uint64_t seed)
{
    Rng rng(seed);
    MatX m(rows, cols);
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < cols; ++j)
            m(i, j) = rng.gaussian();
    return m;
}

MatX
randomSpd(int n, uint64_t seed)
{
    MatX a = randomMatrix(n, n, seed);
    MatX s = gram(a);
    for (int i = 0; i < n; ++i)
        s(i, i) += n;
    return s;
}

void
BM_MatrixMultiply(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    MatX a = randomMatrix(n, n, 1);
    MatX b = randomMatrix(n, n, 2);
    for (auto _ : state) {
        MatX c = a * b;
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_MatrixMultiply)->Arg(32)->Arg(64)->Arg(128)->Arg(195);

void
BM_Cholesky(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    MatX s = randomSpd(n, 3);
    for (auto _ : state) {
        Cholesky chol(s);
        benchmark::DoNotOptimize(chol.ok());
    }
}
BENCHMARK(BM_Cholesky)->Arg(32)->Arg(64)->Arg(128)->Arg(195);

void
BM_KalmanGainSolve(benchmark::State &state)
{
    // The Equ. 1 composition at MSCKF sizes: S = H P H^T + R, then
    // solve S K^T = (P H^T)^T.
    int rows = static_cast<int>(state.range(0));
    int dim = 195; // 15 + 6 * 30 clones
    MatX h = randomMatrix(rows, dim, 4);
    MatX p = randomSpd(dim, 5);
    for (auto _ : state) {
        MatX pht = multiplyTransposed(p, h);
        MatX s = h * pht;
        for (int i = 0; i < rows; ++i)
            s(i, i) += 1.0;
        Cholesky chol(s);
        MatX k = chol.solve(pht.transpose());
        benchmark::DoNotOptimize(k);
    }
}
BENCHMARK(BM_KalmanGainSolve)->Arg(30)->Arg(90)->Arg(180)->Unit(
    benchmark::kMillisecond);

void
BM_BlockStructuredInverse(benchmark::State &state)
{
    // The Amm structure of marginalization: diagonal landmark block +
    // 6x6 pose block.
    int diag_n = static_cast<int>(state.range(0));
    MatX m = MatX(diag_n + 6, diag_n + 6);
    Rng rng(6);
    for (int i = 0; i < diag_n; ++i)
        m(i, i) = 1.0 + rng.uniform();
    MatX d = randomSpd(6, 7);
    for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 6; ++j)
            m(diag_n + i, diag_n + j) = d(i, j);
    for (auto _ : state) {
        auto inv = invertBlockDiagonalSymmetric(m, diag_n);
        benchmark::DoNotOptimize(inv);
    }
}
BENCHMARK(BM_BlockStructuredInverse)->Arg(90)->Arg(300)->Arg(600);

} // namespace
} // namespace edx

BENCHMARK_MAIN();
