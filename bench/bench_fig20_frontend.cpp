/**
 * @file
 * Fig. 20 (a-b): frontend acceleration results - latency split between
 * feature extraction (FE) and stereo matching (SM), and throughput with
 * and without FE/SM pipelining.
 *
 * Paper shape to reproduce: ~2.2x frontend latency speedup on both
 * platforms; SM dominates the accelerated frontend latency; FE/SM
 * pipelining raises frontend FPS well above the system FPS (44.0 vs
 * 31.9 on the car), while the unpipelined frontend is the system
 * bottleneck.
 */
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
platformReport(Platform platform, const AcceleratorConfig &acfg,
               const std::string &paper_speedup)
{
    const int frames =
        benchFrames(platform == Platform::Car ? 60 : 150);

    // The frontend is mode-independent; any scenario exercises it.
    RunConfig cfg;
    cfg.scene = SceneType::IndoorUnknown;
    cfg.platform = platform;
    cfg.frames = frames;
    ModeRun run = runLocalization(cfg);
    FrontendAccelerator accel(acfg);

    std::vector<double> sw, fe, sm, acc_total, acc_piped;
    for (const FrameRecord &f : run.frames) {
        sw.push_back(f.res.frontendMs());
        FrontendAccelTiming t = accel.model(f.res.telemetry.frontend_workload);
        fe.push_back(t.feBlock());
        sm.push_back(t.smBlock());
        acc_total.push_back(t.latencyMs());
        acc_piped.push_back(1000.0 / t.pipelinedFps());
    }

    std::cout << acfg.name << "\n";
    Table t({"metric", "value"});
    t.addRow({"software frontend ms", fmt(mean(sw), 1)});
    t.addRow({"accel FE block ms", fmt(mean(fe), 1)});
    t.addRow({"accel SM block ms", fmt(mean(sm), 1)});
    t.addRow({"accel frontend ms", fmt(mean(acc_total), 1)});
    t.addRow({"latency speedup",
              vsPaper(mean(sw) / mean(acc_total), paper_speedup) + "x"});
    t.addRow({"frontend FPS w/o FE||SM pipelining",
              fmt(1000.0 / mean(acc_total), 1)});
    t.addRow({"frontend FPS w/ FE||SM pipelining",
              fmt(1000.0 / mean(acc_piped), 1)});
    t.print();
    note("SM dominates the accelerated frontend (paper Sec. VII-D), "
         "which is why FE hardware is time-shared across the stereo "
         "pair.");
    std::cout << "\n";
}

} // namespace

int
main()
{
    banner("Fig. 20", "frontend latency split and pipelining throughput");
    platformReport(Platform::Car, AcceleratorConfig::car(), "2.2x");
    platformReport(Platform::Drone, AcceleratorConfig::drone(), "2.2x");
    note("Paper claims: 2.2x frontend speedup; pipelining lifts "
         "frontend FPS above the end-to-end system FPS.");
    return 0;
}
