/**
 * @file
 * Fig. 20 (a-b): frontend acceleration results - latency split between
 * feature extraction (FE) and stereo matching (SM), and throughput with
 * and without FE/SM pipelining.
 *
 * Paper shape to reproduce: ~2.2x frontend latency speedup on both
 * platforms; SM dominates the accelerated frontend latency; FE/SM
 * pipelining raises frontend FPS well above the system FPS (44.0 vs
 * 31.9 on the car), while the unpipelined frontend is the system
 * bottleneck.
 *
 * The software baseline is reported before and after the frontend
 * kernel overhaul (retained reference kernels vs optimized workspace
 * frontend), so the accelerator speedup is measured against an
 * honestly optimized software pipeline. The accelerator model's
 * workload inputs (pixels, features, all-pairs MO candidates) are
 * identical in both runs, so the modeled accelerator latency is
 * unchanged by the software optimization.
 */
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/cpu_features.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
platformReport(Platform platform, const AcceleratorConfig &acfg,
               const std::string &paper_speedup)
{
    const int frames =
        benchFrames(platform == Platform::Car ? 60 : 150);

    // The frontend is mode-independent; any scenario exercises it.
    RunConfig cfg;
    cfg.scene = SceneType::IndoorUnknown;
    cfg.platform = platform;
    cfg.frames = frames;
    ModeRun run = runLocalization(cfg);

    RunConfig ref_cfg = cfg;
    ref_cfg.tune = [](LocalizerConfig &lc) {
        lc.frontend.use_reference = true;
    };
    ModeRun ref_run = runLocalization(ref_cfg);

    // The optimized frontend once more on the SSE2 tier (when the
    // startup tier is AVX2), so the table carries one row per SIMD
    // tier of the same optimized kernels.
    double sw_sse2 = -1.0;
    if (activeSimdTier() == SimdTier::kAvx2) {
        setSimdTier(SimdTier::kSse2);
        ModeRun sse2_run = runLocalization(cfg);
        setSimdTier(SimdTier::kAvx2);
        std::vector<double> v;
        for (const FrameRecord &f : sse2_run.frames)
            v.push_back(f.res.frontendMs());
        sw_sse2 = mean(v);
    }

    FrontendAccelerator accel(acfg);
    std::vector<double> sw, sw_ref, fe, sm, acc_total, acc_piped;
    for (const FrameRecord &f : run.frames) {
        sw.push_back(f.res.frontendMs());
        FrontendAccelTiming t =
            accel.model(f.res.telemetry.frontend_workload);
        fe.push_back(t.feBlock());
        sm.push_back(t.smBlock());
        acc_total.push_back(t.latencyMs());
        acc_piped.push_back(1000.0 / t.pipelinedFps());
    }
    for (const FrameRecord &f : ref_run.frames)
        sw_ref.push_back(f.res.frontendMs());

    std::cout << acfg.name << "\n";
    Table t({"metric", "value"});
    t.addRow({"software frontend ms (before: reference kernels)",
              fmt(mean(sw_ref), 1)});
    if (sw_sse2 >= 0.0)
        t.addRow({"software frontend ms (after: optimized, sse2 tier)",
                  fmt(sw_sse2, 1)});
    t.addRow({"software frontend ms (after: optimized)",
              fmt(mean(sw), 1)});
    t.addRow({"software kernel speedup",
              fmt(mean(sw_ref) / mean(sw), 2) + "x"});
    t.addRow({"accel FE block ms", fmt(mean(fe), 1)});
    t.addRow({"accel SM block ms", fmt(mean(sm), 1)});
    t.addRow({"accel frontend ms", fmt(mean(acc_total), 1)});
    t.addRow({"accel speedup vs reference sw",
              vsPaper(mean(sw_ref) / mean(acc_total), paper_speedup) +
                  "x"});
    t.addRow({"accel speedup vs optimized sw",
              fmt(mean(sw) / mean(acc_total), 2) + "x"});
    t.addRow({"frontend FPS w/o FE||SM pipelining",
              fmt(1000.0 / mean(acc_total), 1)});
    t.addRow({"frontend FPS w/ FE||SM pipelining",
              fmt(1000.0 / mean(acc_piped), 1)});
    t.print();
    note("SM dominates the accelerated frontend (paper Sec. VII-D), "
         "which is why FE hardware is time-shared across the stereo "
         "pair.");
    std::cout << "\n";
}

} // namespace

int
main()
{
    banner("Fig. 20", "frontend latency split and pipelining throughput");
    note("SIMD tier: " + simdTierSummary());
    platformReport(Platform::Car, AcceleratorConfig::car(), "2.2x");
    platformReport(Platform::Drone, AcceleratorConfig::drone(), "2.2x");
    note("Paper claims: 2.2x frontend speedup; pipelining lifts "
         "frontend FPS above the end-to-end system FPS. The paper's "
         "software baseline maps to the reference-kernel rows; the "
         "optimized rows show the software frontend after the "
         "workspace/kernel overhaul.");
    return 0;
}
