/**
 * @file
 * Fig. 16 (a-c): backend kernel CPU latency as a function of the matrix
 * size it operates on, measured from real runs of each mode.
 *
 * Paper shape to reproduce: projection latency grows ~linearly with the
 * number of projected map points; Kalman gain and marginalization grow
 * superlinearly (fit with quadratics in Sec. VI-B).
 */
#include <algorithm>
#include <iostream>
#include <map>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"
#include "sched/scheduler.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
scalingReport(const std::string &title, BackendKernel kernel,
              const std::vector<KernelSample> &samples,
              const std::string &size_label)
{
    std::cout << title << " (" << samples.size() << " kernel frames)\n";
    if (samples.size() < 8) {
        note("not enough kernel invocations collected");
        return;
    }

    // Bucket the samples into size quintiles for a compact curve.
    std::vector<KernelSample> sorted = samples;
    std::sort(sorted.begin(), sorted.end(),
              [](const KernelSample &a, const KernelSample &b) {
                  return a.size < b.size;
              });
    Table t({size_label, "mean CPU ms", "samples"});
    const int buckets = 5;
    for (int b = 0; b < buckets; ++b) {
        size_t lo = sorted.size() * b / buckets;
        size_t hi = sorted.size() * (b + 1) / buckets;
        if (hi <= lo)
            continue;
        double size_sum = 0.0, ms_sum = 0.0;
        for (size_t i = lo; i < hi; ++i) {
            size_sum += sorted[i].size;
            ms_sum += sorted[i].cpu_ms;
        }
        double n = static_cast<double>(hi - lo);
        t.addRow({fmt(size_sum / n, 0), fmt(ms_sum / n, 3),
                  fmt(n, 0)});
    }
    t.print();

    // Fit quality of the configured polynomial degree (Sec. VI-B).
    KernelLatencyModel model = KernelLatencyModel::fit(kernel, sorted);
    note("fitted degree-" +
         std::to_string(kernelModelDegree(kernel)) +
         " model R^2 = " + fmt(model.r2(sorted), 3) +
         " (paper fits: linear for projection, quadratic otherwise)");
    std::cout << "\n";
}

std::vector<KernelSample>
collect(const ModeRun &run)
{
    std::vector<KernelSample> out;
    for (const FrameRecord &f : run.frames) {
        KernelRecord k = kernelRecord(f.res);
        if (k.size > 0.0)
            out.push_back({k.size, k.cpu_ms});
    }
    return out;
}

} // namespace

int
main()
{
    banner("Fig. 16", "backend kernel latency vs matrix size");

    const int frames = benchFrames(240);

    {
        RunConfig cfg;
        cfg.scene = SceneType::IndoorKnown;
        cfg.frames = frames;
        cfg.force_mode = BackendMode::Registration;
        ModeRun run = runLocalization(cfg);
        scalingReport("Fig. 16a - projection latency vs map points",
                      BackendKernel::Projection, collect(run),
                      "map points");
    }
    {
        RunConfig cfg;
        cfg.scene = SceneType::OutdoorUnknown;
        cfg.frames = frames;
        ModeRun run = runLocalization(cfg);
        scalingReport("Fig. 16b - Kalman gain latency vs stacked rows",
                      BackendKernel::KalmanGain, collect(run),
                      "H rows");
    }
    {
        RunConfig cfg;
        cfg.scene = SceneType::IndoorUnknown;
        cfg.frames = frames;
        ModeRun run = runLocalization(cfg);
        scalingReport(
            "Fig. 16c - marginalization latency vs landmarks",
            BackendKernel::Marginalization, collect(run),
            "marginalized landmarks");
    }

    note("Paper claim: kernel latency is predictable from the matrix "
         "size the frontend just produced - the basis of the runtime "
         "scheduler.");
    return 0;
}
