/**
 * @file
 * Ablation: offload policies (never / always / regression scheduler /
 * oracle) for each backend mode on EDX-CAR.
 *
 * Extends Sec. VII-F: the regression scheduler should sit essentially
 * on the oracle; always-offload pays DMA on small kernels (the +8.3%
 * SLAM penalty); never-offload leaves the kernel speedup on the table.
 */
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"

using namespace edx;
using namespace edx::bench;

int
main()
{
    banner("Ablation", "offload policy: never / always / sched / oracle");

    const int frames = benchFrames(240);
    const std::vector<std::pair<SceneType, BackendMode>> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration},
        {SceneType::OutdoorUnknown, BackendMode::Vio},
        {SceneType::IndoorUnknown, BackendMode::Slam},
    };

    Table t({"mode", "never ms", "always ms", "sched ms", "oracle ms",
             "sched vs oracle"});
    for (const auto &[scene, mode] : cases) {
        RunConfig cfg;
        cfg.scene = scene;
        cfg.frames = frames;
        cfg.force_mode = mode;
        SystemRun sys = modelSystem(runLocalization(cfg),
                                    AcceleratorConfig::car());

        double never = 0.0, always = 0.0, sched = 0.0, oracle = 0.0;
        int n = 0;
        for (const SystemFrame &f : sys.frames) {
            if (f.is_train)
                continue;
            double cpu = f.base_backend_ms;
            double off = f.kernel_size > 0
                             ? cpu - f.kernel_cpu_ms + f.kernel_accel_ms
                             : cpu;
            never += cpu;
            always += off;
            sched += f.offloaded ? off : cpu;
            oracle += f.oracle_offload ? off : cpu;
            ++n;
        }
        t.addRow({modeName(mode), fmt(never / n, 2), fmt(always / n, 2),
                  fmt(sched / n, 2), fmt(oracle / n, 2),
                  "+" + fmt(100.0 * (sched / oracle - 1.0), 3) + " %"});
    }
    t.print();

    note("Paper claims: scheduler ~= oracle (<0.001%); always-offload "
         "degrades SLAM by 8.3% because sub-ms marginalizations do not "
         "amortize the DMA.");
    return 0;
}
