/**
 * @file
 * Frontend kernel micro-bench: every optimized kernel against its
 * retained scalar reference on a synthetic 640x480 stereo scene, plus
 * the end-to-end frontend at lanes 1 / 2 and the reference path.
 *
 * Doubles as the CI perf smoke: when EDX_FRONTEND_MS_CEILING is set
 * (milliseconds), the bench exits non-zero if the optimized lanes=1
 * frontend exceeds it — a generous ceiling, so regressions fail loudly
 * without flaking on machine noise.
 */
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/runner.hpp"
#include "common/table.hpp"
#include "features/fast.hpp"
#include "features/optical_flow.hpp"
#include "features/orb.hpp"
#include "features/stereo.hpp"
#include "frontend/frontend.hpp"
#include "image/draw.hpp"
#include "image/filter.hpp"
#include "math/rng.hpp"
#include "runtime/telemetry.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

constexpr int kW = 640, kH = 480;

struct Scene
{
    ImageU8 left{kW, kH}, right{kW, kH}, next{kW, kH};
};

Scene
makeScene()
{
    Scene s;
    Rng rl(11), rr(12), rn(13), rp(14);
    fillNoisyBackground(s.left, 105, 7, rl);
    fillNoisyBackground(s.right, 105, 7, rr);
    fillNoisyBackground(s.next, 105, 7, rn);
    uint32_t tex = 3000;
    for (int i = 0; i < 60; ++i, ++tex) {
        double x = rp.uniform(30, kW - 30), y = rp.uniform(30, kH - 30);
        drawTexturedPatch(s.left, x, y, 9, tex, 165);
        drawTexturedPatch(s.right, x - 21.0, y, 9, tex, 165);
        drawTexturedPatch(s.next, x + 4.0, y + 2.0, 9, tex, 165);
    }
    return s;
}

/** Mean wall ms of @p fn over the bench's iteration count. */
template <typename Fn>
double
timeMs(int iters, Fn &&fn)
{
    double total = 0.0;
    for (int i = 0; i < iters; ++i) {
        StageTimer t(total);
        fn();
    }
    return total / iters;
}

std::string
speedup(double ref_ms, double opt_ms)
{
    return opt_ms > 0.0 ? fmt(ref_ms / opt_ms, 2) + "x" : "-";
}

} // namespace

int
main()
{
    banner("frontend kernels",
           "optimized vs retained reference, 640x480 synthetic scene");
    const int iters = benchFrames(12);
    Scene s = makeScene();

    Table t({"kernel", "reference ms", "optimized ms", "speedup"});

    // IF: fixed-point separable Gaussian.
    BlurScratch blur_scratch;
    ImageU8 blurred;
    double ref = timeMs(iters, [&] { gaussianBlurReference(s.left); });
    double opt = timeMs(
        iters, [&] { gaussianBlurInto(s.left, blur_scratch, blurred); });
    t.addRow({"gaussianBlur (IF)", fmt(ref, 2), fmt(opt, 2),
              speedup(ref, opt)});

    // FD: FAST-9 with candidate-list NMS.
    FastConfig fcfg;
    FastScratch fast_scratch;
    std::vector<KeyPoint> kps;
    ref = timeMs(iters, [&] { detectFastReference(s.left, fcfg); });
    opt = timeMs(iters,
                 [&] { detectFastInto(s.left, fcfg, fast_scratch, kps); });
    t.addRow({"detectFast (FD)", fmt(ref, 2), fmt(opt, 2),
              speedup(ref, opt)});

    // FC: ORB descriptors on the filtered image.
    std::vector<KeyPoint> kps_ref = kps;
    std::vector<Descriptor> descs;
    ref = timeMs(iters,
                 [&] { computeOrbDescriptorsReference(blurred, kps_ref); });
    opt = timeMs(iters,
                 [&] { computeOrbDescriptorsInto(blurred, kps, descs); });
    t.addRow({"orbDescriptors (FC)", fmt(ref, 2), fmt(opt, 2),
              speedup(ref, opt)});

    // MO: all-pairs sweep vs row-band bucketing (index build included).
    FastScratch fast_scratch_r;
    std::vector<KeyPoint> rkps;
    detectFastInto(s.right, fcfg, fast_scratch_r, rkps);
    BlurScratch blur_scratch_r;
    ImageU8 rblurred;
    gaussianBlurInto(s.right, blur_scratch_r, rblurred);
    std::vector<Descriptor> rdescs;
    computeOrbDescriptorsInto(rblurred, rkps, rdescs);
    StereoConfig scfg;
    StereoRowIndex rows;
    std::vector<StereoMatch> matches;
    ref = timeMs(iters,
                 [&] { stereoMatchInitial(kps, descs, rkps, rdescs, scfg); });
    opt = timeMs(iters, [&] {
        rows.build(rkps, kH);
        stereoMatchBandedInto(kps, descs, rkps, rdescs, scfg, rows,
                              matches);
    });
    t.addRow({"stereo MO", fmt(ref, 2), fmt(opt, 2), speedup(ref, opt)});

    // DR: SAD refinement, interior fast path.
    std::vector<StereoMatch> m_ref = matches, m_opt = matches;
    std::vector<double> costs;
    ref = timeMs(iters, [&] {
        std::vector<StereoMatch> m = m_ref;
        stereoRefineDisparityReference(s.left, s.right, kps, m, scfg);
    });
    opt = timeMs(iters, [&] {
        std::vector<StereoMatch> m = m_opt;
        stereoRefineDisparityInto(s.left, s.right, kps, m, scfg, costs);
    });
    t.addRow({"stereo DR", fmt(ref, 2), fmt(opt, 2), speedup(ref, opt)});

    // TM: pyramidal LK — reference recomputes gradients per call, the
    // workspace path samples per-level cached Scharr images.
    Pyramid prev_pyr(s.left, 3), next_pyr(s.next, 3);
    std::vector<Gradients> grads(prev_pyr.levels());
    FlowConfig flow;
    FlowScratch flow_scratch;
    std::vector<TemporalMatch> tracks;
    ref = timeMs(iters, [&] {
        trackLucasKanadeReference(prev_pyr, next_pyr, kps, flow);
    });
    opt = timeMs(iters, [&] {
        for (int l = 0; l < prev_pyr.levels(); ++l)
            centralDiffGradientsInto(prev_pyr.level(l), grads[l]);
        trackLucasKanadeInto(prev_pyr, grads, next_pyr, kps, flow,
                             flow_scratch, tracks);
    });
    t.addRow({"LK tracking (TM)", fmt(ref, 2), fmt(opt, 2),
              speedup(ref, opt)});
    t.print();

    // --- end-to-end frontend ---------------------------------------------
    std::cout << "\n";
    Table e({"frontend path", "ms/frame"});
    auto runFrontendLoop = [&](const FrontendConfig &cfg) {
        VisionFrontend fe(cfg);
        FrontendOutput out;
        fe.processFrameInto(s.left, s.right, out); // warm the workspace
        return timeMs(iters, [&] {
            fe.processFrameInto(s.left, s.right, out);
            fe.processFrameInto(s.next, s.right, out);
        }) / 2.0;
    };
    FrontendConfig ref_cfg;
    ref_cfg.use_reference = true;
    const double fe_ref = runFrontendLoop(ref_cfg);
    const double fe_opt = runFrontendLoop(FrontendConfig{});
    FrontendConfig two;
    two.lanes = 2;
    const double fe_two = runFrontendLoop(two);
    e.addRow({"reference kernels", fmt(fe_ref, 2)});
    e.addRow({"optimized, lanes=1", fmt(fe_opt, 2)});
    e.addRow({"optimized, lanes=2", fmt(fe_two, 2)});
    e.addRow({"kernel speedup (lanes=1)", speedup(fe_ref, fe_opt)});
    e.print();

    if (const char *ceiling = std::getenv("EDX_FRONTEND_MS_CEILING")) {
        const double limit = std::atof(ceiling);
        if (limit > 0.0 && fe_opt > limit) {
            std::cerr << "PERF REGRESSION: optimized frontend "
                      << fe_opt << " ms/frame exceeds ceiling " << limit
                      << " ms\n";
            return 1;
        }
        std::cout << "\nperf smoke: " << fe_opt << " ms/frame <= "
                  << limit << " ms ceiling\n";
    }
    return 0;
}
