/**
 * @file
 * Frontend kernel micro-bench: every optimized kernel against its
 * retained scalar reference on a synthetic 640x480 stereo scene, plus
 * the end-to-end frontend at lanes 1 / 2 and the reference path.
 *
 * Doubles as the CI perf smoke: when EDX_FRONTEND_MS_CEILING is set
 * (milliseconds), the bench exits non-zero if the optimized lanes=1
 * frontend exceeds it — a generous ceiling, so regressions fail loudly
 * without flaking on machine noise.
 */
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/runner.hpp"
#include "common/table.hpp"
#include "features/fast.hpp"
#include "features/optical_flow.hpp"
#include "features/orb.hpp"
#include "features/stereo.hpp"
#include "frontend/frontend.hpp"
#include "image/draw.hpp"
#include "image/filter.hpp"
#include "math/cpu_features.hpp"
#include "math/rng.hpp"
#include "runtime/telemetry.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

constexpr int kW = 640, kH = 480;

struct Scene
{
    ImageU8 left{kW, kH}, right{kW, kH}, next{kW, kH};
};

Scene
makeScene()
{
    Scene s;
    Rng rl(11), rr(12), rn(13), rp(14);
    fillNoisyBackground(s.left, 105, 7, rl);
    fillNoisyBackground(s.right, 105, 7, rr);
    fillNoisyBackground(s.next, 105, 7, rn);
    uint32_t tex = 3000;
    for (int i = 0; i < 60; ++i, ++tex) {
        double x = rp.uniform(30, kW - 30), y = rp.uniform(30, kH - 30);
        drawTexturedPatch(s.left, x, y, 9, tex, 165);
        drawTexturedPatch(s.right, x - 21.0, y, 9, tex, 165);
        drawTexturedPatch(s.next, x + 4.0, y + 2.0, 9, tex, 165);
    }
    return s;
}

/** Mean wall ms of @p fn over the bench's iteration count. */
template <typename Fn>
double
timeMs(int iters, Fn &&fn)
{
    double total = 0.0;
    for (int i = 0; i < iters; ++i) {
        StageTimer t(total);
        fn();
    }
    return total / iters;
}

std::string
speedup(double ref_ms, double opt_ms)
{
    return opt_ms > 0.0 ? fmt(ref_ms / opt_ms, 2) + "x" : "-";
}

/** Times @p fn with the SIMD dispatch forced to @p tier. */
template <typename Fn>
double
timeMsAtTier(SimdTier tier, int iters, Fn &&fn)
{
    const SimdTier prev = activeSimdTier();
    setSimdTier(tier);
    const double ms = timeMs(iters, fn);
    setSimdTier(prev);
    return ms;
}

/**
 * Whether the startup tier is AVX2. The startup tier honors both cpuid
 * and EDX_SIMD_LEVEL, so under a forced-sse2 CI leg the avx2 column
 * degrades to "-" instead of silently running AVX2 code. A function —
 * not a namespace-scope constant — because the dispatch tier is
 * dynamically initialized and a static flag here could be initialized
 * first, reading the pre-dispatch SSE2 default.
 */
bool
hasAvx2()
{
    return activeSimdTier() == SimdTier::kAvx2;
}

/**
 * One kernel row: the reference once, the optimized path once per
 * available SIMD tier. Non-dispatched kernels simply repeat their
 * timing across tiers — the column then doubles as a noise gauge.
 */
template <typename RefFn, typename OptFn>
void
addKernelRow(Table &t, const std::string &name, int iters, RefFn &&ref_fn,
             OptFn &&opt_fn)
{
    const double ref = timeMs(iters, ref_fn);
    const double sse2 = timeMsAtTier(SimdTier::kSse2, iters, opt_fn);
    const double avx2 =
        hasAvx2() ? timeMsAtTier(SimdTier::kAvx2, iters, opt_fn) : -1.0;
    const double best = hasAvx2() ? avx2 : sse2;
    t.addRow({name, fmt(ref, 2), fmt(sse2, 2),
              avx2 < 0.0 ? "-" : fmt(avx2, 2), speedup(ref, best)});
}

} // namespace

int
main()
{
    banner("frontend kernels",
           "optimized vs retained reference, 640x480 synthetic scene");
    note("SIMD tier: " + simdTierSummary());
    const int iters = benchFrames(12);
    Scene s = makeScene();

    Table t({"kernel", "reference ms", "sse2 ms", "avx2 ms",
             "speedup"});

    // IF: fixed-point separable Gaussian.
    BlurScratch blur_scratch;
    ImageU8 blurred;
    addKernelRow(t, "gaussianBlur (IF)", iters,
                 [&] { gaussianBlurReference(s.left); },
                 [&] { gaussianBlurInto(s.left, blur_scratch, blurred); });

    // FD: FAST-9 with candidate-list NMS.
    FastConfig fcfg;
    FastScratch fast_scratch;
    std::vector<KeyPoint> kps;
    addKernelRow(t, "detectFast (FD)", iters,
                 [&] { detectFastReference(s.left, fcfg); },
                 [&] { detectFastInto(s.left, fcfg, fast_scratch, kps); });

    // FC: ORB descriptors on the filtered image.
    std::vector<KeyPoint> kps_ref = kps;
    std::vector<Descriptor> descs;
    addKernelRow(t, "orbDescriptors (FC)", iters,
                 [&] { computeOrbDescriptorsReference(blurred, kps_ref); },
                 [&] { computeOrbDescriptorsInto(blurred, kps, descs); });

    // MO: all-pairs sweep vs row-band bucketing (index build included).
    FastScratch fast_scratch_r;
    std::vector<KeyPoint> rkps;
    detectFastInto(s.right, fcfg, fast_scratch_r, rkps);
    BlurScratch blur_scratch_r;
    ImageU8 rblurred;
    gaussianBlurInto(s.right, blur_scratch_r, rblurred);
    std::vector<Descriptor> rdescs;
    computeOrbDescriptorsInto(rblurred, rkps, rdescs);
    StereoConfig scfg;
    StereoRowIndex rows;
    std::vector<StereoMatch> matches;
    addKernelRow(t, "stereo MO", iters,
                 [&] {
                     stereoMatchInitial(kps, descs, rkps, rdescs, scfg);
                 },
                 [&] {
                     rows.build(rkps, kH);
                     stereoMatchBandedInto(kps, descs, rkps, rdescs, scfg,
                                           rows, matches);
                 });

    // DR: SAD refinement, interior fast path.
    std::vector<StereoMatch> m_ref = matches, m_opt = matches;
    std::vector<double> costs;
    addKernelRow(t, "stereo DR", iters,
                 [&] {
                     std::vector<StereoMatch> m = m_ref;
                     stereoRefineDisparityReference(s.left, s.right, kps, m,
                                                    scfg);
                 },
                 [&] {
                     std::vector<StereoMatch> m = m_opt;
                     stereoRefineDisparityInto(s.left, s.right, kps, m,
                                               scfg, costs);
                 });

    // TM: pyramidal LK — reference recomputes gradients per call, the
    // workspace path samples per-level cached Scharr images.
    Pyramid prev_pyr(s.left, 3), next_pyr(s.next, 3);
    std::vector<Gradients> grads(prev_pyr.levels());
    FlowConfig flow;
    FlowScratch flow_scratch;
    std::vector<TemporalMatch> tracks;
    addKernelRow(t, "LK tracking (TM)", iters,
                 [&] {
                     trackLucasKanadeReference(prev_pyr, next_pyr, kps,
                                               flow);
                 },
                 [&] {
                     for (int l = 0; l < prev_pyr.levels(); ++l)
                         centralDiffGradientsInto(prev_pyr.level(l),
                                                  grads[l]);
                     trackLucasKanadeInto(prev_pyr, grads, next_pyr, kps,
                                          flow, flow_scratch, tracks);
                 });
    t.print();

    // --- end-to-end frontend ---------------------------------------------
    std::cout << "\n";
    Table e({"frontend path", "ms/frame"});
    auto runFrontendLoop = [&](const FrontendConfig &cfg) {
        VisionFrontend fe(cfg);
        FrontendOutput out;
        fe.processFrameInto(s.left, s.right, out); // warm the workspace
        return timeMs(iters, [&] {
            fe.processFrameInto(s.left, s.right, out);
            fe.processFrameInto(s.next, s.right, out);
        }) / 2.0;
    };
    FrontendConfig ref_cfg;
    ref_cfg.use_reference = true;
    const double fe_ref = runFrontendLoop(ref_cfg);
    double fe_sse2 = -1.0;
    if (hasAvx2()) {
        setSimdTier(SimdTier::kSse2);
        fe_sse2 = runFrontendLoop(FrontendConfig{});
        setSimdTier(SimdTier::kAvx2);
    }
    const double fe_opt = runFrontendLoop(FrontendConfig{});
    FrontendConfig two;
    two.lanes = 2;
    const double fe_two = runFrontendLoop(two);
    e.addRow({"reference kernels", fmt(fe_ref, 2)});
    if (fe_sse2 >= 0.0)
        e.addRow({"optimized, lanes=1, sse2 tier", fmt(fe_sse2, 2)});
    e.addRow({"optimized, lanes=1", fmt(fe_opt, 2)});
    e.addRow({"optimized, lanes=2", fmt(fe_two, 2)});
    e.addRow({"kernel speedup (lanes=1)", speedup(fe_ref, fe_opt)});
    e.print();

    if (const char *ceiling = std::getenv("EDX_FRONTEND_MS_CEILING")) {
        const double limit = std::atof(ceiling);
        if (limit > 0.0 && fe_opt > limit) {
            std::cerr << "PERF REGRESSION: optimized frontend "
                      << fe_opt << " ms/frame exceeds ceiling " << limit
                      << " ms\n";
            return 1;
        }
        std::cout << "\nperf smoke: " << fe_opt << " ms/frame <= "
                  << limit << " ms ceiling\n";
    }
    return 0;
}
