/**
 * @file
 * Tbl. III: EDX-CAR speedup over CPU / GPU / DSP baselines.
 *
 * Paper numbers: single-core w/ ROS 3.5x, single-core w/o ROS 3.3x,
 * multi-core w/ ROS 2.2x, multi-core w/o ROS (the baseline) 2.1x,
 * Adreno GPU+CPU 4.4x, Hexagon DSP+CPU 2.5x, Maxwell GPU+CPU 2.5x.
 *
 * Platform substitution (DESIGN.md Sec. 2): the multi-core w/o-ROS
 * baseline is this repo's measured software; the other platforms are
 * analytical models layered on it with documented constants:
 *  - single-core: divide by the measured multi-core scaling factor;
 *  - ROS: add a per-frame messaging/serialization overhead;
 *  - GPU: per-frame kernel launch/setup cost (the paper cites 40 ms on
 *    Adreno without batching) plus poor sparse-matrix efficiency in the
 *    backend;
 *  - DSP: modest vision speedup, backend parity.
 */
#include <iostream>

#include "common/accel_model.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

/** Documented modeling constants for Tbl. III. */
struct PlatformModel
{
    const char *name;
    const char *paper;
    double fe_scale;    //!< frontend time multiplier vs baseline
    double be_scale;    //!< backend time multiplier vs baseline
    double fixed_ms;    //!< per-frame fixed overhead (ROS IPC, launches)
};

} // namespace

int
main()
{
    banner("Tbl. III", "EDX-CAR speedup over CPU/GPU/DSP platforms");

    const int frames = benchFrames(60);
    const std::vector<std::pair<SceneType, BackendMode>> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration},
        {SceneType::OutdoorUnknown, BackendMode::Vio},
        {SceneType::IndoorUnknown, BackendMode::Slam},
    };

    // Measured baseline (multi-core w/o ROS) and the EUDOXUS latency.
    double base_fe = 0.0, base_be = 0.0, edx_ms = 0.0;
    long n = 0;
    for (const auto &[scene, mode] : cases) {
        RunConfig cfg;
        cfg.scene = scene;
        cfg.platform = Platform::Car;
        cfg.frames = frames;
        cfg.force_mode = mode;
        SystemRun sys = modelSystem(runLocalization(cfg),
                                    AcceleratorConfig::car());
        for (const SystemFrame &f : sys.frames) {
            base_fe += f.base_frontend_ms;
            base_be += f.base_backend_ms;
            edx_ms += f.accTotalMs();
            ++n;
        }
    }
    base_fe /= n;
    base_be /= n;
    edx_ms /= n;

    // Analytical platform models (constants documented above). The
    // paper's single-core/multi-core gap (3.3x vs 2.1x) implies a ~1.6x
    // multi-core scaling on its localization workload; ROS adds ~5% per
    // the paper's "4% faster without ROS" plus IPC latency.
    const double ros_ms = 0.05 * (base_fe + base_be) + 2.0;
    const std::vector<PlatformModel> platforms = {
        {"Single-core w/ ROS", "3.5", 1.6, 1.6, ros_ms},
        {"Single-core w/o ROS", "3.3", 1.6, 1.6, 0.0},
        {"Multi-core w/ ROS", "2.2", 1.0, 1.0, ros_ms},
        {"Multi-core w/o ROS (baseline)", "2.1", 1.0, 1.0, 0.0},
        // Adreno: vision kernels ~1.2x faster than CPU but 40 ms
        // launch/setup per frame and 2x slower sparse backend.
        {"Adreno 530 GPU + CPU", "4.4", 0.8, 2.0, 40.0},
        // Hexagon DSP: vision ~1.3x faster, backend on CPU, DSP-CPU
        // round trips.
        {"Hexagon 680 DSP + CPU", "2.5", 0.75, 1.0, 12.0},
        // Maxwell: faster vision but launch overhead + sparse backend.
        {"Maxwell GPU + CPU", "2.5", 0.6, 1.5, 15.0},
    };

    Table t({"baseline platform", "frame ms", "EDX-CAR speedup"});
    for (const PlatformModel &p : platforms) {
        double ms =
            base_fe * p.fe_scale + base_be * p.be_scale + p.fixed_ms;
        t.addRow({p.name, fmt(ms, 1),
                  vsPaper(ms / edx_ms, std::string(p.paper) + "x") +
                      "x"});
    }
    t.print();

    note("EDX-CAR modeled frame latency: " + fmt(edx_ms, 1) + " ms");
    note("Paper claims: the in-house multi-core/no-ROS baseline is the "
         "strongest CPU baseline; GPUs lose to multi-core CPU because "
         "of launch overhead and sparse backend matrices.");
    return 0;
}
