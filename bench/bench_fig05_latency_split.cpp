/**
 * @file
 * Fig. 5: average latency split between frontend and backend per mode,
 * plus the relative standard deviation (RSD) of each half.
 *
 * Paper shape to reproduce: the frontend dominates in every mode (55%
 * in SLAM up to 83% in VIO); the backend has the higher RSD (most
 * pronounced in VIO: frontend 47.3% vs backend 81.1%).
 */
#include <iostream>

#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

int
main()
{
    banner("Fig. 5",
           "frontend/backend latency split and RSD per backend mode");

    const int frames = benchFrames(180);
    struct Case
    {
        SceneType scene;
        BackendMode mode;
        const char *paper_fe_share;
    };
    const std::vector<Case> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration, "~70%"},
        {SceneType::OutdoorUnknown, BackendMode::Vio, "83%"},
        {SceneType::IndoorUnknown, BackendMode::Slam, "55%"},
    };

    Table t({"mode", "frontend ms", "backend ms", "frontend share",
             "FE RSD %", "BE RSD %"});
    for (const Case &c : cases) {
        RunConfig cfg;
        cfg.scene = c.scene;
        cfg.frames = frames;
        cfg.force_mode = c.mode;
        ModeRun run = runLocalization(cfg);

        std::vector<double> fe = run.frontendMs();
        std::vector<double> be = run.backendMs();
        double fe_mean = mean(fe), be_mean = mean(be);
        double share = 100.0 * fe_mean / (fe_mean + be_mean);
        t.addRow({modeName(c.mode), fmt(fe_mean), fmt(be_mean),
                  vsPaper(share, c.paper_fe_share, 1) + " %",
                  fmt(rsdPercent(fe), 1), fmt(rsdPercent(be), 1)});
    }
    t.print();

    note("Paper claims: frontend dominates latency in all modes "
         "(55-83%); backend RSD exceeds frontend RSD.");
    return 0;
}
