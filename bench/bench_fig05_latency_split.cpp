/**
 * @file
 * Fig. 5: average latency split between frontend and backend per mode,
 * plus the relative standard deviation (RSD) of each half.
 *
 * Paper shape to reproduce: the frontend dominates in every mode (55%
 * in SLAM up to 83% in VIO); the backend has the higher RSD (most
 * pronounced in VIO: frontend 47.3% vs backend 81.1%).
 *
 * Each mode is run twice: once through the retained scalar reference
 * kernels (the "before" column — the straightforward per-call
 * formulation of the same algorithms, representative of the
 * pre-workspace frontend's cost though not bit-identical to it) and
 * once through the optimized workspace frontend, so the figure shows
 * how far the software kernel overhaul moved the frontend share.
 */
#include <iostream>

#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

struct SplitStats
{
    double fe_ms = 0.0;
    double be_ms = 0.0;
    double share = 0.0;
    double fe_rsd = 0.0;
    double be_rsd = 0.0;
};

SplitStats
runSplit(const RunConfig &cfg)
{
    ModeRun run = runLocalization(cfg);
    std::vector<double> fe = run.frontendMs();
    std::vector<double> be = run.backendMs();
    SplitStats s;
    s.fe_ms = mean(fe);
    s.be_ms = mean(be);
    s.share = 100.0 * s.fe_ms / (s.fe_ms + s.be_ms);
    s.fe_rsd = rsdPercent(fe);
    s.be_rsd = rsdPercent(be);
    return s;
}

} // namespace

int
main()
{
    banner("Fig. 5",
           "frontend/backend latency split and RSD per backend mode");

    const int frames = benchFrames(180);
    struct Case
    {
        SceneType scene;
        BackendMode mode;
        const char *paper_fe_share;
    };
    const std::vector<Case> cases = {
        {SceneType::IndoorKnown, BackendMode::Registration, "~70%"},
        {SceneType::OutdoorUnknown, BackendMode::Vio, "83%"},
        {SceneType::IndoorUnknown, BackendMode::Slam, "55%"},
    };

    Table t({"mode", "FE ms (before)", "FE ms (after)", "backend ms",
             "FE share (before)", "FE share (after)", "FE RSD %",
             "BE RSD %"});
    for (const Case &c : cases) {
        RunConfig cfg;
        cfg.scene = c.scene;
        cfg.frames = frames;
        cfg.force_mode = c.mode;

        RunConfig before_cfg = cfg;
        before_cfg.tune = [](LocalizerConfig &lc) {
            lc.frontend.use_reference = true;
        };
        SplitStats before = runSplit(before_cfg);
        SplitStats after = runSplit(cfg);

        t.addRow({modeName(c.mode), fmt(before.fe_ms), fmt(after.fe_ms),
                  fmt(after.be_ms),
                  vsPaper(before.share, c.paper_fe_share, 1) + " %",
                  fmt(after.share, 1) + " %", fmt(after.fe_rsd, 1),
                  fmt(after.be_rsd, 1)});
    }
    t.print();

    note("Paper claims: frontend dominates latency in all modes "
         "(55-83%); backend RSD exceeds frontend RSD. The 'before' "
         "columns run the retained reference kernels; 'after' is the "
         "optimized workspace frontend.");
    return 0;
}
