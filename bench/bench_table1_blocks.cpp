/**
 * @file
 * Tbl. I: the decomposition of the three variation-dominating backend
 * kernels into the five shared matrix building blocks, with modeled
 * cycle counts per primitive for representative kernel sizes on the
 * EDX-CAR backend substrate.
 */
#include <iostream>

#include "common/table.hpp"
#include "hw/backend_accel.hpp"

using namespace edx;
using namespace edx::bench;

int
main()
{
    banner("Tbl. I", "kernel -> matrix building-block decomposition");

    // The static decomposition (literal restatement of Tbl. I; the
    // kernel implementations in src/backend are built from exactly
    // these operations).
    Table t({"building block", "Projection", "Kalman Gain",
             "Marginalization"});
    t.addRow({"Matrix Multiplication", "x", "x", "x"});
    t.addRow({"Matrix Decomposition", "", "x", "x"});
    t.addRow({"Matrix Inverse", "", "", "x"});
    t.addRow({"Matrix Transpose", "", "x", "x"});
    t.addRow({"Fwd./Bwd. Substitution", "", "x", "x"});
    t.print();

    // Modeled per-primitive cycles for representative sizes.
    AcceleratorConfig cfg = AcceleratorConfig::car();
    BackendAccelerator accel(cfg);

    std::cout << "Modeled cycle budgets on " << cfg.name << " (B = "
              << cfg.matrix_block << ")\n";
    Table c({"kernel", "size", "compute ms", "DMA ms", "total ms"});
    {
        AccelKernelCost k = accel.projection(8000);
        c.addRow({"Projection", "M = 8000 points", fmt(k.compute_ms, 3),
                  fmt(k.dma_ms, 3), fmt(k.totalMs(), 3)});
    }
    {
        AccelKernelCost k = accel.kalmanGain(150, 195);
        c.addRow({"Kalman gain", "H 150x195 (30 clones)",
                  fmt(k.compute_ms, 3), fmt(k.dma_ms, 3),
                  fmt(k.totalMs(), 3)});
    }
    {
        AccelKernelCost k = accel.marginalization(150);
        c.addRow({"Marginalization", "150 landmarks + 6DoF pose",
                  fmt(k.compute_ms, 3), fmt(k.dma_ms, 3),
                  fmt(k.totalMs(), 3)});
    }
    c.print();

    note("Paper claim: the three kernels share the five primitives, so "
         "one substrate serves all three modes (Sec. VI-A).");
    return 0;
}
