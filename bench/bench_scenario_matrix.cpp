/**
 * @file
 * Adversarial-conditions regression matrix: plays every ScenarioSpec of
 * the built-in matrix (or a spec file given as argv[1], or every *.spec
 * file of a directory given as `--scenarios <dir>` in filename order)
 * through the localizer with the health-monitored dead-reckoning
 * fallback enabled, and reports per-cell ATE / RPE plus the health
 * outcome. The checked-in bench/scenarios/ directory mirrors the
 * built-in matrix, so new cells are a spec file away — no recompile.
 *
 * CI accuracy gates (process exits 1 on violation):
 *   EDX_ATE_CEILING_ALL         whole-run ATE ceiling for every cell, m
 *   EDX_ATE_CEILING_<SCENARIO>  per-scenario override (name uppercased,
 *                               '-' -> '_'; e.g. EDX_ATE_CEILING_KIDNAP_
 *                               REGISTRATION), m
 *   EDX_RPE_CEILING_ALL         translational RPE ceiling, m per delta
 *   EDX_TAIL_ATE_CEILING_ALL    post-degradation tail ATE ceiling, m
 *                               (the re-convergence gate)
 */
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "core/scenario_runner.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

/** EDX_<prefix>_<NAME> with the scenario name uppercased, '-' -> '_'. */
std::string
envKey(const std::string &prefix, const std::string &scenario)
{
    std::string key = prefix + "_";
    for (char c : scenario)
        key += c == '-' ? '_'
                        : static_cast<char>(
                              std::toupper(static_cast<unsigned char>(c)));
    return key;
}

/** The scenario's ceiling: per-scenario override, else _ALL, else -1. */
double
ceilingFor(const std::string &prefix, const std::string &scenario)
{
    if (const char *env = std::getenv(envKey(prefix, scenario).c_str()))
        return std::atof(env);
    if (const char *env = std::getenv((prefix + "_ALL").c_str()))
        return std::atof(env);
    return -1.0;
}

/** Whole-file read; exits 2 on failure (the classic argv[1] path). */
std::string
readSpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open spec file: " << path << "\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Concatenates every *.spec file of @p dir in filename order into one
 * parseScenarioSpecs() input (each file already ends without a
 * separator, so files are joined with the `---` record separator).
 */
std::string
readSpecDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        if (entry.is_regular_file() && entry.path().extension() == ".spec")
            files.push_back(entry.path());
    if (ec) {
        std::cerr << "cannot read scenario directory: " << dir << " ("
                  << ec.message() << ")\n";
        std::exit(2);
    }
    if (files.empty()) {
        std::cerr << "no *.spec files in: " << dir << "\n";
        std::exit(2);
    }
    std::sort(files.begin(), files.end());
    std::string text;
    for (const fs::path &p : files) {
        if (!text.empty())
            text += "\n---\n";
        text += readSpecFile(p.string());
    }
    return text;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("scenario matrix",
           "adversarial-conditions accuracy regression (ATE/RPE gates)");

    std::string text;
    if (argc > 2 && std::string(argv[1]) == "--scenarios") {
        text = readSpecDir(argv[2]);
        note(std::string("scenario directory: ") + argv[2]);
    } else if (argc > 1) {
        text = readSpecFile(argv[1]);
        note(std::string("spec file: ") + argv[1]);
    } else {
        text = standardScenarioMatrixText();
        note("built-in standard matrix");
    }

    std::vector<ScenarioSpec> specs;
    try {
        specs = parseScenarioSpecs(text);
    } catch (const std::invalid_argument &e) {
        std::cerr << "spec parse error: " << e.what() << "\n";
        return 2;
    }

    Table t({"scenario", "mode", "ATE (m)", "max (m)", "RPE (m)",
             "RPE (deg)", "tail ATE", "DR frames", "failed"});
    int violations = 0;
    int cells = 0;

    for (const ScenarioSpec &spec : specs) {
        for (BackendMode mode : spec.effectiveModes()) {
            ScenarioCellResult cell = runScenarioCell(spec, mode);
            ++cells;

            const bool has_tail = cell.tail_start <
                                  static_cast<int>(cell.frames.size());
            t.addRow({cell.scenario, modeName(mode),
                      fmt(cell.error.rmse_m, 3), fmt(cell.error.max_m, 3),
                      fmt(cell.error.rpe_m, 3),
                      fmt(cell.error.rpe_deg, 2),
                      has_tail ? fmt(cell.tail_error.rmse_m, 3) : "-",
                      std::to_string(cell.dead_reckoned_frames),
                      std::to_string(cell.failed_frames)});

            const double ate_ceiling =
                ceilingFor("EDX_ATE_CEILING", spec.name);
            if (ate_ceiling > 0.0 && cell.error.rmse_m > ate_ceiling) {
                std::cerr << "GATE VIOLATION: " << spec.name << "/"
                          << modeName(mode) << " ATE " << cell.error.rmse_m
                          << " m > ceiling " << ate_ceiling << " m\n";
                ++violations;
            }
            const double rpe_ceiling =
                ceilingFor("EDX_RPE_CEILING", spec.name);
            if (rpe_ceiling > 0.0 && cell.error.rpe_m > rpe_ceiling) {
                std::cerr << "GATE VIOLATION: " << spec.name << "/"
                          << modeName(mode) << " RPE " << cell.error.rpe_m
                          << " m > ceiling " << rpe_ceiling << " m\n";
                ++violations;
            }
            const double tail_ceiling =
                ceilingFor("EDX_TAIL_ATE_CEILING", spec.name);
            if (tail_ceiling > 0.0 && has_tail &&
                cell.tail_error.rmse_m > tail_ceiling) {
                std::cerr << "GATE VIOLATION: " << spec.name << "/"
                          << modeName(mode) << " tail ATE "
                          << cell.tail_error.rmse_m << " m > ceiling "
                          << tail_ceiling << " m\n";
                ++violations;
            }
        }
    }
    t.print();

    note(std::to_string(cells) + " matrix cells over " +
         std::to_string(specs.size()) + " scenarios");
    if (violations > 0) {
        std::cerr << violations << " accuracy gate violation(s)\n";
        return 1;
    }
    note("all accuracy gates passed");
    return 0;
}
