/**
 * @file
 * Backend linear-algebra micro-bench: every blocked/SIMD kernel of the
 * overhaul against its retained scalar reference at MSCKF-realistic
 * sizes (state dim d ~ 195 = 15 + 6x30 clones, compression stacks of a
 * few hundred rows), plus the end-to-end MSCKF backend on a synthetic
 * steady-state VIO run — optimized workspace path vs the pre-overhaul
 * reference path.
 *
 * Doubles as the CI perf smoke: when EDX_BACKEND_MS_CEILING is set
 * (milliseconds), the bench exits non-zero if the optimized MSCKF
 * update exceeds it — a generous ceiling, so regressions fail loudly
 * without flaking on machine noise (pattern of bench_frontend_kernels).
 */
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <unordered_map>

#include "backend/msckf.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/blas.hpp"
#include "math/blas_f32.hpp"
#include "math/cpu_features.hpp"
#include "math/decomp.hpp"
#include "math/rng.hpp"
#include "runtime/telemetry.hpp"
#include "sim/dataset.hpp"
#include "sim/trajectory.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

MatX
randomMat(int r, int c, uint64_t seed)
{
    Rng rng(seed);
    MatX m(r, c);
    for (int i = 0; i < r; ++i)
        for (int j = 0; j < c; ++j)
            m(i, j) = rng.gaussian();
    return m;
}

MatX
randomSpd(int n, uint64_t seed)
{
    MatX a = randomMat(n, n, seed);
    MatX s = gram(a);
    for (int i = 0; i < n; ++i)
        s(i, i) += n;
    return s;
}

template <typename Fn>
double
timeMs(int iters, Fn &&fn)
{
    double total = 0.0;
    for (int i = 0; i < iters; ++i) {
        StageTimer t(total);
        fn();
    }
    return total / iters;
}

std::string
speedup(double ref_ms, double opt_ms)
{
    return opt_ms > 0.0 ? fmt(ref_ms / opt_ms, 2) + "x" : "-";
}

/** Times @p fn with the SIMD dispatch forced to @p tier. */
template <typename Fn>
double
timeMsAtTier(SimdTier tier, int iters, Fn &&fn)
{
    const SimdTier prev = activeSimdTier();
    setSimdTier(tier);
    const double ms = timeMs(iters, fn);
    setSimdTier(prev);
    return ms;
}

/**
 * Whether the startup tier is AVX2. The startup tier honors both cpuid
 * and EDX_SIMD_LEVEL, so under a forced-sse2 CI leg the avx2 column
 * degrades to "-" instead of silently running AVX2 code. A function —
 * not a namespace-scope constant — because the dispatch tier is
 * dynamically initialized and a static flag here could be initialized
 * first, reading the pre-dispatch SSE2 default.
 */
bool
hasAvx2()
{
    return activeSimdTier() == SimdTier::kAvx2;
}

/**
 * One kernel row: the reference once, the optimized kernel once per
 * available SIMD tier.
 */
template <typename RefFn, typename OptFn>
void
addKernelRow(Table &t, const std::string &name, const std::string &shape,
             int iters, RefFn &&ref_fn, OptFn &&opt_fn)
{
    const double ref = timeMs(iters, ref_fn);
    const double sse2 = timeMsAtTier(SimdTier::kSse2, iters, opt_fn);
    const double avx2 =
        hasAvx2() ? timeMsAtTier(SimdTier::kAvx2, iters, opt_fn) : -1.0;
    const double best = hasAvx2() ? avx2 : sse2;
    t.addRow({name, shape, fmt(ref, 3), fmt(sse2, 3),
              avx2 < 0.0 ? "-" : fmt(avx2, 3), speedup(ref, best)});
}

/**
 * Steady-state synthetic VIO loop (the test_backend world): returns
 * the mean per-frame backend ms (propagate + update) once warm.
 */
double
msckfBackendMs(bool use_reference, int frames, bool float32 = false)
{
    Trajectory traj = Trajectory::drone(8.0, 40.0);
    StereoRig rig = platformRig(Platform::Drone);
    Rng rng(71);
    std::vector<Vec3> landmarks;
    for (int i = 0; i < 240; ++i) {
        double ang = rng.uniform(0, 2 * M_PI);
        double r = rng.uniform(10.0, 16.0);
        landmarks.push_back(Vec3{r * std::cos(ang), r * std::sin(ang),
                                 rng.uniform(0, 4)});
    }
    auto observe = [&](const Pose &wb, const Vec3 &lm, Vec2 &px,
                       double &disp) {
        Pose cw = (wb * rig.body_from_camera).inverse();
        Vec3 pc = cw.rotation.rotate(lm) + cw.translation;
        auto proj = rig.cam.project(pc);
        if (!proj || !rig.cam.inImage(*proj, 8.0))
            return false;
        px = *proj;
        disp = rig.disparityFromDepth(pc[2]);
        return true;
    };

    MsckfConfig cfg;
    cfg.use_reference = use_reference;
    cfg.float32_covariance_update = float32;
    Msckf filter(rig, cfg);
    filter.initialize(traj.poseAt(0.0), 0.0, traj.velocityAt(0.0));

    const double fps = 10.0, rate = 200.0;
    const int warm = 40;
    std::unordered_map<int, FeatureTrack> live;
    long next_id = 1;
    double total = 0.0;
    int measured = 0;
    for (int f = 1; f <= warm + frames; ++f) {
        std::vector<FeatureTrack> finished;
        Pose truth = traj.poseAt(f / fps);
        for (int li = 0; li < static_cast<int>(landmarks.size()); ++li) {
            Vec2 px;
            double disp;
            bool vis = observe(truth, landmarks[li], px, disp);
            auto it = live.find(li);
            if (vis) {
                if (it == live.end()) {
                    FeatureTrack tr;
                    tr.id = next_id++;
                    live.emplace(li, std::move(tr));
                    it = live.find(li);
                }
                TrackObservation ob;
                ob.clone_id = f;
                ob.pixel = px;
                ob.disparity = disp;
                it->second.observations.push_back(ob);
            } else if (it != live.end()) {
                finished.push_back(std::move(it->second));
                live.erase(it);
            }
        }
        std::vector<ImuSample> imu;
        for (double t = (f - 1) / fps; t < f / fps - 1e-12;
             t += 1.0 / rate)
            imu.push_back(traj.imuTruthAt(t + 0.5 / rate));
        filter.propagate(imu);
        long oldest = filter.update(finished, f);
        for (auto &[li, tr] : live) {
            auto &obs = tr.observations;
            obs.erase(std::remove_if(obs.begin(), obs.end(),
                                     [&](const TrackObservation &o) {
                                         return o.clone_id < oldest;
                                     }),
                      obs.end());
        }
        if (f > warm) {
            total += filter.lastTiming().total();
            ++measured;
        }
    }
    return measured > 0 ? total / measured : 0.0;
}

} // namespace

int
main()
{
    banner("backend kernels",
           "blocked/SIMD vs retained scalar reference, MSCKF sizes");
    note("SIMD tier: " + simdTierSummary());
    const int iters = benchFrames(12);

    // The MSCKF-realistic shapes: d = 195 (30 clones), compression
    // stack ~2x the state, Kalman S at the compressed size.
    const int d = 195, rows = 390;

    Table t({"kernel", "shape", "reference ms", "sse2 ms", "avx2 ms",
             "speedup"});

    {
        MatX a = randomMat(d, d, 1), b = randomMat(d, d, 2), c;
        addKernelRow(t, "gemm", "195x195x195", iters,
                     [&] { gemmReference(a, b, c); },
                     [&] { gemmInto(a, b, c); });
    }
    {
        MatX a = randomMat(rows, d, 3), b = randomMat(d, d, 4), c;
        addKernelRow(t, "A*B^T", "390x195 * (195x195)^T", iters,
                     [&] { multiplyTransposedReference(a, b, c); },
                     [&] { multiplyTransposedInto(a, b, c); });
    }
    {
        MatX h = randomMat(d, d, 5);
        MatX p = randomSpd(d, 6);
        MatX hp, s;
        addKernelRow(t, "H*P*H^T (sym)", "195x195 sandwich", iters,
                     [&] { symmetricSandwichReference(h, p, hp, s); },
                     [&] { symmetricSandwichInto(h, p, hp, s); });
    }
    {
        MatX a = randomMat(rows, d, 7), b = randomMat(rows, d, 8);
        MatX c_ref = MatX::identity(d) * 2.0, c_opt = c_ref;
        addKernelRow(t, "P -= A^T*B (sym)", "390x195 downdate", iters,
                     [&] { symmetricDowndateReference(a, b, c_ref); },
                     [&] { symmetricDowndateInto(a, b, c_opt); });
    }
    {
        MatX s = randomSpd(d, 9);
        addKernelRow(t, "Cholesky", "195x195", iters,
                     [&] { CholeskyReference chol(s); },
                     [&] { Cholesky chol(s); });
    }
    {
        MatX s = randomSpd(d, 10);
        MatX b = randomMat(d, d, 11);
        CholeskyReference chol_ref(s);
        Cholesky chol_opt(s);
        addKernelRow(t, "chol solve", "195 x 195 RHS", iters,
                     [&] { MatX x = chol_ref.solve(b); },
                     [&] {
                         MatX x = b;
                         chol_opt.solveInPlace(x);
                     });
    }
    {
        MatX a = randomMat(rows, d, 12);
        addKernelRow(t, "Householder QR", "390x195", iters,
                     [&] { HouseholderQRReference qr(a); },
                     [&] { HouseholderQR qr(a); });
    }
    {
        // The mixed-precision Kalman-gain slice (pack + f32 sandwich +
        // f32 Cholesky + f32 solve) against the f64 kernels doing the
        // same work — the slice MsckfConfig::float32_covariance_update
        // swaps per update.
        MatX h = randomMat(d, d, 13);
        MatX p = randomSpd(d, 14);
        MatX hp, sm, kt;
        Cholesky chol;
        AlignedVector<float> h_f, p_f, hp_f, s_f, kt_f;
        addKernelRow(t, "gain slice f32", "195x195 S+solve", iters,
                     [&] {
                         symmetricSandwichInto(h, p, hp, sm);
                         for (int i = 0; i < d; ++i)
                             sm(i, i) += 2.25;
                         chol.compute(sm);
                         kt = hp;
                         chol.solveInPlace(kt);
                     },
                     [&] {
                         f32::pack(h, h_f);
                         f32::pack(p, p_f);
                         f32::sandwich(h_f.data(), p_f.data(), d, d, hp_f,
                                       s_f);
                         for (int i = 0; i < d; ++i)
                             s_f[static_cast<size_t>(i) * d + i] += 2.25f;
                         f32::choleskyLower(s_f.data(), d);
                         kt_f.assign(hp_f.begin(), hp_f.end());
                         f32::choleskySolveInPlace(s_f.data(), d,
                                                   kt_f.data(), d);
                     });
    }
    t.print();

    // --- end-to-end MSCKF backend ----------------------------------------
    std::cout << "\n";
    Table e({"MSCKF backend path", "ms/frame (steady state)"});
    const int frames = benchFrames(40);
    const double be_ref = msckfBackendMs(true, frames);
    double be_sse2 = -1.0;
    if (hasAvx2()) {
        setSimdTier(SimdTier::kSse2);
        be_sse2 = msckfBackendMs(false, frames);
        setSimdTier(SimdTier::kAvx2);
    }
    const double be_opt = msckfBackendMs(false, frames);
    const double be_f32 = msckfBackendMs(false, frames, true);
    e.addRow({"reference kernels", fmt(be_ref, 2)});
    if (be_sse2 >= 0.0)
        e.addRow({"optimized workspace, sse2 tier", fmt(be_sse2, 2)});
    e.addRow({"optimized workspace", fmt(be_opt, 2)});
    e.addRow({"optimized + f32 covariance", fmt(be_f32, 2)});
    e.addRow({"speedup", speedup(be_ref, be_opt)});
    e.print();
    note("steady state = clone window full (30 clones, d = 201); the "
         "optimized path is additionally zero-heap-alloc "
         "(test-enforced in tests/test_backend.cpp)");

    if (const char *ceiling = std::getenv("EDX_BACKEND_MS_CEILING")) {
        const double limit = std::atof(ceiling);
        if (limit > 0.0 && be_opt > limit) {
            std::cerr << "PERF REGRESSION: optimized MSCKF backend "
                      << be_opt << " ms/frame exceeds ceiling " << limit
                      << " ms\n";
            return 1;
        }
        std::cout << "\nperf smoke: " << be_opt << " ms/frame <= "
                  << limit << " ms ceiling\n";
    }
    return 0;
}
