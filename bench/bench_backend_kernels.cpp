/**
 * @file
 * Backend linear-algebra micro-bench: every blocked/SIMD kernel of the
 * overhaul against its retained scalar reference at MSCKF-realistic
 * sizes (state dim d ~ 195 = 15 + 6x30 clones, compression stacks of a
 * few hundred rows), plus the end-to-end MSCKF backend on a synthetic
 * steady-state VIO run — optimized workspace path vs the pre-overhaul
 * reference path.
 *
 * Doubles as the CI perf smoke: when EDX_BACKEND_MS_CEILING is set
 * (milliseconds), the bench exits non-zero if the optimized MSCKF
 * update exceeds it — a generous ceiling, so regressions fail loudly
 * without flaking on machine noise (pattern of bench_frontend_kernels).
 */
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <unordered_map>

#include "backend/msckf.hpp"
#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/blas.hpp"
#include "math/decomp.hpp"
#include "math/rng.hpp"
#include "runtime/telemetry.hpp"
#include "sim/dataset.hpp"
#include "sim/trajectory.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

MatX
randomMat(int r, int c, uint64_t seed)
{
    Rng rng(seed);
    MatX m(r, c);
    for (int i = 0; i < r; ++i)
        for (int j = 0; j < c; ++j)
            m(i, j) = rng.gaussian();
    return m;
}

MatX
randomSpd(int n, uint64_t seed)
{
    MatX a = randomMat(n, n, seed);
    MatX s = gram(a);
    for (int i = 0; i < n; ++i)
        s(i, i) += n;
    return s;
}

template <typename Fn>
double
timeMs(int iters, Fn &&fn)
{
    double total = 0.0;
    for (int i = 0; i < iters; ++i) {
        StageTimer t(total);
        fn();
    }
    return total / iters;
}

std::string
speedup(double ref_ms, double opt_ms)
{
    return opt_ms > 0.0 ? fmt(ref_ms / opt_ms, 2) + "x" : "-";
}

/**
 * Steady-state synthetic VIO loop (the test_backend world): returns
 * the mean per-frame backend ms (propagate + update) once warm.
 */
double
msckfBackendMs(bool use_reference, int frames)
{
    Trajectory traj = Trajectory::drone(8.0, 40.0);
    StereoRig rig = platformRig(Platform::Drone);
    Rng rng(71);
    std::vector<Vec3> landmarks;
    for (int i = 0; i < 240; ++i) {
        double ang = rng.uniform(0, 2 * M_PI);
        double r = rng.uniform(10.0, 16.0);
        landmarks.push_back(Vec3{r * std::cos(ang), r * std::sin(ang),
                                 rng.uniform(0, 4)});
    }
    auto observe = [&](const Pose &wb, const Vec3 &lm, Vec2 &px,
                       double &disp) {
        Pose cw = (wb * rig.body_from_camera).inverse();
        Vec3 pc = cw.rotation.rotate(lm) + cw.translation;
        auto proj = rig.cam.project(pc);
        if (!proj || !rig.cam.inImage(*proj, 8.0))
            return false;
        px = *proj;
        disp = rig.disparityFromDepth(pc[2]);
        return true;
    };

    MsckfConfig cfg;
    cfg.use_reference = use_reference;
    Msckf filter(rig, cfg);
    filter.initialize(traj.poseAt(0.0), 0.0, traj.velocityAt(0.0));

    const double fps = 10.0, rate = 200.0;
    const int warm = 40;
    std::unordered_map<int, FeatureTrack> live;
    long next_id = 1;
    double total = 0.0;
    int measured = 0;
    for (int f = 1; f <= warm + frames; ++f) {
        std::vector<FeatureTrack> finished;
        Pose truth = traj.poseAt(f / fps);
        for (int li = 0; li < static_cast<int>(landmarks.size()); ++li) {
            Vec2 px;
            double disp;
            bool vis = observe(truth, landmarks[li], px, disp);
            auto it = live.find(li);
            if (vis) {
                if (it == live.end()) {
                    FeatureTrack tr;
                    tr.id = next_id++;
                    live.emplace(li, std::move(tr));
                    it = live.find(li);
                }
                TrackObservation ob;
                ob.clone_id = f;
                ob.pixel = px;
                ob.disparity = disp;
                it->second.observations.push_back(ob);
            } else if (it != live.end()) {
                finished.push_back(std::move(it->second));
                live.erase(it);
            }
        }
        std::vector<ImuSample> imu;
        for (double t = (f - 1) / fps; t < f / fps - 1e-12;
             t += 1.0 / rate)
            imu.push_back(traj.imuTruthAt(t + 0.5 / rate));
        filter.propagate(imu);
        long oldest = filter.update(finished, f);
        for (auto &[li, tr] : live) {
            auto &obs = tr.observations;
            obs.erase(std::remove_if(obs.begin(), obs.end(),
                                     [&](const TrackObservation &o) {
                                         return o.clone_id < oldest;
                                     }),
                      obs.end());
        }
        if (f > warm) {
            total += filter.lastTiming().total();
            ++measured;
        }
    }
    return measured > 0 ? total / measured : 0.0;
}

} // namespace

int
main()
{
    banner("backend kernels",
           "blocked/SIMD vs retained scalar reference, MSCKF sizes");
    const int iters = benchFrames(12);

    // The MSCKF-realistic shapes: d = 195 (30 clones), compression
    // stack ~2x the state, Kalman S at the compressed size.
    const int d = 195, rows = 390;

    Table t({"kernel", "shape", "reference ms", "optimized ms",
             "speedup"});

    {
        MatX a = randomMat(d, d, 1), b = randomMat(d, d, 2), c;
        double ref = timeMs(iters, [&] { gemmReference(a, b, c); });
        double opt = timeMs(iters, [&] { gemmInto(a, b, c); });
        t.addRow({"gemm", "195x195x195", fmt(ref, 3), fmt(opt, 3),
                  speedup(ref, opt)});
    }
    {
        MatX a = randomMat(rows, d, 3), b = randomMat(d, d, 4), c;
        double ref = timeMs(iters,
                            [&] { multiplyTransposedReference(a, b, c); });
        double opt =
            timeMs(iters, [&] { multiplyTransposedInto(a, b, c); });
        t.addRow({"A*B^T", "390x195 * (195x195)^T", fmt(ref, 3),
                  fmt(opt, 3), speedup(ref, opt)});
    }
    {
        MatX h = randomMat(d, d, 5);
        MatX p = randomSpd(d, 6);
        MatX hp, s;
        double ref = timeMs(
            iters, [&] { symmetricSandwichReference(h, p, hp, s); });
        double opt = timeMs(
            iters, [&] { symmetricSandwichInto(h, p, hp, s); });
        t.addRow({"H*P*H^T (sym)", "195x195 sandwich", fmt(ref, 3),
                  fmt(opt, 3), speedup(ref, opt)});
    }
    {
        MatX a = randomMat(rows, d, 7), b = randomMat(rows, d, 8);
        MatX c_ref = MatX::identity(d) * 2.0, c_opt = c_ref;
        double ref = timeMs(iters, [&] {
            symmetricDowndateReference(a, b, c_ref);
        });
        double opt =
            timeMs(iters, [&] { symmetricDowndateInto(a, b, c_opt); });
        t.addRow({"P -= A^T*B (sym)", "390x195 downdate", fmt(ref, 3),
                  fmt(opt, 3), speedup(ref, opt)});
    }
    {
        MatX s = randomSpd(d, 9);
        double ref = timeMs(iters, [&] { CholeskyReference chol(s); });
        double opt = timeMs(iters, [&] { Cholesky chol(s); });
        t.addRow({"Cholesky", "195x195", fmt(ref, 3), fmt(opt, 3),
                  speedup(ref, opt)});
    }
    {
        MatX s = randomSpd(d, 10);
        MatX b = randomMat(d, d, 11);
        CholeskyReference chol_ref(s);
        Cholesky chol_opt(s);
        double ref =
            timeMs(iters, [&] { MatX x = chol_ref.solve(b); });
        double opt = timeMs(iters, [&] {
            MatX x = b;
            chol_opt.solveInPlace(x);
        });
        t.addRow({"chol solve", "195 x 195 RHS", fmt(ref, 3),
                  fmt(opt, 3), speedup(ref, opt)});
    }
    {
        MatX a = randomMat(rows, d, 12);
        double ref =
            timeMs(iters, [&] { HouseholderQRReference qr(a); });
        double opt = timeMs(iters, [&] { HouseholderQR qr(a); });
        t.addRow({"Householder QR", "390x195", fmt(ref, 3), fmt(opt, 3),
                  speedup(ref, opt)});
    }
    t.print();

    // --- end-to-end MSCKF backend ----------------------------------------
    std::cout << "\n";
    Table e({"MSCKF backend path", "ms/frame (steady state)"});
    const int frames = benchFrames(40);
    const double be_ref = msckfBackendMs(true, frames);
    const double be_opt = msckfBackendMs(false, frames);
    e.addRow({"reference kernels", fmt(be_ref, 2)});
    e.addRow({"optimized workspace", fmt(be_opt, 2)});
    e.addRow({"speedup", speedup(be_ref, be_opt)});
    e.print();
    note("steady state = clone window full (30 clones, d = 201); the "
         "optimized path is additionally zero-heap-alloc "
         "(test-enforced in tests/test_backend.cpp)");

    if (const char *ceiling = std::getenv("EDX_BACKEND_MS_CEILING")) {
        const double limit = std::atof(ceiling);
        if (limit > 0.0 && be_opt > limit) {
            std::cerr << "PERF REGRESSION: optimized MSCKF backend "
                      << be_opt << " ms/frame exceeds ceiling " << limit
                      << " ms\n";
            return 1;
        }
        std::cout << "\nperf smoke: " << be_opt << " ms/frame <= "
                  << limit << " ms ceiling\n";
    }
    return 0;
}
