/**
 * @file
 * Figs. 9-11: per-frame latency variation per mode - the sorted
 * distribution of frontend vs backend latency and the worst/best ratio.
 *
 * Paper shape to reproduce: the longest SLAM frame is over 4x the
 * shortest; over 2x in registration; the backend varies more than the
 * frontend.
 */
#include <algorithm>
#include <iostream>

#include "common/runner.hpp"
#include "common/table.hpp"
#include "math/stats.hpp"

using namespace edx;
using namespace edx::bench;

namespace {

void
variationReport(const std::string &title, const ModeRun &run,
                const std::string &paper_ratio)
{
    std::cout << title << "\n";
    std::vector<double> total = run.totalMs();
    std::vector<double> fe = run.frontendMs();
    std::vector<double> be = run.backendMs();

    std::vector<double> sorted = total;
    std::sort(sorted.begin(), sorted.end());

    Table t({"metric", "value"});
    Summary s = summarize(total);
    t.addRow({"frames", fmt(s.count, 0)});
    t.addRow({"mean total ms", fmt(s.mean)});
    t.addRow({"p50 / p99 ms", fmt(s.p50) + " / " + fmt(s.p99)});
    t.addRow({"min / max ms", fmt(s.min) + " / " + fmt(s.max)});
    t.addRow({"worst/best ratio", vsPaper(s.max / s.min, paper_ratio)});
    t.addRow({"frontend RSD %", fmt(rsdPercent(fe), 1)});
    t.addRow({"backend RSD %", fmt(rsdPercent(be), 1)});
    t.print();

    // Compact sorted latency curve (10 deciles of the distribution).
    std::cout << "  sorted per-frame totals (deciles, ms):";
    for (int d = 0; d <= 9; ++d) {
        size_t idx = std::min(sorted.size() - 1,
                              sorted.size() * d / 10);
        std::cout << " " << fmt(sorted[idx], 1);
    }
    std::cout << " " << fmt(sorted.back(), 1) << "\n\n";
}

} // namespace

int
main()
{
    banner("Figs. 9-11", "per-frame latency variation per backend mode");

    const int frames = benchFrames(240);

    {
        RunConfig cfg;
        cfg.scene = SceneType::IndoorKnown;
        cfg.frames = frames;
        cfg.force_mode = BackendMode::Registration;
        variationReport("Fig. 9 - registration mode",
                        runLocalization(cfg), ">2x");
    }
    {
        RunConfig cfg;
        cfg.scene = SceneType::OutdoorUnknown;
        cfg.frames = frames;
        variationReport("Fig. 10 - VIO mode", runLocalization(cfg),
                        "high variation");
    }
    {
        RunConfig cfg;
        cfg.scene = SceneType::IndoorUnknown;
        cfg.frames = frames;
        variationReport("Fig. 11 - SLAM mode", runLocalization(cfg),
                        ">4x");
    }

    note("Paper claims: worst-case latency up to 4x best-case (SLAM), "
         ">2x (registration); backend RSD > frontend RSD.");
    return 0;
}
