/**
 * @file
 * The unified vision frontend (Sec. IV-A / Sec. V of the paper).
 *
 * The frontend is shared by all three backend modes and is always
 * activated. It consists of three blocks:
 *
 *  - Feature extraction (FE): feature point detection (FD), image
 *    filtering (IF) and feature descriptor calculation (FC), run on both
 *    stereo images.
 *  - Stereo matching (SM): matching optimization (MO) + disparity
 *    refinement (DR), establishing spatial correspondences.
 *  - Temporal matching (TM): derivatives calculation (DC) + least
 *    squares solver (LSS), i.e. pyramidal Lucas-Kanade against the
 *    previous left frame.
 *
 * Execution model: all hot-path buffers live in a per-session
 * FrameWorkspace (frontend/workspace.hpp), so steady-state frames do
 * zero heap allocation. With FrontendConfig::lanes == 2 the per-eye FE
 * pipelines (FD -> IF -> FC) run on two worker lanes, mirroring the
 * accelerator's time-shared FE hardware; the two eyes touch disjoint
 * workspace halves, so lanes == 2 is bit-exact with the sequential
 * lanes == 1 path. FrontendConfig::use_reference routes every task
 * through the retained scalar reference kernels instead (the benches'
 * "before" baseline and the golden-equivalence tests' anchor).
 *
 * Every task is timed individually; the timing records feed the
 * characterization benches (Figs. 5, 9-11, 20) and the accelerator
 * model's workload inputs.
 */
#pragma once

#include <memory>
#include <vector>

#include "features/fast.hpp"
#include "features/keypoint.hpp"
#include "features/matcher.hpp"
#include "features/optical_flow.hpp"
#include "features/orb.hpp"
#include "features/stereo.hpp"
#include "frontend/workspace.hpp"
#include "image/pyramid.hpp"

namespace edx {

class WorkerLane;

/** Frontend configuration: per-block sub-configurations. */
struct FrontendConfig
{
    FastConfig fast;
    StereoConfig stereo;
    FlowConfig flow;

    /**
     * Intra-frontend worker lanes for the FE block: 1 = sequential
     * (the default), 2 = left/right eyes in parallel (bit-exact with
     * lanes == 1 — the eyes share no mutable state).
     */
    int lanes = 1;

    /**
     * Run the retained scalar reference kernels instead of the
     * optimized ones (allocating, single-lane). Used by the golden
     * equivalence tests and the before/after benches.
     */
    bool use_reference = false;
};

/** Wall-clock latency of each frontend task, milliseconds. */
struct FrontendTiming
{
    double fd_ms = 0.0; //!< feature point detection (both images)
    double if_ms = 0.0; //!< image filtering (both images)
    double fc_ms = 0.0; //!< descriptor calculation (both images)
    double mo_ms = 0.0; //!< stereo matching optimization
    double dr_ms = 0.0; //!< disparity refinement
    double tm_ms = 0.0; //!< temporal matching (DC + LSS)

    /** Feature-extraction block total. */
    double feBlock() const { return fd_ms + if_ms + fc_ms; }
    /** Stereo-matching block total. */
    double smBlock() const { return mo_ms + dr_ms; }
    /** Temporal-matching block total. */
    double tmBlock() const { return tm_ms; }
    /** Sequential software total. */
    double total() const { return feBlock() + smBlock() + tmBlock(); }
};

/** Workload sizes of one frontend invocation (accelerator-model input). */
struct FrontendWorkload
{
    long image_pixels = 0;   //!< per image
    int left_features = 0;
    int right_features = 0;

    /**
     * Candidate pairs whose descriptor distance the software MO task
     * actually evaluated (the row-banded matcher's workload).
     */
    int stereo_candidates = 0;

    /**
     * The all-pairs candidate count (left x right features) of the
     * brute-force epipolar sweep. The MO hardware model streams every
     * pair through its XOR+popcount lanes regardless of the software
     * matcher's bucketing, so the accelerator figures key off this.
     */
    int stereo_candidates_allpairs = 0;

    int stereo_matches = 0;
    int temporal_tracks = 0;
};

/** Frontend products for one frame. */
struct FrontendOutput
{
    std::vector<KeyPoint> keypoints;       //!< left-image key points
    std::vector<Descriptor> descriptors;   //!< aligned with keypoints
    std::vector<StereoMatch> stereo;       //!< left_index -> keypoints
    std::vector<TemporalMatch> temporal;   //!< prev_index -> previous frame
    FrontendTiming timing;
    FrontendWorkload workload;
};

/**
 * Inter-stage handoff of the split frontend (runFeStage / runSmStage /
 * runTmStage). The left-eye products land directly in FrontendOutput;
 * the right-eye products are only consumed by stereo matching, so they
 * travel in this context instead of the public output. The context is
 * owned by the frame job, so a downstream stage never reads the
 * frontend's workspace while an upstream stage of the next frame is
 * overwriting it.
 */
struct FrontendStageContext
{
    std::vector<KeyPoint> right_keypoints;
    std::vector<Descriptor> right_descriptors;

    size_t
    capacityBytes() const
    {
        return right_keypoints.capacity() * sizeof(KeyPoint) +
               right_descriptors.capacity() * sizeof(Descriptor);
    }
};

/**
 * The stateful frontend: owns the FrameWorkspace (including the
 * previous frame's pyramid, gradients and key points for temporal
 * matching) and, when lanes == 2, the second FE worker lane.
 */
class VisionFrontend
{
  public:
    explicit VisionFrontend(const FrontendConfig &cfg = {});
    ~VisionFrontend();

    VisionFrontend(const VisionFrontend &) = delete;
    VisionFrontend &operator=(const VisionFrontend &) = delete;

    /**
     * Processes a rectified stereo pair. The first call produces no
     * temporal matches (there is no previous frame yet).
     */
    FrontendOutput processFrame(const ImageU8 &left, const ImageU8 &right);

    /**
     * processFrame into a caller-owned output packet: with a reused
     * @p out, steady-state frames allocate nothing at all.
     */
    void processFrameInto(const ImageU8 &left, const ImageU8 &right,
                          FrontendOutput &out);

    // --- split sub-stage API (runtime/pipeline.hpp) ------------------
    //
    // processFrameInto() is exactly runFeStage(); runSmStage();
    // runTmStage() — the staged runtime calls the three pieces on
    // (possibly) different stage workers. Each call touches a disjoint
    // section of the frame workspace (per-eye buffers / stereo buffers
    // / temporal double-buffer), and all inter-stage data flows through
    // @p ctx and @p out, so FE of frame N+1 may run concurrently with
    // SM/TM of frame N with bit-identical results.

    /** Feature extraction (FD + IF + FC) on both eyes. */
    void runFeStage(const ImageU8 &left, const ImageU8 &right,
                    FrontendStageContext &ctx, FrontendOutput &out);

    /** Stereo matching (MO + DR) over the FE products. */
    void runSmStage(const ImageU8 &left, const ImageU8 &right,
                    FrontendStageContext &ctx, FrontendOutput &out);

    /** Temporal matching (DC + LSS) against the previous left frame. */
    void runTmStage(const ImageU8 &left, FrontendStageContext &ctx,
                    FrontendOutput &out);

    /** Drops temporal state (e.g., on dataset restart). */
    void reset();

    const FrontendConfig &config() const { return cfg_; }

    /**
     * Number of processed frames that grew any workspace buffer. Flat
     * across steady-state frames == the frame ran allocation-free.
     */
    size_t workspaceAllocationEvents() const { return alloc_events_; }

    /** Current workspace footprint (capacity), bytes. */
    size_t
    workspaceCapacityBytes() const
    {
        return ws_.capacityBytes() + mono_ctx_.capacityBytes();
    }

  private:
    struct EyeTiming
    {
        double fd_ms = 0.0, if_ms = 0.0, fc_ms = 0.0;
    };

    /** FD -> IF -> FC for one eye (one lane's share of the FE block). */
    void runEye(const ImageU8 &img, EyeWorkspace &eye, EyeTiming &t);

    void feOptimized(const ImageU8 &left, const ImageU8 &right,
                     FrontendStageContext &ctx, FrontendOutput &out);
    void smOptimized(const ImageU8 &left, const ImageU8 &right,
                     FrontendStageContext &ctx, FrontendOutput &out);
    void tmOptimized(const ImageU8 &left, FrontendOutput &out);
    void feReference(const ImageU8 &left, const ImageU8 &right,
                     FrontendStageContext &ctx, FrontendOutput &out);
    void smReference(const ImageU8 &left, const ImageU8 &right,
                     FrontendStageContext &ctx, FrontendOutput &out);
    void tmReference(const ImageU8 &left, FrontendOutput &out);

    FrontendConfig cfg_;
    FrameWorkspace ws_;
    FrontendStageContext mono_ctx_; //!< reused by processFrameInto()
    std::unique_ptr<WorkerLane> lane_;
    bool has_prev_ = false;
    size_t alloc_events_ = 0;
};

} // namespace edx
