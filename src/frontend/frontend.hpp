/**
 * @file
 * The unified vision frontend (Sec. IV-A / Sec. V of the paper).
 *
 * The frontend is shared by all three backend modes and is always
 * activated. It consists of three blocks:
 *
 *  - Feature extraction (FE): feature point detection (FD), image
 *    filtering (IF) and feature descriptor calculation (FC), run on both
 *    stereo images.
 *  - Stereo matching (SM): matching optimization (MO) + disparity
 *    refinement (DR), establishing spatial correspondences.
 *  - Temporal matching (TM): derivatives calculation (DC) + least
 *    squares solver (LSS), i.e. pyramidal Lucas-Kanade against the
 *    previous left frame.
 *
 * Every task is timed individually; the timing records feed the
 * characterization benches (Figs. 5, 9-11, 20) and the accelerator
 * model's workload inputs.
 */
#pragma once

#include <vector>

#include "features/fast.hpp"
#include "features/keypoint.hpp"
#include "features/matcher.hpp"
#include "features/optical_flow.hpp"
#include "features/orb.hpp"
#include "features/stereo.hpp"
#include "image/pyramid.hpp"

namespace edx {

/** Frontend configuration: per-block sub-configurations. */
struct FrontendConfig
{
    FastConfig fast;
    StereoConfig stereo;
    FlowConfig flow;
};

/** Wall-clock latency of each frontend task, milliseconds. */
struct FrontendTiming
{
    double fd_ms = 0.0; //!< feature point detection (both images)
    double if_ms = 0.0; //!< image filtering (both images)
    double fc_ms = 0.0; //!< descriptor calculation (both images)
    double mo_ms = 0.0; //!< stereo matching optimization
    double dr_ms = 0.0; //!< disparity refinement
    double tm_ms = 0.0; //!< temporal matching (DC + LSS)

    /** Feature-extraction block total. */
    double feBlock() const { return fd_ms + if_ms + fc_ms; }
    /** Stereo-matching block total. */
    double smBlock() const { return mo_ms + dr_ms; }
    /** Temporal-matching block total. */
    double tmBlock() const { return tm_ms; }
    /** Sequential software total. */
    double total() const { return feBlock() + smBlock() + tmBlock(); }
};

/** Workload sizes of one frontend invocation (accelerator-model input). */
struct FrontendWorkload
{
    long image_pixels = 0;   //!< per image
    int left_features = 0;
    int right_features = 0;
    int stereo_candidates = 0; //!< MO candidate pairs examined
    int stereo_matches = 0;
    int temporal_tracks = 0;
};

/** Frontend products for one frame. */
struct FrontendOutput
{
    std::vector<KeyPoint> keypoints;       //!< left-image key points
    std::vector<Descriptor> descriptors;   //!< aligned with keypoints
    std::vector<StereoMatch> stereo;       //!< left_index -> keypoints
    std::vector<TemporalMatch> temporal;   //!< prev_index -> previous frame
    FrontendTiming timing;
    FrontendWorkload workload;
};

/**
 * The stateful frontend: holds the previous frame's pyramid and key
 * points for temporal matching.
 */
class VisionFrontend
{
  public:
    explicit VisionFrontend(const FrontendConfig &cfg = {}) : cfg_(cfg) {}

    /**
     * Processes a rectified stereo pair. The first call produces no
     * temporal matches (there is no previous frame yet).
     */
    FrontendOutput processFrame(const ImageU8 &left, const ImageU8 &right);

    /** Drops temporal state (e.g., on dataset restart). */
    void reset();

    const FrontendConfig &config() const { return cfg_; }

  private:
    FrontendConfig cfg_;
    bool has_prev_ = false;
    Pyramid prev_pyramid_{ImageU8(2, 2), 1};
    std::vector<KeyPoint> prev_keypoints_;
};

} // namespace edx
