/**
 * @file
 * A minimal worker lane for intra-frontend parallelism.
 *
 * The hardware time-shares one feature-extraction pipeline across the
 * two camera streams (Sec. V-B); the software analogue runs the two
 * eyes on two lanes: the caller's thread is lane 0 and a WorkerLane is
 * lane 1. The lane holds exactly one posted job at a time (a plain
 * function pointer + argument, so posting never heap-allocates) and
 * the caller joins it with wait() before reading any shared state.
 */
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

namespace edx {

/** One persistent worker thread executing one posted job at a time. */
class WorkerLane
{
  public:
    WorkerLane() = default;
    ~WorkerLane() { stop(); }

    WorkerLane(const WorkerLane &) = delete;
    WorkerLane &operator=(const WorkerLane &) = delete;

    /** Spawns the thread on first use (idempotent). */
    void
    ensureStarted()
    {
        if (!thread_.joinable())
            thread_ = std::thread(&WorkerLane::loop, this);
    }

    /**
     * Posts one job. The lane must be idle (construction, wait(), or
     * job completion). @p fn runs on the lane thread with @p arg.
     */
    void
    post(void (*fn)(void *), void *arg)
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            fn_ = fn;
            arg_ = arg;
            busy_ = true;
        }
        cv_.notify_all();
    }

    /** Blocks until the posted job (if any) has finished. */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [&] { return !busy_; });
    }

    /** Joins the thread; the lane can be restarted afterwards. */
    void
    stop()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
        stop_ = false;
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(m_);
        for (;;) {
            cv_.wait(lock, [&] { return busy_ || stop_; });
            if (stop_)
                return;
            void (*fn)(void *) = fn_;
            void *arg = arg_;
            lock.unlock();
            fn(arg);
            lock.lock();
            busy_ = false;
            cv_.notify_all();
        }
    }

    std::thread thread_;
    std::mutex m_;
    std::condition_variable cv_;
    void (*fn_)(void *) = nullptr;
    void *arg_ = nullptr;
    bool busy_ = false;
    bool stop_ = false;
};

} // namespace edx
