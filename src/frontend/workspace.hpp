/**
 * @file
 * The per-frame frontend workspace: every buffer the vision frontend
 * touches on its hot path, owned in one place and reused frame to
 * frame so steady-state frames perform zero heap allocations.
 *
 * Ownership model:
 *  - VisionFrontend owns one FrameWorkspace for the lifetime of the
 *    session; processFrame() only ever writes into it.
 *  - Per-eye state (EyeWorkspace) is disjoint between left and right,
 *    so the two stereo lanes can fill them concurrently without
 *    synchronization.
 *  - Temporal state is double-buffered: the current frame's pyramid
 *    and per-level gradient images are built into `cur_*` and swapped
 *    with `prev_*` at frame end (pointer swaps, never copies).
 *
 * Allocation accounting: capacityBytes() folds the capacity of every
 * buffer into one number. VisionFrontend snapshots it around each
 * frame and counts frames that grew anything (allocationEvents());
 * the zero-alloc tests assert the counter stops moving once warm.
 */
#pragma once

#include <vector>

#include "features/fast.hpp"
#include "features/keypoint.hpp"
#include "features/optical_flow.hpp"
#include "features/stereo.hpp"
#include "image/filter.hpp"
#include "image/pyramid.hpp"

namespace edx {

/** Per-eye buffers of the feature-extraction block (FD + IF + FC). */
struct EyeWorkspace
{
    FastScratch fast;                  //!< FD score map / candidates
    std::vector<KeyPoint> keypoints;   //!< FD output
    BlurScratch blur;                  //!< IF horizontal-pass buffer
    ImageU8 blurred;                   //!< IF output
    std::vector<Descriptor> descriptors; //!< FC output

    size_t
    capacityBytes() const
    {
        return fast.capacityBytes() +
               keypoints.capacity() * sizeof(KeyPoint) +
               blur.tmp.capacity() * sizeof(uint16_t) +
               blurred.capacity() +
               descriptors.capacity() * sizeof(Descriptor);
    }
};

/** All reusable buffers of one frontend session. */
struct FrameWorkspace
{
    EyeWorkspace left, right;

    // Stereo-matching block (MO + DR).
    StereoRowIndex stereo_rows;
    std::vector<StereoMatch> stereo;
    std::vector<double> dr_costs;

    // Temporal-matching block: double-buffered pyramid + gradients.
    Pyramid cur_pyramid, prev_pyramid;
    std::vector<Gradients> cur_gradients, prev_gradients;
    std::vector<KeyPoint> prev_keypoints;
    FlowScratch flow;
    std::vector<TemporalMatch> temporal;

    size_t
    capacityBytes() const
    {
        size_t n = left.capacityBytes() + right.capacityBytes() +
                   stereo_rows.capacityBytes() +
                   stereo.capacity() * sizeof(StereoMatch) +
                   dr_costs.capacity() * sizeof(double) +
                   cur_pyramid.capacityBytes() +
                   prev_pyramid.capacityBytes() +
                   prev_keypoints.capacity() * sizeof(KeyPoint) +
                   flow.capacityBytes() +
                   temporal.capacity() * sizeof(TemporalMatch);
        for (const auto *grads : {&cur_gradients, &prev_gradients}) {
            n += grads->capacity() * sizeof(Gradients);
            for (const Gradients &g : *grads)
                n += (g.gx.capacity() + g.gy.capacity()) * sizeof(float);
        }
        return n;
    }
};

} // namespace edx
