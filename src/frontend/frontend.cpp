#include "frontend/frontend.hpp"

#include "frontend/lane.hpp"
#include "image/filter.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

VisionFrontend::VisionFrontend(const FrontendConfig &cfg) : cfg_(cfg) {}

VisionFrontend::~VisionFrontend() = default;

void
VisionFrontend::reset()
{
    has_prev_ = false;
    ws_.prev_keypoints.clear();
}

FrontendOutput
VisionFrontend::processFrame(const ImageU8 &left, const ImageU8 &right)
{
    FrontendOutput out;
    processFrameInto(left, right, out);
    return out;
}

void
VisionFrontend::processFrameInto(const ImageU8 &left,
                                 const ImageU8 &right,
                                 FrontendOutput &out)
{
    out.timing = {};
    out.workload = {};
    out.workload.image_pixels = left.pixelCount();
    if (cfg_.use_reference) {
        processReference(left, right, out);
        return;
    }
    const size_t cap_before = ws_.capacityBytes();
    processOptimized(left, right, out);
    if (ws_.capacityBytes() != cap_before)
        ++alloc_events_;
}

void
VisionFrontend::runEye(const ImageU8 &img, EyeWorkspace &eye,
                       EyeTiming &t)
{
    {
        StageTimer timer(t.fd_ms);
        detectFastInto(img, cfg_.fast, eye.fast, eye.keypoints);
    }
    {
        StageTimer timer(t.if_ms);
        gaussianBlurInto(img, eye.blur, eye.blurred);
    }
    {
        StageTimer timer(t.fc_ms);
        computeOrbDescriptorsInto(eye.blurred, eye.keypoints,
                                  eye.descriptors);
    }
}

void
VisionFrontend::processOptimized(const ImageU8 &left,
                                 const ImageU8 &right,
                                 FrontendOutput &out)
{
    // --- Feature extraction block (FD + IF + FC), both images. The
    // hardware time-shares one FE pipeline across the two streams
    // (Sec. V-B); with lanes == 2 the software runs one eye per worker
    // lane (disjoint workspace halves, so bit-exact with lanes == 1).
    if (cfg_.lanes >= 2) {
        if (!lane_)
            lane_ = std::make_unique<WorkerLane>();
        lane_->ensureStarted();

        struct LaneJob
        {
            VisionFrontend *fe;
            const ImageU8 *img;
            EyeWorkspace *eye;
            EyeTiming t;
        };
        LaneJob right_job{this, &right, &ws_.right, {}};
        EyeTiming left_t;

        double wall_ms = 0.0;
        {
            StageTimer wall(wall_ms);
            lane_->post(
                [](void *arg) {
                    auto *job = static_cast<LaneJob *>(arg);
                    job->fe->runEye(*job->img, *job->eye, job->t);
                },
                &right_job);
            runEye(left, ws_.left, left_t);
            lane_->wait();
        }

        // Per-task attribution: the lanes overlap, so the six task
        // timers sum to more than the wall span. Scale them so the
        // reported split preserves task proportions while total()
        // remains the true FE wall time.
        const EyeTiming &rt = right_job.t;
        const double lane_sum = left_t.fd_ms + left_t.if_ms +
                                left_t.fc_ms + rt.fd_ms + rt.if_ms +
                                rt.fc_ms;
        const double scale = lane_sum > 0.0 ? wall_ms / lane_sum : 0.0;
        out.timing.fd_ms = scale * (left_t.fd_ms + rt.fd_ms);
        out.timing.if_ms = scale * (left_t.if_ms + rt.if_ms);
        out.timing.fc_ms = scale * (left_t.fc_ms + rt.fc_ms);
    } else {
        {
            StageTimer timer(out.timing.fd_ms);
            detectFastInto(left, cfg_.fast, ws_.left.fast,
                           ws_.left.keypoints);
            detectFastInto(right, cfg_.fast, ws_.right.fast,
                           ws_.right.keypoints);
        }
        {
            StageTimer timer(out.timing.if_ms);
            gaussianBlurInto(left, ws_.left.blur, ws_.left.blurred);
            gaussianBlurInto(right, ws_.right.blur, ws_.right.blurred);
        }
        {
            StageTimer timer(out.timing.fc_ms);
            computeOrbDescriptorsInto(ws_.left.blurred,
                                      ws_.left.keypoints,
                                      ws_.left.descriptors);
            computeOrbDescriptorsInto(ws_.right.blurred,
                                      ws_.right.keypoints,
                                      ws_.right.descriptors);
        }
    }

    out.workload.left_features =
        static_cast<int>(ws_.left.keypoints.size());
    out.workload.right_features =
        static_cast<int>(ws_.right.keypoints.size());
    out.workload.stereo_candidates_allpairs =
        out.workload.left_features * out.workload.right_features;

    // --- Stereo matching block (MO + DR): epipolar row-band bucketing
    // instead of the all-pairs Hamming sweep.
    {
        StageTimer timer(out.timing.mo_ms);
        ws_.stereo_rows.build(ws_.right.keypoints, left.height());
        long evaluated = stereoMatchBandedInto(
            ws_.left.keypoints, ws_.left.descriptors,
            ws_.right.keypoints, ws_.right.descriptors, cfg_.stereo,
            ws_.stereo_rows, ws_.stereo);
        out.workload.stereo_candidates = static_cast<int>(evaluated);
    }
    {
        StageTimer timer(out.timing.dr_ms);
        stereoRefineDisparityInto(left, right, ws_.left.keypoints,
                                  ws_.stereo, cfg_.stereo, ws_.dr_costs);
    }
    out.workload.stereo_matches = static_cast<int>(ws_.stereo.size());

    // --- Temporal matching block (DC + LSS): LK against the previous
    // left frame, on the raw (unfiltered) pyramid. The pyramid and its
    // per-level gradient images are built once into the workspace's
    // current-frame slots and double-buffer-swapped into the previous
    // slots at frame end.
    {
        StageTimer timer(out.timing.tm_ms);
        ws_.cur_pyramid.rebuild(left, cfg_.flow.pyramid_levels);
        const int levels = ws_.cur_pyramid.levels();
        if (static_cast<int>(ws_.cur_gradients.size()) < levels)
            ws_.cur_gradients.resize(levels);
        for (int l = 0; l < levels; ++l) {
            if (cfg_.flow.scharr_gradients)
                scharrGradientsInto(ws_.cur_pyramid.level(l),
                                    ws_.cur_gradients[l]);
            else
                centralDiffGradientsInto(ws_.cur_pyramid.level(l),
                                         ws_.cur_gradients[l]);
        }
        if (has_prev_) {
            trackLucasKanadeInto(ws_.prev_pyramid, ws_.prev_gradients,
                                 ws_.cur_pyramid, ws_.prev_keypoints,
                                 cfg_.flow, ws_.flow, ws_.temporal);
        } else {
            ws_.temporal.clear();
        }
        swap(ws_.prev_pyramid, ws_.cur_pyramid);
        std::swap(ws_.prev_gradients, ws_.cur_gradients);
    }
    out.workload.temporal_tracks = static_cast<int>(ws_.temporal.size());

    ws_.prev_keypoints.assign(ws_.left.keypoints.begin(),
                              ws_.left.keypoints.end());
    has_prev_ = true;

    // Copy (not swap) the products out: the workspace keeps its
    // capacity, and a reused output packet keeps its own.
    out.keypoints.assign(ws_.left.keypoints.begin(),
                         ws_.left.keypoints.end());
    out.descriptors.assign(ws_.left.descriptors.begin(),
                           ws_.left.descriptors.end());
    out.stereo.assign(ws_.stereo.begin(), ws_.stereo.end());
    out.temporal.assign(ws_.temporal.begin(), ws_.temporal.end());
}

void
VisionFrontend::processReference(const ImageU8 &left,
                                 const ImageU8 &right,
                                 FrontendOutput &out)
{
    // The retained scalar path: every task through the reference
    // kernels, with the pre-workspace allocation behavior. This is the
    // "before" baseline the fig05/fig20 benches report against and the
    // anchor of the golden equivalence tests. (It is the scalar
    // formulation of the *current* algorithms — fixed-point blur,
    // gradient-image LK — so it tracks the pre-overhaul frontend's
    // cost without being bit-identical to the old float kernels.)
    std::vector<KeyPoint> lk, rk;
    {
        StageTimer timer(out.timing.fd_ms);
        lk = detectFastReference(left, cfg_.fast);
        rk = detectFastReference(right, cfg_.fast);
    }

    ImageU8 lf, rf;
    {
        StageTimer timer(out.timing.if_ms);
        lf = gaussianBlurReference(left);
        rf = gaussianBlurReference(right);
    }

    std::vector<Descriptor> ld, rd;
    {
        StageTimer timer(out.timing.fc_ms);
        ld = computeOrbDescriptorsReference(lf, lk);
        rd = computeOrbDescriptorsReference(rf, rk);
    }

    out.workload.left_features = static_cast<int>(lk.size());
    out.workload.right_features = static_cast<int>(rk.size());
    // The all-pairs sweep examines every (left, right) pair; both
    // counters carry that number on the reference path.
    out.workload.stereo_candidates_allpairs =
        static_cast<int>(lk.size()) * static_cast<int>(rk.size());
    out.workload.stereo_candidates =
        out.workload.stereo_candidates_allpairs;

    std::vector<StereoMatch> matches;
    {
        StageTimer timer(out.timing.mo_ms);
        matches = stereoMatchInitial(lk, ld, rk, rd, cfg_.stereo);
    }
    {
        StageTimer timer(out.timing.dr_ms);
        stereoRefineDisparityReference(left, right, lk, matches,
                                       cfg_.stereo);
    }
    out.workload.stereo_matches = static_cast<int>(matches.size());

    {
        StageTimer timer(out.timing.tm_ms);
        ws_.cur_pyramid.rebuild(left, cfg_.flow.pyramid_levels);
        if (has_prev_) {
            out.temporal = trackLucasKanadeReference(
                ws_.prev_pyramid, ws_.cur_pyramid, ws_.prev_keypoints,
                cfg_.flow);
        } else {
            out.temporal.clear();
        }
        swap(ws_.prev_pyramid, ws_.cur_pyramid);
    }
    out.workload.temporal_tracks = static_cast<int>(out.temporal.size());

    ws_.prev_keypoints.assign(lk.begin(), lk.end());
    has_prev_ = true;

    out.keypoints = std::move(lk);
    out.descriptors = std::move(ld);
    out.stereo = std::move(matches);
}

} // namespace edx
