#include "frontend/frontend.hpp"

#include "frontend/lane.hpp"
#include "image/filter.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

VisionFrontend::VisionFrontend(const FrontendConfig &cfg) : cfg_(cfg) {}

VisionFrontend::~VisionFrontend() = default;

void
VisionFrontend::reset()
{
    has_prev_ = false;
    ws_.prev_keypoints.clear();
}

FrontendOutput
VisionFrontend::processFrame(const ImageU8 &left, const ImageU8 &right)
{
    FrontendOutput out;
    processFrameInto(left, right, out);
    return out;
}

void
VisionFrontend::processFrameInto(const ImageU8 &left,
                                 const ImageU8 &right,
                                 FrontendOutput &out)
{
    // The monolithic frame call is exactly the three sub-stage calls in
    // sequence, so the split pipeline topologies are bit-identical to
    // this one by construction. The allocation accounting brackets all
    // three (the capacity sum is only safe to read when no other stage
    // worker is concurrently touching the workspace).
    const bool track_allocs = !cfg_.use_reference;
    const size_t cap_before =
        track_allocs ? ws_.capacityBytes() + mono_ctx_.capacityBytes()
                     : 0;
    runFeStage(left, right, mono_ctx_, out);
    runSmStage(left, right, mono_ctx_, out);
    runTmStage(left, mono_ctx_, out);
    if (track_allocs &&
        ws_.capacityBytes() + mono_ctx_.capacityBytes() != cap_before)
        ++alloc_events_;
}

void
VisionFrontend::runFeStage(const ImageU8 &left, const ImageU8 &right,
                           FrontendStageContext &ctx, FrontendOutput &out)
{
    out.timing = {};
    out.workload = {};
    out.workload.image_pixels = left.pixelCount();
    if (cfg_.use_reference)
        feReference(left, right, ctx, out);
    else
        feOptimized(left, right, ctx, out);
    out.workload.left_features = static_cast<int>(out.keypoints.size());
    out.workload.right_features =
        static_cast<int>(ctx.right_keypoints.size());
    out.workload.stereo_candidates_allpairs =
        out.workload.left_features * out.workload.right_features;
}

void
VisionFrontend::runSmStage(const ImageU8 &left, const ImageU8 &right,
                           FrontendStageContext &ctx, FrontendOutput &out)
{
    if (cfg_.use_reference)
        smReference(left, right, ctx, out);
    else
        smOptimized(left, right, ctx, out);
    out.workload.stereo_matches = static_cast<int>(out.stereo.size());
}

void
VisionFrontend::runTmStage(const ImageU8 &left, FrontendStageContext &,
                           FrontendOutput &out)
{
    if (cfg_.use_reference)
        tmReference(left, out);
    else
        tmOptimized(left, out);
    out.workload.temporal_tracks = static_cast<int>(out.temporal.size());
    ws_.prev_keypoints.assign(out.keypoints.begin(), out.keypoints.end());
    has_prev_ = true;
}

void
VisionFrontend::runEye(const ImageU8 &img, EyeWorkspace &eye,
                       EyeTiming &t)
{
    {
        StageTimer timer(t.fd_ms);
        detectFastInto(img, cfg_.fast, eye.fast, eye.keypoints);
    }
    {
        StageTimer timer(t.if_ms);
        gaussianBlurInto(img, eye.blur, eye.blurred);
    }
    {
        StageTimer timer(t.fc_ms);
        computeOrbDescriptorsInto(eye.blurred, eye.keypoints,
                                  eye.descriptors);
    }
}

void
VisionFrontend::feOptimized(const ImageU8 &left, const ImageU8 &right,
                            FrontendStageContext &ctx, FrontendOutput &out)
{
    // --- Feature extraction block (FD + IF + FC), both images. The
    // hardware time-shares one FE pipeline across the two streams
    // (Sec. V-B); with lanes == 2 the software runs one eye per worker
    // lane (disjoint workspace halves, so bit-exact with lanes == 1).
    if (cfg_.lanes >= 2) {
        if (!lane_)
            lane_ = std::make_unique<WorkerLane>();
        lane_->ensureStarted();

        struct LaneJob
        {
            VisionFrontend *fe;
            const ImageU8 *img;
            EyeWorkspace *eye;
            EyeTiming t;
        };
        LaneJob right_job{this, &right, &ws_.right, {}};
        EyeTiming left_t;

        double wall_ms = 0.0;
        {
            StageTimer wall(wall_ms);
            lane_->post(
                [](void *arg) {
                    auto *job = static_cast<LaneJob *>(arg);
                    job->fe->runEye(*job->img, *job->eye, job->t);
                },
                &right_job);
            runEye(left, ws_.left, left_t);
            lane_->wait();
        }

        // Per-task attribution: the lanes overlap, so the six task
        // timers sum to more than the wall span. Scale them so the
        // reported split preserves task proportions while total()
        // remains the true FE wall time.
        const EyeTiming &rt = right_job.t;
        const double lane_sum = left_t.fd_ms + left_t.if_ms +
                                left_t.fc_ms + rt.fd_ms + rt.if_ms +
                                rt.fc_ms;
        const double scale = lane_sum > 0.0 ? wall_ms / lane_sum : 0.0;
        out.timing.fd_ms = scale * (left_t.fd_ms + rt.fd_ms);
        out.timing.if_ms = scale * (left_t.if_ms + rt.if_ms);
        out.timing.fc_ms = scale * (left_t.fc_ms + rt.fc_ms);
    } else {
        {
            StageTimer timer(out.timing.fd_ms);
            detectFastInto(left, cfg_.fast, ws_.left.fast,
                           ws_.left.keypoints);
            detectFastInto(right, cfg_.fast, ws_.right.fast,
                           ws_.right.keypoints);
        }
        {
            StageTimer timer(out.timing.if_ms);
            gaussianBlurInto(left, ws_.left.blur, ws_.left.blurred);
            gaussianBlurInto(right, ws_.right.blur, ws_.right.blurred);
        }
        {
            StageTimer timer(out.timing.fc_ms);
            computeOrbDescriptorsInto(ws_.left.blurred,
                                      ws_.left.keypoints,
                                      ws_.left.descriptors);
            computeOrbDescriptorsInto(ws_.right.blurred,
                                      ws_.right.keypoints,
                                      ws_.right.descriptors);
        }
    }

    // Copy (not swap) the products out: the workspace keeps its
    // capacity, and a reused output packet keeps its own. The right-eye
    // products travel in the stage context — stereo matching may run on
    // a different stage worker while this FE section is already filling
    // the next frame.
    out.keypoints.assign(ws_.left.keypoints.begin(),
                         ws_.left.keypoints.end());
    out.descriptors.assign(ws_.left.descriptors.begin(),
                           ws_.left.descriptors.end());
    ctx.right_keypoints.assign(ws_.right.keypoints.begin(),
                               ws_.right.keypoints.end());
    ctx.right_descriptors.assign(ws_.right.descriptors.begin(),
                                 ws_.right.descriptors.end());
}

void
VisionFrontend::smOptimized(const ImageU8 &left, const ImageU8 &right,
                            FrontendStageContext &ctx, FrontendOutput &out)
{
    // --- Stereo matching block (MO + DR): epipolar row-band bucketing
    // instead of the all-pairs Hamming sweep.
    {
        StageTimer timer(out.timing.mo_ms);
        ws_.stereo_rows.build(ctx.right_keypoints, left.height());
        long evaluated = stereoMatchBandedInto(
            out.keypoints, out.descriptors, ctx.right_keypoints,
            ctx.right_descriptors, cfg_.stereo, ws_.stereo_rows,
            ws_.stereo);
        out.workload.stereo_candidates = static_cast<int>(evaluated);
    }
    {
        StageTimer timer(out.timing.dr_ms);
        stereoRefineDisparityInto(left, right, out.keypoints, ws_.stereo,
                                  cfg_.stereo, ws_.dr_costs);
    }
    out.stereo.assign(ws_.stereo.begin(), ws_.stereo.end());
}

void
VisionFrontend::tmOptimized(const ImageU8 &left, FrontendOutput &out)
{
    // --- Temporal matching block (DC + LSS): LK against the previous
    // left frame, on the raw (unfiltered) pyramid. The pyramid and its
    // per-level gradient images are built once into the workspace's
    // current-frame slots and double-buffer-swapped into the previous
    // slots at frame end.
    {
        StageTimer timer(out.timing.tm_ms);
        ws_.cur_pyramid.rebuild(left, cfg_.flow.pyramid_levels);
        const int levels = ws_.cur_pyramid.levels();
        if (static_cast<int>(ws_.cur_gradients.size()) < levels)
            ws_.cur_gradients.resize(levels);
        for (int l = 0; l < levels; ++l) {
            if (cfg_.flow.scharr_gradients)
                scharrGradientsInto(ws_.cur_pyramid.level(l),
                                    ws_.cur_gradients[l]);
            else
                centralDiffGradientsInto(ws_.cur_pyramid.level(l),
                                         ws_.cur_gradients[l]);
        }
        if (has_prev_) {
            trackLucasKanadeInto(ws_.prev_pyramid, ws_.prev_gradients,
                                 ws_.cur_pyramid, ws_.prev_keypoints,
                                 cfg_.flow, ws_.flow, ws_.temporal);
        } else {
            ws_.temporal.clear();
        }
        swap(ws_.prev_pyramid, ws_.cur_pyramid);
        std::swap(ws_.prev_gradients, ws_.cur_gradients);
    }
    out.temporal.assign(ws_.temporal.begin(), ws_.temporal.end());
}

void
VisionFrontend::feReference(const ImageU8 &left, const ImageU8 &right,
                            FrontendStageContext &ctx, FrontendOutput &out)
{
    // The retained scalar path: every task through the reference
    // kernels, with the pre-workspace allocation behavior. This is the
    // "before" baseline the fig05/fig20 benches report against and the
    // anchor of the golden equivalence tests. (It is the scalar
    // formulation of the *current* algorithms — fixed-point blur,
    // gradient-image LK — so it tracks the pre-overhaul frontend's
    // cost without being bit-identical to the old float kernels.)
    {
        StageTimer timer(out.timing.fd_ms);
        out.keypoints = detectFastReference(left, cfg_.fast);
        ctx.right_keypoints = detectFastReference(right, cfg_.fast);
    }

    ImageU8 lf, rf;
    {
        StageTimer timer(out.timing.if_ms);
        lf = gaussianBlurReference(left);
        rf = gaussianBlurReference(right);
    }

    {
        StageTimer timer(out.timing.fc_ms);
        out.descriptors = computeOrbDescriptorsReference(lf, out.keypoints);
        ctx.right_descriptors =
            computeOrbDescriptorsReference(rf, ctx.right_keypoints);
    }
}

void
VisionFrontend::smReference(const ImageU8 &left, const ImageU8 &right,
                            FrontendStageContext &ctx, FrontendOutput &out)
{
    // The all-pairs sweep examines every (left, right) pair; both
    // candidate counters carry that number on the reference path.
    out.workload.stereo_candidates =
        out.workload.stereo_candidates_allpairs;
    {
        StageTimer timer(out.timing.mo_ms);
        out.stereo =
            stereoMatchInitial(out.keypoints, out.descriptors,
                               ctx.right_keypoints,
                               ctx.right_descriptors, cfg_.stereo);
    }
    {
        StageTimer timer(out.timing.dr_ms);
        stereoRefineDisparityReference(left, right, out.keypoints,
                                       out.stereo, cfg_.stereo);
    }
}

void
VisionFrontend::tmReference(const ImageU8 &left, FrontendOutput &out)
{
    StageTimer timer(out.timing.tm_ms);
    ws_.cur_pyramid.rebuild(left, cfg_.flow.pyramid_levels);
    if (has_prev_) {
        out.temporal = trackLucasKanadeReference(
            ws_.prev_pyramid, ws_.cur_pyramid, ws_.prev_keypoints,
            cfg_.flow);
    } else {
        out.temporal.clear();
    }
    swap(ws_.prev_pyramid, ws_.cur_pyramid);
}

} // namespace edx
