#include "frontend/frontend.hpp"

#include "image/filter.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

void
VisionFrontend::reset()
{
    has_prev_ = false;
    prev_keypoints_.clear();
}

FrontendOutput
VisionFrontend::processFrame(const ImageU8 &left, const ImageU8 &right)
{
    FrontendOutput out;
    out.workload.image_pixels = left.pixelCount();

    // --- Feature extraction block (FD + IF + FC), both images. The
    // hardware time-shares one FE pipeline across the two streams
    // (Sec. V-B); in software they simply run back to back.
    std::vector<KeyPoint> lk, rk;
    {
        StageTimer timer(out.timing.fd_ms);
        lk = detectFast(left, cfg_.fast);
        rk = detectFast(right, cfg_.fast);
    }

    ImageU8 lf, rf;
    {
        StageTimer timer(out.timing.if_ms);
        lf = gaussianBlur(left);
        rf = gaussianBlur(right);
    }

    std::vector<Descriptor> ld, rd;
    {
        StageTimer timer(out.timing.fc_ms);
        ld = computeOrbDescriptors(lf, lk);
        rd = computeOrbDescriptors(rf, rk);
    }

    out.workload.left_features = static_cast<int>(lk.size());
    out.workload.right_features = static_cast<int>(rk.size());

    // --- Stereo matching block (MO + DR).
    std::vector<StereoMatch> matches;
    {
        StageTimer timer(out.timing.mo_ms);
        matches = stereoMatchInitial(lk, ld, rk, rd, cfg_.stereo);
    }
    // Every (left, right-in-band) pair is a Hamming candidate; the MO
    // hardware model uses this count.
    out.workload.stereo_candidates =
        static_cast<int>(lk.size()) * static_cast<int>(rk.size());

    {
        StageTimer timer(out.timing.dr_ms);
        stereoRefineDisparity(left, right, lk, matches, cfg_.stereo);
    }
    out.workload.stereo_matches = static_cast<int>(matches.size());

    // --- Temporal matching block (DC + LSS): LK against the previous
    // left frame. Runs on the raw (unfiltered) pyramid.
    {
        StageTimer timer(out.timing.tm_ms);
        Pyramid cur_pyr(left, cfg_.flow.pyramid_levels);
        if (has_prev_) {
            out.temporal = trackLucasKanade(prev_pyramid_, cur_pyr,
                                            prev_keypoints_, cfg_.flow);
        }
        prev_pyramid_ = std::move(cur_pyr);
    }
    out.workload.temporal_tracks = static_cast<int>(out.temporal.size());

    prev_keypoints_ = lk;
    has_prev_ = true;

    out.keypoints = std::move(lk);
    out.descriptors = std::move(ld);
    out.stereo = std::move(matches);
    return out;
}

} // namespace edx
