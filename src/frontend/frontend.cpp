#include "frontend/frontend.hpp"

#include <chrono>

#include "image/filter.hpp"

namespace edx {

namespace {

/** Milliseconds elapsed since @p start. */
double
msSince(std::chrono::steady_clock::time_point start)
{
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start).count();
}

} // namespace

void
VisionFrontend::reset()
{
    has_prev_ = false;
    prev_keypoints_.clear();
}

FrontendOutput
VisionFrontend::processFrame(const ImageU8 &left, const ImageU8 &right)
{
    using Clock = std::chrono::steady_clock;
    FrontendOutput out;
    out.workload.image_pixels = left.pixelCount();

    // --- Feature extraction block (FD + IF + FC), both images. The
    // hardware time-shares one FE pipeline across the two streams
    // (Sec. V-B); in software they simply run back to back.
    auto t0 = Clock::now();
    std::vector<KeyPoint> lk = detectFast(left, cfg_.fast);
    std::vector<KeyPoint> rk = detectFast(right, cfg_.fast);
    out.timing.fd_ms = msSince(t0);

    t0 = Clock::now();
    ImageU8 lf = gaussianBlur(left);
    ImageU8 rf = gaussianBlur(right);
    out.timing.if_ms = msSince(t0);

    t0 = Clock::now();
    std::vector<Descriptor> ld = computeOrbDescriptors(lf, lk);
    std::vector<Descriptor> rd = computeOrbDescriptors(rf, rk);
    out.timing.fc_ms = msSince(t0);

    out.workload.left_features = static_cast<int>(lk.size());
    out.workload.right_features = static_cast<int>(rk.size());

    // --- Stereo matching block (MO + DR).
    t0 = Clock::now();
    std::vector<StereoMatch> matches =
        stereoMatchInitial(lk, ld, rk, rd, cfg_.stereo);
    out.timing.mo_ms = msSince(t0);
    // Every (left, right-in-band) pair is a Hamming candidate; the MO
    // hardware model uses this count.
    out.workload.stereo_candidates =
        static_cast<int>(lk.size()) * static_cast<int>(rk.size());

    t0 = Clock::now();
    stereoRefineDisparity(left, right, lk, matches, cfg_.stereo);
    out.timing.dr_ms = msSince(t0);
    out.workload.stereo_matches = static_cast<int>(matches.size());

    // --- Temporal matching block (DC + LSS): LK against the previous
    // left frame. Runs on the raw (unfiltered) pyramid.
    t0 = Clock::now();
    Pyramid cur_pyr(left, cfg_.flow.pyramid_levels);
    if (has_prev_) {
        out.temporal = trackLucasKanade(prev_pyramid_, cur_pyr,
                                        prev_keypoints_, cfg_.flow);
    }
    out.timing.tm_ms = msSince(t0);
    out.workload.temporal_tracks = static_cast<int>(out.temporal.size());

    prev_pyramid_ = std::move(cur_pyr);
    prev_keypoints_ = lk;
    has_prev_ = true;

    out.keypoints = std::move(lk);
    out.descriptors = std::move(ld);
    out.stereo = std::move(matches);
    return out;
}

} // namespace edx
