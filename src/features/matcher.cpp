#include "features/matcher.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace edx {

namespace {

/** Finds the best and second-best train index for one query. */
struct BestPair
{
    int best = -1;
    int best_d = 257;
    int second_d = 257;
};

template <typename Pred>
BestPair
findBest(const Descriptor &q, const std::vector<Descriptor> &train,
         Pred admissible)
{
    BestPair bp;
    for (int t = 0; t < static_cast<int>(train.size()); ++t) {
        if (!admissible(t))
            continue;
        int d = hammingDistance(q, train[t]);
        if (d < bp.best_d) {
            bp.second_d = bp.best_d;
            bp.best_d = d;
            bp.best = t;
        } else if (d < bp.second_d) {
            bp.second_d = d;
        }
    }
    return bp;
}

bool
passesGates(const BestPair &bp, const MatchConfig &cfg)
{
    if (bp.best < 0 || bp.best_d > cfg.max_hamming)
        return false;
    if (bp.second_d <= 256 &&
        bp.best_d > cfg.ratio * static_cast<double>(bp.second_d))
        return false;
    return true;
}

} // namespace

std::vector<Match>
matchDescriptors(const std::vector<Descriptor> &query,
                 const std::vector<Descriptor> &train,
                 const MatchConfig &cfg)
{
    std::vector<Match> out;
    auto all = [](int) { return true; };
    for (int q = 0; q < static_cast<int>(query.size()); ++q) {
        BestPair bp = findBest(query[q], train, all);
        if (!passesGates(bp, cfg))
            continue;
        if (cfg.cross_check) {
            BestPair back = findBest(train[bp.best], query, all);
            if (back.best != q)
                continue;
        }
        out.push_back({q, bp.best, bp.best_d});
    }
    return out;
}

std::vector<Match>
matchDescriptorsWindowed(const std::vector<Descriptor> &query,
                         const std::vector<KeyPoint> &query_kps,
                         const std::vector<Descriptor> &train,
                         const std::vector<KeyPoint> &train_kps,
                         double radius, const MatchConfig &cfg)
{
    assert(query.size() == query_kps.size());
    assert(train.size() == train_kps.size());
    const double r2 = radius * radius;
    std::vector<Match> out;
    if (train.empty() || query.empty())
        return out;

    // Grid-bucket the train key points with cell size == radius so each
    // query only examines its 3x3 cell neighbourhood. This keeps the
    // association cost linear in the candidate count even for the
    // many-thousand-point projections of the registration mode.
    float min_x = train_kps[0].x, max_x = train_kps[0].x;
    float min_y = train_kps[0].y, max_y = train_kps[0].y;
    for (const KeyPoint &k : train_kps) {
        min_x = std::min(min_x, k.x);
        max_x = std::max(max_x, k.x);
        min_y = std::min(min_y, k.y);
        max_y = std::max(max_y, k.y);
    }
    const double cell = std::max(radius, 1.0);
    const int gw = static_cast<int>((max_x - min_x) / cell) + 1;
    const int gh = static_cast<int>((max_y - min_y) / cell) + 1;
    std::vector<std::vector<int>> grid(static_cast<size_t>(gw) * gh);
    for (int t = 0; t < static_cast<int>(train_kps.size()); ++t) {
        int cx = static_cast<int>((train_kps[t].x - min_x) / cell);
        int cy = static_cast<int>((train_kps[t].y - min_y) / cell);
        grid[static_cast<size_t>(cy) * gw + cx].push_back(t);
    }

    for (int q = 0; q < static_cast<int>(query.size()); ++q) {
        const KeyPoint &qk = query_kps[q];
        int cx = static_cast<int>((qk.x - min_x) / cell);
        int cy = static_cast<int>((qk.y - min_y) / cell);
        BestPair bp;
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                int gx = cx + dx, gy = cy + dy;
                if (gx < 0 || gx >= gw || gy < 0 || gy >= gh)
                    continue;
                for (int t : grid[static_cast<size_t>(gy) * gw + gx]) {
                    double ddx = train_kps[t].x - qk.x;
                    double ddy = train_kps[t].y - qk.y;
                    if (ddx * ddx + ddy * ddy > r2)
                        continue;
                    int d = hammingDistance(query[q], train[t]);
                    if (d < bp.best_d) {
                        bp.second_d = bp.best_d;
                        bp.best_d = d;
                        bp.best = t;
                    } else if (d < bp.second_d) {
                        bp.second_d = d;
                    }
                }
            }
        }
        if (!passesGates(bp, cfg))
            continue;
        out.push_back({q, bp.best, bp.best_d});
    }
    return out;
}

} // namespace edx
