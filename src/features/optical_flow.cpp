#include "features/optical_flow.hpp"

#include <cmath>

#include "math/mat.hpp"

namespace edx {

namespace {

/**
 * Tracks one point at one pyramid level against cached gradients of
 * the previous image. Returns false when the point leaves the image or
 * the system is ill-conditioned.
 *
 * This one routine is the solver for both the workspace path and the
 * reference path — the two differ only in where the gradient images
 * and window buffers come from, so their tracks are bit-identical by
 * construction (and the gradient images themselves are golden-tested
 * against the scalar Scharr reference).
 */
bool
trackAtLevel(const ImageU8 &prev, const Gradients &grad,
             const ImageU8 &next, double px, double py, double &nx,
             double &ny, const FlowConfig &cfg, FlowScratch &s,
             double &residual_out)
{
    const int r = cfg.window_radius;
    if (!prev.containsWithBorder(px, py, r + 2))
        return false;

    // DC task: sample the template window and its cached Scharr
    // gradients with one shared set of bilinear weights (every sample
    // in the window has the same sub-pixel fraction).
    const int n = (2 * r + 1) * (2 * r + 1);
    const int x0 = static_cast<int>(std::floor(px)) - r;
    const int y0 = static_cast<int>(std::floor(py)) - r;
    const double fx = px - std::floor(px);
    const double fy = py - std::floor(py);
    const double w00 = (1 - fx) * (1 - fy), w10 = fx * (1 - fy);
    const double w01 = (1 - fx) * fy, w11 = fx * fy;

    s.iv.resize(n);
    s.ix.resize(n);
    s.iy.resize(n);
    double *iv = s.iv.data(), *ix = s.ix.data(), *iy = s.iy.data();

    Mat2 g;
    int idx = 0;
    for (int dy = 0; dy <= 2 * r; ++dy) {
        const uint8_t *p0 = prev.rowPtr(y0 + dy) + x0;
        const uint8_t *p1 = prev.rowPtr(y0 + dy + 1) + x0;
        const float *gx0 = grad.gx.rowPtr(y0 + dy) + x0;
        const float *gx1 = grad.gx.rowPtr(y0 + dy + 1) + x0;
        const float *gy0 = grad.gy.rowPtr(y0 + dy) + x0;
        const float *gy1 = grad.gy.rowPtr(y0 + dy + 1) + x0;
        for (int dx = 0; dx <= 2 * r; ++dx, ++idx) {
            iv[idx] = w00 * p0[dx] + w10 * p0[dx + 1] + w01 * p1[dx] +
                      w11 * p1[dx + 1];
            const double gx = w00 * gx0[dx] + w10 * gx0[dx + 1] +
                              w01 * gx1[dx] + w11 * gx1[dx + 1];
            const double gy = w00 * gy0[dx] + w10 * gy0[dx + 1] +
                              w01 * gy1[dx] + w11 * gy1[dx + 1];
            ix[idx] = gx;
            iy[idx] = gy;
            g(0, 0) += gx * gx;
            g(0, 1) += gx * gy;
            g(1, 1) += gy * gy;
        }
    }
    g(1, 0) = g(0, 1);

    // Conditioning gate: minimum eigenvalue of G normalized by window
    // area (rejects textureless or edge-only regions).
    double tr = g(0, 0) + g(1, 1);
    double dt = det(g);
    double disc = std::sqrt(std::max(0.0, tr * tr / 4.0 - dt));
    double lambda_min = (tr / 2.0 - disc) / n;
    if (lambda_min < cfg.min_eigenvalue)
        return false;

    Mat2 ginv = inverse(g);

    // LSS task: iterate v <- v + G^{-1} b until the update is small.
    // As in DC, every window sample shares the current sub-pixel
    // fraction of (nx, ny), so the bilinear weights are hoisted out of
    // the window loop.
    for (int it = 0; it < cfg.max_iterations; ++it) {
        if (!next.containsWithBorder(nx, ny, r + 2))
            return false;
        const int nx0 = static_cast<int>(std::floor(nx));
        const int ny0 = static_cast<int>(std::floor(ny));
        const double nfx = nx - nx0, nfy = ny - ny0;
        const double q00 = (1 - nfx) * (1 - nfy), q10 = nfx * (1 - nfy);
        const double q01 = (1 - nfx) * nfy, q11 = nfx * nfy;

        Vec2 b;
        double res = 0.0;
        idx = 0;
        for (int dy = -r; dy <= r; ++dy) {
            const uint8_t *r0 = next.rowPtr(ny0 + dy) + nx0 - r;
            const uint8_t *r1 = next.rowPtr(ny0 + dy + 1) + nx0 - r;
            for (int dx = 0; dx <= 2 * r; ++dx, ++idx) {
                double sample = q00 * r0[dx] + q10 * r0[dx + 1] +
                                q01 * r1[dx] + q11 * r1[dx + 1];
                double dI = sample - iv[idx];
                b[0] += dI * ix[idx];
                b[1] += dI * iy[idx];
                res += std::abs(dI);
            }
        }
        residual_out = res / n;
        Vec2 v = ginv * b;
        nx -= v[0];
        ny -= v[1];
        if (v.norm() < cfg.epsilon)
            break;
    }
    return next.containsWithBorder(nx, ny, r + 2);
}

void
trackAll(const Pyramid &prev, const std::vector<Gradients> &prev_grads,
         const Pyramid &next, const std::vector<KeyPoint> &prev_pts,
         const FlowConfig &cfg, FlowScratch &scratch,
         std::vector<TemporalMatch> &out)
{
    out.clear();
    const int levels =
        std::min({cfg.pyramid_levels, prev.levels(), next.levels(),
                  static_cast<int>(prev_grads.size())});
    if (levels <= 0)
        return;

    for (int i = 0; i < static_cast<int>(prev_pts.size()); ++i) {
        const KeyPoint &kp = prev_pts[i];
        // Start at the coarsest level with the identity guess.
        double scale = std::pow(2.0, levels - 1);
        double nx = kp.x / scale, ny = kp.y / scale;
        bool ok = true;
        double residual = 0.0;
        for (int l = levels - 1; l >= 0; --l) {
            double s = std::pow(2.0, l);
            double px = kp.x / s, py = kp.y / s;
            double cx = nx, cy = ny;
            ok = trackAtLevel(prev.level(l), prev_grads[l],
                              next.level(l), px, py, cx, cy, cfg,
                              scratch, residual);
            if (ok) {
                nx = cx;
                ny = cy;
            } else if (l > 0) {
                // Coarse levels may lack texture (patches shrink to a few
                // pixels); keep the current guess and let finer levels
                // recover. Only the finest level must succeed.
                ok = true;
            } else {
                break;
            }
            if (l > 0) {
                nx *= 2.0;
                ny *= 2.0;
            }
        }
        if (!ok || residual > cfg.max_residual)
            continue;
        out.push_back({i, static_cast<float>(nx), static_cast<float>(ny),
                       static_cast<float>(residual)});
    }
}

} // namespace

void
trackLucasKanadeInto(const Pyramid &prev,
                     const std::vector<Gradients> &prev_grads,
                     const Pyramid &next,
                     const std::vector<KeyPoint> &prev_pts,
                     const FlowConfig &cfg, FlowScratch &scratch,
                     std::vector<TemporalMatch> &out)
{
    trackAll(prev, prev_grads, next, prev_pts, cfg, scratch, out);
}

std::vector<TemporalMatch>
trackLucasKanade(const Pyramid &prev, const Pyramid &next,
                 const std::vector<KeyPoint> &prev_pts,
                 const FlowConfig &cfg)
{
    const int levels = std::min({cfg.pyramid_levels, prev.levels(),
                                 next.levels()});
    std::vector<Gradients> grads;
    for (int l = 0; l < levels; ++l)
        grads.push_back(cfg.scharr_gradients
                            ? scharrGradients(prev.level(l))
                            : centralDiffGradients(prev.level(l)));
    FlowScratch scratch;
    std::vector<TemporalMatch> out;
    trackAll(prev, grads, next, prev_pts, cfg, scratch, out);
    return out;
}

std::vector<TemporalMatch>
trackLucasKanadeReference(const Pyramid &prev, const Pyramid &next,
                          const std::vector<KeyPoint> &prev_pts,
                          const FlowConfig &cfg)
{
    const int levels = std::min({cfg.pyramid_levels, prev.levels(),
                                 next.levels()});
    std::vector<Gradients> grads;
    for (int l = 0; l < levels; ++l)
        grads.push_back(
            cfg.scharr_gradients
                ? scharrGradientsReference(prev.level(l))
                : centralDiffGradientsReference(prev.level(l)));
    FlowScratch scratch;
    std::vector<TemporalMatch> out;
    trackAll(prev, grads, next, prev_pts, cfg, scratch, out);
    return out;
}

} // namespace edx
