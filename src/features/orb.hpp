/**
 * @file
 * ORB descriptors: oriented FAST + rotated BRIEF (Rublee et al., 2011).
 *
 * This is the "Feature Descriptor Calculation (FC)" task of the frontend
 * pipeline. Each key point gets an intensity-centroid orientation and a
 * 256-bit binary descriptor sampled from a fixed pseudo-random pattern
 * rotated to that orientation. Descriptors feed stereo matching and the
 * bag-of-words tracking backend.
 *
 * computeOrbDescriptorsInto() is the workspace form with a raw-pointer
 * interior fast path (row-pointer moment accumulation over precomputed
 * circle extents; unclamped bilinear taps for points far enough from
 * the border). computeOrbDescriptorsReference() retains the scalar
 * clamped-sampling formulation; the two are bit-exact (golden-tested).
 */
#pragma once

#include <vector>

#include "features/keypoint.hpp"
#include "image/image.hpp"

namespace edx {

/** Half-size of the square patch the descriptor samples from. */
inline constexpr int kOrbPatchRadius = 15;

/**
 * Computes the intensity-centroid orientation of a patch around
 * (@p x, @p y); the point must be at least kOrbPatchRadius from the
 * image border.
 */
float orbOrientation(const ImageU8 &img, float x, float y);

/**
 * Computes ORB descriptors for @p kps on @p img (typically the Gaussian-
 * filtered image, as in the reference implementation). Orientations are
 * written back into the key points. Points too close to the border get
 * a zero descriptor.
 */
std::vector<Descriptor> computeOrbDescriptors(const ImageU8 &img,
                                              std::vector<KeyPoint> &kps);

/** computeOrbDescriptors into a caller-owned output (zero-alloc form). */
void computeOrbDescriptorsInto(const ImageU8 &img,
                               std::vector<KeyPoint> &kps,
                               std::vector<Descriptor> &out);

/** Scalar clamped-sampling reference (golden tests). */
std::vector<Descriptor> computeOrbDescriptorsReference(
    const ImageU8 &img, std::vector<KeyPoint> &kps);

/** Scalar reference of orbOrientation (golden tests). */
float orbOrientationReference(const ImageU8 &img, float x, float y);

} // namespace edx
