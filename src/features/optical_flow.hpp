/**
 * @file
 * Pyramidal Lucas-Kanade optical flow (Lucas & Kanade, 1981; Bouguet's
 * pyramidal formulation).
 *
 * This is the "Temporal Matching" block of the frontend (Fig. 12): the
 * derivatives-calculation (DC) task builds the spatial-gradient normal
 * matrix and the least-squares-solver (LSS) task iterates the 2x2 solve
 * per feature per pyramid level.
 */
#pragma once

#include <vector>

#include "features/keypoint.hpp"
#include "image/pyramid.hpp"

namespace edx {

/** LK tracker configuration. */
struct FlowConfig
{
    int window_radius = 7;     //!< integration window half-size
    int pyramid_levels = 3;
    int max_iterations = 12;
    double epsilon = 0.03;     //!< convergence threshold on the update
    double max_residual = 18.0; //!< mean photometric residual gate
    double min_eigenvalue = 1e-3; //!< conditioning gate on G
};

/**
 * Tracks @p prev_pts from the previous frame into the current frame.
 *
 * @param prev pyramid of the previous frame
 * @param next pyramid of the current frame
 * @param prev_pts feature locations in the previous frame
 * @param cfg tracker configuration
 * @return one TemporalMatch per successfully tracked input point, with
 *         prev_index referring to @p prev_pts
 */
std::vector<TemporalMatch> trackLucasKanade(
    const Pyramid &prev, const Pyramid &next,
    const std::vector<KeyPoint> &prev_pts, const FlowConfig &cfg = {});

} // namespace edx
