/**
 * @file
 * Pyramidal Lucas-Kanade optical flow (Lucas & Kanade, 1981; Bouguet's
 * pyramidal formulation).
 *
 * This is the "Temporal Matching" block of the frontend (Fig. 12): the
 * derivatives-calculation (DC) task samples the spatial gradients and
 * builds the normal matrix, and the least-squares-solver (LSS) task
 * iterates the 2x2 solve per feature per pyramid level.
 *
 * Spatial gradients are Scharr images computed once per pyramid level
 * (image/filter.hpp) and sampled bilinearly per feature window —
 * mirroring the accelerator's DC stage, which streams whole-image
 * derivatives, and letting the frontend workspace cache them across
 * features, iterations and frames. trackLucasKanadeInto() is the
 * zero-alloc form over caller-cached gradients;
 * trackLucasKanadeReference() recomputes everything per call through
 * the scalar reference kernels (golden-tested bit-exact).
 */
#pragma once

#include <vector>

#include "features/keypoint.hpp"
#include "image/filter.hpp"
#include "image/pyramid.hpp"

namespace edx {

/** LK tracker configuration. */
struct FlowConfig
{
    int window_radius = 7;     //!< integration window half-size
    int pyramid_levels = 3;
    int max_iterations = 12;
    double epsilon = 0.03;     //!< convergence threshold on the update
    double max_residual = 18.0; //!< mean photometric residual gate
    double min_eigenvalue = 1e-3; //!< conditioning gate on G

    /**
     * DC gradient stencil. Central difference is the classical Bouguet
     * formulation (bilinear-sampling the cached central-difference
     * image reproduces the patch-differencing math exactly, so tracks
     * keep their pre-caching accuracy); Scharr adds cross-smoothing at
     * the same cost.
     */
    bool scharr_gradients = false;
};

/** Reusable per-window buffers of the LK tracker. */
struct FlowScratch
{
    std::vector<double> iv; //!< template window intensities
    std::vector<double> ix; //!< template window x-gradients
    std::vector<double> iy; //!< template window y-gradients

    size_t
    capacityBytes() const
    {
        return (iv.capacity() + ix.capacity() + iy.capacity()) *
               sizeof(double);
    }
};

/**
 * Tracks @p prev_pts from the previous frame into the current frame
 * over caller-cached per-level Scharr gradients of @p prev.
 *
 * @param prev pyramid of the previous frame
 * @param prev_grads one Gradients per level of @p prev (at least as
 *        many as the levels tracked)
 * @param next pyramid of the current frame
 * @param prev_pts feature locations in the previous frame
 * @param cfg tracker configuration
 * @param scratch reusable window buffers
 * @param out one TemporalMatch per successfully tracked input point,
 *        with prev_index referring to @p prev_pts
 */
void trackLucasKanadeInto(const Pyramid &prev,
                          const std::vector<Gradients> &prev_grads,
                          const Pyramid &next,
                          const std::vector<KeyPoint> &prev_pts,
                          const FlowConfig &cfg, FlowScratch &scratch,
                          std::vector<TemporalMatch> &out);

/** Allocating convenience form: computes the gradients internally. */
std::vector<TemporalMatch> trackLucasKanade(
    const Pyramid &prev, const Pyramid &next,
    const std::vector<KeyPoint> &prev_pts, const FlowConfig &cfg = {});

/** Scalar reference: per-call gradients via the reference Scharr. */
std::vector<TemporalMatch> trackLucasKanadeReference(
    const Pyramid &prev, const Pyramid &next,
    const std::vector<KeyPoint> &prev_pts, const FlowConfig &cfg = {});

} // namespace edx
