/**
 * @file
 * AVX2 tier of the FAST-9 detector: the dense compass prefilter and
 * saturating run-length segment test at 32 pixels per step, plus the
 * vectorized per-corner scorer. Same exact integer arithmetic as the
 * scalar/SSE2 code in fast.cpp, so flags, masks, and scores are
 * bit-identical; emission stays in fast.cpp.
 *
 * Only <immintrin.h> here — see simd_avx2.cpp for the ODR rationale.
 */
#if defined(EDX_HAVE_AVX2)

#include <immintrin.h>

#include "features/fast_avx2.hpp"

namespace edx {
namespace avx2 {

namespace {

/** v > hi (unsigned bytes): subs(v, hi) != 0. */
inline __m256i
gtU8(__m256i v, __m256i hi)
{
    return _mm256_xor_si256(
        _mm256_cmpeq_epi8(_mm256_subs_epu8(v, hi),
                          _mm256_setzero_si256()),
        _mm256_set1_epi8(-1));
}

inline __m256i
load(const unsigned char *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

} // namespace

int
fastPrefilter(const unsigned char *row, const unsigned char *row_n,
              const unsigned char *row_s, int t, unsigned char *flags,
              int x, int xe)
{
    const __m256i vt = _mm256_set1_epi8(static_cast<char>(t));
    for (; x + 32 <= xe; x += 32) {
        const __m256i c = load(row + x);
        const __m256i hi = _mm256_adds_epu8(c, vt);
        const __m256i lo = _mm256_subs_epu8(c, vt);
        const __m256i v0 = load(row_n + x);
        const __m256i v8 = load(row_s + x);
        const __m256i v4 = load(row + x + 3);
        const __m256i v12 = load(row + x - 3);
        const __m256i bright = _mm256_and_si256(
            _mm256_or_si256(gtU8(v0, hi), gtU8(v8, hi)),
            _mm256_or_si256(gtU8(v4, hi), gtU8(v12, hi)));
        const __m256i dark = _mm256_and_si256(
            _mm256_or_si256(gtU8(lo, v0), gtU8(lo, v8)),
            _mm256_or_si256(gtU8(lo, v4), gtU8(lo, v12)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(flags + x),
                            _mm256_or_si256(bright, dark));
    }
    return x;
}

void
fastSegment32(const unsigned char *row, int x, const int *ring_off,
              int t, const unsigned char *flags, unsigned *corner_bits,
              unsigned *bright_bits)
{
    *corner_bits = 0;
    *bright_bits = 0;
    const __m256i zero = _mm256_setzero_si256();
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(load(flags + x), zero)) ==
        -1)
        return; // no prefilter survivors in this block
    const __m256i vt = _mm256_set1_epi8(static_cast<char>(t));
    const __m256i eight = _mm256_set1_epi8(8);
    const __m256i c = load(row + x);
    const __m256i hi = _mm256_adds_epu8(c, vt);
    const __m256i lo = _mm256_subs_epu8(c, vt);
    __m256i count_b = zero, count_d = zero;
    __m256i max_b = zero, max_d = zero;
    for (int i = 0; i < 24; ++i) {
        const __m256i v = load(row + x + ring_off[i & 15]);
        const __m256i bm = gtU8(v, hi);
        const __m256i dm = gtU8(lo, v);
        // count = pass ? count + 1 : 0
        count_b = _mm256_and_si256(bm, _mm256_sub_epi8(count_b, bm));
        count_d = _mm256_and_si256(dm, _mm256_sub_epi8(count_d, dm));
        max_b = _mm256_max_epu8(max_b, count_b);
        max_d = _mm256_max_epu8(max_d, count_d);
    }
    const __m256i bright9 = gtU8(max_b, eight);
    const __m256i dark9 = gtU8(max_d, eight);
    *corner_bits = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_or_si256(bright9, dark9)));
    *bright_bits =
        static_cast<unsigned>(_mm256_movemask_epi8(bright9));
}

int
scoreCorner16(const unsigned char *p, const int *ring_off, int hi, int lo,
              int c, bool bright)
{
    alignas(16) unsigned char ring[16];
    for (int i = 0; i < 16; ++i)
        ring[i] = p[ring_off[i]];
    const __m128i v =
        _mm_load_si128(reinterpret_cast<const __m128i *>(ring));
    const __m128i zero = _mm_setzero_si128();
    const __m128i ones = _mm_set1_epi8(-1);

    // Per-lane pass mask for the detected polarity. hi may exceed 255
    // and lo may be negative (int math in the caller); clamping to the
    // u8 range preserves the exact compare, as in the dense stages.
    __m128i pass;
    if (bright) {
        const __m128i vhi =
            _mm_set1_epi8(static_cast<char>(hi < 255 ? hi : 255));
        pass = _mm_xor_si128(
            _mm_cmpeq_epi8(_mm_subs_epu8(v, vhi), zero), ones);
    } else {
        const __m128i vlo =
            _mm_set1_epi8(static_cast<char>(lo > 0 ? lo : 0));
        pass = _mm_xor_si128(
            _mm_cmpeq_epi8(_mm_subs_epu8(vlo, v), zero), ones);
    }
    const __m128i vc = _mm_set1_epi8(static_cast<char>(c));
    const __m128i d =
        _mm_or_si128(_mm_subs_epu8(v, vc), _mm_subs_epu8(vc, v));

    // Run doubling over the circular ring (alignr(x, x, k) rotates so
    // lane s reads lane s + k): after the three doubling steps plus one
    // 8-rotate, lane s holds min / AND over ring[s .. s + 8] — the
    // 9-arc starting at s, all 16 starts at once.
    __m128i m = _mm_min_epu8(d, _mm_alignr_epi8(d, d, 1));
    __m128i a = _mm_and_si128(pass, _mm_alignr_epi8(pass, pass, 1));
    m = _mm_min_epu8(m, _mm_alignr_epi8(m, m, 2));
    a = _mm_and_si128(a, _mm_alignr_epi8(a, a, 2));
    m = _mm_min_epu8(m, _mm_alignr_epi8(m, m, 4));
    a = _mm_and_si128(a, _mm_alignr_epi8(a, a, 4));
    m = _mm_min_epu8(m, _mm_alignr_epi8(d, d, 8));
    a = _mm_and_si128(a, _mm_alignr_epi8(pass, pass, 8));

    // Arcs that fail drop to zero; a passing arc's min delta is always
    // >= 1 (every tap clears the threshold), so the horizontal max is
    // exactly the scalar sweep's best-of-passing-starts.
    const __m128i s = _mm_and_si128(m, a);
    __m128i r = _mm_max_epu8(s, _mm_srli_si128(s, 8));
    r = _mm_max_epu8(r, _mm_srli_si128(r, 4));
    r = _mm_max_epu8(r, _mm_srli_si128(r, 2));
    r = _mm_max_epu8(r, _mm_srli_si128(r, 1));
    return _mm_cvtsi128_si32(r) & 0xFF;
}

} // namespace avx2
} // namespace edx

#endif // EDX_HAVE_AVX2
