#include "features/orb.hpp"

#include <cmath>

#include "math/rng.hpp"

namespace edx {

namespace {

/** One BRIEF comparison: sample point pair inside the patch. */
struct PointPair
{
    float ax, ay, bx, by;
};

/**
 * The fixed 256-pair sampling pattern. Pairs are drawn once from an
 * isotropic Gaussian (sigma = patch_radius / 2) with a deterministic
 * seed, mirroring the learned-but-fixed pattern that ORB ships.
 */
const std::vector<PointPair> &
briefPattern()
{
    static const std::vector<PointPair> pattern = [] {
        std::vector<PointPair> p;
        p.reserve(256);
        Rng rng(0x04b1d); // fixed pattern seed
        const double sigma = kOrbPatchRadius / 2.0;
        auto clamped = [&](double v) {
            return std::clamp(v, -double(kOrbPatchRadius - 1),
                              double(kOrbPatchRadius - 1));
        };
        for (int i = 0; i < 256; ++i) {
            PointPair pp;
            pp.ax = static_cast<float>(clamped(rng.gaussian(0, sigma)));
            pp.ay = static_cast<float>(clamped(rng.gaussian(0, sigma)));
            pp.bx = static_cast<float>(clamped(rng.gaussian(0, sigma)));
            pp.by = static_cast<float>(clamped(rng.gaussian(0, sigma)));
            p.push_back(pp);
        }
        return p;
    }();
    return pattern;
}

} // namespace

float
orbOrientation(const ImageU8 &img, float x, float y)
{
    // Intensity centroid over a circular patch: angle = atan2(m01, m10).
    const int r = kOrbPatchRadius;
    const int cx = static_cast<int>(std::lround(x));
    const int cy = static_cast<int>(std::lround(y));
    double m01 = 0.0, m10 = 0.0;
    for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
            if (dx * dx + dy * dy > r * r)
                continue;
            double v = img.atClamped(cx + dx, cy + dy);
            m10 += dx * v;
            m01 += dy * v;
        }
    }
    return static_cast<float>(std::atan2(m01, m10));
}

std::vector<Descriptor>
computeOrbDescriptors(const ImageU8 &img, std::vector<KeyPoint> &kps)
{
    const auto &pattern = briefPattern();
    std::vector<Descriptor> out(kps.size());

    for (size_t i = 0; i < kps.size(); ++i) {
        KeyPoint &kp = kps[i];
        if (!img.containsWithBorder(kp.x, kp.y, kOrbPatchRadius + 1))
            continue; // zero descriptor for border points

        kp.angle = orbOrientation(img, kp.x, kp.y);
        const float ca = std::cos(kp.angle);
        const float sa = std::sin(kp.angle);

        Descriptor d;
        for (int b = 0; b < 256; ++b) {
            const PointPair &pp = pattern[b];
            // Rotate the sampling pair by the patch orientation.
            float ax = ca * pp.ax - sa * pp.ay + kp.x;
            float ay = sa * pp.ax + ca * pp.ay + kp.y;
            float bx = ca * pp.bx - sa * pp.by + kp.x;
            float by = sa * pp.bx + ca * pp.by + kp.y;
            double va = img.sampleBilinear(ax, ay);
            double vb = img.sampleBilinear(bx, by);
            if (va < vb)
                d.bits[b >> 6] |= (uint64_t{1} << (b & 63));
        }
        out[i] = d;
    }
    return out;
}

} // namespace edx
