#include "features/orb.hpp"

#include <array>
#include <cmath>

#include "math/rng.hpp"

namespace edx {

namespace {

/** One BRIEF comparison: sample point pair inside the patch. */
struct PointPair
{
    float ax, ay, bx, by;
};

/**
 * The fixed 256-pair sampling pattern. Pairs are drawn once from an
 * isotropic Gaussian (sigma = patch_radius / 2) with a deterministic
 * seed, mirroring the learned-but-fixed pattern that ORB ships.
 */
const std::vector<PointPair> &
briefPattern()
{
    static const std::vector<PointPair> pattern = [] {
        std::vector<PointPair> p;
        p.reserve(256);
        Rng rng(0x04b1d); // fixed pattern seed
        const double sigma = kOrbPatchRadius / 2.0;
        auto clamped = [&](double v) {
            return std::clamp(v, -double(kOrbPatchRadius - 1),
                              double(kOrbPatchRadius - 1));
        };
        for (int i = 0; i < 256; ++i) {
            PointPair pp;
            pp.ax = static_cast<float>(clamped(rng.gaussian(0, sigma)));
            pp.ay = static_cast<float>(clamped(rng.gaussian(0, sigma)));
            pp.bx = static_cast<float>(clamped(rng.gaussian(0, sigma)));
            pp.by = static_cast<float>(clamped(rng.gaussian(0, sigma)));
            p.push_back(pp);
        }
        return p;
    }();
    return pattern;
}

/**
 * Largest |dx| with dx^2 + dy^2 <= r^2 per |dy| row of the circular
 * orientation patch, so the moment loops run over contiguous spans.
 */
const int *
circleExtents()
{
    static const auto ext = [] {
        std::array<int, kOrbPatchRadius + 1> e{};
        const int r2 = kOrbPatchRadius * kOrbPatchRadius;
        for (int dy = 0; dy <= kOrbPatchRadius; ++dy) {
            int x = 0;
            while ((x + 1) * (x + 1) + dy * dy <= r2)
                ++x;
            e[dy] = x;
        }
        return e;
    }();
    return ext.data();
}

/**
 * Unclamped bilinear tap replicating Image::sampleBilinear's arithmetic
 * exactly for interior coordinates (where its clamps are no-ops).
 */
inline double
sampleBilinearFast(const ImageU8 &img, double x, double y)
{
    const int x0 = static_cast<int>(x);
    const int y0 = static_cast<int>(y);
    const double fx = x - x0;
    const double fy = y - y0;
    const uint8_t *r0 = img.rowPtr(y0);
    const uint8_t *r1 = img.rowPtr(y0 + 1);
    const double v00 = r0[x0];
    const double v10 = r0[x0 + 1];
    const double v01 = r1[x0];
    const double v11 = r1[x0 + 1];
    return v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) +
           v01 * (1 - fx) * fy + v11 * fx * fy;
}

/** Margin inside which every rotated BRIEF tap stays off the clamps. */
constexpr int kOrbFastBorder = 21; // ceil(sqrt(2) * (radius - 1)) + 1

} // namespace

float
orbOrientation(const ImageU8 &img, float x, float y)
{
    // Intensity centroid over a circular patch: angle = atan2(m01, m10).
    const int r = kOrbPatchRadius;
    const int cx = static_cast<int>(std::lround(x));
    const int cy = static_cast<int>(std::lround(y));
    double m01 = 0.0, m10 = 0.0;
    const int *ext = circleExtents();
    if (cx - r >= 0 && cx + r < img.width() && cy - r >= 0 &&
        cy + r < img.height()) {
        // Interior fast path: integer moment accumulation over row
        // pointers. Every product and partial sum is an exact integer
        // (|m| <= ~2.7M), and the reference's double accumulation of
        // the same integers is exact too, so the final moments are
        // bit-identical to the clamped double loop.
        long m10i = 0, m01i = 0;
        for (int dy = -r; dy <= r; ++dy) {
            const uint8_t *row = img.rowPtr(cy + dy) + cx;
            const int e = ext[dy < 0 ? -dy : dy];
            int rowsum = 0, rowmoment = 0;
            for (int dx = -e; dx <= e; ++dx) {
                const int v = row[dx];
                rowsum += v;
                rowmoment += dx * v;
            }
            m10i += rowmoment;
            m01i += static_cast<long>(dy) * rowsum;
        }
        m10 = static_cast<double>(m10i);
        m01 = static_cast<double>(m01i);
    } else {
        for (int dy = -r; dy <= r; ++dy) {
            const int e = ext[dy < 0 ? -dy : dy];
            for (int dx = -e; dx <= e; ++dx) {
                const double v = img.atClamped(cx + dx, cy + dy);
                m10 += dx * v;
                m01 += dy * v;
            }
        }
    }
    return static_cast<float>(std::atan2(m01, m10));
}

float
orbOrientationReference(const ImageU8 &img, float x, float y)
{
    const int r = kOrbPatchRadius;
    const int cx = static_cast<int>(std::lround(x));
    const int cy = static_cast<int>(std::lround(y));
    double m01 = 0.0, m10 = 0.0;
    for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
            if (dx * dx + dy * dy > r * r)
                continue;
            double v = img.atClamped(cx + dx, cy + dy);
            m10 += dx * v;
            m01 += dy * v;
        }
    }
    return static_cast<float>(std::atan2(m01, m10));
}

void
computeOrbDescriptorsInto(const ImageU8 &img, std::vector<KeyPoint> &kps,
                          std::vector<Descriptor> &out)
{
    const auto &pattern = briefPattern();
    out.clear();
    out.resize(kps.size());

    for (size_t i = 0; i < kps.size(); ++i) {
        KeyPoint &kp = kps[i];
        if (!img.containsWithBorder(kp.x, kp.y, kOrbPatchRadius + 1))
            continue; // zero descriptor for border points

        kp.angle = orbOrientation(img, kp.x, kp.y);
        const float ca = std::cos(kp.angle);
        const float sa = std::sin(kp.angle);
        const bool interior =
            img.containsWithBorder(kp.x, kp.y, kOrbFastBorder);

        Descriptor d;
        for (int b = 0; b < 256; ++b) {
            const PointPair &pp = pattern[b];
            // Rotate the sampling pair by the patch orientation.
            float ax = ca * pp.ax - sa * pp.ay + kp.x;
            float ay = sa * pp.ax + ca * pp.ay + kp.y;
            float bx = ca * pp.bx - sa * pp.by + kp.x;
            float by = sa * pp.bx + ca * pp.by + kp.y;
            double va, vb;
            if (interior) {
                va = sampleBilinearFast(img, ax, ay);
                vb = sampleBilinearFast(img, bx, by);
            } else {
                va = img.sampleBilinear(ax, ay);
                vb = img.sampleBilinear(bx, by);
            }
            if (va < vb)
                d.bits[b >> 6] |= (uint64_t{1} << (b & 63));
        }
        out[i] = d;
    }
}

std::vector<Descriptor>
computeOrbDescriptors(const ImageU8 &img, std::vector<KeyPoint> &kps)
{
    std::vector<Descriptor> out;
    computeOrbDescriptorsInto(img, kps, out);
    return out;
}

std::vector<Descriptor>
computeOrbDescriptorsReference(const ImageU8 &img,
                               std::vector<KeyPoint> &kps)
{
    const auto &pattern = briefPattern();
    std::vector<Descriptor> out(kps.size());

    for (size_t i = 0; i < kps.size(); ++i) {
        KeyPoint &kp = kps[i];
        if (!img.containsWithBorder(kp.x, kp.y, kOrbPatchRadius + 1))
            continue; // zero descriptor for border points

        kp.angle = orbOrientationReference(img, kp.x, kp.y);
        const float ca = std::cos(kp.angle);
        const float sa = std::sin(kp.angle);

        Descriptor d;
        for (int b = 0; b < 256; ++b) {
            const PointPair &pp = pattern[b];
            float ax = ca * pp.ax - sa * pp.ay + kp.x;
            float ay = sa * pp.ax + ca * pp.ay + kp.y;
            float bx = ca * pp.bx - sa * pp.by + kp.x;
            float by = sa * pp.bx + ca * pp.by + kp.y;
            double va = img.sampleBilinear(ax, ay);
            double vb = img.sampleBilinear(bx, by);
            if (va < vb)
                d.bits[b >> 6] |= (uint64_t{1} << (b & 63));
        }
        out[i] = d;
    }
    return out;
}

} // namespace edx
