/**
 * @file
 * Declarations of the AVX2 FAST-9 tier (features/fast_avx2.cpp,
 * compiled with -mavx2 -mfma). The dense stages are exact saturating-u8
 * integer arithmetic at 32 pixels per step (the SSE2 interior does
 * 16), so the candidate flags and corner/polarity masks are
 * bit-identical to the SSE2 tier; the per-corner scorer evaluates all
 * 16 arc starts at once and reproduces the scalar sweep bit-exactly.
 * Emission stays in fast.cpp, which preserves the output order.
 * Raw-pointer interfaces only (see simd_avx2.hpp for why).
 */
#pragma once

#if defined(EDX_HAVE_AVX2)

namespace edx {
namespace avx2 {

/**
 * Dense branchless compass prefilter: writes the candidate flag bytes
 * for pixels [x, x + 32*t) <= xe in 32-pixel steps and returns the
 * first unprocessed x.
 */
int fastPrefilter(const unsigned char *row, const unsigned char *row_n,
                  const unsigned char *row_s, int t, unsigned char *flags,
                  int x, int xe);

/**
 * Dense segment test for the 32-pixel block at @p row + @p x: returns
 * the corner mask and the bright-polarity mask (bit i = pixel x + i).
 * Returns 0 masks without ring work when the block has no prefilter
 * survivors in @p flags.
 */
void fastSegment32(const unsigned char *row, int x, const int *ring_off,
                   int t, const unsigned char *flags,
                   unsigned *corner_bits, unsigned *bright_bits);

/**
 * Vectorized per-corner scorer: all 16 arc starts at once via byte
 * rotations (run-doubling min/AND), bit-identical to the scalar sweep
 * in fast.cpp. This is the FAST hot spot — the dense stages reject
 * most pixels cheaply, so the detector's time concentrates in scoring
 * the thousands of raw corners per frame.
 */
int scoreCorner16(const unsigned char *p, const int *ring_off, int hi,
                  int lo, int c, bool bright);

} // namespace avx2
} // namespace edx

#endif // EDX_HAVE_AVX2
