/**
 * @file
 * Binary descriptor matching.
 *
 * Brute-force Hamming matching with the standard Lowe-style distance and
 * ratio gates, plus an optional spatial search window. Used by stereo
 * matching ("Matching Optimization", Fig. 12) and by map-point
 * association in the tracking backend.
 */
#pragma once

#include <vector>

#include "features/keypoint.hpp"

namespace edx {

/** A descriptor-level match between two feature sets. */
struct Match
{
    int query_index = -1;
    int train_index = -1;
    int hamming = 256;
};

/** Matching gates. */
struct MatchConfig
{
    int max_hamming = 64;        //!< reject matches above this distance
    double ratio = 0.8;          //!< best/second-best distance ratio gate
    bool cross_check = true;     //!< require mutual best match
};

/**
 * Matches each query descriptor to its best train descriptor under the
 * configured gates. Complexity O(|Q| * |T|).
 */
std::vector<Match> matchDescriptors(const std::vector<Descriptor> &query,
                                    const std::vector<Descriptor> &train,
                                    const MatchConfig &cfg = {});

/**
 * Spatially windowed match: only train points within @p radius pixels of
 * the query point are considered (used for map-point reprojection
 * association where a pose prediction is available).
 */
std::vector<Match> matchDescriptorsWindowed(
    const std::vector<Descriptor> &query,
    const std::vector<KeyPoint> &query_kps,
    const std::vector<Descriptor> &train,
    const std::vector<KeyPoint> &train_kps, double radius,
    const MatchConfig &cfg = {});

} // namespace edx
