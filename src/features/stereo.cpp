#include "features/stereo.hpp"

#include <algorithm>
#include <cmath>

namespace edx {

std::vector<StereoMatch>
stereoMatchInitial(const std::vector<KeyPoint> &left_kps,
                   const std::vector<Descriptor> &left_desc,
                   const std::vector<KeyPoint> &right_kps,
                   const std::vector<Descriptor> &right_desc,
                   const StereoConfig &cfg)
{
    std::vector<StereoMatch> out;
    for (int l = 0; l < static_cast<int>(left_kps.size()); ++l) {
        const KeyPoint &lk = left_kps[l];
        int best = -1, best_d = 257, second_d = 257;
        for (int r = 0; r < static_cast<int>(right_kps.size()); ++r) {
            const KeyPoint &rk = right_kps[r];
            // Rectified epipolar constraint: same row, positive disparity.
            if (std::abs(rk.y - lk.y) > cfg.max_epipolar_error)
                continue;
            float disp = lk.x - rk.x;
            if (disp < cfg.min_disparity || disp > cfg.max_disparity)
                continue;
            int d = hammingDistance(left_desc[l], right_desc[r]);
            if (d < best_d) {
                second_d = best_d;
                best_d = d;
                best = r;
            } else if (d < second_d) {
                second_d = d;
            }
        }
        if (best < 0 || best_d > cfg.max_hamming)
            continue;
        if (second_d <= 256 && best_d > 0.9 * second_d && best_d != second_d)
            continue; // ambiguous along the epipolar band
        out.push_back({l, left_kps[l].x - right_kps[best].x, best_d});
    }
    return out;
}

namespace {

/** SAD between a window at (lx, ly) in left and (rx, ly) in right. */
double
sad(const ImageU8 &left, const ImageU8 &right, int lx, int ly, double rx,
    int radius)
{
    double s = 0.0;
    for (int dy = -radius; dy <= radius; ++dy)
        for (int dx = -radius; dx <= radius; ++dx) {
            double lv = left.atClamped(lx + dx, ly + dy);
            double rv = right.sampleBilinear(rx + dx, ly + dy);
            s += std::abs(lv - rv);
        }
    return s;
}

} // namespace

void
stereoRefineDisparity(const ImageU8 &left, const ImageU8 &right,
                      const std::vector<KeyPoint> &left_kps,
                      std::vector<StereoMatch> &matches,
                      const StereoConfig &cfg)
{
    for (StereoMatch &m : matches) {
        const KeyPoint &lk = left_kps[m.left_index];
        const int lx = static_cast<int>(std::lround(lk.x));
        const int ly = static_cast<int>(std::lround(lk.y));

        // Integer SAD sweep around the ORB-proposed disparity.
        int best_off = 0;
        double best_cost = 1e300;
        std::vector<double> costs(2 * cfg.refine_range + 1, 0.0);
        for (int off = -cfg.refine_range; off <= cfg.refine_range; ++off) {
            double rx = lk.x - (m.disparity + off);
            double c = sad(left, right, lx, ly, rx, cfg.block_radius);
            costs[off + cfg.refine_range] = c;
            if (c < best_cost) {
                best_cost = c;
                best_off = off;
            }
        }
        double refined = m.disparity + best_off;

        // Parabolic sub-pixel interpolation around the SAD minimum.
        int ci = best_off + cfg.refine_range;
        if (ci > 0 && ci < 2 * cfg.refine_range) {
            double c0 = costs[ci - 1], c1 = costs[ci], c2 = costs[ci + 1];
            double denom = c0 - 2.0 * c1 + c2;
            if (std::abs(denom) > 1e-9) {
                double delta = 0.5 * (c0 - c2) / denom;
                if (std::abs(delta) <= 1.0)
                    refined += delta;
            }
        }
        m.disparity = static_cast<float>(
            std::clamp<double>(refined, cfg.min_disparity,
                               cfg.max_disparity));
    }
}

std::vector<StereoMatch>
stereoMatch(const ImageU8 &left, const ImageU8 &right,
            const std::vector<KeyPoint> &left_kps,
            const std::vector<Descriptor> &left_desc,
            const std::vector<KeyPoint> &right_kps,
            const std::vector<Descriptor> &right_desc,
            const StereoConfig &cfg)
{
    std::vector<StereoMatch> m = stereoMatchInitial(
        left_kps, left_desc, right_kps, right_desc, cfg);
    stereoRefineDisparity(left, right, left_kps, m, cfg);
    return m;
}

} // namespace edx
