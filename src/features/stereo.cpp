#include "features/stereo.hpp"

#include <algorithm>
#include <cmath>

namespace edx {

void
StereoRowIndex::build(const std::vector<KeyPoint> &right_kps,
                      int image_height)
{
    const int h = std::max(1, image_height);
    const int n = static_cast<int>(right_kps.size());
    starts.assign(static_cast<size_t>(h) + 1, 0);
    indices.resize(static_cast<size_t>(n));

    auto rowOf = [&](const KeyPoint &kp) {
        return std::clamp(static_cast<int>(kp.y), 0, h - 1);
    };
    for (const KeyPoint &kp : right_kps)
        ++starts[static_cast<size_t>(rowOf(kp)) + 1];
    for (int y = 0; y < h; ++y)
        starts[y + 1] += starts[y];
    // Stable counting sort: per-row index lists stay in ascending order.
    cursor_.assign(starts.begin(), starts.end() - 1);
    for (int r = 0; r < n; ++r)
        indices[static_cast<size_t>(cursor_[rowOf(right_kps[r])]++)] = r;
}

long
stereoMatchBandedInto(const std::vector<KeyPoint> &left_kps,
                      const std::vector<Descriptor> &left_desc,
                      const std::vector<KeyPoint> &right_kps,
                      const std::vector<Descriptor> &right_desc,
                      const StereoConfig &cfg, const StereoRowIndex &rows,
                      std::vector<StereoMatch> &out)
{
    out.clear();
    long evaluated = 0;
    const int h = static_cast<int>(rows.starts.size()) - 1;
    for (int l = 0; l < static_cast<int>(left_kps.size()); ++l) {
        const KeyPoint &lk = left_kps[l];
        // Only rows within the epipolar tolerance can hold candidates;
        // the exact float gates below reject stragglers at band edges.
        const int y0 = std::max(
            0, static_cast<int>(
                   std::floor(lk.y - cfg.max_epipolar_error)));
        const int y1 = std::min(
            h - 1, static_cast<int>(
                       std::floor(lk.y + cfg.max_epipolar_error)));

        // Order-independent (min, second-min, smallest-index argmin)
        // tracking: identical selection to the ascending all-pairs
        // sweep regardless of the order candidates arrive in.
        int best = -1, best_d = 257, second_d = 257;
        for (int y = y0; y <= y1; ++y) {
            for (int i = rows.starts[y]; i < rows.starts[y + 1]; ++i) {
                const int r = rows.indices[i];
                const KeyPoint &rk = right_kps[r];
                if (std::abs(rk.y - lk.y) > cfg.max_epipolar_error)
                    continue;
                float disp = lk.x - rk.x;
                if (disp < cfg.min_disparity || disp > cfg.max_disparity)
                    continue;
                int d = hammingDistance(left_desc[l], right_desc[r]);
                ++evaluated;
                if (d < best_d) {
                    second_d = best_d;
                    best_d = d;
                    best = r;
                } else if (d == best_d) {
                    second_d = d;
                    if (r < best)
                        best = r;
                } else if (d < second_d) {
                    second_d = d;
                }
            }
        }
        if (best < 0 || best_d > cfg.max_hamming)
            continue;
        if (second_d <= 256 && best_d > 0.9 * second_d && best_d != second_d)
            continue; // ambiguous along the epipolar band
        out.push_back({l, left_kps[l].x - right_kps[best].x, best_d});
    }
    return evaluated;
}

std::vector<StereoMatch>
stereoMatchInitial(const std::vector<KeyPoint> &left_kps,
                   const std::vector<Descriptor> &left_desc,
                   const std::vector<KeyPoint> &right_kps,
                   const std::vector<Descriptor> &right_desc,
                   const StereoConfig &cfg)
{
    std::vector<StereoMatch> out;
    for (int l = 0; l < static_cast<int>(left_kps.size()); ++l) {
        const KeyPoint &lk = left_kps[l];
        int best = -1, best_d = 257, second_d = 257;
        for (int r = 0; r < static_cast<int>(right_kps.size()); ++r) {
            const KeyPoint &rk = right_kps[r];
            // Rectified epipolar constraint: same row, positive disparity.
            if (std::abs(rk.y - lk.y) > cfg.max_epipolar_error)
                continue;
            float disp = lk.x - rk.x;
            if (disp < cfg.min_disparity || disp > cfg.max_disparity)
                continue;
            int d = hammingDistance(left_desc[l], right_desc[r]);
            if (d < best_d) {
                second_d = best_d;
                best_d = d;
                best = r;
            } else if (d < second_d) {
                second_d = d;
            }
        }
        if (best < 0 || best_d > cfg.max_hamming)
            continue;
        if (second_d <= 256 && best_d > 0.9 * second_d && best_d != second_d)
            continue; // ambiguous along the epipolar band
        out.push_back({l, left_kps[l].x - right_kps[best].x, best_d});
    }
    return out;
}

namespace {

/** SAD between a window at (lx, ly) in left and (rx, ly) in right. */
double
sadClamped(const ImageU8 &left, const ImageU8 &right, int lx, int ly,
           double rx, int radius)
{
    double s = 0.0;
    for (int dy = -radius; dy <= radius; ++dy)
        for (int dx = -radius; dx <= radius; ++dx) {
            double lv = left.atClamped(lx + dx, ly + dy);
            double rv = right.sampleBilinear(rx + dx, ly + dy);
            s += std::abs(lv - rv);
        }
    return s;
}

/**
 * Interior SAD fast path. With an integer sample row, the bilinear
 * y-weights collapse exactly (fy == 0), and every column shares the
 * fractional x-weight, so each row is two raw pointers and a fused
 * multiply-add sweep — bit-equal to sadClamped away from the borders.
 */
double
sadInterior(const ImageU8 &left, const ImageU8 &right, int lx, int ly,
            double rx, int radius)
{
    const double x0f = std::floor(rx);
    const double fx = rx - x0f;
    const int x0 = static_cast<int>(x0f);
    double s = 0.0;
    for (int dy = -radius; dy <= radius; ++dy) {
        const uint8_t *lrow = left.rowPtr(ly + dy) + lx - radius;
        const uint8_t *rrow = right.rowPtr(ly + dy) + x0 - radius;
        for (int i = 0; i <= 2 * radius; ++i) {
            const double lv = lrow[i];
            const double rv = rrow[i] * (1 - fx) + rrow[i + 1] * fx;
            s += std::abs(lv - rv);
        }
    }
    return s;
}

} // namespace

void
stereoRefineDisparityInto(const ImageU8 &left, const ImageU8 &right,
                          const std::vector<KeyPoint> &left_kps,
                          std::vector<StereoMatch> &matches,
                          const StereoConfig &cfg,
                          std::vector<double> &costs)
{
    const int rad = cfg.block_radius;
    const int w = left.width(), h = left.height();
    costs.assign(static_cast<size_t>(2 * cfg.refine_range) + 1, 0.0);
    for (StereoMatch &m : matches) {
        const KeyPoint &lk = left_kps[m.left_index];
        const int lx = static_cast<int>(std::lround(lk.x));
        const int ly = static_cast<int>(std::lround(lk.y));

        // Integer SAD sweep around the ORB-proposed disparity.
        int best_off = 0;
        double best_cost = 1e300;
        const bool rows_interior =
            ly - rad >= 0 && ly + rad <= h - 2 && lx - rad >= 0 &&
            lx + rad < w;
        for (int off = -cfg.refine_range; off <= cfg.refine_range; ++off) {
            double rx = lk.x - (m.disparity + off);
            const bool interior = rows_interior && rx - rad >= 0.0 &&
                                  rx + rad < w - 1.0 - 1e-6;
            double c = interior ? sadInterior(left, right, lx, ly, rx, rad)
                                : sadClamped(left, right, lx, ly, rx, rad);
            costs[off + cfg.refine_range] = c;
            if (c < best_cost) {
                best_cost = c;
                best_off = off;
            }
        }
        double refined = m.disparity + best_off;

        // Parabolic sub-pixel interpolation around the SAD minimum.
        int ci = best_off + cfg.refine_range;
        if (ci > 0 && ci < 2 * cfg.refine_range) {
            double c0 = costs[ci - 1], c1 = costs[ci], c2 = costs[ci + 1];
            double denom = c0 - 2.0 * c1 + c2;
            if (std::abs(denom) > 1e-9) {
                double delta = 0.5 * (c0 - c2) / denom;
                if (std::abs(delta) <= 1.0)
                    refined += delta;
            }
        }
        m.disparity = static_cast<float>(
            std::clamp<double>(refined, cfg.min_disparity,
                               cfg.max_disparity));
    }
}

void
stereoRefineDisparity(const ImageU8 &left, const ImageU8 &right,
                      const std::vector<KeyPoint> &left_kps,
                      std::vector<StereoMatch> &matches,
                      const StereoConfig &cfg)
{
    std::vector<double> costs;
    stereoRefineDisparityInto(left, right, left_kps, matches, cfg, costs);
}

void
stereoRefineDisparityReference(const ImageU8 &left, const ImageU8 &right,
                               const std::vector<KeyPoint> &left_kps,
                               std::vector<StereoMatch> &matches,
                               const StereoConfig &cfg)
{
    for (StereoMatch &m : matches) {
        const KeyPoint &lk = left_kps[m.left_index];
        const int lx = static_cast<int>(std::lround(lk.x));
        const int ly = static_cast<int>(std::lround(lk.y));

        int best_off = 0;
        double best_cost = 1e300;
        std::vector<double> costs(2 * cfg.refine_range + 1, 0.0);
        for (int off = -cfg.refine_range; off <= cfg.refine_range; ++off) {
            double rx = lk.x - (m.disparity + off);
            double c = sadClamped(left, right, lx, ly, rx,
                                  cfg.block_radius);
            costs[off + cfg.refine_range] = c;
            if (c < best_cost) {
                best_cost = c;
                best_off = off;
            }
        }
        double refined = m.disparity + best_off;

        int ci = best_off + cfg.refine_range;
        if (ci > 0 && ci < 2 * cfg.refine_range) {
            double c0 = costs[ci - 1], c1 = costs[ci], c2 = costs[ci + 1];
            double denom = c0 - 2.0 * c1 + c2;
            if (std::abs(denom) > 1e-9) {
                double delta = 0.5 * (c0 - c2) / denom;
                if (std::abs(delta) <= 1.0)
                    refined += delta;
            }
        }
        m.disparity = static_cast<float>(
            std::clamp<double>(refined, cfg.min_disparity,
                               cfg.max_disparity));
    }
}

std::vector<StereoMatch>
stereoMatch(const ImageU8 &left, const ImageU8 &right,
            const std::vector<KeyPoint> &left_kps,
            const std::vector<Descriptor> &left_desc,
            const std::vector<KeyPoint> &right_kps,
            const std::vector<Descriptor> &right_desc,
            const StereoConfig &cfg)
{
    StereoRowIndex rows;
    rows.build(right_kps, left.height());
    std::vector<StereoMatch> m;
    stereoMatchBandedInto(left_kps, left_desc, right_kps, right_desc,
                          cfg, rows, m);
    stereoRefineDisparity(left, right, left_kps, m, cfg);
    return m;
}

} // namespace edx
