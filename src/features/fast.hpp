/**
 * @file
 * FAST-9 corner detection with non-maximum suppression.
 *
 * This is the "Feature Point Detection (FD)" task of the frontend
 * accelerator pipeline (Fig. 12). Key points are detected with the
 * segment test of Rosten & Drummond on a 16-pixel Bresenham circle;
 * a corner requires 9 contiguous circle pixels all brighter or all
 * darker than the center by the threshold.
 *
 * detectFastInto() is the zero-alloc workspace form: the score map,
 * candidate list and grid buckets live in a reusable FastScratch, and
 * non-maximum suppression walks the recorded candidate list instead of
 * re-scanning the whole score image. detectFastReference() retains the
 * scalar full-scan formulation; the two are bit-exact (golden-tested).
 */
#pragma once

#include <vector>

#include "features/keypoint.hpp"
#include "image/image.hpp"

namespace edx {

/** Configuration for the FAST detector. */
struct FastConfig
{
    int threshold = 20;          //!< intensity delta for the segment test
    bool nonmax_suppression = true;
    int border = 16;             //!< ignore margin (descriptor patch fits)
    int max_features = 800;      //!< keep at most this many, by score
    int grid_cols = 8;           //!< spatial bucketing grid for max_features
    int grid_rows = 6;
};

/** Reusable buffers of the FAST detector (frontend workspace). */
struct FastScratch
{
    ImageF scores;               //!< sparse score map (cleared per use)
    std::vector<KeyPoint> raw;   //!< pre-NMS candidates, row-major order
    std::vector<std::vector<KeyPoint>> cells; //!< grid selection buckets
    std::vector<uint8_t> cand_row; //!< per-row compass prefilter flags

    /** Sum of buffer capacities, in bytes (allocation accounting). */
    size_t
    capacityBytes() const
    {
        size_t n = scores.capacity() * sizeof(float) +
                   raw.capacity() * sizeof(KeyPoint) +
                   cand_row.capacity() +
                   cells.capacity() * sizeof(cells[0]);
        for (const auto &c : cells)
            n += c.capacity() * sizeof(KeyPoint);
        return n;
    }
};

/**
 * Detects FAST-9 corners in @p img.
 *
 * When the raw corner count exceeds max_features, corners are selected
 * per grid cell by score so features stay spatially spread (as real
 * localization frontends require for well-conditioned pose estimation).
 */
std::vector<KeyPoint> detectFast(const ImageU8 &img,
                                 const FastConfig &cfg = {});

/** detectFast into caller-owned scratch and output (zero-alloc form). */
void detectFastInto(const ImageU8 &img, const FastConfig &cfg,
                    FastScratch &scratch, std::vector<KeyPoint> &out);

/** Scalar full-scan reference of detectFast (golden tests). */
std::vector<KeyPoint> detectFastReference(const ImageU8 &img,
                                          const FastConfig &cfg = {});

/**
 * Segment-test score of a single pixel: the largest threshold for which
 * the pixel would still be detected (approximated by the max over arcs of
 * the min absolute center difference). Exposed for testing.
 */
int fastScore(const ImageU8 &img, int x, int y);

} // namespace edx
