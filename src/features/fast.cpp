#include "features/fast.hpp"

#include <algorithm>
#include <bit>

#include "math/cpu_features.hpp"
#if defined(EDX_HAVE_AVX2)
#include "features/fast_avx2.hpp"
#endif

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace edx {

namespace {

/** Bresenham circle of radius 3: 16 (dx, dy) offsets in ring order. */
constexpr int kCircle[16][2] = {
    {0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
    {0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2},
    {-1, -3}};

constexpr int kArc = 9; //!< contiguous pixels required (FAST-9)

/**
 * Core segment test at the pixel behind @p p, using ring offsets
 * precomputed for the image stride. Returns true and fills @p score
 * when the pixel is a corner.
 */
bool
segmentTest(const uint8_t *p, const int *ring_off, int threshold,
            int *score)
{
    const int c = *p;
    const int hi = c + threshold;
    const int lo = c - threshold;

    // Quick rejection using the N/S/E/W compass points (offsets 0, 4,
    // 8, 12): for an arc of 9 to exist, at least 2 of the 4 compass
    // pixels must pass. This rejects the vast majority of pixels with
    // 4 loads instead of 16.
    {
        const int r0 = p[ring_off[0]], r4 = p[ring_off[4]];
        const int r8 = p[ring_off[8]], r12 = p[ring_off[12]];
        int bright4 = (r0 > hi) + (r4 > hi) + (r8 > hi) + (r12 > hi);
        int dark4 = (r0 < lo) + (r4 < lo) + (r8 < lo) + (r12 < lo);
        if (bright4 < 2 && dark4 < 2)
            return false;
    }

    int ring[16];
    for (int i = 0; i < 16; ++i)
        ring[i] = p[ring_off[i]];

    // Full test: scan the doubled ring for a contiguous bright/dark arc.
    auto has_arc = [&](auto pass) {
        int run = 0;
        for (int i = 0; i < 32; ++i) {
            if (pass(ring[i & 15])) {
                if (++run >= kArc)
                    return true;
            } else {
                run = 0;
            }
        }
        return false;
    };

    bool bright = has_arc([&](int v) { return v > hi; });
    bool dark = !bright && has_arc([&](int v) { return v < lo; });
    if (!bright && !dark)
        return false;

    if (score) {
        // Score: min absolute center delta over the best 9-arc, maximized
        // over arc start. This matches the "max threshold still corner"
        // definition closely enough for NMS ranking.
        int best = 0;
        for (int start = 0; start < 16; ++start) {
            int m = 255;
            bool ok = true;
            for (int j = 0; j < kArc; ++j) {
                int v = ring[(start + j) & 15];
                if (bright ? (v <= hi) : (v >= lo)) {
                    ok = false;
                    break;
                }
                m = std::min(m, std::abs(v - c));
            }
            if (ok)
                best = std::max(best, m);
        }
        *score = best;
    }
    return true;
}

/** Circular right-rotate of a 16-bit ring mask. */
inline unsigned
rotr16(unsigned m, int k)
{
    return ((m >> k) | (m << (16 - k))) & 0xFFFFu;
}

/** True when the 16-bit circular mask contains a run of >= 9 set bits. */
inline bool
hasArc9(unsigned m)
{
    const unsigned r2 = m & rotr16(m, 1);   // runs >= 2
    const unsigned r4 = r2 & rotr16(r2, 2); // runs >= 4
    const unsigned r8 = r4 & rotr16(r4, 4); // runs >= 8
    return (r8 & rotr16(m, 8)) != 0;        // runs >= 9
}

/**
 * Scores one detected corner with known polarity: max over 9-arcs of
 * the min absolute center delta (the same sweep segmentTest runs).
 */
int
scoreCorner(const uint8_t *p, const int *ring_off, int hi, int lo,
            int c, bool bright)
{
    int ring[16];
    for (int i = 0; i < 16; ++i)
        ring[i] = p[ring_off[i]];
    int best = 0;
    for (int start = 0; start < 16; ++start) {
        int m = 255;
        bool ok = true;
        for (int j = 0; j < kArc; ++j) {
            int v = ring[(start + j) & 15];
            if (bright ? (v <= hi) : (v >= lo)) {
                ok = false;
                break;
            }
            m = std::min(m, std::abs(v - c));
        }
        if (ok)
            best = std::max(best, m);
    }
    return best;
}

/**
 * Per-corner scorer with tier dispatch. Scoring is the detector's hot
 * spot — the dense stages reject most pixels cheaply, but every raw
 * corner (thousands per frame, well before the grid cap) pays the
 * 16-start arc sweep — so the AVX2 tier routes it to the vectorized
 * bit-exact twin (fast_avx2.cpp).
 */
inline int
scoreCornerTiered(const uint8_t *p, const int *ring_off, int hi, int lo,
                  int c, bool bright)
{
#if defined(EDX_HAVE_AVX2)
    if (simdTierIsAvx2())
        return avx2::scoreCorner16(p, ring_off, hi, lo, c, bright);
#endif
    return scoreCorner(p, ring_off, hi, lo, c, bright);
}

/**
 * Branch-light segment test: a two-stage compass prefilter (any 9-arc
 * must contain one of ring {0, 8} and one of ring {4, 12}, so most
 * pixels reject after two loads), then bitmask run detection instead
 * of the 32-iteration doubled-ring scan. Decision and score are
 * identical to segmentTest (golden-tested).
 */
bool
segmentTestFast(const uint8_t *p, const int *ring_off, int threshold,
                int *score)
{
    const int c = *p;
    const int hi = c + threshold;
    const int lo = c - threshold;

    const int v0 = p[ring_off[0]], v8 = p[ring_off[8]];
    bool maybe_bright = v0 > hi || v8 > hi;
    bool maybe_dark = v0 < lo || v8 < lo;
    if (!maybe_bright && !maybe_dark)
        return false;
    const int v4 = p[ring_off[4]], v12 = p[ring_off[12]];
    maybe_bright = maybe_bright && (v4 > hi || v12 > hi);
    maybe_dark = maybe_dark && (v4 < lo || v12 < lo);
    if (!maybe_bright && !maybe_dark)
        return false;

    int ring[16];
    for (int i = 0; i < 16; ++i)
        ring[i] = p[ring_off[i]];
    unsigned bright_mask = 0, dark_mask = 0;
    for (int i = 0; i < 16; ++i) {
        bright_mask |= static_cast<unsigned>(ring[i] > hi) << i;
        dark_mask |= static_cast<unsigned>(ring[i] < lo) << i;
    }

    const bool bright = maybe_bright && hasArc9(bright_mask);
    const bool dark = !bright && maybe_dark && hasArc9(dark_mask);
    if (!bright && !dark)
        return false;

    if (score)
        *score = scoreCornerTiered(p, ring_off, hi, lo, c, bright);
    return true;
}

} // namespace

int
fastScore(const ImageU8 &img, int x, int y)
{
    if (!img.containsWithBorder(x, y, 3))
        return 0;
    int ring_off[16];
    for (int i = 0; i < 16; ++i)
        ring_off[i] = kCircle[i][1] * img.width() + kCircle[i][0];
    int score = 0;
    if (!segmentTest(img.rowPtr(y) + x, ring_off, 1, &score))
        return 0;
    return score;
}

std::vector<KeyPoint>
detectFast(const ImageU8 &img, const FastConfig &cfg)
{
    FastScratch scratch;
    std::vector<KeyPoint> out;
    detectFastInto(img, cfg, scratch, out);
    return out;
}

void
detectFastInto(const ImageU8 &img, const FastConfig &cfg,
               FastScratch &scratch, std::vector<KeyPoint> &out)
{
    const int b = std::max(cfg.border, 3);
    out.clear();
    if (img.width() <= 2 * b || img.height() <= 2 * b)
        return;

    int ring_off[16];
    for (int i = 0; i < 16; ++i)
        ring_off[i] = kCircle[i][1] * img.width() + kCircle[i][0];
    if (scratch.cand_row.size() < static_cast<size_t>(img.width()))
        scratch.cand_row.resize(img.width());

    // Detection sweep. With NMS on, candidates are stamped into the
    // sparse score map *and* recorded in row-major order so suppression
    // can walk the candidate list instead of re-scanning the image.
    // The score map is all-zero between calls: only the recorded
    // candidates are cleared afterwards (never a full-image memset).
    scratch.raw.clear();
    std::vector<KeyPoint> &cand =
        cfg.nonmax_suppression ? scratch.raw : out;
    if (cfg.nonmax_suppression)
        scratch.scores.resize(img.width(), img.height());

    for (int y = b; y < img.height() - b; ++y) {
        const uint8_t *row = img.rowPtr(y);
        const uint8_t *row_n = img.rowPtr(y - 3); // ring 0: (0, -3)
        const uint8_t *row_s = img.rowPtr(y + 3); // ring 8: (0, +3)
        const int t = cfg.threshold;
        uint8_t *flags = scratch.cand_row.data();

        // Pass 1 (dense, branchless): any 9-arc must contain one of
        // ring {0, 8} AND one of ring {4, 12} (each pair is 8 apart,
        // and 8 < 9), so a pixel failing either pair for both
        // polarities cannot be a corner. Saturating u8 arithmetic
        // computes exactly the int conditions: c + t saturating to 255
        // makes "v > hi" false just as the unsaturated compare would.
        int x = b;
        const int xe = img.width() - b;
#if defined(EDX_HAVE_AVX2)
        // AVX2 tier: 32 pixels per step, bit-identical flag bytes; the
        // SSE2 and scalar loops below finish the row tail.
        if (simdTierIsAvx2())
            x = avx2::fastPrefilter(row, row_n, row_s, t, flags, x, xe);
#endif
#if defined(__SSE2__)
        {
            const __m128i vt = _mm_set1_epi8(static_cast<char>(t));
            const __m128i zero = _mm_setzero_si128();
            auto gt = [&](__m128i v, __m128i hi) {
                // v > hi (unsigned): subs(v, hi) != 0
                return _mm_xor_si128(
                    _mm_cmpeq_epi8(_mm_subs_epu8(v, hi), zero),
                    _mm_set1_epi8(-1));
            };
            for (; x + 16 <= xe; x += 16) {
                const __m128i c =
                    _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                        row + x));
                const __m128i hi = _mm_adds_epu8(c, vt);
                const __m128i lo = _mm_subs_epu8(c, vt);
                const __m128i v0 = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(row_n + x));
                const __m128i v8 = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(row_s + x));
                const __m128i v4 = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(row + x + 3));
                const __m128i v12 = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(row + x - 3));
                const __m128i bright = _mm_and_si128(
                    _mm_or_si128(gt(v0, hi), gt(v8, hi)),
                    _mm_or_si128(gt(v4, hi), gt(v12, hi)));
                const __m128i dark = _mm_and_si128(
                    _mm_or_si128(gt(lo, v0), gt(lo, v8)),
                    _mm_or_si128(gt(lo, v4), gt(lo, v12)));
                _mm_storeu_si128(
                    reinterpret_cast<__m128i *>(flags + x),
                    _mm_or_si128(bright, dark));
            }
        }
#endif
        for (; x < xe; ++x) {
            const int c = row[x];
            const int hi = c + t, lo = c - t;
            const int v0 = row_n[x], v8 = row_s[x];
            const int v4 = row[x + 3], v12 = row[x - 3];
            const int bright = ((v0 > hi) | (v8 > hi)) &
                               ((v4 > hi) | (v12 > hi));
            const int dark = ((v0 < lo) | (v8 < lo)) &
                             ((v4 < lo) | (v12 < lo));
            flags[x] = static_cast<uint8_t>(bright | dark);
        }

        // Pass 2: the full segment test, on survivor blocks only.
        auto emit = [&](int cx, int score) {
            if (cfg.nonmax_suppression)
                scratch.scores.at(cx, y) = static_cast<float>(score);
            cand.push_back({static_cast<float>(cx),
                            static_cast<float>(y),
                            static_cast<float>(score), 0.0f});
        };
        x = b;
#if defined(EDX_HAVE_AVX2)
        // AVX2 tier: 32-pixel corner/polarity masks from the same
        // saturating run counter; emission stays here, so the
        // left-to-right output order is identical per tier, and
        // scoring goes straight to the vectorized bit-exact twin.
        if (simdTierIsAvx2()) {
            for (; x + 32 <= xe; x += 32) {
                unsigned corner_bits = 0, bright_bits = 0;
                avx2::fastSegment32(row, x, ring_off, t, flags,
                                    &corner_bits, &bright_bits);
                while (corner_bits) {
                    const unsigned bit = corner_bits & -corner_bits;
                    const int lane = std::countr_zero(corner_bits);
                    corner_bits ^= bit;
                    const int cx = x + lane;
                    const int cc = row[cx];
                    emit(cx, avx2::scoreCorner16(row + cx, ring_off,
                                                 cc + t, cc - t, cc,
                                                 (bright_bits & bit) !=
                                                     0));
                }
            }
        }
#endif
#if defined(__SSE2__)
        // Dense SIMD segment test over 16-pixel blocks that hold at
        // least one prefilter survivor: a saturating run-length
        // counter over the doubled ring (24 taps) finds every
        // circular 9-arc, per polarity, for 16 pixels at once.
        {
            const __m128i vt = _mm_set1_epi8(static_cast<char>(t));
            const __m128i zero = _mm_setzero_si128();
            const __m128i eight = _mm_set1_epi8(8);
            auto gt = [&](__m128i a, __m128i g2) {
                return _mm_xor_si128(
                    _mm_cmpeq_epi8(_mm_subs_epu8(a, g2), zero),
                    _mm_set1_epi8(-1));
            };
            for (; x + 16 <= xe; x += 16) {
                if (_mm_movemask_epi8(_mm_cmpeq_epi8(
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(flags +
                                                              x)),
                        zero)) == 0xFFFF)
                    continue; // no survivors in this block
                const __m128i c = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(row + x));
                const __m128i hi = _mm_adds_epu8(c, vt);
                const __m128i lo = _mm_subs_epu8(c, vt);
                __m128i count_b = zero, count_d = zero;
                __m128i max_b = zero, max_d = zero;
                for (int i = 0; i < 24; ++i) {
                    const __m128i v = _mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(
                            row + x + ring_off[i & 15]));
                    const __m128i bm = gt(v, hi);
                    const __m128i dm = gt(lo, v);
                    // count = pass ? count + 1 : 0
                    count_b = _mm_and_si128(
                        bm, _mm_sub_epi8(count_b, bm));
                    count_d = _mm_and_si128(
                        dm, _mm_sub_epi8(count_d, dm));
                    max_b = _mm_max_epu8(max_b, count_b);
                    max_d = _mm_max_epu8(max_d, count_d);
                }
                const __m128i bright9 = gt(max_b, eight);
                const __m128i dark9 = gt(max_d, eight);
                int corner_bits = _mm_movemask_epi8(
                    _mm_or_si128(bright9, dark9));
                const int bright_bits = _mm_movemask_epi8(bright9);
                while (corner_bits) {
                    const int bit = corner_bits & -corner_bits;
                    const int lane = std::countr_zero(
                        static_cast<unsigned>(corner_bits));
                    corner_bits ^= bit;
                    const int cx = x + lane;
                    const int cc = row[cx];
                    emit(cx, scoreCornerTiered(row + cx, ring_off,
                                               cc + t, cc - t, cc,
                                               (bright_bits & bit) !=
                                                   0));
                }
            }
        }
#endif
        for (; x < xe; ++x) {
            if (!flags[x])
                continue;
            int score = 0;
            if (!segmentTestFast(row + x, ring_off, cfg.threshold,
                                 &score))
                continue;
            emit(x, score);
        }
    }

    if (cfg.nonmax_suppression) {
        const ImageF &scores = scratch.scores;
        for (const KeyPoint &kp : scratch.raw) {
            const int x = static_cast<int>(kp.x);
            const int y = static_cast<int>(kp.y);
            const float s = kp.score;
            bool is_max = true;
            for (int dy = -1; dy <= 1 && is_max; ++dy)
                for (int dx = -1; dx <= 1; ++dx) {
                    if (dx == 0 && dy == 0)
                        continue;
                    if (scores.at(x + dx, y + dy) > s ||
                        (scores.at(x + dx, y + dy) == s &&
                         (dy < 0 || (dy == 0 && dx < 0)))) {
                        is_max = false;
                        break;
                    }
                }
            if (is_max)
                out.push_back(kp);
        }
        for (const KeyPoint &kp : scratch.raw)
            scratch.scores.at(static_cast<int>(kp.x),
                              static_cast<int>(kp.y)) = 0.0f;
    }

    if (static_cast<int>(out.size()) <= cfg.max_features)
        return;

    // Grid-bucketed selection: strongest features per cell, preserving
    // spatial spread.
    const int gc = std::max(1, cfg.grid_cols);
    const int gr = std::max(1, cfg.grid_rows);
    const int per_cell = std::max(1, cfg.max_features / (gc * gr));
    if (scratch.cells.size() < static_cast<size_t>(gc) * gr)
        scratch.cells.resize(static_cast<size_t>(gc) * gr);
    for (auto &cell : scratch.cells)
        cell.clear();
    for (const KeyPoint &kp : out) {
        int cx = std::min(gc - 1,
                          static_cast<int>(kp.x) * gc / img.width());
        int cy = std::min(gr - 1,
                          static_cast<int>(kp.y) * gr / img.height());
        scratch.cells[static_cast<size_t>(cy) * gc + cx].push_back(kp);
    }
    out.clear();
    for (size_t ci = 0; ci < static_cast<size_t>(gc) * gr; ++ci) {
        auto &cell = scratch.cells[ci];
        std::sort(cell.begin(), cell.end(),
                  [](const KeyPoint &a, const KeyPoint &b) {
                      return a.score > b.score;
                  });
        for (int i = 0;
             i < std::min<int>(per_cell, static_cast<int>(cell.size()));
             ++i)
            out.push_back(cell[i]);
    }
}

std::vector<KeyPoint>
detectFastReference(const ImageU8 &img, const FastConfig &cfg)
{
    const int b = std::max(cfg.border, 3);
    std::vector<KeyPoint> raw;
    if (img.width() <= 2 * b || img.height() <= 2 * b)
        return raw;

    // Score map for non-max suppression.
    ImageF scores;
    if (cfg.nonmax_suppression)
        scores = ImageF(img.width(), img.height(), 0.0f);

    int ring_off[16];
    for (int i = 0; i < 16; ++i)
        ring_off[i] = kCircle[i][1] * img.width() + kCircle[i][0];

    for (int y = b; y < img.height() - b; ++y) {
        const uint8_t *row = img.rowPtr(y);
        for (int x = b; x < img.width() - b; ++x) {
            int score = 0;
            if (!segmentTest(row + x, ring_off, cfg.threshold, &score))
                continue;
            if (cfg.nonmax_suppression) {
                scores.at(x, y) = static_cast<float>(score);
            } else {
                raw.push_back({static_cast<float>(x),
                               static_cast<float>(y),
                               static_cast<float>(score), 0.0f});
            }
        }
    }

    if (cfg.nonmax_suppression) {
        for (int y = b; y < img.height() - b; ++y) {
            for (int x = b; x < img.width() - b; ++x) {
                float s = scores.at(x, y);
                if (s <= 0.0f)
                    continue;
                bool is_max = true;
                for (int dy = -1; dy <= 1 && is_max; ++dy)
                    for (int dx = -1; dx <= 1; ++dx) {
                        if (dx == 0 && dy == 0)
                            continue;
                        if (scores.at(x + dx, y + dy) > s ||
                            (scores.at(x + dx, y + dy) == s &&
                             (dy < 0 || (dy == 0 && dx < 0)))) {
                            is_max = false;
                            break;
                        }
                    }
                if (is_max)
                    raw.push_back({static_cast<float>(x),
                                   static_cast<float>(y), s, 0.0f});
            }
        }
    }

    if (static_cast<int>(raw.size()) <= cfg.max_features)
        return raw;

    // Grid-bucketed selection: strongest features per cell, preserving
    // spatial spread.
    const int gc = std::max(1, cfg.grid_cols);
    const int gr = std::max(1, cfg.grid_rows);
    const int per_cell =
        std::max(1, cfg.max_features / (gc * gr));
    std::vector<std::vector<KeyPoint>> cells(
        static_cast<size_t>(gc) * gr);
    for (const KeyPoint &kp : raw) {
        int cx = std::min(gc - 1,
                          static_cast<int>(kp.x) * gc / img.width());
        int cy = std::min(gr - 1,
                          static_cast<int>(kp.y) * gr / img.height());
        cells[static_cast<size_t>(cy) * gc + cx].push_back(kp);
    }
    std::vector<KeyPoint> out;
    out.reserve(cfg.max_features);
    for (auto &cell : cells) {
        std::sort(cell.begin(), cell.end(),
                  [](const KeyPoint &a, const KeyPoint &b) {
                      return a.score > b.score;
                  });
        for (int i = 0;
             i < std::min<int>(per_cell, static_cast<int>(cell.size()));
             ++i)
            out.push_back(cell[i]);
    }
    return out;
}

} // namespace edx
