#include "features/fast.hpp"

#include <algorithm>

namespace edx {

namespace {

/** Bresenham circle of radius 3: 16 (dx, dy) offsets in ring order. */
constexpr int kCircle[16][2] = {
    {0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
    {0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2},
    {-1, -3}};

constexpr int kArc = 9; //!< contiguous pixels required (FAST-9)

/**
 * Core segment test at the pixel behind @p p, using ring offsets
 * precomputed for the image stride. Returns true and fills @p score
 * when the pixel is a corner.
 */
bool
segmentTest(const uint8_t *p, const int *ring_off, int threshold,
            int *score)
{
    const int c = *p;
    const int hi = c + threshold;
    const int lo = c - threshold;

    // Quick rejection using the N/S/E/W compass points (offsets 0, 4,
    // 8, 12): for an arc of 9 to exist, at least 2 of the 4 compass
    // pixels must pass. This rejects the vast majority of pixels with
    // 4 loads instead of 16.
    {
        const int r0 = p[ring_off[0]], r4 = p[ring_off[4]];
        const int r8 = p[ring_off[8]], r12 = p[ring_off[12]];
        int bright4 = (r0 > hi) + (r4 > hi) + (r8 > hi) + (r12 > hi);
        int dark4 = (r0 < lo) + (r4 < lo) + (r8 < lo) + (r12 < lo);
        if (bright4 < 2 && dark4 < 2)
            return false;
    }

    int ring[16];
    for (int i = 0; i < 16; ++i)
        ring[i] = p[ring_off[i]];

    // Full test: scan the doubled ring for a contiguous bright/dark arc.
    auto has_arc = [&](auto pass) {
        int run = 0;
        for (int i = 0; i < 32; ++i) {
            if (pass(ring[i & 15])) {
                if (++run >= kArc)
                    return true;
            } else {
                run = 0;
            }
        }
        return false;
    };

    bool bright = has_arc([&](int v) { return v > hi; });
    bool dark = !bright && has_arc([&](int v) { return v < lo; });
    if (!bright && !dark)
        return false;

    if (score) {
        // Score: min absolute center delta over the best 9-arc, maximized
        // over arc start. This matches the "max threshold still corner"
        // definition closely enough for NMS ranking.
        int best = 0;
        for (int start = 0; start < 16; ++start) {
            int m = 255;
            bool ok = true;
            for (int j = 0; j < kArc; ++j) {
                int v = ring[(start + j) & 15];
                if (bright ? (v <= hi) : (v >= lo)) {
                    ok = false;
                    break;
                }
                m = std::min(m, std::abs(v - c));
            }
            if (ok)
                best = std::max(best, m);
        }
        *score = best;
    }
    return true;
}

} // namespace

int
fastScore(const ImageU8 &img, int x, int y)
{
    if (!img.containsWithBorder(x, y, 3))
        return 0;
    int ring_off[16];
    for (int i = 0; i < 16; ++i)
        ring_off[i] = kCircle[i][1] * img.width() + kCircle[i][0];
    int score = 0;
    if (!segmentTest(img.rowPtr(y) + x, ring_off, 1, &score))
        return 0;
    return score;
}

std::vector<KeyPoint>
detectFast(const ImageU8 &img, const FastConfig &cfg)
{
    const int b = std::max(cfg.border, 3);
    std::vector<KeyPoint> raw;
    if (img.width() <= 2 * b || img.height() <= 2 * b)
        return raw;

    // Score map for non-max suppression.
    ImageF scores;
    if (cfg.nonmax_suppression)
        scores = ImageF(img.width(), img.height(), 0.0f);

    int ring_off[16];
    for (int i = 0; i < 16; ++i)
        ring_off[i] = kCircle[i][1] * img.width() + kCircle[i][0];

    for (int y = b; y < img.height() - b; ++y) {
        const uint8_t *row = img.rowPtr(y);
        for (int x = b; x < img.width() - b; ++x) {
            int score = 0;
            if (!segmentTest(row + x, ring_off, cfg.threshold, &score))
                continue;
            if (cfg.nonmax_suppression) {
                scores.at(x, y) = static_cast<float>(score);
            } else {
                raw.push_back({static_cast<float>(x),
                               static_cast<float>(y),
                               static_cast<float>(score), 0.0f});
            }
        }
    }

    if (cfg.nonmax_suppression) {
        for (int y = b; y < img.height() - b; ++y) {
            for (int x = b; x < img.width() - b; ++x) {
                float s = scores.at(x, y);
                if (s <= 0.0f)
                    continue;
                bool is_max = true;
                for (int dy = -1; dy <= 1 && is_max; ++dy)
                    for (int dx = -1; dx <= 1; ++dx) {
                        if (dx == 0 && dy == 0)
                            continue;
                        if (scores.at(x + dx, y + dy) > s ||
                            (scores.at(x + dx, y + dy) == s &&
                             (dy < 0 || (dy == 0 && dx < 0)))) {
                            is_max = false;
                            break;
                        }
                    }
                if (is_max)
                    raw.push_back({static_cast<float>(x),
                                   static_cast<float>(y), s, 0.0f});
            }
        }
    }

    if (static_cast<int>(raw.size()) <= cfg.max_features)
        return raw;

    // Grid-bucketed selection: strongest features per cell, preserving
    // spatial spread.
    const int gc = std::max(1, cfg.grid_cols);
    const int gr = std::max(1, cfg.grid_rows);
    const int per_cell =
        std::max(1, cfg.max_features / (gc * gr));
    std::vector<std::vector<KeyPoint>> cells(
        static_cast<size_t>(gc) * gr);
    for (const KeyPoint &kp : raw) {
        int cx = std::min(gc - 1,
                          static_cast<int>(kp.x) * gc / img.width());
        int cy = std::min(gr - 1,
                          static_cast<int>(kp.y) * gr / img.height());
        cells[static_cast<size_t>(cy) * gc + cx].push_back(kp);
    }
    std::vector<KeyPoint> out;
    out.reserve(cfg.max_features);
    for (auto &cell : cells) {
        std::sort(cell.begin(), cell.end(),
                  [](const KeyPoint &a, const KeyPoint &b) {
                      return a.score > b.score;
                  });
        for (int i = 0;
             i < std::min<int>(per_cell, static_cast<int>(cell.size()));
             ++i)
            out.push_back(cell[i]);
    }
    return out;
}

} // namespace edx
