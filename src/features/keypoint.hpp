/**
 * @file
 * Feature-point data products shared by the frontend blocks.
 *
 * A key point is a salient image location detected by FAST; an ORB
 * descriptor is a 256-bit binary string attached to it for spatial
 * matching (Sec. IV-A of the paper). The correspondence types at the
 * bottom are the frontend outputs streamed to the backend (2-3 KB per
 * frame, Sec. V-A).
 */
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace edx {

/** A detected image feature point. */
struct KeyPoint
{
    float x = 0.0f;        //!< column, pixels
    float y = 0.0f;        //!< row, pixels
    float score = 0.0f;    //!< detector response (higher = stronger)
    float angle = 0.0f;    //!< orientation in radians (ORB centroid)
};

/** 256-bit binary ORB descriptor. */
struct Descriptor
{
    std::array<uint64_t, 4> bits{};

    bool
    operator==(const Descriptor &o) const
    {
        return bits == o.bits;
    }
};

/** Hamming distance between two 256-bit descriptors (0..256). */
inline int
hammingDistance(const Descriptor &a, const Descriptor &b)
{
    int d = 0;
    for (int i = 0; i < 4; ++i)
        d += std::popcount(a.bits[i] ^ b.bits[i]);
    return d;
}

/**
 * A spatial (stereo) correspondence: a key point in the left image and
 * its disparity to the right image.
 */
struct StereoMatch
{
    int left_index = -1;      //!< index into the left key-point list
    float disparity = 0.0f;   //!< x_left - x_right, pixels (>= 0)
    int hamming = 256;        //!< descriptor distance of the match
};

/**
 * A temporal correspondence: a key point tracked from the previous frame
 * into the current one by optical flow.
 */
struct TemporalMatch
{
    int prev_index = -1;   //!< index into the previous frame's key points
    float x = 0.0f;        //!< tracked location in the current frame
    float y = 0.0f;
    float residual = 0.0f; //!< final LK photometric residual
};

/** Byte size of the correspondence payload sent to the backend. */
inline size_t
correspondencePayloadBytes(const std::vector<StereoMatch> &s,
                           const std::vector<TemporalMatch> &t)
{
    return s.size() * sizeof(StereoMatch) +
           t.size() * sizeof(TemporalMatch);
}

} // namespace edx
