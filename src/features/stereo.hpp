/**
 * @file
 * Stereo matching: ORB-based matching optimization plus SAD disparity
 * refinement.
 *
 * Implements the two serialized tasks of the frontend's stereo-matching
 * block (Fig. 12): "Matching Optimization (MO)" proposes an initial
 * correspondence by comparing Hamming distances along the epipolar band,
 * and "Disparity Refinement (DR)" polishes the disparity with block
 * matching (SAD) on the raw images, including sub-pixel interpolation.
 *
 * The production MO path buckets right-image key points by integer
 * epipolar row (StereoRowIndex, a reusable CSR index) so each left
 * point only evaluates candidates inside its row band: O(L + matches
 * in band) Hamming work instead of the all-pairs O(L x R) sweep.
 * stereoMatchInitial() retains the all-pairs reference; the banded
 * matcher selects the same (best, second-best) pair order-independently
 * and is bit-exact with it (golden-tested).
 */
#pragma once

#include <vector>

#include "features/keypoint.hpp"
#include "image/image.hpp"

namespace edx {

/** Stereo matcher configuration. */
struct StereoConfig
{
    float max_epipolar_error = 2.0f; //!< vertical tolerance, pixels
    float min_disparity = 0.5f;
    float max_disparity = 128.0f;
    int max_hamming = 60;
    int block_radius = 4;      //!< SAD window radius for refinement
    int refine_range = 3;      //!< +/- search around the ORB disparity
};

/**
 * Reusable CSR index of right-image key points bucketed by integer
 * image row (the epipolar band structure of a rectified pair).
 */
struct StereoRowIndex
{
    std::vector<int> starts;  //!< rows + 1 offsets into indices
    std::vector<int> indices; //!< right kp indices, ascending per row

    /** Rebuilds the index for @p right_kps on @p image_height rows. */
    void build(const std::vector<KeyPoint> &right_kps, int image_height);

    /** Sum of buffer capacities, in bytes (allocation accounting). */
    size_t
    capacityBytes() const
    {
        return (starts.capacity() + indices.capacity() +
                cursor_.capacity()) *
               sizeof(int);
    }

  private:
    std::vector<int> cursor_; //!< counting-sort placement scratch
};

/**
 * Banded MO: same output as stereoMatchInitial, restricted to the row
 * bands of @p rows. Appends into caller-owned @p out.
 * @return the number of candidate pairs whose Hamming distance was
 *         actually evaluated (the banded MO workload).
 */
long stereoMatchBandedInto(const std::vector<KeyPoint> &left_kps,
                           const std::vector<Descriptor> &left_desc,
                           const std::vector<KeyPoint> &right_kps,
                           const std::vector<Descriptor> &right_desc,
                           const StereoConfig &cfg,
                           const StereoRowIndex &rows,
                           std::vector<StereoMatch> &out);

/** All-pairs MO reference, before refinement (golden tests). */
std::vector<StereoMatch> stereoMatchInitial(
    const std::vector<KeyPoint> &left_kps,
    const std::vector<Descriptor> &left_desc,
    const std::vector<KeyPoint> &right_kps,
    const std::vector<Descriptor> &right_desc, const StereoConfig &cfg);

/**
 * Refines initial matches by SAD block matching around the proposed
 * disparity, with parabolic sub-pixel interpolation. Interior windows
 * take a raw row-pointer fast path; windows touching the image border
 * fall back to the clamped reference arithmetic.
 */
void stereoRefineDisparity(const ImageU8 &left, const ImageU8 &right,
                           const std::vector<KeyPoint> &left_kps,
                           std::vector<StereoMatch> &matches,
                           const StereoConfig &cfg);

/** Zero-alloc form: @p costs is the reusable SAD sweep buffer. */
void stereoRefineDisparityInto(const ImageU8 &left, const ImageU8 &right,
                               const std::vector<KeyPoint> &left_kps,
                               std::vector<StereoMatch> &matches,
                               const StereoConfig &cfg,
                               std::vector<double> &costs);

/** Scalar clamped-sampling reference of the DR task (golden tests). */
void stereoRefineDisparityReference(const ImageU8 &left,
                                    const ImageU8 &right,
                                    const std::vector<KeyPoint> &left_kps,
                                    std::vector<StereoMatch> &matches,
                                    const StereoConfig &cfg);

/** Full stereo block: MO followed by DR. */
std::vector<StereoMatch> stereoMatch(
    const ImageU8 &left, const ImageU8 &right,
    const std::vector<KeyPoint> &left_kps,
    const std::vector<Descriptor> &left_desc,
    const std::vector<KeyPoint> &right_kps,
    const std::vector<Descriptor> &right_desc,
    const StereoConfig &cfg = {});

} // namespace edx
