/**
 * @file
 * Stereo matching: ORB-based matching optimization plus SAD disparity
 * refinement.
 *
 * Implements the two serialized tasks of the frontend's stereo-matching
 * block (Fig. 12): "Matching Optimization (MO)" proposes an initial
 * correspondence by comparing Hamming distances along the epipolar band,
 * and "Disparity Refinement (DR)" polishes the disparity with block
 * matching (SAD) on the raw images, including sub-pixel interpolation.
 */
#pragma once

#include <vector>

#include "features/keypoint.hpp"
#include "image/image.hpp"

namespace edx {

/** Stereo matcher configuration. */
struct StereoConfig
{
    float max_epipolar_error = 2.0f; //!< vertical tolerance, pixels
    float min_disparity = 0.5f;
    float max_disparity = 128.0f;
    int max_hamming = 60;
    int block_radius = 4;      //!< SAD window radius for refinement
    int refine_range = 3;      //!< +/- search around the ORB disparity
};

/** Output of the MO task alone, before refinement (for testing). */
std::vector<StereoMatch> stereoMatchInitial(
    const std::vector<KeyPoint> &left_kps,
    const std::vector<Descriptor> &left_desc,
    const std::vector<KeyPoint> &right_kps,
    const std::vector<Descriptor> &right_desc, const StereoConfig &cfg);

/**
 * Refines initial matches by SAD block matching around the proposed
 * disparity, with parabolic sub-pixel interpolation.
 */
void stereoRefineDisparity(const ImageU8 &left, const ImageU8 &right,
                           const std::vector<KeyPoint> &left_kps,
                           std::vector<StereoMatch> &matches,
                           const StereoConfig &cfg);

/** Full stereo block: MO followed by DR. */
std::vector<StereoMatch> stereoMatch(
    const ImageU8 &left, const ImageU8 &right,
    const std::vector<KeyPoint> &left_kps,
    const std::vector<Descriptor> &left_desc,
    const std::vector<KeyPoint> &right_kps,
    const std::vector<Descriptor> &right_desc,
    const StereoConfig &cfg = {});

} // namespace edx
