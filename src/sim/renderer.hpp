/**
 * @file
 * Synthetic stereo renderer.
 *
 * Projects the landmark field into a rectified stereo pair at a given
 * pose and draws each visible landmark as a textured patch whose on-
 * screen size follows its depth. The result is a pair of real 8-bit
 * images the actual FAST/ORB/LK/stereo frontend runs on, so frontend
 * behaviour (feature counts, matching quality, latency variation)
 * emerges from image content rather than being scripted.
 */
#pragma once

#include <utility>

#include "image/image.hpp"
#include "math/rng.hpp"
#include "math/se3.hpp"
#include "sensors/camera.hpp"
#include "sim/world.hpp"

namespace edx {

/** Rendering options. */
struct RenderConfig
{
    double background_mean = 95.0;
    double background_sigma = 9.0;
    double pixel_noise_sigma = 2.5;  //!< sensor noise per frame
    double min_depth = 0.8;          //!< near clip, m
    double max_depth = 70.0;         //!< far clip, m
    int max_patch_half_size = 27;
    int min_patch_half_size = 2;
    double lighting_gain = 1.0;      //!< global illumination scale
};

/** A rendered stereo pair. */
struct StereoFrame
{
    ImageU8 left;
    ImageU8 right;
    int visible_landmarks = 0; //!< number of landmarks drawn (left)
};

/** Renders stereo frames of a World through a StereoRig. */
class StereoRenderer
{
  public:
    /**
     * @param rig camera rig (intrinsics + baseline + extrinsics)
     * @param cfg render options
     * @param seed base seed for background/sensor noise
     */
    StereoRenderer(const StereoRig &rig, const RenderConfig &cfg,
                   uint64_t seed);

    /**
     * Renders the world from the body pose @p world_from_body.
     * @p frame_index decorrelates per-frame noise.
     */
    StereoFrame render(const World &world, const Pose &world_from_body,
                       int frame_index) const;

    const StereoRig &rig() const { return rig_; }
    const RenderConfig &config() const { return cfg_; }

    /** Mutable render options (lighting schedule is set per frame). */
    RenderConfig &config() { return cfg_; }

  private:
    void renderView(const World &world, const Pose &camera_from_world,
                    double baseline_shift, ImageU8 &out, Rng &noise_rng,
                    int *visible) const;

    StereoRig rig_;
    RenderConfig cfg_;
    uint64_t seed_;
    ImageU8 noise_tile_; //!< pre-generated background texture tile
};

} // namespace edx
