#include "sim/trajectory.hpp"

#include <cmath>

namespace edx {

namespace {
constexpr double kTwoPi = 6.283185307179586;
constexpr double kH = 1e-4; //!< differentiation step, seconds
} // namespace

Trajectory
Trajectory::car(double radius, double period)
{
    TrajectoryConfig cfg;
    cfg.radius = radius;
    cfg.period = period;
    cfg.height = 1.2;
    cfg.radial_wobble = 0.06 * radius;
    cfg.vertical_amp = 0.0;
    cfg.attitude_amp = 0.0;
    return Trajectory(cfg);
}

Trajectory
Trajectory::drone(double radius, double period)
{
    TrajectoryConfig cfg;
    cfg.radius = radius;
    cfg.period = period;
    cfg.height = 2.0;
    cfg.radial_wobble = 0.08 * radius;
    cfg.vertical_amp = 0.5;
    cfg.attitude_amp = 0.06;
    return Trajectory(cfg);
}

Vec3
Trajectory::positionAt(double t) const
{
    const double w = kTwoPi / cfg_.period;
    const double theta = w * t;
    const double rho =
        cfg_.radius +
        cfg_.radial_wobble * std::sin(cfg_.wobble_freq * theta);
    const double z =
        cfg_.height +
        cfg_.vertical_amp * std::sin(cfg_.vertical_freq * theta);
    return Vec3{rho * std::cos(theta), rho * std::sin(theta), z};
}

Vec3
Trajectory::velocityAt(double t) const
{
    return (positionAt(t + kH) - positionAt(t - kH)) / (2.0 * kH);
}

Pose
Trajectory::poseAt(double t) const
{
    // Heading follows the horizontal velocity; body x axis points along
    // the direction of travel, z up (plus optional drone sway).
    Vec3 v = velocityAt(t);
    double yaw = std::atan2(v[1], v[0]);
    double pitch = 0.0, roll = 0.0;
    if (cfg_.attitude_amp > 0.0) {
        const double w = kTwoPi / cfg_.period;
        pitch = cfg_.attitude_amp * std::sin(2.3 * w * t);
        roll = cfg_.attitude_amp * std::cos(1.7 * w * t);
    }
    return Pose(Quat::fromYawPitchRoll(yaw, pitch, roll), positionAt(t));
}

ImuSample
Trajectory::imuTruthAt(double t) const
{
    ImuSample s;
    s.t = t;

    // Body angular velocity from the quaternion increment.
    Quat q0 = poseAt(t).rotation;
    Quat q1 = poseAt(t + kH).rotation;
    s.gyro = (q0.inverse() * q1).log() / kH;

    // Specific force: f_body = R_wb^T (a_world - g_world).
    Vec3 a_world = (positionAt(t + kH) - positionAt(t) * 2.0 +
                    positionAt(t - kH)) /
                   (kH * kH);
    s.accel = q0.inverse().rotate(a_world - gravityWorld());
    return s;
}

} // namespace edx
