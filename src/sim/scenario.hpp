/**
 * @file
 * The real-world environment taxonomy of Fig. 2 of the paper.
 *
 * Environments are classified along two axes: availability of a
 * pre-constructed map and availability of GPS. Each quadrant prefers a
 * particular localization algorithm, which is what the unified framework
 * switches its backend mode on.
 */
#pragma once

#include <string>

namespace edx {

/** The four operating scenarios of Fig. 2. */
enum class SceneType
{
    IndoorUnknown,  //!< no GPS, no map  -> SLAM
    IndoorKnown,    //!< no GPS, map     -> Registration
    OutdoorUnknown, //!< GPS, no map     -> VIO (+GPS)
    OutdoorKnown,   //!< GPS, map        -> VIO (+GPS)
};

/** Backend mode of the unified framework (Sec. IV-A). */
enum class BackendMode
{
    Registration,
    Vio,
    Slam,
};

/** Static properties of a scenario. */
struct ScenarioTraits
{
    bool gps_available;
    bool map_available;
    bool indoor;
};

/** Traits lookup for a scene type. */
inline ScenarioTraits
scenarioTraits(SceneType s)
{
    switch (s) {
      case SceneType::IndoorUnknown:
        return {false, false, true};
      case SceneType::IndoorKnown:
        return {false, true, true};
      case SceneType::OutdoorUnknown:
        return {true, false, false};
      case SceneType::OutdoorKnown:
        return {true, true, false};
    }
    return {false, false, true};
}

/**
 * The algorithm-affinity mapping of Fig. 2: which backend mode the
 * unified framework activates in each scenario.
 */
inline BackendMode
preferredMode(SceneType s)
{
    switch (s) {
      case SceneType::IndoorUnknown:
        return BackendMode::Slam;
      case SceneType::IndoorKnown:
        return BackendMode::Registration;
      case SceneType::OutdoorUnknown:
      case SceneType::OutdoorKnown:
        return BackendMode::Vio;
    }
    return BackendMode::Slam;
}

/** Human-readable scenario name. */
inline std::string
sceneName(SceneType s)
{
    switch (s) {
      case SceneType::IndoorUnknown:
        return "indoor-unknown";
      case SceneType::IndoorKnown:
        return "indoor-known";
      case SceneType::OutdoorUnknown:
        return "outdoor-unknown";
      case SceneType::OutdoorKnown:
        return "outdoor-known";
    }
    return "?";
}

/** Human-readable mode name. */
inline std::string
modeName(BackendMode m)
{
    switch (m) {
      case BackendMode::Registration:
        return "registration";
      case BackendMode::Vio:
        return "vio";
      case BackendMode::Slam:
        return "slam";
    }
    return "?";
}

} // namespace edx
