#include "sim/dataset.hpp"

#include <cmath>

namespace edx {

StereoRig
platformRig(Platform p)
{
    StereoRig rig;
    // Camera optical frame: z forward, x right, y down. Body frame:
    // x forward, y left, z up. Columns of R are the camera axes
    // expressed in body coordinates.
    rig.body_from_camera.rotation = Quat::fromRotationMatrix(
        Mat3{0, 0, 1,
             -1, 0, 0,
             0, -1, 0});
    rig.body_from_camera.translation = Vec3{0.1, 0.0, 0.0};

    if (p == Platform::Car) {
        rig.cam.width = 1280;
        rig.cam.height = 720;
        rig.cam.fx = 720.0;
        rig.cam.fy = 720.0;
        rig.cam.cx = 640.0;
        rig.cam.cy = 360.0;
        rig.baseline = 0.30;
    } else {
        rig.cam.width = 640;
        rig.cam.height = 480;
        rig.cam.fx = 400.0;
        rig.cam.fy = 400.0;
        rig.cam.cx = 320.0;
        rig.cam.cy = 240.0;
        rig.baseline = 0.12;
    }
    return rig;
}

namespace {

World
makeWorld(const DatasetConfig &cfg, bool indoor)
{
    WorldConfig wc;
    wc.seed = cfg.seed;
    if (indoor) {
        wc.landmark_count = 700;
        wc.room_half_extent = 12.0;
        return World::generateIndoor(wc);
    }
    wc.landmark_count = 1600;
    wc.loop_radius = 40.0;
    wc.max_height = 9.0;
    return World::generateOutdoor(wc);
}

Trajectory
makeTrajectory(const DatasetConfig &cfg, bool indoor)
{
    // Loop period scales with the number of frames so every dataset
    // covers roughly one full lap regardless of frame budget.
    double duration = cfg.frame_count / cfg.fps;
    double period = std::max(duration, 30.0);
    if (cfg.platform == Platform::Car) {
        return Trajectory::car(indoor ? 7.0 : 40.0, period);
    }
    return Trajectory::drone(indoor ? 6.0 : 40.0, period);
}

} // namespace

Dataset::Dataset(const DatasetConfig &cfg)
    : cfg_(cfg), rig_(platformRig(cfg.platform)),
      world_(makeWorld(cfg, scenarioTraits(cfg.scene).indoor)),
      traj_(makeTrajectory(cfg, scenarioTraits(cfg.scene).indoor))
{
    RenderConfig rc;
    const ScenarioTraits traits = scenarioTraits(cfg.scene);
    if (!traits.indoor) {
        // Outdoor: stronger sensor noise, lighting handled per frame.
        rc.pixel_noise_sigma = 4.0;
        rc.max_depth = 90.0;
    }
    renderer_ = std::make_unique<StereoRenderer>(rig_, rc, cfg.seed);

    // IMU stream (corrupted).
    const double duration = cfg.frame_count / cfg.fps;
    const int imu_n =
        static_cast<int>(std::ceil(duration * cfg.imu_rate_hz)) + 1;
    ImuCorruptor imu_model(cfg.imu_noise, cfg.imu_rate_hz, cfg.seed + 17);
    imu_.reserve(imu_n);
    for (int k = 0; k < imu_n; ++k) {
        double t = k / cfg.imu_rate_hz;
        imu_.push_back(imu_model.corrupt(traj_.imuTruthAt(t)));
    }

    // GPS stream: availability follows the scenario taxonomy.
    GpsCorruptor gps_model(cfg.gps_noise, traits.gps_available,
                           cfg.seed + 31);
    const int gps_n =
        static_cast<int>(std::ceil(duration * cfg.gps_rate_hz)) + 1;
    gps_.reserve(gps_n);
    for (int k = 0; k < gps_n; ++k) {
        double t = k / cfg.gps_rate_hz;
        gps_.push_back(gps_model.sample(t, traj_.positionAt(t)));
    }
}

DatasetFrame
Dataset::frame(int i) const
{
    assert(i >= 0 && i < cfg_.frame_count);
    DatasetFrame f;
    f.index = i;
    f.t = frameTime(i);
    f.truth = traj_.poseAt(f.t);

    const ScenarioTraits traits = scenarioTraits(cfg_.scene);
    if (!traits.indoor) {
        // Slow illumination drift over the run plus mild flicker: the
        // outdoor lighting variation the paper identifies as a source of
        // SLAM error (Sec. III).
        double drift = 1.0 + 0.22 * std::sin(2.0 * M_PI * f.t / 40.0);
        double flicker = 1.0 + 0.03 * std::sin(2.0 * M_PI * f.t * 1.7);
        renderer_->config().lighting_gain = drift * flicker;
    }
    f.stereo = renderer_->render(world_, f.truth, i);
    return f;
}

Pose
Dataset::truthAt(int i) const
{
    return traj_.poseAt(frameTime(i));
}

std::vector<ImuSample>
Dataset::imuBetweenFrames(int i) const
{
    std::vector<ImuSample> out;
    if (i <= 0)
        return out;
    double t0 = frameTime(i - 1);
    double t1 = frameTime(i);
    for (const ImuSample &s : imu_) {
        if (s.t > t0 && s.t <= t1 + 1e-9)
            out.push_back(s);
        if (s.t > t1)
            break;
    }
    // The synthetic stream is monotonic by construction, but batches
    // feed dt-dividing integrators; keep the guard so a future loader
    // of real logs (where duplicate/regressed stamps do occur) cannot
    // hand a poisoned batch to propagation.
    sanitizeImuBatch(out);
    return out;
}

GpsSample
Dataset::gpsAtFrame(int i) const
{
    double t = frameTime(i);
    GpsSample latest;
    for (const GpsSample &s : gps_) {
        if (s.t > t + 1e-9)
            break;
        latest = s;
    }
    return latest;
}

} // namespace edx
