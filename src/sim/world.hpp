/**
 * @file
 * Synthetic 3-D landmark worlds.
 *
 * A world is a set of textured point landmarks that the renderer draws
 * and the localization algorithms re-observe. Indoor worlds are compact
 * rooms with landmarks on the walls; outdoor worlds are long loops with
 * landmarks on facades and ground clutter at varied ranges.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.hpp"
#include "math/vec.hpp"

namespace edx {

/** A single textured point landmark. */
struct Landmark
{
    Vec3 position;        //!< world frame, meters
    uint32_t texture_id;  //!< deterministic appearance selector
    double size_m;        //!< physical half-size, meters
    int brightness;       //!< base intensity, 0-255
};

/** World generation parameters. */
struct WorldConfig
{
    int landmark_count = 700;
    double room_half_extent = 12.0; //!< indoor: room half-size, m
    double loop_radius = 40.0;      //!< outdoor: trajectory loop radius, m
    double min_height = 0.2;
    double max_height = 6.0;
    uint64_t seed = 1;
};

/** A generated landmark field. */
class World
{
  public:
    /**
     * Indoor world: landmarks on the four walls and scattered interior
     * clutter of a square room centered at the origin.
     */
    static World generateIndoor(const WorldConfig &cfg);

    /**
     * Outdoor world: landmarks in an annulus around the trajectory loop
     * (building facades, poles, ground texture), at larger and more
     * dispersed ranges than indoor.
     */
    static World generateOutdoor(const WorldConfig &cfg);

    const std::vector<Landmark> &landmarks() const { return landmarks_; }
    size_t size() const { return landmarks_.size(); }

  private:
    std::vector<Landmark> landmarks_;
};

} // namespace edx
