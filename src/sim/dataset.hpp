/**
 * @file
 * Full synthetic dataset generation: camera frames + IMU + GPS + truth.
 *
 * This replaces the paper's KITTI / EuRoC / in-house logs (see DESIGN.md
 * Sec. 2). A dataset is a deterministic function of (scenario, platform,
 * seed): frames are rendered on demand to bound memory, while IMU and
 * GPS streams are pre-generated. Outdoor scenarios add a slow lighting
 * drift (the changing illumination the paper cites as a SLAM failure
 * mode outdoors) and enable GPS; indoor scenarios disable GPS.
 */
#pragma once

#include <memory>
#include <vector>

#include "math/se3.hpp"
#include "sensors/camera.hpp"
#include "sensors/gps.hpp"
#include "sensors/imu.hpp"
#include "sim/renderer.hpp"
#include "sim/scenario.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"

namespace edx {

/** Target platform of a dataset (paper Sec. VII-A). */
enum class Platform
{
    Car,   //!< 1280x720 input, road-scale loop
    Drone, //!< 640x480 input, room/short-range loop
};

/** Dataset generation parameters. */
struct DatasetConfig
{
    SceneType scene = SceneType::IndoorUnknown;
    Platform platform = Platform::Drone;
    double fps = 10.0;        //!< camera frame rate
    int frame_count = 300;
    double imu_rate_hz = 200.0;
    double gps_rate_hz = 10.0;
    uint64_t seed = 42;

    ImuNoiseModel imu_noise;
    GpsNoiseModel gps_noise;
};

/** One camera observation with its ground truth. */
struct DatasetFrame
{
    int index = 0;
    double t = 0.0;
    StereoFrame stereo;
    Pose truth; //!< world-from-body at capture time
};

/**
 * A generated dataset. Frames are rendered lazily; IMU/GPS/truth streams
 * are materialized at construction.
 */
class Dataset
{
  public:
    explicit Dataset(const DatasetConfig &cfg);

    const DatasetConfig &config() const { return cfg_; }
    int frameCount() const { return cfg_.frame_count; }
    double framePeriod() const { return 1.0 / cfg_.fps; }

    /** Renders frame @p i (deterministic; may be called repeatedly). */
    DatasetFrame frame(int i) const;

    /** Ground-truth pose at frame @p i. */
    Pose truthAt(int i) const;

    /** IMU samples with timestamps in (t_{i-1}, t_i] for frame i > 0. */
    std::vector<ImuSample> imuBetweenFrames(int i) const;

    /** Most recent GPS fix at or before frame @p i (invalid if none). */
    GpsSample gpsAtFrame(int i) const;

    const StereoRig &rig() const { return rig_; }
    const World &world() const { return world_; }
    const Trajectory &trajectory() const { return traj_; }
    ScenarioTraits traits() const { return scenarioTraits(cfg_.scene); }

    /** All corrupted IMU samples (for tests). */
    const std::vector<ImuSample> &imuStream() const { return imu_; }

    /** All GPS fixes (for tests). */
    const std::vector<GpsSample> &gpsStream() const { return gps_; }

  private:
    double frameTime(int i) const { return i / cfg_.fps; }

    DatasetConfig cfg_;
    StereoRig rig_;
    World world_;
    Trajectory traj_;
    std::unique_ptr<StereoRenderer> renderer_;
    std::vector<ImuSample> imu_;
    std::vector<GpsSample> gps_;
};

/** The stereo rig used for a platform (car: 720p, drone: VGA). */
StereoRig platformRig(Platform p);

} // namespace edx
