/**
 * @file
 * Analytic vehicle trajectories with exact pose and derived IMU truth.
 *
 * Trajectories are smooth closed loops: a car drives a perturbed circle
 * at constant height; a drone adds vertical oscillation and gentle
 * roll/pitch. Because the curve is analytic, ground-truth IMU
 * measurements (body angular velocity, specific force) can be derived to
 * high accuracy by small-step differentiation of the exact pose.
 */
#pragma once

#include "math/se3.hpp"
#include "sensors/imu.hpp"

namespace edx {

/** Trajectory shape parameters. */
struct TrajectoryConfig
{
    double radius = 8.0;        //!< loop radius, m
    double period = 60.0;       //!< seconds per lap
    double height = 1.2;        //!< nominal body height, m
    double radial_wobble = 0.8; //!< amplitude of radius modulation, m
    double wobble_freq = 3.0;   //!< radial wobble cycles per lap
    double vertical_amp = 0.0;  //!< drone: z oscillation amplitude, m
    double vertical_freq = 5.0; //!< z oscillation cycles per lap
    double attitude_amp = 0.0;  //!< drone: roll/pitch sway, rad
};

/** A smooth closed-loop trajectory. */
class Trajectory
{
  public:
    explicit Trajectory(const TrajectoryConfig &cfg) : cfg_(cfg) {}

    /** Ground-vehicle default: planar loop, level attitude. */
    static Trajectory car(double radius, double period);

    /** Drone default: loop with vertical bobbing and attitude sway. */
    static Trajectory drone(double radius, double period);

    /** World position at time @p t. */
    Vec3 positionAt(double t) const;

    /** World-from-body pose at time @p t (x axis along the velocity). */
    Pose poseAt(double t) const;

    /**
     * Exact-to-numerical-precision IMU sample at time @p t: body-frame
     * angular velocity and specific force (acceleration minus gravity,
     * rotated into the body).
     */
    ImuSample imuTruthAt(double t) const;

    /** World-frame velocity at time @p t. */
    Vec3 velocityAt(double t) const;

    const TrajectoryConfig &config() const { return cfg_; }

  private:
    TrajectoryConfig cfg_;
};

} // namespace edx
