#include "sim/renderer.hpp"

#include <algorithm>
#include <cmath>

#include "image/draw.hpp"

namespace edx {

namespace {
/** Side length of the pre-generated background noise tile. */
constexpr int kTile = 256;
} // namespace

StereoRenderer::StereoRenderer(const StereoRig &rig, const RenderConfig &cfg,
                               uint64_t seed)
    : rig_(rig), cfg_(cfg), seed_(seed), noise_tile_(kTile, kTile)
{
    // The background texture is generated once and tiled with per-frame
    // offsets: visually identical to per-pixel regeneration at a small
    // fraction of the cost.
    Rng rng(seed ^ 0xbadc0ffeULL);
    fillNoisyBackground(noise_tile_, cfg_.background_mean,
                        cfg_.background_sigma, rng);
}

void
StereoRenderer::renderView(const World &world, const Pose &camera_from_world,
                           double baseline_shift, ImageU8 &out,
                           Rng &noise_rng, int *visible) const
{
    const CameraIntrinsics &cam = rig_.cam;
    out = ImageU8(cam.width, cam.height);

    // Tiled background with a random phase so consecutive frames differ.
    int ox = static_cast<int>(noise_rng.nextU32() % kTile);
    int oy = static_cast<int>(noise_rng.nextU32() % kTile);
    for (int y = 0; y < cam.height; ++y) {
        uint8_t *row = out.rowPtr(y);
        const uint8_t *src = noise_tile_.rowPtr((y + oy) % kTile);
        for (int x = 0; x < cam.width; ++x)
            row[x] = src[(x + ox) % kTile];
    }

    // Project all landmarks; collect draw commands sorted far-to-near so
    // near landmarks occlude far ones.
    struct DrawCmd
    {
        double depth;
        double px, py;
        int half;
        uint32_t tex;
        int brightness;
    };
    std::vector<DrawCmd> cmds;
    cmds.reserve(world.size() / 4);

    for (const Landmark &lm : world.landmarks()) {
        Vec3 p_cam = camera_from_world.apply(lm.position) -
                     Vec3{baseline_shift, 0.0, 0.0};
        if (p_cam[2] < cfg_.min_depth || p_cam[2] > cfg_.max_depth)
            continue;
        auto px = cam.project(p_cam);
        if (!px || !cam.inImage(*px, -cfg_.max_patch_half_size))
            continue;
        int half = static_cast<int>(lm.size_m * cam.fx / p_cam[2]);
        half = std::clamp(half, cfg_.min_patch_half_size,
                          cfg_.max_patch_half_size);
        cmds.push_back({p_cam[2], (*px)[0], (*px)[1], half, lm.texture_id,
                        lm.brightness});
    }
    std::sort(cmds.begin(), cmds.end(),
              [](const DrawCmd &a, const DrawCmd &b) {
                  return a.depth > b.depth;
              });

    for (const DrawCmd &c : cmds)
        drawTexturedPatch(out, c.px, c.py, c.half, c.tex, c.brightness);
    if (visible)
        *visible = static_cast<int>(cmds.size());

    if (cfg_.lighting_gain != 1.0)
        scaleBrightness(out, cfg_.lighting_gain);
    addPixelNoise(out, cfg_.pixel_noise_sigma, noise_rng);
}

StereoFrame
StereoRenderer::render(const World &world, const Pose &world_from_body,
                       int frame_index) const
{
    // camera_from_world = (world_from_body * body_from_camera)^-1
    Pose world_from_camera = world_from_body * rig_.body_from_camera;
    Pose camera_from_world = world_from_camera.inverse();

    StereoFrame f;
    Rng noise_rng(seed_ + 77777u * static_cast<uint64_t>(frame_index + 1));
    renderView(world, camera_from_world, 0.0, f.left, noise_rng,
               &f.visible_landmarks);
    renderView(world, camera_from_world, rig_.baseline, f.right, noise_rng,
               nullptr);
    return f;
}

} // namespace edx
