#include "sim/world.hpp"

#include <cmath>

namespace edx {

World
World::generateIndoor(const WorldConfig &cfg)
{
    World w;
    w.landmarks_.reserve(cfg.landmark_count);
    Rng rng(cfg.seed);
    const double e = cfg.room_half_extent;

    for (int i = 0; i < cfg.landmark_count; ++i) {
        Landmark lm;
        // 80% of landmarks sit on the walls (visually rich posters,
        // fixtures, shelving); 20% are interior clutter.
        double h = rng.uniform(cfg.min_height, cfg.max_height);
        if (rng.uniform() < 0.8) {
            int wall = rng.uniformInt(0, 3);
            double along = rng.uniform(-e, e);
            switch (wall) {
              case 0: lm.position = Vec3{along, e, h}; break;
              case 1: lm.position = Vec3{along, -e, h}; break;
              case 2: lm.position = Vec3{e, along, h}; break;
              default: lm.position = Vec3{-e, along, h}; break;
            }
        } else {
            lm.position = Vec3{rng.uniform(-e * 0.7, e * 0.7),
                               rng.uniform(-e * 0.7, e * 0.7),
                               rng.uniform(cfg.min_height, 1.8)};
        }
        lm.texture_id = rng.nextU32();
        lm.size_m = rng.uniform(0.10, 0.35);
        lm.brightness = rng.uniformInt(90, 200);
        w.landmarks_.push_back(lm);
    }
    return w;
}

World
World::generateOutdoor(const WorldConfig &cfg)
{
    World w;
    w.landmarks_.reserve(cfg.landmark_count);
    Rng rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
    const double r = cfg.loop_radius;

    for (int i = 0; i < cfg.landmark_count; ++i) {
        Landmark lm;
        double theta = rng.uniform(0.0, 6.283185307179586);
        double h = rng.uniform(cfg.min_height, cfg.max_height * 1.8);
        if (rng.uniform() < 0.65) {
            // Facades: an annulus outside the loop, 6-28 m from the path.
            double rho = r + rng.uniform(6.0, 28.0);
            lm.position = Vec3{rho * std::cos(theta),
                               rho * std::sin(theta), h};
        } else if (rng.uniform() < 0.6) {
            // Inner clutter: poles and signage inside the loop.
            double rho = std::max(2.0, r - rng.uniform(5.0, 20.0));
            lm.position = Vec3{rho * std::cos(theta),
                               rho * std::sin(theta), h * 0.6};
        } else {
            // Ground texture near the path.
            double rho = r + rng.uniform(-3.0, 3.0);
            lm.position = Vec3{rho * std::cos(theta),
                               rho * std::sin(theta), 0.05};
        }
        lm.texture_id = rng.nextU32();
        lm.size_m = rng.uniform(0.20, 0.9);
        lm.brightness = rng.uniformInt(80, 210);
        w.landmarks_.push_back(lm);
    }
    return w;
}

} // namespace edx
