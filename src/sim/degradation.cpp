#include "sim/degradation.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace edx {

const char *
degradationName(DegradationKind k)
{
    switch (k) {
      case DegradationKind::MotionBlur:
        return "motion_blur";
      case DegradationKind::LowLight:
        return "low_light";
      case DegradationKind::Occlusion:
        return "occlusion";
      case DegradationKind::ImuBiasJump:
        return "imu_bias_jump";
      case DegradationKind::ImuDropout:
        return "imu_dropout";
      case DegradationKind::ImuTimeJitter:
        return "imu_time_jitter";
      case DegradationKind::GpsDenied:
        return "gps_denied";
      case DegradationKind::FrameDrop:
        return "frame_drop";
      case DegradationKind::Teleport:
        return "teleport";
    }
    return "?";
}

int
ScenarioSpec::totalTeleportJump() const
{
    int jump = 0;
    for (const DegradationEvent &e : events)
        if (e.kind == DegradationKind::Teleport)
            jump += e.jump_frames;
    return jump;
}

std::vector<BackendMode>
ScenarioSpec::effectiveModes() const
{
    if (!modes.empty())
        return modes;
    return {preferredMode(scene)};
}

// --- spec parsing -----------------------------------------------------------

namespace {

[[noreturn]] void
specError(int line, const std::string &msg)
{
    throw std::invalid_argument("scenario spec line " +
                                std::to_string(line) + ": " + msg);
}

std::string
trim(const std::string &s)
{
    size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

SceneType
sceneFromName(const std::string &s, int line)
{
    for (SceneType t :
         {SceneType::IndoorUnknown, SceneType::IndoorKnown,
          SceneType::OutdoorUnknown, SceneType::OutdoorKnown})
        if (s == sceneName(t))
            return t;
    specError(line, "unknown scene '" + s + "'");
}

BackendMode
modeFromName(const std::string &s, int line)
{
    for (BackendMode m : {BackendMode::Registration, BackendMode::Vio,
                          BackendMode::Slam})
        if (s == modeName(m))
            return m;
    specError(line, "unknown mode '" + s + "'");
}

DegradationKind
kindFromName(const std::string &s, int line)
{
    for (DegradationKind k :
         {DegradationKind::MotionBlur, DegradationKind::LowLight,
          DegradationKind::Occlusion, DegradationKind::ImuBiasJump,
          DegradationKind::ImuDropout, DegradationKind::ImuTimeJitter,
          DegradationKind::GpsDenied, DegradationKind::FrameDrop,
          DegradationKind::Teleport})
        if (s == degradationName(k))
            return k;
    specError(line, "unknown degradation '" + s + "'");
}

double
numValue(const std::string &s, int line)
{
    try {
        size_t used = 0;
        double v = std::stod(s, &used);
        if (used != s.size())
            specError(line, "bad number '" + s + "'");
        return v;
    } catch (const std::invalid_argument &) {
        specError(line, "bad number '" + s + "'");
    } catch (const std::out_of_range &) {
        specError(line, "number out of range '" + s + "'");
    }
}

Vec3
vecValue(const std::string &s, int line)
{
    Vec3 v;
    std::stringstream ss(s);
    std::string part;
    int i = 0;
    while (std::getline(ss, part, ',') && i < 3)
        v[i++] = numValue(trim(part), line);
    return v;
}

bool
boolValue(const std::string &s, int line)
{
    if (s == "on" || s == "true" || s == "1")
        return true;
    if (s == "off" || s == "false" || s == "0")
        return false;
    specError(line, "bad flag '" + s + "' (use on/off)");
}

DegradationEvent
parseEvent(const std::string &value, int line)
{
    std::stringstream ss(value);
    std::string kind_name;
    ss >> kind_name;
    DegradationEvent e;
    e.kind = kindFromName(kind_name, line);

    std::string tok;
    while (ss >> tok) {
        size_t eq = tok.find('=');
        if (eq == std::string::npos)
            specError(line, "event parameter '" + tok +
                                "' is not key=value");
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        if (key == "from")
            e.from = static_cast<int>(numValue(val, line));
        else if (key == "to")
            e.to = static_cast<int>(numValue(val, line));
        else if (key == "strength")
            e.strength = numValue(val, line);
        else if (key == "gain")
            e.gain = numValue(val, line);
        else if (key == "noise")
            e.noise_sigma = numValue(val, line);
        else if (key == "patches")
            e.patches = static_cast<int>(numValue(val, line));
        else if (key == "frac")
            e.patch_frac = numValue(val, line);
        else if (key == "gyro")
            e.gyro_bias = vecValue(val, line);
        else if (key == "accel")
            e.accel_bias = vecValue(val, line);
        else if (key == "jitter")
            e.jitter_ms = numValue(val, line);
        else if (key == "every")
            e.drop_every = static_cast<int>(numValue(val, line));
        else if (key == "jump")
            e.jump_frames = static_cast<int>(numValue(val, line));
        else
            specError(line, "unknown event parameter '" + key + "'");
    }
    if (e.to <= e.from)
        specError(line, "event window is empty (to <= from)");
    if (e.kind == DegradationKind::Teleport && e.jump_frames <= 0)
        specError(line, "teleport requires jump=N > 0");
    if (e.kind == DegradationKind::FrameDrop && e.drop_every <= 0)
        specError(line, "frame_drop requires every=N > 0");
    return e;
}

} // namespace

std::vector<ScenarioSpec>
parseScenarioSpecs(const std::string &text)
{
    std::vector<ScenarioSpec> specs;
    ScenarioSpec cur;
    bool open = false;
    int open_line = 0;

    auto finalize = [&]() {
        if (!open)
            return;
        if (cur.name.empty())
            specError(open_line, "scenario block missing 'scenario:'");
        if (cur.frames <= 0)
            specError(open_line, "frames must be positive");
        if (cur.fps <= 0.0)
            specError(open_line, "fps must be positive");
        specs.push_back(std::move(cur));
        cur = ScenarioSpec{};
        open = false;
    };

    std::stringstream ss(text);
    std::string raw;
    int line = 0;
    while (std::getline(ss, raw)) {
        ++line;
        size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw = raw.substr(0, hash);
        const std::string s = trim(raw);
        if (s.empty())
            continue;
        if (s == "---") {
            finalize();
            continue;
        }
        size_t colon = s.find(':');
        if (colon == std::string::npos)
            specError(line, "expected 'key: value'");
        const std::string key = trim(s.substr(0, colon));
        const std::string value = trim(s.substr(colon + 1));
        if (!open) {
            open = true;
            open_line = line;
        }
        if (key == "scenario" || key == "name") {
            cur.name = value;
        } else if (key == "scene") {
            cur.scene = sceneFromName(value, line);
        } else if (key == "platform") {
            if (value == "car")
                cur.platform = Platform::Car;
            else if (value == "drone")
                cur.platform = Platform::Drone;
            else
                specError(line, "unknown platform '" + value + "'");
        } else if (key == "frames") {
            cur.frames = static_cast<int>(numValue(value, line));
        } else if (key == "fps") {
            cur.fps = numValue(value, line);
        } else if (key == "seed") {
            cur.seed = static_cast<uint64_t>(numValue(value, line));
        } else if (key == "mode" || key == "modes") {
            std::stringstream ms(value);
            std::string m;
            while (ms >> m)
                cur.modes.push_back(modeFromName(m, line));
        } else if (key == "wheel_odometry") {
            cur.wheel_odometry = boolValue(value, line);
        } else if (key == "odometry_rate_hz") {
            cur.odometry_rate_hz = numValue(value, line);
        } else if (key == "event") {
            cur.events.push_back(parseEvent(value, line));
        } else {
            specError(line, "unknown key '" + key + "'");
        }
    }
    finalize();
    return specs;
}

// --- the built-in regression matrix -----------------------------------------

std::string
standardScenarioMatrixText()
{
    // Nine scenarios x the three backend modes the scenes prefer. The
    // windows are expressed in frames at 10 FPS; every scenario ends
    // with the degradation lifted so recovery behaviour is part of
    // each cell's ATE, not just the blackout drift.
    return R"(# Eudoxus adversarial-conditions regression matrix.
scenario: nominal-vio
scene: outdoor-unknown
platform: drone
frames: 100
mode: vio
---
scenario: motion-blur-vio
scene: outdoor-unknown
platform: drone
frames: 100
mode: vio
event: motion_blur from=25 to=65 strength=5
---
scenario: low-light-slam
scene: indoor-unknown
platform: drone
frames: 100
mode: slam
event: low_light from=30 to=60 gain=0.35 noise=8
---
scenario: occlusion-slam
scene: indoor-unknown
platform: drone
frames: 100
mode: slam
event: occlusion from=25 to=45 patches=5 frac=0.25
event: occlusion from=55 to=70 patches=3 frac=0.30
---
scenario: gps-denied-vio
scene: outdoor-unknown
platform: drone
frames: 100
mode: vio
event: gps_denied from=20 to=85
---
scenario: imu-bias-jump-vio
scene: outdoor-unknown
platform: drone
frames: 100
mode: vio
event: imu_bias_jump from=40 to=100 gyro=0.02,-0.01,0.015 accel=0.3,0.2,-0.25
---
scenario: imu-dropout-jitter-vio
scene: outdoor-unknown
platform: drone
frames: 100
mode: vio
event: imu_dropout from=30 to=45
event: imu_time_jitter from=55 to=85 jitter=6
---
scenario: blackout-recovery-registration
scene: indoor-known
platform: drone
frames: 90
mode: registration
wheel_odometry: on
event: low_light from=30 to=45 gain=0.02 noise=2
---
scenario: kidnap-registration
scene: indoor-known
platform: drone
frames: 90
mode: registration
event: teleport from=40 to=41 jump=18
)";
}

std::vector<ScenarioSpec>
standardScenarioMatrix()
{
    return parseScenarioSpecs(standardScenarioMatrixText());
}

// --- DegradedDataset --------------------------------------------------------

namespace {

DatasetConfig
baseConfig(const ScenarioSpec &spec)
{
    DatasetConfig cfg;
    cfg.scene = spec.scene;
    cfg.platform = spec.platform;
    cfg.fps = spec.fps;
    // Teleports skip ahead along the trajectory; the base dataset must
    // cover the overshoot.
    cfg.frame_count = spec.frames + spec.totalTeleportJump();
    cfg.seed = spec.seed;
    return cfg;
}

/** Horizontal box blur (sliding window), radius in pixels. */
void
motionBlur(ImageU8 &img, int radius)
{
    if (radius < 1 || img.empty())
        return;
    const int w = img.width(), h = img.height();
    const int win = 2 * radius + 1;
    std::vector<uint8_t> row(static_cast<size_t>(w));
    for (int y = 0; y < h; ++y) {
        int acc = 0;
        for (int x = -radius; x <= radius; ++x)
            acc += img.atClamped(x, y);
        for (int x = 0; x < w; ++x) {
            row[static_cast<size_t>(x)] =
                static_cast<uint8_t>((acc + win / 2) / win);
            acc += img.atClamped(x + radius + 1, y);
            acc -= img.atClamped(x - radius, y);
        }
        for (int x = 0; x < w; ++x)
            img.at(x, y) = row[static_cast<size_t>(x)];
    }
}

/** Illumination collapse: gain < 1 plus shot noise. */
void
lowLight(ImageU8 &img, double gain, double noise_sigma, Rng &rng)
{
    const int w = img.width(), h = img.height();
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
            double v = img.at(x, y) * gain +
                       rng.gaussian(0.0, noise_sigma);
            img.at(x, y) = static_cast<uint8_t>(
                std::clamp(v, 0.0, 255.0));
        }
}

/** Opaque patches at frame-deterministic positions. */
void
occlusion(ImageU8 &img, int patches, double patch_frac, Rng &rng)
{
    const int w = img.width(), h = img.height();
    const int half = std::max(
        2, static_cast<int>(patch_frac * w * 0.5));
    for (int p = 0; p < patches; ++p) {
        const int cx = rng.uniformInt(0, w - 1);
        const int cy = rng.uniformInt(0, h - 1);
        const uint8_t shade =
            static_cast<uint8_t>(rng.uniformInt(10, 35));
        for (int y = std::max(0, cy - half);
             y <= std::min(h - 1, cy + half); ++y)
            for (int x = std::max(0, cx - half);
                 x <= std::min(w - 1, cx + half); ++x)
                img.at(x, y) = shade;
    }
}

} // namespace

DegradedDataset::DegradedDataset(const ScenarioSpec &spec)
    : spec_(spec), base_(baseConfig(spec))
{
    if (!spec_.wheel_odometry)
        return;
    // Pre-generate the wheel-encoder stream on the *logical* clock:
    // across a teleport the encoders keep reporting the motion at the
    // target location (the robot is driving there), re-stamped onto
    // the continuous session clock.
    const double duration = spec_.frames / spec_.fps;
    const int n = static_cast<int>(
                      std::ceil(duration * spec_.odometry_rate_hz)) +
                  1;
    WheelOdometryCorruptor model(spec_.odometry_noise, spec_.seed + 53);
    const Trajectory &traj = base_.trajectory();
    odometry_.reserve(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k) {
        const double t = k / spec_.odometry_rate_hz;
        const int logical =
            std::min(static_cast<int>(t * spec_.fps), spec_.frames - 1);
        const double ts = t + shiftSeconds(logical);
        const Pose truth = traj.poseAt(ts);
        const Vec3 v_body = truth.rotation.toRotationMatrix()
                                .transpose() *
                            traj.velocityAt(ts);
        const double yaw_rate = traj.imuTruthAt(ts).gyro[2];
        odometry_.push_back(model.sample(t, v_body[0], yaw_rate));
    }
}

int
DegradedDataset::shiftedIndex(int i) const
{
    int shift = 0;
    for (const DegradationEvent &e : spec_.events)
        if (e.kind == DegradationKind::Teleport && i >= e.from)
            shift += e.jump_frames;
    return i + shift;
}

double
DegradedDataset::shiftSeconds(int i) const
{
    return (shiftedIndex(i) - i) / spec_.fps;
}

int
DegradedDataset::teleportFrame() const
{
    int first = -1;
    for (const DegradationEvent &e : spec_.events)
        if (e.kind == DegradationKind::Teleport &&
            (first < 0 || e.from < first))
            first = e.from;
    return first;
}

bool
DegradedDataset::frameDropped(int i) const
{
    for (const DegradationEvent &e : spec_.events)
        if (e.kind == DegradationKind::FrameDrop && e.activeAt(i) &&
            (i - e.from) % e.drop_every == 0)
            return true;
    return false;
}

void
DegradedDataset::applyImageEvents(int i, ImageU8 &img,
                                  uint64_t eye_salt) const
{
    for (size_t ei = 0; ei < spec_.events.size(); ++ei) {
        const DegradationEvent &e = spec_.events[ei];
        if (!e.activeAt(i))
            continue;
        // One deterministic stream per (frame, eye, event): re-rendering
        // any frame reproduces its corruption bit-for-bit.
        Rng rng(spec_.seed ^ (static_cast<uint64_t>(i) * 0x9e3779b9u),
                eye_salt * 131 + ei + 1);
        switch (e.kind) {
          case DegradationKind::MotionBlur:
            motionBlur(img, static_cast<int>(e.strength));
            break;
          case DegradationKind::LowLight:
            lowLight(img, e.gain, e.noise_sigma, rng);
            break;
          case DegradationKind::Occlusion:
            occlusion(img, e.patches, e.patch_frac, rng);
            break;
          default:
            break; // sensor-side events do not touch imagery
        }
    }
}

DatasetFrame
DegradedDataset::frame(int i) const
{
    assert(i >= 0 && i < spec_.frames);
    if (frameDropped(i)) {
        DatasetFrame f;
        f.index = i;
        f.t = i / spec_.fps;
        f.truth = truthAt(i);
        return f; // empty stereo pair: the frame never arrived
    }
    DatasetFrame f = base_.frame(shiftedIndex(i));
    f.index = i;
    f.t = i / spec_.fps;
    applyImageEvents(i, f.stereo.left, 0);
    applyImageEvents(i, f.stereo.right, 1);
    return f;
}

Pose
DegradedDataset::truthAt(int i) const
{
    return base_.truthAt(shiftedIndex(i));
}

std::vector<ImuSample>
DegradedDataset::imuBetweenFrames(int i) const
{
    // Across a teleport boundary the batch comes from the target
    // segment (the "carry" is instantaneous), re-stamped onto the
    // continuous session clock.
    std::vector<ImuSample> batch = base_.imuBetweenFrames(shiftedIndex(i));
    const double shift = shiftSeconds(i);
    if (shift != 0.0)
        for (ImuSample &s : batch)
            s.t -= shift;

    for (const DegradationEvent &e : spec_.events) {
        if (!e.activeAt(i))
            continue;
        switch (e.kind) {
          case DegradationKind::ImuDropout:
            batch.clear();
            break;
          case DegradationKind::ImuBiasJump:
            for (ImuSample &s : batch) {
                s.gyro += e.gyro_bias;
                s.accel += e.accel_bias;
            }
            break;
          case DegradationKind::ImuTimeJitter: {
            Rng rng(spec_.seed ^
                        (static_cast<uint64_t>(i) * 0x51afd6edu),
                    977);
            for (ImuSample &s : batch)
                s.t += rng.gaussian(0.0, e.jitter_ms * 1e-3);
            break;
          }
          default:
            break;
        }
    }
    return batch;
}

GpsSample
DegradedDataset::gpsAtFrame(int i) const
{
    for (const DegradationEvent &e : spec_.events)
        if (e.kind == DegradationKind::GpsDenied && e.activeAt(i))
            return GpsSample{}; // valid = false
    GpsSample s = base_.gpsAtFrame(shiftedIndex(i));
    s.t -= shiftSeconds(i);
    return s;
}

std::vector<WheelOdometrySample>
DegradedDataset::odometryBetweenFrames(int i) const
{
    std::vector<WheelOdometrySample> out;
    if (odometry_.empty() || i <= 0)
        return out;
    const double t0 = (i - 1) / spec_.fps;
    const double t1 = i / spec_.fps;
    for (const WheelOdometrySample &s : odometry_) {
        if (s.t > t0 && s.t <= t1 + 1e-9)
            out.push_back(s);
        if (s.t > t1)
            break;
    }
    return out;
}

} // namespace edx
