/**
 * @file
 * Declarative fault injection: adversarial-conditions scenarios as
 * data, not code (ROADMAP "scenario diversity" item).
 *
 * A ScenarioSpec names a base scene (sim/dataset.hpp) plus a list of
 * per-frame degradation events — motion blur, low light, occlusion
 * patches, IMU bias jumps / dropouts / time jitter, GPS-denied
 * stretches, frame drops, and a kidnapped-robot teleport. Specs are
 * parsed from a small line-based text format (the maplab-evaluation
 * experiment-matrix pattern: an end-to-end accuracy job is one spec
 * block, and the whole regression matrix is a text file), so adding a
 * scenario to CI never requires touching code:
 *
 *     scenario: blur-outdoor
 *     scene: outdoor-unknown
 *     platform: drone
 *     frames: 120
 *     mode: vio
 *     event: motion_blur from=30 to=70 strength=5
 *     event: gps_denied from=40 to=90
 *     ---
 *     scenario: ...
 *
 * DegradedDataset wraps a clean Dataset and applies the spec's events
 * on the fly: image corruptions act on the rendered stereo pair, IMU /
 * GPS corruptions on the sensor batches, and the teleport event remaps
 * frame indices along the trajectory (the robot is "carried" ahead by
 * jump_frames — imagery, truth and subsequent sensor data all continue
 * from the target location, exactly the kidnapped-robot relocalization
 * setup). Everything is deterministic in (spec, frame index), so a
 * failing matrix cell replays bit-for-bit.
 */
#pragma once

#include <string>
#include <vector>

#include "sensors/odometry.hpp"
#include "sim/dataset.hpp"

namespace edx {

/** The degradation taxonomy (one entry per real-fleet failure mode). */
enum class DegradationKind
{
    MotionBlur,   //!< directional blur (fast motion / long exposure)
    LowLight,     //!< gain drop + shot noise (dusk, tunnel, blackout)
    Occlusion,    //!< opaque patches (dirt, rain drops, cargo)
    ImuBiasJump,  //!< step change of gyro/accel bias (thermal shock)
    ImuDropout,   //!< IMU batches go missing (bus stall)
    ImuTimeJitter,//!< non-monotonic/duplicate IMU timestamps
    GpsDenied,    //!< no fixes (urban canyon, indoors, jamming)
    FrameDrop,    //!< camera frames missing entirely
    Teleport,     //!< kidnapped robot: relocation along the trajectory
};

/** Display name of a degradation kind ("motion_blur", ...). */
const char *degradationName(DegradationKind k);

/** One degradation active over a frame window [from, to). */
struct DegradationEvent
{
    DegradationKind kind = DegradationKind::MotionBlur;
    int from = 0;            //!< first affected frame
    int to = 1 << 30;        //!< one past the last affected frame

    // Parameters (only the kind's subset is meaningful).
    double strength = 4.0;   //!< motion_blur: horizontal radius, px
    double gain = 0.30;      //!< low_light: illumination multiplier
    double noise_sigma = 7.0;//!< low_light: added shot noise, gray levels
    int patches = 4;         //!< occlusion: patch count
    double patch_frac = 0.22;//!< occlusion: patch size / image width
    Vec3 gyro_bias;          //!< imu_bias_jump: added gyro bias, rad/s
    Vec3 accel_bias;         //!< imu_bias_jump: added accel bias, m/s^2
    double jitter_ms = 4.0;  //!< imu_time_jitter: timestamp sigma, ms
    int drop_every = 4;      //!< frame_drop: drop every Nth frame
    int jump_frames = 0;     //!< teleport: trajectory skip, frames

    /** True when the event is active at frame @p i. */
    bool activeAt(int i) const { return i >= from && i < to; }
};

/** One declarative adversarial scenario. */
struct ScenarioSpec
{
    std::string name;
    SceneType scene = SceneType::IndoorUnknown;
    Platform platform = Platform::Drone;
    int frames = 120;
    double fps = 10.0;
    uint64_t seed = 42;

    /** Backend modes to evaluate (empty: the scene's preferred mode). */
    std::vector<BackendMode> modes;

    /** Generate a wheel-odometry stream (ground platforms). */
    bool wheel_odometry = false;
    double odometry_rate_hz = 50.0;
    WheelOdometryNoiseModel odometry_noise;

    std::vector<DegradationEvent> events;

    /** Sum of teleport jumps (extra base frames the wrapper needs). */
    int totalTeleportJump() const;

    /** Modes to run: declared list, or the scene's preferred mode. */
    std::vector<BackendMode> effectiveModes() const;
};

/**
 * Parses one or more '---'-separated scenario blocks.
 * @throws std::invalid_argument naming the offending line on errors.
 */
std::vector<ScenarioSpec> parseScenarioSpecs(const std::string &text);

/**
 * The built-in regression matrix: >= 8 distinct degradation scenarios
 * spanning VIO, SLAM and Registration, expressed in the spec text
 * format (so the data path of the parser is what CI exercises).
 */
std::string standardScenarioMatrixText();

/** Parsed form of standardScenarioMatrixText(). */
std::vector<ScenarioSpec> standardScenarioMatrix();

/**
 * A Dataset wrapped by a ScenarioSpec's degradations. Mirrors the
 * Dataset per-frame interface the harnesses consume; corruption is
 * deterministic in (spec.seed, frame index).
 */
class DegradedDataset
{
  public:
    explicit DegradedDataset(const ScenarioSpec &spec);

    const ScenarioSpec &spec() const { return spec_; }
    const Dataset &base() const { return base_; }
    int frameCount() const { return spec_.frames; }
    double framePeriod() const { return 1.0 / spec_.fps; }
    const StereoRig &rig() const { return base_.rig(); }

    /**
     * Renders frame @p i with all active image degradations applied.
     * Dropped frames return empty images (truth still valid). The
     * frame's timestamp stays on the undegraded clock; only content
     * (and, across a teleport, the viewpoint) changes.
     */
    DatasetFrame frame(int i) const;

    /** Ground truth at frame @p i (follows teleports). */
    Pose truthAt(int i) const;

    /** IMU batch for frame @p i with IMU degradations applied. */
    std::vector<ImuSample> imuBetweenFrames(int i) const;

    /** GPS fix at frame @p i (invalid during gps_denied windows). */
    GpsSample gpsAtFrame(int i) const;

    /**
     * Wheel-odometry batch for frame @p i (empty unless the spec
     * enables wheel_odometry).
     */
    std::vector<WheelOdometrySample> odometryBetweenFrames(int i) const;

    /** True when @p i falls in a frame_drop event's drop pattern. */
    bool frameDropped(int i) const;

    /** First frame at which any teleport event fires (-1: none). */
    int teleportFrame() const;

  private:
    /** Base-dataset frame index of logical frame @p i (teleports). */
    int shiftedIndex(int i) const;
    /** Seconds the base clock is ahead at logical frame @p i. */
    double shiftSeconds(int i) const;

    void applyImageEvents(int i, ImageU8 &img, uint64_t eye_salt) const;

    ScenarioSpec spec_;
    Dataset base_;
    std::vector<WheelOdometrySample> odometry_;
};

} // namespace edx
