/**
 * @file
 * Multi-State Constraint Kalman Filter (Mourikis & Roumeliotis, 2007) —
 * the filtering block of the VIO backend mode (Fig. 4).
 *
 * The filter keeps an IMU state (orientation, gyro bias, velocity,
 * accelerometer bias, position) plus a sliding window of camera-pose
 * clones (30 in the paper, Sec. VII-B). Feature tracks spanning several
 * clones produce constraints between the cloned poses: per track the
 * feature position is triangulated, residuals are projected onto the
 * nullspace of the feature Jacobian, all tracks are stacked and
 * QR-compressed, and a standard EKF update follows. The Kalman-gain
 * computation (S = H P H^T + R, solve S K^T = H P^T) is the VIO kernel
 * the backend accelerator targets (Sec. VI-A, Equ. 1).
 *
 * Error-state layout: [theta(3) bg(3) v(3) ba(3) p(3) | theta_c p_c ...]
 * with body-frame (right) multiplicative orientation errors.
 */
#pragma once

#include <vector>

#include "backend/feature_tracks.hpp"
#include "backend/workspace.hpp"
#include "math/matx.hpp"
#include "math/se3.hpp"
#include "sensors/camera.hpp"
#include "sensors/imu.hpp"

namespace edx {

class SolveHub;

/** MSCKF settings. */
struct MsckfConfig
{
    int max_clones = 30;          //!< sliding-window size (paper: 30)
    double pixel_sigma = 1.5;     //!< measurement noise, pixels
    double gyro_sigma = 1.7e-3;   //!< must match the IMU noise model
    double gyro_bias_sigma = 2.0e-5;
    double accel_sigma = 2.0e-2;
    double accel_bias_sigma = 3.0e-3;
    int min_track_length = 3;     //!< shortest track used in an update
    double max_reprojection_px = 6.0; //!< triangulation sanity gate
    int triangulation_iterations = 5;

    /**
     * Routes every linear-algebra block through the retained scalar
     * reference kernels and the pre-overhaul allocate-and-copy flow
     * (the "before" baseline of the backend figure benches; the
     * backend-overhaul analogue of FrontendConfig::use_reference).
     */
    bool use_reference = false;

    /**
     * Runs the covariance-heavy Kalman-gain slice (S = H P Hᵀ + R, the
     * SPD solve for Kᵀ, and the covariance downdate term) in float32
     * (math/blas_f32.hpp): half the memory traffic, twice the SIMD
     * lanes. The f64 state/covariance masters are kept — buffers are
     * packed down per update and the correction/downdate applied back
     * in f64, with the downdate term mirrored so the covariance stays
     * exactly symmetric. Not bit-equal to the f64 path; equivalence is
     * the pose-divergence bound asserted by
     * tests/test_backend.cpp::Float32CovarianceTracksFloat64Path.
     * Falls back to the f64 path for an update when the f32 Cholesky
     * fails, and is ignored under use_reference or a SolveHub (the
     * hub's batched-vs-direct bit-identity contract is f64-only).
     */
    bool float32_covariance_update = false;
};

/** Wall-clock latency of the VIO kernels, ms (Fig. 7 categories). */
struct MsckfTiming
{
    double imu_ms = 0.0;         //!< propagation ("IMU Proc.")
    double cov_ms = 0.0;         //!< covariance propagation+augmentation
    double jacobian_ms = 0.0;    //!< residual/Jacobian construction
    double qr_ms = 0.0;          //!< nullspace projection + compression
    double kalman_gain_ms = 0.0; //!< S formation and solve
    double update_ms = 0.0;      //!< state/covariance injection

    double
    total() const
    {
        return imu_ms + cov_ms + jacobian_ms + qr_ms + kalman_gain_ms +
               update_ms;
    }
};

/** Workload sizes of one update (scheduler / accelerator inputs). */
struct MsckfWorkload
{
    int stacked_rows = 0; //!< H rows before compression
    int state_dim = 0;    //!< error-state dimension
    int tracks_used = 0;
};

/** Camera-pose clone. */
struct CloneState
{
    long clone_id = 0;
    Quat q_wb;
    Vec3 p_wb;
};

/** The MSCKF filter. */
class Msckf
{
  public:
    /**
     * @param rig stereo rig (intrinsics + extrinsics + baseline)
     * @param cfg filter settings
     */
    Msckf(const StereoRig &rig, const MsckfConfig &cfg = {});

    /**
     * Initializes the filter at a known pose and initial velocity.
     * Deployed systems initialize at rest (velocity zero); when a run
     * starts mid-motion the caller must supply the initial velocity, as
     * the filter's initial velocity uncertainty is moderate.
     */
    void initialize(const Pose &world_from_body, double t,
                    const Vec3 &velocity = Vec3::zero());

    /** Propagates through a batch of IMU samples (ordered by time). */
    void propagate(const std::vector<ImuSample> &samples);

    /**
     * Camera-frame update: augments the state with a clone for this
     * frame and applies the measurement update for finished tracks.
     *
     * @param finished_tracks tracks that terminated at this frame
     * @param clone_id id assigned to the new clone (monotonic)
     * @return the id of the oldest clone still in the window
     */
    long update(const std::vector<FeatureTrack> &finished_tracks,
                long clone_id);

    /** Current world-from-body pose estimate. */
    Pose pose() const;

    /**
     * Routes the Kalman-gain solve through a cross-session batching
     * hub (runtime/solve_hub.hpp). Null (the default) solves directly;
     * the hub path is bit-identical to the direct one.
     */
    void setSolveHub(SolveHub *hub) { hub_ = hub; }

    /** Current velocity estimate (world frame). */
    Vec3 velocity() const { return v_; }

    const MsckfTiming &lastTiming() const { return timing_; }
    const MsckfWorkload &lastWorkload() const { return workload_; }
    int cloneCount() const { return static_cast<int>(clones_.size()); }
    const MatX &covariance() const { return cov_; }
    bool initialized() const { return initialized_; }

    /**
     * Number of updates that grew any workspace buffer (including the
     * covariance storage). Stops increasing once the clone window and
     * track load are warm — the zero-alloc steady-state contract.
     */
    long allocationEvents() const { return allocation_events_; }

    /** Total workspace + covariance capacity, bytes. */
    size_t
    workspaceCapacityBytes() const
    {
        return ws_.capacityBytes() + cov_.capacityBytes() +
               clones_.capacity() * sizeof(CloneState);
    }

  private:
    int stateDim() const
    {
        return 15 + 6 * static_cast<int>(clones_.size());
    }

    void propagateOne(const ImuSample &s, double dt);
    void augmentClone(long clone_id);
    void marginalizeOldestClone();

    /**
     * Triangulates a track in the world frame (stereo init + Gauss-
     * Newton refinement over all observations).
     * @return false when triangulation fails its sanity gates.
     */
    bool triangulateTrack(const FeatureTrack &track, Vec3 &x_world) const;

    /** Finds the window slot of a clone id (-1 when absent). */
    int cloneSlot(long clone_id) const;

    /**
     * Builds the nullspace-projected residual/Jacobian block of one
     * track into workspace buffers. @return rows appended (0 when the
     * track was rejected).
     */
    int buildTrackBlock(const FeatureTrack &track, const Vec3 &x_world,
                        MatX &h_out, VecX &r_out, int row0);

    /**
     * The float32 Kalman-gain slice: packs @p h and the covariance to
     * float, forms S and solves for Kᵀ in f32 (results in ws_.kt_f /
     * ws_.hp_f / ws_.s_f). @return false when the f32 Cholesky is not
     * SPD — the caller then reruns the f64 path for this update.
     */
    bool float32KalmanGain(const MatX &h, int rows, int d, double r_var);

    StereoRig rig_;
    MsckfConfig cfg_;
    SolveHub *hub_ = nullptr;

    // Nominal state.
    Quat q_wb_;
    Vec3 p_wb_;
    Vec3 v_;
    Vec3 bg_;
    Vec3 ba_;
    double t_ = 0.0;
    bool initialized_ = false;

    // Clone window as a flat vector (bounded size): erase-front is a
    // small memmove and — unlike std::deque — never touches the heap
    // in steady state.
    std::vector<CloneState> clones_;
    MatX cov_; //!< error-state covariance

    BackendWorkspace ws_;
    long allocation_events_ = 0;

    MsckfTiming timing_;
    MsckfWorkload workload_;
};

} // namespace edx
