#include "backend/vocabulary.hpp"

#include <algorithm>
#include <cmath>

#include "math/rng.hpp"

namespace edx {

namespace {

/** Bitwise-majority centroid of a descriptor cluster. */
Descriptor
majorityCentroid(const std::vector<Descriptor> &descs,
                 const std::vector<int> &indices)
{
    std::array<int, 256> counts{};
    for (int idx : indices) {
        const Descriptor &d = descs[idx];
        for (int b = 0; b < 256; ++b)
            if (d.bits[b >> 6] & (uint64_t{1} << (b & 63)))
                ++counts[b];
    }
    Descriptor c;
    const int half = static_cast<int>(indices.size()) / 2;
    for (int b = 0; b < 256; ++b)
        if (counts[b] > half)
            c.bits[b >> 6] |= (uint64_t{1} << (b & 63));
    return c;
}

} // namespace

int
Vocabulary::buildNode(const std::vector<Descriptor> &descs,
                      std::vector<int> indices, int level,
                      const VocabularyConfig &cfg, Rng &rng)
{
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.push_back({});
    nodes_[node_id].centroid = majorityCentroid(descs, indices);

    if (level >= cfg.levels ||
        static_cast<int>(indices.size()) <= cfg.branching) {
        nodes_[node_id].word_id = word_count_++;
        return node_id;
    }

    // k-medians with Hamming distance; seeds drawn from the cluster.
    const int k = cfg.branching;
    std::vector<Descriptor> centers(k);
    for (int c = 0; c < k; ++c)
        centers[c] =
            descs[indices[rng.uniformInt(0,
                                         static_cast<int>(indices.size()) -
                                             1)]];

    std::vector<int> assign(indices.size(), 0);
    for (int it = 0; it < cfg.kmeans_iterations; ++it) {
        for (size_t i = 0; i < indices.size(); ++i) {
            int best = 0, best_d = 257;
            for (int c = 0; c < k; ++c) {
                int d = hammingDistance(descs[indices[i]], centers[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best;
        }
        for (int c = 0; c < k; ++c) {
            std::vector<int> members;
            for (size_t i = 0; i < indices.size(); ++i)
                if (assign[i] == c)
                    members.push_back(indices[i]);
            if (!members.empty())
                centers[c] = majorityCentroid(descs, members);
        }
    }

    // Recurse into non-empty clusters.
    for (int c = 0; c < k; ++c) {
        std::vector<int> members;
        for (size_t i = 0; i < indices.size(); ++i)
            if (assign[i] == c)
                members.push_back(indices[i]);
        if (members.empty())
            continue;
        int child =
            buildNode(descs, std::move(members), level + 1, cfg, rng);
        nodes_[node_id].children.push_back(child);
    }
    if (nodes_[node_id].children.empty())
        nodes_[node_id].word_id = word_count_++;
    return node_id;
}

Vocabulary
Vocabulary::train(const std::vector<Descriptor> &corpus,
                  const VocabularyConfig &cfg)
{
    Vocabulary v;
    if (corpus.empty())
        return v;
    std::vector<int> all(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i)
        all[i] = static_cast<int>(i);
    Rng rng(cfg.seed);
    v.root_ = v.buildNode(corpus, std::move(all), 0, cfg, rng);
    return v;
}

int
Vocabulary::wordId(const Descriptor &d) const
{
    if (nodes_.empty())
        return -1;
    int cur = root_;
    while (nodes_[cur].word_id < 0) {
        const Node &n = nodes_[cur];
        int best = n.children[0], best_d = 257;
        for (int child : n.children) {
            int dist = hammingDistance(d, nodes_[child].centroid);
            if (dist < best_d) {
                best_d = dist;
                best = child;
            }
        }
        cur = best;
    }
    return nodes_[cur].word_id;
}

BowVector
Vocabulary::transform(const std::vector<Descriptor> &descs) const
{
    BowVector v;
    if (!trained() || descs.empty())
        return v;
    for (const Descriptor &d : descs)
        v[wordId(d)] += 1.0;
    double norm = 0.0;
    for (const auto &[w, c] : v)
        norm += c;
    for (auto &[w, c] : v)
        c /= norm;
    return v;
}

double
Vocabulary::similarity(const BowVector &a, const BowVector &b)
{
    // 1 - 0.5 * sum |a - b| = sum over common words of
    // min contribution; computed via the merge of the two sparse maps.
    double l1 = 0.0;
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() || ib != b.end()) {
        if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
            l1 += ia->second;
            ++ia;
        } else if (ia == a.end() || ib->first < ia->first) {
            l1 += ib->second;
            ++ib;
        } else {
            l1 += std::abs(ia->second - ib->second);
            ++ia;
            ++ib;
        }
    }
    return std::max(0.0, 1.0 - 0.5 * l1);
}

} // namespace edx
