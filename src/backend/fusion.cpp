#include "backend/fusion.hpp"

#include <cmath>

namespace edx {

Vec3
GpsFusion::fuse(const Vec3 &vio_position, const GpsSample &gps, double dt)
{
    // Prediction: drift is a random walk.
    const double q = cfg_.drift_walk_sigma * cfg_.drift_walk_sigma *
                     std::max(dt, 0.0);
    for (int i = 0; i < 3; ++i)
        p_(i, i) += q;

    if (gps.valid) {
        // Measurement: z = gps - vio = drift + noise.
        Vec3 z = gps.position - vio_position;
        Vec3 innov = z - drift_;
        const double r = gps.sigma * gps.sigma;

        // Innovation gate per axis (rejects multi-path glitches).
        bool gated = false;
        for (int i = 0; i < 3; ++i) {
            double s = p_(i, i) + r;
            if (innov[i] * innov[i] >
                cfg_.gate_sigma * cfg_.gate_sigma * s) {
                gated = true;
                break;
            }
        }
        if (!gated) {
            // Diagonal Kalman update (H = I, R = r I).
            for (int i = 0; i < 3; ++i) {
                double k = p_(i, i) / (p_(i, i) + r);
                drift_[i] += k * innov[i];
                p_(i, i) *= (1.0 - k);
            }
            ++updates_;
        } else {
            ++rejected_;
            // A rejected fix still carries information that drift may be
            // growing: inflate slightly so persistent offsets eventually
            // re-open the gate.
            for (int i = 0; i < 3; ++i)
                p_(i, i) *= 1.05;
        }
    }
    return vio_position + drift_;
}

} // namespace edx
