/**
 * @file
 * The per-session backend workspace: every buffer the MSCKF touches on
 * its hot path — covariance propagation, clone augmentation, the
 * stacked-Jacobian build, QR measurement compression, the Kalman-gain
 * solve, and the covariance downdate — owned in one place and reused
 * frame to frame, so steady-state backend frames perform zero heap
 * allocations (the backend twin of frontend/workspace.hpp).
 *
 * Ownership model:
 *  - Msckf owns one BackendWorkspace for the lifetime of the session;
 *    propagate()/update() only ever write into it.
 *  - Buffers are sized lazily: they grow until the clone window and
 *    track load reach steady state, then stop. Msckf snapshots
 *    capacityBytes() around each update and counts frames that grew
 *    anything (allocationEvents()); the zero-alloc tests assert the
 *    counter stops moving once warm.
 *  - The decomposition objects (Cholesky / LU / QR) follow the same
 *    contract through their compute() storage reuse.
 */
#pragma once

#include <vector>

#include "math/aligned_alloc.hpp"
#include "math/decomp.hpp"
#include "math/matx.hpp"

namespace edx {

struct FeatureTrack;

/** All reusable buffers of one MSCKF session. */
struct BackendWorkspace
{
    // --- covariance propagation (per IMU sample) ---------------------
    MatX a_imu{15, 15}; //!< error-state transition block
    MatX p_ii{15, 15};  //!< IMU-block copy of the covariance
    MatX ap{15, 15};    //!< A * P_II (sandwich intermediate)
    MatX s_ii{15, 15};  //!< A * P_II * A^T (exact-symmetric)
    MatX p_ic;          //!< 15 x (d-15) cross strip
    MatX ap_ic;         //!< A * P_IC

    // --- per-track residual block ------------------------------------
    std::vector<int> slots;  //!< clone slots of the track observations
    MatX hx;                 //!< 2m x d pose Jacobian
    MatX hf;                 //!< 2m x 3 feature Jacobian
    VecX r_track;            //!< 2m residual
    HouseholderQR qr_track;  //!< nullspace projector (QR of hf)

    // --- stacked system ----------------------------------------------
    std::vector<const FeatureTrack *> usable;
    std::vector<Vec3> points;
    MatX h; //!< stacked nullspace-projected Jacobian
    VecX r; //!< stacked residual

    // --- QR measurement compression ----------------------------------
    HouseholderQR qr_compress;
    MatX h_compressed; //!< top d x d triangle of the compressed stack

    // --- Kalman gain + covariance update -----------------------------
    MatX hp;  //!< H * P (sandwich intermediate == solve RHS)
    MatX s;   //!< innovation covariance H P H^T + R
    Cholesky chol;
    PartialPivLU lu; //!< fallback when S is not numerically SPD
    MatX k_t;        //!< rows x d, K = k_t^T
    VecX dx;         //!< state correction

    // --- float32 covariance-update path (math/blas_f32.hpp) ----------
    AlignedVector<float> h_f;  //!< packed compressed Jacobian
    AlignedVector<float> p_f;  //!< packed covariance
    AlignedVector<float> hp_f; //!< H * P
    AlignedVector<float> s_f;  //!< innovation covariance / its factor
    AlignedVector<float> kt_f; //!< gain transpose
    AlignedVector<float> t_f;  //!< downdate term (H P)^T K^T

    size_t
    capacityBytes() const
    {
        return a_imu.capacityBytes() + p_ii.capacityBytes() +
               ap.capacityBytes() + s_ii.capacityBytes() +
               p_ic.capacityBytes() + ap_ic.capacityBytes() +
               slots.capacity() * sizeof(int) + hx.capacityBytes() +
               hf.capacityBytes() + r_track.capacityBytes() +
               qr_track.capacityBytes() +
               usable.capacity() * sizeof(const FeatureTrack *) +
               points.capacity() * sizeof(Vec3) + h.capacityBytes() +
               r.capacityBytes() + qr_compress.capacityBytes() +
               h_compressed.capacityBytes() + hp.capacityBytes() +
               s.capacityBytes() + chol.capacityBytes() +
               lu.capacityBytes() + k_t.capacityBytes() +
               dx.capacityBytes() +
               (h_f.capacity() + p_f.capacity() + hp_f.capacity() +
                s_f.capacity() + kt_f.capacity() + t_f.capacity()) *
                   sizeof(float);
    }
};

} // namespace edx
