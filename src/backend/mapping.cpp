#include "backend/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "features/matcher.hpp"
#include "math/decomp.hpp"
#include "runtime/solve_hub.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

namespace {

/** Reprojection residual and Jacobians of one observation. */
struct ObsLinearization
{
    Vec2 r;
    Mat26 j_pose;
    Mat23 j_lm;
    double weight = 1.0;
    bool valid = false;
};

ObsLinearization
linearizeObs(const Pose &world_from_body, const Vec3 &x_world,
             const Vec2 &z, const StereoRig &rig, double huber)
{
    ObsLinearization out;
    const Mat3 r_bw = world_from_body.rotation.inverse().toRotationMatrix();
    const Mat3 r_cb =
        rig.body_from_camera.rotation.inverse().toRotationMatrix();
    const Vec3 u = r_bw * (x_world - world_from_body.translation);
    const Vec3 p_c = r_cb * (u - rig.body_from_camera.translation);
    auto px = rig.cam.project(p_c);
    if (!px)
        return out;
    out.r = Vec2{(*px)[0] - z[0], (*px)[1] - z[1]};
    double rn = out.r.norm();
    out.weight = (rn <= huber) ? 1.0 : huber / rn;

    Mat23 jp = rig.cam.projectJacobian(p_c);
    Mat23 j_theta = jp * (r_cb * skew(u));
    Mat23 j_t = jp * (r_cb * r_bw * (-1.0));
    for (int i = 0; i < 2; ++i)
        for (int k = 0; k < 3; ++k) {
            out.j_pose(i, k) = j_theta(i, k);
            out.j_pose(i, k + 3) = j_t(i, k);
        }
    out.j_lm = jp * (r_cb * r_bw);
    out.valid = true;
    return out;
}

/** Applies a body-frame right perturbation (dtheta, dt world). */
Pose
applyPoseDelta(const Pose &pose, const Vec3 &dtheta, const Vec3 &dt)
{
    return Pose((pose.rotation * Quat::exp(dtheta)).normalized(),
                pose.translation + pose.rotation.rotate(dt));
}

} // namespace

Mapper::Mapper(const StereoRig &rig, const Vocabulary *vocabulary,
               const MappingConfig &cfg)
    : rig_(rig), voc_(vocabulary), cfg_(cfg)
{
}

int
Mapper::insertKeyframe(const FrontendOutput &frame, const Pose &pose)
{
    Keyframe kf;
    kf.pose = pose;
    kf.keypoints = frame.keypoints;
    kf.descriptors = frame.descriptors;
    kf.map_point_ids.assign(frame.keypoints.size(), -1);
    if (voc_ && voc_->trained())
        kf.bow = voc_->transform(frame.descriptors);

    // Associate current key points to window landmarks by projection.
    Pose camera_from_world = (pose * rig_.body_from_camera).inverse();
    std::vector<int> candidate_ids;
    std::vector<KeyPoint> candidate_kps;
    std::vector<Descriptor> candidate_descs;
    std::unordered_set<int> window_landmarks;
    for (int kf_id : window_)
        for (int lm :
             map_.keyframes()[kf_id].map_point_ids)
            if (lm >= 0)
                window_landmarks.insert(lm);
    for (int lm : window_landmarks) {
        const MapPoint &mp = map_.points()[lm];
        Vec3 p_c = camera_from_world.apply(mp.position);
        auto px = rig_.cam.project(p_c);
        if (!px || !rig_.cam.inImage(*px, 4.0))
            continue;
        candidate_ids.push_back(lm);
        KeyPoint kp;
        kp.x = static_cast<float>((*px)[0]);
        kp.y = static_cast<float>((*px)[1]);
        candidate_kps.push_back(kp);
        candidate_descs.push_back(mp.descriptor);
    }
    MatchConfig mc;
    mc.cross_check = false;
    std::vector<Match> matches = matchDescriptorsWindowed(
        candidate_descs, candidate_kps, frame.descriptors,
        frame.keypoints, cfg_.match_radius_px, mc);
    for (const Match &m : matches) {
        if (kf.map_point_ids[m.train_index] >= 0)
            continue;
        kf.map_point_ids[m.train_index] = candidate_ids[m.query_index];
    }

    // Triangulate new landmarks from unmatched stereo key points.
    Pose world_from_camera = pose * rig_.body_from_camera;
    for (const StereoMatch &s : frame.stereo) {
        int k = s.left_index;
        if (k < 0 || kf.map_point_ids[k] >= 0)
            continue;
        auto p_cam = rig_.triangulate(
            Vec2{frame.keypoints[k].x, frame.keypoints[k].y},
            s.disparity);
        if (!p_cam)
            continue;
        MapPoint mp;
        mp.position = world_from_camera.apply(*p_cam);
        mp.descriptor = frame.descriptors[k];
        mp.observations = 0;
        kf.map_point_ids[k] = map_.addPoint(mp);
    }

    int kf_id = map_.addKeyframe(std::move(kf));
    window_.push_back(kf_id);
    ++frames_as_keyframes_;

    // Record observations.
    const Keyframe &stored = map_.keyframes()[kf_id];
    for (int k = 0; k < static_cast<int>(stored.map_point_ids.size());
         ++k) {
        int lm = stored.map_point_ids[k];
        if (lm < 0)
            continue;
        observations_[lm].push_back({kf_id, k});
        ++map_.points()[lm].observations;
    }
    return kf_id;
}

void
Mapper::localBundleAdjustment(MappingTiming &timing,
                              MappingWorkload &workload)
{
    StageTimer solver_timer(timing.solver_ms);
    if (window_.size() < 2)
        return;

    // Parameter bookkeeping: window poses (first fixed as gauge) and
    // landmarks with enough window observations.
    std::unordered_map<int, int> pose_index; // kf_id -> param slot
    for (size_t i = 1; i < window_.size(); ++i)
        pose_index[window_[i]] = static_cast<int>(i) - 1;
    const int np = static_cast<int>(window_.size()) - 1;

    std::unordered_set<int> window_set(window_.begin(), window_.end());
    std::vector<int> lms;
    std::unordered_map<int, int> lm_index;
    for (int kf_id : window_) {
        for (int lm : map_.keyframes()[kf_id].map_point_ids) {
            if (lm < 0 || lm_index.count(lm))
                continue;
            int in_window = 0;
            for (const LandmarkObs &o : observations_[lm])
                if (window_set.count(o.keyframe_id))
                    ++in_window;
            if (in_window >= cfg_.min_obs_for_ba) {
                lm_index[lm] = static_cast<int>(lms.size());
                lms.push_back(lm);
            }
        }
    }
    const int nl = static_cast<int>(lms.size());
    workload.window_keyframes = static_cast<int>(window_.size());
    workload.window_landmarks = nl;
    if (np == 0 || nl == 0)
        return;

    // Observation list restricted to the window.
    struct BaObs
    {
        int lm_slot;
        int pose_slot; //!< -1 for the fixed gauge pose
        int kf_id;
        Vec2 z;
    };
    std::vector<BaObs> obs;
    for (int l = 0; l < nl; ++l) {
        for (const LandmarkObs &o : observations_[lms[l]]) {
            if (!window_set.count(o.keyframe_id))
                continue;
            const Keyframe &kf = map_.keyframes()[o.keyframe_id];
            const KeyPoint &kp = kf.keypoints[o.keypoint_index];
            int ps = pose_index.count(o.keyframe_id)
                         ? pose_index[o.keyframe_id]
                         : -1;
            obs.push_back({l, ps, o.keyframe_id, Vec2{kp.x, kp.y}});
        }
    }
    workload.residual_count = static_cast<int>(obs.size());

    // Working copies of parameters.
    std::vector<Pose> poses(window_.size());
    for (size_t i = 0; i < window_.size(); ++i)
        poses[i] = map_.keyframes()[window_[i]].pose;
    std::vector<Vec3> points(nl);
    for (int l = 0; l < nl; ++l)
        points[l] = map_.points()[lms[l]].position;

    auto poseOf = [&](int kf_id) -> const Pose & {
        for (size_t i = 0; i < window_.size(); ++i)
            if (window_[i] == kf_id)
                return poses[i];
        return poses[0];
    };

    auto evalCost = [&]() {
        double cost = 0.0;
        for (const BaObs &o : obs) {
            ObsLinearization lin =
                linearizeObs(poseOf(o.kf_id), points[o.lm_slot], o.z,
                             rig_, cfg_.huber_px);
            if (!lin.valid) {
                cost += cfg_.huber_px * cfg_.huber_px;
                continue;
            }
            double rn = lin.r.norm();
            cost += (rn <= cfg_.huber_px)
                        ? 0.5 * rn * rn
                        : cfg_.huber_px * (rn - 0.5 * cfg_.huber_px);
        }
        return cost;
    };

    double lambda = 1e-3;
    double cost = evalCost();

    // Block-sparse W storage of the optimized Schur path: each
    // landmark keeps only the 6x3 coupling blocks of the poses that
    // actually observe it (the dense Hpl of the reference path is
    // almost entirely structural zeros).
    struct WBlock
    {
        int pose_slot;
        Mat<6, 3> w;
    };
    std::vector<std::vector<WBlock>> lm_blocks;
    std::vector<Mat<6, 3>> tbuf;
    if (!cfg_.use_reference)
        lm_blocks.resize(nl);

    for (int it = 0; it < cfg_.lm_iterations; ++it) {
        // Build the normal equations in Schur form.
        MatX hpp(6 * np, 6 * np);
        MatX hpl;
        if (cfg_.use_reference)
            hpl = MatX(6 * np, 3 * nl);
        else
            for (auto &blocks : lm_blocks)
                blocks.clear();
        std::vector<Mat3> hll(nl);
        VecX bp(6 * np), bl(3 * nl);

        for (const BaObs &o : obs) {
            ObsLinearization lin =
                linearizeObs(poseOf(o.kf_id), points[o.lm_slot], o.z,
                             rig_, cfg_.huber_px);
            if (!lin.valid)
                continue;
            const double w = lin.weight;
            // Landmark block.
            Mat3 jtj_l = Mat3::zero();
            Vec3 jtr_l = Vec3::zero();
            for (int a = 0; a < 3; ++a) {
                for (int b = 0; b < 3; ++b)
                    jtj_l(a, b) = w * (lin.j_lm(0, a) * lin.j_lm(0, b) +
                                       lin.j_lm(1, a) * lin.j_lm(1, b));
                jtr_l[a] = w * (lin.j_lm(0, a) * lin.r[0] +
                                lin.j_lm(1, a) * lin.r[1]);
            }
            hll[o.lm_slot] += jtj_l;
            for (int a = 0; a < 3; ++a)
                bl[3 * o.lm_slot + a] += jtr_l[a];

            if (o.pose_slot >= 0) {
                const int pc = 6 * o.pose_slot;
                for (int a = 0; a < 6; ++a) {
                    for (int b = 0; b < 6; ++b)
                        hpp(pc + a, pc + b) +=
                            w * (lin.j_pose(0, a) * lin.j_pose(0, b) +
                                 lin.j_pose(1, a) * lin.j_pose(1, b));
                    bp[pc + a] += w * (lin.j_pose(0, a) * lin.r[0] +
                                       lin.j_pose(1, a) * lin.r[1]);
                }
                Mat<6, 3> wblk;
                for (int a = 0; a < 6; ++a)
                    for (int b = 0; b < 3; ++b)
                        wblk(a, b) =
                            w * (lin.j_pose(0, a) * lin.j_lm(0, b) +
                                 lin.j_pose(1, a) * lin.j_lm(1, b));
                if (cfg_.use_reference) {
                    for (int a = 0; a < 6; ++a)
                        for (int b = 0; b < 3; ++b)
                            hpl(pc + a, 3 * o.lm_slot + b) += wblk(a, b);
                } else {
                    auto &blocks = lm_blocks[o.lm_slot];
                    bool merged = false;
                    for (WBlock &e : blocks) {
                        if (e.pose_slot == o.pose_slot) {
                            e.w += wblk;
                            merged = true;
                            break;
                        }
                    }
                    if (!merged)
                        blocks.push_back({o.pose_slot, wblk});
                }
            }
        }

        // Marginalization prior on its keyframe (if still in window).
        if (prior_kf_ && pose_index.count(*prior_kf_)) {
            const int pc = 6 * pose_index[*prior_kf_];
            for (int a = 0; a < 6; ++a) {
                for (int b = 0; b < 6; ++b)
                    hpp(pc + a, pc + b) += prior_h_(a, b);
                bp[pc + a] += prior_b_[a];
            }
        }

        // LM damping.
        for (int i = 0; i < 6 * np; ++i)
            hpp(i, i) *= (1.0 + lambda);
        for (int l = 0; l < nl; ++l)
            for (int a = 0; a < 3; ++a)
                hll[l](a, a) *= (1.0 + lambda);

        // Schur complement over landmarks:
        // S = Hpp - Hpl Hll^-1 Hlp ; rhs = bp - Hpl Hll^-1 bl.
        std::vector<Mat3> hll_inv(nl);
        bool singular = false;
        for (int l = 0; l < nl; ++l) {
            Mat3 m = hll[l];
            for (int a = 0; a < 3; ++a)
                m(a, a) += 1e-9;
            if (std::abs(det(m)) < 1e-24) {
                singular = true;
                break;
            }
            hll_inv[l] = inverse(m);
        }
        if (singular)
            break;

        MatX s = hpp;
        VecX rhs = bp;
        if (cfg_.use_reference) {
            // Dense path (pre-overhaul): walk every row of Hpl per
            // landmark, relying on zero-skips.
            for (int l = 0; l < nl; ++l) {
                for (int i = 0; i < 6 * np; ++i) {
                    double w0 = hpl(i, 3 * l);
                    double w1 = hpl(i, 3 * l + 1);
                    double w2 = hpl(i, 3 * l + 2);
                    if (w0 == 0.0 && w1 == 0.0 && w2 == 0.0)
                        continue;
                    double t0c = w0 * hll_inv[l](0, 0) +
                                 w1 * hll_inv[l](1, 0) +
                                 w2 * hll_inv[l](2, 0);
                    double t1c = w0 * hll_inv[l](0, 1) +
                                 w1 * hll_inv[l](1, 1) +
                                 w2 * hll_inv[l](2, 1);
                    double t2c = w0 * hll_inv[l](0, 2) +
                                 w1 * hll_inv[l](1, 2) +
                                 w2 * hll_inv[l](2, 2);
                    rhs[i] -= t0c * bl[3 * l] + t1c * bl[3 * l + 1] +
                              t2c * bl[3 * l + 2];
                    for (int j = 0; j < 6 * np; ++j) {
                        double v = t0c * hpl(j, 3 * l) +
                                   t1c * hpl(j, 3 * l + 1) +
                                   t2c * hpl(j, 3 * l + 2);
                        if (v != 0.0)
                            s(i, j) -= v;
                    }
                }
            }
            s.makeSymmetric();
        } else {
            // Block-sparse path: per landmark, only the observing pose
            // pairs contribute — 6x6 dense blocks into the lower
            // triangle, mirrored once at the end (the J·P·Jᵀ-style
            // triangle-only contract of the backend overhaul).
            for (int l = 0; l < nl; ++l) {
                const auto &blocks = lm_blocks[l];
                if (blocks.empty())
                    continue;
                const Mat3 &inv = hll_inv[l];
                const Vec3 bl_l{bl[3 * l], bl[3 * l + 1],
                                bl[3 * l + 2]};
                tbuf.resize(blocks.size());
                for (size_t e = 0; e < blocks.size(); ++e)
                    tbuf[e] = blocks[e].w * inv;
                for (size_t a = 0; a < blocks.size(); ++a) {
                    const int pa = blocks[a].pose_slot;
                    const Vec<6> rv = tbuf[a] * bl_l;
                    for (int k = 0; k < 6; ++k)
                        rhs[6 * pa + k] -= rv[k];
                    for (size_t b = 0; b < blocks.size(); ++b) {
                        const int pb = blocks[b].pose_slot;
                        if (pa < pb)
                            continue; // lower triangle only
                        const Mat<3, 6> wbt = blocks[b].w.transpose();
                        const Mat<6, 6> m = tbuf[a] * wbt;
                        for (int x = 0; x < 6; ++x)
                            for (int y = 0; y < 6; ++y)
                                s(6 * pa + x, 6 * pb + y) -= m(x, y);
                    }
                }
            }
            s.mirrorLowerToUpper();
        }

        auto dp = solveSpd(s, rhs * -1.0);
        if (!dp) {
            lambda *= 10.0;
            continue;
        }

        // Back-substitute landmarks: dl = Hll^-1 (-bl - Hlp dp).
        std::vector<Vec3> dl(nl);
        for (int l = 0; l < nl; ++l) {
            Vec3 acc{-bl[3 * l], -bl[3 * l + 1], -bl[3 * l + 2]};
            if (cfg_.use_reference) {
                for (int i = 0; i < 6 * np; ++i) {
                    double d = (*dp)[i];
                    if (d == 0.0)
                        continue;
                    acc[0] -= hpl(i, 3 * l) * d;
                    acc[1] -= hpl(i, 3 * l + 1) * d;
                    acc[2] -= hpl(i, 3 * l + 2) * d;
                }
            } else {
                for (const WBlock &e : lm_blocks[l]) {
                    Vec<6> dp_seg;
                    for (int k = 0; k < 6; ++k)
                        dp_seg[k] = (*dp)[6 * e.pose_slot + k];
                    const Vec3 c = e.w.transpose() * dp_seg;
                    acc -= c;
                }
            }
            dl[l] = hll_inv[l] * acc;
        }

        // Candidate state.
        std::vector<Pose> cand_poses = poses;
        std::vector<Vec3> cand_points = points;
        for (size_t i = 1; i < window_.size(); ++i) {
            int slot = static_cast<int>(i) - 1;
            Vec3 dtheta{(*dp)[6 * slot], (*dp)[6 * slot + 1],
                        (*dp)[6 * slot + 2]};
            Vec3 dt{(*dp)[6 * slot + 3], (*dp)[6 * slot + 4],
                    (*dp)[6 * slot + 5]};
            cand_poses[i] = applyPoseDelta(poses[i], dtheta, dt);
        }
        for (int l = 0; l < nl; ++l)
            cand_points[l] = points[l] + dl[l];

        std::swap(poses, cand_poses);
        std::swap(points, cand_points);
        double new_cost = evalCost();
        if (new_cost < cost) {
            cost = new_cost;
            lambda = std::max(1e-9, lambda * 0.3);
        } else {
            std::swap(poses, cand_poses);
            std::swap(points, cand_points);
            lambda *= 10.0;
        }
    }

    // Write back.
    for (size_t i = 0; i < window_.size(); ++i)
        map_.keyframes()[window_[i]].pose = poses[i];
    for (int l = 0; l < nl; ++l)
        map_.points()[lms[l]].position = points[l];
}

void
Mapper::computeMarginalization(MappingTiming &timing,
                               MappingWorkload &workload)
{
    StageTimer timer(timing.marginalization_ms);
    const int old_kf = window_.front();
    const int next_kf = window_[1];

    // States to marginalize: landmarks observed by the old keyframe
    // (diagonal A block, 3x3 each) plus the old pose itself (the 6x6 D
    // block) - exactly the Amm structure of Sec. VI-A. The remaining
    // state the prior lands on is the next-oldest pose.
    std::vector<int> marg_lms;
    for (int lm : map_.keyframes()[old_kf].map_point_ids)
        if (lm >= 0)
            marg_lms.push_back(lm);
    std::unordered_map<int, int> lm_slot;
    for (size_t i = 0; i < marg_lms.size(); ++i)
        lm_slot[marg_lms[i]] = static_cast<int>(i);
    const int nm = static_cast<int>(marg_lms.size());
    workload.marginalized_landmarks = nm;

    if (nm > 0 && !cfg_.use_reference) {
        // Structure-exploiting elimination (the specialized inversion
        // hardware of Sec. VI-A: "diagonal reciprocals" for the
        // landmark block plus a dense 6x6 core). The system over
        // {landmarks l, old pose m, next pose r} is accumulated in
        // compact blocks — no (3nm+12)^2 dense matrix — and reduced in
        // two stages:
        //   1. per-landmark 3x3 eliminations (linear in nm),
        //   2. a single dense 6x6 solve for the old pose, batched
        //      across sessions through the hub when one is attached.
        std::vector<Mat3> hll(nm, Mat3::zero());
        std::vector<Vec3> bl(nm, Vec3::zero());
        std::vector<Mat36> blm(nm, Mat36::zero()); // l x old pose
        std::vector<Mat36> blr(nm, Mat36::zero()); // l x next pose
        Mat<6, 6> dmm = Mat<6, 6>::zero();         // old pose block
        Mat<6, 6> arr = Mat<6, 6>::zero();         // next pose block
        Vec<6> bm6 = Vec<6>::zero(), br6 = Vec<6>::zero();

        auto accumulate = [&](int kf_id, bool old_pose) {
            const Keyframe &kf = map_.keyframes()[kf_id];
            for (int lm : marg_lms) {
                for (const LandmarkObs &o : observations_[lm]) {
                    if (o.keyframe_id != kf_id)
                        continue;
                    const KeyPoint &kp = kf.keypoints[o.keypoint_index];
                    ObsLinearization lin = linearizeObs(
                        kf.pose, map_.points()[lm].position,
                        Vec2{kp.x, kp.y}, rig_, cfg_.huber_px);
                    if (!lin.valid)
                        continue;
                    const double w =
                        lin.weight /
                        (cfg_.pixel_sigma * cfg_.pixel_sigma);
                    const int l = lm_slot[lm];
                    for (int x = 0; x < 3; ++x) {
                        for (int y = 0; y < 3; ++y)
                            hll[l](x, y) +=
                                w * (lin.j_lm(0, x) * lin.j_lm(0, y) +
                                     lin.j_lm(1, x) * lin.j_lm(1, y));
                        bl[l][x] += w * (lin.j_lm(0, x) * lin.r[0] +
                                         lin.j_lm(1, x) * lin.r[1]);
                        for (int y = 0; y < 6; ++y) {
                            double v =
                                w * (lin.j_lm(0, x) * lin.j_pose(0, y) +
                                     lin.j_lm(1, x) * lin.j_pose(1, y));
                            (old_pose ? blm : blr)[l](x, y) += v;
                        }
                    }
                    Mat<6, 6> &pp = old_pose ? dmm : arr;
                    Vec<6> &pb = old_pose ? bm6 : br6;
                    for (int x = 0; x < 6; ++x) {
                        for (int y = 0; y < 6; ++y)
                            pp(x, y) +=
                                w * (lin.j_pose(0, x) * lin.j_pose(0, y) +
                                     lin.j_pose(1, x) * lin.j_pose(1, y));
                        pb[x] += w * (lin.j_pose(0, x) * lin.r[0] +
                                      lin.j_pose(1, x) * lin.r[1]);
                    }
                }
            }
        };
        accumulate(old_kf, true);
        accumulate(next_kf, false);

        // Stage 1: eliminate the landmark block (Tikhonov-guarded,
        // matching the dense path's diagonal guard).
        Mat<6, 6> dmr = Mat<6, 6>::zero(); // old-next coupling (fill-in)
        for (int l = 0; l < nm; ++l) {
            Mat3 g = hll[l];
            for (int x = 0; x < 3; ++x)
                g(x, x) += 1e-6;
            if (std::abs(det(g)) < 1e-24)
                continue; // zero-information landmark: nothing to add
            const Mat3 ginv = inverse(g);
            const Mat36 t_m = ginv * blm[l]; // 3x6
            const Mat36 t_r = ginv * blr[l];
            dmm += blm[l].transpose() * t_m * -1.0;
            dmr += blm[l].transpose() * t_r * -1.0;
            arr += blr[l].transpose() * t_r * -1.0;
            const Vec3 gb = ginv * bl[l];
            bm6 += blm[l].transpose() * gb * -1.0;
            br6 += blr[l].transpose() * gb * -1.0;
        }
        for (int x = 0; x < 6; ++x)
            dmm(x, x) += 1e-6;

        // Stage 2: eliminate the old pose through the dense 6x6 core.
        // Combined RHS [D_mr | b_m]; routed through the hub so
        // concurrent sessions' marginalizations execute as one batch.
        MatX mm(6, 6), rhs(6, 7);
        for (int x = 0; x < 6; ++x) {
            for (int y = 0; y < 6; ++y) {
                mm(x, y) = dmm(x, y);
                rhs(x, y) = dmr(x, y);
            }
            rhs(x, 6) = bm6[x];
        }
        MatX sol;
        bool solved = false;
        if (hub_) {
            solved = hub_->luSolve(mm, rhs, sol);
        } else {
            PartialPivLU lu(mm);
            if (lu.ok()) {
                lu.solveInto(rhs, sol);
                solved = true;
            }
        }
        if (solved) {
            // prior = A_rr' - D_mr^T D_mm'^-1 [D_mr | b_m].
            MatX h_new(6, 6);
            VecX b_new(6);
            for (int x = 0; x < 6; ++x) {
                for (int y = 0; y < 6; ++y) {
                    double acc = arr(x, y);
                    for (int k = 0; k < 6; ++k)
                        acc -= dmr(k, x) * sol(k, y);
                    h_new(x, y) = acc;
                }
                double acc = br6[x];
                for (int k = 0; k < 6; ++k)
                    acc -= dmr(k, x) * sol(k, 6);
                b_new[x] = acc;
            }
            pending_.marg_solved = true;
            pending_.prior_kf = next_kf;
            pending_.prior_h = h_new;
            pending_.prior_b = b_new;
        }
    } else if (nm > 0) {
        // Reference path (pre-overhaul): dense Amm assembly + LU.
        const int m_dim = 3 * nm + 6; // landmarks + old pose
        const int r_dim = 6;          // next-oldest pose
        MatX a(m_dim + r_dim, m_dim + r_dim);
        VecX b(m_dim + r_dim);

        auto accumulate = [&](int kf_id, int pose_col) {
            const Keyframe &kf = map_.keyframes()[kf_id];
            for (int lm : marg_lms) {
                for (const LandmarkObs &o : observations_[lm]) {
                    if (o.keyframe_id != kf_id)
                        continue;
                    const KeyPoint &kp = kf.keypoints[o.keypoint_index];
                    ObsLinearization lin = linearizeObs(
                        kf.pose, map_.points()[lm].position,
                        Vec2{kp.x, kp.y}, rig_, cfg_.huber_px);
                    if (!lin.valid)
                        continue;
                    const double w =
                        lin.weight /
                        (cfg_.pixel_sigma * cfg_.pixel_sigma);
                    const int lc = 3 * lm_slot[lm];
                    for (int x = 0; x < 3; ++x) {
                        for (int y = 0; y < 3; ++y)
                            a(lc + x, lc + y) +=
                                w * (lin.j_lm(0, x) * lin.j_lm(0, y) +
                                     lin.j_lm(1, x) * lin.j_lm(1, y));
                        b[lc + x] += w * (lin.j_lm(0, x) * lin.r[0] +
                                          lin.j_lm(1, x) * lin.r[1]);
                        for (int y = 0; y < 6; ++y) {
                            double v =
                                w * (lin.j_lm(0, x) * lin.j_pose(0, y) +
                                     lin.j_lm(1, x) * lin.j_pose(1, y));
                            a(lc + x, pose_col + y) += v;
                            a(pose_col + y, lc + x) += v;
                        }
                    }
                    for (int x = 0; x < 6; ++x) {
                        for (int y = 0; y < 6; ++y)
                            a(pose_col + x, pose_col + y) +=
                                w * (lin.j_pose(0, x) * lin.j_pose(0, y) +
                                     lin.j_pose(1, x) * lin.j_pose(1, y));
                        b[pose_col + x] +=
                            w * (lin.j_pose(0, x) * lin.r[0] +
                                 lin.j_pose(1, x) * lin.r[1]);
                    }
                }
            }
        };
        accumulate(old_kf, 3 * nm);      // old pose: inside Amm
        accumulate(next_kf, 3 * nm + 6); // next pose: remaining state

        MatX amm = a.block(0, 0, m_dim, m_dim);
        MatX amr = a.block(0, m_dim, m_dim, r_dim);
        MatX arr = a.block(m_dim, m_dim, r_dim, r_dim);
        VecX bm(m_dim), br(r_dim);
        for (int i = 0; i < m_dim; ++i)
            bm[i] = b[i];
        for (int i = 0; i < r_dim; ++i)
            br[i] = b[m_dim + i];

        for (int i = 0; i < m_dim; ++i)
            amm(i, i) += 1e-6; // Tikhonov guard for unconstrained states

        PartialPivLU lu(amm);
        if (lu.ok()) {
            MatX amm_inv_amr = lu.solve(amr);
            VecX amm_inv_bm = lu.solve(bm);
            MatX h_new = arr - amr.transpose() * amm_inv_amr;
            VecX b_new = br - amr.transpose() * amm_inv_bm;
            pending_.marg_solved = true;
            pending_.prior_kf = next_kf;
            pending_.prior_h = h_new;
            pending_.prior_b = b_new;
        }
    }

    // The structural effects — dropping the old keyframe from the
    // window and its observations, installing the prior — are deferred
    // to the next frame's applyPendingFinish(): this function must stay
    // read-only so it may overlap the next frame's tracking.
    pending_.marg = true;
    pending_.old_kf = old_kf;
}

bool
Mapper::detectLoopClosure(int new_kf_id, MappingTiming &timing)
{
    StageTimer timer(timing.loop_ms);
    bool detected = false;
    const Keyframe &cur = map_.keyframes()[new_kf_id];
    if (voc_ && voc_->trained() &&
        new_kf_id > cfg_.loop_min_gap) {
        auto place =
            map_.queryPlace(cur.bow, new_kf_id - cfg_.loop_min_gap);
        if (place && place->score >= cfg_.loop_min_score) {
            const Keyframe &old = map_.keyframes()[place->keyframe_id];
            // 2D-2D descriptor match, lifted to 3D by the old keyframe's
            // landmark associations.
            std::vector<Match> matches =
                matchDescriptors(old.descriptors, cur.descriptors);
            std::vector<PoseObservation> obs;
            for (const Match &m : matches) {
                int lm = old.map_point_ids[m.query_index];
                if (lm < 0)
                    continue;
                const KeyPoint &kp = cur.keypoints[m.train_index];
                obs.push_back({map_.points()[lm].position,
                               Vec2{kp.x, kp.y}});
            }
            if (static_cast<int>(obs.size()) >= cfg_.loop_min_matches) {
                PoseOptResult opt = optimizePose(
                    cur.pose, obs, rig_.cam, rig_.body_from_camera);
                if (opt.converged &&
                    opt.inliers >= cfg_.loop_min_matches / 2) {
                    // Correction transform mapping the drifted estimate
                    // onto the loop-consistent one. The rigid window
                    // correction is deferred to applyPendingFinish()
                    // (this function is read-only so it may overlap the
                    // next frame's tracking).
                    pending_.loop = true;
                    pending_.correction = opt.pose * cur.pose.inverse();
                    detected = true;
                }
            }
        }
    }
    return detected;
}

std::optional<Pose>
Mapper::applyPendingFinish(MappingTiming &timing)
{
    if (!pending_.marg && !pending_.loop)
        return std::nullopt;
    StageTimer timer(timing.others_ms);

    if (pending_.marg) {
        // Drop the marginalized keyframe from the window and its
        // observations; install the computed prior.
        const int old_kf = pending_.old_kf;
        assert(!window_.empty() && window_.front() == old_kf);
        for (int lm : map_.keyframes()[old_kf].map_point_ids) {
            if (lm < 0)
                continue;
            auto &obs = observations_[lm];
            obs.erase(std::remove_if(obs.begin(), obs.end(),
                                     [old_kf](const LandmarkObs &o) {
                                         return o.keyframe_id == old_kf;
                                     }),
                      obs.end());
        }
        window_.erase(window_.begin());
        if (retire_log_)
            retired_.push_back(old_kf);
        if (pending_.marg_solved) {
            prior_kf_ = pending_.prior_kf;
            prior_h_ = pending_.prior_h;
            prior_b_ = pending_.prior_b;
        }
    }

    std::optional<Pose> correction;
    if (pending_.loop) {
        // Rigid loop correction over the (post-pop) window: poses plus
        // the landmarks they observe, exactly the set the pre-split
        // algorithm transformed.
        const Pose &corr = pending_.correction;
        std::unordered_set<int> win_lms;
        for (int kf_id : window_) {
            Keyframe &kf = map_.keyframes()[kf_id];
            kf.pose = corr * kf.pose;
            for (int lm : kf.map_point_ids)
                if (lm >= 0)
                    win_lms.insert(lm);
        }
        for (int lm : win_lms)
            map_.points()[lm].position =
                corr.apply(map_.points()[lm].position);
        // The prior linearization moved with the window.
        prior_b_ = VecX(6);
        ++loop_closures_;
        correction = corr;
    }

    pending_ = PendingFinish{};
    return correction;
}

MappingResult
Mapper::processFrameSolve(const FrontendOutput &frame,
                          const Pose &pose_estimate)
{
    MappingResult res;
    res.pose = pose_estimate;
    ++frame_counter_;
    finish_kf_ = -1;

    const bool make_keyframe =
        window_.empty() || (frame_counter_ % cfg_.keyframe_interval) == 0;
    if (!make_keyframe)
        return res;

    int kf_id = -1;
    {
        StageTimer timer(res.timing.others_ms);
        kf_id = insertKeyframe(frame, pose_estimate);
        res.keyframe_added = true;
    }

    localBundleAdjustment(res.timing, res.workload);

    finish_kf_ = kf_id;
    res.pose = map_.keyframes()[kf_id].pose;
    return res;
}

void
Mapper::computeFinish(MappingResult &res)
{
    if (finish_kf_ < 0)
        return; // no keyframe this frame: nothing to finish
    pending_ = PendingFinish{};

    if (static_cast<int>(window_.size()) > cfg_.window_size)
        computeMarginalization(res.timing, res.workload);

    res.loop_closed = detectLoopClosure(finish_kf_, res.timing);
    finish_kf_ = -1;
}

MappingResult
Mapper::processFrame(const FrontendOutput &frame, const Pose &pose_estimate)
{
    MappingTiming apply_timing;
    std::optional<Pose> corr = applyPendingFinish(apply_timing);
    const Pose estimate =
        corr ? *corr * pose_estimate : pose_estimate;

    MappingResult res = processFrameSolve(frame, estimate);
    res.timing.others_ms += apply_timing.others_ms;
    computeFinish(res);
    return res;
}

} // namespace edx
