/**
 * @file
 * The landmark map shared by the registration and SLAM backends.
 *
 * A Map is a set of 3-D map points (position + representative ORB
 * descriptor) and a database of keyframes (pose + features + BoW vector)
 * supporting place-recognition queries. In the registration mode the map
 * is loaded as an input; in the SLAM mode the mapping block continuously
 * extends it; the "Persist Map" path of Fig. 4 is the save/load pair.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "backend/vocabulary.hpp"
#include "features/keypoint.hpp"
#include "math/se3.hpp"

namespace edx {

/** A 3-D landmark with its visual signature. */
struct MapPoint
{
    Vec3 position;          //!< world frame
    Descriptor descriptor;  //!< representative ORB descriptor
    int observations = 0;   //!< number of keyframes observing it
};

/** A keyframe: a pose with its features and place-recognition vector. */
struct Keyframe
{
    int id = -1;
    Pose pose;                          //!< world-from-body
    std::vector<KeyPoint> keypoints;
    std::vector<Descriptor> descriptors;
    std::vector<int> map_point_ids;     //!< per keypoint; -1 when none
    BowVector bow;
};

/** Result of a place-recognition query. */
struct PlaceMatch
{
    int keyframe_id = -1;
    double score = 0.0;
};

/** The map: landmarks + keyframe database. */
class Map
{
  public:
    Map() = default;
    // Copies/moves keep the default member semantics but mint a fresh
    // uid for the destination (a distinct object is a distinct cache
    // identity; uid_ is set by its member initializer in every
    // constructor below).
    Map(const Map &o) : points_(o.points_), keyframes_(o.keyframes_) {}
    Map(Map &&o) noexcept
        : points_(std::move(o.points_)),
          keyframes_(std::move(o.keyframes_))
    {
    }
    Map &
    operator=(Map o) noexcept
    {
        points_ = std::move(o.points_);
        keyframes_ = std::move(o.keyframes_);
        return *this;
    }

    /**
     * Process-unique identity of this Map object (never reused, unlike
     * its address) — the cache key of the SolveHub's static-map
     * projection cache.
     */
    uint64_t uid() const { return uid_; }

    int addPoint(const MapPoint &p);
    int addKeyframe(Keyframe kf); //!< assigns and returns the keyframe id

    const std::vector<MapPoint> &points() const { return points_; }
    std::vector<MapPoint> &points() { return points_; }
    const std::vector<Keyframe> &keyframes() const { return keyframes_; }
    std::vector<Keyframe> &keyframes() { return keyframes_; }

    int pointCount() const { return static_cast<int>(points_.size()); }
    int keyframeCount() const
    {
        return static_cast<int>(keyframes_.size());
    }

    /**
     * Best keyframe by BoW similarity, skipping keyframes with
     * id > @p max_id (used by SLAM loop detection to ignore the most
     * recent keyframes). @p max_id < 0 searches everything.
     */
    std::optional<PlaceMatch> queryPlace(const BowVector &bow,
                                         int max_id = -1) const;

    /**
     * Serializes the map (points + keyframes) to a binary file.
     * @return false on I/O failure.
     */
    bool save(const std::string &path) const;

    /** Loads a map written by save(). */
    static std::optional<Map> load(const std::string &path);

  private:
    static uint64_t nextUid();

    uint64_t uid_ = nextUid();
    std::vector<MapPoint> points_;
    std::vector<Keyframe> keyframes_;
};

} // namespace edx
