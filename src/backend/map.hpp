/**
 * @file
 * The landmark map shared by the registration and SLAM backends.
 *
 * A Map is a set of 3-D map points (position + representative ORB
 * descriptor) and a database of keyframes (pose + features + BoW vector)
 * supporting place-recognition queries. In the registration mode the map
 * is loaded as an input; in the SLAM mode the mapping block continuously
 * extends it; the "Persist Map" path of Fig. 4 is the save/load pair.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "backend/vocabulary.hpp"
#include "features/keypoint.hpp"
#include "math/se3.hpp"

namespace edx {

/** A 3-D landmark with its visual signature. */
struct MapPoint
{
    Vec3 position;          //!< world frame
    Descriptor descriptor;  //!< representative ORB descriptor
    int observations = 0;   //!< number of keyframes observing it
};

/** A keyframe: a pose with its features and place-recognition vector. */
struct Keyframe
{
    int id = -1;
    Pose pose;                          //!< world-from-body
    std::vector<KeyPoint> keypoints;
    std::vector<Descriptor> descriptors;
    std::vector<int> map_point_ids;     //!< per keypoint; -1 when none
    BowVector bow;
};

/** Result of a place-recognition query. */
struct PlaceMatch
{
    int keyframe_id = -1;
    double score = 0.0;
};

/**
 * Memory budget of a map builder (the MapService's merged map). 0
 * means unlimited; the legacy single-session paths never evict.
 */
struct MapBudget
{
    int max_points = 0;    //!< landmark cap (0 = unlimited)
    int max_keyframes = 0; //!< keyframe-database cap (0 = unlimited)
};

/**
 * One spatial tile of the tile index: the ids of the landmarks and
 * keyframes whose positions fall inside the tile's ground-plane cell.
 */
struct MapTile
{
    std::vector<int> points;
    std::vector<int> keyframes;
};

/** What evictToBudget() removed and how the survivors were renumbered. */
struct MapEvictionResult
{
    int points_evicted = 0;
    int keyframes_evicted = 0;

    /** old id -> new id, -1 for evicted entries. Empty = nothing moved. */
    std::vector<int> point_remap;
    std::vector<int> keyframe_remap;
};

/** The map: landmarks + keyframe database. */
class Map
{
  public:
    Map() = default;
    // Copies/moves keep the default member semantics but mint a fresh
    // uid for the destination (a distinct object is a distinct cache
    // identity; uid_ is set by its member initializer in every
    // constructor below).
    Map(const Map &o)
        : points_(o.points_), keyframes_(o.keyframes_),
          tile_size_m_(o.tile_size_m_), tiles_(o.tiles_)
    {
    }
    Map(Map &&o) noexcept
        : points_(std::move(o.points_)),
          keyframes_(std::move(o.keyframes_)),
          tile_size_m_(o.tile_size_m_), tiles_(std::move(o.tiles_))
    {
    }
    Map &
    operator=(Map o) noexcept
    {
        points_ = std::move(o.points_);
        keyframes_ = std::move(o.keyframes_);
        tile_size_m_ = o.tile_size_m_;
        tiles_ = std::move(o.tiles_);
        return *this;
    }

    /**
     * Process-unique identity of this Map object (never reused, unlike
     * its address) — the cache key of the SolveHub's static-map
     * projection cache.
     */
    uint64_t uid() const { return uid_; }

    int addPoint(const MapPoint &p);
    int addKeyframe(Keyframe kf); //!< assigns and returns the keyframe id

    const std::vector<MapPoint> &points() const { return points_; }
    std::vector<MapPoint> &points() { return points_; }
    const std::vector<Keyframe> &keyframes() const { return keyframes_; }
    std::vector<Keyframe> &keyframes() { return keyframes_; }

    int pointCount() const { return static_cast<int>(points_.size()); }
    int keyframeCount() const
    {
        return static_cast<int>(keyframes_.size());
    }

    /**
     * Best keyframe by BoW similarity, skipping keyframes with
     * id > @p max_id (used by SLAM loop detection to ignore the most
     * recent keyframes). @p max_id < 0 searches everything.
     */
    std::optional<PlaceMatch> queryPlace(const BowVector &bow,
                                         int max_id = -1) const;

    /**
     * Evicts landmarks/keyframes down to @p budget and compacts the
     * survivors so the id == index invariant holds again. Deterministic
     * rules: the oldest keyframes (lowest ids) go first; landmarks go
     * by (observations ascending, id ascending). When keyframes were
     * dropped, every surviving landmark's observation count is
     * recomputed from the surviving database first, so the eviction
     * order reflects the post-drop map. All keyframe map_point_ids are
     * rewritten through the remap (-1 for evicted landmarks). A map
     * within budget is untouched. The tile index, when built, is
     * rebuilt over the survivors.
     */
    MapEvictionResult evictToBudget(const MapBudget &budget);

    /**
     * Builds (or rebuilds) the spatial tile index: every landmark and
     * keyframe is bucketed by its ground-plane (x, y) cell of
     * @p tile_size_m meters. Only meaningful on a map whose positions
     * no longer move (an epoch snapshot) — SLAM local BA would
     * invalidate it silently. @p tile_size_m <= 0 clears the index.
     */
    void buildTileIndex(double tile_size_m);

    /** Tile edge length of the built index, meters (0 = no index). */
    double tileSize() const { return tile_size_m_; }

    /** The tile index, keyed by packed (ix, iy) cell coordinates
     *  (ordered, so iteration and serialization are canonical). */
    const std::map<uint64_t, MapTile> &tiles() const { return tiles_; }

    /** Packs the ground-plane cell of @p position into a tile key. */
    static uint64_t tileKeyOf(const Vec3 &position, double tile_size_m);

    /**
     * Serializes the map to a binary file in the versioned map_io
     * format (magic + version + sections). @return false on failure.
     */
    bool save(const std::string &path) const;

    /** Loads a map written by save(). Diagnostics via map_io. */
    static std::optional<Map> load(const std::string &path);

  private:
    static uint64_t nextUid();

    uint64_t uid_ = nextUid();
    std::vector<MapPoint> points_;
    std::vector<Keyframe> keyframes_;
    double tile_size_m_ = 0.0;
    std::map<uint64_t, MapTile> tiles_;
};

} // namespace edx
