#include "backend/msckf.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "math/blas.hpp"
#include "math/blas_f32.hpp"
#include "math/decomp.hpp"
#include "runtime/solve_hub.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

Msckf::Msckf(const StereoRig &rig, const MsckfConfig &cfg)
    : rig_(rig), cfg_(cfg)
{
}

void
Msckf::initialize(const Pose &world_from_body, double t,
                  const Vec3 &velocity)
{
    q_wb_ = world_from_body.rotation;
    p_wb_ = world_from_body.translation;
    v_ = velocity;
    bg_ = Vec3::zero();
    ba_ = Vec3::zero();
    t_ = t;
    clones_.clear();
    clones_.reserve(static_cast<size_t>(cfg_.max_clones) + 2);

    // Reserve the covariance at its steady-state extent so the
    // augment/marginalize cycle repacks in place from the first frame.
    const int d_max = 15 + 6 * (cfg_.max_clones + 1);
    cov_.reserve(d_max, d_max);
    cov_.resize(15, 15);
    // Initial uncertainty: small attitude/pose (we start from a known
    // reference), moderate velocity and bias uncertainty so the first
    // camera updates can correct initialization error.
    for (int i = 0; i < 3; ++i) {
        cov_(i, i) = 1e-4;            // theta
        cov_(3 + i, 3 + i) = 1e-5;    // bg
        cov_(6 + i, 6 + i) = 1e-1;    // v
        cov_(9 + i, 9 + i) = 1e-2;    // ba
        cov_(12 + i, 12 + i) = 1e-6;  // p
    }
    allocation_events_ = 0;
    initialized_ = true;
}

void
Msckf::propagateOne(const ImuSample &s, double dt)
{
    if (dt <= 0.0)
        return;

    const Vec3 w = s.gyro - bg_;
    const Vec3 a = s.accel - ba_;
    const Mat3 r_wb = q_wb_.toRotationMatrix();
    const Vec3 a_world = r_wb * a + gravityWorld();

    // --- Error-state transition (first order):
    //   theta' = Exp(-w dt) theta - dt * bg_err
    //   v'     = v - R [a]x dt theta - R dt ba_err
    //   p'     = p + dt v
    // The transition matrix differs from identity only in the 15x15
    // IMU-error block, so the covariance update is done blockwise:
    //   P_II <- A P_II A^T + Q,  P_IC <- A P_IC,  P_CC unchanged.
    // This keeps per-sample propagation O(15^2 * d) instead of O(d^3),
    // as deployed MSCKF implementations do.
    const int d = stateDim();
    MatX &a_imu = ws_.a_imu;
    a_imu.setZero();
    for (int i = 0; i < 15; ++i)
        a_imu(i, i) = 1.0;
    const Mat3 exp_neg = Quat::exp(w * (-dt)).toRotationMatrix();
    a_imu.setFixedBlock<3, 3>(0, 0, exp_neg);
    a_imu.setFixedBlock<3, 3>(0, 3, Mat3::identity() * (-dt));
    a_imu.setFixedBlock<3, 3>(6, 0, r_wb * skew(a) * (-dt));
    a_imu.setFixedBlock<3, 3>(6, 9, r_wb * (-dt));
    a_imu.setFixedBlock<3, 3>(12, 6, Mat3::identity() * dt);

    // Discrete process noise (only on the 15 IMU-error states).
    const double qg = cfg_.gyro_sigma * cfg_.gyro_sigma * dt;
    const double qbg = cfg_.gyro_bias_sigma * cfg_.gyro_bias_sigma * dt;
    const double qa = cfg_.accel_sigma * cfg_.accel_sigma * dt;
    const double qba = cfg_.accel_bias_sigma * cfg_.accel_bias_sigma * dt;

    if (cfg_.use_reference) {
        // Pre-overhaul path: allocating block ops, full symmetrize.
        MatX q = MatX(15, 15);
        for (int i = 0; i < 3; ++i) {
            q(i, i) = qg;
            q(3 + i, 3 + i) = qbg;
            q(6 + i, 6 + i) = qa;
            q(9 + i, 9 + i) = qba;
            q(12 + i, 12 + i) = qa * dt * dt;
        }
        MatX p_ii = cov_.block(0, 0, 15, 15);
        MatX ap;
        gemmReference(a_imu, p_ii, ap);
        MatX at = a_imu.transpose();
        MatX apat;
        gemmReference(ap, at, apat);
        cov_.setBlock(0, 0, apat + q);
        if (d > 15) {
            MatX p_ic = cov_.block(0, 15, 15, d - 15);
            MatX new_ic;
            gemmReference(a_imu, p_ic, new_ic);
            cov_.setBlock(0, 15, new_ic);
            cov_.setBlock(15, 0, new_ic.transpose());
        }
        cov_.makeSymmetric();
    } else {
        // Workspace path: the IMU block goes through the symmetric
        // sandwich (exact-symmetric by construction), the cross strip
        // through one GEMM with an in-place transpose mirror. The
        // covariance stays exactly symmetric, so the former per-sample
        // O(d^2) makeSymmetric() pass is gone.
        for (int i = 0; i < 15; ++i) {
            const double *src = cov_.data() + static_cast<size_t>(i) * d;
            double *dst = ws_.p_ii.data() + static_cast<size_t>(i) * 15;
            std::memcpy(dst, src, sizeof(double) * 15);
        }
        symmetricSandwichInto(a_imu, ws_.p_ii, ws_.ap, ws_.s_ii);
        for (int i = 0; i < 3; ++i) {
            ws_.s_ii(i, i) += qg;
            ws_.s_ii(3 + i, 3 + i) += qbg;
            ws_.s_ii(6 + i, 6 + i) += qa;
            ws_.s_ii(9 + i, 9 + i) += qba;
            ws_.s_ii(12 + i, 12 + i) += qa * dt * dt;
        }
        for (int i = 0; i < 15; ++i) {
            const double *src =
                ws_.s_ii.data() + static_cast<size_t>(i) * 15;
            double *dst = cov_.data() + static_cast<size_t>(i) * d;
            std::memcpy(dst, src, sizeof(double) * 15);
        }
        if (d > 15) {
            const int dc = d - 15;
            ws_.p_ic.resize(15, dc);
            for (int i = 0; i < 15; ++i) {
                const double *src =
                    cov_.data() + static_cast<size_t>(i) * d + 15;
                double *dst =
                    ws_.p_ic.data() + static_cast<size_t>(i) * dc;
                std::memcpy(dst, src, sizeof(double) * dc);
            }
            gemmInto(a_imu, ws_.p_ic, ws_.ap_ic);
            for (int i = 0; i < 15; ++i) {
                const double *src =
                    ws_.ap_ic.data() + static_cast<size_t>(i) * dc;
                double *dst =
                    cov_.data() + static_cast<size_t>(i) * d + 15;
                std::memcpy(dst, src, sizeof(double) * dc);
                for (int j = 0; j < dc; ++j)
                    cov_(15 + j, i) = src[j];
            }
        }
    }

    // --- Nominal-state integration (midpoint on position).
    q_wb_ = q_wb_.integrated(w, dt);
    p_wb_ += v_ * dt + a_world * (0.5 * dt * dt);
    v_ += a_world * dt;
    t_ = s.t;
}

void
Msckf::propagate(const std::vector<ImuSample> &samples)
{
    timing_ = MsckfTiming{};
    StageTimer timer(timing_.imu_ms);
    for (const ImuSample &s : samples) {
        double dt = s.t - t_;
        // Guard against out-of-order, duplicate, and near-duplicate
        // samples (same epsilon as sanitizeImuBatch(): a subnormal dt
        // would pass a plain dt > 0 check and inject a degenerate
        // process-noise step). Batches from Dataset arrive sanitized;
        // this keeps the filter safe for any other caller.
        if (dt > 1e-12 && dt < 0.5)
            propagateOne(s, dt);
        else if (dt >= 0.5)
            t_ = s.t; // gap: re-anchor the clock, skip integration
    }
}

void
Msckf::augmentClone(long clone_id)
{
    const int d = stateDim();

    if (cfg_.use_reference) {
        // Pre-overhaul path: explicit J, two allocating products, and
        // a reallocating conservativeResize.
        MatX j(6, d);
        j.setFixedBlock<3, 3>(0, 0, Mat3::identity());
        j.setFixedBlock<3, 3>(3, 12, Mat3::identity());
        MatX jp;
        gemmReference(j, cov_, jp);
        MatX jpjt;
        multiplyTransposedReference(jp, j, jpjt);
        MatX next(d + 6, d + 6);
        for (int r = 0; r < d; ++r)
            for (int c = 0; c < d; ++c)
                next(r, c) = cov_(r, c);
        cov_ = std::move(next);
        cov_.setBlock(d, 0, jp);
        cov_.setBlock(0, d, jp.transpose());
        cov_.setBlock(d, d, jpjt);
    } else {
        // Structure-exploiting path: J only selects the theta (0..2)
        // and p (12..14) error rows, so J·P is six existing covariance
        // rows and J·P·Jᵀ is the matching 6x6 sub-block — the clone
        // augmentation is pure row/column copies, no matrix products.
        cov_.conservativeResize(d + 6, d + 6);
        auto src_row = [](int r) { return r < 3 ? r : 12 + (r - 3); };
        const int dn = d + 6;
        for (int r = 0; r < 6; ++r) {
            const double *src =
                cov_.data() + static_cast<size_t>(src_row(r)) * dn;
            double *dst = cov_.data() + static_cast<size_t>(d + r) * dn;
            std::memcpy(dst, src, sizeof(double) * d);
            // Corner block (J P Jᵀ): columns picked from this row.
            for (int c = 0; c < 6; ++c)
                dst[d + c] = src[src_row(c)];
        }
        // Mirror the new rows into the new columns.
        for (int r = 0; r < 6; ++r) {
            const double *jp_row =
                cov_.data() + static_cast<size_t>(d + r) * dn;
            for (int c = 0; c < d; ++c)
                cov_(c, d + r) = jp_row[c];
        }
    }

    clones_.push_back({clone_id, q_wb_, p_wb_});
}

void
Msckf::marginalizeOldestClone()
{
    // The MSCKF never keeps feature states, so removing a clone is a
    // plain in-place drop of its rows/columns from the covariance.
    // Dropping matching rows and columns preserves symmetry exactly.
    cov_.removeRowsAndCols(15, 6);
    clones_.erase(clones_.begin());
}

int
Msckf::cloneSlot(long clone_id) const
{
    for (int i = 0; i < static_cast<int>(clones_.size()); ++i)
        if (clones_[i].clone_id == clone_id)
            return i;
    return -1;
}

bool
Msckf::triangulateTrack(const FeatureTrack &track, Vec3 &x_world) const
{
    // Initialization: first observation with stereo depth.
    const TrackObservation *init_obs = nullptr;
    for (const TrackObservation &o : track.observations) {
        if (o.disparity > 0.5 && cloneSlot(o.clone_id) >= 0) {
            init_obs = &o;
            break;
        }
    }
    if (!init_obs)
        return false;
    int slot = cloneSlot(init_obs->clone_id);
    const CloneState &c0 = clones_[slot];
    auto p_cam = rig_.triangulate(init_obs->pixel, init_obs->disparity);
    if (!p_cam)
        return false;
    Pose world_from_cam0 =
        Pose(c0.q_wb, c0.p_wb) * rig_.body_from_camera;
    x_world = world_from_cam0.apply(*p_cam);

    // Gauss-Newton refinement over all windowed observations.
    for (int it = 0; it < cfg_.triangulation_iterations; ++it) {
        Mat3 jtj;
        Vec3 jtr;
        int used = 0;
        for (const TrackObservation &o : track.observations) {
            int s = cloneSlot(o.clone_id);
            if (s < 0)
                continue;
            const CloneState &c = clones_[s];
            Pose cam_from_world =
                (Pose(c.q_wb, c.p_wb) * rig_.body_from_camera).inverse();
            Vec3 p_c = cam_from_world.apply(x_world);
            auto px = rig_.cam.project(p_c);
            if (!px)
                continue;
            Vec2 r{(*px)[0] - o.pixel[0], (*px)[1] - o.pixel[1]};
            Mat23 jp = rig_.cam.projectJacobian(p_c);
            Mat23 j = jp * cam_from_world.rotation.toRotationMatrix();
            for (int a = 0; a < 3; ++a) {
                for (int b = 0; b < 3; ++b)
                    jtj(a, b) += j(0, a) * j(0, b) + j(1, a) * j(1, b);
                jtr[a] += j(0, a) * r[0] + j(1, a) * r[1];
            }
            ++used;
        }
        if (used < 2)
            break;
        for (int i = 0; i < 3; ++i)
            jtj(i, i) += 1e-6;
        if (std::abs(det(jtj)) < 1e-18)
            break;
        Vec3 dx = inverse(jtj) * jtr;
        x_world -= dx;
        if (dx.norm() < 1e-8)
            break;
    }

    // Sanity gate: mean reprojection error must be small and the point
    // in front of every observing camera.
    double err = 0.0;
    int used = 0;
    for (const TrackObservation &o : track.observations) {
        int s = cloneSlot(o.clone_id);
        if (s < 0)
            continue;
        const CloneState &c = clones_[s];
        Pose cam_from_world =
            (Pose(c.q_wb, c.p_wb) * rig_.body_from_camera).inverse();
        Vec3 p_c = cam_from_world.apply(x_world);
        if (p_c[2] < 0.2)
            return false;
        auto px = rig_.cam.project(p_c);
        if (!px)
            return false;
        err += Vec2{(*px)[0] - o.pixel[0], (*px)[1] - o.pixel[1]}.norm();
        ++used;
    }
    if (used < 2)
        return false;
    return err / used <= cfg_.max_reprojection_px;
}

int
Msckf::buildTrackBlock(const FeatureTrack &track, const Vec3 &x_world,
                       MatX &h_out, VecX &r_out, int row0)
{
    const int d = stateDim();

    // Raw per-observation Jacobians.
    ws_.slots.clear();
    for (const TrackObservation &o : track.observations) {
        int s = cloneSlot(o.clone_id);
        if (s >= 0)
            ws_.slots.push_back(s);
    }
    const int m = static_cast<int>(ws_.slots.size());
    if (m < 2)
        return 0;

    MatX &hx = ws_.hx;
    MatX &hf = ws_.hf;
    VecX &r = ws_.r_track;
    hx.resize(2 * m, d);
    hf.resize(2 * m, 3);
    r.resize(2 * m);

    int row = 0;
    for (const TrackObservation &o : track.observations) {
        int s = cloneSlot(o.clone_id);
        if (s < 0)
            continue;
        const CloneState &c = clones_[s];
        const Mat3 r_bw = c.q_wb.inverse().toRotationMatrix();
        const Mat3 r_cb =
            rig_.body_from_camera.rotation.inverse().toRotationMatrix();
        const Vec3 u = r_bw * (x_world - c.p_wb); // point in body frame
        const Vec3 p_c =
            r_cb * (u - rig_.body_from_camera.translation);
        auto px = rig_.cam.project(p_c);
        if (!px)
            return 0;
        Mat23 jp = rig_.cam.projectJacobian(p_c);
        // d p_c / d theta = R_cb [u]x ; d p_c / d p = -R_cb R_bw ;
        // d p_c / d x_world = +R_cb R_bw.
        Mat23 h_theta = jp * (r_cb * skew(u));
        Mat23 h_p = jp * (r_cb * r_bw * (-1.0));
        Mat23 h_x = jp * (r_cb * r_bw);

        const int col = 15 + 6 * s;
        for (int i = 0; i < 2; ++i) {
            for (int k = 0; k < 3; ++k) {
                hx(row + i, col + k) = h_theta(i, k);
                hx(row + i, col + 3 + k) = h_p(i, k);
                hf(row + i, k) = h_x(i, k);
            }
        }
        r[row] = o.pixel[0] - (*px)[0];
        r[row + 1] = o.pixel[1] - (*px)[1];
        row += 2;
    }

    // Nullspace projection: multiply by the left nullspace of Hf, i.e.
    // the trailing rows of Q^T from the QR of Hf.
    const int out_rows = 2 * m - 3;
    if (cfg_.use_reference) {
        HouseholderQRReference qr(hf);
        MatX qth = qr.qtb(hx);
        VecX qtr = qr.qtb(r);
        for (int i = 0; i < out_rows; ++i) {
            for (int j = 0; j < d; ++j)
                h_out(row0 + i, j) = qth(3 + i, j);
            r_out[row0 + i] = qtr[3 + i];
        }
    } else {
        ws_.qr_track.compute(hf);
        ws_.qr_track.qtbInPlace(hx);
        ws_.qr_track.qtbInPlace(r);
        for (int i = 0; i < out_rows; ++i) {
            const double *src =
                hx.data() + static_cast<size_t>(3 + i) * d;
            double *dst =
                h_out.data() + static_cast<size_t>(row0 + i) * d;
            std::memcpy(dst, src, sizeof(double) * d);
            r_out[row0 + i] = r[3 + i];
        }
    }
    return out_rows;
}

long
Msckf::update(const std::vector<FeatureTrack> &finished_tracks,
              long clone_id)
{
    assert(initialized_);
    const size_t capacity_before = workspaceCapacityBytes();
    workload_ = MsckfWorkload{};
    // Reset the update-side timings (imu_ms belongs to propagate());
    // the stage timers below accumulate into these sinks.
    timing_.cov_ms = timing_.jacobian_ms = timing_.qr_ms = 0.0;
    timing_.kalman_gain_ms = timing_.update_ms = 0.0;

    // --- Covariance augmentation for the new camera clone.
    {
        StageTimer timer(timing_.cov_ms);
        augmentClone(clone_id);
    }

    // --- Build stacked residuals for usable tracks.
    StageTimer jacobian_timer(timing_.jacobian_ms);
    ws_.usable.clear();
    ws_.points.clear();
    int total_rows = 0;
    for (const FeatureTrack &track : finished_tracks) {
        int in_window = 0;
        for (const TrackObservation &o : track.observations)
            if (cloneSlot(o.clone_id) >= 0)
                ++in_window;
        if (in_window < cfg_.min_track_length)
            continue;
        Vec3 x;
        if (!triangulateTrack(track, x))
            continue;
        ws_.usable.push_back(&track);
        ws_.points.push_back(x);
        total_rows += 2 * in_window - 3;
    }

    const int d = stateDim();
    MatX &h = ws_.h;
    VecX &r = ws_.r;
    // Rows [0, row) are written whole by buildTrackBlock and the rest
    // trimmed before any read, so the stacked target needs no zeroing
    // (the sparse per-track hx/hf buffers inside DO need it).
    h.resizeNoInit(std::max(total_rows, 1), d);
    r.resize(std::max(total_rows, 1));
    int row = 0;
    for (size_t i = 0; i < ws_.usable.size(); ++i)
        row += buildTrackBlock(*ws_.usable[i], ws_.points[i], h, r, row);
    jacobian_timer.stop();
    workload_.tracks_used = static_cast<int>(ws_.usable.size());
    workload_.stacked_rows = row;
    workload_.state_dim = d;

    auto finishWindow = [&]() {
        while (static_cast<int>(clones_.size()) > cfg_.max_clones)
            marginalizeOldestClone();
        if (workspaceCapacityBytes() > capacity_before)
            ++allocation_events_;
        return clones_.front().clone_id;
    };

    if (row == 0)
        return finishWindow(); // nothing to update; manage the window

    h.conservativeResize(row, d); // same width: shrink in place
    r.conservativeResize(row);

    // --- QR compression when the stack is taller than the state.
    StageTimer qr_timer(timing_.qr_ms);
    const MatX *h_used = &h;
    if (row > d) {
        if (cfg_.use_reference) {
            HouseholderQRReference qr(h);
            VecX qtb = qr.qtb(r);
            ws_.h_compressed = qr.matrixR(); // d x d upper-triangular
            r.resize(d);
            for (int i = 0; i < d; ++i)
                r[i] = qtb[i];
        } else {
            ws_.qr_compress.compute(h);
            ws_.qr_compress.qtbInPlace(r);
            ws_.qr_compress.extractRInto(ws_.h_compressed);
            r.conservativeResize(d); // top d rows of Q^T r
        }
        h_used = &ws_.h_compressed;
    }
    qr_timer.stop();
    const int rows = h_used->rows();

    // --- Kalman gain: S = H P H^T + R ; solve S K^T = H P.
    StageTimer kalman_gain_timer(timing_.kalman_gain_ms);
    const double r_var = cfg_.pixel_sigma * cfg_.pixel_sigma;
    bool gain_ok = true;
    bool used_f32 = false;
    MatX ph_t_ref; // P H^T of the reference path (reused by its downdate)
    if (cfg_.use_reference) {
        // Pre-overhaul flow: P H^T, full S product, explicit
        // symmetrize, transpose-copy RHS, column-by-column solve.
        multiplyTransposedReference(cov_, *h_used, ph_t_ref);
        MatX s;
        gemmReference(*h_used, ph_t_ref, s);
        for (int i = 0; i < rows; ++i)
            s(i, i) += r_var;
        s.makeSymmetric();
        CholeskyReference chol(s);
        if (chol.ok()) {
            ws_.k_t = chol.solve(ph_t_ref.transpose());
        } else {
            PartialPivLU lu(s);
            if (!lu.ok())
                gain_ok = false;
            else
                ws_.k_t = lu.solve(ph_t_ref.transpose());
        }
    } else if (cfg_.float32_covariance_update && !hub_ &&
               float32KalmanGain(*h_used, rows, d, r_var)) {
        used_f32 = true; // gain in ws_.kt_f, intermediates in hp_f/s_f
    } else {
        // H P is both the sandwich intermediate and the solve RHS —
        // one kernel, no transposes, triangle-only S.
        symmetricSandwichInto(*h_used, cov_, ws_.hp, ws_.s);
        for (int i = 0; i < rows; ++i)
            ws_.s(i, i) += r_var;
        if (hub_) {
            // Cross-session batched solve (bit-identical flow).
            gain_ok = hub_->solveSpd(ws_.s, ws_.hp, ws_.k_t);
        } else if (ws_.chol.compute(ws_.s)) {
            ws_.k_t = ws_.hp; // capacity-reusing copy, no zero pass
            ws_.chol.solveInPlace(ws_.k_t);
        } else if (ws_.lu.compute(ws_.s)) {
            ws_.lu.solveInto(ws_.hp, ws_.k_t);
        } else {
            gain_ok = false;
        }
    }
    kalman_gain_timer.stop();
    if (!gain_ok)
        return finishWindow();

    // --- State/covariance injection.
    StageTimer update_timer(timing_.update_ms);
    VecX &dx = ws_.dx;
    dx.resize(d);
    if (used_f32) {
        // The correction is accumulated in f64 from the f32 gain and
        // the f64 residual — the gain carries the only f32 rounding.
        for (int j = 0; j < rows; ++j) {
            const double rj = r[j];
            const float *ktj = ws_.kt_f.data() + static_cast<size_t>(j) * d;
            for (int i = 0; i < d; ++i)
                dx[i] += static_cast<double>(ktj[i]) * rj;
        }
    } else {
        for (int j = 0; j < rows; ++j) {
            const double rj = r[j];
            const double *ktj = ws_.k_t.data() + static_cast<size_t>(j) * d;
            for (int i = 0; i < d; ++i)
                dx[i] += ktj[i] * rj;
        }
    }

    q_wb_ = (q_wb_ * Quat::exp(dx.fixedSegment<3>(0))).normalized();
    bg_ += dx.fixedSegment<3>(3);
    v_ += dx.fixedSegment<3>(6);
    ba_ += dx.fixedSegment<3>(9);
    p_wb_ += dx.fixedSegment<3>(12);
    for (int c = 0; c < static_cast<int>(clones_.size()); ++c) {
        clones_[c].q_wb =
            (clones_[c].q_wb * Quat::exp(dx.fixedSegment<3>(15 + 6 * c)))
                .normalized();
        clones_[c].p_wb += dx.fixedSegment<3>(15 + 6 * c + 3);
    }

    // P <- P - P H^T K^T == P - (H P)^T k_t. The symmetric downdate
    // computes one triangle and mirrors, so the covariance leaves this
    // update *exactly* symmetric (no asymmetry drift into solveSpd's
    // LU fallback).
    if (cfg_.use_reference) {
        MatX prod;
        gemmReference(ph_t_ref, ws_.k_t, prod);
        cov_ -= prod;
        cov_.makeSymmetric();
    } else if (used_f32) {
        // The downdate term is formed in f32 (lower triangle), then
        // subtracted from the f64 master and mirrored — exactly
        // symmetric, same as the f64 kernel's contract.
        f32::downdateTerm(ws_.hp_f.data(), ws_.kt_f.data(), rows, d,
                          ws_.t_f);
        for (int i = 0; i < d; ++i) {
            const float *ti = ws_.t_f.data() + static_cast<size_t>(i) * d;
            for (int j = 0; j <= i; ++j)
                cov_(i, j) -= static_cast<double>(ti[j]);
        }
        cov_.mirrorLowerToUpper();
    } else {
        symmetricDowndateInto(ws_.hp, ws_.k_t, cov_);
    }
    // Numerical floor to keep the covariance positive.
    for (int i = 0; i < d; ++i)
        cov_(i, i) = std::max(cov_(i, i), 1e-12);
    update_timer.stop();

    // --- Window management.
    return finishWindow();
}

bool
Msckf::float32KalmanGain(const MatX &h, int rows, int d, double r_var)
{
    f32::pack(h, ws_.h_f);
    f32::pack(cov_, ws_.p_f);
    f32::sandwich(ws_.h_f.data(), ws_.p_f.data(), rows, d, ws_.hp_f,
                  ws_.s_f);
    const float rv = static_cast<float>(r_var);
    for (int i = 0; i < rows; ++i)
        ws_.s_f[static_cast<size_t>(i) * rows + i] += rv;
    if (!f32::choleskyLower(ws_.s_f.data(), rows))
        return false; // not SPD in f32 — rerun the update in f64
    ws_.kt_f.assign(ws_.hp_f.begin(), ws_.hp_f.end());
    f32::choleskySolveInPlace(ws_.s_f.data(), rows, ws_.kt_f.data(), d);
    return true;
}

Pose
Msckf::pose() const
{
    return Pose(q_wb_, p_wb_);
}

} // namespace edx
