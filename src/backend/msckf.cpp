#include "backend/msckf.hpp"

#include <algorithm>
#include <cmath>

#include "math/decomp.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

Msckf::Msckf(const StereoRig &rig, const MsckfConfig &cfg)
    : rig_(rig), cfg_(cfg)
{
}

void
Msckf::initialize(const Pose &world_from_body, double t,
                  const Vec3 &velocity)
{
    q_wb_ = world_from_body.rotation;
    p_wb_ = world_from_body.translation;
    v_ = velocity;
    bg_ = Vec3::zero();
    ba_ = Vec3::zero();
    t_ = t;
    clones_.clear();

    cov_ = MatX(15, 15);
    // Initial uncertainty: small attitude/pose (we start from a known
    // reference), moderate velocity and bias uncertainty so the first
    // camera updates can correct initialization error.
    for (int i = 0; i < 3; ++i) {
        cov_(i, i) = 1e-4;            // theta
        cov_(3 + i, 3 + i) = 1e-5;    // bg
        cov_(6 + i, 6 + i) = 1e-1;    // v
        cov_(9 + i, 9 + i) = 1e-2;    // ba
        cov_(12 + i, 12 + i) = 1e-6;  // p
    }
    initialized_ = true;
}

void
Msckf::propagateOne(const ImuSample &s, double dt)
{
    if (dt <= 0.0)
        return;

    const Vec3 w = s.gyro - bg_;
    const Vec3 a = s.accel - ba_;
    const Mat3 r_wb = q_wb_.toRotationMatrix();
    const Vec3 a_world = r_wb * a + gravityWorld();

    // --- Error-state transition (first order):
    //   theta' = Exp(-w dt) theta - dt * bg_err
    //   v'     = v - R [a]x dt theta - R dt ba_err
    //   p'     = p + dt v
    // The transition matrix differs from identity only in the 15x15
    // IMU-error block, so the covariance update is done blockwise:
    //   P_II <- A P_II A^T + Q,  P_IC <- A P_IC,  P_CC unchanged.
    // This keeps per-sample propagation O(15^2 * d) instead of O(d^3),
    // as deployed MSCKF implementations do.
    const int d = stateDim();
    MatX a_imu = MatX::identity(15);
    const Mat3 exp_neg = Quat::exp(w * (-dt)).toRotationMatrix();
    a_imu.setFixedBlock<3, 3>(0, 0, exp_neg);
    a_imu.setFixedBlock<3, 3>(0, 3, Mat3::identity() * (-dt));
    a_imu.setFixedBlock<3, 3>(6, 0, r_wb * skew(a) * (-dt));
    a_imu.setFixedBlock<3, 3>(6, 9, r_wb * (-dt));
    a_imu.setFixedBlock<3, 3>(12, 6, Mat3::identity() * dt);

    // Discrete process noise (only on the 15 IMU-error states).
    MatX q = MatX(15, 15);
    const double qg = cfg_.gyro_sigma * cfg_.gyro_sigma * dt;
    const double qbg = cfg_.gyro_bias_sigma * cfg_.gyro_bias_sigma * dt;
    const double qa = cfg_.accel_sigma * cfg_.accel_sigma * dt;
    const double qba = cfg_.accel_bias_sigma * cfg_.accel_bias_sigma * dt;
    for (int i = 0; i < 3; ++i) {
        q(i, i) = qg;
        q(3 + i, 3 + i) = qbg;
        q(6 + i, 6 + i) = qa;
        q(9 + i, 9 + i) = qba;
        q(12 + i, 12 + i) = qa * dt * dt; // position noise via velocity
    }

    MatX p_ii = cov_.block(0, 0, 15, 15);
    cov_.setBlock(0, 0, a_imu * p_ii * a_imu.transpose() + q);
    if (d > 15) {
        MatX p_ic = cov_.block(0, 15, 15, d - 15);
        MatX new_ic = a_imu * p_ic;
        cov_.setBlock(0, 15, new_ic);
        cov_.setBlock(15, 0, new_ic.transpose());
    }
    cov_.makeSymmetric();

    // --- Nominal-state integration (midpoint on position).
    q_wb_ = q_wb_.integrated(w, dt);
    p_wb_ += v_ * dt + a_world * (0.5 * dt * dt);
    v_ += a_world * dt;
    t_ = s.t;
}

void
Msckf::propagate(const std::vector<ImuSample> &samples)
{
    timing_ = MsckfTiming{};
    StageTimer timer(timing_.imu_ms);
    for (const ImuSample &s : samples) {
        double dt = s.t - t_;
        // Guard against out-of-order or duplicate samples.
        if (dt > 0.0 && dt < 0.5)
            propagateOne(s, dt);
        else if (dt >= 0.5)
            t_ = s.t; // gap: re-anchor the clock, skip integration
    }
}

void
Msckf::augmentClone(long clone_id)
{
    const int d = stateDim();
    // J maps the current error state to the new clone's error:
    // theta_clone = theta, p_clone = p.
    MatX j(6, d);
    j.setFixedBlock<3, 3>(0, 0, Mat3::identity());
    j.setFixedBlock<3, 3>(3, 12, Mat3::identity());

    MatX jp = j * cov_;             // 6 x d
    MatX jpjt = multiplyTransposed(jp, j); // 6 x 6

    cov_.conservativeResize(d + 6, d + 6);
    cov_.setBlock(d, 0, jp);
    cov_.setBlock(0, d, jp.transpose());
    cov_.setBlock(d, d, jpjt);

    clones_.push_back({clone_id, q_wb_, p_wb_});
}

void
Msckf::marginalizeOldestClone()
{
    // The MSCKF never keeps feature states, so removing a clone is a
    // plain drop of its rows/columns from the covariance.
    const int d = stateDim();
    MatX next(d - 6, d - 6);
    auto keep = [](int i) { return i < 15 ? i : i + 6; };
    for (int i = 0; i < d - 6; ++i)
        for (int j = 0; j < d - 6; ++j)
            next(i, j) = cov_(keep(i), keep(j));
    cov_ = std::move(next);
    clones_.pop_front();
}

int
Msckf::cloneSlot(long clone_id) const
{
    for (int i = 0; i < static_cast<int>(clones_.size()); ++i)
        if (clones_[i].clone_id == clone_id)
            return i;
    return -1;
}

bool
Msckf::triangulateTrack(const FeatureTrack &track, Vec3 &x_world) const
{
    // Initialization: first observation with stereo depth.
    const TrackObservation *init_obs = nullptr;
    for (const TrackObservation &o : track.observations) {
        if (o.disparity > 0.5 && cloneSlot(o.clone_id) >= 0) {
            init_obs = &o;
            break;
        }
    }
    if (!init_obs)
        return false;
    int slot = cloneSlot(init_obs->clone_id);
    const CloneState &c0 = clones_[slot];
    auto p_cam = rig_.triangulate(init_obs->pixel, init_obs->disparity);
    if (!p_cam)
        return false;
    Pose world_from_cam0 =
        Pose(c0.q_wb, c0.p_wb) * rig_.body_from_camera;
    x_world = world_from_cam0.apply(*p_cam);

    // Gauss-Newton refinement over all windowed observations.
    for (int it = 0; it < cfg_.triangulation_iterations; ++it) {
        Mat3 jtj;
        Vec3 jtr;
        int used = 0;
        for (const TrackObservation &o : track.observations) {
            int s = cloneSlot(o.clone_id);
            if (s < 0)
                continue;
            const CloneState &c = clones_[s];
            Pose cam_from_world =
                (Pose(c.q_wb, c.p_wb) * rig_.body_from_camera).inverse();
            Vec3 p_c = cam_from_world.apply(x_world);
            auto px = rig_.cam.project(p_c);
            if (!px)
                continue;
            Vec2 r{(*px)[0] - o.pixel[0], (*px)[1] - o.pixel[1]};
            Mat23 jp = rig_.cam.projectJacobian(p_c);
            Mat23 j = jp * cam_from_world.rotation.toRotationMatrix();
            for (int a = 0; a < 3; ++a) {
                for (int b = 0; b < 3; ++b)
                    jtj(a, b) += j(0, a) * j(0, b) + j(1, a) * j(1, b);
                jtr[a] += j(0, a) * r[0] + j(1, a) * r[1];
            }
            ++used;
        }
        if (used < 2)
            break;
        for (int i = 0; i < 3; ++i)
            jtj(i, i) += 1e-6;
        if (std::abs(det(jtj)) < 1e-18)
            break;
        Vec3 dx = inverse(jtj) * jtr;
        x_world -= dx;
        if (dx.norm() < 1e-8)
            break;
    }

    // Sanity gate: mean reprojection error must be small and the point
    // in front of every observing camera.
    double err = 0.0;
    int used = 0;
    for (const TrackObservation &o : track.observations) {
        int s = cloneSlot(o.clone_id);
        if (s < 0)
            continue;
        const CloneState &c = clones_[s];
        Pose cam_from_world =
            (Pose(c.q_wb, c.p_wb) * rig_.body_from_camera).inverse();
        Vec3 p_c = cam_from_world.apply(x_world);
        if (p_c[2] < 0.2)
            return false;
        auto px = rig_.cam.project(p_c);
        if (!px)
            return false;
        err += Vec2{(*px)[0] - o.pixel[0], (*px)[1] - o.pixel[1]}.norm();
        ++used;
    }
    if (used < 2)
        return false;
    return err / used <= cfg_.max_reprojection_px;
}

int
Msckf::buildTrackBlock(const FeatureTrack &track, const Vec3 &x_world,
                       MatX &h_out, VecX &r_out, int row0) const
{
    const int d = stateDim();

    // Raw per-observation Jacobians.
    std::vector<int> slots;
    for (const TrackObservation &o : track.observations)
        if (cloneSlot(o.clone_id) >= 0)
            slots.push_back(cloneSlot(o.clone_id));
    const int m = static_cast<int>(slots.size());
    if (m < 2)
        return 0;

    MatX hx(2 * m, d);
    MatX hf(2 * m, 3);
    VecX r(2 * m);

    int row = 0;
    int obs_i = 0;
    for (const TrackObservation &o : track.observations) {
        int s = cloneSlot(o.clone_id);
        if (s < 0)
            continue;
        const CloneState &c = clones_[s];
        const Mat3 r_bw = c.q_wb.inverse().toRotationMatrix();
        const Mat3 r_cb =
            rig_.body_from_camera.rotation.inverse().toRotationMatrix();
        const Vec3 u = r_bw * (x_world - c.p_wb); // point in body frame
        const Vec3 p_c =
            r_cb * (u - rig_.body_from_camera.translation);
        auto px = rig_.cam.project(p_c);
        if (!px)
            return 0;
        Mat23 jp = rig_.cam.projectJacobian(p_c);
        // d p_c / d theta = R_cb [u]x ; d p_c / d p = -R_cb R_bw ;
        // d p_c / d x_world = +R_cb R_bw.
        Mat23 h_theta = jp * (r_cb * skew(u));
        Mat23 h_p = jp * (r_cb * r_bw * (-1.0));
        Mat23 h_x = jp * (r_cb * r_bw);

        const int col = 15 + 6 * s;
        for (int i = 0; i < 2; ++i) {
            for (int k = 0; k < 3; ++k) {
                hx(row + i, col + k) = h_theta(i, k);
                hx(row + i, col + 3 + k) = h_p(i, k);
                hf(row + i, k) = h_x(i, k);
            }
        }
        r[row] = o.pixel[0] - (*px)[0];
        r[row + 1] = o.pixel[1] - (*px)[1];
        row += 2;
        ++obs_i;
    }

    // Nullspace projection: multiply by the left nullspace of Hf, i.e.
    // the trailing rows of Q^T from the QR of Hf.
    HouseholderQR qr(hf);
    MatX qth = qr.qtb(hx);
    VecX qtr = qr.qtb(r);
    const int out_rows = 2 * m - 3;
    for (int i = 0; i < out_rows; ++i) {
        for (int j = 0; j < d; ++j)
            h_out(row0 + i, j) = qth(3 + i, j);
        r_out[row0 + i] = qtr[3 + i];
    }
    return out_rows;
}

long
Msckf::update(const std::vector<FeatureTrack> &finished_tracks,
              long clone_id)
{
    assert(initialized_);
    workload_ = MsckfWorkload{};
    // Reset the update-side timings (imu_ms belongs to propagate());
    // the stage timers below accumulate into these sinks.
    timing_.cov_ms = timing_.jacobian_ms = timing_.qr_ms = 0.0;
    timing_.kalman_gain_ms = timing_.update_ms = 0.0;

    // --- Covariance augmentation for the new camera clone.
    {
        StageTimer timer(timing_.cov_ms);
        augmentClone(clone_id);
    }

    // --- Build stacked residuals for usable tracks.
    StageTimer jacobian_timer(timing_.jacobian_ms);
    std::vector<const FeatureTrack *> usable;
    std::vector<Vec3> points;
    int total_rows = 0;
    for (const FeatureTrack &track : finished_tracks) {
        int in_window = 0;
        for (const TrackObservation &o : track.observations)
            if (cloneSlot(o.clone_id) >= 0)
                ++in_window;
        if (in_window < cfg_.min_track_length)
            continue;
        Vec3 x;
        if (!triangulateTrack(track, x))
            continue;
        usable.push_back(&track);
        points.push_back(x);
        total_rows += 2 * in_window - 3;
    }

    const int d = stateDim();
    MatX h(std::max(total_rows, 1), d);
    VecX r(std::max(total_rows, 1));
    int row = 0;
    for (size_t i = 0; i < usable.size(); ++i)
        row += buildTrackBlock(*usable[i], points[i], h, r, row);
    jacobian_timer.stop();
    workload_.tracks_used = static_cast<int>(usable.size());
    workload_.stacked_rows = row;
    workload_.state_dim = d;

    if (row == 0) {
        // Nothing to update; still manage the window size.
        while (static_cast<int>(clones_.size()) > cfg_.max_clones)
            marginalizeOldestClone();
        return clones_.front().clone_id;
    }
    h.conservativeResize(row, d);
    VecX r_used(row);
    for (int i = 0; i < row; ++i)
        r_used[i] = r[i];

    // --- QR compression when the stack is taller than the state.
    StageTimer qr_timer(timing_.qr_ms);
    MatX h_used = std::move(h);
    if (row > d) {
        HouseholderQR qr(h_used);
        VecX qtb = qr.qtb(r_used);
        h_used = qr.matrixR(); // d x d upper-triangular
        VecX r_new(d);
        for (int i = 0; i < d; ++i)
            r_new[i] = qtb[i];
        r_used = std::move(r_new);
    }
    qr_timer.stop();
    const int rows = h_used.rows();

    // --- Kalman gain: S = H P H^T + R ; solve S K^T = H P.
    StageTimer kalman_gain_timer(timing_.kalman_gain_ms);
    MatX ph_t = multiplyTransposed(cov_, h_used); // d x rows (P sym.)
    MatX s = h_used * ph_t;                       // rows x rows
    const double r_var = cfg_.pixel_sigma * cfg_.pixel_sigma;
    for (int i = 0; i < rows; ++i)
        s(i, i) += r_var;
    s.makeSymmetric();
    Cholesky chol(s);
    MatX k_t; // rows x d, K = k_t^T
    if (chol.ok()) {
        k_t = chol.solve(ph_t.transpose());
    } else {
        PartialPivLU lu(s);
        if (!lu.ok()) {
            while (static_cast<int>(clones_.size()) > cfg_.max_clones)
                marginalizeOldestClone();
            return clones_.front().clone_id;
        }
        k_t = lu.solve(ph_t.transpose());
    }
    kalman_gain_timer.stop();

    // --- State/covariance injection.
    StageTimer update_timer(timing_.update_ms);
    VecX dx(d);
    for (int i = 0; i < d; ++i) {
        double acc = 0.0;
        for (int j = 0; j < rows; ++j)
            acc += k_t(j, i) * r_used[j];
        dx[i] = acc;
    }

    q_wb_ = (q_wb_ * Quat::exp(dx.fixedSegment<3>(0))).normalized();
    bg_ += dx.fixedSegment<3>(3);
    v_ += dx.fixedSegment<3>(6);
    ba_ += dx.fixedSegment<3>(9);
    p_wb_ += dx.fixedSegment<3>(12);
    for (int c = 0; c < static_cast<int>(clones_.size()); ++c) {
        clones_[c].q_wb =
            (clones_[c].q_wb * Quat::exp(dx.fixedSegment<3>(15 + 6 * c)))
                .normalized();
        clones_[c].p_wb += dx.fixedSegment<3>(15 + 6 * c + 3);
    }

    // P <- P - P H^T K^T  == P - ph_t * k_t.
    cov_ -= ph_t * k_t;
    cov_.makeSymmetric();
    // Numerical floor to keep the covariance positive.
    for (int i = 0; i < d; ++i)
        cov_(i, i) = std::max(cov_(i, i), 1e-12);
    update_timer.stop();

    // --- Window management.
    while (static_cast<int>(clones_.size()) > cfg_.max_clones)
        marginalizeOldestClone();
    return clones_.front().clone_id;
}

Pose
Msckf::pose() const
{
    return Pose(q_wb_, p_wb_);
}

} // namespace edx
