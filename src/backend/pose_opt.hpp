/**
 * @file
 * Pose-only nonlinear least squares ("PoseOpt" stage of the registration
 * backend, Fig. 6).
 *
 * Given 3-D map points matched to 2-D key points, refine the 6 DoF body
 * pose by Levenberg-Marquardt on the reprojection error with a Huber
 * robust weight. The rotation is parameterized multiplicatively on the
 * right (body-frame perturbation).
 */
#pragma once

#include <vector>

#include "math/se3.hpp"
#include "sensors/camera.hpp"

namespace edx {

/** One 3-D to 2-D correspondence for pose optimization. */
struct PoseObservation
{
    Vec3 point_world;
    Vec2 pixel;
};

/** LM settings for pose optimization. */
struct PoseOptConfig
{
    int max_iterations = 10;
    double huber_delta_px = 3.0;
    double initial_lambda = 1e-3;
    double convergence_dx = 1e-6;
    double inlier_threshold_px = 4.0; //!< for the final inlier count
};

/** Result of a pose optimization. */
struct PoseOptResult
{
    Pose pose;
    bool converged = false;
    int iterations = 0;
    int inliers = 0;
    double final_rms_px = 0.0;
};

/**
 * Optimizes the world-from-body pose against @p obs.
 *
 * @param initial initial pose estimate
 * @param obs 3D-2D correspondences
 * @param cam camera intrinsics
 * @param body_from_camera rig extrinsics
 * @param cfg solver settings
 */
PoseOptResult optimizePose(const Pose &initial,
                           const std::vector<PoseObservation> &obs,
                           const CameraIntrinsics &cam,
                           const Pose &body_from_camera,
                           const PoseOptConfig &cfg = {});

} // namespace edx
