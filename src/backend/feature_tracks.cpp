#include "backend/feature_tracks.hpp"

#include <algorithm>
#include <cmath>

namespace edx {

std::vector<FeatureTrack>
FeatureTrackManager::ingest(const FrontendOutput &frame, long clone_id)
{
    std::vector<FeatureTrack> finished;

    // Disparity lookup for the current key points.
    std::unordered_map<int, double> disparity_of;
    for (const StereoMatch &s : frame.stereo)
        disparity_of[s.left_index] = s.disparity;

    // 1. Continue tracks through temporal matches. A track continues
    //    when the LK-tracked position lies within the continuation
    //    radius of a detected key point (so the next frame's temporal
    //    matches, which track detected key points, can pick it up).
    std::unordered_map<int, int> next_kp_to_track;
    std::vector<bool> continued(live_.size(), false);
    std::vector<bool> kp_taken(frame.keypoints.size(), false);

    for (const TemporalMatch &tm : frame.temporal) {
        auto it = kp_to_track_.find(tm.prev_index);
        if (it == kp_to_track_.end())
            continue;
        int slot = it->second;
        FeatureTrack &track = live_[slot];

        // Find the nearest current key point to the tracked position.
        int best_kp = -1;
        double best_d2 = cfg_.continuation_radius_px *
                         cfg_.continuation_radius_px;
        for (int k = 0; k < static_cast<int>(frame.keypoints.size());
             ++k) {
            if (kp_taken[k])
                continue;
            double dx = frame.keypoints[k].x - tm.x;
            double dy = frame.keypoints[k].y - tm.y;
            double d2 = dx * dx + dy * dy;
            if (d2 < best_d2) {
                best_d2 = d2;
                best_kp = k;
            }
        }

        TrackObservation obs;
        obs.clone_id = clone_id;
        if (best_kp >= 0) {
            kp_taken[best_kp] = true;
            obs.pixel = Vec2{frame.keypoints[best_kp].x,
                             frame.keypoints[best_kp].y};
            auto d = disparity_of.find(best_kp);
            obs.disparity =
                (d != disparity_of.end()) ? d->second : -1.0;
            track.observations.push_back(obs);
            if (static_cast<int>(track.observations.size()) <
                cfg_.max_track_length) {
                next_kp_to_track[best_kp] = slot;
                continued[slot] = true;
                continue;
            }
            // Track hit the window limit: finish it now.
        } else {
            // Tracked position does not coincide with a detection: use
            // the raw LK position as the final observation.
            obs.pixel = Vec2{tm.x, tm.y};
            track.observations.push_back(obs);
        }
        // Not continued: falls through to the finished set below.
    }

    // 2. Collect finished tracks and compact the live set.
    std::vector<FeatureTrack> still_live;
    std::vector<int> slot_remap(live_.size(), -1);
    for (size_t s = 0; s < live_.size(); ++s) {
        if (continued[s]) {
            slot_remap[s] = static_cast<int>(still_live.size());
            still_live.push_back(std::move(live_[s]));
        } else {
            if (live_[s].observations.size() >= 2)
                finished.push_back(std::move(live_[s]));
        }
    }
    live_ = std::move(still_live);
    kp_to_track_.clear();
    for (const auto &[kp, slot] : next_kp_to_track)
        kp_to_track_[kp] = slot_remap[slot];

    // 3. Start new tracks from unclaimed key points that have stereo
    //    depth (depth makes them immediately triangulable).
    for (const StereoMatch &s : frame.stereo) {
        int k = s.left_index;
        if (k < 0 || k >= static_cast<int>(kp_taken.size()) ||
            kp_taken[k])
            continue;
        FeatureTrack track;
        track.id = next_track_id_++;
        TrackObservation obs;
        obs.clone_id = clone_id;
        obs.pixel = Vec2{frame.keypoints[k].x, frame.keypoints[k].y};
        obs.disparity = s.disparity;
        track.observations.push_back(obs);
        kp_to_track_[k] = static_cast<int>(live_.size());
        live_.push_back(std::move(track));
    }

    return finished;
}

void
FeatureTrackManager::dropObservationsBefore(long min_clone_id)
{
    for (FeatureTrack &t : live_) {
        t.observations.erase(
            std::remove_if(t.observations.begin(), t.observations.end(),
                           [min_clone_id](const TrackObservation &o) {
                               return o.clone_id < min_clone_id;
                           }),
            t.observations.end());
    }
}

void
FeatureTrackManager::reset()
{
    live_.clear();
    kp_to_track_.clear();
}

} // namespace edx
