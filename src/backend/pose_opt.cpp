#include "backend/pose_opt.hpp"

#include <cmath>

#include "math/decomp.hpp"

namespace edx {

namespace {

/** Accumulated normal equations and cost for one linearization. */
struct Linearization
{
    MatX jtj{6, 6};
    VecX jtr{6};
    double cost = 0.0;
    int valid = 0;
};

/**
 * Linearizes all observations at @p pose. Residual r = proj(p_c) - z,
 * body-frame right perturbation (dtheta, dt):
 *   dp_b/dtheta = [p_b]x,  dp_b/dt = -I,  p_c = R_cb p_b + t_cb.
 */
Linearization
linearize(const Pose &pose, const std::vector<PoseObservation> &obs,
          const CameraIntrinsics &cam, const Pose &camera_from_body,
          double huber)
{
    Linearization lin;
    const Mat3 r_cb = camera_from_body.rotation.toRotationMatrix();
    Pose body_from_world = pose.inverse();

    for (const PoseObservation &o : obs) {
        Vec3 p_b = body_from_world.apply(o.point_world);
        Vec3 p_c = camera_from_body.apply(p_b);
        auto px = cam.project(p_c);
        if (!px)
            continue;
        Vec2 r{(*px)[0] - o.pixel[0], (*px)[1] - o.pixel[1]};
        double rn = r.norm();

        // Huber: quadratic near zero, linear in the tails.
        double w = (rn <= huber) ? 1.0 : huber / rn;
        lin.cost += (rn <= huber)
                        ? 0.5 * rn * rn
                        : huber * (rn - 0.5 * huber);

        Mat23 jproj = cam.projectJacobian(p_c);
        Mat3 dp_dtheta = r_cb * skew(p_b);
        Mat3 dp_dt = r_cb * (-1.0);
        Mat26 j;
        Mat23 ja = jproj * dp_dtheta;
        Mat23 jb = jproj * dp_dt;
        for (int i = 0; i < 2; ++i)
            for (int k = 0; k < 3; ++k) {
                j(i, k) = ja(i, k);
                j(i, k + 3) = jb(i, k);
            }

        for (int a = 0; a < 6; ++a) {
            for (int b = a; b < 6; ++b) {
                double v = w * (j(0, a) * j(0, b) + j(1, a) * j(1, b));
                lin.jtj(a, b) += v;
                if (a != b)
                    lin.jtj(b, a) += v;
            }
            lin.jtr[a] += w * (j(0, a) * r[0] + j(1, a) * r[1]);
        }
        ++lin.valid;
    }
    return lin;
}

/** Applies the body-frame right perturbation to a pose. */
Pose
applyDelta(const Pose &pose, const VecX &dx)
{
    Vec3 dtheta{dx[0], dx[1], dx[2]};
    Vec3 dt{dx[3], dx[4], dx[5]};
    Pose out;
    out.rotation = (pose.rotation * Quat::exp(dtheta)).normalized();
    out.translation = pose.translation + pose.rotation.rotate(dt);
    return out;
}

double
evaluateCost(const Pose &pose, const std::vector<PoseObservation> &obs,
             const CameraIntrinsics &cam, const Pose &camera_from_body,
             double huber)
{
    double cost = 0.0;
    Pose body_from_world = pose.inverse();
    for (const PoseObservation &o : obs) {
        Vec3 p_c = camera_from_body.apply(body_from_world.apply(o.point_world));
        auto px = cam.project(p_c);
        if (!px) {
            cost += huber * huber; // behind-camera penalty
            continue;
        }
        double rn =
            Vec2{(*px)[0] - o.pixel[0], (*px)[1] - o.pixel[1]}.norm();
        cost += (rn <= huber) ? 0.5 * rn * rn : huber * (rn - 0.5 * huber);
    }
    return cost;
}

} // namespace

PoseOptResult
optimizePose(const Pose &initial, const std::vector<PoseObservation> &obs,
             const CameraIntrinsics &cam, const Pose &body_from_camera,
             const PoseOptConfig &cfg)
{
    PoseOptResult res;
    res.pose = initial;
    if (obs.size() < 3)
        return res;

    const Pose camera_from_body = body_from_camera.inverse();
    double lambda = cfg.initial_lambda;

    for (int it = 0; it < cfg.max_iterations; ++it) {
        ++res.iterations;
        Linearization lin = linearize(res.pose, obs, cam, camera_from_body,
                                      cfg.huber_delta_px);
        if (lin.valid < 3)
            return res;

        // Levenberg damping on the diagonal; retry with larger lambda on
        // a rejected step.
        bool stepped = false;
        for (int tries = 0; tries < 6 && !stepped; ++tries) {
            MatX a = lin.jtj;
            for (int i = 0; i < 6; ++i)
                a(i, i) *= (1.0 + lambda);
            auto dx = solveSpd(a, lin.jtr * -1.0);
            if (!dx) {
                lambda *= 10.0;
                continue;
            }
            Pose cand = applyDelta(res.pose, *dx);
            double cand_cost = evaluateCost(cand, obs, cam,
                                            camera_from_body,
                                            cfg.huber_delta_px);
            if (cand_cost < lin.cost) {
                res.pose = cand;
                lambda = std::max(1e-9, lambda * 0.3);
                stepped = true;
                if (dx->norm() < cfg.convergence_dx) {
                    res.converged = true;
                    it = cfg.max_iterations; // outer break
                }
            } else {
                lambda *= 10.0;
            }
        }
        if (!stepped)
            break;
    }

    // Final statistics.
    Pose body_from_world = res.pose.inverse();
    double sq = 0.0;
    int n = 0;
    for (const PoseObservation &o : obs) {
        Vec3 p_c = camera_from_body.apply(body_from_world.apply(o.point_world));
        auto px = cam.project(p_c);
        if (!px)
            continue;
        double rn =
            Vec2{(*px)[0] - o.pixel[0], (*px)[1] - o.pixel[1]}.norm();
        sq += rn * rn;
        ++n;
        if (rn <= cfg.inlier_threshold_px)
            ++res.inliers;
    }
    res.final_rms_px = n ? std::sqrt(sq / n) : 0.0;
    if (res.iterations > 0 && res.inliers >= 3)
        res.converged = true;
    return res;
}

} // namespace edx
