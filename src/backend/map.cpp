#include "backend/map.hpp"

#include <atomic>
#include <cstdio>

namespace edx {

uint64_t
Map::nextUid()
{
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

int
Map::addPoint(const MapPoint &p)
{
    points_.push_back(p);
    return static_cast<int>(points_.size()) - 1;
}

int
Map::addKeyframe(Keyframe kf)
{
    kf.id = static_cast<int>(keyframes_.size());
    keyframes_.push_back(std::move(kf));
    return keyframes_.back().id;
}

std::optional<PlaceMatch>
Map::queryPlace(const BowVector &bow, int max_id) const
{
    PlaceMatch best;
    for (const Keyframe &kf : keyframes_) {
        if (max_id >= 0 && kf.id > max_id)
            continue;
        double s = Vocabulary::similarity(bow, kf.bow);
        if (s > best.score) {
            best.score = s;
            best.keyframe_id = kf.id;
        }
    }
    if (best.keyframe_id < 0)
        return std::nullopt;
    return best;
}

namespace {

/** Minimal checked binary I/O helpers. */
template <typename T>
bool
writePod(std::FILE *f, const T &v)
{
    return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool
readPod(std::FILE *f, T &v)
{
    return std::fread(&v, sizeof(T), 1, f) == 1;
}

constexpr uint32_t kMagic = 0xedc5a90fu;

bool
writePose(std::FILE *f, const Pose &p)
{
    double vals[7] = {p.rotation.w(), p.rotation.x(), p.rotation.y(),
                      p.rotation.z(), p.translation[0], p.translation[1],
                      p.translation[2]};
    return std::fwrite(vals, sizeof(double), 7, f) == 7;
}

bool
readPose(std::FILE *f, Pose &p)
{
    double vals[7];
    if (std::fread(vals, sizeof(double), 7, f) != 7)
        return false;
    p.rotation = Quat(vals[0], vals[1], vals[2], vals[3]).normalized();
    p.translation = Vec3{vals[4], vals[5], vals[6]};
    return true;
}

} // namespace

bool
Map::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = writePod(f, kMagic);
    ok = ok && writePod(f, static_cast<uint32_t>(points_.size()));
    for (const MapPoint &p : points_) {
        double pos[3] = {p.position[0], p.position[1], p.position[2]};
        ok = ok && std::fwrite(pos, sizeof(double), 3, f) == 3;
        ok = ok && writePod(f, p.descriptor);
        ok = ok && writePod(f, p.observations);
    }
    ok = ok && writePod(f, static_cast<uint32_t>(keyframes_.size()));
    for (const Keyframe &kf : keyframes_) {
        ok = ok && writePod(f, kf.id) && writePose(f, kf.pose);
        uint32_t n = static_cast<uint32_t>(kf.keypoints.size());
        ok = ok && writePod(f, n);
        for (uint32_t i = 0; i < n; ++i) {
            ok = ok && writePod(f, kf.keypoints[i]);
            ok = ok && writePod(f, kf.descriptors[i]);
            ok = ok && writePod(f, kf.map_point_ids[i]);
        }
        uint32_t bw = static_cast<uint32_t>(kf.bow.size());
        ok = ok && writePod(f, bw);
        for (const auto &[w, v] : kf.bow) {
            ok = ok && writePod(f, w) && writePod(f, v);
        }
    }
    std::fclose(f);
    return ok;
}

std::optional<Map>
Map::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    auto fail = [&]() {
        std::fclose(f);
        return std::nullopt;
    };

    uint32_t magic = 0;
    if (!readPod(f, magic) || magic != kMagic)
        return fail();

    Map m;
    uint32_t np = 0;
    if (!readPod(f, np))
        return fail();
    m.points_.resize(np);
    for (uint32_t i = 0; i < np; ++i) {
        double pos[3];
        if (std::fread(pos, sizeof(double), 3, f) != 3)
            return fail();
        m.points_[i].position = Vec3{pos[0], pos[1], pos[2]};
        if (!readPod(f, m.points_[i].descriptor) ||
            !readPod(f, m.points_[i].observations))
            return fail();
    }

    uint32_t nk = 0;
    if (!readPod(f, nk))
        return fail();
    m.keyframes_.resize(nk);
    for (uint32_t i = 0; i < nk; ++i) {
        Keyframe &kf = m.keyframes_[i];
        if (!readPod(f, kf.id) || !readPose(f, kf.pose))
            return fail();
        uint32_t n = 0;
        if (!readPod(f, n))
            return fail();
        kf.keypoints.resize(n);
        kf.descriptors.resize(n);
        kf.map_point_ids.resize(n);
        for (uint32_t j = 0; j < n; ++j) {
            if (!readPod(f, kf.keypoints[j]) ||
                !readPod(f, kf.descriptors[j]) ||
                !readPod(f, kf.map_point_ids[j]))
                return fail();
        }
        uint32_t bw = 0;
        if (!readPod(f, bw))
            return fail();
        for (uint32_t j = 0; j < bw; ++j) {
            int w;
            double v;
            if (!readPod(f, w) || !readPod(f, v))
                return fail();
            kf.bow[w] = v;
        }
    }
    std::fclose(f);
    return m;
}

} // namespace edx
