#include "backend/map.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "map/map_io.hpp"

namespace edx {

uint64_t
Map::nextUid()
{
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

int
Map::addPoint(const MapPoint &p)
{
    points_.push_back(p);
    return static_cast<int>(points_.size()) - 1;
}

int
Map::addKeyframe(Keyframe kf)
{
    kf.id = static_cast<int>(keyframes_.size());
    keyframes_.push_back(std::move(kf));
    return keyframes_.back().id;
}

std::optional<PlaceMatch>
Map::queryPlace(const BowVector &bow, int max_id) const
{
    PlaceMatch best;
    for (const Keyframe &kf : keyframes_) {
        if (max_id >= 0 && kf.id > max_id)
            continue;
        double s = Vocabulary::similarity(bow, kf.bow);
        if (s > best.score) {
            best.score = s;
            best.keyframe_id = kf.id;
        }
    }
    if (best.keyframe_id < 0)
        return std::nullopt;
    return best;
}

uint64_t
Map::tileKeyOf(const Vec3 &position, double tile_size_m)
{
    const auto ix =
        static_cast<int32_t>(std::floor(position[0] / tile_size_m));
    const auto iy =
        static_cast<int32_t>(std::floor(position[1] / tile_size_m));
    return (static_cast<uint64_t>(static_cast<uint32_t>(ix)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(iy));
}

void
Map::buildTileIndex(double tile_size_m)
{
    tiles_.clear();
    if (tile_size_m <= 0.0) {
        tile_size_m_ = 0.0;
        return;
    }
    tile_size_m_ = tile_size_m;
    for (int i = 0; i < static_cast<int>(points_.size()); ++i)
        tiles_[tileKeyOf(points_[i].position, tile_size_m_)]
            .points.push_back(i);
    for (int i = 0; i < static_cast<int>(keyframes_.size()); ++i)
        tiles_[tileKeyOf(keyframes_[i].pose.translation, tile_size_m_)]
            .keyframes.push_back(i);
}

MapEvictionResult
Map::evictToBudget(const MapBudget &budget)
{
    MapEvictionResult res;
    const int nk = static_cast<int>(keyframes_.size());
    const int np = static_cast<int>(points_.size());
    const bool drop_kfs =
        budget.max_keyframes > 0 && nk > budget.max_keyframes;
    bool drop_pts = budget.max_points > 0 && np > budget.max_points;
    if (!drop_kfs && !drop_pts)
        return res;

    if (drop_kfs) {
        const int excess = nk - budget.max_keyframes;
        res.keyframes_evicted = excess;
        res.keyframe_remap.assign(nk, -1);
        std::vector<Keyframe> kept;
        kept.reserve(budget.max_keyframes);
        for (int i = excess; i < nk; ++i) {
            res.keyframe_remap[i] = static_cast<int>(kept.size());
            kept.push_back(std::move(keyframes_[i]));
            kept.back().id = res.keyframe_remap[i];
        }
        keyframes_ = std::move(kept);

        // The observation counts drive the landmark eviction order, so
        // refresh them to count only the surviving database.
        for (MapPoint &p : points_)
            p.observations = 0;
        for (const Keyframe &kf : keyframes_)
            for (int lm : kf.map_point_ids)
                if (lm >= 0)
                    ++points_[lm].observations;
    }

    if (drop_pts) {
        const int excess = np - budget.max_points;
        std::vector<int> order(np);
        for (int i = 0; i < np; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            if (points_[a].observations != points_[b].observations)
                return points_[a].observations < points_[b].observations;
            return a < b;
        });
        std::vector<char> evict(np, 0);
        for (int i = 0; i < excess; ++i)
            evict[order[i]] = 1;

        res.points_evicted = excess;
        res.point_remap.assign(np, -1);
        std::vector<MapPoint> kept;
        kept.reserve(budget.max_points);
        for (int i = 0; i < np; ++i) {
            if (evict[i])
                continue;
            res.point_remap[i] = static_cast<int>(kept.size());
            kept.push_back(points_[i]);
        }
        points_ = std::move(kept);
    }

    if (!res.point_remap.empty())
        for (Keyframe &kf : keyframes_)
            for (int &lm : kf.map_point_ids)
                if (lm >= 0)
                    lm = res.point_remap[lm];

    if (tile_size_m_ > 0.0)
        buildTileIndex(tile_size_m_);
    return res;
}

bool
Map::save(const std::string &path) const
{
    return saveMap(*this, path);
}

std::optional<Map>
Map::load(const std::string &path)
{
    MapLoadResult r = loadMap(path);
    if (!r.map)
        return std::nullopt;
    return std::move(*r.map);
}

} // namespace edx
