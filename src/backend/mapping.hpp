/**
 * @file
 * The mapping block of the SLAM mode (Fig. 4).
 *
 * Keyframe-based visual SLAM: the mapper maintains a sliding window of
 * keyframes plus the landmarks they observe, and on every keyframe
 * insertion
 *
 *  1. associates current features to window landmarks and triangulates
 *     new stereo landmarks ("Others" in the Fig. 8 breakdown),
 *  2. runs a Levenberg-Marquardt local bundle adjustment over window
 *     poses and landmarks ("Solver"), solved through the Schur
 *     complement on the landmark block,
 *  3. when the window is full, marginalizes the oldest keyframe: the
 *     eliminated system has exactly the [A B; C D] structure of
 *     Sec. VI-A with A block-diagonal (landmarks) and D the 6x6 pose
 *     block ("Marginalization") - the kernel the backend accelerator
 *     targets - and the resulting prior is retained on the window,
 *  4. detects loop closures through the BoW database and applies the
 *     relocalization correction, bounding drift like full SLAM systems.
 *
 * The continuously updated Map doubles as the registration-mode input
 * after persistence (the "Persist Map" path of Fig. 4).
 */
#pragma once

#include <optional>
#include <unordered_map>

#include "backend/map.hpp"
#include "backend/pose_opt.hpp"
#include "backend/vocabulary.hpp"
#include "frontend/frontend.hpp"
#include "math/matx.hpp"
#include "sensors/camera.hpp"

namespace edx {

class SolveHub;

/** Mapper settings. */
struct MappingConfig
{
    int keyframe_interval = 3;   //!< insert a keyframe every N frames
    int window_size = 12;        //!< keyframes kept in the local BA
    int lm_iterations = 10;
    double huber_px = 3.0;
    double pixel_sigma = 1.5;
    double match_radius_px = 18.0;
    int min_obs_for_ba = 2;
    double loop_min_score = 0.04;
    int loop_min_gap = 25;       //!< keyframes between loop candidates
    int loop_min_matches = 15;

    /**
     * Routes the local-BA Schur complement and marginalization through
     * the retained scalar reference kernels and the pre-overhaul dense
     * Hpl flow (the "before" baseline of the backend figure benches).
     */
    bool use_reference = false;
};

/** Wall-clock latency of the SLAM kernels, ms (Fig. 8 categories). */
struct MappingTiming
{
    double solver_ms = 0.0;
    double marginalization_ms = 0.0;
    double others_ms = 0.0; //!< association, triangulation, prior apply

    /**
     * Loop detection + correction. Reported separately from others_ms
     * because it belongs to the *finish* sub-stage (marginalization +
     * loop) of the split backend, while the rest of "others" runs in
     * the solve sub-stage; the placement planner needs the two apart.
     */
    double loop_ms = 0.0;

    double total() const
    {
        return solver_ms + marginalization_ms + others_ms + loop_ms;
    }
};

/** Workload sizes (scheduler / accelerator inputs). */
struct MappingWorkload
{
    int window_keyframes = 0;
    int window_landmarks = 0;
    int residual_count = 0;
    int marginalized_landmarks = 0; //!< size of the diagonal A block /3
};

/** Mapper output for one frame. */
struct MappingResult
{
    Pose pose;                //!< (possibly loop-corrected) pose
    bool keyframe_added = false;
    bool loop_closed = false;
    MappingTiming timing;
    MappingWorkload workload;
};

/** The SLAM mapper. */
class Mapper
{
  public:
    Mapper(const StereoRig &rig, const Vocabulary *vocabulary,
           const MappingConfig &cfg = {});

    /**
     * Processes one frame given the tracking pose estimate:
     * applyPendingFinish() + processFrameSolve() + computeFinish().
     * Inserts keyframes on the configured cadence, maintains the map,
     * runs the local BA, and computes marginalization and loop closure
     * for the frame — whose *structural effects* (window pop, prior
     * installation, loop correction) are deferred to the next frame's
     * applyPendingFinish(), identically in every pipeline topology.
     */
    MappingResult processFrame(const FrontendOutput &frame,
                               const Pose &pose_estimate);

    // --- split sub-stage API (solve | marginalization+loop) ----------
    //
    // The staged runtime runs the solve part of frame N+1 concurrently
    // with the finish part of frame N. That is sound because the finish
    // part is *read-only* on the map/window/observations: it computes
    // the marginalization prior and detects a loop closure, and hands
    // both back as a pending record. The next frame's solve applies the
    // pending record (cheap structural mutations) after its tracking
    // step — the only synchronization point between the two stages.

    /**
     * Applies the pending finish record of the previous frame: pops the
     * marginalized keyframe from the window, installs the computed
     * prior, and applies a detected loop correction to the window.
     * @return the loop correction transform when one was applied (the
     *         caller must fold it into its pose history and any
     *         in-flight pose estimate).
     */
    std::optional<Pose> applyPendingFinish(MappingTiming &timing);

    /**
     * Solve sub-stage: keyframe insertion + local BA. Call after
     * applyPendingFinish(). Mutates the map; must not overlap a
     * computeFinish() of this mapper.
     */
    MappingResult processFrameSolve(const FrontendOutput &frame,
                                    const Pose &pose_estimate);

    /**
     * Finish sub-stage: computes the marginalization of the oldest
     * window keyframe (when the window overflowed) and runs loop
     * detection for the keyframe inserted by the matching
     * processFrameSolve(). Read-only on the shared map state; results
     * land in the pending record consumed by the next
     * applyPendingFinish(). Stamps timing/workload and the loop_closed
     * flag into @p res.
     */
    void computeFinish(MappingResult &res);

    const Map &map() const { return map_; }
    Map &map() { return map_; }

    int keyframesInserted() const { return frames_as_keyframes_; }
    int loopClosures() const { return loop_closures_; }

    /**
     * Routes the marginalization solve through a cross-session
     * batching hub (bit-identical to the direct path; null = direct).
     */
    void setSolveHub(SolveHub *hub) { hub_ = hub; }

    /**
     * Enables the keyframe retirement log for the shared-map service:
     * applyPendingFinish() then records each keyframe it pops from the
     * window (its pose is final — no further local BA touches it), and
     * the localizer drains the log into a MapContribution. Off by
     * default so detached sessions pay nothing.
     */
    void setRetireLog(bool enabled) { retire_log_ = enabled; }

    /** Moves the retired-keyframe ids out of the log (oldest first). */
    std::vector<int>
    drainRetiredKeyframes()
    {
        std::vector<int> out;
        out.swap(retired_);
        return out;
    }

  private:
    struct LandmarkObs
    {
        int keyframe_id;
        int keypoint_index;
    };

    /** Associates + triangulates; returns the new keyframe id. */
    int insertKeyframe(const FrontendOutput &frame, const Pose &pose);

    /** Local BA over the window; updates map poses/points in place. */
    void localBundleAdjustment(MappingTiming &timing,
                               MappingWorkload &workload);

    /**
     * Computes the marginalization of the oldest window keyframe
     * (Schur complement) into the pending record. Read-only on the
     * map; the structural pop/prior installation happens at
     * applyPendingFinish().
     */
    void computeMarginalization(MappingTiming &timing,
                                MappingWorkload &workload);

    /**
     * Loop detection for @p new_kf_id (read-only): on a hit, stores
     * the correction transform in the pending record and returns true.
     * The correction is applied at the next applyPendingFinish().
     */
    bool detectLoopClosure(int new_kf_id, MappingTiming &timing);

    /**
     * Deferred finish record: computed by computeFinish() of frame N,
     * applied by applyPendingFinish() of frame N+1.
     */
    struct PendingFinish
    {
        bool marg = false;        //!< a marginalization was computed
        bool marg_solved = false; //!< its 6x6 core solve succeeded
        int old_kf = -1;          //!< keyframe to pop from the window
        int prior_kf = -1;
        MatX prior_h{6, 6};
        VecX prior_b{6};
        bool loop = false;        //!< a loop correction awaits
        Pose correction;
    };

    StereoRig rig_;
    const Vocabulary *voc_;
    MappingConfig cfg_;
    SolveHub *hub_ = nullptr;

    Map map_;
    std::vector<int> window_; //!< keyframe ids, oldest first
    std::unordered_map<int, std::vector<LandmarkObs>> observations_;

    // Marginalization prior on the oldest remaining window pose.
    std::optional<int> prior_kf_ = std::nullopt;
    MatX prior_h_{6, 6};
    VecX prior_b_{6};

    PendingFinish pending_;
    int finish_kf_ = -1; //!< keyframe the next computeFinish() serves

    // Shared-map contribution log (setRetireLog).
    bool retire_log_ = false;
    std::vector<int> retired_;

    int frame_counter_ = 0;
    int frames_as_keyframes_ = 0;
    int loop_closures_ = 0;
};

} // namespace edx
