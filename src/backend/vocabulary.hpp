/**
 * @file
 * Bag of binary words for place recognition (Galvez-Lopez & Tardos,
 * 2012 — the DBoW2 approach the paper's registration/tracking block is
 * built on).
 *
 * A vocabulary is a hierarchical k-medians tree over ORB descriptors:
 * each node holds a binary centroid (bitwise majority of its cluster)
 * and descriptors descend the tree by Hamming distance until a leaf
 * (visual word) is reached. Images become sparse, L1-normalized word
 * histograms compared with the standard DBoW2 L1 score.
 */
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "features/keypoint.hpp"

namespace edx {

/** Sparse L1-normalized visual-word histogram. */
using BowVector = std::map<int, double>;

/** Vocabulary training parameters. */
struct VocabularyConfig
{
    int branching = 8;  //!< k of the k-medians tree
    int levels = 3;     //!< tree depth (word count <= k^levels)
    int kmeans_iterations = 6;
    uint64_t seed = 9;
};

/** A trained hierarchical binary vocabulary. */
class Vocabulary
{
  public:
    Vocabulary() = default;

    /** Trains a vocabulary on a corpus of descriptors. */
    static Vocabulary train(const std::vector<Descriptor> &corpus,
                            const VocabularyConfig &cfg = {});

    /** @return true when the vocabulary has been trained. */
    bool trained() const { return !nodes_.empty(); }

    /** Number of leaf words. */
    int wordCount() const { return word_count_; }

    /** Leaf word id of one descriptor (-1 if untrained). */
    int wordId(const Descriptor &d) const;

    /** Converts a descriptor set to a normalized BoW vector. */
    BowVector transform(const std::vector<Descriptor> &descs) const;

    /**
     * DBoW2 L1 similarity score in [0, 1]:
     * s = 1 - 0.5 * sum_i |a_i - b_i| over the union of words.
     */
    static double similarity(const BowVector &a, const BowVector &b);

  private:
    struct Node
    {
        Descriptor centroid;
        std::vector<int> children; //!< empty for leaves
        int word_id = -1;          //!< >= 0 for leaves
    };

    int buildNode(const std::vector<Descriptor> &descs,
                  std::vector<int> indices, int level,
                  const VocabularyConfig &cfg, class Rng &rng);

    std::vector<Node> nodes_;
    int root_ = -1;
    int word_count_ = 0;
};

} // namespace edx
