/**
 * @file
 * The tracking block (registration mode; also used by SLAM, Fig. 4).
 *
 * Estimates the 6 DoF pose of the current frame against a given map
 * using the bag-of-words place-recognition method. Four stages, matching
 * the latency breakdown of Fig. 6:
 *
 *  - Update: convert the frame to a BoW vector; when no pose prediction
 *    is available (first frame / lost), query the keyframe database.
 *  - Projection: project map points through the predicted camera pose
 *    (the C x X kernel offloaded to the backend accelerator).
 *  - Match: associate projected map points to current key points by
 *    windowed descriptor matching.
 *  - PoseOpt: LM pose-only optimization on the resulting 3D-2D pairs.
 */
#pragma once

#include <optional>

#include "backend/map.hpp"
#include "math/matx.hpp"
#include "backend/pose_opt.hpp"
#include "backend/vocabulary.hpp"
#include "frontend/frontend.hpp"
#include "sensors/camera.hpp"

namespace edx {

class SolveHub;

/** Tracker settings. */
struct TrackingConfig
{
    double match_radius_px = 24.0; //!< projection association window
    int min_matches = 12;          //!< below this the frame is "lost"
    double min_place_score = 0.015; //!< BoW score gate for relocalization
    PoseOptConfig pose_opt;
    MatchConfig match;

    /**
     * Routes the projection kernel through the pre-overhaul
     * column-major build + scalar GEMM (the "before" baseline of the
     * backend figure benches).
     */
    bool use_reference = false;
};

/** Per-stage wall-clock latency, ms (Fig. 6 categories). */
struct TrackingTiming
{
    double update_ms = 0.0;
    double projection_ms = 0.0;
    double match_ms = 0.0;
    double pose_opt_ms = 0.0;

    double total() const
    {
        return update_ms + projection_ms + match_ms + pose_opt_ms;
    }
};

/** Workload sizes (accelerator-model and scheduler inputs). */
struct TrackingWorkload
{
    int map_points_projected = 0; //!< M of the 3x4 * 4xM projection
    int candidate_matches = 0;
    int pose_opt_points = 0;
};

/** Tracking result for one frame. */
struct TrackingResult
{
    bool ok = false;
    Pose pose;
    int inliers = 0;
    bool relocalized = false; //!< used the BoW database this frame
    TrackingTiming timing;
    TrackingWorkload workload;
};

/** Tracks frames against a (possibly growing) map. */
class Tracker
{
  public:
    /**
     * @param map the map to localize in (not owned; may grow in SLAM)
     * @param vocabulary trained BoW vocabulary (not owned)
     * @param cam camera intrinsics
     * @param body_from_camera rig extrinsics
     */
    Tracker(const Map *map, const Vocabulary *vocabulary,
            const CameraIntrinsics &cam, const Pose &body_from_camera,
            const TrackingConfig &cfg = {});

    /**
     * Localizes one frame.
     * @param frame frontend products for the frame
     * @param prediction optional pose prediction (e.g., previous pose);
     *        when absent the BoW database provides the initial pose.
     */
    TrackingResult track(const FrontendOutput &frame,
                         const std::optional<Pose> &prediction);

    const TrackingConfig &config() const { return cfg_; }

    /**
     * Routes the projection kernel through a cross-session batching
     * hub (bit-identical to the direct path; null = direct).
     */
    void setSolveHub(SolveHub *hub) { hub_ = hub; }

    /**
     * Declares the map immutable (registration mode's shared prior
     * map): the homogeneous point matrix is then built once and reused
     * across frames instead of rebuilt per projection. Never set this
     * for a map whose points move (SLAM local BA).
     */
    void setStaticMap(bool static_map) { static_map_ = static_map; }

    /**
     * Swaps the map this tracker localizes in (a session adopting a
     * fresh shared-map epoch at a solve boundary). Invalidates the
     * static-map projection cache; static_map_ stays as configured —
     * each epoch is itself immutable. The caller owns @p map's
     * lifetime (the localizer pins the epoch's shared_ptr).
     */
    void
    retarget(const Map *map)
    {
        map_ = map;
        cached_points_ = -1;
    }

    const Map *map() const { return map_; }

  private:
    const Map *map_;
    const Vocabulary *voc_;
    SolveHub *hub_ = nullptr;
    bool static_map_ = false;
    int cached_points_ = -1; //!< x_rows_ validity (static maps only)
    CameraIntrinsics cam_;
    Pose body_from_camera_;
    TrackingConfig cfg_;

    // Projection-kernel buffers, reused frame to frame: the map points
    // in homogeneous row-major layout (one point per row, sequential
    // build and sequential consume) and the projected pixels.
    MatX x_rows_; //!< M x 4
    MatX c_;      //!< 3 x 4 camera matrix
    MatX f_;      //!< M x 3 projected homogeneous pixels
};

} // namespace edx
