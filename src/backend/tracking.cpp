#include "backend/tracking.hpp"

#include "math/blas.hpp"
#include "math/matx.hpp"
#include "runtime/solve_hub.hpp"
#include "runtime/telemetry.hpp"

namespace edx {

Tracker::Tracker(const Map *map, const Vocabulary *vocabulary,
                 const CameraIntrinsics &cam, const Pose &body_from_camera,
                 const TrackingConfig &cfg)
    : map_(map), voc_(vocabulary), cam_(cam),
      body_from_camera_(body_from_camera), cfg_(cfg)
{
}

TrackingResult
Tracker::track(const FrontendOutput &frame,
               const std::optional<Pose> &prediction)
{
    TrackingResult res;

    // --- Update stage: BoW conversion (every frame, so relocalization
    // and keyframe-database maintenance stay ready) and, when no pose
    // prediction is available, the place-recognition query.
    Pose initial;
    bool have_initial = false;
    {
        StageTimer timer(res.timing.update_ms);
        BowVector bow;
        if (voc_ && voc_->trained())
            bow = voc_->transform(frame.descriptors);
        if (prediction) {
            initial = *prediction;
            have_initial = true;
        }
        if (!have_initial && !bow.empty()) {
            auto place = map_->queryPlace(bow);
            if (place && place->score >= cfg_.min_place_score) {
                initial = map_->keyframes()[place->keyframe_id].pose;
                have_initial = true;
                res.relocalized = true;
            }
        }
    }
    if (!have_initial)
        return res; // lost: no prediction and no place match

    // --- Projection stage: the C(3x4) x X(4xM) kernel of Tbl. I,
    // executed literally as a matrix product over the homogeneous
    // coordinates of every map point (this is the formulation the
    // backend accelerator implements), followed by dehomogenization and
    // the in-image/depth gates.
    StageTimer projection_timer(res.timing.projection_ms);
    Pose camera_from_world =
        (initial * body_from_camera_).inverse();
    const auto &pts = map_->points();
    const int m = static_cast<int>(pts.size());

    // C = K [R | t].
    const Mat34 rt = camera_from_world.matrix34();
    const Mat3 k = cam_.matrix();
    c_.resize(3, 4);
    for (int r = 0; r < 3; ++r) {
        for (int col = 0; col < 4; ++col) {
            double v = 0.0;
            for (int j = 0; j < 3; ++j)
                v += k(r, j) * rt(j, col);
            c_(r, col) = v;
        }
    }

    if (cfg_.use_reference) {
        // Pre-overhaul layout: column-per-point build (strided writes)
        // and the scalar GEMM, then a column-strided consume.
        MatX x_h(4, m);
        for (int i = 0; i < m; ++i) {
            x_h(0, i) = pts[i].position[0];
            x_h(1, i) = pts[i].position[1];
            x_h(2, i) = pts[i].position[2];
            x_h(3, i) = 1.0;
        }
        MatX f;
        gemmReference(c_, x_h, f); // 3 x M
        f_.resize(m, 3);
        for (int i = 0; i < m; ++i) {
            f_(i, 0) = f(0, i);
            f_(i, 1) = f(1, i);
            f_(i, 2) = f(2, i);
        }
    } else if (hub_) {
        // Cross-session batched projection: sessions sharing this map
        // group into one stacked product over a single X build (cached
        // across batches when the map is immutable).
        hub_->project(map_, static_map_, c_, f_);
    } else {
        // Row-per-point layout: F = X(Mx4) · Cᵀ(4x3) through the
        // transpose-free kernel — the build, the product, and the
        // dehomogenization all stream sequentially, and the buffers
        // persist across frames. For an immutable prior map the point
        // matrix itself is built only once (points are append-only
        // there, so the count is the full validity key).
        if (!static_map_ || cached_points_ != m) {
            x_rows_.resizeNoInit(m, 4); // every row written below
            for (int i = 0; i < m; ++i) {
                double *row =
                    x_rows_.data() + static_cast<size_t>(i) * 4;
                row[0] = pts[i].position[0];
                row[1] = pts[i].position[1];
                row[2] = pts[i].position[2];
                row[3] = 1.0;
            }
            cached_points_ = static_map_ ? m : -1;
        }
        multiplyTransposedInto(x_rows_, c_, f_); // M x 3
    }

    struct Projected
    {
        int point_id;
        KeyPoint kp; //!< projected pixel position (for windowed match)
    };
    std::vector<Projected> projected;
    std::vector<Descriptor> projected_desc;
    projected.reserve(m / 4 + 1);
    for (int i = 0; i < m; ++i) {
        const double *fi = f_.data() + static_cast<size_t>(i) * 3;
        const double z = fi[2];
        if (z <= 1e-6)
            continue;
        Vec2 px{fi[0] / z, fi[1] / z};
        if (!cam_.inImage(px, 4.0))
            continue;
        Projected pr;
        pr.point_id = i;
        pr.kp.x = static_cast<float>(px[0]);
        pr.kp.y = static_cast<float>(px[1]);
        projected.push_back(pr);
        projected_desc.push_back(pts[i].descriptor);
    }
    res.workload.map_points_projected = m;
    projection_timer.stop();

    // --- Match stage: windowed descriptor association.
    StageTimer match_timer(res.timing.match_ms);
    std::vector<KeyPoint> proj_kps;
    proj_kps.reserve(projected.size());
    for (const Projected &p : projected)
        proj_kps.push_back(p.kp);
    std::vector<Match> matches = matchDescriptorsWindowed(
        projected_desc, proj_kps, frame.descriptors, frame.keypoints,
        cfg_.match_radius_px, cfg_.match);
    res.workload.candidate_matches = static_cast<int>(matches.size());
    match_timer.stop();

    if (static_cast<int>(matches.size()) < cfg_.min_matches)
        return res;

    // --- PoseOpt stage.
    StageTimer pose_opt_timer(res.timing.pose_opt_ms);
    std::vector<PoseObservation> obs;
    obs.reserve(matches.size());
    for (const Match &m : matches) {
        const KeyPoint &kp = frame.keypoints[m.train_index];
        obs.push_back({pts[projected[m.query_index].point_id].position,
                       Vec2{kp.x, kp.y}});
    }
    res.workload.pose_opt_points = static_cast<int>(obs.size());
    PoseOptResult opt = optimizePose(initial, obs, cam_,
                                     body_from_camera_, cfg_.pose_opt);
    pose_opt_timer.stop();

    if (!opt.converged || opt.inliers < cfg_.min_matches / 2)
        return res;
    res.ok = true;
    res.pose = opt.pose;
    res.inliers = opt.inliers;
    return res;
}

} // namespace edx
