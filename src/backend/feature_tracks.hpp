/**
 * @file
 * Feature-track bookkeeping between the frontend and the MSCKF.
 *
 * The frontend tracks the previous frame's key points into the current
 * frame with optical flow (temporal matches) and detects fresh key
 * points with stereo depth (spatial matches). This manager chains those
 * products into multi-frame feature tracks: a temporal match whose
 * tracked position lands near a currently detected key point continues
 * the track under that key point's index; otherwise the track ends and
 * becomes available for a filter update.
 */
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "frontend/frontend.hpp"
#include "math/vec.hpp"

namespace edx {

/** One observation of a feature in one frame (camera clone). */
struct TrackObservation
{
    long clone_id = 0;     //!< monotonically increasing frame/clone id
    Vec2 pixel;            //!< left-image pixel position
    double disparity = -1; //!< stereo disparity; < 0 when unavailable
};

/** A multi-frame feature track. */
struct FeatureTrack
{
    long id = 0;
    std::vector<TrackObservation> observations;
    bool alive = true;
};

/** Track-manager settings. */
struct TrackManagerConfig
{
    double continuation_radius_px = 3.0; //!< LK-position to key-point gate
    int max_track_length = 30;           //!< matches the MSCKF window
};

/** Chains frontend outputs into feature tracks. */
class FeatureTrackManager
{
  public:
    explicit FeatureTrackManager(const TrackManagerConfig &cfg = {})
        : cfg_(cfg)
    {}

    /**
     * Ingests one frontend frame with its clone id. Returns the tracks
     * that terminated this frame (ready for an MSCKF update).
     */
    std::vector<FeatureTrack> ingest(const FrontendOutput &frame,
                                     long clone_id);

    /** Tracks still alive (observing the current frame). */
    const std::vector<FeatureTrack> &liveTracks() const { return live_; }

    /**
     * Removes observations of clones older than @p min_clone_id from all
     * live tracks (called after the MSCKF slides its window).
     */
    void dropObservationsBefore(long min_clone_id);

    /** Drops all state. */
    void reset();

  private:
    TrackManagerConfig cfg_;
    std::vector<FeatureTrack> live_;
    /** Maps the previous frame's key-point index to a live-track slot. */
    std::unordered_map<int, int> kp_to_track_;
    long next_track_id_ = 1;
};

} // namespace edx
