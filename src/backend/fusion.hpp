/**
 * @file
 * Loosely-coupled GPS fusion (the "Fusion" block of the VIO mode,
 * Fig. 4).
 *
 * Follows the loosely-coupled approach the paper cites: GPS positions
 * are integrated through a simple EKF that estimates the slowly varying
 * drift between the VIO trajectory and the GPS frame. The corrected
 * output is the VIO pose shifted by the estimated drift, which arrests
 * the cumulative error of pure VIO whenever GPS is stably available.
 */
#pragma once

#include "math/mat.hpp"
#include "math/se3.hpp"
#include "sensors/gps.hpp"

namespace edx {

/** Fusion filter settings. */
struct FusionConfig
{
    double drift_walk_sigma = 0.05; //!< m/sqrt(s) drift random walk
    double gate_sigma = 5.0;        //!< innovation gate (std devs)
};

/** The drift-tracking EKF. */
class GpsFusion
{
  public:
    explicit GpsFusion(const FusionConfig &cfg = {}) : cfg_(cfg) {}

    /**
     * Processes one frame: propagates the drift state over @p dt and,
     * when @p gps is a valid fix, updates with the innovation
     * z = gps.position - vio_position.
     *
     * @return the corrected world-frame position.
     */
    Vec3 fuse(const Vec3 &vio_position, const GpsSample &gps, double dt);

    /** Corrected pose: VIO orientation, drift-corrected position. */
    Pose
    correct(const Pose &vio_pose) const
    {
        return Pose(vio_pose.rotation, vio_pose.translation + drift_);
    }

    const Vec3 &drift() const { return drift_; }

    /** Number of accepted GPS updates so far. */
    int updatesApplied() const { return updates_; }

    /** Number of fixes rejected by the innovation gate. */
    int updatesRejected() const { return rejected_; }

  private:
    FusionConfig cfg_;
    Vec3 drift_;                       //!< estimated gps - vio offset
    Mat3 p_ = Mat3::identity() * 4.0;  //!< drift covariance
    int updates_ = 0;
    int rejected_ = 0;
};

} // namespace edx
