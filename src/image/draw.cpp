#include "image/draw.hpp"

namespace edx {

void
fillNoisyBackground(ImageU8 &img, double mean, double sigma, Rng &rng)
{
    for (int y = 0; y < img.height(); ++y) {
        uint8_t *row = img.rowPtr(y);
        for (int x = 0; x < img.width(); ++x) {
            double v = rng.gaussian(mean, sigma);
            row[x] = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
        }
    }
}

void
drawTexturedPatch(ImageU8 &img, double cx, double cy, int half_size,
                  uint32_t texture_id, int brightness)
{
    const int icx = static_cast<int>(std::lround(cx));
    const int icy = static_cast<int>(std::lround(cy));
    // A small deterministic hash drives the texture so that the same
    // landmark looks the same from every viewpoint.
    auto hash = [texture_id](int u, int v) {
        uint32_t h = texture_id * 2654435761u;
        h ^= static_cast<uint32_t>(u * 73856093) ^
             static_cast<uint32_t>(v * 19349663);
        h ^= h >> 13;
        h *= 0x5bd1e995u;
        h ^= h >> 15;
        return h;
    };
    for (int dy = -half_size; dy <= half_size; ++dy) {
        for (int dx = -half_size; dx <= half_size; ++dx) {
            int x = icx + dx, y = icy + dy;
            if (!img.contains(x, y))
                continue;
            // Coarse 3x3 cells give strong corners; the hash picks each
            // cell's tone; a radial falloff avoids a hard square edge
            // dominating the descriptor.
            int cu = (dx + half_size) / 3;
            int cv = (dy + half_size) / 3;
            int tone = static_cast<int>(hash(cu, cv) % 160) - 80;
            double r2 = static_cast<double>(dx * dx + dy * dy) /
                        (half_size * half_size + 1.0);
            double fall = r2 > 1.0 ? 0.0 : 1.0 - 0.3 * r2;
            int v = static_cast<int>((brightness + tone) * fall);
            img.at(x, y) = static_cast<uint8_t>(std::clamp(v, 0, 255));
        }
    }
}

void
addPixelNoise(ImageU8 &img, double sigma, Rng &rng)
{
    if (sigma <= 0.0)
        return;
    for (int y = 0; y < img.height(); ++y) {
        uint8_t *row = img.rowPtr(y);
        for (int x = 0; x < img.width(); ++x) {
            double v = std::round(row[x] + rng.gaussian(0.0, sigma));
            row[x] = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
        }
    }
}

void
scaleBrightness(ImageU8 &img, double gain)
{
    for (int y = 0; y < img.height(); ++y) {
        uint8_t *row = img.rowPtr(y);
        for (int x = 0; x < img.width(); ++x) {
            double v = row[x] * gain;
            row[x] = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
        }
    }
}

} // namespace edx
