#include "image/image.hpp"

namespace edx {

ImageF
toFloat(const ImageU8 &in)
{
    ImageF out(in.width(), in.height());
    for (int y = 0; y < in.height(); ++y) {
        const uint8_t *src = in.rowPtr(y);
        float *dst = out.rowPtr(y);
        for (int x = 0; x < in.width(); ++x)
            dst[x] = static_cast<float>(src[x]);
    }
    return out;
}

ImageU8
toU8(const ImageF &in)
{
    ImageU8 out(in.width(), in.height());
    for (int y = 0; y < in.height(); ++y) {
        const float *src = in.rowPtr(y);
        uint8_t *dst = out.rowPtr(y);
        for (int x = 0; x < in.width(); ++x) {
            float v = std::round(src[x]);
            dst[x] = static_cast<uint8_t>(std::clamp(v, 0.0f, 255.0f));
        }
    }
    return out;
}

ImageU8
halfScale(const ImageU8 &in)
{
    ImageU8 out;
    halfScaleInto(in, out);
    return out;
}

bool
halfScaleInto(const ImageU8 &in, ImageU8 &out)
{
    int w = in.width() / 2;
    int h = in.height() / 2;
    bool grew = out.resize(w, h);
    for (int y = 0; y < h; ++y) {
        const uint8_t *r0 = in.rowPtr(2 * y);
        const uint8_t *r1 = in.rowPtr(2 * y + 1);
        uint8_t *dst = out.rowPtr(y);
        for (int x = 0; x < w; ++x) {
            int s = r0[2 * x] + r0[2 * x + 1] + r1[2 * x] + r1[2 * x + 1];
            dst[x] = static_cast<uint8_t>((s + 2) / 4);
        }
    }
    return grew;
}

double
meanAbsDifference(const ImageU8 &a, const ImageU8 &b)
{
    assert(a.width() == b.width() && a.height() == b.height());
    if (a.empty())
        return 0.0;
    double s = 0.0;
    for (int y = 0; y < a.height(); ++y) {
        const uint8_t *ra = a.rowPtr(y);
        const uint8_t *rb = b.rowPtr(y);
        for (int x = 0; x < a.width(); ++x)
            s += std::abs(static_cast<int>(ra[x]) - static_cast<int>(rb[x]));
    }
    return s / static_cast<double>(a.pixelCount());
}

} // namespace edx
