/**
 * @file
 * Drawing primitives for the synthetic stereo renderer.
 *
 * The dataset substitution (DESIGN.md Sec. 2) renders landmark fields
 * into real grayscale images; these helpers produce the textured blobs
 * and backgrounds that give FAST/ORB/LK realistic material to work on.
 */
#pragma once

#include "image/image.hpp"
#include "math/rng.hpp"

namespace edx {

/** Fills @p img with mid-gray plus per-pixel Gaussian noise. */
void fillNoisyBackground(ImageU8 &img, double mean, double sigma, Rng &rng);

/**
 * Draws a textured square patch centered at (cx, cy). The patch carries
 * a deterministic checker-plus-gradient texture derived from @p texture_id
 * so each landmark has a distinctive, corner-rich appearance that ORB can
 * describe and match across views.
 *
 * @param img destination image
 * @param cx, cy patch center in pixels (sub-pixel positions are rounded)
 * @param half_size half of the square's side length in pixels
 * @param texture_id deterministic texture selector
 * @param brightness base intensity of the patch (0-255)
 */
void drawTexturedPatch(ImageU8 &img, double cx, double cy, int half_size,
                       uint32_t texture_id, int brightness);

/** Adds zero-mean Gaussian noise to every pixel (sensor/shot noise). */
void addPixelNoise(ImageU8 &img, double sigma, Rng &rng);

/**
 * Applies a global illumination scale, clamping to [0, 255]; models the
 * changing outdoor lighting the paper cites as a SLAM failure source.
 */
void scaleBrightness(ImageU8 &img, double gain);

} // namespace edx
