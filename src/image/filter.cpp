#include "image/filter.hpp"

#include <array>

#include "math/cpu_features.hpp"
#if defined(EDX_HAVE_AVX2)
#include "image/filter_avx2.hpp"
#endif

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace edx {

namespace {

constexpr int kR = kGaussianKernelSize / 2;

/** Fixed 7-tap Gaussian (sigma = 1.5), normalized to sum 1. */
std::array<float, kGaussianKernelSize>
gaussianKernel()
{
    std::array<float, kGaussianKernelSize> k{};
    const float sigma = 1.5f;
    float sum = 0.0f;
    for (int i = -kR; i <= kR; ++i) {
        float v = std::exp(-0.5f * i * i / (sigma * sigma));
        k[i + kR] = v;
        sum += v;
    }
    for (float &v : k)
        v /= sum;
    return k;
}

/**
 * The same kernel in 16.8 fixed point: weights scaled by 2^16 and
 * adjusted at the center tap so they sum to exactly 65536 (a constant
 * image stays constant).
 */
std::array<uint32_t, kGaussianKernelSize>
gaussianKernelFixed()
{
    const auto kf = gaussianKernel();
    std::array<uint32_t, kGaussianKernelSize> k{};
    uint32_t sum = 0;
    for (int i = 0; i < kGaussianKernelSize; ++i) {
        k[i] = static_cast<uint32_t>(std::lround(kf[i] * 65536.0));
        sum += k[i];
    }
    k[kR] += 65536 - sum;
    return k;
}

template <typename T>
Image<float>
separableBlurF(const Image<T> &in)
{
    const auto k = gaussianKernel();
    const int w = in.width(), h = in.height();
    Image<float> tmp(w, h), out(w, h);

    // Horizontal pass with edge clamping.
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float s = 0.0f;
            for (int i = -kR; i <= kR; ++i)
                s += k[i + kR] *
                     static_cast<float>(in.atClamped(x + i, y));
            tmp.at(x, y) = s;
        }
    }
    // Vertical pass.
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float s = 0.0f;
            for (int i = -kR; i <= kR; ++i)
                s += k[i + kR] * tmp.atClamped(x, y + i);
            out.at(x, y) = s;
        }
    }
    return out;
}

} // namespace

#if defined(__SSE2__)
/**
 * acc += k * v for 8 unsigned 16-bit lanes, widening into two 4-lane
 * 32-bit accumulators. All sums are exact integers, so the SIMD
 * evaluation is bit-identical to the scalar reference.
 */
inline void
maddU16(__m128i v, __m128i k, __m128i &acc_lo, __m128i &acc_hi)
{
    const __m128i lo16 = _mm_mullo_epi16(v, k);
    const __m128i hi16 = _mm_mulhi_epu16(v, k);
    acc_lo = _mm_add_epi32(acc_lo, _mm_unpacklo_epi16(lo16, hi16));
    acc_hi = _mm_add_epi32(acc_hi, _mm_unpackhi_epi16(lo16, hi16));
}
#endif

/**
 * Horizontal fixed-point pass for one row: tmp = (sum_i w_i * p_i +
 * 128) >> 8, clamped borders in separate edge loops, branch-free
 * interior with the 7 taps unrolled into registers (8 pixels per SSE2
 * step where available).
 */
void
blurRowFixed(const uint8_t *src, int w, const uint32_t *k, uint16_t *dst)
{
    auto clamped = [&](int x) {
        return src[x < 0 ? 0 : (x >= w ? w - 1 : x)];
    };
    const int lo = std::min(kR, w);
    const int hi = std::max(lo, w - kR);
    for (int x = 0; x < lo; ++x) {
        uint32_t acc = 128;
        for (int i = -kR; i <= kR; ++i)
            acc += k[i + kR] * clamped(x + i);
        dst[x] = static_cast<uint16_t>(acc >> 8);
    }
    int x = lo;
#if defined(EDX_HAVE_AVX2)
    // AVX2 tier: 16 pixels per step, bit-identical integer arithmetic.
    if (simdTierIsAvx2())
        x = avx2::blurRowFixed(src, x, hi, k, kGaussianKernelSize, dst);
#endif
#if defined(__SSE2__)
    {
        __m128i kv[kGaussianKernelSize];
        for (int i = 0; i < kGaussianKernelSize; ++i)
            kv[i] = _mm_set1_epi16(static_cast<short>(k[i]));
        const __m128i zero = _mm_setzero_si128();
        const __m128i round = _mm_set1_epi32(128);
        for (; x + 8 <= hi; x += 8) {
            __m128i acc_lo = round, acc_hi = round;
            for (int i = 0; i < kGaussianKernelSize; ++i) {
                const __m128i v8 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(src + x + i -
                                                      kR));
                maddU16(_mm_unpacklo_epi8(v8, zero), kv[i], acc_lo,
                        acc_hi);
            }
            // (acc >> 8) fits 16 unsigned bits but can exceed the
            // signed-saturating pack's 32767, so bias around zero for
            // the pack and undo it afterwards (exact for [0, 65535]).
            const __m128i bias32 = _mm_set1_epi32(32768);
            const __m128i bias16 =
                _mm_set1_epi16(static_cast<short>(0x8000));
            const __m128i out = _mm_add_epi16(
                _mm_packs_epi32(
                    _mm_sub_epi32(_mm_srli_epi32(acc_lo, 8), bias32),
                    _mm_sub_epi32(_mm_srli_epi32(acc_hi, 8), bias32)),
                bias16);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x), out);
        }
    }
#endif
    for (; x < hi; ++x) {
        const uint8_t *p = src + x - kR;
        uint32_t acc = 128;
        for (int i = 0; i < kGaussianKernelSize; ++i)
            acc += k[i] * p[i];
        dst[x] = static_cast<uint16_t>(acc >> 8);
    }
    for (x = hi; x < w; ++x) {
        uint32_t acc = 128;
        for (int i = -kR; i <= kR; ++i)
            acc += k[i + kR] * clamped(x + i);
        dst[x] = static_cast<uint16_t>(acc >> 8);
    }
}

bool
gaussianBlurInto(const ImageU8 &in, BlurScratch &scratch, ImageU8 &out)
{
    static const auto k = gaussianKernelFixed();
    const int w = in.width(), h = in.height();
    bool grew = scratch.tmp.resize(w, h);
    grew |= out.resize(w, h);
    if (w == 0 || h == 0)
        return grew;

    for (int y = 0; y < h; ++y)
        blurRowFixed(in.rowPtr(y), w, k.data(), scratch.tmp.rowPtr(y));

    // Vertical pass: every row reads 7 row pointers (the top/bottom
    // aprons clamp the row index), 8 pixels per SSE2 step.
    const ImageU16 &tmp = scratch.tmp;
    for (int y = 0; y < h; ++y) {
        const uint16_t *rows[kGaussianKernelSize];
        for (int i = -kR; i <= kR; ++i)
            rows[i + kR] = tmp.rowPtr(std::clamp(y + i, 0, h - 1));
        uint8_t *dst = out.rowPtr(y);
        int x = 0;
#if defined(EDX_HAVE_AVX2)
        if (simdTierIsAvx2())
            x = avx2::blurColFixed(rows, w, k.data(),
                                   kGaussianKernelSize, dst);
#endif
#if defined(__SSE2__)
        {
            __m128i kv[kGaussianKernelSize];
            for (int i = 0; i < kGaussianKernelSize; ++i)
                kv[i] = _mm_set1_epi16(static_cast<short>(k[i]));
            const __m128i round = _mm_set1_epi32(1 << 23);
            for (; x + 8 <= w; x += 8) {
                __m128i acc_lo = round, acc_hi = round;
                for (int i = 0; i < kGaussianKernelSize; ++i)
                    maddU16(_mm_loadu_si128(
                                reinterpret_cast<const __m128i *>(
                                    rows[i] + x)),
                            kv[i], acc_lo, acc_hi);
                const __m128i v16 = _mm_packs_epi32(
                    _mm_srli_epi32(acc_lo, 24),
                    _mm_srli_epi32(acc_hi, 24));
                _mm_storel_epi64(
                    reinterpret_cast<__m128i *>(dst + x),
                    _mm_packus_epi16(v16, v16));
            }
        }
#endif
        for (; x < w; ++x) {
            uint32_t acc = 1u << 23;
            for (int i = 0; i < kGaussianKernelSize; ++i)
                acc += k[i] * rows[i][x];
            dst[x] = static_cast<uint8_t>(acc >> 24);
        }
    }
    return grew;
}

ImageU8
gaussianBlur(const ImageU8 &in)
{
    BlurScratch scratch;
    ImageU8 out;
    gaussianBlurInto(in, scratch, out);
    return out;
}

ImageU8
gaussianBlurReference(const ImageU8 &in)
{
    static const auto k = gaussianKernelFixed();
    const int w = in.width(), h = in.height();
    ImageU16 tmp(w, h);
    ImageU8 out(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            uint32_t acc = 128;
            for (int i = -kR; i <= kR; ++i)
                acc += k[i + kR] * in.atClamped(x + i, y);
            tmp.at(x, y) = static_cast<uint16_t>(acc >> 8);
        }
    }
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            uint32_t acc = 1u << 23;
            for (int i = -kR; i <= kR; ++i)
                acc += k[i + kR] * tmp.atClamped(x, y + i);
            out.at(x, y) = static_cast<uint8_t>(acc >> 24);
        }
    }
    return out;
}

ImageF
gaussianBlur(const ImageF &in)
{
    return separableBlurF(in);
}

ImageU8
boxBlur(const ImageU8 &in, int r)
{
    assert(r >= 0);
    const int w = in.width(), h = in.height();
    ImageU8 out(w, h);
    if (w == 0 || h == 0)
        return out;
    const int count = (2 * r + 1) * (2 * r + 1);

    // Horizontal sliding window with edge clamping: each row sum is
    // updated by one add and one subtract per pixel.
    Image<int32_t> rowsum(w, h);
    for (int y = 0; y < h; ++y) {
        const uint8_t *src = in.rowPtr(y);
        int32_t *dst = rowsum.rowPtr(y);
        auto clamped = [&](int x) {
            return static_cast<int32_t>(
                src[x < 0 ? 0 : (x >= w ? w - 1 : x)]);
        };
        int32_t s = 0;
        for (int dx = -r; dx <= r; ++dx)
            s += clamped(dx);
        dst[0] = s;
        for (int x = 1; x < w; ++x) {
            s += clamped(x + r) - clamped(x - r - 1);
            dst[x] = s;
        }
    }

    // Vertical sliding window over the row sums, one running column-sum
    // vector updated by one row-add and one row-subtract per output row.
    std::vector<int32_t> colsum(static_cast<size_t>(w), 0);
    auto rowClamped = [&](int y) {
        return rowsum.rowPtr(y < 0 ? 0 : (y >= h ? h - 1 : y));
    };
    for (int dy = -r; dy <= r; ++dy) {
        const int32_t *row = rowClamped(dy);
        for (int x = 0; x < w; ++x)
            colsum[x] += row[x];
    }
    for (int y = 0; y < h; ++y) {
        uint8_t *dst = out.rowPtr(y);
        for (int x = 0; x < w; ++x)
            dst[x] = static_cast<uint8_t>((colsum[x] + count / 2) /
                                          count);
        if (y + 1 < h) {
            const int32_t *add = rowClamped(y + 1 + r);
            const int32_t *sub = rowClamped(y - r);
            for (int x = 0; x < w; ++x)
                colsum[x] += add[x] - sub[x];
        }
    }
    return out;
}

ImageU8
boxBlurReference(const ImageU8 &in, int r)
{
    assert(r >= 0);
    const int w = in.width(), h = in.height();
    ImageU8 out(w, h);
    const int count = (2 * r + 1) * (2 * r + 1);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int s = 0;
            for (int dy = -r; dy <= r; ++dy)
                for (int dx = -r; dx <= r; ++dx)
                    s += in.atClamped(x + dx, y + dy);
            out.at(x, y) = static_cast<uint8_t>((s + count / 2) / count);
        }
    }
    return out;
}

bool
scharrGradientsInto(const ImageU8 &in, Gradients &out)
{
    const int w = in.width(), h = in.height();
    bool grew = out.gx.resize(w, h);
    grew |= out.gy.resize(w, h);
    if (w == 0 || h == 0)
        return grew;

    // Scharr 3x3: (3, 10, 3) smoothing x (-1, 0, 1) derivative, /32.
    // All stencil sums are small exact integers, so integer interior
    // math is bit-identical to the float reference formulation.
    auto edgePixel = [&](int x, int y) {
        const int p00 = in.atClamped(x - 1, y - 1);
        const int p10 = in.atClamped(x, y - 1);
        const int p20 = in.atClamped(x + 1, y - 1);
        const int p01 = in.atClamped(x - 1, y);
        const int p21 = in.atClamped(x + 1, y);
        const int p02 = in.atClamped(x - 1, y + 1);
        const int p12 = in.atClamped(x, y + 1);
        const int p22 = in.atClamped(x + 1, y + 1);
        out.gx.at(x, y) = static_cast<float>(3 * (p20 - p00) +
                                             10 * (p21 - p01) +
                                             3 * (p22 - p02)) /
                          32.0f;
        out.gy.at(x, y) = static_cast<float>(3 * (p02 - p00) +
                                             10 * (p12 - p10) +
                                             3 * (p22 - p20)) /
                          32.0f;
    };

    for (int x = 0; x < w; ++x) {
        edgePixel(x, 0);
        if (h > 1)
            edgePixel(x, h - 1);
    }
    for (int y = 1; y + 1 < h; ++y) {
        edgePixel(0, y);
        if (w > 1)
            edgePixel(w - 1, y);
        const uint8_t *pm = in.rowPtr(y - 1);
        const uint8_t *p0 = in.rowPtr(y);
        const uint8_t *pp = in.rowPtr(y + 1);
        float *gx = out.gx.rowPtr(y);
        float *gy = out.gy.rowPtr(y);
        for (int x = 1; x + 1 < w; ++x) {
            const int p00 = pm[x - 1], p10 = pm[x], p20 = pm[x + 1];
            const int p01 = p0[x - 1], p21 = p0[x + 1];
            const int p02 = pp[x - 1], p12 = pp[x], p22 = pp[x + 1];
            gx[x] = static_cast<float>(3 * (p20 - p00) +
                                       10 * (p21 - p01) +
                                       3 * (p22 - p02)) /
                    32.0f;
            gy[x] = static_cast<float>(3 * (p02 - p00) +
                                       10 * (p12 - p10) +
                                       3 * (p22 - p20)) /
                    32.0f;
        }
    }
    return grew;
}

Gradients
scharrGradients(const ImageU8 &in)
{
    Gradients g;
    scharrGradientsInto(in, g);
    return g;
}

bool
centralDiffGradientsInto(const ImageU8 &in, Gradients &out)
{
    const int w = in.width(), h = in.height();
    bool grew = out.gx.resize(w, h);
    grew |= out.gy.resize(w, h);
    if (w == 0 || h == 0)
        return grew;

    auto edgePixel = [&](int x, int y) {
        out.gx.at(x, y) =
            0.5f * (in.atClamped(x + 1, y) - in.atClamped(x - 1, y));
        out.gy.at(x, y) =
            0.5f * (in.atClamped(x, y + 1) - in.atClamped(x, y - 1));
    };

    for (int x = 0; x < w; ++x) {
        edgePixel(x, 0);
        if (h > 1)
            edgePixel(x, h - 1);
    }
    for (int y = 1; y + 1 < h; ++y) {
        edgePixel(0, y);
        if (w > 1)
            edgePixel(w - 1, y);
        const uint8_t *pm = in.rowPtr(y - 1);
        const uint8_t *p0 = in.rowPtr(y);
        const uint8_t *pp = in.rowPtr(y + 1);
        float *gx = out.gx.rowPtr(y);
        float *gy = out.gy.rowPtr(y);
        for (int x = 1; x + 1 < w; ++x) {
            gx[x] = 0.5f * (p0[x + 1] - p0[x - 1]);
            gy[x] = 0.5f * (pp[x] - pm[x]);
        }
    }
    return grew;
}

Gradients
centralDiffGradients(const ImageU8 &in)
{
    Gradients g;
    centralDiffGradientsInto(in, g);
    return g;
}

Gradients
centralDiffGradientsReference(const ImageU8 &in)
{
    const int w = in.width(), h = in.height();
    Gradients g{ImageF(w, h), ImageF(w, h)};
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            g.gx.at(x, y) = 0.5f * (in.atClamped(x + 1, y) -
                                    in.atClamped(x - 1, y));
            g.gy.at(x, y) = 0.5f * (in.atClamped(x, y + 1) -
                                    in.atClamped(x, y - 1));
        }
    }
    return g;
}

Gradients
scharrGradientsReference(const ImageU8 &in)
{
    const int w = in.width(), h = in.height();
    Gradients g{ImageF(w, h), ImageF(w, h)};
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float p00 = in.atClamped(x - 1, y - 1);
            float p10 = in.atClamped(x, y - 1);
            float p20 = in.atClamped(x + 1, y - 1);
            float p01 = in.atClamped(x - 1, y);
            float p21 = in.atClamped(x + 1, y);
            float p02 = in.atClamped(x - 1, y + 1);
            float p12 = in.atClamped(x, y + 1);
            float p22 = in.atClamped(x + 1, y + 1);
            g.gx.at(x, y) =
                (3 * (p20 - p00) + 10 * (p21 - p01) + 3 * (p22 - p02)) /
                32.0f;
            g.gy.at(x, y) =
                (3 * (p02 - p00) + 10 * (p12 - p10) + 3 * (p22 - p20)) /
                32.0f;
        }
    }
    return g;
}

} // namespace edx
