#include "image/filter.hpp"

#include <array>

namespace edx {

namespace {

/** Fixed 7-tap Gaussian (sigma = 1.5), normalized to sum 1. */
constexpr int kR = kGaussianKernelSize / 2;

std::array<float, kGaussianKernelSize>
gaussianKernel()
{
    std::array<float, kGaussianKernelSize> k{};
    const float sigma = 1.5f;
    float sum = 0.0f;
    for (int i = -kR; i <= kR; ++i) {
        float v = std::exp(-0.5f * i * i / (sigma * sigma));
        k[i + kR] = v;
        sum += v;
    }
    for (float &v : k)
        v /= sum;
    return k;
}

template <typename T>
Image<float>
separableBlur(const Image<T> &in)
{
    const auto k = gaussianKernel();
    const int w = in.width(), h = in.height();
    Image<float> tmp(w, h), out(w, h);

    // Horizontal pass with edge clamping.
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float s = 0.0f;
            for (int i = -kR; i <= kR; ++i)
                s += k[i + kR] *
                     static_cast<float>(in.atClamped(x + i, y));
            tmp.at(x, y) = s;
        }
    }
    // Vertical pass.
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float s = 0.0f;
            for (int i = -kR; i <= kR; ++i)
                s += k[i + kR] * tmp.atClamped(x, y + i);
            out.at(x, y) = s;
        }
    }
    return out;
}

} // namespace

ImageU8
gaussianBlur(const ImageU8 &in)
{
    return toU8(separableBlur(in));
}

ImageF
gaussianBlur(const ImageF &in)
{
    return separableBlur(in);
}

ImageU8
boxBlur(const ImageU8 &in, int r)
{
    assert(r >= 0);
    const int w = in.width(), h = in.height();
    ImageU8 out(w, h);
    const int count = (2 * r + 1) * (2 * r + 1);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int s = 0;
            for (int dy = -r; dy <= r; ++dy)
                for (int dx = -r; dx <= r; ++dx)
                    s += in.atClamped(x + dx, y + dy);
            out.at(x, y) = static_cast<uint8_t>((s + count / 2) / count);
        }
    }
    return out;
}

Gradients
scharrGradients(const ImageU8 &in)
{
    const int w = in.width(), h = in.height();
    Gradients g{ImageF(w, h), ImageF(w, h)};
    // Scharr 3x3: (3, 10, 3) smoothing x (-1, 0, 1) derivative, /32.
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float p00 = in.atClamped(x - 1, y - 1);
            float p10 = in.atClamped(x, y - 1);
            float p20 = in.atClamped(x + 1, y - 1);
            float p01 = in.atClamped(x - 1, y);
            float p21 = in.atClamped(x + 1, y);
            float p02 = in.atClamped(x - 1, y + 1);
            float p12 = in.atClamped(x, y + 1);
            float p22 = in.atClamped(x + 1, y + 1);
            g.gx.at(x, y) =
                (3 * (p20 - p00) + 10 * (p21 - p01) + 3 * (p22 - p02)) /
                32.0f;
            g.gy.at(x, y) =
                (3 * (p02 - p00) + 10 * (p12 - p10) + 3 * (p22 - p20)) /
                32.0f;
        }
    }
    return g;
}

} // namespace edx
