#include "image/pyramid.hpp"

namespace edx {

bool
Pyramid::rebuild(const ImageU8 &base, int levels)
{
    assert(levels >= 1);
    bool grew = false;
    if (static_cast<int>(imgs_.size()) < levels) {
        imgs_.resize(levels);
        grew = true;
    }
    grew |= imgs_[0].copyFrom(base);
    level_count_ = 1;
    for (int l = 1; l < levels; ++l) {
        const ImageU8 &prev = imgs_[l - 1];
        if (prev.width() < 2 || prev.height() < 2)
            break;
        grew |= halfScaleInto(prev, imgs_[l]);
        ++level_count_;
    }
    return grew;
}

} // namespace edx
