#include "image/pyramid.hpp"

namespace edx {

Pyramid::Pyramid(const ImageU8 &base, int levels)
{
    assert(levels >= 1);
    imgs_.reserve(levels);
    imgs_.push_back(base);
    for (int l = 1; l < levels; ++l) {
        const ImageU8 &prev = imgs_.back();
        if (prev.width() < 2 || prev.height() < 2)
            break;
        imgs_.push_back(halfScale(prev));
    }
}

} // namespace edx
