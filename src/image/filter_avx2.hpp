/**
 * @file
 * Declarations of the AVX2 fixed-point Gaussian-blur tier
 * (image/filter_avx2.cpp, compiled with -mavx2 -mfma). Both passes are
 * exact 16.8 fixed-point integer arithmetic at 16 pixels per step, so
 * the tier is bit-identical to the SSE2 interior and the scalar
 * reference — the frontend golden tests run per tier against the same
 * goldens. Raw-pointer interfaces only (see simd_avx2.hpp for why).
 */
#pragma once

#if defined(EDX_HAVE_AVX2)

namespace edx {
namespace avx2 {

/**
 * Horizontal fixed-point blur interior: processes pixels
 * [x, x + 16*t) <= hi in 16-pixel steps and returns the first
 * unprocessed x. @p taps is the kernel length (odd); loads reach
 * [x - taps/2, x + 15 + taps/2], which the caller's edge loops keep
 * in bounds.
 */
int blurRowFixed(const unsigned char *src, int x, int hi,
                 const unsigned *k, int taps, unsigned short *dst);

/**
 * Vertical fixed-point blur pass over @p taps clamped row pointers:
 * processes [0, 16*t) <= w and returns the first unprocessed x.
 */
int blurColFixed(const unsigned short *const *rows, int w,
                 const unsigned *k, int taps, unsigned char *dst);

} // namespace avx2
} // namespace edx

#endif // EDX_HAVE_AVX2
