/**
 * @file
 * Image filtering: separable Gaussian blur, box filter, and Scharr
 * gradients.
 *
 * These are the "Image Filtering (IF)" and "Derivatives Calculation (DC)"
 * tasks of the frontend accelerator pipeline (Fig. 12). The stencil sizes
 * used here (Gaussian 7x1 separable, Scharr 3x3) are the sizes the
 * stencil-buffer model in src/hw sizes its line buffers for.
 */
#pragma once

#include "image/image.hpp"

namespace edx {

/** Width of the separable Gaussian kernel used by the frontend (odd). */
inline constexpr int kGaussianKernelSize = 7;

/**
 * Separable Gaussian blur with the frontend's fixed 7-tap kernel
 * (sigma = 1.5). Edges are handled by clamping.
 */
ImageU8 gaussianBlur(const ImageU8 &in);

/** Gaussian blur on a float image (same kernel). */
ImageF gaussianBlur(const ImageF &in);

/** Box blur with a (2r+1)^2 window. */
ImageU8 boxBlur(const ImageU8 &in, int r);

/** Horizontal and vertical image gradients. */
struct Gradients
{
    ImageF gx;
    ImageF gy;
};

/**
 * 3x3 Scharr gradients (normalized by 1/32) of an 8-bit image; used by
 * Lucas-Kanade temporal matching.
 */
Gradients scharrGradients(const ImageU8 &in);

} // namespace edx
