/**
 * @file
 * Image filtering: separable Gaussian blur, box filter, and Scharr
 * gradients.
 *
 * These are the "Image Filtering (IF)" and "Derivatives Calculation (DC)"
 * tasks of the frontend accelerator pipeline (Fig. 12). The stencil sizes
 * used here (Gaussian 7x1 separable, Scharr 3x3) are the sizes the
 * stencil-buffer model in src/hw sizes its line buffers for.
 *
 * Every hot kernel comes in two forms:
 *
 *  - an optimized implementation (branch-free interior fast path with
 *    raw row pointers, clamped borders handled by separate edge loops,
 *    and caller-owned destination buffers for the zero-alloc frontend
 *    workspace), and
 *  - a retained scalar reference implementation (`*Reference`), the
 *    straightforward per-pixel formulation. The golden-output
 *    equivalence tests in tests/test_kernels.cpp assert the two are
 *    bit-exact, so the fast paths can never silently drift.
 *
 * The 8-bit Gaussian runs in 16.8 fixed point (weights scaled by 2^16,
 * horizontal intermediate kept at 8 fractional bits) so the interior
 * loops are pure integer multiply-accumulates the compiler vectorizes.
 */
#pragma once

#include "image/image.hpp"

namespace edx {

/** Width of the separable Gaussian kernel used by the frontend (odd). */
inline constexpr int kGaussianKernelSize = 7;

/** Reusable intermediate buffer of the separable 8-bit Gaussian. */
struct BlurScratch
{
    ImageU16 tmp; //!< horizontal pass, 8 fractional bits
};

/**
 * Separable Gaussian blur with the frontend's fixed 7-tap kernel
 * (sigma = 1.5) in 16.8 fixed point. Edges are handled by clamping.
 */
ImageU8 gaussianBlur(const ImageU8 &in);

/**
 * gaussianBlur into a caller-owned destination and scratch buffer
 * (zero-alloc steady state). @return true when a buffer had to grow.
 */
bool gaussianBlurInto(const ImageU8 &in, BlurScratch &scratch,
                      ImageU8 &out);

/** Scalar reference of the fixed-point Gaussian (golden tests). */
ImageU8 gaussianBlurReference(const ImageU8 &in);

/** Gaussian blur on a float image (same kernel shape, float weights). */
ImageF gaussianBlur(const ImageF &in);

/**
 * Box blur with a (2r+1)^2 window via sliding-window row sums: O(1)
 * work per pixel regardless of the radius.
 */
ImageU8 boxBlur(const ImageU8 &in, int r);

/** Scalar O(r^2)-per-pixel reference of boxBlur (golden tests). */
ImageU8 boxBlurReference(const ImageU8 &in, int r);

/** Horizontal and vertical image gradients. */
struct Gradients
{
    ImageF gx;
    ImageF gy;
};

/**
 * 3x3 Scharr gradients (normalized by 1/32) of an 8-bit image; used by
 * Lucas-Kanade temporal matching.
 */
Gradients scharrGradients(const ImageU8 &in);

/**
 * scharrGradients into caller-owned gradient images (the frontend
 * caches one Gradients per pyramid level in its workspace so the LK
 * tracker reuses them across features and iterations).
 * @return true when a buffer had to grow.
 */
bool scharrGradientsInto(const ImageU8 &in, Gradients &out);

/** Scalar reference of the Scharr gradients (golden tests). */
Gradients scharrGradientsReference(const ImageU8 &in);

/**
 * Plain central-difference gradients (gx = (I(x+1) - I(x-1)) / 2, same
 * for y, clamped at the borders). This is the gradient the pyramidal
 * LK tracker samples by default: bilinearly interpolating this image
 * is mathematically identical to central-differencing a bilinearly
 * shifted patch (the classical Bouguet formulation), so caching it per
 * pyramid level changes where the work happens, not the flow field.
 * @return true when a buffer had to grow.
 */
bool centralDiffGradientsInto(const ImageU8 &in, Gradients &out);

/** Allocating convenience form of centralDiffGradientsInto. */
Gradients centralDiffGradients(const ImageU8 &in);

/** Scalar reference of the central-difference gradients. */
Gradients centralDiffGradientsReference(const ImageU8 &in);

} // namespace edx
