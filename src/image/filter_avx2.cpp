/**
 * @file
 * AVX2 tier of the fixed-point Gaussian blur (16 pixels per step; the
 * SSE2 interior in filter.cpp does 8). All arithmetic is the exact
 * same 16.8 fixed-point integer evaluation, so the output is
 * bit-identical to the SSE2 tier and the scalar reference.
 *
 * Only <immintrin.h> here — see simd_avx2.cpp for the ODR rationale.
 */
#if defined(EDX_HAVE_AVX2)

#include <immintrin.h>

#include "image/filter_avx2.hpp"

namespace edx {
namespace avx2 {

namespace {

/**
 * acc += k * v for 16 unsigned 16-bit lanes, widening into two 8-lane
 * 32-bit accumulators. The unpack interleaves within each 128-bit
 * lane; the matching in-lane packs in the callers restore element
 * order, and every sum is an exact integer.
 */
inline void
maddU16(__m256i v, __m256i k, __m256i &acc_lo, __m256i &acc_hi)
{
    const __m256i lo16 = _mm256_mullo_epi16(v, k);
    const __m256i hi16 = _mm256_mulhi_epu16(v, k);
    acc_lo = _mm256_add_epi32(acc_lo, _mm256_unpacklo_epi16(lo16, hi16));
    acc_hi = _mm256_add_epi32(acc_hi, _mm256_unpackhi_epi16(lo16, hi16));
}

constexpr int kMaxTaps = 15;

} // namespace

int
blurRowFixed(const unsigned char *src, int x, int hi, const unsigned *k,
             int taps, unsigned short *dst)
{
    const int r = taps / 2;
    __m256i kv[kMaxTaps];
    for (int i = 0; i < taps; ++i)
        kv[i] = _mm256_set1_epi16(static_cast<short>(k[i]));
    const __m256i round = _mm256_set1_epi32(128);
    const __m256i bias32 = _mm256_set1_epi32(32768);
    const __m256i bias16 = _mm256_set1_epi16(static_cast<short>(0x8000));
    for (; x + 16 <= hi; x += 16) {
        __m256i acc_lo = round, acc_hi = round;
        for (int i = 0; i < taps; ++i) {
            const __m128i v8 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(src + x + i - r));
            maddU16(_mm256_cvtepu8_epi16(v8), kv[i], acc_lo, acc_hi);
        }
        // (acc >> 8) fits 16 unsigned bits but can exceed the signed-
        // saturating pack's 32767, so bias around zero for the pack
        // and undo it afterwards (exact for [0, 65535]).
        const __m256i out = _mm256_add_epi16(
            _mm256_packs_epi32(
                _mm256_sub_epi32(_mm256_srli_epi32(acc_lo, 8), bias32),
                _mm256_sub_epi32(_mm256_srli_epi32(acc_hi, 8), bias32)),
            bias16);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + x), out);
    }
    return x;
}

int
blurColFixed(const unsigned short *const *rows, int w, const unsigned *k,
             int taps, unsigned char *dst)
{
    __m256i kv[kMaxTaps];
    for (int i = 0; i < taps; ++i)
        kv[i] = _mm256_set1_epi16(static_cast<short>(k[i]));
    const __m256i round = _mm256_set1_epi32(1 << 23);
    int x = 0;
    for (; x + 16 <= w; x += 16) {
        __m256i acc_lo = round, acc_hi = round;
        for (int i = 0; i < taps; ++i)
            maddU16(_mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(rows[i] + x)),
                    kv[i], acc_lo, acc_hi);
        const __m256i v16 =
            _mm256_packs_epi32(_mm256_srli_epi32(acc_lo, 24),
                               _mm256_srli_epi32(acc_hi, 24));
        const __m256i v8 = _mm256_packus_epi16(v16, v16);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                         _mm256_castsi256_si128(v8));
        _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x + 8),
                         _mm256_extracti128_si256(v8, 1));
    }
    return x;
}

} // namespace avx2
} // namespace edx

#endif // EDX_HAVE_AVX2
