/**
 * @file
 * Image pyramids for pyramidal Lucas-Kanade tracking.
 */
#pragma once

#include <vector>

#include "image/image.hpp"

namespace edx {

/**
 * A fixed-depth mean pyramid: level 0 is the input image, each further
 * level is a 2x downsample of the previous one.
 */
class Pyramid
{
  public:
    /** Builds a pyramid of @p levels levels (>= 1) from @p base. */
    Pyramid(const ImageU8 &base, int levels);

    int levels() const { return static_cast<int>(imgs_.size()); }

    /** Image at pyramid level @p l (0 == full resolution). */
    const ImageU8 &level(int l) const
    {
        assert(l >= 0 && l < levels());
        return imgs_[l];
    }

  private:
    std::vector<ImageU8> imgs_;
};

} // namespace edx
