/**
 * @file
 * Image pyramids for pyramidal Lucas-Kanade tracking.
 */
#pragma once

#include <vector>

#include "image/image.hpp"

namespace edx {

/**
 * A fixed-depth mean pyramid: level 0 is the input image, each further
 * level is a 2x downsample of the previous one.
 *
 * A pyramid can be rebuilt in place (rebuild()), reusing the per-level
 * storage of the previous build. The frontend workspace keeps two
 * pyramids (previous / current frame) and swaps them each frame, so
 * steady-state frames never reallocate pyramid levels.
 */
class Pyramid
{
  public:
    /** An empty pyramid (no levels) for workspace double-buffering. */
    Pyramid() = default;

    /** Builds a pyramid of @p levels levels (>= 1) from @p base. */
    Pyramid(const ImageU8 &base, int levels) { rebuild(base, levels); }

    /**
     * Rebuilds from @p base, reusing level storage where the shapes
     * allow. @return true when any level's storage had to grow.
     */
    bool rebuild(const ImageU8 &base, int levels);

    int levels() const { return level_count_; }
    bool empty() const { return level_count_ == 0; }

    /** Image at pyramid level @p l (0 == full resolution). */
    const ImageU8 &level(int l) const
    {
        assert(l >= 0 && l < levels());
        return imgs_[l];
    }

    /** Sum of all level storage capacities, in bytes. */
    size_t
    capacityBytes() const
    {
        size_t n = 0;
        for (const ImageU8 &img : imgs_)
            n += img.capacity();
        return n;
    }

    friend void
    swap(Pyramid &a, Pyramid &b) noexcept
    {
        std::swap(a.imgs_, b.imgs_);
        std::swap(a.level_count_, b.level_count_);
    }

  private:
    std::vector<ImageU8> imgs_;
    int level_count_ = 0; //!< live levels (imgs_ may hold spare buffers)
};

} // namespace edx
