/**
 * @file
 * Dense 2-D images.
 *
 * The vision frontend (Sec. V of the paper) consumes 8-bit grayscale
 * stereo pairs; intermediate filter and gradient products use float
 * images. Pixels are stored row-major; (x, y) indexing follows the usual
 * image convention of x == column, y == row.
 */
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace edx {

/** Row-major 2-D image with value type @p T. */
template <typename T>
class Image
{
  public:
    Image() = default;

    /** Creates a @p w x @p h image initialized to @p fill. */
    Image(int w, int h, T fill = T{})
        : w_(w), h_(h), d_(static_cast<size_t>(w) * h, fill)
    {
        assert(w >= 0 && h >= 0);
    }

    int width() const { return w_; }
    int height() const { return h_; }
    bool empty() const { return d_.empty(); }

    /** Total number of pixels. */
    long pixelCount() const { return static_cast<long>(w_) * h_; }

    T &
    at(int x, int y)
    {
        assert(contains(x, y));
        return d_[static_cast<size_t>(y) * w_ + x];
    }

    T
    at(int x, int y) const
    {
        assert(contains(x, y));
        return d_[static_cast<size_t>(y) * w_ + x];
    }

    /** Clamped read: coordinates outside the image are clamped to edge. */
    T
    atClamped(int x, int y) const
    {
        x = std::clamp(x, 0, w_ - 1);
        y = std::clamp(y, 0, h_ - 1);
        return at(x, y);
    }

    /** @return true when (x, y) is inside the image bounds. */
    bool
    contains(int x, int y) const
    {
        return x >= 0 && x < w_ && y >= 0 && y < h_;
    }

    /** @return true when (x, y) is at least @p border pixels inside. */
    bool
    containsWithBorder(double x, double y, int border) const
    {
        return x >= border && x < w_ - border &&
               y >= border && y < h_ - border;
    }

    /**
     * Bilinear interpolation at sub-pixel (x, y); coordinates are clamped
     * to the valid interpolation domain.
     */
    double
    sampleBilinear(double x, double y) const
    {
        x = std::clamp(x, 0.0, static_cast<double>(w_ - 1) - 1e-9);
        y = std::clamp(y, 0.0, static_cast<double>(h_ - 1) - 1e-9);
        int x0 = static_cast<int>(x);
        int y0 = static_cast<int>(y);
        double fx = x - x0;
        double fy = y - y0;
        double v00 = at(x0, y0);
        double v10 = at(std::min(x0 + 1, w_ - 1), y0);
        double v01 = at(x0, std::min(y0 + 1, h_ - 1));
        double v11 = at(std::min(x0 + 1, w_ - 1), std::min(y0 + 1, h_ - 1));
        return v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) +
               v01 * (1 - fx) * fy + v11 * fx * fy;
    }

    /** Fills the whole image with @p v. */
    void fill(T v) { std::fill(d_.begin(), d_.end(), v); }

    /**
     * Resizes to @p w x @p h reusing the existing storage when it is
     * large enough (pixel contents are unspecified afterwards).
     * @return true when the underlying storage had to grow (the
     *         workspace allocation accounting hangs off this).
     */
    bool
    resize(int w, int h)
    {
        assert(w >= 0 && h >= 0);
        const size_t n = static_cast<size_t>(w) * h;
        const size_t cap_before = d_.capacity();
        d_.resize(n);
        w_ = w;
        h_ = h;
        return d_.capacity() > cap_before;
    }

    /** Copies @p other into this image, reusing storage when possible. */
    bool
    copyFrom(const Image &other)
    {
        bool grew = resize(other.w_, other.h_);
        std::copy(other.d_.begin(), other.d_.end(), d_.begin());
        return grew;
    }

    /** Capacity of the underlying storage, in elements. */
    size_t capacity() const { return d_.capacity(); }

    const T *data() const { return d_.data(); }
    T *data() { return d_.data(); }

    /** Raw pointer to the start of row @p y. */
    const T *rowPtr(int y) const { return d_.data() + static_cast<size_t>(y) * w_; }
    T *rowPtr(int y) { return d_.data() + static_cast<size_t>(y) * w_; }

  private:
    int w_ = 0;
    int h_ = 0;
    std::vector<T> d_;
};

using ImageU8 = Image<uint8_t>;
using ImageU16 = Image<uint16_t>;
using ImageF = Image<float>;

/** Converts an 8-bit image to float. */
ImageF toFloat(const ImageU8 &in);

/** Converts a float image to 8-bit with clamping to [0, 255]. */
ImageU8 toU8(const ImageF &in);

/**
 * Downsamples by a factor of 2 with 2x2 box averaging (used to build the
 * optical-flow pyramid).
 */
ImageU8 halfScale(const ImageU8 &in);

/**
 * halfScale into a caller-owned destination, reusing its storage
 * (the zero-alloc pyramid path). @return true when @p out had to grow.
 */
bool halfScaleInto(const ImageU8 &in, ImageU8 &out);

/** Mean absolute pixel difference between two equally sized images. */
double meanAbsDifference(const ImageU8 &a, const ImageU8 &b);

} // namespace edx
