/**
 * @file
 * The runtime offload scheduler (Sec. VI-B of the paper).
 *
 * Offloading a backend kernel is profitable only when its (size-
 * dependent) CPU latency exceeds the accelerator latency including DMA.
 * The scheduler therefore
 *
 *  1. fits, offline, a regression model of CPU kernel latency against
 *     the kernel's matrix size (linear for projection, quadratic for
 *     Kalman gain and marginalization - Fig. 16), using 25% of the
 *     profiled frames (Sec. VII-A), and
 *  2. at runtime, predicts the CPU time from the sizes the frontend
 *     just produced and triggers the accelerator only when the
 *     predicted CPU time exceeds the modeled accelerator time.
 *
 * An oracle scheduler (decides with the *actual* CPU time) provides the
 * effectiveness reference of Sec. VII-F.
 */
#pragma once

#include <string>
#include <vector>

#include "math/regression.hpp"
#include "sim/scenario.hpp"

namespace edx {

/** The three variation-dominating backend kernels (Tbl. I). */
enum class BackendKernel
{
    Projection,     //!< registration mode
    KalmanGain,     //!< VIO mode
    Marginalization //!< SLAM mode
};

/** Human-readable kernel name. */
std::string kernelName(BackendKernel k);

/** Regression degree per kernel (Sec. VI-B: linear / quadratic). */
int kernelModelDegree(BackendKernel k);

/** The variation-dominating kernel of each backend mode (Tbl. I). */
BackendKernel kernelForMode(BackendMode mode);

/** One profiled sample: kernel size (x) and measured CPU latency. */
struct KernelSample
{
    double size = 0.0;   //!< matrix-size driver (points, rows, ...)
    double cpu_ms = 0.0;
};

/** The fitted predictor for one kernel. */
class KernelLatencyModel
{
  public:
    KernelLatencyModel() = default;

    /** Fits the kernel's configured polynomial to training samples. */
    static KernelLatencyModel fit(BackendKernel kernel,
                                  const std::vector<KernelSample> &train);

    /** Predicted CPU latency at @p size, ms. */
    double predict(double size) const { return model_.predict(size); }

    /** R^2 on a labelled sample set. */
    double r2(const std::vector<KernelSample> &samples) const;

    BackendKernel kernel() const { return kernel_; }
    const PolynomialModel &polynomial() const { return model_; }

  private:
    BackendKernel kernel_ = BackendKernel::Projection;
    PolynomialModel model_;
};

/** One scheduling decision. */
struct OffloadDecision
{
    bool offload = false;
    double predicted_cpu_ms = 0.0;
    double accel_ms = 0.0;
};

/** The runtime scheduler. */
class RuntimeScheduler
{
  public:
    explicit RuntimeScheduler(KernelLatencyModel model)
        : model_(std::move(model))
    {}

    /**
     * Decides whether to offload a kernel invocation.
     * @param size the kernel's matrix-size driver for this frame
     * @param accel_ms modeled accelerator latency (compute + DMA)
     */
    OffloadDecision
    decide(double size, double accel_ms) const
    {
        OffloadDecision d;
        d.predicted_cpu_ms = model_.predict(size);
        d.accel_ms = accel_ms;
        d.offload = d.predicted_cpu_ms > accel_ms;
        return d;
    }

    const KernelLatencyModel &model() const { return model_; }

  private:
    KernelLatencyModel model_;
};

/** Oracle decision: uses the actual CPU time (Sec. VII-F reference). */
inline bool
oracleOffload(double actual_cpu_ms, double accel_ms)
{
    return actual_cpu_ms > accel_ms;
}

/** Aggregate effectiveness statistics of a scheduler trace. */
struct SchedulerStats
{
    int frames = 0;
    int offloaded = 0;
    int agree_with_oracle = 0;
    double scheduled_total_ms = 0.0; //!< latency with scheduler choices
    double oracle_total_ms = 0.0;    //!< latency with oracle choices
    double always_offload_ms = 0.0;  //!< latency when always offloading
    double never_offload_ms = 0.0;   //!< pure-CPU latency

    double offloadFraction() const
    {
        return frames ? static_cast<double>(offloaded) / frames : 0.0;
    }
    double oracleAgreement() const
    {
        return frames ? static_cast<double>(agree_with_oracle) / frames
                      : 0.0;
    }
};

/**
 * Evaluates a scheduler against the oracle over a profiled trace of
 * (size, cpu_ms, accel_ms) triples.
 */
SchedulerStats evaluateScheduler(
    const RuntimeScheduler &sched,
    const std::vector<KernelSample> &eval_samples,
    const std::vector<double> &accel_ms);

} // namespace edx
