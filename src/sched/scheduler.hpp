/**
 * @file
 * The runtime offload scheduler (Sec. VI-B of the paper).
 *
 * Offloading a backend kernel is profitable only when its (size-
 * dependent) CPU latency exceeds the accelerator latency including DMA.
 * The scheduler therefore
 *
 *  1. fits, offline, a regression model of CPU kernel latency against
 *     the kernel's matrix size (linear for projection, quadratic for
 *     Kalman gain and marginalization - Fig. 16), using 25% of the
 *     profiled frames (Sec. VII-A), and
 *  2. at runtime, predicts the CPU time from the sizes the frontend
 *     just produced and triggers the accelerator only when the
 *     predicted CPU time exceeds the modeled accelerator time.
 *
 * An oracle scheduler (decides with the *actual* CPU time) provides the
 * effectiveness reference of Sec. VII-F.
 */
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "math/regression.hpp"
#include "sim/scenario.hpp"

namespace edx {

/** The three variation-dominating backend kernels (Tbl. I). */
enum class BackendKernel
{
    Projection,     //!< registration mode
    KalmanGain,     //!< VIO mode
    Marginalization //!< SLAM mode
};

/** Human-readable kernel name. */
std::string kernelName(BackendKernel k);

/** Regression degree per kernel (Sec. VI-B: linear / quadratic). */
int kernelModelDegree(BackendKernel k);

/** The variation-dominating kernel of each backend mode (Tbl. I). */
BackendKernel kernelForMode(BackendMode mode);

/** One profiled sample: kernel size (x) and measured CPU latency. */
struct KernelSample
{
    double size = 0.0;   //!< matrix-size driver (points, rows, ...)
    double cpu_ms = 0.0;
};

/** The fitted predictor for one kernel. */
class KernelLatencyModel
{
  public:
    KernelLatencyModel() = default;

    /** Fits the kernel's configured polynomial to training samples. */
    static KernelLatencyModel fit(BackendKernel kernel,
                                  const std::vector<KernelSample> &train);

    /** Predicted CPU latency at @p size, ms. */
    double predict(double size) const { return model_.predict(size); }

    /** R^2 on a labelled sample set. */
    double r2(const std::vector<KernelSample> &samples) const;

    /**
     * Arms the incremental windowed least-squares refit: subsequent
     * observe() calls fold measured (size, cpu_ms) samples into
     * exponentially decayed normal equations and refit the polynomial,
     * so the predictor tracks a drifting workload instead of staying
     * frozen at the offline 25% fit. @p window is the effective sample
     * window (decay = 1 - 1/window).
     */
    void enableOnlineRefit(double window = 64.0);

    /**
     * Folds one measured sample into the windowed normal equations and
     * refits the coefficients (no-op until enableOnlineRefit()). The
     * refit solves the (d+1)x(d+1) decayed system, so one observation
     * costs O(d^3) with d <= 2 — cheap enough for every frame.
     */
    void observe(double size, double cpu_ms);

    bool onlineRefitEnabled() const { return online_; }
    long observedSamples() const { return observed_; }

    BackendKernel kernel() const { return kernel_; }
    const PolynomialModel &polynomial() const { return model_; }

  private:
    BackendKernel kernel_ = BackendKernel::Projection;
    PolynomialModel model_;

    // Windowed recursive least squares state (observe()).
    bool online_ = false;
    double decay_ = 0.0;
    long observed_ = 0;
    MatX ata_; //!< decayed sum of phi phi^T
    VecX atb_; //!< decayed sum of phi y
};

/** One scheduling decision. */
struct OffloadDecision
{
    bool offload = false;
    double predicted_cpu_ms = 0.0;
    double accel_ms = 0.0;
};

/** The runtime scheduler. */
class RuntimeScheduler
{
  public:
    explicit RuntimeScheduler(KernelLatencyModel model)
        : model_(std::move(model))
    {}

    /**
     * Decides whether to offload a kernel invocation.
     * @param size the kernel's matrix-size driver for this frame
     * @param accel_ms modeled accelerator latency (compute + DMA)
     */
    OffloadDecision
    decide(double size, double accel_ms) const
    {
        std::lock_guard<std::mutex> lk(m_);
        OffloadDecision d;
        d.predicted_cpu_ms = model_.predict(size);
        d.accel_ms = accel_ms;
        d.offload = d.predicted_cpu_ms > accel_ms;
        return d;
    }

    /** Arms the online refit of the underlying latency model. */
    void
    enableOnlineRefit(double window = 64.0)
    {
        std::lock_guard<std::mutex> lk(m_);
        model_.enableOnlineRefit(window);
    }

    /**
     * Feeds one measured (size, cpu_ms) kernel sample into the online
     * refit (no-op unless enableOnlineRefit() was called). Thread-safe
     * against concurrent decide() calls, so the pipeline's backend
     * stage can refit while the frontend stage keeps deciding.
     */
    void
    observe(double size, double cpu_ms)
    {
        std::lock_guard<std::mutex> lk(m_);
        model_.observe(size, cpu_ms);
    }

    /** Snapshot of the current model (copy: the live one may refit). */
    KernelLatencyModel
    model() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return model_;
    }

  private:
    mutable std::mutex m_;
    KernelLatencyModel model_;
};

/** Oracle decision: uses the actual CPU time (Sec. VII-F reference). */
inline bool
oracleOffload(double actual_cpu_ms, double accel_ms)
{
    return actual_cpu_ms > accel_ms;
}

/** Aggregate effectiveness statistics of a scheduler trace. */
struct SchedulerStats
{
    int frames = 0;
    int offloaded = 0;
    int agree_with_oracle = 0;
    double scheduled_total_ms = 0.0; //!< latency with scheduler choices
    double oracle_total_ms = 0.0;    //!< latency with oracle choices
    double always_offload_ms = 0.0;  //!< latency when always offloading
    double never_offload_ms = 0.0;   //!< pure-CPU latency

    double offloadFraction() const
    {
        return frames ? static_cast<double>(offloaded) / frames : 0.0;
    }
    double oracleAgreement() const
    {
        return frames ? static_cast<double>(agree_with_oracle) / frames
                      : 0.0;
    }
};

/**
 * Evaluates a scheduler against the oracle over a profiled trace of
 * (size, cpu_ms, accel_ms) triples.
 */
SchedulerStats evaluateScheduler(
    const RuntimeScheduler &sched,
    const std::vector<KernelSample> &eval_samples,
    const std::vector<double> &accel_ms);

} // namespace edx
