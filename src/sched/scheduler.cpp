#include "sched/scheduler.hpp"

#include <cassert>
#include <cmath>

#include "math/decomp.hpp"
#include "math/stats.hpp"

namespace edx {

std::string
kernelName(BackendKernel k)
{
    switch (k) {
      case BackendKernel::Projection:
        return "projection";
      case BackendKernel::KalmanGain:
        return "kalman-gain";
      case BackendKernel::Marginalization:
        return "marginalization";
    }
    return "?";
}

int
kernelModelDegree(BackendKernel k)
{
    // Sec. VI-B: "the projection time is fit using a linear model
    // whereas the other two kernels' times are estimated by quadratic
    // models."
    return k == BackendKernel::Projection ? 1 : 2;
}

BackendKernel
kernelForMode(BackendMode mode)
{
    switch (mode) {
      case BackendMode::Registration:
        return BackendKernel::Projection;
      case BackendMode::Vio:
        return BackendKernel::KalmanGain;
      case BackendMode::Slam:
        return BackendKernel::Marginalization;
    }
    return BackendKernel::Projection;
}

KernelLatencyModel
KernelLatencyModel::fit(BackendKernel kernel,
                        const std::vector<KernelSample> &train)
{
    KernelLatencyModel m;
    m.kernel_ = kernel;
    std::vector<double> xs, ys;
    xs.reserve(train.size());
    ys.reserve(train.size());
    for (const KernelSample &s : train) {
        xs.push_back(s.size);
        ys.push_back(s.cpu_ms);
    }
    m.model_ = PolynomialModel::fit(xs, ys, kernelModelDegree(kernel));
    return m;
}

void
KernelLatencyModel::enableOnlineRefit(double window)
{
    if (window < 2.0)
        window = 2.0;
    online_ = true;
    decay_ = 1.0 - 1.0 / window;
    observed_ = 0;
    const int k = kernelModelDegree(kernel_) + 1;
    ata_ = MatX(k, k);
    atb_ = VecX(k);
}

void
KernelLatencyModel::observe(double size, double cpu_ms)
{
    if (!online_)
        return;
    const int k = ata_.rows();

    // Decay, then rank-one update with phi = [1, size, size^2, ...].
    double phi[8];
    double p = 1.0;
    for (int j = 0; j < k; ++j) {
        phi[j] = p;
        p *= size;
    }
    for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j)
            ata_(i, j) = decay_ * ata_(i, j) + phi[i] * phi[j];
        atb_[i] = decay_ * atb_[i] + phi[i] * cpu_ms;
    }
    ++observed_;

    // Refit once the window carries enough samples to determine the
    // polynomial; before that the offline coefficients stand.
    if (observed_ < k)
        return;
    MatX a = ata_;
    // Tikhonov guard: with near-constant sizes in the window the
    // normal equations go singular; the tiny ridge keeps the refit
    // stable without noticeably biasing a well-conditioned solve.
    for (int i = 0; i < k; ++i)
        a(i, i) += 1e-9 * (1.0 + ata_(i, i));
    Cholesky chol(a);
    if (!chol.ok())
        return;
    MatX rhs(k, 1);
    for (int i = 0; i < k; ++i)
        rhs(i, 0) = atb_[i];
    chol.solveInPlace(rhs);
    std::vector<double> coeffs(k);
    bool finite = true;
    for (int i = 0; i < k; ++i) {
        coeffs[i] = rhs(i, 0);
        finite = finite && std::isfinite(coeffs[i]);
    }
    if (finite)
        model_ = PolynomialModel(std::move(coeffs));
}

double
KernelLatencyModel::r2(const std::vector<KernelSample> &samples) const
{
    std::vector<double> xs, ys;
    for (const KernelSample &s : samples) {
        xs.push_back(s.size);
        ys.push_back(s.cpu_ms);
    }
    return model_.r2(xs, ys);
}

SchedulerStats
evaluateScheduler(const RuntimeScheduler &sched,
                  const std::vector<KernelSample> &eval_samples,
                  const std::vector<double> &accel_ms)
{
    assert(eval_samples.size() == accel_ms.size());
    SchedulerStats st;
    st.frames = static_cast<int>(eval_samples.size());
    for (size_t i = 0; i < eval_samples.size(); ++i) {
        const KernelSample &s = eval_samples[i];
        OffloadDecision d = sched.decide(s.size, accel_ms[i]);
        bool oracle = oracleOffload(s.cpu_ms, accel_ms[i]);
        if (d.offload)
            ++st.offloaded;
        if (d.offload == oracle)
            ++st.agree_with_oracle;
        st.scheduled_total_ms += d.offload ? accel_ms[i] : s.cpu_ms;
        st.oracle_total_ms += oracle ? accel_ms[i] : s.cpu_ms;
        st.always_offload_ms += accel_ms[i];
        st.never_offload_ms += s.cpu_ms;
    }
    return st;
}

} // namespace edx
