/**
 * @file
 * EUDOXUS unified localization framework - the public API (Fig. 4).
 *
 * One Localizer instance runs the shared vision frontend on every frame
 * and dispatches to one of three backend modes depending on the
 * operating scenario (Fig. 2):
 *
 *  - Registration (indoor, map): tracking against a prior map.
 *  - VIO (outdoor): MSCKF filtering + loosely-coupled GPS fusion.
 *  - SLAM (indoor, no map): tracking + mapping with loop closure.
 *
 * Every frame returns the 6 DoF pose along with per-block latency and
 * workload records that drive the characterization benches and the
 * accelerator/scheduler models.
 */
#pragma once

#include <memory>
#include <optional>

#include "backend/fusion.hpp"
#include "backend/mapping.hpp"
#include "backend/msckf.hpp"
#include "backend/tracking.hpp"
#include "frontend/frontend.hpp"
#include "sensors/gps.hpp"
#include "sim/scenario.hpp"

namespace edx {

/** Full framework configuration. */
struct LocalizerConfig
{
    BackendMode mode = BackendMode::Slam;
    bool use_gps = false; //!< enable the fusion block (VIO mode only)
    FrontendConfig frontend;
    MsckfConfig msckf;
    MappingConfig mapping;
    TrackingConfig tracking;
    FusionConfig fusion;
};

/** Per-frame result: pose + full latency/workload instrumentation. */
struct LocalizationResult
{
    int frame_index = 0;
    bool ok = false;
    Pose pose;
    BackendMode mode = BackendMode::Slam;

    FrontendTiming frontend;
    FrontendWorkload frontend_workload;

    // Mode-specific backend records (only the active mode's fields are
    // meaningful).
    TrackingTiming tracking;
    TrackingWorkload tracking_workload;
    MsckfTiming msckf;
    MsckfWorkload msckf_workload;
    MappingTiming mapping;
    MappingWorkload mapping_workload;
    double fusion_ms = 0.0;

    /** Total backend latency of the active mode, ms. */
    double backendMs() const;
    /** Frontend block latency, ms. */
    double frontendMs() const { return frontend.total(); }
    /** End-to-end frame latency, ms. */
    double totalMs() const { return frontendMs() + backendMs(); }
};

/** Sensor inputs for one frame. */
struct FrameInput
{
    int frame_index = 0;
    double t = 0.0;
    const ImageU8 *left = nullptr;
    const ImageU8 *right = nullptr;
    std::vector<ImuSample> imu; //!< samples since the previous frame
    GpsSample gps;              //!< most recent fix (may be invalid)
};

/** The unified localizer. */
class Localizer
{
  public:
    /**
     * @param cfg framework configuration (mode, block settings)
     * @param rig the stereo rig of the platform
     * @param vocabulary trained BoW vocabulary (borrowed; may be null
     *        for VIO-only operation)
     * @param prior_map map for the registration mode (borrowed; copied
     *        into the tracker's map store). Null outside registration.
     */
    Localizer(const LocalizerConfig &cfg, const StereoRig &rig,
              const Vocabulary *vocabulary, const Map *prior_map);
    ~Localizer();

    Localizer(const Localizer &) = delete;
    Localizer &operator=(const Localizer &) = delete;

    /**
     * Initializes the state at a known start pose (the standard
     * standstill initialization of deployed systems).
     */
    void initialize(const Pose &start_pose, double t,
                    const Vec3 &start_velocity = Vec3::zero());

    /** Processes one frame; returns pose + instrumentation. */
    LocalizationResult processFrame(const FrameInput &input);

    /** The map being built (SLAM) or localized against (registration). */
    const Map *currentMap() const;

    BackendMode mode() const { return cfg_.mode; }
    const LocalizerConfig &config() const { return cfg_; }

  private:
    LocalizationResult processVio(const FrameInput &input,
                                  const FrontendOutput &fe);
    LocalizationResult processSlam(const FrameInput &input,
                                   const FrontendOutput &fe);
    LocalizationResult processRegistration(const FrameInput &input,
                                           const FrontendOutput &fe);

    LocalizerConfig cfg_;
    StereoRig rig_;
    const Vocabulary *voc_;

    VisionFrontend frontend_;

    // VIO mode.
    std::unique_ptr<Msckf> msckf_;
    FeatureTrackManager track_manager_;
    std::unique_ptr<GpsFusion> fusion_;
    long next_clone_id_ = 0;
    double last_frame_t_ = 0.0;

    // SLAM mode.
    std::unique_ptr<Mapper> mapper_;
    std::unique_ptr<Tracker> slam_tracker_;

    // Registration mode.
    Map registration_map_;
    std::unique_ptr<Tracker> reg_tracker_;

    // Shared pose history for constant-velocity prediction.
    std::optional<Pose> last_pose_;
    std::optional<Pose> prev_pose_;
    bool initialized_ = false;
};

/** Builds the LocalizerConfig for a scenario (Fig. 2 dispatch). */
LocalizerConfig configForScenario(SceneType scene);

} // namespace edx
