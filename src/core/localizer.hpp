/**
 * @file
 * EUDOXUS unified localization framework - the public API (Fig. 4).
 *
 * One Localizer instance runs the shared vision frontend on every frame
 * and dispatches to one of three backend modes depending on the
 * operating scenario (Fig. 2):
 *
 *  - Registration (indoor, map): tracking against a prior map.
 *  - VIO (outdoor): MSCKF filtering + loosely-coupled GPS fusion.
 *  - SLAM (indoor, no map): tracking + mapping with loop closure.
 *
 * Every frame returns the 6 DoF pose along with the unified telemetry
 * record (runtime/telemetry.hpp) that drives the characterization
 * benches and the accelerator/scheduler models.
 *
 * The frame path is split into the two stages the paper's accelerator
 * pipelines (Fig. 18): runFrontend() touches only the vision-frontend
 * state and runBackend() touches only the mode-specific backend state,
 * so the staged runtime (runtime/pipeline.hpp) may run frontend(N+1)
 * concurrently with backend(N) on separate threads. processFrame() is
 * the sequential composition of the two and remains the single-thread
 * API.
 */
#pragma once

#include <memory>
#include <optional>

#include "backend/fusion.hpp"
#include "backend/mapping.hpp"
#include "backend/msckf.hpp"
#include "backend/tracking.hpp"
#include "frontend/frontend.hpp"
#include "runtime/telemetry.hpp"
#include "sensors/gps.hpp"
#include "sim/scenario.hpp"

namespace edx {

class SolveHub;

/** Full framework configuration. */
struct LocalizerConfig
{
    BackendMode mode = BackendMode::Slam;
    bool use_gps = false; //!< enable the fusion block (VIO mode only)
    FrontendConfig frontend;
    MsckfConfig msckf;
    MappingConfig mapping;
    TrackingConfig tracking;
    FusionConfig fusion;
};

/** Per-frame result: pose + the unified telemetry record. */
struct LocalizationResult
{
    int frame_index = 0;
    bool ok = false;
    Pose pose;
    BackendMode mode = BackendMode::Slam;

    /** All block latencies and workload sizes of this frame. */
    FrameTelemetry telemetry;

    /** Total backend latency of the active mode, ms. */
    double backendMs() const { return telemetry.backendMs(mode); }
    /** Frontend block latency, ms. */
    double frontendMs() const { return telemetry.frontendMs(); }
    /** End-to-end (sequential) frame latency, ms. */
    double totalMs() const { return telemetry.totalMs(mode); }
};

/**
 * Sensor inputs for one frame. The images are *owned*: a FrameInput is
 * a self-contained packet that can be moved into the staged runtime
 * and outlive the caller's scope (the former `const ImageU8 *`
 * borrowing could dangle as soon as frames were queued).
 */
struct FrameInput
{
    int frame_index = 0;
    double t = 0.0;
    ImageU8 left;
    ImageU8 right;
    std::vector<ImuSample> imu; //!< samples since the previous frame
    GpsSample gps;              //!< most recent fix (may be invalid)

    /** True when both stereo images are present. */
    bool hasImages() const { return !left.empty() && !right.empty(); }
};

/** The unified localizer. */
class Localizer
{
  public:
    /**
     * @param cfg framework configuration (mode, block settings)
     * @param rig the stereo rig of the platform
     * @param vocabulary trained BoW vocabulary (borrowed; may be null
     *        for VIO-only operation)
     * @param prior_map map for the registration mode (borrowed and
     *        shared read-only; must outlive the localizer — many
     *        concurrent sessions may serve the same map). Null outside
     *        registration.
     */
    Localizer(const LocalizerConfig &cfg, const StereoRig &rig,
              const Vocabulary *vocabulary, const Map *prior_map);
    ~Localizer();

    Localizer(const Localizer &) = delete;
    Localizer &operator=(const Localizer &) = delete;

    /**
     * Initializes the state at a known start pose (the standard
     * standstill initialization of deployed systems).
     */
    void initialize(const Pose &start_pose, double t,
                    const Vec3 &start_velocity = Vec3::zero());

    /** Processes one frame; returns pose + telemetry. */
    LocalizationResult processFrame(const FrameInput &input);

    // --- staged API (used by runtime/pipeline.hpp) -------------------

    /**
     * Stage 1: the shared vision frontend. Touches only the frontend
     * state, so it may run on a different thread than runBackend() as
     * long as successive frames enter in order.
     */
    FrontendOutput runFrontend(const ImageU8 &left, const ImageU8 &right);

    /**
     * Stage 2: the mode-specific backend. Touches only backend state
     * (filter / tracker / mapper and the pose history). @p input must
     * be the frame that produced @p fe, and frames must arrive in
     * submission order.
     */
    LocalizationResult runBackend(const FrameInput &input,
                                  const FrontendOutput &fe);

    /** The map being built (SLAM) or localized against (registration). */
    const Map *currentMap() const;

    /**
     * Attaches a cross-session solve-batching hub: the mode-specific
     * backend kernel (projection / Kalman gain / marginalization) is
     * routed through @p hub and runBackend() registers itself as a
     * batching participant. Bit-identical results; null detaches.
     * Set by LocalizerPool when PoolConfig::batch_solves is on.
     */
    void setSolveHub(SolveHub *hub);

    bool initialized() const { return initialized_; }
    BackendMode mode() const { return cfg_.mode; }
    const LocalizerConfig &config() const { return cfg_; }

  private:
    LocalizationResult processVio(const FrameInput &input,
                                  const FrontendOutput &fe);
    LocalizationResult processSlam(const FrameInput &input,
                                   const FrontendOutput &fe);
    LocalizationResult processRegistration(const FrameInput &input,
                                           const FrontendOutput &fe);

    /** Failure result for frames that cannot be localized. */
    LocalizationResult rejectFrame(int frame_index) const;

    LocalizerConfig cfg_;
    StereoRig rig_;
    const Vocabulary *voc_;
    SolveHub *hub_ = nullptr;

    VisionFrontend frontend_;

    // VIO mode.
    std::unique_ptr<Msckf> msckf_;
    FeatureTrackManager track_manager_;
    std::unique_ptr<GpsFusion> fusion_;
    long next_clone_id_ = 0;
    double last_frame_t_ = 0.0;

    // SLAM mode.
    std::unique_ptr<Mapper> mapper_;
    std::unique_ptr<Tracker> slam_tracker_;

    // Registration mode: the prior map is shared read-only.
    const Map *registration_map_ = nullptr;
    std::unique_ptr<Tracker> reg_tracker_;

    // Shared pose history for constant-velocity prediction.
    std::optional<Pose> last_pose_;
    std::optional<Pose> prev_pose_;
    bool initialized_ = false;
};

/** Builds the LocalizerConfig for a scenario (Fig. 2 dispatch). */
LocalizerConfig configForScenario(SceneType scene);

} // namespace edx
