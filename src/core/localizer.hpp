/**
 * @file
 * EUDOXUS unified localization framework - the public API (Fig. 4).
 *
 * One Localizer instance runs the shared vision frontend on every frame
 * and dispatches to one of three backend modes depending on the
 * operating scenario (Fig. 2):
 *
 *  - Registration (indoor, map): tracking against a prior map.
 *  - VIO (outdoor): MSCKF filtering + loosely-coupled GPS fusion.
 *  - SLAM (indoor, no map): tracking + mapping with loop closure.
 *
 * Every frame returns the 6 DoF pose along with the unified telemetry
 * record (runtime/telemetry.hpp) that drives the characterization
 * benches and the accelerator/scheduler models.
 *
 * The frame path is split into the two stages the paper's accelerator
 * pipelines (Fig. 18): runFrontend() touches only the vision-frontend
 * state and runBackend() touches only the mode-specific backend state,
 * so the staged runtime (runtime/pipeline.hpp) may run frontend(N+1)
 * concurrently with backend(N) on separate threads. processFrame() is
 * the sequential composition of the two and remains the single-thread
 * API.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>

#include "backend/fusion.hpp"
#include "backend/mapping.hpp"
#include "backend/msckf.hpp"
#include "backend/tracking.hpp"
#include "core/health.hpp"
#include "frontend/frontend.hpp"
#include "runtime/telemetry.hpp"
#include "sensors/dead_reckoning.hpp"
#include "sensors/gps.hpp"
#include "sensors/odometry.hpp"
#include "sim/scenario.hpp"

namespace edx {

class SolveHub;
class MapService;
struct MapEpoch;

/** Full framework configuration. */
struct LocalizerConfig
{
    BackendMode mode = BackendMode::Slam;
    bool use_gps = false; //!< enable the fusion block (VIO mode only)
    FrontendConfig frontend;
    MsckfConfig msckf;
    MappingConfig mapping;
    TrackingConfig tracking;
    FusionConfig fusion;

    /**
     * Tracking-quality monitor thresholds and the dead-reckoning
     * fallback switch (core/health.hpp). The monitor always runs and
     * stamps FrameTelemetry::health; only with
     * health.enable_fallback does the localizer substitute the
     * internal-sensor pose when vision collapses — off, pose streams
     * are bit-identical to the pre-health builds.
     */
    HealthConfig health;
    DeadReckoningConfig dead_reckoning;
};

/** Per-frame result: pose + the unified telemetry record. */
struct LocalizationResult
{
    int frame_index = 0;
    bool ok = false;
    Pose pose;
    BackendMode mode = BackendMode::Slam;

    /** All block latencies and workload sizes of this frame. */
    FrameTelemetry telemetry;

    /** Total backend latency of the active mode, ms. */
    double backendMs() const { return telemetry.backendMs(mode); }
    /** Frontend block latency, ms. */
    double frontendMs() const { return telemetry.frontendMs(); }
    /** End-to-end (sequential) frame latency, ms. */
    double totalMs() const { return telemetry.totalMs(mode); }
};

/**
 * Sensor inputs for one frame. The images are *owned*: a FrameInput is
 * a self-contained packet that can be moved into the staged runtime
 * and outlive the caller's scope (the former `const ImageU8 *`
 * borrowing could dangle as soon as frames were queued).
 */
struct FrameInput
{
    int frame_index = 0;
    double t = 0.0;
    ImageU8 left;
    ImageU8 right;
    std::vector<ImuSample> imu; //!< samples since the previous frame
    GpsSample gps;              //!< most recent fix (may be invalid)

    /**
     * Wheel-odometry samples since the previous frame (may be empty;
     * consumed by the dead-reckoning fallback, never by the vision
     * path).
     */
    std::vector<WheelOdometrySample> odometry;

    /** True when both stereo images are present. */
    bool hasImages() const { return !left.empty() && !right.empty(); }
};

/**
 * Compact handoff between the two backend sub-stages (solve | finish).
 *
 * runBackendSolve() fills it; runBackendFinish() consumes it and emits
 * the completed LocalizationResult. The context is owned by the frame
 * job, so the two sub-stages may run on different pipeline workers
 * (finish of frame N overlapping solve of frame N+1).
 */
struct BackendStageContext
{
    LocalizationResult res; //!< progressively completed result
    long seq = -1;          //!< backend frame sequence number
    bool rejected = false;  //!< frame could not be localized

    /**
     * The backend mode this frame solved under, stamped by
     * runBackendSolve(). The finish sub-stage dispatches on it — not
     * on the localizer's current mode — because finish(N) may overlap
     * solve(N+1), and solve(N+1) may have consumed a mode switch.
     */
    BackendMode mode = BackendMode::Slam;

    /**
     * VIO filter-state snapshots taken in the solve sub-stage. The
     * finish sub-stage (health classification, reckoner seeding) must
     * consume these instead of touching the Msckf: the filter is
     * owned by solve, and finish of frame N overlaps solve of frame
     * N+1 on another pipeline worker.
     */
    Vec3 vio_velocity = Vec3::zero();
    double vio_pos_cov_trace = -1.0;
};

/** The unified localizer. */
class Localizer
{
  public:
    /**
     * @param cfg framework configuration (mode, block settings)
     * @param rig the stereo rig of the platform
     * @param vocabulary trained BoW vocabulary (borrowed; may be null
     *        for VIO-only operation)
     * @param prior_map map for the registration mode (borrowed and
     *        shared read-only; must outlive the localizer — many
     *        concurrent sessions may serve the same map). Null outside
     *        registration.
     */
    Localizer(const LocalizerConfig &cfg, const StereoRig &rig,
              const Vocabulary *vocabulary, const Map *prior_map);
    ~Localizer();

    Localizer(const Localizer &) = delete;
    Localizer &operator=(const Localizer &) = delete;

    /**
     * Initializes the state at a known start pose (the standard
     * standstill initialization of deployed systems).
     */
    void initialize(const Pose &start_pose, double t,
                    const Vec3 &start_velocity = Vec3::zero());

    /** Processes one frame; returns pose + telemetry. */
    LocalizationResult processFrame(const FrameInput &input);

    // --- staged API (used by runtime/pipeline.hpp) -------------------

    /**
     * Stage 1: the shared vision frontend. Touches only the frontend
     * state, so it may run on a different thread than runBackend() as
     * long as successive frames enter in order.
     */
    FrontendOutput runFrontend(const ImageU8 &left, const ImageU8 &right);

    /**
     * Stage 2: the mode-specific backend. Touches only backend state
     * (filter / tracker / mapper and the pose history). @p input must
     * be the frame that produced @p fe, and frames must arrive in
     * submission order. Composition of runBackendSolve() +
     * runBackendFinish().
     */
    LocalizationResult runBackend(const FrameInput &input,
                                  const FrontendOutput &fe);

    // --- sub-stage API (the N-stage pipeline's cut points) -----------
    //
    // The frame's sub-stage graph is FE | SM | TM | solve | finish.
    // The frontend trio maps onto VisionFrontend::run{Fe,Sm,Tm}Stage;
    // the backend pair splits each mode at its solver / structural
    // boundary:
    //   - SLAM: tracking + keyframe insertion + local BA  |
    //           marginalization + loop detection (read-only, applied
    //           at the next frame's solve — see backend/mapping.hpp),
    //   - VIO:  MSCKF propagate + update  |  GPS fusion,
    //   - registration: full tracking  |  (empty).
    // Successive frames must enter each sub-stage in submission order;
    // a solve that needs the previous frame's finish outputs blocks on
    // an internal sequence gate, so any topology yields bit-identical
    // pose streams.

    /** Frontend feature extraction (FD + IF + FC). */
    void runFrontendFe(const ImageU8 &left, const ImageU8 &right,
                       FrontendStageContext &ctx, FrontendOutput &out);
    /** Frontend stereo matching (MO + DR). */
    void runFrontendSm(const ImageU8 &left, const ImageU8 &right,
                       FrontendStageContext &ctx, FrontendOutput &out);
    /** Frontend temporal matching (DC + LSS). */
    void runFrontendTm(const ImageU8 &left, FrontendStageContext &ctx,
                       FrontendOutput &out);

    /** Backend solve sub-stage; fills @p ctx for runBackendFinish(). */
    void runBackendSolve(const FrameInput &input, const FrontendOutput &fe,
                         BackendStageContext &ctx);

    /** Backend finish sub-stage; completes and returns the result. */
    LocalizationResult runBackendFinish(const FrameInput &input,
                                        const FrontendOutput &fe,
                                        BackendStageContext &ctx);

    /** The map being built (SLAM) or localized against (registration). */
    const Map *currentMap() const;

    /**
     * Attaches a cross-session solve-batching hub: the mode-specific
     * backend kernel (projection / Kalman gain / marginalization) is
     * routed through @p hub and runBackend() registers itself as a
     * batching participant. Bit-identical results; null detaches.
     * Set by LocalizerPool when PoolConfig::batch_solves is on.
     */
    void setSolveHub(SolveHub *hub);

    /**
     * Attaches the live shared-map service (map/map_service.hpp),
     * alongside the legacy owned/borrowed-map path (null detaches;
     * detached behavior is bit-identical to pre-service builds,
     * test-enforced):
     *
     *  - SLAM: keyframes the mapper retires from its window (their
     *    poses are final) are contributed to the service after each
     *    applyPendingFinish(). Contribution is *read-only* on the
     *    mapper, so the session's own pose stream is unchanged by
     *    attaching.
     *  - Registration: the solve sub-stage pins the service's current
     *    epoch at each frame boundary and retargets the tracker when a
     *    newer epoch was published (the applyPendingFinish deferred-
     *    application discipline). The epoch-acquire latency is bounded
     *    (a shared_ptr copy) even while a merge is in flight.
     *
     * Wired per session by LocalizerPool via PoolConfig::map_service.
     */
    void attachMapService(MapService *service);

    MapService *mapService() const { return map_service_; }

    // Shared-map session counters (atomics: the pool's stats() reads
    // them while frames are in flight).

    /** Contributions shipped to the service by this session. */
    long
    mapContributions() const
    {
        return map_contributions_.load(std::memory_order_relaxed);
    }

    /** Epoch number this session last adopted (0 = none yet). */
    uint64_t
    mapEpoch() const
    {
        return map_epoch_seq_.load(std::memory_order_relaxed);
    }

    /** Worst observed currentEpoch() acquire latency, ms. */
    double
    maxEpochAcquireMs() const
    {
        return epoch_acquire_max_ms_.load(std::memory_order_relaxed);
    }

    /**
     * Requests a mid-run backend-mode switch (the workload shift of a
     * deployed session: outdoor VIO driving into an unmapped indoor
     * space becomes SLAM). The request is *deferred*: the next frame's
     * solve sub-stage consumes it after joining the previous frame's
     * finish, rebuilds the target mode's backend state bootstrapped
     * from the current pose estimate, and solves under the new mode —
     * so under the staged runtime no frame ever straddles two modes.
     *
     * @param target the mode to switch into
     * @param mapping optional mapping-config override installed with
     *        the switch (e.g. dense keyframing for the new space);
     *        only meaningful when @p target is Slam
     * @return false (request dropped) when @p target is already the
     *         current mode, or is Registration but no prior map was
     *         given at construction.
     */
    bool requestModeSwitch(BackendMode target,
                           const MappingConfig *mapping = nullptr);

    bool initialized() const { return initialized_; }

    /** Current backend mode. Safe to read from any thread (a pipeline
     *  TM worker reads it while the solve worker may be consuming a
     *  mode switch), hence the atomic shadow of cfg_.mode. */
    BackendMode mode() const
    {
        return mode_.load(std::memory_order_relaxed);
    }
    const LocalizerConfig &config() const { return cfg_; }

    /**
     * Tracking-quality state after the most recent frame. Touched by
     * the backend sub-stage that owns the session's pose history, so
     * it is safe to read between frames (e.g. after drain()).
     */
    TrackingHealth health() const { return health_.state(); }
    const HealthMonitor &healthMonitor() const { return health_; }

  private:
    void processVioSolve(const FrameInput &input, const FrontendOutput &fe,
                         BackendStageContext &ctx);
    void processVioFinish(const FrameInput &input, const FrontendOutput &fe,
                          BackendStageContext &ctx);
    void processSlamSolve(const FrameInput &input, const FrontendOutput &fe,
                          BackendStageContext &ctx);
    void processSlamFinish(BackendStageContext &ctx);
    void processRegistrationSolve(const FrameInput &input,
                                  const FrontendOutput &fe,
                                  BackendStageContext &ctx);

    /**
     * Runs the health state machine over one frame's signals and,
     * when the fallback is enabled and vision has collapsed,
     * substitutes the dead-reckoned pose into @p res. Called by the
     * backend sub-stage that owns the pose history (solve for
     * SLAM/registration, finish for VIO) immediately before
     * updatePoseHistory(), so the fallback pose also seeds the next
     * frame's prediction.
     *
     * @p vio_velocity is the solve-stage snapshot of the filter
     * velocity (used to seed the reckoner in VIO mode); the finish
     * stage must not read the Msckf directly, as the next frame's
     * solve may be propagating it concurrently.
     */
    void applyHealth(const FrameInput &input, const FrontendOutput *fe,
                     HealthSignals sig, const Vec3 &vio_velocity,
                     LocalizationResult &res);

    /** Dead-reckon through a frame that carried no images at all. */
    LocalizationResult deadReckonFrame(const FrameInput &input);

    /** Folds the just-solved pose into the prediction history. */
    void updatePoseHistory(const LocalizationResult &res);

    /** Blocks until every finish before backend frame @p seq ran. */
    void waitFinishedBefore(long seq);
    /** Marks one finish sub-stage complete (wakes waiting solves). */
    void markFinished();

    /** Failure result for frames that cannot be localized. */
    LocalizationResult rejectFrame(int frame_index) const;

    /** Tears down / rebuilds backend state for a consumed mode switch.
     *  Solve-stage worker only, after waitFinishedBefore(). */
    void applyModeSwitch(BackendMode target,
                         const std::optional<MappingConfig> &mapping);

    /** Pins the service's current epoch; retargets the registration
     *  tracker when it advanced. Solve-stage worker only. */
    void refreshMapEpoch();

    /** Ships the mapper's newly retired keyframes (and the landmarks
     *  they observe) to the service. Read-only on the mapper's map;
     *  solve-stage worker only, right after applyPendingFinish(). */
    void contributeRetiredKeyframes();

    LocalizerConfig cfg_;
    StereoRig rig_;
    const Vocabulary *voc_;
    SolveHub *hub_ = nullptr;

    VisionFrontend frontend_;

    // VIO mode.
    std::unique_ptr<Msckf> msckf_;
    FeatureTrackManager track_manager_;
    std::unique_ptr<GpsFusion> fusion_;
    long next_clone_id_ = 0;
    double last_frame_t_ = 0.0;

    // SLAM mode.
    std::unique_ptr<Mapper> mapper_;
    std::unique_ptr<Tracker> slam_tracker_;

    // Registration mode: the prior map is shared read-only.
    const Map *registration_map_ = nullptr;
    std::unique_ptr<Tracker> reg_tracker_;

    // Shared-map service attach path (null = legacy map ownership).
    // map_epoch_ is pinned/swapped only by the solve-stage worker; the
    // counters are atomic shadows for cross-thread stats reads.
    MapService *map_service_ = nullptr;
    int map_session_key_ = -1;
    std::shared_ptr<const MapEpoch> map_epoch_;
    std::atomic<long> map_contributions_{0};
    std::atomic<uint64_t> map_epoch_seq_{0};
    std::atomic<double> epoch_acquire_max_ms_{0.0};

    // Shared pose history for constant-velocity prediction.
    std::optional<Pose> last_pose_;
    std::optional<Pose> prev_pose_;
    bool initialized_ = false;

    // Tracking-quality monitor + internal-sensor fallback. Owned by
    // the same sub-stage as the pose history (solve for SLAM/
    // registration, finish for VIO), so no extra synchronization is
    // needed under the staged runtime.
    HealthMonitor health_;
    DeadReckoner reckoner_;

    // solve | finish sequencing: finish(N) publishes before the parts
    // of solve(N+1) that consume its outputs run (SLAM pending apply).
    // Only touched by the solve/finish stage workers.
    long backend_seq_ = 0;    //!< frames entered into the solve stage
    std::mutex finish_m_;
    std::condition_variable finish_cv_;
    long finished_seq_ = 0;   //!< finish sub-stages completed

    // Deferred mode switch: any thread may request, the solve-stage
    // worker consumes at the next frame boundary. mode_ shadows
    // cfg_.mode for lock-free cross-thread reads.
    struct PendingSwitch
    {
        BackendMode target;
        std::optional<MappingConfig> mapping;
    };
    std::mutex switch_m_;
    std::optional<PendingSwitch> pending_switch_;
    std::atomic<BackendMode> mode_;
};

/** Builds the LocalizerConfig for a scenario (Fig. 2 dispatch). */
LocalizerConfig configForScenario(SceneType scene);

} // namespace edx
