#include "core/scenario_runner.hpp"

#include <algorithm>
#include <memory>

namespace edx {

FrameInput
degradedFrameInput(const DegradedDataset &dd, int i)
{
    DatasetFrame f = dd.frame(i);
    FrameInput in;
    in.frame_index = i;
    in.t = f.t;
    in.left = std::move(f.stereo.left);
    in.right = std::move(f.stereo.right);
    in.imu = dd.imuBetweenFrames(i);
    in.gps = dd.gpsAtFrame(i);
    in.odometry = dd.odometryBetweenFrames(i);
    return in;
}

/** First frame after every event window has closed (clamped). */
static int
tailStart(const ScenarioSpec &spec)
{
    int start = 0;
    for (const DegradationEvent &e : spec.events)
        start = std::max(start, std::min(e.to, spec.frames));
    return std::min(start, spec.frames);
}

ScenarioCellResult
runScenarioCell(const ScenarioSpec &spec, BackendMode mode,
                const ScenarioRunOptions &opt)
{
    DegradedDataset dd(spec);

    LocalizerConfig lcfg = configForScenario(spec.scene);
    lcfg.mode = mode;
    if (lcfg.mode != BackendMode::Vio)
        lcfg.use_gps = false;
    lcfg.health.enable_fallback = opt.enable_fallback;
    lcfg.dead_reckoning.use_wheel_odometry = spec.wheel_odometry;
    if (opt.tune)
        opt.tune(lcfg);

    // Offline assets from the clean base dataset. The base is
    // over-provisioned past any teleport, so the vocabulary and the
    // registration prior map cover the kidnapped robot's destination —
    // relocalization is possible by construction and the test measures
    // whether the tracker actually achieves it.
    std::unique_ptr<Vocabulary> voc;
    std::unique_ptr<Map> prior;
    if (lcfg.mode != BackendMode::Vio) {
        voc = std::make_unique<Vocabulary>(
            buildVocabulary(dd.base(), /*frame_stride=*/10));
        if (lcfg.mode == BackendMode::Registration) {
            MapBuildConfig mcfg;
            mcfg.seed = spec.seed + 1;
            if (!scenarioTraits(spec.scene).indoor) {
                mcfg.point_noise_m = 0.35;
                mcfg.pose_noise_m = 0.25;
            }
            prior = std::make_unique<Map>(
                buildPriorMap(dd.base(), *voc, mcfg));
        }
    }

    Localizer loc(lcfg, dd.rig(), voc.get(), prior.get());
    loc.initialize(dd.truthAt(0), 0.0,
                   dd.base().trajectory().velocityAt(0.0));

    ScenarioCellResult cell;
    cell.scenario = spec.name;
    cell.scene = spec.scene;
    cell.mode = mode;
    cell.tail_start = tailStart(spec);
    cell.frames.reserve(spec.frames);

    std::vector<Pose> estimate, truth;
    Pose held = dd.truthAt(0);
    for (int i = 0; i < spec.frames; ++i) {
        LocalizationResult res = loc.processFrame(degradedFrameInput(dd, i));

        ScenarioFrameRecord rec;
        rec.frame_index = i;
        rec.ok = res.ok;
        rec.health = res.telemetry.health;
        rec.dead_reckoned = res.telemetry.dead_reckoned;
        rec.inliers = res.telemetry.tracking_inliers;
        rec.relocalized = res.telemetry.relocalized;
        rec.truth = dd.truthAt(i);

        // Consumers hold the last pose through an outage; score what a
        // consumer would see, not the reject-path identity pose.
        if (res.ok)
            held = res.pose;
        else
            ++cell.failed_frames;
        rec.pose = held;

        ++cell.health_frames[static_cast<int>(rec.health)];
        if (rec.dead_reckoned)
            ++cell.dead_reckoned_frames;

        estimate.push_back(rec.pose);
        truth.push_back(rec.truth);
        cell.frames.push_back(std::move(rec));
    }

    cell.error = computeTrajectoryError(estimate, truth);
    if (cell.tail_start < spec.frames) {
        std::vector<Pose> te(estimate.begin() + cell.tail_start,
                             estimate.end());
        std::vector<Pose> tt(truth.begin() + cell.tail_start,
                             truth.end());
        cell.tail_error = computeTrajectoryError(te, tt);
    }
    return cell;
}

} // namespace edx
